// Package caliqec is a Go implementation of CaliQEC (Fang et al., ISCA
// 2025): in-situ qubit calibration for surface-code quantum error
// correction via code deformation.
//
// The package is a facade over the internal substrates; it exposes the
// paper's three-stage pipeline end to end:
//
//  1. Preparation — synthesize (or model) a device over a square or
//     heavy-hex lattice and characterize every gate's drift constant,
//     calibration duration and crosstalk neighbourhood (NewSystem,
//     System.Characterize).
//  2. Compilation — derive the target physical error rate from the code
//     distance and logical-error budget, group gates into calibration
//     intervals (Algorithm 1), and build crosstalk-aware intra-group
//     schedules under a Δd budget (System.Compile).
//  3. Runtime — execute calibration intervals concurrently with
//     computation: isolate each due gate's region with the deformation
//     instruction set, enlarge the patch if distance was lost, calibrate,
//     and reintegrate (System.RunInterval).
//
// Monte-Carlo machinery (circuit generation, Pauli-frame sampling,
// detector error models, union-find decoding) is available for measuring
// actual logical error rates of pristine and deformed patches
// (System.MeasureLER), and internal/exp regenerates every table and figure
// of the paper (cmd/repro).
package caliqec

import (
	"caliqec/internal/charac"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/device"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/noise"
	"caliqec/internal/obs"
	"caliqec/internal/rng"
	"caliqec/internal/sched"
	"context"
	"fmt"
	"sort"
)

// Topology selects the hardware lattice family.
type Topology int

// Supported topologies (paper Table 1).
const (
	Square   Topology = iota // Rigetti-class square lattice
	HeavyHex                 // IBM-class heavy-hexagon lattice
)

func (tp Topology) String() string {
	if tp == Square {
		return "square"
	}
	return "heavy-hex"
}

// Options configures NewSystem.
type Options struct {
	// DriftModel is the device drift-constant distribution; zero value
	// uses the paper's current-hardware model (log-normal, mean 14.08 h).
	DriftModel noise.Model
	// Seed makes the whole pipeline deterministic.
	Seed uint64
	// DeltaD is the maximum tolerable distance loss during calibration
	// (paper §7.3 uses 4; default 4).
	DeltaD int
}

// System is one logical patch plus its underlying device and the live
// deformation state.
type System struct {
	Topology Topology
	Distance int
	Device   *device.Device
	Deformer *deform.Deformer
	Options  Options

	rng *rng.RNG
}

// Patch returns the current (possibly deformed) code patch.
func (s *System) Patch() *code.Patch { return s.Deformer.Patch }

// NewSystem builds a distance-d patch on the chosen topology together with
// a synthetic device over its physical qubits.
func NewSystem(tp Topology, d int, opt Options) (*System, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("caliqec: distance must be odd and ≥ 3, got %d", d)
	}
	if opt.DeltaD == 0 {
		opt.DeltaD = 4
	}
	r := rng.New(opt.Seed ^ 0xca11bec)
	var lat *lattice.Lattice
	if tp == Square {
		lat = lattice.NewSquare(d)
	} else {
		lat = lattice.NewHeavyHex(d)
	}
	dev := device.New(lat, device.Options{Model: opt.DriftModel}, r.Split())
	patch := code.NewPatch(lat)
	return &System{
		Topology: tp,
		Distance: d,
		Device:   dev,
		Deformer: deform.NewDeformer(patch),
		Options:  opt,
		rng:      r,
	}, nil
}

// Characterize runs the preparation stage: simulated interleaved RB per
// gate, drift-law fitting, crosstalk probing and calibration timing.
func (s *System) Characterize() *charac.Characterization {
	return charac.Characterize(s.Device, charac.Options{}, s.rng.Split())
}

// Plan is the compile-time output: the calibration grouping and the
// per-interval schedules.
type Plan struct {
	PTar     float64
	Grouping *sched.Grouping
	// Profiles indexes the scheduler's gate view by gate ID.
	Profiles map[int]sched.GateProfile
}

// Compile runs the compilation stage against a characterization: it
// derives p_tar from the logical-error budget via Eq. (4), then assigns
// every gate to a calibration group (Algorithm 1).
func (s *System) Compile(ch *charac.Characterization, lerTarget float64) (*Plan, error) {
	pTar, err := sched.PTarget(s.Distance, lerTarget, noise.Alpha, noise.Threshold)
	if err != nil {
		return nil, err
	}
	if pTar <= noise.InitialErrorRate*1.05 {
		return nil, fmt.Errorf("caliqec: distance %d cannot hold LER %.3g — p_tar %.3g leaves no headroom above the calibrated rate %.3g; increase the distance or relax the target",
			s.Distance, lerTarget, pTar, noise.InitialErrorRate)
	}
	var profiles []sched.GateProfile
	byID := map[int]sched.GateProfile{}
	for _, gc := range ch.Gates {
		g := s.Device.Gate(gc.GateID)
		p := sched.GateProfile{
			GateID:    gc.GateID,
			Drift:     gc.Drift,
			CaliHours: gc.CaliHours,
			Nbr:       gc.Nbr,
			Qubits:    g.Qubits,
		}
		byID[gc.GateID] = p
		// Gates too slow to ever need calibration within a long horizon
		// are excluded from grouping (they still appear in Profiles).
		if d := p.DeadlineHours(pTar); d < 30*24 {
			profiles = append(profiles, p)
		}
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("caliqec: no gate needs calibration within 30 days at p_tar=%.3g", pTar)
	}
	gr, err := sched.AssignGroups(profiles, pTar)
	if err != nil {
		return nil, err
	}
	return &Plan{PTar: pTar, Grouping: gr, Profiles: byID}, nil
}

// IntervalReport describes what one runtime calibration interval did.
type IntervalReport struct {
	Interval     int
	DueGates     []int
	Batches      int
	Calibrated   int
	Enlarged     bool
	MaxDeltaD    int
	ElapsedHours float64
}

// RunInterval executes the n-th calibration interval (1-indexed) against
// the live patch: the due gates are clustered and batched under the Δd
// budget; each batch's regions are isolated via the instruction set, the
// gates calibrated on the device, and the regions reintegrated. If a batch
// costs code distance, the patch is enlarged (PatchQ_AD) for its duration
// and shrunk back afterwards. It is RunIntervalContext with a background
// context.
func (s *System) RunInterval(plan *Plan, n int, nowHours float64) (*IntervalReport, error) {
	return s.RunIntervalContext(context.Background(), plan, n, nowHours)
}

// RunIntervalContext is RunInterval with a caller-supplied context: the
// interval aborts between batches when the context is cancelled, and when
// the context carries an obs tracer the interval records one
// "caliqec.interval" span with a nested "deform.session" span per batch
// (attributed with the batch's instruction kinds and distance loss), so a
// whole calibration run is visible as a timeline in chrome://tracing.
func (s *System) RunIntervalContext(ctx context.Context, plan *Plan, n int, nowHours float64) (*IntervalReport, error) {
	ctx, span := obs.StartSpan(ctx, "caliqec.interval")
	defer span.End()
	span.SetAttr("interval", n)
	span.SetAttr("delta_d", s.Options.DeltaD)
	rep := &IntervalReport{Interval: n}
	due := plan.Grouping.DueGates(n)
	rep.DueGates = due
	if len(due) == 0 {
		return rep, nil
	}
	var tasks []sched.Task
	for _, id := range due {
		p := plan.Profiles[id]
		tasks = append(tasks, sched.Task{GateID: id, Region: p.Nbr, CaliHours: p.CaliHours})
	}
	tasks = sched.ClusterDependent(tasks)
	lossEst := sched.DiameterLoss{Coord: func(q int) (int, int) {
		qb := s.Deformer.Patch.Lat.Qubit(q)
		return qb.Row / 4, qb.Col / 4
	}}
	schedule, err := sched.BuildSchedule(tasks, sched.StrategyAdaptive, nil, lossEst, s.Options.DeltaD)
	if err != nil {
		return nil, err
	}
	rep.Batches = len(schedule.Batches)
	rep.MaxDeltaD = schedule.MaxLoss()
	for bi, batch := range schedule.Batches {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tag := fmt.Sprintf("int%d-batch%d", n, bi)
		// Each batch is one isolate→calibrate→reintegrate episode,
		// observed as a deform.session span that ends on every path.
		err := func(batch sched.Batch) error {
			_, sess := s.Deformer.BeginSession(ctx, tag)
			defer sess.End()
			// Collect the batch's isolation region as coordinates on the
			// device lattice (coordinates stay valid across patch rebuilds).
			coordSet := map[[2]int]bool{}
			for _, task := range batch.Tasks {
				for _, q := range task.Region {
					qb := s.Device.Lat.Qubit(q)
					coordSet[[2]int{qb.Row, qb.Col}] = true
				}
			}
			// Dynamic code enlargement FIRST (paper §3: "dynamic code
			// enlargement, which slightly expands affected patches to maintain
			// QEC capabilities during the calibration process"): grow by the
			// batch's estimated distance loss so isolation never drops the
			// patch below its original protection level.
			grow := (batch.DistanceLoss + 1) / 2
			for g := 0; g < grow; g++ {
				if err := s.Deformer.Enlarge(true); err != nil {
					return err
				}
				if err := s.Deformer.Enlarge(false); err != nil {
					return err
				}
				rep.Enlarged = true
			}
			// Resolve the region on the (possibly larger) current lattice and
			// isolate it with the instruction set.
			var qubits []int
			for rc := range coordSet {
				q, err := s.Deformer.QubitAt(rc[0], rc[1])
				if err != nil {
					return err
				}
				qubits = append(qubits, q)
			}
			sort.Ints(qubits)
			if _, err := s.Deformer.IsolateRegion(qubits, tag); err != nil {
				return fmt.Errorf("caliqec: isolating batch %d: %w", bi, err)
			}
			// Calibrate the batch's gates on the device while computation
			// continues on the deformed patch.
			for _, task := range batch.Tasks {
				for _, id := range task.MemberGates() {
					s.Device.Calibrate(id, nowHours+rep.ElapsedHours)
					rep.Calibrated++
				}
			}
			rep.ElapsedHours += batch.Hours
			// Reintegrate the region and shrink the patch back.
			if err := s.Deformer.Reintegrate(tag); err != nil {
				return fmt.Errorf("caliqec: reintegrating batch %d: %w", bi, err)
			}
			for g := 0; g < grow; g++ {
				if err := s.Deformer.Shrink(true); err != nil {
					return err
				}
				if err := s.Deformer.Shrink(false); err != nil {
					return err
				}
			}
			return nil
		}(batch)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// MeasureLER Monte-Carlo-samples the current patch's memory experiment at
// the device's current noise (time nowHours) and decodes with the
// union-find decoder, returning the per-round logical error rate. It is
// MeasureLERContext with a background context.
func (s *System) MeasureLER(nowHours float64, rounds, shots int) (decoder.Result, error) {
	return s.MeasureLERContext(context.Background(), nowHours, rounds, shots)
}

// MeasureLERContext is MeasureLER with a caller-supplied context: the
// measurement aborts promptly (returning ctx.Err()) if the context is
// cancelled or its deadline passes mid-run. Evaluation goes through the
// shared internal/mc engine, so repeated measurements of structurally
// identical circuits at identical noise reuse the cached detector error
// model and decoding graph.
func (s *System) MeasureLERContext(ctx context.Context, nowHours float64, rounds, shots int) (decoder.Result, error) {
	nm := s.Device.NoiseAt(nowHours)
	c, err := s.Deformer.Patch.MemoryCircuit(code.MemoryOptions{
		Rounds: rounds, Basis: lattice.BasisZ, Noise: nm,
	})
	if err != nil {
		return decoder.Result{}, err
	}
	res, err := mc.Evaluate(ctx, mc.Spec{
		Circuit: c, Decoder: decoder.KindUnionFind,
		Shots: shots, Rounds: rounds, RNG: s.rng.Split(),
	})
	if err != nil {
		return decoder.Result{}, err
	}
	return res.Result, nil
}

// MeasureLERSweep Monte-Carlo-samples the current patch at several round
// counts in one batched evaluation; see MeasureLERSweepContext.
func (s *System) MeasureLERSweep(nowHours float64, rounds []int, shots int) ([]decoder.Result, error) {
	return s.MeasureLERSweepContext(context.Background(), nowHours, rounds, shots)
}

// MeasureLERSweepContext measures the current patch's per-round logical
// error rate at each entry of rounds, evaluating all memory experiments as
// one batch over the engine's shared chunk scheduler so the sweep saturates
// the worker pool even when individual configurations are small. Each
// configuration draws its generator from the system RNG in rounds order —
// exactly as the equivalent sequence of MeasureLERContext calls would — so
// results match one-at-a-time measurement bit for bit.
func (s *System) MeasureLERSweepContext(ctx context.Context, nowHours float64, rounds []int, shots int) ([]decoder.Result, error) {
	nm := s.Device.NoiseAt(nowHours)
	specs := make([]mc.Spec, 0, len(rounds))
	for _, r := range rounds {
		c, err := s.Deformer.Patch.MemoryCircuit(code.MemoryOptions{
			Rounds: r, Basis: lattice.BasisZ, Noise: nm,
		})
		if err != nil {
			return nil, err
		}
		specs = append(specs, mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind,
			Shots: shots, Rounds: r, RNG: s.rng.Split(),
		})
	}
	batch, err := mc.EvaluateBatch(ctx, specs)
	if err != nil {
		return nil, err
	}
	out := make([]decoder.Result, len(batch))
	for i, res := range batch {
		out[i] = res.Result
	}
	return out, nil
}
