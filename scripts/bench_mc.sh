#!/bin/sh
# Runs the mc-engine benchmark suite (cached sweep, obs overhead, batched
# multi-patch sweep), writes the parsed results to BENCH_mc.json, and
# enforces three budgets:
#
#   - the observability layer may cost the warm cached sweep at most 5%;
#   - EvaluateBatch must beat the equivalent sequential-Evaluate loop on the
#     8-patch cold sweep by >=1.3x on multi-core runners. On a single-core
#     runner the scheduler has no parallel headroom by construction (batch
#     and sequential perform identical work in a different order), so the
#     guard degrades to "no regression" (>=0.85x, allowing scheduler
#     noise) plus the allocation budget: batch-warm allocs/op must not
#     exceed sequential-warm allocs/op;
#   - lane_speedup_warm: the multi-word (256-shot) sampler plus the
#     incremental union-find reset must keep EngineCachedSweep/warm at
#     least 1.8x faster than the committed pre-widening baseline
#     (2,237,118 ns/op) on multi-core runners, where the worker pool adds
#     parallel headroom on top of the per-shot wins. A single-core runner
#     sees only the algorithmic speedup (measured ~2.1x) and may be slower
#     hardware than the baseline machine, so the floor degrades to 1.4x.
#
# It then runs the stream replay suite into BENCH_stream.json with three
# guards of its own:
#
#   - the stream.Replay worker pipeline must not regress below the
#     single-threaded read+decode baseline — >=0.95x on multi-core runners
#     (the pipeline should win there; 0.95 absorbs scheduler noise) and
#     >=0.6x on a single core, where the per-frame channel hop is pure
#     overhead by construction;
#   - the sliding-window decoder's per-round p99 ingest latency
#     (BenchmarkStreamReplay/windowed, round_p99_ns) must stay under
#     100µs — the bounded-latency budget of the streaming decode path.
#     Measured values sit around 5µs; the 20x headroom absorbs slow CI
#     runners without letting an O(rounds) regression through.
#   - the drift estimator (BenchmarkStreamReplay/estimator vs /pipeline)
#     may cost replay throughput at most 5% on multi-core runners (15% on
#     a single core, where pipeline ns/op is channel-hop-dominated and
#     noisy). Measured overhead sits around 2-3%: the estimator's
#     per-frame work is one mutex hop plus integer bucket updates.
#   - the multi-tenant fleet's per-frame decode p99 (BenchmarkFleetServe,
#     fleet_p99_ns: 256 concurrent streams through one shared pool) must
#     stay under 200µs. Measured values sit around 7µs; the headroom
#     absorbs slow CI runners while catching a scheduler regression that
#     parks frames behind lock convoys or unfair queues.
#
# CI runs this on every push; the committed BENCH_mc.json/BENCH_stream.json
# are the trajectory points for the checked-out commit.
#
# Usage: scripts/bench_mc.sh [benchtime]   (default 20x)
set -eu
benchtime="${1:-20x}"
cores="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
out="$(go test -run '^$' -bench 'BenchmarkEngineCachedSweep|BenchmarkObsOverhead|BenchmarkEngineBatchSweep' -benchtime "$benchtime" -benchmem -count 1 .)"
echo "$out"
echo "$out" | awk -v benchtime="$benchtime" -v cores="$cores" '
/^Benchmark/ {
    # e.g. BenchmarkObsOverhead/recording-8  20  4446020 ns/op  21674 B/op  170 allocs/op
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    if (NF >= 7) allocs[name] = $7
    order[n++] = name
}
END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cores\": %d,\n", cores
    printf "  \"ns_per_op\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"allocs_per_op\": {\n"
    first = 1
    for (i = 0; i < n; i++) {
        if (order[i] in allocs) {
            printf "%s    \"%s\": %s", (first ? "" : ",\n"), order[i], allocs[order[i]]
            first = 0
        }
    }
    printf "\n  }"
    fail = 0
    off = ns["ObsOverhead/discard"]; on = ns["ObsOverhead/recording"]
    if (off > 0 && on > 0) {
        ratio = on / off
        printf ",\n  \"obs_overhead_ratio\": %.4f", ratio
        if (ratio > 1.05) {
            printf "FAIL: obs overhead %.1f%% exceeds the 5%% budget\n", (ratio-1)*100 > "/dev/stderr"
            fail = 1
        }
    } else {
        printf "FAIL: ObsOverhead results missing from benchmark output\n" > "/dev/stderr"
        fail = 1
    }
    sc = ns["EngineBatchSweep/sequential-cold"]; bc = ns["EngineBatchSweep/batch-cold"]
    sa = allocs["EngineBatchSweep/sequential-warm"]; ba = allocs["EngineBatchSweep/batch-warm"]
    if (sc > 0 && bc > 0) {
        speedup = sc / bc
        printf ",\n  \"batch_speedup_cold\": %.4f", speedup
        printf ",\n  \"batch_warm_allocs\": %s", ba
        printf ",\n  \"sequential_warm_allocs\": %s", sa
        floor = (cores >= 2 ? 1.3 : 0.85)
        if (speedup < floor) {
            printf "FAIL: batch cold sweep speedup %.2fx below the %.1fx floor (%d cores)\n", speedup, floor, cores > "/dev/stderr"
            fail = 1
        }
        if (ba + 0 > sa + 0) {
            printf "FAIL: batch-warm allocs/op %s exceeds sequential-warm %s\n", ba, sa > "/dev/stderr"
            fail = 1
        }
    } else {
        printf "FAIL: EngineBatchSweep results missing from benchmark output\n" > "/dev/stderr"
        fail = 1
    }
    warm = ns["EngineCachedSweep/warm"]
    base = 2237118
    if (warm > 0) {
        lane = base / warm
        lfloor = (cores >= 2 ? 1.8 : 1.4)
        printf ",\n  \"lane_speedup_warm\": %.4f", lane
        printf ",\n  \"lane_speedup_floor\": %.2f", lfloor
        if (lane < lfloor) {
            printf "FAIL: warm cached sweep %.2fx of the pre-widening baseline, below the %.1fx floor (%d cores)\n", lane, lfloor, cores > "/dev/stderr"
            fail = 1
        }
    } else {
        printf "FAIL: EngineCachedSweep/warm result missing from benchmark output\n" > "/dev/stderr"
        fail = 1
    }
    printf "\n}\n"
    if (fail) exit 1
}' > BENCH_mc.json
cat BENCH_mc.json

out="$(go test -run '^$' -bench 'BenchmarkStreamReplay|BenchmarkFleetServe' -benchtime "$benchtime" -benchmem -count 1 .)"
echo "$out"
echo "$out" | awk -v benchtime="$benchtime" -v cores="$cores" '
/^Benchmark/ {
    # e.g. BenchmarkStreamReplay/pipeline-8  20  419631 ns/op  976125 frames/s  151511 B/op  8740 allocs/op
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^BenchmarkStreamReplay\//, "", name)
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "frames/s") fps[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
        if ($(i+1) == "round_p99_ns") p99[name] = $i
        if ($(i+1) == "fleet_p99_ns") fp99[name] = $i
    }
    order[n++] = name
}
END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cores\": %d,\n", cores
    printf "  \"ns_per_op\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"frames_per_sec\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], fps[order[i]], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"allocs_per_op\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], allocs[order[i]], (i < n-1 ? "," : "")
    }
    printf "  }"
    fail = 0
    serial = ns["serial"]; pipe = ns["pipeline"]; rd = ns["read"]
    if (serial > 0 && pipe > 0 && rd > 0) {
        speedup = serial / pipe
        printf ",\n  \"pipeline_speedup\": %.4f", speedup
        floor = (cores >= 2 ? 0.95 : 0.6)
        if (speedup < floor) {
            printf "FAIL: stream pipeline %.2fx of the serial baseline, below the %.2fx floor (%d cores)\n", speedup, floor, cores > "/dev/stderr"
            fail = 1
        }
    } else {
        printf "FAIL: StreamReplay results missing from benchmark output\n" > "/dev/stderr"
        fail = 1
    }
    wp99 = p99["windowed"]
    budget = 100000
    if (wp99 > 0) {
        printf ",\n  \"round_p99_ns\": %s", wp99
        printf ",\n  \"round_p99_budget_ns\": %d", budget
        if (wp99 + 0 > budget) {
            printf "FAIL: windowed per-round p99 %s ns exceeds the %d ns budget\n", wp99, budget > "/dev/stderr"
            fail = 1
        }
    } else {
        printf "FAIL: windowed round_p99_ns missing from benchmark output\n" > "/dev/stderr"
        fail = 1
    }
    fleetp99 = fp99["FleetServe"]
    fbudget = 200000
    if (fleetp99 > 0) {
        printf ",\n  \"fleet_p99_ns\": %s", fleetp99
        printf ",\n  \"fleet_p99_budget_ns\": %d", fbudget
        if (fleetp99 + 0 > fbudget) {
            printf "FAIL: fleet per-frame decode p99 %s ns exceeds the %d ns budget\n", fleetp99, fbudget > "/dev/stderr"
            fail = 1
        }
    } else {
        printf "FAIL: FleetServe fleet_p99_ns missing from benchmark output\n" > "/dev/stderr"
        fail = 1
    }
    est = ns["estimator"]
    if (est > 0 && pipe > 0) {
        ratio = est / pipe
        cap = (cores >= 2 ? 1.05 : 1.15)
        printf ",\n  \"estimator_overhead_ratio\": %.4f", ratio
        printf ",\n  \"estimator_overhead_cap\": %.2f", cap
        if (ratio > cap) {
            printf "FAIL: drift estimator costs %.1f%% of replay throughput, over the %.0f%% budget (%d cores)\n", (ratio-1)*100, (cap-1)*100, cores > "/dev/stderr"
            fail = 1
        }
    } else {
        printf "FAIL: StreamReplay/estimator result missing from benchmark output\n" > "/dev/stderr"
        fail = 1
    }
    printf "\n}\n"
    if (fail) exit 1
}' > BENCH_stream.json
cat BENCH_stream.json

# Lint-gate trajectory: one BenchmarkLintRepo op is a full caliqec-lint pass
# (load + type-check + every rule, CFG and dataflow included) over the whole
# module. Budget: 10s/op. Measured values sit around 0.5s; the headroom
# absorbs slow CI runners while still catching an accidentally quadratic
# rule (the CFG cache, for instance, failing to cache) before the lint job
# becomes the pipeline's long pole.
out="$(go test -run '^$' -bench 'BenchmarkLintRepo' -benchtime "$benchtime" -count 1 .)"
echo "$out"
echo "$out" | awk -v benchtime="$benchtime" -v cores="$cores" '
/^BenchmarkLintRepo/ {
    ns = $3
}
END {
    budget = 10000000000
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cores\": %d,\n", cores
    printf "  \"lint_ns_per_op\": %s,\n", (ns != "" ? ns : "null")
    # %.0f, not %d: 1e10 overflows 32-bit awk integers.
    printf "  \"lint_budget_ns\": %.0f\n", budget
    printf "}\n"
    if (ns == "") {
        printf "FAIL: BenchmarkLintRepo result missing from benchmark output\n" > "/dev/stderr"
        exit 1
    }
    if (ns + 0 > budget) {
        printf "FAIL: lint pass %s ns/op exceeds the %d ns budget\n", ns, budget > "/dev/stderr"
        exit 1
    }
}' > BENCH_lint.json
cat BENCH_lint.json
