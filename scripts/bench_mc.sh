#!/bin/sh
# Runs the mc-engine benchmark pair (cached sweep + obs overhead), writes the
# parsed results to BENCH_mc.json, and fails if the observability layer costs
# the warm cached sweep more than 5%. CI runs this on every push; the
# committed BENCH_mc.json is the trajectory point for the checked-out commit.
#
# Usage: scripts/bench_mc.sh [benchtime]   (default 20x)
set -eu
benchtime="${1:-20x}"
out="$(go test -run '^$' -bench 'BenchmarkEngineCachedSweep|BenchmarkObsOverhead' -benchtime "$benchtime" -count 1 .)"
echo "$out"
echo "$out" | awk -v benchtime="$benchtime" '
/^Benchmark/ {
    # e.g. BenchmarkObsOverhead/recording-8   20   4446020 ns/op
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    order[n++] = name
}
END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"ns_per_op\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
    }
    printf "  }"
    off = ns["ObsOverhead/discard"]; on = ns["ObsOverhead/recording"]
    if (off > 0 && on > 0) {
        ratio = on / off
        printf ",\n  \"obs_overhead_ratio\": %.4f\n", ratio
        printf "}\n"
        if (ratio > 1.05) {
            printf "FAIL: obs overhead %.1f%% exceeds the 5%% budget\n", (ratio-1)*100 > "/dev/stderr"
            exit 1
        }
    } else {
        printf "\n}\n"
        printf "FAIL: ObsOverhead results missing from benchmark output\n" > "/dev/stderr"
        exit 1
    }
}' > BENCH_mc.json
cat BENCH_mc.json
