package caliqec

import (
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"testing"
)

// TestPipelineEndToEnd drives the full public API: synthesize, characterize,
// compile, run calibration intervals against the live patch, and verify the
// patch returns to pristine shape after every interval.
func TestPipelineEndToEnd(t *testing.T) {
	sys, err := NewSystem(Square, 5, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ch := sys.Characterize()
	if len(ch.Gates) == 0 {
		t.Fatal("characterization empty")
	}
	plan, err := sys.Compile(ch, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PTar <= 0 || plan.PTar >= 0.01 {
		t.Fatalf("p_tar = %.4g out of range", plan.PTar)
	}
	if plan.Grouping.TCaliHours <= 0 {
		t.Fatal("no base interval")
	}
	pristineChecks := len(sys.Patch().Checks)
	now := 0.0
	ranSomething := false
	for n := 1; n <= 3; n++ {
		rep, err := sys.RunInterval(plan, n, now)
		if err != nil {
			t.Fatalf("interval %d: %v", n, err)
		}
		if len(rep.DueGates) > 0 {
			ranSomething = true
			if rep.Calibrated == 0 {
				t.Errorf("interval %d: due gates but none calibrated", n)
			}
		}
		if err := sys.Patch().Validate(); err != nil {
			t.Fatalf("interval %d left invalid patch: %v", n, err)
		}
		if len(sys.Patch().Checks) != pristineChecks {
			t.Fatalf("interval %d: %d checks, want pristine %d", n, len(sys.Patch().Checks), pristineChecks)
		}
		if got := sys.Patch().Distance(lattice.BasisX); got != 5 {
			t.Fatalf("interval %d: distance %d", n, got)
		}
		now += plan.Grouping.TCaliHours
	}
	if !ranSomething {
		t.Error("no interval had due gates; plan degenerate")
	}
}

func TestPipelineHeavyHex(t *testing.T) {
	sys, err := NewSystem(HeavyHex, 5, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ch := sys.Characterize()
	plan, err := sys.Compile(ch, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunInterval(plan, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	if err := sys.Patch().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureLER(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	sys, err := NewSystem(Square, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh device: low LER. After 24 h of drift: higher.
	fresh, err := sys.MeasureLER(0, 3, 8000)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := sys.MeasureLER(24, 3, 8000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fresh=%v drifted=%v", fresh, drifted)
	if drifted.LER <= fresh.LER {
		t.Errorf("24h drift did not raise LER: %.4g vs %.4g", drifted.LER, fresh.LER)
	}
}

// TestMeasureLERSweepMatchesSequential pins the facade's batched sweep to
// the sequential API: twin systems with the same seed must report identical
// results whether the round counts are measured one at a time or as one
// EvaluateBatch, because the sweep draws per-spec generators from the
// system RNG in the same order the sequential calls would.
func TestMeasureLERSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	const shots = 4000
	rounds := []int{3, 5}
	sys1, err := NewSystem(Square, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := NewSystem(Square, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var want []decoder.Result
	for _, r := range rounds {
		res, err := sys1.MeasureLER(0, r, shots)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	got, err := sys2.MeasureLERSweep(0, rounds, shots)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sweep returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rounds=%d: sweep %+v != sequential %+v", rounds[i], got[i], want[i])
		}
	}
}

func TestNewSystemRejectsBadDistance(t *testing.T) {
	if _, err := NewSystem(Square, 4, Options{}); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := NewSystem(Square, 1, Options{}); err == nil {
		t.Error("distance 1 accepted")
	}
}
