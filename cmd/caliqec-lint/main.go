// Command caliqec-lint runs the project's static-analysis rules
// (internal/analysis) over the repository:
//
//	go run ./cmd/caliqec-lint ./...
//
// With -json it prints a machine-readable report (findings with
// file/line/rule/message/waived plus summary counts) instead of the
// human-readable lines; waived findings appear only in the JSON output.
//
// Exit codes form a contract CI can rely on:
//
//	0  clean (no findings, or every finding waived)
//	1  at least one unwaived finding
//	2  the packages could not be loaded (bad pattern, parse failure)
//
// Violations are suppressed, one line at a time and with a mandatory
// reason, via
//
//	//lint:allow <rule>[,<rule>...] <reason>
//
// See DESIGN.md's "Enforced invariants" (§8) and "Flow-sensitive analysis"
// (§13) for what each rule protects.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"caliqec/internal/analysis"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	jsonOut := flag.Bool("json", false, "emit a JSON report (findings incl. waived, plus counts) on stdout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: caliqec-lint [-rules] [-json] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	rules := analysis.AllRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.Name, r.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	findings := analysis.RunDetailed(pkgs, rules)
	report := analysis.NewReport(findings, cwd)

	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			if f.Waived {
				continue
			}
			pos := f.Pos
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
			fmt.Printf("%s: %s: %s\n", pos, f.Rule, f.Message)
		}
	}
	if report.Violations > 0 {
		fmt.Fprintf(os.Stderr, "caliqec-lint: %d violation(s)\n", report.Violations)
		os.Exit(1)
	}
}

// fatal reports a load-level failure and exits 2, distinguishing "could not
// analyze" from "analyzed and found violations" (exit 1) for CI.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caliqec-lint:", err)
	os.Exit(2)
}
