// Command caliqec-lint runs the project's static-analysis rules
// (internal/analysis) over the repository:
//
//	go run ./cmd/caliqec-lint ./...
//
// It exits 1 if any rule fires. Violations are suppressed, one line at a
// time and with a mandatory reason, via
//
//	//lint:allow <rule>[,<rule>...] <reason>
//
// See DESIGN.md's "Enforced invariants" for what each rule protects.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"caliqec/internal/analysis"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: caliqec-lint [-rules] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	rules := analysis.AllRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, rules)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "caliqec-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caliqec-lint:", err)
	os.Exit(1)
}
