// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp fig10          # one experiment
//	repro -exp all            # everything, in paper order
//	repro -list               # list experiment IDs
//	repro -exp table2 -seed 7 # alternate seed
package main

import (
	"caliqec/internal/exp"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var (
		which  = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		seed   = flag.Uint64("seed", 2025, "random seed")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		outDir = flag.String("o", "", "also write <id>.json and <id>.csv into this directory")
	)
	flag.Parse()
	reg := exp.All()
	if *list {
		for _, id := range exp.Order() {
			fmt.Println(id)
		}
		return
	}
	ids := exp.Order()
	if *which != "all" {
		if _, ok := reg[*which]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *which)
			os.Exit(2)
		}
		ids = []string{*which}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := reg[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *outDir != "" {
			if err := rep.WriteFiles(*outDir); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing files: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
