// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp fig10          # one experiment
//	repro -exp all            # everything, in paper order
//	repro -list               # list experiment IDs
//	repro -exp table2 -seed 7 # alternate seed
//	repro -exp fig13 -progress # live Monte-Carlo status on stderr
//
// Experiments that sample several Monte-Carlo configurations (fit, fig13,
// cycle, the ablations) evaluate them as one batch over the engine's shared
// chunk scheduler, so -progress lines from co-scheduled specs interleave;
// each line is prefixed with its spec's label. Batching changes wall-clock
// only — every reported number is identical to sequential evaluation.
//
// Interrupting (Ctrl-C) cancels the in-flight Monte-Carlo evaluation
// promptly instead of waiting for the shot budget to drain.
package main

import (
	"caliqec/internal/exp"
	"caliqec/internal/obs"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		which       = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		seed        = flag.Uint64("seed", 2025, "random seed")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		outDir      = flag.String("o", "", "also write <id>.json and <id>.csv into this directory")
		progress    = flag.Bool("progress", false, "print live Monte-Carlo status lines to stderr")
		metricsPath = flag.String("metrics", "", "write the metrics snapshot (JSON) to this file at exit")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON file to this file at exit")
	)
	flag.Parse()
	reg := exp.All()
	if *list {
		for _, id := range exp.Order() {
			fmt.Println(id)
		}
		return
	}
	ids := exp.Order()
	if *which != "all" {
		if _, ok := reg[*which]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *which)
			os.Exit(2)
		}
		ids = []string{*which}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(nil)
		ctx = obs.WithTracer(ctx, tracer)
	}
	dumpObs := func() {
		if *metricsPath != "" {
			if err := writeTo(*metricsPath, obs.Default.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
			}
		}
		if tracer != nil {
			if err := writeTo(*tracePath, tracer.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			}
		}
	}
	defer dumpObs()
	if *progress {
		ctx = exp.WithProgress(ctx, func(label string, shots, total, failures int) {
			fmt.Fprintf(os.Stderr, "\r\x1b[K%s: %d/%d shots, %d failures", label, shots, total, failures)
		})
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := reg[id](ctx, *seed)
		if *progress {
			fmt.Fprint(os.Stderr, "\r\x1b[K")
		}
		if err != nil {
			dumpObs() // os.Exit skips the deferred dump
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "%s: interrupted\n", id)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *outDir != "" {
			if err := rep.WriteFiles(*outDir); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing files: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
