// Command caliqec drives the CaliQEC pipeline from the shell.
//
// Subcommands:
//
//	caliqec characterize -topology square -d 5       preparation stage
//	caliqec schedule     -topology hex -d 5 -ler 1e-3 compilation stage
//	caliqec run          -d 5 -intervals 4           full in-situ loop
//	caliqec simulate     -d 3,5,7 -p 2e-3 -shots 20000   Monte-Carlo LER sweep (batched)
//	caliqec record       -d 3 -shots 20000 -o t.bin  persist a syndrome trace
//	caliqec replay       -d 3 -check t.bin           decode a trace (optionally verify)
//	caliqec serve        -addr :8790 -d 3,5          live-decode TCP syndrome streams
//	caliqec serve        -fleet -tenant-rate 5e4     multi-tenant shared-pool decode fleet
//	caliqec loadgen      -streams 256 -tenants 4     drive a fleet and check its SLOs
//	caliqec health       -addr 127.0.0.1:8791        poll a replay/serve drift-health endpoint
//	caliqec vet          -d 3                        static IR + deformation-log checks
//	caliqec instructions                             print Table 1
package main

import (
	"caliqec"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"caliqec/internal/runtime"
	"caliqec/internal/workload"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "characterize":
		err = cmdCharacterize(args)
	case "schedule":
		err = cmdSchedule(args)
	case "run":
		err = cmdRun(args)
	case "simulate":
		err = cmdSimulate(args)
	case "record":
		err = cmdRecord(args)
	case "replay":
		err = cmdReplay(args)
	case "serve":
		err = cmdServe(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "health":
		err = cmdHealth(args)
	case "vet":
		err = cmdVet(args)
	case "instructions":
		err = cmdInstructions()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "caliqec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: caliqec <characterize|schedule|run|simulate|record|replay|serve|loadgen|health|vet|instructions> [flags]`)
}

func topoFlag(fs *flag.FlagSet) *string {
	return fs.String("topology", "square", "lattice topology: square | hex")
}

func parseTopo(s string) (caliqec.Topology, error) {
	switch s {
	case "square":
		return caliqec.Square, nil
	case "hex", "heavy-hex", "heavyhex":
		return caliqec.HeavyHex, nil
	}
	return 0, fmt.Errorf("unknown topology %q", s)
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	topo := topoFlag(fs)
	d := fs.Int("d", 5, "code distance")
	seed := fs.Uint64("seed", 1, "random seed")
	limit := fs.Int("limit", 20, "gates to print (0 = all)")
	fs.Parse(args)
	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	sys, err := caliqec.NewSystem(tp, *d, caliqec.Options{Seed: *seed})
	if err != nil {
		return err
	}
	ch := sys.Characterize()
	fmt.Printf("characterized %d gates on %v d=%d (%d physical qubits)\n\n",
		len(ch.Gates), tp, *d, sys.Device.Lat.NumQubits())
	fmt.Printf("%-6s %-10s %-12s %-12s %-10s %s\n", "gate", "kind", "p0(est)", "Tdrift(est)", "Tcali", "|nbr|")
	n := 0
	for _, gc := range ch.Gates {
		g := sys.Device.Gate(gc.GateID)
		fmt.Printf("%-6d %-10v %-12.3g %-12.2f %-10.3f %d\n",
			gc.GateID, g.Kind, gc.Drift.P0, gc.Drift.TDrift, gc.CaliHours, len(gc.Nbr))
		n++
		if *limit > 0 && n >= *limit {
			fmt.Printf("... (%d more)\n", len(ch.Gates)-n)
			break
		}
	}
	return nil
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	topo := topoFlag(fs)
	d := fs.Int("d", 5, "code distance")
	seed := fs.Uint64("seed", 1, "random seed")
	ler := fs.Float64("ler", 1e-3, "target logical error rate per cycle")
	fs.Parse(args)
	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	sys, err := caliqec.NewSystem(tp, *d, caliqec.Options{Seed: *seed})
	if err != nil {
		return err
	}
	plan, err := sys.Compile(sys.Characterize(), *ler)
	if err != nil {
		return err
	}
	fmt.Printf("p_tar = %.4g (LER target %.3g at d=%d)\n", plan.PTar, *ler, *d)
	fmt.Printf("base interval T_Cali = %.3f h, total frequency = %.3f cal/h\n\n",
		plan.Grouping.TCaliHours, plan.Grouping.TotalFrequency())
	var ks []int
	for k := range plan.Grouping.Groups {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Printf("group k=%-3d period %6.2f h: %d gates\n",
			k, float64(k)*plan.Grouping.TCaliHours, len(plan.Grouping.Groups[k]))
	}
	return nil
}

func cmdRun(args []string) (err error) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	topo := topoFlag(fs)
	d := fs.Int("d", 5, "code distance")
	seed := fs.Uint64("seed", 1, "random seed")
	ler := fs.Float64("ler", 1e-3, "target logical error rate per cycle")
	intervals := fs.Int("intervals", 4, "calibration intervals to execute")
	shots := fs.Int("shots", 0, "when > 0, Monte-Carlo-measure the patch LER after each interval with this shot budget")
	account := fs.Bool("account", true, "run the Table-2 strategy accounting (no-cal / LSC / CaliQEC retry risk) after the intervals")
	oc := addObsFlags(fs)
	fs.Parse(args)
	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = oc.start(ctx)
	defer func() {
		if ferr := oc.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	sys, err := caliqec.NewSystem(tp, *d, caliqec.Options{Seed: *seed})
	if err != nil {
		return err
	}
	plan, err := sys.Compile(sys.Characterize(), *ler)
	if err != nil {
		return err
	}
	fmt.Printf("in-situ calibration on %v d=%d: T_Cali=%.2fh p_tar=%.4g\n\n",
		tp, *d, plan.Grouping.TCaliHours, plan.PTar)
	now := 0.0
	for n := 1; n <= *intervals; n++ {
		rep, err := sys.RunIntervalContext(ctx, plan, n, now)
		if err != nil {
			return err
		}
		fmt.Printf("interval %d (t=%6.2fh): %3d due, %3d calibrated in %d batches (Δd≤%d, enlarged=%v, %.2fh)\n",
			n, now, len(rep.DueGates), rep.Calibrated, rep.Batches, rep.MaxDeltaD, rep.Enlarged, rep.ElapsedHours)
		if err := sys.Patch().Validate(); err != nil {
			return fmt.Errorf("patch invalid after interval %d: %w", n, err)
		}
		if *shots > 0 {
			res, err := sys.MeasureLERContext(ctx, now, *d, *shots)
			if err != nil {
				return err
			}
			fmt.Printf("  patch LER at t=%.2fh: %v (per-round %.4g)\n", now, res, res.PerRoundLER)
		}
		now += plan.Grouping.TCaliHours
	}
	fmt.Printf("\npatch valid, distance (%d, %d), %d checks\n",
		sys.Patch().Distance(lattice.BasisX), sys.Patch().Distance(lattice.BasisZ), len(sys.Patch().Checks))
	if *account {
		fmt.Printf("\nstrategy accounting (Hubbard-10-10, d=25, retry budget 1%%):\n")
		cfg := runtime.Config{Prog: workload.Hubbard(10, 10), D: 25, RetryTarget: 0.01, Seed: *seed}
		for _, strat := range []runtime.Strategy{runtime.StrategyNoCal, runtime.StrategyLSC, runtime.StrategyCaliQEC} {
			res, err := runtime.Run(ctx, cfg, strat)
			if err != nil {
				return err
			}
			fmt.Printf("  %v\n", res)
		}
	}
	return nil
}

// parseDistances parses the simulate -d value: a single distance or a
// comma-separated list for a batched multi-distance sweep.
func parseDistances(s string) ([]int, error) {
	var ds []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil || d < 3 || d%2 == 0 {
			return nil, fmt.Errorf("invalid distance %q (want odd integers ≥ 3, comma-separated)", part)
		}
		ds = append(ds, d)
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("no distances in %q", s)
	}
	return ds, nil
}

func cmdSimulate(args []string) (err error) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	topo := topoFlag(fs)
	dList := fs.String("d", "3", "code distance, or comma-separated distances (e.g. 3,5,7) for one batched sweep")
	p := fs.Float64("p", 1e-3, "physical error rate")
	rounds := fs.Int("rounds", 0, "QEC rounds (default: the distance)")
	shots := fs.Int("shots", 20000, "Monte-Carlo shot budget per distance")
	seed := fs.Uint64("seed", 1, "random seed")
	isolate := fs.Bool("isolate", false, "isolate the central data qubit first (DataQ_RM)")
	targetFails := fs.Int("target-failures", 0, "stop early once this many logical failures are seen (0 = run the full budget)")
	progress := fs.Bool("progress", false, "print a live shots/failures status line to stderr")
	oc := addObsFlags(fs)
	fs.Parse(args)
	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	ds, err := parseDistances(*dList)
	if err != nil {
		return err
	}
	specs := make([]mc.Spec, len(ds))
	roundsOf := make([]int, len(ds))
	for i, d := range ds {
		r := *rounds
		if r == 0 {
			r = d
		}
		roundsOf[i] = r
		var lat *lattice.Lattice
		if tp == caliqec.Square {
			lat = lattice.NewSquare(d)
		} else {
			lat = lattice.NewHeavyHex(d)
		}
		patch := code.NewPatch(lat)
		if *isolate {
			df := deform.NewDeformer(patch)
			q := lat.DataID[[2]int{d / 2, d / 2}]
			rec, err := df.IsolateQubit(q, "cli")
			if err != nil {
				return err
			}
			patch = df.Patch
			fmt.Printf("d=%d: isolated qubit %d: %v\n", d, q, rec)
		}
		c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: r, Basis: lattice.BasisZ, Noise: code.UniformNoise(*p)})
		if err != nil {
			return err
		}
		// Each distance seeds its own generator (seed+i, so a single -d run
		// reproduces the historical rng.New(seed) stream exactly); batching
		// the sweep cannot perturb any distance's result.
		specs[i] = mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind,
			Shots: *shots, Rounds: r, RNG: rng.New(*seed + uint64(i)),
			TargetFailures: *targetFails,
		}
		if *progress {
			d := d
			specs[i].Progress = func(done, failures int) {
				fmt.Fprintf(os.Stderr, "\rd=%d: %d/%d shots, %d failures", d, done, *shots, failures)
			}
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = oc.start(ctx)
	defer func() {
		if ferr := oc.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	results, err := mc.EvaluateBatch(ctx, specs)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	for i, res := range results {
		fmt.Printf("%v d=%d p=%.3g rounds=%d: %v (per-round %.4g)\n", tp, ds[i], *p, roundsOf[i], res.Result, res.PerRoundLER)
		if res.EarlyStopped {
			fmt.Printf("early stop: %d of %d budgeted shots spent\n", res.Shots, res.Requested)
		}
	}
	return nil
}

func cmdInstructions() error {
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		fmt.Printf("%-10s:", kind)
		for _, op := range deform.InstructionSet(kind) {
			fmt.Printf(" %s", op)
		}
		fmt.Println()
	}
	return nil
}
