package main

import (
	"caliqec/internal/obs"
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
)

// obsConfig wires the observability flags shared by the subcommands:
// -metrics and -trace dump the obs.Default registry snapshot and the run's
// Chrome trace-event file at exit, -debug-addr serves /metrics plus
// net/http/pprof while the command runs.
type obsConfig struct {
	metricsPath string
	tracePath   string
	debugAddr   string
	tracer      *obs.Tracer
}

func addObsFlags(fs *flag.FlagSet) *obsConfig {
	c := &obsConfig{}
	fs.StringVar(&c.metricsPath, "metrics", "", "write the metrics snapshot (JSON) to this file at exit")
	fs.StringVar(&c.tracePath, "trace", "", "write a Chrome trace-event JSON file (chrome://tracing / Perfetto) to this file at exit")
	fs.StringVar(&c.debugAddr, "debug-addr", "", "serve /metrics and /debug/pprof on this address while the command runs")
	return c
}

// start attaches a tracer to ctx when -trace is set and starts the debug
// server when -debug-addr is set. Call finish (even on error paths) to
// write the requested files.
func (c *obsConfig) start(ctx context.Context) context.Context {
	if c.tracePath != "" {
		c.tracer = obs.NewTracer(nil)
		ctx = obs.WithTracer(ctx, c.tracer)
	}
	if c.debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(c.debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "caliqec: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/metrics and /debug/pprof/\n", c.debugAddr)
	}
	return ctx
}

// finish writes the metrics snapshot and trace file, if requested.
func (c *obsConfig) finish() error {
	if c.metricsPath != "" {
		f, err := os.Create(c.metricsPath)
		if err != nil {
			return err
		}
		if err := obs.Default.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.tracePath != "" && c.tracer != nil {
		f, err := os.Create(c.tracePath)
		if err != nil {
			return err
		}
		if err := c.tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
