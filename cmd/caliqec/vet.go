package main

import (
	"flag"
	"fmt"

	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
)

// cmdVet statically checks the domain IR without running the simulator:
// for each lattice kind it builds the example memory circuits (pristine and
// mid-deformation) and validates them — probability ranges, resolvable
// detector/observable record references, deterministic detector indexing —
// then replays a full isolate→enlarge→reintegrate→shrink session and
// verifies the Deformer's instruction history for legality against the
// kind's instruction set (paper Table 1).
func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	d := fs.Int("d", 3, "code distance of the example circuits")
	p := fs.Float64("p", 1e-3, "physical error rate of the example circuits")
	rounds := fs.Int("rounds", 0, "QEC rounds (default d)")
	fs.Parse(args)
	if *rounds == 0 {
		*rounds = *d
	}
	bad := 0
	check := func(what string, err error) {
		if err != nil {
			bad++
			fmt.Printf("FAIL %-40s %v\n", what, err)
		} else {
			fmt.Printf("ok   %s\n", what)
		}
	}
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		var lat *lattice.Lattice
		if kind == lattice.Square {
			lat = lattice.NewSquareRect(*d, *d)
		} else {
			lat = lattice.NewHeavyHexRect(*d, *d)
		}
		patch := code.NewPatch(lat)
		check(fmt.Sprintf("%v d=%d pristine patch", kind, *d), patch.Validate())

		c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: *rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(*p)})
		check(fmt.Sprintf("%v d=%d memory circuit", kind, *d), errOrValidate(c, err))

		// A full deformation session: isolate the central data qubit,
		// enlarge, reintegrate, shrink back — then verify both the
		// mid-session circuit and the complete instruction history.
		df := deform.NewDeformer(code.NewPatch(lat))
		q := lat.DataID[[2]int{*d / 2, *d / 2}]
		_, err = df.IsolateRegion([]int{q}, "vet")
		check(fmt.Sprintf("%v d=%d isolate central qubit", kind, *d), err)
		check(fmt.Sprintf("%v d=%d enlarge (PatchQ_AD)", kind, *d), df.Enlarge(true))
		cDef, err := df.Patch.MemoryCircuit(code.MemoryOptions{Rounds: *rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(*p)})
		check(fmt.Sprintf("%v d=%d deformed memory circuit", kind, *d), errOrValidate(cDef, err))
		check(fmt.Sprintf("%v d=%d reintegrate", kind, *d), df.Reintegrate("vet"))
		check(fmt.Sprintf("%v d=%d shrink", kind, *d), df.Shrink(true))

		issues := deform.VerifyLog(kind, df.History)
		for _, is := range issues {
			bad++
			fmt.Printf("FAIL %v d=%d history: %v\n", kind, *d, is)
		}
		if len(issues) == 0 {
			fmt.Printf("ok   %v d=%d deformation history (%d entries)\n", kind, *d, len(df.History))
		}
	}
	if bad > 0 {
		return fmt.Errorf("vet: %d check(s) failed", bad)
	}
	return nil
}

// errOrValidate folds a build error and a validation error into one.
func errOrValidate(c *circuit.Circuit, err error) error {
	if err != nil {
		return err
	}
	return c.Validate()
}
