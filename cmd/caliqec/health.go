package main

import (
	"bufio"
	"caliqec/internal/obs"
	"caliqec/internal/stream"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

// driftConfig wires the drift-observability flags shared by replay and
// serve: -drift-window enables the in-pipeline estimators, -health-addr
// serves /health (+ /metrics) over HTTP while the command runs, -drift-log
// appends structured drift events as JSON lines.
type driftConfig struct {
	healthAddr  string
	driftLog    string
	driftWindow int

	health *stream.HealthRegistry
	sink   *obs.EventSink
	logF   *os.File
	logBuf *bufio.Writer
}

func addDriftFlags(fs *flag.FlagSet) *driftConfig {
	c := &driftConfig{}
	fs.StringVar(&c.healthAddr, "health-addr", "", "serve /health, /health/stream/<id> and /metrics on this address while decoding")
	fs.StringVar(&c.driftLog, "drift-log", "", "append drift events to this file as JSON lines")
	fs.IntVar(&c.driftWindow, "drift-window", 0, "drift-estimator window in frames (0 = off; defaults to 1000 when -health-addr or -drift-log is set)")
	return c
}

// enabled reports whether any drift flag switched monitoring on.
func (c *driftConfig) enabled() bool {
	return c.driftWindow > 0 || c.healthAddr != "" || c.driftLog != ""
}

// start opens the event log and the health endpoint, returning the
// estimator config to hand to the pipeline (zero-valued when monitoring is
// off). Call finish (even on error paths) to flush and close the log.
func (c *driftConfig) start() (stream.EstimatorConfig, error) {
	if !c.enabled() {
		return stream.EstimatorConfig{}, nil
	}
	if c.driftWindow <= 0 {
		c.driftWindow = 1000
	}
	cfg := stream.EstimatorConfig{Window: c.driftWindow}
	c.health = stream.NewHealthRegistry()
	cfg.Health = c.health
	if c.driftLog != "" {
		f, err := os.OpenFile(c.driftLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return stream.EstimatorConfig{}, err
		}
		c.logF = f
		c.logBuf = bufio.NewWriter(f)
		c.sink = obs.NewEventSink(c.logBuf, 0)
		cfg.Events = c.sink
	}
	if c.healthAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/health", c.health.Handler())
		mux.Handle("/health/stream/", c.health.Handler())
		mux.Handle("/metrics", obs.Default.Handler())
		go func() {
			if err := http.ListenAndServe(c.healthAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "caliqec: health server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "health server on http://%s/health\n", c.healthAddr)
	}
	return cfg, nil
}

// finish drains the event sink and closes the log, reporting dropped
// events so a stalled disk never silently loses drift evidence.
func (c *driftConfig) finish() error {
	if c.sink == nil {
		if c.logF != nil {
			return c.logF.Close()
		}
		return nil
	}
	err := c.sink.Close()
	if ferr := c.logBuf.Flush(); err == nil {
		err = ferr
	}
	if ferr := c.logF.Close(); err == nil {
		err = ferr
	}
	if n := c.sink.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "caliqec: %d drift events dropped (slow event log)\n", n)
	}
	return err
}

// cmdHealth polls a running replay/serve health endpoint and renders the
// per-stream drift state as text.
func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8791", "health endpoint address (the -health-addr of a running replay/serve)")
	one := fs.String("stream", "", "show only this stream (/health/stream/<id>)")
	watch := fs.Duration("watch", 0, "re-poll at this interval until interrupted (0 = once)")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	poll := func() error {
		snaps, err := fetchHealth(*addr, *one)
		if err != nil {
			return err
		}
		renderHealth(os.Stdout, snaps)
		return nil
	}
	if err := poll(); err != nil {
		return err
	}
	if *watch <= 0 {
		return nil
	}
	tick := time.NewTicker(*watch)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
			fmt.Println()
			if err := poll(); err != nil {
				return err
			}
		}
	}
}

// fetchHealth retrieves one or all stream snapshots from the endpoint.
func fetchHealth(addr, one string) ([]stream.HealthSnapshot, error) {
	url := "http://" + addr + "/health"
	if one != "" {
		url += "/stream/" + one
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("health endpoint: %s", resp.Status)
	}
	if one != "" {
		var snap stream.HealthSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return nil, err
		}
		return []stream.HealthSnapshot{snap}, nil
	}
	var rep struct {
		Streams []stream.HealthSnapshot `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return rep.Streams, nil
}

// renderHealth prints one aligned row per stream plus a drifting-detector
// detail line for any stream that is flagged.
func renderHealth(w *os.File, snaps []stream.HealthSnapshot) {
	if len(snaps) == 0 {
		fmt.Fprintln(w, "no streams")
		return
	}
	fmt.Fprintf(w, "%-12s %10s %8s %22s %8s %7s %6s\n",
		"stream", "frames", "windows", "LER [95-ish CI]", "baseline", "events", "drift")
	for _, s := range snaps {
		drift := "ok"
		if len(s.Drifting) > 0 {
			drift = "DRIFT"
		}
		fmt.Fprintf(w, "%-12s %10d %8d %8.3g [%.2g, %.2g] %8.3g %7d %6s\n",
			s.Stream, s.Frames, s.Windows, s.LER, s.LERLo, s.LERHi, s.BaselineLER, s.Events, drift)
		if len(s.Drifting) > 0 {
			parts := make([]string, len(s.Drifting))
			for i, d := range s.Drifting {
				parts[i] = fmt.Sprintf("det %d (qubit %d, round %d, %d trips)", d.Detector, d.Qubit, d.Round, d.Trips)
			}
			sort.Strings(parts)
			fmt.Fprintf(w, "  drifting: %s\n", strings.Join(parts, "; "))
		}
	}
}
