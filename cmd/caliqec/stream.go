package main

import (
	"bufio"
	"caliqec"
	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/fleet"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/stream"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	goruntime "runtime"
	"syscall"
)

// buildMemoryCircuit rebuilds the memory-experiment circuit the stream
// subcommands operate on. Record and replay must construct it from the same
// flags: the trace header's circuit fingerprint is checked against it before
// a single frame is decoded.
func buildMemoryCircuit(tp caliqec.Topology, d, rounds int, p float64) (*circuit.Circuit, int, error) {
	if rounds == 0 {
		rounds = d
	}
	var lat *lattice.Lattice
	if tp == caliqec.Square {
		lat = lattice.NewSquare(d)
	} else {
		lat = lattice.NewHeavyHex(d)
	}
	c, err := code.NewPatch(lat).MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	return c, rounds, err
}

func cmdRecord(args []string) (err error) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	topo := topoFlag(fs)
	d := fs.Int("d", 3, "code distance")
	p := fs.Float64("p", 1e-3, "physical error rate")
	rounds := fs.Int("rounds", 0, "QEC rounds (default: the distance)")
	shots := fs.Int("shots", 20000, "shots to record")
	seed := fs.Uint64("seed", 1, "random seed (stored in the trace header)")
	out := fs.String("o", "trace.bin", "output trace file")
	oc := addObsFlags(fs)
	fs.Parse(args)
	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	c, r, err := buildMemoryCircuit(tp, *d, *rounds, *p)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = oc.start(ctx)
	defer func() {
		if ferr := oc.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	spec := mc.Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: *shots, Rounds: r, Seed: *seed}
	n, rerr := stream.Record(ctx, spec, bw)
	if ferr := bw.Flush(); rerr == nil {
		rerr = ferr
	}
	if ferr := f.Close(); rerr == nil {
		rerr = ferr
	}
	if rerr != nil {
		return rerr
	}
	fmt.Printf("recorded %d shots of %v d=%d p=%.3g rounds=%d (fingerprint %x) to %s\n",
		n, tp, *d, *p, r, mc.Fingerprint(c), *out)
	return nil
}

func cmdReplay(args []string) (err error) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	topo := topoFlag(fs)
	d := fs.Int("d", 3, "code distance the trace was recorded at")
	p := fs.Float64("p", 1e-3, "physical error rate the trace was recorded at")
	rounds := fs.Int("rounds", 0, "QEC rounds (default: the distance)")
	workers := fs.Int("workers", 0, "decode worker fan-out (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "frame queue depth between reader and workers (0 = default)")
	window := fs.Int("window", 0, "decode through a sliding round window of this many rounds (0 = whole-shot); resident decode state is O(window)")
	check := fs.Bool("check", false, "re-run the in-process evaluation from the trace's seed metadata and fail on any count mismatch")
	to := fs.String("to", "", "stream the trace to a caliqec serve instance at this TCP address instead of decoding locally")
	oc := addObsFlags(fs)
	dc := addDriftFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: caliqec replay [flags] <trace file>")
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if *to != "" {
		conn, err := net.Dial("tcp", *to)
		if err != nil {
			return err
		}
		defer conn.Close()
		sum, err := stream.SendTrace(conn, bufio.NewReader(f))
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(sum)
	}

	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	c, r, err := buildMemoryCircuit(tp, *d, *rounds, *p)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = oc.start(ctx)
	defer func() {
		if ferr := oc.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	est, err := dc.start()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := dc.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	tr, err := stream.NewReader(bufio.NewReader(f))
	if err != nil {
		return err
	}
	h := tr.Header()
	if h.Fingerprint != mc.Fingerprint(c) {
		return fmt.Errorf("trace fingerprint %x does not match %v d=%d p=%.3g rounds=%d (%x); pass the flags the trace was recorded with",
			h.Fingerprint, tp, *d, *p, r, mc.Fingerprint(c))
	}
	eng := mc.New(mc.Options{})
	var scorer stream.FrameScorer
	if *window > 0 {
		wd, err := eng.WindowedFrameDecoder(c, *window)
		if err != nil {
			return err
		}
		if h.Rounds > 0 && h.Rounds != wd.NumRounds() {
			return fmt.Errorf("trace records %d rounds/shot but the circuit has %d", h.Rounds, wd.NumRounds())
		}
		fmt.Printf("windowed decoding: W=%d of %d rounds\n", *window, wd.NumRounds())
		scorer = wd
	} else {
		fd, err := eng.FrameDecoder(c, decoder.KindUnionFind)
		if err != nil {
			return err
		}
		scorer = fd
	}
	stats, rerr := stream.Replay(ctx, tr, scorer, stream.PipelineOptions{Workers: *workers, QueueDepth: *queue, Estimator: est})
	if rerr != nil && !errors.Is(rerr, stream.ErrTruncated) {
		return rerr
	}
	ler := 0.0
	if stats.Frames > 0 {
		ler = float64(stats.Failures) / float64(stats.Frames)
	}
	fmt.Printf("replayed %d frames: %d failures, LER %.4g", stats.Frames, stats.Failures, ler)
	if stats.Truncated {
		fmt.Printf(" (trace truncated after %d of %d promised frames)", stats.Frames, h.Shots)
	}
	fmt.Println()
	if dc.enabled() {
		fmt.Printf("drift: %d events over %d-frame windows", stats.DriftEvents, est.Window)
		if mon := est.Health.Get("replay"); mon != nil {
			if qs := mon.Snapshot().DriftingQubits; len(qs) > 0 {
				fmt.Printf("; drifting qubits %v", qs)
			}
		}
		fmt.Println()
	}

	if *check {
		if stats.Truncated {
			return fmt.Errorf("-check: cannot verify a truncated trace")
		}
		if *window > 0 && *window < c.NumRounds {
			return fmt.Errorf("-check: a sliding window (W=%d < %d rounds) is not bit-identical to the whole-shot evaluation; use -window 0 or >= %d", *window, c.NumRounds, c.NumRounds)
		}
		if h.Shots == 0 {
			return fmt.Errorf("-check: trace header carries no shot count")
		}
		want, err := eng.Evaluate(ctx, mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind,
			Shots: int(h.Shots), Rounds: r, Seed: h.Seed,
		})
		if err != nil {
			return err
		}
		if want.Failures != stats.Failures || want.Shots != stats.Frames {
			return fmt.Errorf("-check FAILED: replay counted %d failures over %d frames, in-process evaluation %d over %d",
				stats.Failures, stats.Frames, want.Failures, want.Shots)
		}
		fmt.Printf("check ok: in-process evaluation reproduces %d failures over %d shots\n", want.Failures, want.Shots)
	}
	return nil
}

func cmdServe(args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	topo := topoFlag(fs)
	dList := fs.String("d", "3", "code distance, or comma-separated distances, to serve decoders for")
	p := fs.Float64("p", 1e-3, "physical error rate of the served decoding graphs")
	rounds := fs.Int("rounds", 0, "QEC rounds (default: the distance)")
	addr := fs.String("addr", "127.0.0.1:8790", "TCP listen address")
	workers := fs.Int("workers", 0, "decode worker fan-out per stream (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "frame queue depth per stream (0 = default)")
	window := fs.Int("window", 0, "serve sliding-window decoders with this round window (0 = whole-shot); traces recording a different rounds/shot are rejected")
	ff := addFleetFlags(fs)
	oc := addObsFlags(fs)
	dc := addDriftFlags(fs)
	fs.Parse(args)
	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	ds, err := parseDistances(*dList)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = oc.start(ctx)
	defer func() {
		if ferr := oc.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	est, err := dc.start()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := dc.finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	eng := mc.New(mc.Options{})
	cat := stream.NewCatalog()
	for _, d := range ds {
		c, r, err := buildMemoryCircuit(tp, d, *rounds, *p)
		if err != nil {
			return err
		}
		var (
			scorer stream.FrameScorer
			fp     [16]byte
			mode   string
		)
		if *window > 0 {
			wd, err := eng.WindowedFrameDecoder(c, *window)
			if err != nil {
				return err
			}
			scorer, fp = wd, wd.CircuitFingerprint()
			mode = fmt.Sprintf(" window=%d/%d", *window, wd.NumRounds())
		} else {
			fd, err := eng.FrameDecoder(c, decoder.KindUnionFind)
			if err != nil {
				return err
			}
			scorer, fp = fd, fd.CircuitFingerprint()
		}
		cat.Register(fp, scorer)
		fmt.Printf("serving %v d=%d p=%.3g rounds=%d%s: fingerprint %x\n", tp, d, *p, r, mode, fp)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *ff.on {
		cfg, err := ff.config(est)
		if err != nil {
			return err
		}
		nw := cfg.Workers
		if nw <= 0 {
			nw = goruntime.GOMAXPROCS(0)
		}
		fmt.Printf("listening on %s (%d circuits, fleet pool of %d workers); Ctrl-C drains and exits\n",
			ln.Addr(), cat.Len(), nw)
		return fleet.NewServer(cfg, cat.Resolve).Serve(ctx, ln)
	}
	fmt.Printf("listening on %s (%d circuits); Ctrl-C drains and exits\n", ln.Addr(), cat.Len())
	return stream.NewServer(cat.Resolve, stream.PipelineOptions{Workers: *workers, QueueDepth: *queue, Estimator: est}).Serve(ctx, ln)
}
