package main

import (
	"bytes"
	"caliqec/internal/decoder"
	"caliqec/internal/fleet"
	"caliqec/internal/mc"
	"caliqec/internal/stream"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// parseTenantWeights parses "id:weight[,id:weight...]" (e.g. "1:3,2:1").
func parseTenantWeights(s string) (map[uint32]int, error) {
	m := map[uint32]int{}
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("invalid tenant weight %q (want id:weight)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		w, werr := strconv.Atoi(kv[1])
		if err != nil || werr != nil || w <= 0 {
			return nil, fmt.Errorf("invalid tenant weight %q (want id:weight, weight >= 1)", part)
		}
		m[uint32(id)] = w
	}
	return m, nil
}

// fleetServeFlags bundles the serve flags that configure the shared pool.
type fleetServeFlags struct {
	on            *bool
	workers       *int
	streamQueue   *int
	quantum       *int
	tenantRate    *float64
	tenantBurst   *float64
	tenantStreams *int
	tenantWeights *string
}

func addFleetFlags(fs *flag.FlagSet) fleetServeFlags {
	return fleetServeFlags{
		on:            fs.Bool("fleet", false, "decode all connections through one shared multi-tenant worker pool (admission control + fair scheduling) instead of a per-connection pipeline"),
		workers:       fs.Int("fleet-workers", 0, "shared pool size when -fleet is set (0 = GOMAXPROCS); this is the whole server's decode concurrency"),
		streamQueue:   fs.Int("stream-queue", 0, "per-stream admitted-frame queue bound when -fleet is set (0 = 256); a full queue sheds instead of stalling the socket"),
		quantum:       fs.Int("quantum", 0, "deficit-round-robin quantum in frames when -fleet is set (0 = 64)"),
		tenantRate:    fs.Float64("tenant-rate", 0, "default per-tenant admitted-frame budget in frames/s (0 = unmetered)"),
		tenantBurst:   fs.Float64("tenant-burst", 0, "default per-tenant token-bucket burst in frames (0 = one second of -tenant-rate)"),
		tenantStreams: fs.Int("tenant-streams", 0, "default per-tenant concurrent-stream cap (0 = uncapped)"),
		tenantWeights: fs.String("tenant-weights", "", "per-tenant scheduling weights as id:weight[,id:weight...]; unlisted tenants weigh 1"),
	}
}

// config builds the fleet.Config the flags describe; est carries the drift
// flags through to the pool's per-stream monitors.
func (ff fleetServeFlags) config(est stream.EstimatorConfig) (fleet.Config, error) {
	weights, err := parseTenantWeights(*ff.tenantWeights)
	if err != nil {
		return fleet.Config{}, err
	}
	def := fleet.TenantConfig{
		FrameRate:  *ff.tenantRate,
		Burst:      *ff.tenantBurst,
		MaxStreams: *ff.tenantStreams,
	}
	cfg := fleet.Config{
		Workers:     *ff.workers,
		StreamQueue: *ff.streamQueue,
		Quantum:     *ff.quantum,
		Default:     def,
		Estimator:   est,
	}
	if len(weights) > 0 {
		cfg.Tenants = map[uint32]fleet.TenantConfig{}
		for id, w := range weights {
			tc := def
			tc.Weight = w
			cfg.Tenants[id] = tc
		}
	}
	return cfg, nil
}

// reTenant rewrites a recorded trace's header with the given tenant ID,
// keeping every frame byte: the header is re-encoded (its CRC covers the
// tenant field), the frames are appended untouched.
func reTenant(raw []byte, h stream.Header, tenant uint32) ([]byte, error) {
	h.Tenant = tenant
	var hb bytes.Buffer
	if _, err := stream.NewWriter(&hb, h); err != nil {
		return nil, err
	}
	if hb.Len() > len(raw) {
		return nil, fmt.Errorf("trace shorter than its header")
	}
	out := make([]byte, 0, len(raw))
	out = append(out, hb.Bytes()...)
	return append(out, raw[hb.Len():]...), nil
}

// pacedReader throttles a trace to a target byte rate so a stream's offered
// load is sustained over the run instead of one TCP burst. Scheduling-weight
// fairness is only observable under sustained queue contention: an unpaced
// client dumps its whole trace before the pool drains anything, every queue
// clips at the same bound, and admitted shares flatten to equal no matter
// the weights.
type pacedReader struct {
	r           io.Reader
	bytesPerSec float64
	burst       int
	start       time.Time
	sent        int
}

func (p *pacedReader) Read(b []byte) (int, error) {
	if p.start.IsZero() {
		p.start = time.Now()
	}
	for {
		allowed := int(time.Since(p.start).Seconds()*p.bytesPerSec) + p.burst - p.sent
		if allowed > 0 {
			if allowed > len(b) {
				allowed = len(b)
			}
			n, err := p.r.Read(b[:allowed])
			p.sent += n
			return n, err
		}
		time.Sleep(time.Millisecond)
	}
}

// loadResult is one stream's outcome in the load generator.
type loadResult struct {
	tenant   uint32
	sum      stream.Summary
	err      error
	overload bool
	latency  time.Duration
}

// cmdLoadgen drives a fleet server with many concurrent streams and checks
// the multi-tenant contracts: every sent frame is accounted for (admitted or
// shed — zero unexplained loss), no stream stalls (per-stream deadline), the
// admitted-frame share of each tenant stays within 2x of its weight share
// under contention, and the p99 stream round-trip meets -slo-p99 when set.
// Exits non-zero on any violation.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	topo := topoFlag(fs)
	d := fs.Int("d", 3, "code distance the server decodes (must be in its -d list)")
	p := fs.Float64("p", 1e-3, "physical error rate of the served decoding graphs")
	rounds := fs.Int("rounds", 0, "QEC rounds (default: the distance)")
	seed := fs.Uint64("seed", 1, "random seed for the generated trace")
	addr := fs.String("addr", "127.0.0.1:8790", "fleet server address")
	streams := fs.Int("streams", 256, "concurrent streams to open")
	tenants := fs.Int("tenants", 4, "tenants to spread streams over (stream i uses tenant 1 + i%%tenants)")
	frames := fs.Int("frames", 512, "frames per stream")
	pace := fs.Float64("pace", 0, "per-stream send rate in frames/s (0 = full speed); pacing sustains the offered load so scheduling fairness is measurable")
	timeout := fs.Duration("timeout", 120*time.Second, "per-stream dial+send+summary deadline (a stalled socket fails the run)")
	sloP99 := fs.Duration("slo-p99", 0, "fail when the p99 stream round-trip exceeds this (0 = report only)")
	weights := fs.String("tenant-weights", "", "the server's id:weight[,...] map, for the fairness check; unlisted tenants weigh 1")
	fs.Parse(args)
	if *streams <= 0 || *tenants <= 0 || *frames <= 0 {
		return fmt.Errorf("loadgen: -streams, -tenants and -frames must be positive")
	}
	tp, err := parseTopo(*topo)
	if err != nil {
		return err
	}
	wmap, err := parseTenantWeights(*weights)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One base trace, re-headed per tenant so the server's admission sees
	// distinct tenant IDs over identical decode work.
	c, r, err := buildMemoryCircuit(tp, *d, *rounds, *p)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	spec := mc.Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: *frames, Rounds: r, Seed: *seed}
	if _, err := stream.Record(ctx, spec, &buf); err != nil {
		return err
	}
	raw := buf.Bytes()
	hr, err := stream.NewReader(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	traces := make(map[uint32][]byte, *tenants)
	for i := 0; i < *tenants; i++ {
		id := uint32(1 + i)
		traces[id], err = reTenant(raw, hr.Header(), id)
		if err != nil {
			return err
		}
	}
	fmt.Printf("loadgen: %d streams x %d frames over %d tenants against %s (%v d=%d p=%.3g rounds=%d)\n",
		*streams, *frames, *tenants, *addr, tp, *d, *p, r)

	results := make([]loadResult, *streams)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := uint32(1 + i%*tenants)
			res := loadResult{tenant: id}
			t0 := time.Now()
			defer func() {
				res.latency = time.Since(t0)
				results[i] = res
			}()
			dl := net.Dialer{Timeout: *timeout}
			conn, err := dl.DialContext(ctx, "tcp", *addr)
			if err != nil {
				res.err = err
				return
			}
			defer conn.Close()
			conn.SetDeadline(t0.Add(*timeout))
			var tr io.Reader = bytes.NewReader(traces[id])
			if *pace > 0 {
				// length prefix + observables + packed detectors + CRC
				frameLen := 4 + 8 + stream.FrameBytes(hr.Header().NumDetectors) + 4
				tr = &pacedReader{r: tr, bytesPerSec: *pace * float64(frameLen), burst: 64 * frameLen}
			}
			sum, err := stream.SendTrace(conn.(*net.TCPConn), tr)
			res.sum = sum
			switch {
			case err == nil:
			case errors.Is(err, stream.ErrOverload):
				res.overload = true
			default:
				res.err = err
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Aggregate per tenant and across the run.
	type tenantAgg struct {
		streams, ok, overload, failed int
		admitted, shed                int64
	}
	aggs := map[uint32]*tenantAgg{}
	var lats []time.Duration
	var hardErrs, lossErrs []string
	for i, res := range results {
		a := aggs[res.tenant]
		if a == nil {
			a = &tenantAgg{}
			aggs[res.tenant] = a
		}
		a.streams++
		lats = append(lats, res.latency)
		if res.err != nil {
			a.failed++
			if len(hardErrs) < 5 {
				hardErrs = append(hardErrs, fmt.Sprintf("stream %d (tenant %d): %v", i, res.tenant, res.err))
			}
			continue
		}
		if res.overload {
			a.overload++
		} else {
			a.ok++
		}
		a.admitted += int64(res.sum.Frames)
		a.shed += res.sum.Shed
		// The zero-unexplained-loss contract: admitted + shed covers every
		// frame the stream sent.
		if got := int64(res.sum.Frames) + res.sum.Shed; got != int64(*frames) {
			if len(lossErrs) < 5 {
				lossErrs = append(lossErrs, fmt.Sprintf("stream %d (tenant %d): %d admitted + %d shed != %d sent",
					i, res.tenant, res.sum.Frames, res.sum.Shed, *frames))
			}
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pctl := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		k := int(q*float64(len(lats))+0.5) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(lats) {
			k = len(lats) - 1
		}
		return lats[k]
	}
	p50, p99 := pctl(0.50), pctl(0.99)

	var ids []uint32
	var totAdmitted, totShed int64
	failed := 0
	for id, a := range aggs {
		ids = append(ids, id)
		totAdmitted += a.admitted
		totShed += a.shed
		failed += a.failed
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	weightOf := func(id uint32) int {
		if w, ok := wmap[id]; ok {
			return w
		}
		return 1
	}
	sumW := 0
	for _, id := range ids {
		sumW += weightOf(id)
	}

	fmt.Printf("%-8s %8s %6s %9s %6s %12s %12s %9s %9s\n",
		"tenant", "streams", "ok", "overload", "fail", "admitted", "shed", "share", "weight")
	var fairErrs []string
	for _, id := range ids {
		a := aggs[id]
		share, expect := 0.0, float64(weightOf(id))/float64(sumW)
		if totAdmitted > 0 {
			share = float64(a.admitted) / float64(totAdmitted)
		}
		fmt.Printf("%-8d %8d %6d %9d %6d %12d %12d %8.1f%% %8.1f%%\n",
			id, a.streams, a.ok, a.overload, a.failed, a.admitted, a.shed, 100*share, 100*expect)
		// Fairness only binds under contention: with nothing shed anywhere,
		// every tenant keeps 100% of what it sent and shares track offered
		// load, not scheduler weights.
		if totShed > 0 && totAdmitted > 0 {
			if share < expect/2-1e-9 || share > 2*expect+1e-9 {
				fairErrs = append(fairErrs, fmt.Sprintf(
					"tenant %d admitted share %.1f%% outside the 2x band of its %.1f%% weight share", id, 100*share, 100*expect))
			}
		}
	}
	fmt.Printf("\n%d streams in %v: %d frames admitted, %d shed, %.0f frames/s; latency p50 %v p99 %v\n",
		*streams, elapsed.Round(time.Millisecond), totAdmitted, totShed,
		float64(totAdmitted)/elapsed.Seconds(), p50.Round(time.Millisecond), p99.Round(time.Millisecond))

	var viol []string
	if failed > 0 {
		viol = append(viol, fmt.Sprintf("%d streams failed hard (first: %s)", failed, strings.Join(hardErrs, "; ")))
	}
	if len(lossErrs) > 0 {
		viol = append(viol, "unexplained frame loss: "+strings.Join(lossErrs, "; "))
	}
	viol = append(viol, fairErrs...)
	if *sloP99 > 0 && p99 > *sloP99 {
		viol = append(viol, fmt.Sprintf("p99 latency %v exceeds the %v SLO", p99.Round(time.Millisecond), *sloP99))
	}
	if len(viol) > 0 {
		return fmt.Errorf("loadgen violations:\n  %s", strings.Join(viol, "\n  "))
	}
	fmt.Println("loadgen ok: zero unexplained loss, no stalled streams" + map[bool]string{true: ", fairness within the 2x band", false: ""}[totShed > 0])
	return nil
}
