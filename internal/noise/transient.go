package noise

// TransientJump models a temporary excursion on top of a calibrated rate:
// the error rate sits at P0, jumps to PJump at T0 hours, and returns to P0
// after Recover hours (Recover <= 0 means the jump never recovers — a
// permanent step). TLS-coupling episodes and cosmic-ray-like bursts look
// this way: no gradual trajectory, just a step up and (sometimes) back.
// The drift-injection experiment uses it as the per-qubit ground truth for
// transient-detection assertions.
type TransientJump struct {
	P0      float64 // rate outside the excursion
	PJump   float64 // rate during the excursion
	T0      float64 // hours after calibration the jump begins
	Recover float64 // excursion duration in hours; <= 0 never recovers
}

var _ Law = TransientJump{}

// At implements Law.
func (j TransientJump) At(dt float64) float64 {
	if dt < 0 {
		dt = 0
	}
	if dt < j.T0 {
		return j.P0
	}
	if j.Recover > 0 && dt >= j.T0+j.Recover {
		return j.P0
	}
	return j.PJump
}

// TimeToReach implements Law. The trajectory is a step, so the target is
// reached either immediately (pTar <= P0), at the jump (pTar <= PJump), or
// never.
func (j TransientJump) TimeToReach(pTar float64) float64 {
	if pTar <= j.P0 {
		return 0
	}
	if pTar <= j.PJump {
		return j.T0
	}
	return 1e18 // effectively never
}
