package noise

import (
	"caliqec/internal/rng"
	"math"
	"testing"
	"testing/quick"
)

func TestDriftLaw(t *testing.T) {
	d := Drift{P0: 1e-3, TDrift: 14}
	if d.At(0) != 1e-3 {
		t.Error("p(0) != p0")
	}
	if math.Abs(d.At(14)-1e-2) > 1e-12 {
		t.Errorf("p(T) = %.4g, want one decade", d.At(14))
	}
	if d.At(1e6) != 1 {
		t.Error("drift must clamp at 1")
	}
}

func TestTimeToReachInvertsAt(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		d := Drift{P0: 1e-4 + r.Float64()*1e-3, TDrift: 1 + r.Float64()*40}
		target := d.P0 * (1 + r.Float64()*50)
		tt := d.TimeToReach(target)
		return math.Abs(d.At(tt)-target) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimeToReachBelow(t *testing.T) {
	d := Drift{P0: 1e-3, TDrift: 10}
	if d.TimeToReach(1e-4) != 0 {
		t.Error("target below p0 should be 0 (already reached)")
	}
}

func TestModels(t *testing.T) {
	cur, fut := CurrentModel(), FutureModel()
	if cur.MeanHours != 14.08 {
		t.Errorf("current mean %.2f", cur.MeanHours)
	}
	if fut.MeanHours != 28.016 {
		t.Errorf("future mean %.3f", fut.MeanHours)
	}
	r := rng.New(1)
	var xs []float64
	for i := 0; i < 50000; i++ {
		xs = append(xs, fut.SampleTDrift(r))
	}
	if m := rng.Mean(xs); math.Abs(m-28.016) > 0.6 {
		t.Errorf("future sample mean %.2f", m)
	}
}

func TestMapFallbacks(t *testing.T) {
	m := NewMap(1e-3)
	if m.Gate1(7) != 1e-3 || m.Gate2(1, 2) != 1e-3 || m.Meas(0) != 1e-3 || m.Reset(0) != 1e-3 {
		t.Error("defaults not applied")
	}
	m.Gate1Q[7] = 5e-3
	m.SetGate2(2, 1, 7e-3) // stored unordered
	if m.Gate1(7) != 5e-3 {
		t.Error("override lost")
	}
	if m.Gate2(1, 2) != 7e-3 || m.Gate2(2, 1) != 7e-3 {
		t.Error("pair must be unordered")
	}
}

func TestMeanError(t *testing.T) {
	m := NewMap(1e-3)
	if m.MeanError() != 1e-3 {
		t.Error("empty map mean should be default")
	}
	m.Gate1Q[0] = 2e-3
	m.Gate1Q[1] = 4e-3
	if math.Abs(m.MeanError()-3e-3) > 1e-15 {
		t.Errorf("mean %.4g", m.MeanError())
	}
}

func TestConstants(t *testing.T) {
	if InitialErrorRate != Threshold/10 {
		t.Error("initial rate should be 10x below threshold (§7.2)")
	}
}
