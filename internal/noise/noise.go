// Package noise models physical error rates and their temporal drift, per
// the paper's §4 and §7.2:
//
//   - the exponential drift law p(g,t) = p0 · 10^(t/T_drift), where T_drift
//     is the per-gate time constant for a 10× error-rate increase;
//   - the device-wide distribution of drift constants: log-normal with mean
//     14.08 h under the current-hardware model (Fig. 9) and 28.016 h under
//     the future-hardware model;
//   - the circuit-level noise initialization p = 10× below the 1% surface
//     code threshold.
//
// It also provides Map, a per-qubit/per-pair implementation of
// code.NoiseModel so that drifted devices can be lowered into syndrome
// circuits.
package noise

import (
	"caliqec/internal/rng"
	"math"
)

// Physical constants from the paper.
const (
	// Threshold is the surface-code physical error threshold under the
	// circuit-level noise model (§5.2, ≈1%).
	Threshold = 0.01
	// InitialErrorRate is the ideally-calibrated operation error rate,
	// chosen 10× below threshold (§7.2).
	InitialErrorRate = Threshold / 10
	// Alpha is the rotated-surface-code LER prefactor in Eq. (4).
	Alpha = 0.03
	// CurrentDriftMeanHours is the measured mean drift constant on the
	// 127-qubit Eagle-class device (Fig. 9).
	CurrentDriftMeanHours = 14.08
	// FutureDriftMeanHours doubles the mean under the projected
	// 99.9%→99.99% fidelity improvement (§7.2).
	FutureDriftMeanHours = 28.016
	// DriftSigma is the log-normal shape parameter. The paper reports only
	// the mean; this value reproduces the broad hours-to-days spread of
	// Fig. 9 ("ranging from hours to days", §5.1).
	DriftSigma = 0.55
)

// Drift is the exponential error-drift law of one operation.
type Drift struct {
	P0     float64 // freshly calibrated error rate
	TDrift float64 // hours for the rate to grow 10×
}

// At returns the error rate t hours after calibration, clamped to 1.
func (d Drift) At(t float64) float64 {
	p := d.P0 * math.Pow(10, t/d.TDrift)
	if p > 1 {
		return 1
	}
	return p
}

// TimeToReach returns the hours until the rate reaches pTar (0 if already
// above, +Inf below p0 is impossible since drift only grows).
func (d Drift) TimeToReach(pTar float64) float64 {
	if pTar <= d.P0 {
		return 0
	}
	return d.TDrift * math.Log10(pTar/d.P0)
}

// Model is a device-wide drift-constant distribution.
type Model struct {
	Name      string
	MeanHours float64
	Sigma     float64
}

// CurrentModel returns the paper's measured current-hardware drift model.
func CurrentModel() Model {
	return Model{Name: "current", MeanHours: CurrentDriftMeanHours, Sigma: DriftSigma}
}

// FutureModel returns the projected improved-hardware drift model.
func FutureModel() Model {
	return Model{Name: "future", MeanHours: FutureDriftMeanHours, Sigma: DriftSigma}
}

// SampleTDrift draws one drift time constant (hours).
func (m Model) SampleTDrift(r *rng.RNG) float64 {
	return r.LogNormalFromMean(m.MeanHours, m.Sigma)
}

// Map is a per-operation noise assignment implementing code.NoiseModel.
// Missing entries fall back to Default.
type Map struct {
	Default float64
	Gate1Q  map[int]float64
	Gate2Q  map[[2]int]float64
	MeasQ   map[int]float64
	ResetQ  map[int]float64
}

// NewMap returns a Map with the given default rate.
func NewMap(def float64) *Map {
	return &Map{
		Default: def,
		Gate1Q:  map[int]float64{},
		Gate2Q:  map[[2]int]float64{},
		MeasQ:   map[int]float64{},
		ResetQ:  map[int]float64{},
	}
}

// Gate1 implements code.NoiseModel.
func (m *Map) Gate1(q int) float64 {
	if p, ok := m.Gate1Q[q]; ok {
		return p
	}
	return m.Default
}

// Gate2 implements code.NoiseModel. Pairs are unordered.
func (m *Map) Gate2(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if p, ok := m.Gate2Q[[2]int{a, b}]; ok {
		return p
	}
	return m.Default
}

// Meas implements code.NoiseModel.
func (m *Map) Meas(q int) float64 {
	if p, ok := m.MeasQ[q]; ok {
		return p
	}
	return m.Default
}

// Reset implements code.NoiseModel.
func (m *Map) Reset(q int) float64 {
	if p, ok := m.ResetQ[q]; ok {
		return p
	}
	return m.Default
}

// SetGate2 stores a two-qubit rate (unordered pair).
func (m *Map) SetGate2(a, b int, p float64) {
	if a > b {
		a, b = b, a
	}
	m.Gate2Q[[2]int{a, b}] = p
}

// MeanError returns the average of all explicitly assigned rates plus the
// default (a cheap proxy for the device-average physical error rate).
func (m *Map) MeanError() float64 {
	sum, n := 0.0, 0
	for _, p := range m.Gate1Q {
		sum += p
		n++
	}
	for _, p := range m.Gate2Q {
		sum += p
		n++
	}
	for _, p := range m.MeasQ {
		sum += p
		n++
	}
	for _, p := range m.ResetQ {
		sum += p
		n++
	}
	if n == 0 {
		return m.Default
	}
	return sum / float64(n)
}
