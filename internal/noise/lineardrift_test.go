package noise

import (
	"math"
	"testing"
)

func TestLinearDriftLaw(t *testing.T) {
	d := LinearDrift{P0: 1e-3, Rate: 5e-4}
	if d.At(0) != 1e-3 {
		t.Error("p(0)")
	}
	if math.Abs(d.At(2)-2e-3) > 1e-15 {
		t.Errorf("p(2h)=%.4g", d.At(2))
	}
	if d.At(1e9) != 1 {
		t.Error("clamp")
	}
	if d.At(-5) != 1e-3 {
		t.Error("negative dt should clamp to p0")
	}
	tt := d.TimeToReach(3e-3)
	if math.Abs(tt-4) > 1e-12 {
		t.Errorf("TimeToReach=%.3f, want 4h", tt)
	}
	if math.Abs(d.At(tt)-3e-3) > 1e-15 {
		t.Error("At(TimeToReach(p)) != p")
	}
	if d.TimeToReach(1e-4) != 0 {
		t.Error("below p0")
	}
	if (LinearDrift{P0: 1e-3, Rate: 0}).TimeToReach(2e-3) < 1e17 {
		t.Error("zero-rate gate should effectively never drift")
	}
}

func TestLinearFromExponential(t *testing.T) {
	e := Drift{P0: 1e-3, TDrift: 14}
	pTar := 3e-3
	l := LinearFromExponential(e, pTar)
	// Same deadline by construction.
	if math.Abs(l.TimeToReach(pTar)-e.TimeToReach(pTar)) > 1e-9 {
		t.Errorf("deadlines differ: %.3f vs %.3f", l.TimeToReach(pTar), e.TimeToReach(pTar))
	}
	// Linear sits above exponential before the deadline (concavity).
	mid := e.TimeToReach(pTar) / 2
	if l.At(mid) <= e.At(mid) {
		t.Errorf("linear %.4g not above exponential %.4g at mid-deadline", l.At(mid), e.At(mid))
	}
}

// TestLawInterfaceSatisfied pins both families to the Law interface.
func TestLawInterfaceSatisfied(t *testing.T) {
	laws := []Law{
		Drift{P0: 1e-3, TDrift: 10},
		LinearDrift{P0: 1e-3, Rate: 1e-4},
	}
	for _, l := range laws {
		if l.At(0) <= 0 || l.TimeToReach(5e-3) <= 0 {
			t.Errorf("law %T misbehaves", l)
		}
	}
}
