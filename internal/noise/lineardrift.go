package noise

// The paper adopts the exponential drift law because it best fits the IBM
// measurements, but notes (§4) that "this model can be replaced with other
// models based on specific hardware conditions and determine calibration
// periods for each gate accordingly, while the scheduling method in Sec. 5
// remains applicable" — some references (their [4]) report linear drift.
// Law abstracts what the scheduler actually needs so both families plug in.

// Law is a drift law: an error-rate trajectory after calibration.
type Law interface {
	// At returns the error rate dt hours after calibration.
	At(dt float64) float64
	// TimeToReach returns the hours until the rate reaches pTar
	// (0 if already at or above).
	TimeToReach(pTar float64) float64
}

// Drift (exponential) implements Law.
var _ Law = Drift{}

// LinearDrift is the alternative linear drift law p(t) = P0 + Rate·t,
// clamped to 1.
type LinearDrift struct {
	P0   float64 // freshly calibrated error rate
	Rate float64 // error-rate increase per hour
}

// At implements Law.
func (d LinearDrift) At(dt float64) float64 {
	if dt < 0 {
		dt = 0
	}
	p := d.P0 + d.Rate*dt
	if p > 1 {
		return 1
	}
	return p
}

// TimeToReach implements Law.
func (d LinearDrift) TimeToReach(pTar float64) float64 {
	if pTar <= d.P0 {
		return 0
	}
	if d.Rate <= 0 {
		return 1e18 // effectively never
	}
	return (pTar - d.P0) / d.Rate
}

// LinearFromExponential returns the linear law matching an exponential one
// at the moment it reaches pTar (same deadline, same endpoint rate): useful
// for comparing schedules across model families.
func LinearFromExponential(e Drift, pTar float64) LinearDrift {
	t := e.TimeToReach(pTar)
	if t <= 0 {
		return LinearDrift{P0: e.P0, Rate: 0}
	}
	return LinearDrift{P0: e.P0, Rate: (pTar - e.P0) / t}
}
