package noise

import "testing"

func TestTransientJumpAt(t *testing.T) {
	j := TransientJump{P0: 1e-3, PJump: 1e-2, T0: 2, Recover: 1}
	cases := []struct {
		dt   float64
		want float64
	}{
		{-1, 1e-3}, // clamped to calibration time
		{0, 1e-3},
		{1.9, 1e-3},
		{2, 1e-2},   // jump begins
		{2.5, 1e-2}, // inside the excursion
		{3, 1e-3},   // recovered
		{10, 1e-3},
	}
	for _, c := range cases {
		if got := j.At(c.dt); got != c.want { //lint:allow floateq step law returns its parameters exactly
			t.Errorf("At(%g) = %g, want %g", c.dt, got, c.want)
		}
	}

	// Recover <= 0: permanent step.
	perm := TransientJump{P0: 1e-3, PJump: 1e-2, T0: 2}
	if got := perm.At(100); got != 1e-2 { //lint:allow floateq step law returns its parameters exactly
		t.Errorf("permanent jump At(100) = %g, want 1e-2", got)
	}
}

func TestTransientJumpTimeToReach(t *testing.T) {
	j := TransientJump{P0: 1e-3, PJump: 1e-2, T0: 2, Recover: 1}
	if got := j.TimeToReach(5e-4); got != 0 { //lint:allow floateq exact zero return
		t.Errorf("TimeToReach(below P0) = %g, want 0", got)
	}
	if got := j.TimeToReach(5e-3); got != 2 { //lint:allow floateq exact T0 return
		t.Errorf("TimeToReach(within jump) = %g, want T0", got)
	}
	if got := j.TimeToReach(0.5); got < 1e17 {
		t.Errorf("TimeToReach(above PJump) = %g, want effectively never", got)
	}
}
