package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// JSON renders the report as indented JSON (stable field order via the
// struct definition), for downstream plotting pipelines.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteFiles writes the report into dir as <id>.json and <id>.csv (the CSV
// holds the header and rows only; key values and notes live in the JSON).
func (r *Report) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	js, err := r.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, r.ID+".json"), js, 0o644); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if len(r.Header) > 0 {
		if err := w.Write(r.Header); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// Summary returns a one-line digest of the report's key values.
func (r *Report) Summary() string {
	var parts []string
	for k, v := range r.Values {
		parts = append(parts, fmt.Sprintf("%s=%.4g", k, v))
	}
	if len(parts) == 0 {
		return r.Title
	}
	return r.ID + ": " + strings.Join(parts, " ")
}
