package exp

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
	"caliqec/internal/ler"
	"caliqec/internal/mc"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"caliqec/internal/runtime"
	"caliqec/internal/workload"
	"context"
	"fmt"
	"strings"
)

// Table1Instructions renders Table 1: the CaliQEC instruction sets per code
// topology, straight from the deform package's registry.
func Table1Instructions(_ context.Context, _ uint64) (*Report, error) {
	rep := &Report{
		ID:     "table1",
		Title:  "CaliQEC instruction sets for square and heavy-hexagon surface codes",
		Header: []string{"code topology", "instructions"},
	}
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		ops := deform.InstructionSet(kind)
		names := make([]string, len(ops))
		for i, o := range ops {
			names[i] = string(o)
		}
		rep.AddRow(kind.String(), strings.Join(names, ", "))
		rep.SetValue(kind.String()+"_count", float64(len(ops)))
	}
	rep.AddNote("paper Table 1: square has 4 instructions, heavy-hexagon 6")
	return rep, nil
}

// table2Row is one benchmark × distance configuration of Table 2.
type table2Row struct {
	prog   workload.Program
	d      int
	model  noise.Model
	target float64
}

func table2Rows() []table2Row {
	cur, fut := noise.CurrentModel(), noise.FutureModel()
	return []table2Row{
		{workload.Hubbard(10, 10), 25, cur, 0.01},
		{workload.Hubbard(10, 10), 27, cur, 0.001},
		{workload.Hubbard(20, 20), 29, cur, 0.01},
		{workload.Hubbard(20, 20), 31, cur, 0.001},
		{workload.Jellium(250), 39, cur, 0.01},
		{workload.Jellium(250), 41, cur, 0.001},
		{workload.Jellium(1024), 45, fut, 0.01},
		{workload.Jellium(1024), 47, fut, 0.001},
		{workload.Grover(100), 41, fut, 0.01},
		{workload.Grover(100), 43, fut, 0.001},
		{workload.Hubbard(10, 10), 25, fut, 0.01},
		{workload.Hubbard(10, 10), 27, fut, 0.001},
	}
}

// Table2 regenerates the paper's Table 2: every benchmark × distance row
// under the three strategies, reporting physical qubits, execution time and
// retry risk. Long-horizon rows use a coarser simulation step to bound
// wall-clock time.
func Table2(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:    "table2",
		Title: "Large-scale program comparison (No-Calibration / LSC / CaliQEC)",
		Header: []string{"model", "benchmark", "d",
			"qubits(NC)", "time(NC)", "risk(NC)",
			"qubits(LSC)", "time(LSC)", "risk(LSC)",
			"qubits(CQ)", "time(CQ)", "risk(CQ)"},
	}
	var qLSC, qCQ, tLSC, riskRatio []float64
	for i, row := range table2Rows() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := runtime.Config{
			Prog:        row.prog,
			D:           row.d,
			Model:       row.model,
			RetryTarget: row.target,
			Seed:        seed + uint64(i)*101,
		}
		// Bound simulation work on multi-week programs.
		horizon := rowHorizon(row)
		if horizon > 200 {
			cfg.StepHours = horizon / 600
			cfg.SamplePatches = 12
		}
		var res [3]*runtime.Result
		for si, strat := range []runtime.Strategy{runtime.StrategyNoCal, runtime.StrategyLSC, runtime.StrategyCaliQEC} {
			r, err := runtime.Run(ctx, cfg, strat)
			if err != nil {
				return nil, fmt.Errorf("table2 %s d=%d %v: %w", row.prog.Name, row.d, strat, err)
			}
			res[si] = r
		}
		nc, lsc, cq := res[0], res[1], res[2]
		rep.AddRow(row.model.Name, row.prog.Name, fmt.Sprintf("%d", row.d),
			fmt.Sprintf("%.3g", nc.PhysicalQubits), fmt.Sprintf("%.4g", nc.ExecHours), fmtRisk(nc.RetryRisk),
			fmt.Sprintf("%.3g", lsc.PhysicalQubits), fmt.Sprintf("%.4g", lsc.ExecHours), fmtRisk(lsc.RetryRisk),
			fmt.Sprintf("%.3g", cq.PhysicalQubits), fmt.Sprintf("%.4g", cq.ExecHours), fmtRisk(cq.RetryRisk),
		)
		qLSC = append(qLSC, lsc.PhysicalQubits/nc.PhysicalQubits-1)
		qCQ = append(qCQ, cq.PhysicalQubits/nc.PhysicalQubits-1)
		tLSC = append(tLSC, lsc.ExecHours/nc.ExecHours-1)
		if cq.RetryRisk > 0 {
			riskRatio = append(riskRatio, 1-cq.RetryRisk/lsc.RetryRisk)
		}
	}
	rep.SetValue("lsc_qubit_overhead_mean", rng.Mean(qLSC))
	rep.SetValue("caliqec_qubit_overhead_mean", rng.Mean(qCQ))
	rep.SetValue("lsc_time_overhead_mean", rng.Mean(tLSC))
	rep.SetValue("caliqec_risk_reduction_vs_lsc", rng.Mean(riskRatio))
	rep.AddNote("paper §8.1: LSC +363%% qubits, ~+20%% time; CaliQEC +24%% qubits, no time overhead, −79.4%% retry risk vs LSC")
	rep.AddNote("no-calibration rows approach 100%% retry risk in both the paper and this reproduction")
	return rep, nil
}

func rowHorizon(row table2Row) float64 {
	return row.prog.LogicalOps() * float64(row.d) / row.prog.Parallelism * 1e-6 / 3600
}

func fmtRisk(r float64) string {
	if r > 0.99 {
		return "~100%"
	}
	return fmt.Sprintf("%.3g%%", 100*r)
}

// FitLERModel anchors the analytic Eq. (4) layer to this repository's own
// Monte-Carlo substrate: it measures per-round LERs at d=3 and d=5 across
// physical rates, fits (α, p_th), and compares with the paper's constants.
func FitLERModel(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "fit",
		Title:  "Calibrating LER(d,p) = α(p/p_th)^((d+1)/2) against Monte Carlo",
		Header: []string{"d", "p", "shots", "LER/round"},
	}
	// All six (d, p) evaluations form one batch over the shared chunk
	// scheduler; each spec seeds from its own generator, so the fitted
	// points are identical to the former one-at-a-time evaluation.
	type fitCase struct {
		d int
		p float64
	}
	var (
		cases  []fitCase
		labels []string
		specs  []mc.Spec
	)
	shots := 40000
	for _, d := range []int{3, 5} {
		for _, p := range []float64{2e-3, 3.5e-3, 5e-3} {
			patch := code.NewPatch(lattice.NewSquare(d))
			c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: d, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
			if err != nil {
				return nil, err
			}
			cases = append(cases, fitCase{d: d, p: p})
			labels = append(labels, fmt.Sprintf("fit d=%d p=%.2g", d, p))
			specs = append(specs, mc.Spec{
				Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: d,
				RNG: rng.New(seed + uint64(d*1000) + uint64(p*1e6)),
			})
		}
	}
	results, err := evalLERBatch(ctx, labels, specs)
	if err != nil {
		return nil, err
	}
	var points []ler.Point
	for i, res := range results {
		if res.PerRoundLER > 0 {
			points = append(points, ler.Point{D: cases[i].d, P: cases[i].p, LER: res.PerRoundLER})
		}
		rep.AddRow(fmt.Sprintf("%d", cases[i].d), fmt.Sprintf("%.4g", cases[i].p),
			fmt.Sprintf("%d", shots), fmt.Sprintf("%.4g", res.PerRoundLER))
	}
	m, err := ler.Fit(points)
	if err != nil {
		return nil, err
	}
	rep.SetValue("alpha_fit", m.Alpha)
	rep.SetValue("pth_fit", m.Pth)
	rep.SetValue("alpha_paper", noise.Alpha)
	rep.SetValue("pth_paper", noise.Threshold)
	rep.AddNote("paper uses α=0.03, p_th=0.01; the union-find decoder's effective threshold is expected somewhat below MWPM's")
	return rep, nil
}
