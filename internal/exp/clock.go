package exp

import "time"

// wallClock is the one sanctioned wall-clock source for this package's
// throughput measurements (decoder µs/shot columns). Experiments must not
// read time.Now directly — simulated time is always an explicit parameter —
// but latency ablations genuinely measure the host machine, so they go
// through this injection point, which tests may swap for a fake clock.
var wallClock = time.Now //lint:allow timenow single injected wall-clock source for latency ablations

// stopwatch starts timing and returns a closure yielding elapsed seconds.
// Using Sub on two wallClock samples (rather than time.Since) keeps the
// measurement fully under the injected clock.
func stopwatch() func() float64 {
	start := wallClock()
	return func() float64 { return wallClock().Sub(start).Seconds() }
}
