package exp

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func osStat(dir, name string) (os.FileInfo, error) {
	return os.Stat(filepath.Join(dir, name))
}

// These tests assert the paper's qualitative shapes on every regenerated
// artifact — who wins, in which direction, by roughly what kind of factor —
// per the reproduction contract (absolute values are recorded in
// EXPERIMENTS.md instead).

func run(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := All()[id](context.Background(), 2025)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	reg := All()
	for _, id := range Order() {
		if reg[id] == nil {
			t.Errorf("experiment %q in Order but not registered", id)
		}
	}
	if len(reg) != len(Order()) {
		t.Errorf("registry has %d entries, Order has %d", len(reg), len(Order()))
	}
}

func TestFig1Shape(t *testing.T) {
	rep := run(t, "fig1")
	if rep.Values["frac_above_threshold_24h_nocal"] < 0.8 {
		t.Errorf("only %.2f of gates above threshold after 24h; paper reports >90%%",
			rep.Values["frac_above_threshold_24h_nocal"])
	}
	if rep.Values["frac_above_threshold_24h_cal"] > 0.05 {
		t.Errorf("calibrated device has %.2f above threshold; should stay ≈0",
			rep.Values["frac_above_threshold_24h_cal"])
	}
}

func TestFig7Shape(t *testing.T) {
	rep := run(t, "fig7")
	if rep.Values["tcali_opt_hours"] != 4 {
		t.Errorf("optimal T_Cali %.2f, want 4 (Fig. 7c)", rep.Values["tcali_opt_hours"])
	}
	if rep.Values["freq_opt"] >= rep.Values["freq_naive"] {
		t.Error("optimizer did not beat the naive interval")
	}
}

func TestFig9Shape(t *testing.T) {
	rep := run(t, "fig9")
	m := rep.Values["mean_hours"]
	if m < 13 || m > 15.2 {
		t.Errorf("drift-constant mean %.2f h, want ≈14.08", m)
	}
	if rep.Values["p90_hours"] < 20 {
		t.Errorf("p90 %.1f h: distribution lacks the paper's heavy tail", rep.Values["p90_hours"])
	}
}

func TestFig10Shape(t *testing.T) {
	rep := run(t, "fig10")
	if rep.Values["isolation_only_spikes"] != 1 {
		t.Error("isolation without enlargement must spike above the threshold")
	}
	if rep.Values["full_caliqec_spikes"] != 0 {
		t.Error("full CaliQEC must stay below the threshold")
	}
	if rep.Values["nocal_final_over_threshold"] < 100 {
		t.Error("no-calibration LER must grow far past the threshold")
	}
}

func TestFig11Shape(t *testing.T) {
	rep := run(t, "fig11")
	red := rep.Values["reduction_vs_uniform"]
	if red < 2.5 {
		t.Errorf("adaptive grouping reduction %.2fx; paper reports 3.63-11.1x", red)
	}
	if rep.Values["adaptive"] < rep.Values["ideal"] {
		t.Error("adaptive cannot beat the per-gate ideal")
	}
}

func TestFig12Shape(t *testing.T) {
	rep := run(t, "fig12")
	if rep.Values["seq_over_adaptive_mean"] < 2 {
		t.Errorf("adaptive only %.2fx better than sequential (paper: 2.89x)", rep.Values["seq_over_adaptive_mean"])
	}
	if rep.Values["bulk_over_adaptive_mean"] < 2 {
		t.Errorf("adaptive only %.2fx better than bulk (paper: 3.8x)", rep.Values["bulk_over_adaptive_mean"])
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	rep := run(t, "fig13")
	for _, dev := range []string{"square", "hex"} {
		orig := rep.Values[dev+"_original"]
		iso2 := rep.Values[dev+"_isolated_drifted_2q"]
		d2q8 := rep.Values[dev+"_drifted_2q__8h_"]
		d2q24 := rep.Values[dev+"_drifted_2q__24h_"]
		d1q24 := rep.Values[dev+"_drifted_1q__24h_"]
		if d2q8 <= orig*0.95 {
			t.Errorf("%s: 8h 2Q drift did not raise LER (%.4g vs %.4g)", dev, d2q8, orig)
		}
		if d2q24 <= d2q8 {
			t.Errorf("%s: 24h drift not worse than 8h", dev)
		}
		if iso2 <= orig {
			t.Errorf("%s: isolation reported below original — suspicious", dev)
		}
		// The decision crossover: severe drift hurts more than isolating.
		if d2q24 <= iso2*0.95 {
			t.Errorf("%s: severely drifted 2Q (%.4g) not above isolated (%.4g)", dev, d2q24, iso2)
		}
		_ = d1q24
	}
}

func TestTable1Shape(t *testing.T) {
	rep := run(t, "table1")
	if rep.Values["square_count"] != 4 || rep.Values["heavy-hex_count"] != 6 {
		t.Errorf("instruction counts %v, want square=4 hex=6", rep.Values)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	rep := run(t, "table2")
	if v := rep.Values["lsc_qubit_overhead_mean"]; v < 2.5 || v > 4.5 {
		t.Errorf("LSC qubit overhead %.2f, want ≈3 (paper +363%%)", v)
	}
	if v := rep.Values["caliqec_qubit_overhead_mean"]; v < 0.08 || v > 0.35 {
		t.Errorf("CaliQEC qubit overhead %.2f, want ≈0.12-0.25 (paper 12-24%%)", v)
	}
	if v := rep.Values["lsc_time_overhead_mean"]; v < 0.03 || v > 0.3 {
		t.Errorf("LSC time overhead %.2f, want ≈0.1-0.2 (paper ~+20%%)", v)
	}
	if v := rep.Values["caliqec_risk_reduction_vs_lsc"]; v < 0.5 {
		t.Errorf("CaliQEC risk reduction vs LSC %.2f, want ≥0.5 (paper 0.794)", v)
	}
}

func TestFitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	rep := run(t, "fit")
	a, pth := rep.Values["alpha_fit"], rep.Values["pth_fit"]
	if a < 0.005 || a > 0.12 {
		t.Errorf("fitted α=%.4g far from the paper's 0.03", a)
	}
	if pth < 0.004 || pth > 0.015 {
		t.Errorf("fitted p_th=%.4g far from the paper's 0.01", pth)
	}
}

func TestCycleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	rep := run(t, "cycle")
	for _, lat := range []string{"square", "heavy-hex"} {
		r := rep.Values[lat+"_ratio"]
		if r > 2.5 {
			t.Errorf("%s: calibration cycle LER %.2fx static — deformation should be nearly free", lat, r)
		}
		if rep.Values[lat+"_static"] <= 0 {
			t.Errorf("%s: static run saw no failures; experiment underpowered", lat)
		}
	}
}

func TestAblateDeltaDShape(t *testing.T) {
	rep := run(t, "ablate-deltad")
	prev := -1.0
	for _, dd := range []int{1, 2, 4, 8} {
		v := rep.Values[fmtKey("overhead_dd%d", dd)]
		if v <= prev {
			t.Errorf("qubit overhead not increasing in Δd: %.3f after %.3f", v, prev)
		}
		prev = v
	}
}

func fmtKey(f string, a int) string { return fmt.Sprintf(f, a) }

func TestAblatePriorsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	rep := run(t, "ablate-priors")
	if rep.Values["stale_penalty"] < 1.05 {
		t.Errorf("stale priors penalty %.2fx; expected a clear cost", rep.Values["stale_penalty"])
	}
}

func TestRoutingShape(t *testing.T) {
	rep := run(t, "routing")
	if rep.Values["parallelism_800"] <= rep.Values["parallelism_16"] {
		t.Error("routing parallelism should grow with fabric size")
	}
	if rep.Values["parallelism_largest"] < 8.6 {
		t.Errorf("largest fabric sustains only %.1f parallel ops; Table 2 needs up to 8.6", rep.Values["parallelism_largest"])
	}
}

func TestAblateWindowShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	rep := run(t, "ablate-window")
	const shots = 40000.0
	for _, d := range []int{3, 5} {
		whole := rep.Values[fmtKey("whole_d%d", d)]
		if whole <= 0 {
			t.Fatalf("d=%d: no whole-shot failures; experiment underpowered", d)
		}
		// A window of d+1 rounds (and anything wider) must match whole-shot
		// within statistical tolerance (5 sigma of the whole-shot failure
		// count plus a small floor) — the committed equivalence criterion for
		// streaming decoding. At d=3 that bound is already met at W=3.
		tol := (5*math.Sqrt(whole*shots) + 5) / shots
		for _, w := range []int{d + 1, 2*d + 2} {
			wl := rep.Values[fmt.Sprintf("w%d_d%d", w, d)]
			if diff := wl - whole; diff > tol || diff < -tol {
				t.Errorf("d=%d W=%d: windowed LER %.4g vs whole-shot %.4g exceeds tolerance %.4g", d, w, wl, whole, tol)
			}
		}
		// Narrow windows degrade monotonically, never catastrophically:
		// W=2 commits every time-like chain one round early.
		w2, w3 := rep.Values[fmt.Sprintf("w2_d%d", d)], rep.Values[fmt.Sprintf("w3_d%d", d)]
		if w2 < w3-tol {
			t.Errorf("d=%d: W=2 LER %.4g below W=3 %.4g; widening the window must not hurt", d, w2, w3)
		}
		if w2 > 10*whole {
			t.Errorf("d=%d: W=2 LER %.4g more than 10x whole-shot %.4g — commit rule broken, not just early", d, w2, whole)
		}
	}
}

func TestReportExport(t *testing.T) {
	rep := run(t, "fig7")
	dir := t.TempDir()
	if err := rep.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(js) < 50 {
		t.Error("JSON suspiciously small")
	}
	for _, name := range []string{"fig7.json", "fig7.csv"} {
		if _, err := osStat(dir, name); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestLocalizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	rep := run(t, "localize")
	if rep.Values["hot_qubit_rank"] > 3 {
		t.Errorf("hot qubit ranked %v, want top 3", rep.Values["hot_qubit_rank"])
	}
	if rep.Values["top3_in_neighbourhood"] < 2 {
		t.Errorf("only %v of the top 3 suspects touch the drifted gate", rep.Values["top3_in_neighbourhood"])
	}
}

func TestDecodeCostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo + timing")
	}
	rep := run(t, "decode-cost")
	r := rep.Values["deformed_over_pristine"]
	if r > 2.5 {
		t.Errorf("deformed decoding costs %.2fx pristine; paper claims minimal impact", r)
	}
}

// TestDriftInjectShape is the drift-detection gate: injected drift must be
// flagged within the detection budget with zero false positives on the
// steady control. Deliberately NOT skipped under -short — it is the stream
// observability layer's end-to-end CI check and sized to stay fast.
func TestDriftInjectShape(t *testing.T) {
	rep := run(t, "drift-inject")
	if got := rep.Values["steady_false_positives"]; got != 0 {
		t.Errorf("steady control produced %g drift events, want 0", got)
	}
	budget := rep.Values["detection_budget_windows"]
	for _, scenario := range []string{"transient", "ramp"} {
		if rep.Values[scenario+"_detected"] != 1 {
			t.Errorf("%s drift never detected", scenario)
			continue
		}
		if d := rep.Values[scenario+"_detect_windows"]; d < 1 || d > budget {
			t.Errorf("%s detected after %g windows, budget is [1, %g]", scenario, d, budget)
		}
	}
	if rep.Values["transient_qubit_hit"] != 1 {
		t.Error("transient jump not attributed to the injected measure ancilla")
	}
	if rep.Values["ramp_flags_adjacent_checks"] != 1 {
		t.Error("ramp flagged qubits outside the hot data qubit's check neighbourhood")
	}
}
