package exp

import (
	"caliqec/internal/charac"
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"context"
	"fmt"
)

// LocalizeDrift is an extension experiment: runtime drift detection from
// the syndrome stream. The paper triggers calibration from preparation-time
// drift constants; here the detector firing rates the QEC cycle already
// produces are compared against the calibrated baseline, and the excess is
// attributed to physical qubits. A 10×-drifted gate is localized to its
// qubit (or an immediately adjacent check ancilla) without any
// characterization downtime — the natural runtime trigger for CaliQEC's
// isolation instructions.
func LocalizeDrift(_ context.Context, seed uint64) (*Report, error) {
	const (
		d      = 5
		rounds = 5
		shots  = 60000
		base   = 1.5e-3
		factor = 10.0
	)
	rep := &Report{
		ID:     "localize",
		Title:  "Syndrome-based drift localization (d=5, one 10x drifted data qubit)",
		Header: []string{"rank", "qubit", "role", "z-score", "is hot / adjacent?"},
	}
	p := code.NewPatch(lattice.NewSquare(d))
	hot := p.Lat.DataID[[2]int{2, 2}]
	cBase, err := p.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(base)})
	if err != nil {
		return nil, err
	}
	nm := noise.NewMap(base)
	nm.Gate1Q[hot] = base * factor
	nm.MeasQ[hot] = base * factor
	nm.ResetQ[hot] = base * factor
	cHot, err := p.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: nm})
	if err != nil {
		return nil, err
	}
	baseline := charac.DetectorRates(cBase, shots, rng.New(seed+1))
	observed := charac.DetectorRates(cHot, shots, rng.New(seed+2))
	owners := charac.DetectorOwners(p, rounds, lattice.BasisZ)
	ranking := charac.LocalizeDrift(baseline, observed, shots, owners, p.Lat.NumQubits())

	adjacent := map[int]bool{hot: true}
	for _, nb := range p.Lat.Neighbors(hot) {
		adjacent[nb] = true
	}
	hotPos := -1
	for i, s := range ranking {
		if i < 6 {
			mark := ""
			if s.Qubit == hot {
				mark = "HOT"
			} else if adjacent[s.Qubit] {
				mark = "adjacent"
			}
			rep.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", s.Qubit),
				p.Lat.Qubit(s.Qubit).Role.String(), fmt.Sprintf("%.1f", s.Score), mark)
		}
		if s.Qubit == hot && hotPos < 0 {
			hotPos = i
		}
	}
	rep.SetValue("hot_qubit_rank", float64(hotPos+1))
	topAdjacent := 0
	for i := 0; i < 3 && i < len(ranking); i++ {
		if adjacent[ranking[i].Qubit] {
			topAdjacent++
		}
	}
	rep.SetValue("top3_in_neighbourhood", float64(topAdjacent))
	rep.AddNote("extension experiment: runtime drift trigger from the syndrome stream — no characterization downtime needed")
	return rep, nil
}
