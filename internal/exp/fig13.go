package exp

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"context"
	"fmt"
	"math"
)

// fig13Shots is the Monte-Carlo budget per scenario.
const fig13Shots = 60000

// fig13Distance matches the paper's hardware experiments (d = 3).
const fig13Distance = 3

// Per-device calibrated base error rates. Real devices run near the
// surface-code threshold (the paper's Fig. 1 shows hardware hovering around
// 1%), which is what makes Fig. 13's trade-off work: one unit of distance
// lost to isolation is cheap near threshold, while a drifted gate decoded
// with stale priors is expensive. The heavy hexagon's longer extraction
// circuits give it a lower threshold, hence the lower base rate for the
// same pristine-LER regime.
const (
	fig13BaseSquare = 1.2e-2
	fig13BaseHex    = 4.5e-3
)

// Drift severities: the paper's hardware scenario replaces calibration
// parameters with 8-hour-old ones (10^(8/14.08) ≈ 3.7× at the mean drift
// constant). On this simulated substrate the d=3 isolation cost is higher
// than on the paper's hardware (see EXPERIMENTS.md), so the decision
// crossover — where cutting the gate out beats leaving it in — is also
// shown at a 24-hour drift (10^(24/14.08) ≈ 50×), the horizon at which
// Fig. 1 reports >90% of gates beyond threshold.
var (
	fig13Drift8h  = math.Pow(10, 8/noise.CurrentDriftMeanHours)
	fig13Drift24h = math.Pow(10, 24/noise.CurrentDriftMeanHours)
)

// Fig13RealDevice reproduces Fig. 13: the logical error rate of a d=3
// surface code on square-lattice (Rigetti-class) and heavy-hex (IBM-class)
// devices under five scenarios: optimally calibrated, one drifted 1Q gate,
// one drifted 2Q gate, and the two drifted cases with the affected qubit
// isolated via the CaliQEC instruction set.
//
// The paper ran these on real hardware; here the same circuits run on the
// Monte-Carlo substrate. Two modelling choices transfer the hardware
// conditions: base rates sit near threshold (see the constants above), and
// drifted scenarios are decoded with the calibrated priors — the decoder
// has not been told the gate drifted, exactly as on a real machine between
// calibrations. Deformed patches get freshly derived decoders because
// updating the decoder is part of the CaliQEC deformation protocol.
// Absolute percentages differ from the hardware numbers, but the orderings
// the paper argues from — drifted ≫ isolated > original, and the heavy
// hexagon more drift-sensitive than the square — are asserted by the test
// suite.
func Fig13RealDevice(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "fig13",
		Title:  fmt.Sprintf("d=%d LER under single-gate drift and CaliQEC isolation", fig13Distance),
		Header: []string{"device", "scenario", "LER", "95% CI", "vs original"},
	}
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		name, key, p0 := "square(Ankaa-2-class)", "square", fig13BaseSquare
		if kind == lattice.HeavyHex {
			name, key, p0 = "heavy-hex(Eagle-class)", "hex", fig13BaseHex
		}
		mk := func() *code.Patch {
			if kind == lattice.Square {
				return code.NewPatch(lattice.NewSquare(fig13Distance))
			}
			return code.NewPatch(lattice.NewHeavyHex(fig13Distance))
		}
		base := mk()
		// Target gates: the 1Q gate lives on an interior data qubit (its
		// idle/echo channel runs every round), the 2Q gate is that data
		// qubit's coupler to one of its measurement ancillas.
		dq := base.Lat.DataID[[2]int{1, 1}]
		var anc int = -1
		for _, nb := range base.Lat.Neighbors(dq) {
			anc = nb
			break
		}
		if anc < 0 {
			return nil, fmt.Errorf("exp: no ancilla coupled to data qubit %d", dq)
		}

		// buildSpec assembles one scenario's spec: the sampled circuit under
		// the scenario's noise, decoded with calibrated (stale) priors, and
		// the scenario's own dedicated generator.
		buildSpec := func(patch *code.Patch, nm code.NoiseModel, seedOff uint64) (mc.Spec, error) {
			c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: fig13Distance, Basis: lattice.BasisZ, Noise: nm})
			if err != nil {
				return mc.Spec{}, err
			}
			prior, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: fig13Distance, Basis: lattice.BasisZ, Noise: code.UniformNoise(p0)})
			if err != nil {
				return mc.Spec{}, err
			}
			return mc.Spec{
				Circuit: c, Prior: prior, Decoder: decoder.KindUnionFind,
				Shots: fig13Shots, Rounds: fig13Distance, RNG: rng.New(seed + seedOff),
			}, nil
		}

		// Drifted 1Q: the data qubit's single-qubit operations degrade.
		mk1Q := func(factor float64) *noise.Map {
			n := noise.NewMap(p0)
			n.Gate1Q[dq] = p0 * factor
			n.MeasQ[dq] = p0 * factor
			n.ResetQ[dq] = p0 * factor
			return n
		}
		// Drifted 2Q: the (ancilla, data) coupler degrades.
		mk2Q := func(factor float64) *noise.Map {
			n := noise.NewMap(p0)
			n.SetGate2(anc, dq, math.Min(0.75, p0*factor))
			return n
		}
		// Isolated variants: the affected data qubit leaves the code via
		// DataQ_RM, retiring both the drifted 1Q channel and the coupler;
		// the cost is the deformation's distance loss.
		isolate := func() (*code.Patch, error) {
			p := mk()
			d := deform.NewDeformer(p)
			if _, err := d.IsolateQubit(dq, "fig13"); err != nil {
				return nil, err
			}
			return d.Patch, nil
		}
		iso1, err := isolate()
		if err != nil {
			return nil, err
		}
		iso2, err := isolate()
		if err != nil {
			return nil, err
		}
		// The original plus all six drift/isolation scenarios evaluate as one
		// batch per device; per-scenario seed offsets match the former
		// sequential evaluation order, so the numbers are unchanged.
		scenarios := []struct {
			label   string
			patch   *code.Patch
			noise   code.NoiseModel
			seedOff uint64
		}{
			{"original", base, code.UniformNoise(p0), 1},
			{"drifted-1Q (8h)", mk(), mk1Q(fig13Drift8h), 10},
			{"drifted-2Q (8h)", mk(), mk2Q(fig13Drift8h), 11},
			{"drifted-1Q (24h)", mk(), mk1Q(fig13Drift24h), 12},
			{"drifted-2Q (24h)", mk(), mk2Q(fig13Drift24h), 13},
			{"isolated drifted-1Q", iso1, code.UniformNoise(p0), 14},
			{"isolated drifted-2Q", iso2, code.UniformNoise(p0), 15},
		}
		var (
			labels []string
			specs  []mc.Spec
		)
		for _, sc := range scenarios {
			spec, err := buildSpec(sc.patch, sc.noise, sc.seedOff)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", name, sc.label, err)
			}
			labels = append(labels, "fig13 "+key+" "+sc.label)
			specs = append(specs, spec)
		}
		results, err := evalLERBatch(ctx, labels, specs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		orig := results[0].LER
		rep.AddRow(name, "original", fmt.Sprintf("%.4g", orig),
			fmt.Sprintf("[%.3g,%.3g]", results[0].WilsonLo, results[0].WilsonHi), "1.00x")
		rep.SetValue(key+"_original", orig)
		for i, sc := range scenarios[1:] {
			res := results[i+1]
			rep.AddRow(name, sc.label, fmt.Sprintf("%.4g", res.LER),
				fmt.Sprintf("[%.3g,%.3g]", res.WilsonLo, res.WilsonHi),
				fmt.Sprintf("%.2fx (%+.1f%%)", res.LER/orig, 100*(res.LER/orig-1)))
			rep.SetValue(key+"_"+keyify(sc.label), res.LER)
		}
	}
	rep.AddNote("paper (hardware): square +41.6%%/+135.5%% drifted, +13.1%%/+21.0%% isolated; heavy-hex +55.0%%/+178.2%% drifted, +22.8%%/+33.6%% isolated")
	rep.AddNote("shape to check: drifted >> isolated for the 2Q gate; isolation bounds the increase; heavy-hex more sensitive")
	return rep, nil
}

func keyify(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+32)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
