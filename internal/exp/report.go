// Package exp regenerates every table and figure of the paper's evaluation
// (the per-experiment index lives in DESIGN.md §4). Each experiment is a
// function from a seed to a Report: a titled set of rendered rows plus
// machine-readable series, so cmd/repro can print them and the test suite
// can assert the paper's qualitative shapes.
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID    string // e.g. "fig10", "table2"
	Title string
	// Header and Rows render as an aligned text table.
	Header []string
	Rows   [][]string
	// Notes carries caveats and the paper-vs-measured comparison.
	Notes []string
	// Values exposes headline scalars for tests and EXPERIMENTS.md.
	Values map[string]float64
}

// SetValue records a headline scalar.
func (r *Report) SetValue(k string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[k] = v
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render returns the report as aligned text.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	width := make([]int, len(r.Header))
	rows := append([][]string{r.Header}, r.Rows...)
	for _, row := range rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			pad := 0
			if i < len(width) {
				pad = width[i]
			}
			fmt.Fprintf(&sb, "%-*s", pad+2, c)
		}
		sb.WriteByte('\n')
		if ri == 0 && len(r.Header) > 0 {
			total := 0
			for _, w := range width {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("key results:\n")
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %-32s %.6g\n", k, r.Values[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment names and their runners. The context cancels long Monte-Carlo
// sweeps mid-shot-batch (see internal/mc) and can carry a live progress
// reporter (WithProgress).
type Runner func(ctx context.Context, seed uint64) (*Report, error)

// All returns the experiment registry in paper order.
func All() map[string]Runner {
	return map[string]Runner{
		"fig1":   Fig1Drift,
		"fig7":   Fig7Grouping,
		"fig9":   Fig9DriftDistribution,
		"fig10":  Fig10LERTrajectory,
		"fig11":  Fig11GroupingReduction,
		"fig12":  Fig12SpaceTime,
		"fig13":  Fig13RealDevice,
		"table1": Table1Instructions,
		"table2": Table2,
		"fit":    FitLERModel,
		"cycle":  CycleLER,

		// Ablations of this reproduction's design choices.
		"ablate-decoder":  AblateDecoder,
		"ablate-deltad":   AblateDeltaD,
		"ablate-priors":   AblatePriors,
		"ablate-schedule": AblateSchedule,
		"ablate-window":   AblateWindow,
		"routing":         RoutingParallelism,
		"localize":        LocalizeDrift,
		"decode-cost":     DecodeCost,
		"drift-inject":    DriftInject,
	}
}

// Order returns experiment IDs in presentation order.
func Order() []string {
	return []string{"fig1", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "table1", "table2", "fit", "cycle",
		"ablate-decoder", "ablate-deltad", "ablate-priors", "ablate-schedule", "ablate-window", "routing", "localize", "decode-cost", "drift-inject"}
}
