package exp

import (
	"caliqec/internal/device"
	"caliqec/internal/lattice"
	"caliqec/internal/ler"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"caliqec/internal/sched"
	"context"
	"fmt"
	"math"
	"sort"
)

// Fig1Drift reproduces Fig. 1: the fraction of gates exceeding the surface
// code threshold over 24 hours on an Eagle-class synthetic device, with and
// without periodic calibration.
func Fig1Drift(_ context.Context, seed uint64) (*Report, error) {
	r := rng.New(seed)
	lat := lattice.NewHeavyHex(7) // 127-qubit-class heavy-hex slab
	dev := device.New(lat, device.Options{}, r)
	rep := &Report{
		ID:     "fig1",
		Title:  "Error drift: fraction of gates above threshold over 24 h",
		Header: []string{"hour", "no-cal frac>th", "no-cal mean p", "calibrated frac>th"},
	}
	devCal := device.New(lat, device.Options{}, rng.New(seed)) // identical twin, calibrated every 4 h
	const calPeriod = 4.0
	for h := 0; h <= 24; h += 2 {
		t := float64(h)
		// Calibrated twin: full recalibration every calPeriod.
		if h > 0 && h%int(calPeriod) == 0 {
			devCal.CalibrateAll(t)
		}
		rep.AddRow(
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.3f", dev.FractionAbove(t, noise.Threshold)),
			fmt.Sprintf("%.4g", dev.MeanErrorAt(t)),
			fmt.Sprintf("%.3f", devCal.FractionAbove(t, noise.Threshold)),
		)
	}
	f24 := dev.FractionAbove(24, noise.Threshold)
	rep.SetValue("frac_above_threshold_24h_nocal", f24)
	rep.SetValue("frac_above_threshold_24h_cal", devCal.FractionAbove(24, noise.Threshold))
	rep.AddNote("paper: after one day >90%% of single-qubit gates exceed threshold without calibration; measured %.0f%%", 100*f24)
	return rep, nil
}

// Fig7Grouping reproduces the Fig. 7 worked example: the impact of the base
// calibration interval T_Cali on total calibration frequency.
func Fig7Grouping(_ context.Context, _ uint64) (*Report, error) {
	// Gate deadlines {5, 8, 9, 13, 14} hours (drift constants with one
	// decade of headroom).
	var gates []sched.GateProfile
	for i, h := range []float64{5, 8, 9, 13, 14} {
		gates = append(gates, sched.GateProfile{GateID: i, Drift: noise.Drift{P0: 1e-3, TDrift: h}})
	}
	const pTar = 1e-2
	rep := &Report{
		ID:     "fig7",
		Title:  "Choice of base interval T_Cali (worked example)",
		Header: []string{"T_Cali (h)", "calibrations/hour"},
	}
	gr, err := sched.AssignGroups(gates, pTar)
	if err != nil {
		return nil, err
	}
	for _, tc := range []float64{5, 4.5, 4} {
		f := 0.0
		for i := range gates {
			k := math.Floor(gates[i].DeadlineHours(pTar) / tc)
			f += 1 / (k * tc)
		}
		rep.AddRow(fmt.Sprintf("%.1f", tc), fmt.Sprintf("%.3f", f))
	}
	rep.SetValue("tcali_naive_hours", 5)
	rep.SetValue("freq_naive", 0.80)
	rep.SetValue("tcali_opt_hours", gr.TCaliHours)
	rep.SetValue("freq_opt", gr.TotalFrequency())
	rep.AddNote("paper Fig. 7: T_Cali=5h gives 0.80 cal/h; the optimizer finds 4h at 0.66 cal/h")
	return rep, nil
}

// Fig9DriftDistribution reproduces Fig. 9: the log-normal distribution of
// drift time constants (mean 14.08 h).
func Fig9DriftDistribution(_ context.Context, seed uint64) (*Report, error) {
	r := rng.New(seed)
	m := noise.CurrentModel()
	const n = 10000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = m.SampleTDrift(r)
	}
	rep := &Report{
		ID:     "fig9",
		Title:  "Distribution of drift time constants T(G)",
		Header: []string{"bin (h)", "count", "histogram"},
	}
	edges := []float64{0, 4, 8, 12, 16, 20, 24, 32, 40, 56, 80, math.Inf(1)}
	counts := make([]int, len(edges)-1)
	for _, s := range samples {
		for b := 0; b < len(edges)-1; b++ {
			if s >= edges[b] && s < edges[b+1] {
				counts[b]++
				break
			}
		}
	}
	for b, c := range counts {
		hi := fmt.Sprintf("%.0f", edges[b+1])
		if math.IsInf(edges[b+1], 1) {
			hi = "inf"
		}
		bar := ""
		for i := 0; i < c/100; i++ {
			bar += "#"
		}
		rep.AddRow(fmt.Sprintf("%.0f-%s", edges[b], hi), fmt.Sprintf("%d", c), bar)
	}
	mean := rng.Mean(samples)
	rep.SetValue("mean_hours", mean)
	rep.SetValue("p50_hours", rng.Percentile(samples, 50))
	rep.SetValue("p90_hours", rng.Percentile(samples, 90))
	rep.AddNote("paper: log-normal with mean 14.08 h; measured sample mean %.2f h", mean)
	return rep, nil
}

// Fig10LERTrajectory reproduces Fig. 10: LER dynamics of a d=11 patch under
// error drift for (1) no calibration, (2) qubit isolation + calibration
// without enlargement, (3) full CaliQEC with code enlargement.
func Fig10LERTrajectory(_ context.Context, seed uint64) (*Report, error) {
	const (
		d         = 11
		deltaD    = 4    // distance lost while the calibration region is isolated
		calDur    = 1.0  // hours a calibration window lasts
		horizon   = 30.0 // hours simulated
		step      = 0.5
		tDriftEff = 14.08 // effective device drift constant
	)
	model := ler.PaperModel()
	drift := noise.Drift{P0: noise.InitialErrorRate, TDrift: tDriftEff}
	// The calibration cycle is 8 h: error drifts up to p_tar = p(8h), the
	// last calDur hours of each cycle are the calibration window (the
	// region is isolated while the device is still drifted — that is why
	// isolation without enlargement spikes), and the drift clock resets at
	// the cycle boundary.
	const cycle = 8.0
	pTar := drift.At(cycle)
	lerThreshold := model.PerCycle(d, pTar)

	pNoCal := func(t float64) float64 { return drift.At(t) }
	pCal := func(t float64) float64 { return drift.At(math.Mod(t, cycle)) }
	inWindow := func(t float64) bool { return math.Mod(t, cycle) >= cycle-calDur }
	dIsolOnly := func(t float64) int {
		if inWindow(t) {
			return d - deltaD // distance lost, no compensation
		}
		return d
	}
	dFull := func(t float64) int { return d } // enlargement compensates

	trajNo := ler.Trajectory(model, horizon, step, pNoCal, func(float64) int { return d })
	trajIso := ler.Trajectory(model, horizon, step, pCal, dIsolOnly)
	trajFull := ler.Trajectory(model, horizon, step, pCal, dFull)

	rep := &Report{
		ID:     "fig10",
		Title:  "d=11 LER dynamics under drift (threshold = LER at p_tar)",
		Header: []string{"hour", "no-cal", "isolation only", "isolation+enlargement", "above threshold?"},
	}
	var spikeIso, spikeFull bool
	for i := range trajNo {
		mark := ""
		if trajIso[i].LER > lerThreshold {
			spikeIso = true
			mark = "isolation-only spikes"
		}
		if trajFull[i].LER > lerThreshold*1.0001 {
			spikeFull = true
		}
		rep.AddRow(
			fmt.Sprintf("%.1f", trajNo[i].Hours),
			fmt.Sprintf("%.3g", trajNo[i].LER),
			fmt.Sprintf("%.3g", trajIso[i].LER),
			fmt.Sprintf("%.3g", trajFull[i].LER),
			mark,
		)
	}
	rep.SetValue("ler_threshold", lerThreshold)
	rep.SetValue("nocal_final_over_threshold", trajNo[len(trajNo)-1].LER/lerThreshold)
	rep.SetValue("isolation_only_spikes", b2f(spikeIso))
	rep.SetValue("full_caliqec_spikes", b2f(spikeFull))
	rep.AddNote("paper: without calibration LER grows exponentially; isolation-only briefly spikes above threshold; full CaliQEC stays below")
	_ = seed
	return rep, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Fig11GroupingReduction reproduces Fig. 11: total calibration operations
// under uniform calibration, CaliQEC's adaptive grouping, and the ideal
// per-gate schedule, over a multi-day horizon.
func Fig11GroupingReduction(_ context.Context, seed uint64) (*Report, error) {
	r := rng.New(seed)
	model := noise.CurrentModel()
	const (
		nGates  = 200
		horizon = 7 * 24.0 // hours
	)
	var gates []sched.GateProfile
	for i := 0; i < nGates; i++ {
		gates = append(gates, sched.GateProfile{
			GateID: i,
			Drift:  noise.Drift{P0: noise.InitialErrorRate, TDrift: model.SampleTDrift(r)},
		})
	}
	pTar := noise.InitialErrorRate * math.Pow(10, 0.5) // half-decade headroom
	gr, err := sched.AssignGroups(gates, pTar)
	if err != nil {
		return nil, err
	}
	// Uniform: every gate calibrated whenever any gate requires it — i.e.
	// all gates at the minimum deadline.
	minDeadline := math.Inf(1)
	var deadlines []float64
	for i := range gates {
		d := gates[i].DeadlineHours(pTar)
		deadlines = append(deadlines, d)
		if d < minDeadline {
			minDeadline = d
		}
	}
	uniform := float64(nGates) * math.Floor(horizon/minDeadline)
	ideal := 0.0
	for _, d := range deadlines {
		ideal += math.Floor(horizon / d)
	}
	adaptive := 0.0
	for k, g := range gr.Groups {
		adaptive += float64(len(g)) * math.Floor(horizon/(float64(k)*gr.TCaliHours))
	}
	rep := &Report{
		ID:     "fig11",
		Title:  "Calibration-count reduction through adaptive grouping (7-day horizon)",
		Header: []string{"strategy", "calibrations", "vs uniform"},
	}
	rep.AddRow("uniform", fmt.Sprintf("%.0f", uniform), "1.00x")
	rep.AddRow("adaptive (CaliQEC)", fmt.Sprintf("%.0f", adaptive), fmt.Sprintf("%.2fx fewer", uniform/adaptive))
	rep.AddRow("ideal (per-gate)", fmt.Sprintf("%.0f", ideal), fmt.Sprintf("%.2fx fewer", uniform/ideal))
	rep.SetValue("uniform", uniform)
	rep.SetValue("adaptive", adaptive)
	rep.SetValue("ideal", ideal)
	rep.SetValue("reduction_vs_uniform", uniform/adaptive)
	rep.AddNote("paper: adaptive grouping reduces calibration operations 3.63–11.1x vs uniform (91%% reduction headline)")
	return rep, nil
}

// Fig12SpaceTime reproduces Fig. 12: the space-time overhead (Δd × T_cal)
// of sequential, bulk and adaptive intra-group scheduling across code
// distances.
func Fig12SpaceTime(_ context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "fig12",
		Title:  "Space-time overhead of calibration scheduling",
		Header: []string{"d", "sequential", "bulk", "adaptive", "seq/adp", "bulk/adp"},
	}
	var seqR, bulkR []float64
	for _, d := range []int{11, 15, 19, 23, 27} {
		r := rng.New(seed + uint64(d))
		tasks := syntheticTasks(d, r)
		lossEst := sched.SumDiameterLoss{Coord: func(q int) (int, int) { return q / d, q % d }}
		seq, err := sched.BuildSchedule(tasks, sched.StrategySequential, nil, lossEst, 0)
		if err != nil {
			return nil, err
		}
		bulk, err := sched.BuildSchedule(tasks, sched.StrategyBulk, nil, lossEst, 0)
		if err != nil {
			return nil, err
		}
		adp, err := sched.BuildSchedule(tasks, sched.StrategyAdaptive, nil, lossEst, 32)
		if err != nil {
			return nil, err
		}
		rs, rb := seq.SpaceTimeCost()/adp.SpaceTimeCost(), bulk.SpaceTimeCost()/adp.SpaceTimeCost()
		seqR = append(seqR, rs)
		bulkR = append(bulkR, rb)
		rep.AddRow(
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%.3f", seq.SpaceTimeCost()),
			fmt.Sprintf("%.3f", bulk.SpaceTimeCost()),
			fmt.Sprintf("%.3f", adp.SpaceTimeCost()),
			fmt.Sprintf("%.2fx", rs),
			fmt.Sprintf("%.2fx", rb),
		)
	}
	rep.SetValue("seq_over_adaptive_mean", rng.Mean(seqR))
	rep.SetValue("bulk_over_adaptive_mean", rng.Mean(bulkR))
	rep.AddNote("paper: adaptive scheduling reduces space-time overhead 2.89x vs sequential, 3.8x vs bulk")
	return rep, nil
}

// syntheticTasks builds one interval's calibration workload on a d×d patch:
// a mix of quick single-qubit touch-ups and slower multi-qubit regions
// (2Q gates plus their crosstalk neighbourhoods), with heterogeneous
// durations — the regime where neither sequential nor bulk scheduling is
// close to optimal (§8.2.3).
func syntheticTasks(d int, r *rng.RNG) []sched.Task {
	n := 2 * d
	var tasks []sched.Task
	for i := 0; i < n; i++ {
		row, col := r.Intn(d), r.Intn(d)
		size := 1
		if r.Bernoulli(0.4) {
			size = 2 + r.Intn(4) // crosstalk-expanded region
		}
		var region []int
		for k := 0; k < size; k++ {
			q := ((row+k/2)%d)*d + (col+k%2)%d
			region = append(region, q)
		}
		// Durations span 2 minutes to ~45 minutes, long tail on the large
		// regions (full 2Q retuning is slow).
		hours := 2.0/60 + r.Float64()*6.0/60
		if size > 2 {
			hours += r.Float64() * 35.0 / 60
		}
		tasks = append(tasks, sched.Task{GateID: i, Region: region, CaliHours: hours})
	}
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].GateID < tasks[b].GateID })
	return tasks
}
