package exp

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"context"
	"fmt"
)

// AblateWindow measures the accuracy cost of bounded-latency streaming
// decoding: the same sampled shot stream scored by the whole-shot
// union-find decoder and by sliding-window decoders of increasing window
// size. The window is the streaming decoder's only approximation — every
// other component is shared — so the LER gap is attributable to committing
// corrections before future rounds arrive.
func AblateWindow(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "ablate-window",
		Title:  "Streaming-window ablation: windowed vs whole-shot union-find LER",
		Header: []string{"d", "rounds", "window", "LER", "vs whole-shot"},
	}
	const (
		p     = 3e-3
		shots = 40000
	)
	for _, d := range []int{3, 5} {
		rounds := 2 * d
		patch := code.NewPatch(lattice.NewSquare(d))
		c, err := patch.MemoryCircuit(code.MemoryOptions{
			Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
		if err != nil {
			return nil, err
		}
		// c.NumRounds covers the data-initialization and final-readout
		// detector layers too; the largest ablated window is whole-shot.
		var windows []int
		for _, w := range []int{2, 3, 4, d + 1, c.NumRounds} {
			if n := len(windows); n == 0 || windows[n-1] != w {
				windows = append(windows, w)
			}
		}
		ab, err := mc.Default.AblateWindows(ctx, mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: rounds,
			RNG: rng.New(seed + uint64(d)),
		}, windows)
		if err != nil {
			return nil, err
		}
		whole := ab.LER()
		rep.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", ab.NumRounds), "whole-shot",
			fmt.Sprintf("%.4g", whole), "1.00x")
		rep.SetValue(fmt.Sprintf("whole_d%d", d), whole)
		for i, w := range ab.Windows {
			rel := "-"
			if whole > 0 {
				rel = fmt.Sprintf("%.2fx", ab.WindowLER(i)/whole)
			}
			rep.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", ab.NumRounds), fmt.Sprintf("%d", w),
				fmt.Sprintf("%.4g", ab.WindowLER(i)), rel)
			rep.SetValue(fmt.Sprintf("w%d_d%d", w, d), ab.WindowLER(i))
		}
	}
	rep.AddNote("a window of about d+1 rounds matches whole-shot decoding within noise; smaller windows commit error chains before their future context arrives, and the penalty grows with distance (longer time-like chains)")
	rep.AddNote("resident decode state is O(window), so any W column here is achievable on an unbounded live stream")
	return rep, nil
}
