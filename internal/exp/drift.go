package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/noise"
	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// Drift-injection parameters. The traces are small enough (d=3, a few
// thousand shots per scenario) that the experiment runs inside `go test
// -short` — it is the stream pipeline's end-to-end drift-detection gate,
// not a statistics sweep.
const (
	driftD       = 3
	driftRounds  = 3
	driftBase    = 3e-3
	driftWindow  = 500 // frames per estimator window
	driftSteadyW = 6   // steady windows before injection (4 of them baseline)
	driftHotW    = 4   // injected windows = the detection budget K
)

// driftEstimator is the scenario config: slack ~2.6 sigma of the windowed
// fire rate absorbs shot noise (zero false positives on the steady
// control), threshold one elevated window's excess away.
func driftEstimator(name string, health *stream.HealthRegistry, sink *obs.EventSink) stream.EstimatorConfig {
	return stream.EstimatorConfig{
		Window:          driftWindow,
		Slack:           0.02,
		Threshold:       0.06,
		BaselineWindows: 4,
		Stream:          name,
		Health:          health,
		Events:          sink,
	}
}

// DriftInject is the stream-observability experiment: traces recorded under
// injected per-qubit drift (a transient jump on a measure ancilla, a linear
// ramp on a data qubit) are replayed through the decode pipeline's drift
// monitor, which must flag the drift within the K = driftHotW injected
// windows and attribute it to the right hardware neighbourhood — while a
// steady control trace of the same length produces zero events.
func DriftInject(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "drift-inject",
		Title:  fmt.Sprintf("Stream drift detection under injected drift (d=%d, %d-frame windows)", driftD, driftWindow),
		Header: []string{"scenario", "frames", "events", "onset win", "first event win", "delay", "flagged qubits"},
	}
	p := code.NewPatch(lattice.NewSquare(driftD))
	mem := func(nm code.NoiseModel) (*circuit.Circuit, error) {
		return p.MemoryCircuit(code.MemoryOptions{Rounds: driftRounds, Basis: lattice.BasisZ, Noise: nm})
	}
	baseC, err := mem(code.UniformNoise(driftBase))
	if err != nil {
		return nil, err
	}
	eng := mc.New(mc.Options{})
	fd, err := eng.FrameDecoder(baseC, decoder.KindUnionFind)
	if err != nil {
		return nil, err
	}

	// Ground-truth targets: a measure ancilla detectors are anchored on (for
	// the transient jump) and an interior data qubit (for the ramp).
	anchors := baseC.DetectorQubits()
	ancilla := anchors[len(anchors)/2]
	hotData := p.Lat.DataID[[2]int{1, 1}]

	record := func(nm code.NoiseModel, shots int, seedOff uint64) ([]byte, error) {
		c, err := mem(nm)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		spec := mc.Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: driftRounds, Seed: seed + seedOff}
		if _, err := stream.Record(ctx, spec, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	totalShots := (driftSteadyW + driftHotW) * driftWindow
	steadyShots := driftSteadyW * driftWindow

	steady, err := record(code.UniformNoise(driftBase), totalShots, 1)
	if err != nil {
		return nil, err
	}

	steadyPrefix, err := record(code.UniformNoise(driftBase), steadyShots, 2)
	if err != nil {
		return nil, err
	}
	jumpSeg, err := record(code.HotQubit{Base: code.UniformNoise(driftBase), Qubit: ancilla, P: driftBase * 20},
		driftHotW*driftWindow, 3)
	if err != nil {
		return nil, err
	}
	transient, err := spliceTraces(steadyPrefix, jumpSeg)
	if err != nil {
		return nil, err
	}

	// Linear ramp on a data qubit: one recorded segment per injected window,
	// each at the drift law's rate for that window.
	law := noise.LinearDrift{P0: driftBase, Rate: 8e-3}
	rampPrefix, err := record(code.UniformNoise(driftBase), steadyShots, 4)
	if err != nil {
		return nil, err
	}
	rampSegs := [][]byte{rampPrefix}
	for k := 1; k <= driftHotW; k++ {
		seg, err := record(code.HotQubit{Base: code.UniformNoise(driftBase), Qubit: hotData, P: law.At(float64(k))},
			driftWindow, 4+uint64(k))
		if err != nil {
			return nil, err
		}
		rampSegs = append(rampSegs, seg)
	}
	ramp, err := spliceTraces(rampSegs...)
	if err != nil {
		return nil, err
	}

	type outcome struct {
		frames   int
		events   []stream.DriftEvent
		drifting []int
	}
	run := func(name string, raw []byte) (*outcome, error) {
		r, err := stream.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		var log bytes.Buffer
		sink := obs.NewEventSink(&log, 256)
		health := stream.NewHealthRegistry()
		opt := stream.PipelineOptions{Metrics: obs.Discard, Estimator: driftEstimator(name, health, sink)}
		stats, err := stream.Replay(ctx, r, fd, opt)
		if err != nil {
			return nil, err
		}
		if err := sink.Close(); err != nil {
			return nil, err
		}
		out := &outcome{frames: stats.Frames, drifting: health.Get(name).Snapshot().DriftingQubits}
		dec := json.NewDecoder(&log)
		for dec.More() {
			var ev stream.DriftEvent
			if err := dec.Decode(&ev); err != nil {
				return nil, err
			}
			out.events = append(out.events, ev)
		}
		return out, nil
	}

	// firstFire returns the 1-based window of the earliest fire-rate event,
	// 0 when none fired.
	firstFire := func(o *outcome) int64 {
		var first int64
		for _, ev := range o.events {
			if ev.Kind == stream.DriftFireRate && (first == 0 || ev.Window < first) {
				first = ev.Window
			}
		}
		return first
	}
	addRow := func(name string, o *outcome, onset int) {
		first := firstFire(o)
		delay, firstS := "-", "-"
		if first > 0 {
			firstS = fmt.Sprintf("%d", first)
			delay = fmt.Sprintf("%d", first-int64(onset))
		}
		qs := make([]string, len(o.drifting))
		for i, q := range o.drifting {
			qs[i] = fmt.Sprintf("%d", q)
		}
		onsetS := "-"
		if onset > 0 {
			onsetS = fmt.Sprintf("%d", onset)
		}
		rep.AddRow(name, fmt.Sprintf("%d", o.frames), fmt.Sprintf("%d", len(o.events)),
			onsetS, firstS, delay, strings.Join(qs, " "))
	}

	onset := driftSteadyW + 1 // first injected window, 1-based

	ctrl, err := run("steady", steady)
	if err != nil {
		return nil, err
	}
	addRow("steady control", ctrl, 0)
	rep.SetValue("steady_false_positives", float64(len(ctrl.events)))

	jump, err := run("transient", transient)
	if err != nil {
		return nil, err
	}
	addRow("transient jump (ancilla)", jump, onset)
	jumpFirst := firstFire(jump)
	rep.SetValue("transient_detected", boolVal(jumpFirst > 0))
	rep.SetValue("transient_detect_windows", float64(jumpFirst-int64(driftSteadyW)))
	hit := 0.0
	for _, ev := range jump.events {
		if ev.Kind == stream.DriftFireRate && ev.Qubit == ancilla {
			hit = 1
			break
		}
	}
	rep.SetValue("transient_qubit_hit", hit)

	ramped, err := run("ramp", ramp)
	if err != nil {
		return nil, err
	}
	addRow("linear ramp (data)", ramped, onset)
	rampFirst := firstFire(ramped)
	rep.SetValue("ramp_detected", boolVal(rampFirst > 0))
	rep.SetValue("ramp_detect_windows", float64(rampFirst-int64(driftSteadyW)))
	// Allowed attribution neighbourhood: the checks adjacent to the hot data
	// qubit, plus the data qubits those checks touch — round detectors are
	// anchored on the check ancillas, final-round detectors on the data
	// readouts, and both kinds legitimately fire when the hot qubit drifts.
	adjacent := map[int]bool{hotData: true}
	for _, chk := range p.Lat.Neighbors(hotData) {
		adjacent[chk] = true
		for _, dq := range p.Lat.Neighbors(chk) {
			adjacent[dq] = true
		}
	}
	adjOnly := 1.0
	for _, q := range ramped.drifting {
		if !adjacent[q] {
			adjOnly = 0
		}
	}
	rep.SetValue("ramp_flags_adjacent_checks", adjOnly)
	rep.SetValue("detection_budget_windows", driftHotW)

	rep.AddNote("hot ancilla qubit %d (%s), hot data qubit %d; jump = %gx base rate, ramp law p(k) = %g + %g*k",
		ancilla, p.Lat.Qubit(ancilla).Role.String(), hotData, 20.0, law.P0, law.Rate)
	rep.AddNote("detection budget: drift must be flagged within the %d injected windows; steady control must stay silent", driftHotW)
	rep.AddNote("data-qubit drift is attributed to the adjacent check ancillas — data qubits close no detectors themselves")
	return rep, nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// spliceTraces re-wraps the frames of every segment under the first
// segment's header (summing the shot counts), producing one continuous
// trace. Segments must share frame geometry; the caller records them from
// circuits over the same patch so they do.
func spliceTraces(segs ...[]byte) ([]byte, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("exp: no segments to splice")
	}
	var frames uint64
	readers := make([]*stream.Reader, len(segs))
	for i, seg := range segs {
		r, err := stream.NewReader(bytes.NewReader(seg))
		if err != nil {
			return nil, err
		}
		readers[i] = r
		frames += r.Header().Shots
	}
	h := readers[0].Header()
	h.Shots = frames
	var out bytes.Buffer
	w, err := stream.NewWriter(&out, h)
	if err != nil {
		return nil, err
	}
	var f stream.Frame
	for i, r := range readers {
		if g := r.Header(); g.NumDetectors != h.NumDetectors || g.NumObs != h.NumObs {
			return nil, fmt.Errorf("exp: segment %d geometry (%d det, %d obs) mismatches segment 0 (%d, %d)",
				i, g.NumDetectors, g.NumObs, h.NumDetectors, h.NumObs)
		}
		for {
			err := r.Next(&f)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if werr := w.WriteFrame(f.Packed, f.Obs); werr != nil {
				return nil, werr
			}
		}
	}
	return out.Bytes(), nil
}
