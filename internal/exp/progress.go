package exp

import (
	"caliqec/internal/mc"
	"caliqec/internal/obs"
	"context"
)

// ProgressFunc receives live Monte-Carlo status while an experiment runs:
// a human-readable label for the evaluation in flight, shots committed so
// far, the shot budget, and failures counted. Calls are serialized by the
// mc engine (never concurrent, strictly increasing shot counts, and a
// guaranteed final call with the returned totals), but they arrive from
// worker goroutines on the evaluation's critical path and must be fast.
type ProgressFunc func(label string, shots, total, failures int)

type progressKey struct{}

// WithProgress returns a context whose Monte-Carlo experiments report live
// status through fn (cmd/repro wires this to a status line).
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// evalLER is the one funnel through which every experiment in this package
// runs a Monte-Carlo LER measurement: it attaches the context's progress
// reporter (if any) to the spec and evaluates on the shared mc engine, so
// repeated circuits across experiments hit one DEM/graph cache.
func evalLER(ctx context.Context, label string, spec mc.Spec) (mc.Result, error) {
	ctx, span := obs.StartSpan(ctx, "exp.eval")
	defer span.End()
	span.SetAttr("label", label)
	if fn, ok := ctx.Value(progressKey{}).(ProgressFunc); ok && fn != nil {
		total := spec.Shots
		spec.Progress = func(shots, failures int) { fn(label, shots, total, failures) }
	}
	res, err := mc.Evaluate(ctx, spec)
	if err == nil && res.EarlyStopped {
		span.SetAttr("earlystop", true)
	}
	return res, err
}

// evalLERBatch is evalLER's fan-out counterpart: it runs the specs as one
// mc.EvaluateBatch over the shared engine's chunk scheduler, attaching the
// context's progress reporter to each spec under its own label. Results
// are bit-identical to evaluating the specs one by one (each spec seeds
// from its own RNG/Seed), so migrating a sweep here changes its wall-clock
// time, not its numbers. labels must be 1:1 with specs.
func evalLERBatch(ctx context.Context, labels []string, specs []mc.Spec) ([]mc.Result, error) {
	ctx, span := obs.StartSpan(ctx, "exp.evalbatch")
	defer span.End()
	span.SetAttr("specs", len(specs))
	if fn, ok := ctx.Value(progressKey{}).(ProgressFunc); ok && fn != nil {
		for i := range specs {
			label, total := labels[i], specs[i].Shots
			specs[i].Progress = func(shots, failures int) { fn(label, shots, total, failures) }
		}
	}
	return mc.EvaluateBatch(ctx, specs)
}
