package exp

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"context"
	"fmt"
)

// CycleLER is this reproduction's circuit-level extension of Fig. 10: where
// the paper evaluates the LER impact of isolation + reintegration through
// the analytic Eq. (4), this experiment Monte-Carlo-samples one continuous
// memory experiment that runs *through* a full CaliQEC calibration cycle —
// pristine rounds, DataQ_RM isolation, deformed rounds with gauge-fixing
// transition detectors, reintegration, pristine rounds — and decodes it end
// to end. The headline: the cycle's logical error rate stays within noise
// of the static code's, i.e. in-situ calibration costs essentially nothing
// at the circuit level.
func CycleLER(ctx context.Context, seed uint64) (*Report, error) {
	const (
		d      = 5
		p      = 2e-3
		rounds = 3 // per epoch (pristine / isolated / reintegrated)
		shots  = 60000
	)
	rep := &Report{
		ID:     "cycle",
		Title:  "Monte-Carlo LER through a full isolate→calibrate→reintegrate cycle (d=5)",
		Header: []string{"lattice", "scenario", "LER", "95% CI"},
	}
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		name := kind.String()
		mk := func() *code.Patch {
			if kind == lattice.Square {
				return code.NewPatch(lattice.NewSquare(d))
			}
			return code.NewPatch(lattice.NewHeavyHex(d))
		}
		// Static reference.
		static := mk()
		sc, err := static.MemoryCircuit(code.MemoryOptions{Rounds: 3 * rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
		if err != nil {
			return nil, err
		}
		// Calibration cycle.
		isoPatch := mk()
		df := deform.NewDeformer(isoPatch)
		if _, err := df.IsolateQubit(isoPatch.Lat.DataID[[2]int{2, 2}], "cycle"); err != nil {
			return nil, err
		}
		epochs := []code.Epoch{
			{Patch: mk(), Rounds: rounds},
			{Patch: df.Patch, Rounds: rounds},
			{Patch: mk(), Rounds: rounds},
		}
		cc, err := code.TimelineCircuit(epochs, code.TimelineOptions{Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
		if err != nil {
			return nil, err
		}
		// Static reference and cycle sample as one batch per lattice; the
		// per-spec seeds (seed+1, seed+2) match the former sequential runs.
		results, err := evalLERBatch(ctx,
			[]string{"cycle " + name + " static", "cycle " + name + " calibration"},
			[]mc.Spec{
				{Circuit: sc, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3 * rounds,
					RNG: rng.New(seed + 1)},
				{Circuit: cc, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3 * rounds,
					RNG: rng.New(seed + 2)},
			})
		if err != nil {
			return nil, err
		}
		sres, cres := results[0], results[1]
		rep.AddRow(name, "static", fmt.Sprintf("%.4g", sres.LER), fmt.Sprintf("[%.3g,%.3g]", sres.WilsonLo, sres.WilsonHi))
		rep.AddRow(name, "calibration cycle", fmt.Sprintf("%.4g", cres.LER), fmt.Sprintf("[%.3g,%.3g]", cres.WilsonLo, cres.WilsonHi))
		rep.SetValue(name+"_static", sres.LER)
		rep.SetValue(name+"_cycle", cres.LER)
		if sres.LER > 0 {
			rep.SetValue(name+"_ratio", cres.LER/sres.LER)
		}
	}
	rep.AddNote("extension experiment: the paper argues via Eq. (4) (Fig. 10); here the full deformation timeline is sampled and decoded directly")
	rep.AddNote("shape: cycle LER within a small factor (≈1-2x) of the static code — in-situ calibration preserves protection")
	return rep, nil
}
