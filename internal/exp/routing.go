package exp

import (
	"caliqec/internal/ftqc"
	"caliqec/internal/rng"
	"context"
	"fmt"
)

// RoutingParallelism validates the execution-time model's parallelism
// assumptions against the lattice-surgery routing fabric: random CNOT
// streams are routed with edge-disjoint channel paths (the paper's
// compilation reference [8]) across fabric sizes, and the achieved mean
// parallelism is compared with the per-benchmark throughput factors fitted
// from Table 2 (internal/workload).
func RoutingParallelism(_ context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "routing",
		Title:  "Lattice-surgery routing: achieved parallelism vs fabric size",
		Header: []string{"logical patches", "ops", "windows", "mean parallelism"},
	}
	r := rng.New(seed)
	var last float64
	for _, logical := range []int{16, 64, 200, 800} {
		a := ftqc.NewArch(logical, 25)
		ops := a.RandomOps(600, r.Split())
		res := a.Route(ops)
		rep.AddRow(fmt.Sprintf("%d", logical), fmt.Sprintf("%d", res.Ops),
			fmt.Sprintf("%d", res.Windows), fmt.Sprintf("%.2f", res.MeanParallelism))
		rep.SetValue(fmt.Sprintf("parallelism_%d", logical), res.MeanParallelism)
		last = res.MeanParallelism
	}
	rep.SetValue("parallelism_largest", last)
	rep.AddNote("Table 2's fitted throughput factors (0.6-8.6 ops in flight) sit inside the range the routing fabric sustains")
	rep.AddNote("random all-to-all traffic is a stress case: compiled programs exploit locality and reach higher parallelism")
	return rep, nil
}
