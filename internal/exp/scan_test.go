package exp

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"context"
	"testing"
)

// TestScanIsolationCost is a diagnostic (run with -run ScanIsolation -v):
// it reports the relative LER cost of isolating one interior data qubit of
// a d=3 code across physical error rates, locating the regime where the
// cost is small (near threshold), which Fig. 13 relies on.
func TestScanIsolationCost(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic scan")
	}
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		ps := []float64{5e-3, 8e-3, 1.2e-2, 1.6e-2, 2.2e-2}
		if kind == lattice.HeavyHex {
			ps = []float64{2e-3, 3e-3, 4.5e-3, 6e-3, 8e-3}
		}
		for _, p := range ps {
			mk := func() *code.Patch {
				if kind == lattice.Square {
					return code.NewPatch(lattice.NewSquare(3))
				}
				return code.NewPatch(lattice.NewHeavyHex(3))
			}
			base := mk()
			cb, err := base.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := mc.Evaluate(context.Background(), mc.Spec{
				Circuit: cb, Decoder: decoder.KindUnionFind, Shots: 30000, Rounds: 3, RNG: rng.New(1),
			})
			if err != nil {
				t.Fatal(err)
			}
			iso := mk()
			d := deform.NewDeformer(iso)
			if _, err := d.IsolateQubit(iso.Lat.DataID[[2]int{1, 1}], "scan"); err != nil {
				t.Fatal(err)
			}
			ci, err := d.Patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
			if err != nil {
				t.Fatal(err)
			}
			ri, err := mc.Evaluate(context.Background(), mc.Spec{
				Circuit: ci, Decoder: decoder.KindUnionFind, Shots: 30000, Rounds: 3, RNG: rng.New(2),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v p=%.4g: original=%.4g isolated=%.4g (+%.0f%%)",
				kind, p, rb.LER, ri.LER, 100*(ri.LER/rb.LER-1))
		}
	}
}
