package exp

import (
	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/dem"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"caliqec/internal/runtime"
	"caliqec/internal/workload"
	"context"
	"fmt"
)

// AblateDecoder compares the production union-find decoder against the
// matching baseline on identical circuits: logical error rate and decoding
// throughput. This is the design-choice ablation for substituting
// union-find (the paper's cited decoder family for deformed codes) in
// place of PyMatching.
func AblateDecoder(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "ablate-decoder",
		Title:  "Decoder ablation: union-find vs matching baseline",
		Header: []string{"d", "p", "decoder", "LER", "µs/shot"},
	}
	const shots = 30000
	for _, d := range []int{3, 5} {
		for _, p := range []float64{2e-3, 4e-3} {
			patch := code.NewPatch(lattice.NewSquare(d))
			c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: d, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
			if err != nil {
				return nil, err
			}
			for _, kind := range []decoder.DecoderKind{decoder.KindUnionFind, decoder.KindGreedy} {
				name := "union-find"
				if kind == decoder.KindGreedy {
					name = "matching"
				}
				// Workers: 1 so the wall-clock per shot reflects decode
				// latency, not pool parallelism.
				elapsed := stopwatch()
				res, err := evalLER(ctx, fmt.Sprintf("ablate-decoder %s d=%d", name, d), mc.Spec{
					Circuit: c, Decoder: kind, Shots: shots, Rounds: d,
					RNG: rng.New(seed + uint64(d)), Workers: 1,
				})
				if err != nil {
					return nil, err
				}
				perShot := elapsed() * 1e6 / shots
				rep.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%.3g", p), name,
					fmt.Sprintf("%.4g", res.LER), fmt.Sprintf("%.1f", perShot))
				rep.SetValue(fmt.Sprintf("%s_d%d_p%.0e", name, d, p), res.LER)
			}
		}
	}
	rep.AddNote("shape: the two decoders agree within a small factor; union-find is the faster production choice")
	return rep, nil
}

// AblateDeltaD sweeps CaliQEC's maximum tolerable distance loss Δd (the
// paper fixes Δd = 4, §7.3) on the Hubbard-10-10 row: larger Δd buys more
// calibration parallelism at more interspace qubits.
func AblateDeltaD(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "ablate-deltad",
		Title:  "Δd ablation on Hubbard-10-10 (d=25)",
		Header: []string{"Δd", "physical qubits", "qubit overhead", "retry risk"},
	}
	base, err := runtime.Run(ctx, runtime.Config{
		Prog: workload.Hubbard(10, 10), D: 25, RetryTarget: 0.01, Seed: seed,
	}, runtime.StrategyNoCal)
	if err != nil {
		return nil, err
	}
	for _, dd := range []int{1, 2, 4, 8} {
		res, err := runtime.Run(ctx, runtime.Config{
			Prog: workload.Hubbard(10, 10), D: 25, RetryTarget: 0.01, Seed: seed, DeltaD: dd,
		}, runtime.StrategyCaliQEC)
		if err != nil {
			return nil, err
		}
		over := res.PhysicalQubits/base.PhysicalQubits - 1
		rep.AddRow(fmt.Sprintf("%d", dd), fmt.Sprintf("%.3g", res.PhysicalQubits),
			fmt.Sprintf("%.1f%%", 100*over), fmt.Sprintf("%.3g%%", 100*res.RetryRisk))
		rep.SetValue(fmt.Sprintf("overhead_dd%d", dd), over)
	}
	rep.AddNote("paper fixes Δd=4; the sweep shows the linear interspace cost ≈ Δd/d per dimension")
	return rep, nil
}

// AblatePriors quantifies the stale-decoder-priors effect underlying
// Fig. 13: the same drifted circuit decoded with matched (drift-aware) vs
// calibrated (stale) priors.
func AblatePriors(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "ablate-priors",
		Title:  "Decoder-prior ablation: drift-aware vs stale priors on a drifted d=3 code",
		Header: []string{"scenario", "LER", "95% CI"},
	}
	const (
		p     = 1.2e-2
		drift = 10.0
		shots = 60000
	)
	patch := code.NewPatch(lattice.NewSquare(3))
	dq := patch.Lat.DataID[[2]int{1, 1}]
	noisy, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: &driftedOne{base: p, q: dq, factor: drift}})
	if err != nil {
		return nil, err
	}
	prior, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		return nil, err
	}
	// Paired comparison: both specs deliberately seed from seed+1 so the
	// matched and stale decoders see the same shot stream; batched, each
	// spec still draws from its own generator instance.
	results, err := evalLERBatch(ctx,
		[]string{"ablate-priors matched", "ablate-priors stale"},
		[]mc.Spec{
			{Circuit: noisy, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3,
				RNG: rng.New(seed + 1)},
			{Circuit: noisy, Prior: prior, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3,
				RNG: rng.New(seed + 1)},
		})
	if err != nil {
		return nil, err
	}
	matched, stale := results[0], results[1]
	rep.AddRow("drift-aware priors", fmt.Sprintf("%.4g", matched.LER), fmt.Sprintf("[%.3g,%.3g]", matched.WilsonLo, matched.WilsonHi))
	rep.AddRow("stale priors", fmt.Sprintf("%.4g", stale.LER), fmt.Sprintf("[%.3g,%.3g]", stale.WilsonLo, stale.WilsonHi))
	rep.SetValue("matched", matched.LER)
	rep.SetValue("stale", stale.LER)
	if matched.LER > 0 {
		rep.SetValue("stale_penalty", stale.LER/matched.LER)
	}
	rep.AddNote("stale priors (the operational reality between calibrations) decode the drifted gate worse; CaliQEC re-derives the decoder on every deformation")
	return rep, nil
}

// driftedOne elevates every channel touching one qubit by a factor.
type driftedOne struct {
	base   float64
	q      int
	factor float64
}

func (d *driftedOne) rate(q int) float64 {
	if q == d.q {
		return d.base * d.factor
	}
	return d.base
}

// Gate1 implements code.NoiseModel.
func (d *driftedOne) Gate1(q int) float64 { return d.rate(q) }

// Gate2 implements code.NoiseModel.
func (d *driftedOne) Gate2(a, b int) float64 {
	if a == d.q || b == d.q {
		return d.base * d.factor
	}
	return d.base
}

// Meas implements code.NoiseModel.
func (d *driftedOne) Meas(q int) float64 { return d.rate(q) }

// Reset implements code.NoiseModel.
func (d *driftedOne) Reset(q int) float64 { return d.rate(q) }

// AblateSchedule compares the default sequential X-then-Z extraction
// schedule (required for gauge-fixed deformed codes) against the standard
// interleaved simultaneous schedule on pristine square patches: same gate
// counts under the per-gate noise model, different hook-error structure.
func AblateSchedule(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "ablate-schedule",
		Title:  "Extraction-schedule ablation: sequential phases vs interleaved",
		Header: []string{"d", "p", "schedule", "LER"},
	}
	const shots = 40000
	type schedCase struct {
		d    int
		p    float64
		name string
	}
	var (
		cases  []schedCase
		labels []string
		specs  []mc.Spec
	)
	for _, d := range []int{3, 5} {
		p := 3e-3
		patch := code.NewPatch(lattice.NewSquare(d))
		for _, il := range []bool{false, true} {
			name := "sequential"
			if il {
				name = "interleaved"
			}
			c, err := patch.MemoryCircuit(code.MemoryOptions{
				Rounds: d, Basis: lattice.BasisZ, Noise: code.UniformNoise(p), Interleaved: il,
			})
			if err != nil {
				return nil, err
			}
			cases = append(cases, schedCase{d: d, p: p, name: name})
			labels = append(labels, fmt.Sprintf("ablate-schedule %s d=%d", name, d))
			specs = append(specs, mc.Spec{
				Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: d,
				RNG: rng.New(seed + uint64(d)),
			})
		}
	}
	results, err := evalLERBatch(ctx, labels, specs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rep.AddRow(fmt.Sprintf("%d", cases[i].d), fmt.Sprintf("%.3g", cases[i].p), cases[i].name, fmt.Sprintf("%.4g", res.LER))
		rep.SetValue(fmt.Sprintf("%s_d%d", cases[i].name, cases[i].d), res.LER)
	}
	rep.AddNote("the sequential schedule (needed for deformed-code gauge fixing) costs only an O(1) factor over the hardware-standard interleaved schedule")
	return rep, nil
}

// DecodeCost validates the paper's §2.2 claim that decoders handle
// deformed codes "ensuring minimal impact on decoding time": union-find
// decode latency is measured on a pristine patch, an isolated (deformed)
// patch, and a full deformation timeline.
func DecodeCost(ctx context.Context, seed uint64) (*Report, error) {
	rep := &Report{
		ID:     "decode-cost",
		Title:  "Decoding-time impact of code deformation (union-find, d=5)",
		Header: []string{"structure", "detectors", "graph edges", "µs/shot", "vs pristine"},
	}
	const (
		d      = 5
		p      = 2e-3
		rounds = 6
		shots  = 20000
	)
	mk := func() *code.Patch { return code.NewPatch(lattice.NewSquare(d)) }
	timeIt := func(label string, c *circuitT) (float64, int, error) {
		// Workers: 1 — this experiment reports decode latency per shot.
		elapsed := stopwatch()
		if _, err := evalLER(ctx, "decode-cost "+label, mc.Spec{
			Circuit: c.c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: rounds,
			RNG: rng.New(seed + c.off), Workers: 1,
		}); err != nil {
			return 0, 0, err
		}
		return elapsed() * 1e6 / shots, c.c.NumDetectors, nil
	}
	// Pristine.
	pr := mk()
	cPr, err := pr.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		return nil, err
	}
	// Deformed (one interior qubit isolated).
	iso := mk()
	df := deform.NewDeformer(iso)
	if _, err := df.IsolateQubit(iso.Lat.DataID[[2]int{2, 2}], "t"); err != nil {
		return nil, err
	}
	cIso, err := df.Patch.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		return nil, err
	}
	// Full timeline (pristine → isolated → reintegrated).
	cTl, err := code.TimelineCircuit([]code.Epoch{
		{Patch: mk(), Rounds: 2}, {Patch: df.Patch, Rounds: 2}, {Patch: mk(), Rounds: 2},
	}, code.TimelineOptions{Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		return nil, err
	}
	base := -1.0 // set from the first row; negative marks "not yet measured"
	for _, row := range []struct {
		name string
		ct   *circuitT
	}{
		{"pristine", &circuitT{cPr, 1}},
		{"isolated (DataQ_RM)", &circuitT{cIso, 2}},
		{"deformation timeline", &circuitT{cTl, 3}},
	} {
		us, dets, err := timeIt(row.name, row.ct)
		if err != nil {
			return nil, err
		}
		edges := "-"
		if m, err := dem.FromCircuit(row.ct.c); err == nil {
			if g, err := decoder.BuildGraph(m); err == nil {
				edges = fmt.Sprintf("%d", len(g.Edges))
			}
		}
		rel := "1.00x"
		if base < 0 {
			base = us
		} else {
			rel = fmt.Sprintf("%.2fx", us/base)
		}
		rep.AddRow(row.name, fmt.Sprintf("%d", dets), edges, fmt.Sprintf("%.1f", us), rel)
		rep.SetValue(keyify(row.name), us)
	}
	rep.SetValue("deformed_over_pristine", rep.Values[keyify("isolated (DataQ_RM)")]/rep.Values["pristine"])
	rep.AddNote("paper §2.2: decoders handle dynamically changing stabilizers with minimal impact on decoding time")
	return rep, nil
}

// circuitT pairs a circuit with a seed offset for DecodeCost.
type circuitT struct {
	c   *circuit.Circuit
	off uint64
}
