// Package ler implements the logical-error-rate model of the paper's
// Eq. (4), LER(d, p) = α · (p/p_th)^((d+1)/2), the calibration of its
// parameters (α, p_th) against this repository's own Monte-Carlo
// simulations, retry-risk accounting, and LER-versus-time trajectories
// under error drift and code deformation (the Fig. 10 machinery).
//
// Monte-Carlo sampling cannot reach the per-cycle rates of d ≥ 11 codes
// (1e-9 and below), so — exactly like the paper's evaluation — large
// distances are evaluated analytically, but with the model anchored to
// measured small-distance points so the analytic layer inherits the
// simulated substrate's behaviour.
package ler

import (
	"caliqec/internal/rng"
	"fmt"
	"math"
)

// Model is the two-parameter LER law of Eq. (4).
type Model struct {
	Alpha float64 // code-family prefactor (≈0.03 for the rotated code)
	Pth   float64 // physical threshold (≈0.01 circuit-level)
}

// PaperModel returns the constants the paper quotes (§5.2).
func PaperModel() Model { return Model{Alpha: 0.03, Pth: 0.01} }

// PerCycle returns the logical error rate per QEC cycle of a distance-d
// patch at physical rate p, clamped to [0, 1].
func (m Model) PerCycle(d int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	l := m.Alpha * math.Pow(p/m.Pth, float64(d+1)/2)
	if l > 1 {
		return 1
	}
	return l
}

// PTarget inverts PerCycle: the physical rate at which a distance-d patch
// hits the target per-cycle LER.
func (m Model) PTarget(d int, lerTar float64) float64 {
	return m.Pth * math.Pow(lerTar/m.Alpha, 2/float64(d+1))
}

// Point is one Monte-Carlo measurement used for fitting.
type Point struct {
	D   int
	P   float64 // physical error rate of the run
	LER float64 // measured per-cycle logical error rate
}

// Fit calibrates (α, p_th) to Monte-Carlo points by linear regression in
// log space: log LER_i − x_i·log p_i = log α − x_i·log p_th with
// x_i = (d_i+1)/2. At least two points with distinct distances are needed.
func Fit(points []Point) (Model, error) {
	var xs, ys []float64
	seen := map[int]bool{}
	for _, pt := range points {
		if pt.LER <= 0 || pt.P <= 0 {
			continue
		}
		x := float64(pt.D+1) / 2
		xs = append(xs, x)
		ys = append(ys, math.Log(pt.LER)-x*math.Log(pt.P))
		seen[pt.D] = true
	}
	if len(xs) < 2 || len(seen) < 2 {
		return Model{}, fmt.Errorf("ler: need ≥ 2 usable points across ≥ 2 distances, have %d/%d", len(xs), len(seen))
	}
	slope, intercept := rng.LinearFit(xs, ys)
	m := Model{Alpha: math.Exp(intercept), Pth: math.Exp(-slope)}
	if !(m.Pth > 0) || math.IsInf(m.Alpha, 0) {
		return Model{}, fmt.Errorf("ler: degenerate fit α=%g p_th=%g", m.Alpha, m.Pth)
	}
	return m, nil
}

// RetryRisk converts a per-cycle LER history into the probability that at
// least one uncorrectable logical error struck during the run (§7.1: "LER
// multiplied with the total number of logical operations", computed here
// without the small-risk linearization so values near 1 stay meaningful).
//
// lerPerCycle is sampled at uniform steps covering totalCycles cycles.
func RetryRisk(lerPerCycle []float64, totalCycles float64) float64 {
	if len(lerPerCycle) == 0 || totalCycles <= 0 {
		return 0
	}
	cyclesPerSample := totalCycles / float64(len(lerPerCycle))
	logSurvive := 0.0
	for _, l := range lerPerCycle {
		if l >= 1 {
			return 1
		}
		logSurvive += cyclesPerSample * math.Log1p(-l)
	}
	return 1 - math.Exp(logSurvive)
}

// RiskFromOps is the paper's headline retry-risk formula: per-logical-
// operation failure probability times operation count, saturated at 1.
func RiskFromOps(lerPerOp float64, ops float64) float64 {
	if lerPerOp <= 0 || ops <= 0 {
		return 0
	}
	r := 1 - math.Exp(ops*math.Log1p(-math.Min(lerPerOp, 1)))
	if r > 1 {
		return 1
	}
	return r
}

// TrajectoryPoint is one sample of a Fig. 10-style LER time series.
type TrajectoryPoint struct {
	Hours float64
	P     float64 // effective physical error rate at this time
	D     int     // effective code distance at this time
	LER   float64
}

// Trajectory evaluates the LER over time for a time-varying physical rate
// and distance (both supplied as step functions via callbacks), sampling
// every stepHours up to horizonHours.
func Trajectory(m Model, horizonHours, stepHours float64, pAt func(t float64) float64, dAt func(t float64) int) []TrajectoryPoint {
	var out []TrajectoryPoint
	for t := 0.0; t <= horizonHours+1e-9; t += stepHours {
		p := pAt(t)
		d := dAt(t)
		out = append(out, TrajectoryPoint{Hours: t, P: p, D: d, LER: m.PerCycle(d, p)})
	}
	return out
}
