package ler

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerCycleKnownValues(t *testing.T) {
	m := PaperModel()
	// At p = p_th, LER = α for every distance.
	for _, d := range []int{3, 11, 25} {
		if got := m.PerCycle(d, 0.01); math.Abs(got-0.03) > 1e-12 {
			t.Errorf("d=%d at threshold: %.4g, want α", d, got)
		}
	}
	// One decade below threshold: suppression by 10^((d+1)/2).
	if got := m.PerCycle(11, 1e-3); math.Abs(got-0.03e-6) > 1e-12 {
		t.Errorf("d=11 at p_th/10: %.4g, want 3e-8", got)
	}
	if m.PerCycle(11, 0) != 0 {
		t.Error("zero rate should give zero LER")
	}
	if m.PerCycle(3, 1) != 1 {
		t.Error("LER must clamp at 1")
	}
}

func TestPTargetRoundTrip(t *testing.T) {
	m := PaperModel()
	f := func(seed int64) bool {
		d := 3 + 2*int(uint64(seed)%20)
		lerTar := math.Pow(10, -4-float64(uint64(seed)>>32%10))
		p := m.PTarget(d, lerTar)
		return math.Abs(math.Log(m.PerCycle(d, p)/lerTar)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFitRecoversModel(t *testing.T) {
	truth := Model{Alpha: 0.021, Pth: 0.0093}
	var pts []Point
	for _, d := range []int{3, 5, 7} {
		for _, p := range []float64{1e-3, 2e-3, 4e-3} {
			pts = append(pts, Point{D: d, P: p, LER: truth.PerCycle(d, p)})
		}
	}
	m, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-truth.Alpha)/truth.Alpha > 1e-6 {
		t.Errorf("α fit %.6g, want %.6g", m.Alpha, truth.Alpha)
	}
	if math.Abs(m.Pth-truth.Pth)/truth.Pth > 1e-6 {
		t.Errorf("p_th fit %.6g, want %.6g", m.Pth, truth.Pth)
	}
}

func TestFitRejectsDegenerate(t *testing.T) {
	if _, err := Fit([]Point{{D: 3, P: 1e-3, LER: 1e-4}}); err == nil {
		t.Error("single point must not fit")
	}
	if _, err := Fit([]Point{{D: 3, P: 1e-3, LER: 1e-4}, {D: 3, P: 2e-3, LER: 1e-3}}); err == nil {
		t.Error("single-distance points must not fit (need ≥2 distances)")
	}
}

func TestRetryRisk(t *testing.T) {
	// Constant small LER: risk ≈ 1 - (1-l)^cycles.
	l := 1e-9
	cycles := 1e7
	series := []float64{l, l, l, l}
	got := RetryRisk(series, cycles)
	want := 1 - math.Pow(1-l, cycles)
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("risk %.6g, want %.6g", got, want)
	}
	if RetryRisk([]float64{1}, 10) != 1 {
		t.Error("certain failure must give risk 1")
	}
	if RetryRisk(nil, 10) != 0 {
		t.Error("empty series must give 0")
	}
}

func TestRiskFromOps(t *testing.T) {
	if r := RiskFromOps(1e-12, 1e9); math.Abs(r-1e-3)/1e-3 > 0.01 {
		t.Errorf("linear regime risk %.4g", r)
	}
	if r := RiskFromOps(1e-3, 1e9); r < 0.999999 {
		t.Errorf("saturating regime risk %.4g", r)
	}
	if RiskFromOps(0, 1e9) != 0 {
		t.Error("zero LER risk")
	}
}

func TestTrajectoryShapes(t *testing.T) {
	m := PaperModel()
	traj := Trajectory(m, 10, 1,
		func(t float64) float64 { return 1e-3 * math.Pow(10, t/14) },
		func(t float64) int { return 11 })
	if len(traj) != 11 {
		t.Fatalf("%d points", len(traj))
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].LER <= traj[i-1].LER {
			t.Errorf("LER not increasing under pure drift at step %d", i)
		}
	}
}
