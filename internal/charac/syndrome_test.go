package charac

import (
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"testing"
)

func TestDetectorOwnersAligned(t *testing.T) {
	p := code.NewPatch(lattice.NewSquare(3))
	rounds := 4
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ})
	if err != nil {
		t.Fatal(err)
	}
	owners := DetectorOwners(p, rounds, lattice.BasisZ)
	if len(owners) != c.NumDetectors {
		t.Fatalf("owners table has %d entries, circuit has %d detectors", len(owners), c.NumDetectors)
	}
	for i, qs := range owners {
		if len(qs) == 0 {
			t.Errorf("detector %d owns no qubits", i)
		}
	}
}

// TestLocalizeDriftFindsHotQubit is the headline for syndrome-based drift
// monitoring: elevate one data qubit's noise 10×, compare detector rates
// against the calibrated baseline, and check the ranking puts the hot qubit
// (or one of its immediate check-ancilla neighbours) on top.
func TestLocalizeDriftFindsHotQubit(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	const (
		d      = 5
		rounds = 5
		shots  = 60000
		base   = 1.5e-3
	)
	p := code.NewPatch(lattice.NewSquare(d))
	hot := p.Lat.DataID[[2]int{2, 2}]

	cBase, err := p.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(base)})
	if err != nil {
		t.Fatal(err)
	}
	nm := noise.NewMap(base)
	nm.Gate1Q[hot] = base * 10
	nm.MeasQ[hot] = base * 10
	nm.ResetQ[hot] = base * 10
	cHot, err := p.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}

	baseline := DetectorRates(cBase, shots, rng.New(1))
	observed := DetectorRates(cHot, shots, rng.New(2))
	owners := DetectorOwners(p, rounds, lattice.BasisZ)
	ranking := LocalizeDrift(baseline, observed, shots, owners, p.Lat.NumQubits())
	if len(ranking) == 0 {
		t.Fatal("empty ranking")
	}
	// The hot qubit must rank within the top 3 (its adjacent check
	// ancillas share its detectors and may tie).
	pos := -1
	for i, s := range ranking {
		if s.Qubit == hot {
			pos = i
			break
		}
	}
	t.Logf("top suspects: %v (hot qubit %d at position %d)", ranking[:5], hot, pos)
	if pos < 0 || pos > 2 {
		t.Errorf("hot qubit %d ranked at position %d, want top 3", hot, pos)
	}
	// And the baseline device must NOT flag anything strongly: re-run
	// against itself with a different seed.
	null := DetectorRates(cBase, shots, rng.New(3))
	nullRank := LocalizeDrift(baseline, null, shots, owners, p.Lat.NumQubits())
	if nullRank[0].Score > ranking[0].Score/3 {
		t.Errorf("null-hypothesis top score %.2f too close to hot top score %.2f",
			nullRank[0].Score, ranking[0].Score)
	}
}
