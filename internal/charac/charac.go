// Package charac implements CaliQEC's preparation-time device
// characterization (paper §4). It estimates, for every calibratable gate:
//
//   - T_cali, the calibration duration, by timing repeated calibrations;
//   - T_drift, the drift time constant, by simulated hourly interleaved
//     randomized benchmarking (the paper's protocol: three test sets with
//     sequence lengths [1,10,20,50,100,150,250,400]) followed by a fit of
//     the exponential drift law p(g,t) = p0·10^(t/T_drift);
//   - nbr(g), the calibration-crosstalk neighbourhood, by the Fig. 6 probe:
//     prepare nearby qubits in random states, run the calibration, and flag
//     qubits whose readback deviates beyond threshold.
//
// The device's ground-truth parameters are hidden from the estimators; the
// test suite verifies the estimates converge to the truth.
package charac

import (
	"caliqec/internal/device"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"math"
	"sort"
)

// RBLengths is the paper's interleaved-RB sequence-length schedule.
var RBLengths = []int{1, 10, 20, 50, 100, 150, 250, 400}

// RBSets is the number of repeated test sets per measurement.
const RBSets = 3

// RBShots is the number of shots per sequence length per set.
const RBShots = 400

// InterleavedRB simulates one interleaved-randomized-benchmarking estimate
// of a gate whose true depolarizing error rate is trueErr. The survival
// probability of an m-long interleaved sequence decays as
// A·r^m + B with r = 1 − 2p (single-qubit convention, B = A = 1/2);
// binomial shot noise is added and the decay refit, returning the estimated
// error rate.
func InterleavedRB(trueErr float64, lengths []int, shots int, r *rng.RNG) float64 {
	rTrue := 1 - 2*trueErr
	if rTrue < 0 {
		rTrue = 0
	}
	// Points whose decay has sunk into the binomial shot-noise floor bias a
	// log-space fit; keep only those at least several sigma above it.
	floor := 4 / math.Sqrt(float64(shots))
	var xs, ys []float64
	for set := 0; set < RBSets; set++ {
		for _, m := range lengths {
			f := 0.5 + 0.5*math.Pow(rTrue, float64(m))
			k := r.Binomial(shots, f)
			meas := float64(k) / float64(shots)
			dec := 2*meas - 1
			if dec > floor {
				xs = append(xs, float64(m))
				ys = append(ys, dec)
			}
		}
	}
	if len(xs) < 3 {
		return 0.5 // fully depolarized: no decay signal survives
	}
	_, rate := rng.ExpDecayFit(xs, ys)
	p := (1 - rate) / 2
	if p < 0 {
		p = 0
	}
	return p
}

// EstimateDrift performs hourly interleaved-RB measurements of a gate over
// the given horizon and fits the exponential drift law, returning the
// estimated drift parameters.
func EstimateDrift(dev *device.Device, gateID int, horizonHours int, r *rng.RNG) noise.Drift {
	g := dev.Gate(gateID)
	var ts, logps []float64
	for h := 0; h <= horizonHours; h++ {
		t := float64(h)
		est := InterleavedRB(g.ErrorRate(t), RBLengths, RBShots, r)
		// Above a few percent the RB decay saturates within one sequence
		// length and the estimate is no longer quantitative; exclude such
		// hours from the drift fit.
		if est > 0 && est < 0.03 {
			ts = append(ts, t)
			logps = append(logps, math.Log10(est))
		}
	}
	if len(ts) < 2 {
		// Too noisy to fit: fall back to a pessimistic fast drift.
		return noise.Drift{P0: noise.InitialErrorRate, TDrift: 1}
	}
	slope, intercept := rng.LinearFit(ts, logps)
	d := noise.Drift{P0: math.Pow(10, intercept), TDrift: 1 / slope}
	if slope <= 0 || math.IsInf(d.TDrift, 0) || d.TDrift <= 0 {
		// No measurable drift within the horizon: report a very slow gate.
		d.TDrift = 10 * float64(horizonHours)
		d.P0 = math.Pow(10, rng.Mean(logps))
	}
	return d
}

// probe parameters for crosstalk detection (Fig. 6).
const (
	crosstalkTrials     = 40
	crosstalkFlipProb   = 0.30 // disturbance probability of a true neighbour
	crosstalkBaseline   = 0.02 // readout/idle flip probability elsewhere
	crosstalkThreshold  = 0.15 // detection threshold on observed flip rate
	crosstalkProbeShell = 2    // graph radius of candidate qubits probed
)

// ProbeCrosstalk runs the Fig. 6 circuit for one gate: candidate qubits
// within the probe shell are prepared in random states, the calibration is
// executed (disturbing the gate's true crosstalk neighbourhood), and the
// states are read back; qubits deviating beyond threshold are reported as
// nbr(g). The gate's own qubits are always included (they are calibrated,
// hence certainly disturbed).
func ProbeCrosstalk(dev *device.Device, gateID int, r *rng.RNG) []int {
	g := dev.Gate(gateID)
	truth := map[int]bool{}
	for _, q := range g.Nbr {
		truth[q] = true
	}
	// Candidate set: qubits within crosstalkProbeShell hops of the gate.
	cand := map[int]bool{}
	frontier := append([]int(nil), g.Qubits...)
	for _, q := range frontier {
		cand[q] = true
	}
	for hop := 0; hop < crosstalkProbeShell; hop++ {
		var next []int
		for _, q := range frontier {
			for _, nb := range dev.Lat.Neighbors(q) {
				if !cand[nb] {
					cand[nb] = true
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	flips := map[int]int{}
	for trial := 0; trial < crosstalkTrials; trial++ {
		for q := range cand {
			p := crosstalkBaseline
			if truth[q] {
				p = crosstalkBaseline + crosstalkFlipProb
			}
			if r.Bernoulli(p) {
				flips[q]++
			}
		}
	}
	det := map[int]bool{}
	for _, q := range g.Qubits {
		det[q] = true
	}
	for q, n := range flips {
		if float64(n)/crosstalkTrials >= crosstalkThreshold {
			det[q] = true
		}
	}
	out := make([]int, 0, len(det))
	for q := range det {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// GateCharacterization is the estimated profile of one gate.
type GateCharacterization struct {
	GateID    int
	Drift     noise.Drift
	CaliHours float64
	Nbr       []int
}

// Characterization is the full preparation-time output consumed by the
// compilation-time scheduler.
type Characterization struct {
	Gates []GateCharacterization
}

// Options configures Characterize.
type Options struct {
	// HorizonHours is the drift-measurement window (default 12).
	HorizonHours int
	// CaliTimingJitter is the relative measurement error on calibration
	// durations (default 0.05).
	CaliTimingJitter float64
}

// Characterize runs the full preparation stage against a device.
func Characterize(dev *device.Device, opt Options, r *rng.RNG) *Characterization {
	if opt.HorizonHours == 0 {
		opt.HorizonHours = 12
	}
	if opt.CaliTimingJitter == 0 { //lint:allow floateq the zero value means "unset", an exact sentinel never produced by arithmetic
		opt.CaliTimingJitter = 0.05
	}
	out := &Characterization{}
	for i := range dev.Gates {
		g := &dev.Gates[i]
		gc := GateCharacterization{
			GateID: g.ID,
			Drift:  EstimateDrift(dev, g.ID, opt.HorizonHours, r),
			Nbr:    ProbeCrosstalk(dev, g.ID, r),
		}
		gc.CaliHours = g.CaliHours * (1 + opt.CaliTimingJitter*(2*r.Float64()-1))
		out.Gates = append(out.Gates, gc)
	}
	return out
}

// Gate returns the characterization entry for a gate ID, or nil.
func (c *Characterization) Gate(id int) *GateCharacterization {
	for i := range c.Gates {
		if c.Gates[i].GateID == id {
			return &c.Gates[i]
		}
	}
	return nil
}
