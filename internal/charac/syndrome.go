package charac

import (
	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"math"
	"math/bits"
	"sort"
)

// Syndrome-based drift localization: the paper schedules calibration from
// preparation-time drift constants; a natural runtime complement is to
// watch the detector firing rates the QEC cycle already produces — a
// drifting gate raises the rates of exactly the detectors whose stabilizers
// touch it. DetectorRates samples those rates and LocalizeDrift turns a
// baseline/observed pair into a ranked list of suspicious qubits, giving
// the scheduler a trigger that needs no extra characterization downtime.

// DetectorRates Monte-Carlo samples the firing rate of every detector of c.
func DetectorRates(c *circuit.Circuit, shots int, r *rng.RNG) []float64 {
	counts := make([]int, c.NumDetectors)
	fs := sim.NewFrameSimulator(c, r)
	fs.Sample(shots, func(b sim.BatchResult) {
		for d := range b.Detectors {
			l := &b.Detectors[d]
			for w := 0; w < sim.LaneWords; w++ {
				counts[d] += bits.OnesCount64(l[w])
			}
		}
	})
	rates := make([]float64, c.NumDetectors)
	for i, k := range counts {
		rates[i] = float64(k) / float64(shots)
	}
	return rates
}

// QubitSuspicion is one entry of a drift-localization ranking.
type QubitSuspicion struct {
	Qubit int
	// Score is the mean z-score of the observed-vs-baseline excess over
	// the detectors adjacent to the qubit (in units of the binomial σ).
	Score float64
}

// LocalizeDrift compares observed detector rates against a baseline and
// attributes the excess to physical qubits: each detector's z-score is
// spread over the qubits of the checks it monitors, and qubits are ranked
// by their mean incident z-score. shots is the sample size behind the
// observed rates (for the binomial σ).
//
// detOwners must map each detector index to the data/ancilla qubits whose
// errors it watches; DetectorOwners derives it for memory circuits.
func LocalizeDrift(baseline, observed []float64, shots int, detOwners [][]int, numQubits int) []QubitSuspicion {
	sum := make([]float64, numQubits)
	n := make([]int, numQubits)
	for d := range baseline {
		if d >= len(observed) || d >= len(detOwners) {
			break
		}
		p := baseline[d]
		sigma := math.Sqrt(math.Max(p*(1-p), 1e-12) / float64(shots))
		z := (observed[d] - p) / sigma
		for _, q := range detOwners[d] {
			if q >= 0 && q < numQubits {
				sum[q] += z
				n[q]++
			}
		}
	}
	var out []QubitSuspicion
	for q := 0; q < numQubits; q++ {
		if n[q] == 0 {
			continue
		}
		out = append(out, QubitSuspicion{Qubit: q, Score: sum[q] / float64(n[q])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// DetectorOwners derives, for a patch's memory circuit, the qubits each
// detector watches: the data support and measurement ancillas of its check.
// It reproduces code.MemoryCircuit's emission order — a memory-basis-only
// prefix in round 0, every check per later round, and a memory-basis
// readout suffix — so the table aligns index-for-index with the circuit's
// detectors.
func DetectorOwners(p *code.Patch, rounds int, basis lattice.Basis) [][]int {
	own := func(c *code.Check) []int {
		var qs []int
		qs = append(qs, c.Support()...)
		for _, g := range c.Gauges {
			qs = append(qs, g.Chain...)
		}
		return qs
	}
	var out [][]int
	for _, c := range p.Checks {
		if c.Basis == basis {
			out = append(out, own(c))
		}
	}
	for r := 1; r < rounds; r++ {
		for _, c := range p.Checks {
			out = append(out, own(c))
		}
	}
	for _, c := range p.Checks {
		if c.Basis == basis {
			out = append(out, own(c))
		}
	}
	return out
}
