package charac

import (
	"caliqec/internal/device"
	"caliqec/internal/lattice"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"math"
	"testing"
)

func TestInterleavedRBRecoversError(t *testing.T) {
	r := rng.New(1)
	for _, trueErr := range []float64{5e-4, 2e-3, 8e-3} {
		// Average several estimates to beat shot noise in the test.
		var ests []float64
		for k := 0; k < 10; k++ {
			ests = append(ests, InterleavedRB(trueErr, RBLengths, RBShots, r))
		}
		est := rng.Mean(ests)
		if math.Abs(est-trueErr)/trueErr > 0.3 {
			t.Errorf("RB estimate %.4g for true %.4g (>30%% off)", est, trueErr)
		}
	}
}

func TestEstimateDriftRecoversConstant(t *testing.T) {
	lat := lattice.NewSquare(3)
	r := rng.New(7)
	dev := device.New(lat, device.Options{}, r)
	// Fix a known drift for gate 0.
	dev.Gates[0].Drift = noise.Drift{P0: 1e-3, TDrift: 9}
	est := EstimateDrift(dev, 0, 12, r)
	if math.Abs(est.TDrift-9)/9 > 0.35 {
		t.Errorf("estimated T_drift %.2fh, want ≈9h", est.TDrift)
	}
	if math.Abs(math.Log10(est.P0/1e-3)) > 0.4 {
		t.Errorf("estimated p0 %.4g, want ≈1e-3", est.P0)
	}
}

func TestEstimateDriftSlowGate(t *testing.T) {
	lat := lattice.NewSquare(3)
	r := rng.New(8)
	dev := device.New(lat, device.Options{}, r)
	dev.Gates[0].Drift = noise.Drift{P0: 1e-3, TDrift: 500} // nearly static
	est := EstimateDrift(dev, 0, 12, r)
	if est.TDrift < 24 {
		t.Errorf("nearly-static gate estimated at T=%.1fh; should report slow drift", est.TDrift)
	}
}

func TestProbeCrosstalkFindsNeighbourhood(t *testing.T) {
	lat := lattice.NewSquare(5)
	r := rng.New(3)
	dev := device.New(lat, device.Options{}, r)
	hits, misses, spurious := 0, 0, 0
	for i := 0; i < 20; i++ {
		g := &dev.Gates[i]
		est := ProbeCrosstalk(dev, g.ID, r)
		estSet := map[int]bool{}
		for _, q := range est {
			estSet[q] = true
		}
		for _, q := range g.Nbr {
			if estSet[q] {
				hits++
			} else {
				misses++
			}
		}
		for _, q := range est {
			found := false
			for _, x := range g.Nbr {
				if x == q {
					found = true
				}
			}
			if !found {
				spurious++
			}
		}
	}
	recall := float64(hits) / float64(hits+misses)
	if recall < 0.9 {
		t.Errorf("crosstalk probe recall %.2f, want ≥ 0.9", recall)
	}
	if spurious > hits/5 {
		t.Errorf("crosstalk probe too many false positives: %d vs %d hits", spurious, hits)
	}
}

func TestCharacterizeEndToEnd(t *testing.T) {
	lat := lattice.NewSquare(3)
	r := rng.New(11)
	dev := device.New(lat, device.Options{}, r)
	ch := Characterize(dev, Options{HorizonHours: 10}, r)
	if len(ch.Gates) != len(dev.Gates) {
		t.Fatalf("characterized %d gates, want %d", len(ch.Gates), len(dev.Gates))
	}
	// Estimated drift constants must correlate with the truth: compare
	// orderings on a sample of well-separated pairs.
	good, bad := 0, 0
	for i := 0; i+1 < len(ch.Gates); i += 2 {
		a, b := &dev.Gates[i], &dev.Gates[i+1]
		ea, eb := ch.Gate(a.ID), ch.Gate(b.ID)
		if ea == nil || eb == nil {
			t.Fatal("missing characterization entry")
		}
		if a.Drift.TDrift < b.Drift.TDrift/2 || a.Drift.TDrift > 2*b.Drift.TDrift {
			if (a.Drift.TDrift < b.Drift.TDrift) == (ea.Drift.TDrift < eb.Drift.TDrift) {
				good++
			} else {
				bad++
			}
		}
	}
	if good+bad > 0 && float64(good)/float64(good+bad) < 0.8 {
		t.Errorf("drift ordering recovered %d/%d", good, good+bad)
	}
	// Calibration durations within jitter of the truth.
	for _, gc := range ch.Gates {
		truth := dev.Gate(gc.GateID).CaliHours
		if math.Abs(gc.CaliHours-truth)/truth > 0.06 {
			t.Errorf("gate %d calibration time %.4f vs truth %.4f", gc.GateID, gc.CaliHours, truth)
		}
	}
}
