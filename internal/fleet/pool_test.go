package fleet_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"caliqec/internal/fleet"
	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

func testHeader(numDet int, tenant uint32) stream.Header {
	return stream.Header{NumDetectors: numDet, NumObs: 1, Tenant: tenant}
}

// parityScorer fails a frame when the low observable bit is set.
type parityScorer struct{}

func (parityScorer) ScoreFrame(syndrome []int, actual uint64) bool { return actual&1 == 1 }

// gatedScorer blocks every ScoreFrame call until its gate closes, holding
// the pool's workers so tests can fill queues deterministically. entered
// counts calls that reached the gate (i.e. frames a worker has claimed).
type gatedScorer struct {
	gate    chan struct{}
	entered atomic.Int64
	scored  atomic.Int64
}

func (g *gatedScorer) ScoreFrame(syndrome []int, actual uint64) bool {
	g.entered.Add(1)
	<-g.gate
	g.scored.Add(1)
	return actual&1 == 1
}

// taggingScorer appends its tag to a shared ordered log per scored frame,
// so a single-worker pool's claim order becomes observable.
type taggingScorer struct {
	tag  string
	mu   *sync.Mutex
	log  *[]string
	gate chan struct{}
}

func (s *taggingScorer) ScoreFrame(syndrome []int, actual uint64) bool {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	*s.log = append(*s.log, s.tag)
	s.mu.Unlock()
	return false
}

// offerAll pushes n dummy frames through st and returns how many admitted.
func offerAll(st *fleet.Stream, fbytes, n int) int {
	packed := make([]byte, fbytes)
	admitted := 0
	for i := 0; i < n; i++ {
		if st.Offer(packed, uint64(i&1)) {
			admitted++
		}
	}
	return admitted
}

// TestPoolDRRFairness pins the deficit-round-robin contract: with a
// single worker draining two saturated tenants of weights 1 and 3, the
// decode order interleaves ~1:3 — neither tenant starves and neither
// exceeds ~2x its weight share over any sizeable prefix.
func TestPoolDRRFairness(t *testing.T) {
	var mu sync.Mutex
	var log []string
	gate := make(chan struct{})

	p := fleet.NewPool(fleet.Config{
		Workers:     1,
		StreamQueue: 1024,
		Quantum:     10,
		Metrics:     obs.Discard,
		Tenants: map[uint32]fleet.TenantConfig{
			1: {Weight: 1},
			2: {Weight: 3},
		},
	})
	defer p.Close()

	// Park the worker on a gated frame first so both queues can be loaded
	// before any scheduling happens. The hold scorer logs nothing.
	hold := &gatedScorer{gate: gate}
	stHold, err := p.Open(testHeader(8, 1), hold, "hold")
	if err != nil {
		t.Fatal(err)
	}
	if got := offerAll(stHold, 1, 1); got != 1 {
		t.Fatalf("hold frame not admitted")
	}
	waitFor(t, func() bool { return hold.entered.Load() == 1 })

	stA, err := p.Open(testHeader(8, 1), &taggingScorer{tag: "A", mu: &mu, log: &log}, "a")
	if err != nil {
		t.Fatal(err)
	}
	stB, err := p.Open(testHeader(8, 2), &taggingScorer{tag: "B", mu: &mu, log: &log}, "b")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	if got := offerAll(stA, 1, n); got != n {
		t.Fatalf("tenant 1 admitted %d of %d", got, n)
	}
	if got := offerAll(stB, 1, n); got != n {
		t.Fatalf("tenant 2 admitted %d of %d", got, n)
	}
	close(gate)
	for _, st := range []*fleet.Stream{stHold, stA, stB} {
		st.CloseSend()
		<-st.Done()
		st.Close()
	}

	mu.Lock()
	defer mu.Unlock()
	// Both tenants saturate the whole prefix; over it tenant 2 (weight 3)
	// must hold ~3/4 of the decode slots.
	prefix := log
	const window = 200
	if len(prefix) < window {
		t.Fatalf("only %d scored frames", len(prefix))
	}
	countA := 0
	for _, tag := range prefix[:window] {
		if tag == "A" {
			countA++
		}
	}
	// Fair share for weight 1 of 4 is 50/200; 2x tolerance per the fleet
	// SLO (no tenant deviates more than 2x its weight share), plus one
	// quantum of span granularity.
	if countA < window/8-10 || countA > window/2+10 {
		t.Fatalf("weight-1 tenant got %d of first %d decode slots, want ~%d (2x band)", countA, window, window/4)
	}
}

// TestOfferShedsNeverBlocks is the backpressure stress contract: with the
// pool wedged and the stream queue full, Offer must return false
// immediately (shed + count) rather than block, and the final accounting
// must explain every offered frame as admitted or shed.
func TestOfferShedsNeverBlocks(t *testing.T) {
	gate := make(chan struct{})
	g := &gatedScorer{gate: gate}
	const queue = 8
	p := fleet.NewPool(fleet.Config{
		Workers:     1,
		StreamQueue: queue,
		Quantum:     1,
		Metrics:     obs.Discard,
	})
	defer p.Close()

	st, err := p.Open(testHeader(16, 0), g, "s")
	if err != nil {
		t.Fatal(err)
	}
	packed := make([]byte, 2)
	if !st.Offer(packed, 0) {
		t.Fatal("first frame shed by an idle pool")
	}
	// The worker claims it (quantum 1 → span of 1) and blocks on the gate.
	waitFor(t, func() bool { return g.entered.Load() == 1 })

	// Fill the queue, then overflow it. Every Offer must return promptly:
	// run the whole burst under a deadline watchdog.
	const burst = 100
	done := make(chan struct{})
	var admitted int
	go func() {
		defer close(done)
		admitted = offerAll(st, 2, burst)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Offer blocked with a full queue: backpressure must shed, not stall")
	}
	if admitted != queue {
		t.Fatalf("admitted %d of the burst, want exactly the queue capacity %d", admitted, queue)
	}

	close(gate)
	st.CloseSend()
	<-st.Done()
	stats := st.Stats()
	st.Close()
	if stats.Admitted != int64(1+queue) || stats.Shed != int64(burst-queue) {
		t.Fatalf("admitted=%d shed=%d, want %d/%d", stats.Admitted, stats.Shed, 1+queue, burst-queue)
	}
	if got := stats.Admitted + stats.Shed; got != 1+burst {
		t.Fatalf("accounting leak: admitted+shed=%d, offered %d", got, 1+burst)
	}
}

// TestMaxStreamsCap: the per-tenant concurrent-stream cap refuses the
// overflow stream with ErrOverload and frees the slot on Close.
func TestMaxStreamsCap(t *testing.T) {
	p := fleet.NewPool(fleet.Config{
		Workers: 1,
		Metrics: obs.Discard,
		Tenants: map[uint32]fleet.TenantConfig{7: {MaxStreams: 2}},
	})
	defer p.Close()

	h := testHeader(8, 7)
	s1, err := p.Open(h, parityScorer{}, "s1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Open(h, parityScorer{}, "s2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open(h, parityScorer{}, "s3"); !errors.Is(err, stream.ErrOverload) {
		t.Fatalf("third stream: err=%v, want ErrOverload", err)
	}
	// Another tenant is unaffected by tenant 7's cap.
	if _, err := p.Open(testHeader(8, 8), parityScorer{}, "other"); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	s1.CloseSend()
	<-s1.Done()
	s1.Close()
	if _, err := p.Open(h, parityScorer{}, "s4"); err != nil {
		t.Fatalf("slot not released after Close: %v", err)
	}
	_ = s2
}

// TestTokenBucketAdmission: with an injected clock, a tenant's frame
// budget admits exactly Burst frames up front and FrameRate per second
// after, shedding the rest deterministically.
func TestTokenBucketAdmission(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	p := fleet.NewPool(fleet.Config{
		Workers: 1,
		Metrics: obs.Discard,
		Now:     clock,
		Tenants: map[uint32]fleet.TenantConfig{3: {FrameRate: 10, Burst: 5}},
	})
	defer p.Close()

	st, err := p.Open(testHeader(8, 3), parityScorer{}, "s")
	if err != nil {
		t.Fatal(err)
	}
	if got := offerAll(st, 1, 20); got != 5 {
		t.Fatalf("burst admitted %d frames, want exactly Burst=5", got)
	}
	now = now.Add(500 * time.Millisecond) // 10/s * 0.5s = 5 tokens
	if got := offerAll(st, 1, 20); got != 5 {
		t.Fatalf("after 500ms admitted %d frames, want 5", got)
	}
	now = now.Add(time.Hour) // refill caps at Burst, not rate*elapsed
	if got := offerAll(st, 1, 20); got != 5 {
		t.Fatalf("after an hour admitted %d frames, want Burst cap 5", got)
	}
	st.CloseSend()
	<-st.Done()
	stats := st.Stats()
	st.Close()
	if stats.Admitted != 15 || stats.Shed != 45 {
		t.Fatalf("admitted=%d shed=%d, want 15/45", stats.Admitted, stats.Shed)
	}
}

// TestPoolCloseDrains: frames queued before Close are decoded, not
// dropped; Done closes for every half-closed stream.
func TestPoolCloseDrains(t *testing.T) {
	g := &gatedScorer{gate: make(chan struct{})}
	p := fleet.NewPool(fleet.Config{Workers: 2, StreamQueue: 64, Metrics: obs.Discard})

	st, err := p.Open(testHeader(16, 0), g, "s")
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	if got := offerAll(st, 2, n); got != n {
		t.Fatalf("admitted %d of %d", got, n)
	}
	st.CloseSend()
	close(g.gate)
	p.Close() // must drain the 32 queued frames before joining workers
	select {
	case <-st.Done():
	default:
		t.Fatal("Done not closed after pool drain")
	}
	stats := st.Stats()
	if stats.Admitted != n || g.scored.Load() != n {
		t.Fatalf("decoded %d (stats %d), want %d", g.scored.Load(), stats.Admitted, n)
	}
	st.Close()
}

// TestTenantMetrics: per-tenant counters and the queue-depth gauge land in
// the shared registry under fleet.tenant.<id>.*.
func TestTenantMetrics(t *testing.T) {
	reg := obs.NewRegistry(nil)
	p := fleet.NewPool(fleet.Config{
		Workers: 1,
		Metrics: reg,
		Tenants: map[uint32]fleet.TenantConfig{5: {FrameRate: 1e-9, Burst: 2}},
	})
	defer p.Close()

	st, err := p.Open(testHeader(8, 5), parityScorer{}, "s")
	if err != nil {
		t.Fatal(err)
	}
	offerAll(st, 1, 10) // 2 admitted (burst), 8 shed
	st.CloseSend()
	<-st.Done()
	st.Close()

	if got := reg.Counter("fleet.tenant.5.admitted").Value(); got != 2 {
		t.Fatalf("admitted counter %d, want 2", got)
	}
	if got := reg.Counter("fleet.tenant.5.shed").Value(); got != 8 {
		t.Fatalf("shed counter %d, want 8", got)
	}
	if snap := reg.Histogram("fleet.tenant.5.decode.latency").Snapshot(); snap.Count != 2 {
		t.Fatalf("latency histogram count %d, want 2", snap.Count)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
