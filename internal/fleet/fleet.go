// Package fleet multiplexes many concurrent syndrome streams over one
// shared, size-bounded decode worker pool with per-tenant admission control
// and fair scheduling — the multi-tenant shape of the stream subsystem.
//
// stream.Server decodes each connection through its own pipeline: N
// connections cost N×Workers goroutines and give the fastest sender the
// whole box. A fleet server instead runs one fixed pool (Config.Workers
// goroutines, the mc.EvaluateBatch span-granular scheduler pattern) and
// routes every connection's frames through it:
//
//   - Admission control. Each stream declares a tenant in its trace header
//     (Header.Tenant; 0 is the default tenant). A tenant's token bucket
//     (TenantConfig.FrameRate/Burst) meters admitted frames and
//     TenantConfig.MaxStreams caps its concurrent streams. Refused work is
//     shed, never queued: an over-cap stream gets an immediate overload
//     summary, an over-rate frame is dropped and counted.
//   - Fair scheduling. Admitted frames queue per stream (bounded by
//     Config.StreamQueue); workers claim spans of consecutive frames from
//     one stream at a time under deficit-round-robin across tenants
//     (TenantConfig.Weight × Config.Quantum credits per visit), so a
//     tenant's long-run share of the pool tracks its weight no matter how
//     many streams or frames it throws at the server, and a worker stays on
//     one stream's scorer long enough for its decoder caches to stay warm.
//   - Graceful backpressure. Stream.Offer never blocks: a full stream queue
//     sheds the frame and counts it. The connection read loop therefore
//     never stalls the socket, and a client learns about shedding from the
//     summary's Shed count and Overload flag (stream.ErrOverload
//     client-side) instead of from a TCP stall.
//
// Per-tenant observability lands in the shared obs.Registry:
// fleet.tenant.<id>.admitted / .shed counters, .queue.depth gauge and
// .decode.latency histogram (p99 via obs.HistogramSnapshot.Quantile), plus
// pool-wide fleet.decode.latency, fleet.pool.occupancy and
// fleet.streams.{open,rejected}. Per-stream drift monitors register in the
// usual HealthRegistry under "t<tenant>-conn-<n>" names.
package fleet

import (
	"runtime"
	"time"

	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// TenantConfig sets one tenant's admission and scheduling parameters.
type TenantConfig struct {
	// Weight is the tenant's deficit-round-robin share; <= 0 selects 1. A
	// weight-3 tenant earns 3× the decode credits of a weight-1 tenant per
	// scheduler round when both have work queued.
	Weight int
	// FrameRate is the tenant's admitted-frame budget in frames/second
	// (token-bucket refill rate); <= 0 means unmetered.
	FrameRate float64
	// Burst is the token bucket's capacity in frames; <= 0 selects
	// max(1, FrameRate) — one second of credit.
	Burst float64
	// MaxStreams caps the tenant's concurrently open streams; <= 0 means
	// uncapped. A stream over the cap is refused at open (overload summary)
	// rather than queued.
	MaxStreams int
}

func (c TenantConfig) resolved() TenantConfig {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.Burst <= 0 {
		c.Burst = c.FrameRate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// Config configures a Pool (and the Server wrapping one).
type Config struct {
	// Workers is the shared decode pool size; <= 0 selects GOMAXPROCS. This
	// is the whole server's decode concurrency, shared by every stream.
	Workers int
	// StreamQueue bounds each stream's admitted-frame queue; <= 0 selects
	// 256. A full queue sheds new frames (drop + count) instead of blocking
	// the connection read.
	StreamQueue int
	// Quantum is the deficit-round-robin quantum in frames; <= 0 selects 64.
	// Each scheduler visit grants a tenant Quantum×Weight decode credits.
	Quantum int
	// Default is the tenant configuration for tenants absent from Tenants
	// (including tenant 0, the pre-fleet default).
	Default TenantConfig
	// Tenants overrides Default per tenant ID.
	Tenants map[uint32]TenantConfig
	// Metrics selects the registry fleet metrics land in; nil selects
	// obs.Default, obs.Discard disables them.
	Metrics *obs.Registry
	// Estimator enables per-stream drift monitoring (stream.Monitor) when
	// Window > 0, registering each stream in Estimator.Health under its
	// server-assigned name.
	Estimator stream.EstimatorConfig
	// Now is the token-bucket clock; nil selects the wall clock. Tests
	// inject a fake to make admission deterministic.
	Now func() time.Time
}

// wallClock is the package's single injected wall-clock fallback, feeding
// only token-bucket refill (never decode results).
var wallClock = time.Now //lint:allow timenow single injected wall-clock source for token-bucket admission

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) streamQueue() int {
	if c.StreamQueue > 0 {
		return c.StreamQueue
	}
	return 256
}

func (c Config) quantum() int {
	if c.Quantum > 0 {
		return c.Quantum
	}
	return 64
}

func (c Config) tenant(id uint32) TenantConfig {
	if tc, ok := c.Tenants[id]; ok {
		return tc.resolved()
	}
	return c.Default.resolved()
}

func (c Config) clock() func() time.Time {
	if c.Now != nil {
		return c.Now
	}
	return wallClock
}

// tokenBucket meters a tenant's admitted frames. Guarded by the pool mutex.
type tokenBucket struct {
	rate   float64 // tokens/second; <= 0 disables metering
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes one token, refilling from the elapsed time since the last
// call. A bucket starts full, so a tenant's first Burst frames always admit.
func (b *tokenBucket) take(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	if b.last.IsZero() {
		b.tokens = b.burst
	} else if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
