package fleet_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"caliqec/internal/fleet"
	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// syntheticTrace encodes n frames for tenant with obs = i&1, so half the
// frames "fail" under parityScorer.
func syntheticTrace(t testing.TB, numDet, n int, tenant uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, stream.Header{
		NumDetectors: numDet, NumObs: 1, Shots: uint64(n), Tenant: tenant,
	})
	if err != nil {
		t.Fatal(err)
	}
	packed := make([]byte, stream.FrameBytes(numDet))
	for i := 0; i < n; i++ {
		if err := w.WriteFrame(packed, uint64(i&1)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// startFleetServer serves cfg on a loopback listener, resolving every
// stream to scorer, and returns the address plus a shutdown func that
// waits for Serve to return.
func startFleetServer(t *testing.T, cfg fleet.Config, scorer stream.FrameScorer) (addr string, shutdown func()) {
	t.Helper()
	srv := fleet.NewServer(cfg, func(stream.Header) (stream.FrameScorer, error) { return scorer, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after cancellation")
		}
	}
}

func sendTrace(t *testing.T, addr string, raw []byte) (stream.Summary, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	return stream.SendTrace(conn.(*net.TCPConn), bytes.NewReader(raw))
}

// TestFleetServerRoundTrip: a clean stream through the shared pool yields
// the per-connection server's summary semantics — frames, failures, LER —
// plus the tenant echo, with nothing shed.
func TestFleetServerRoundTrip(t *testing.T) {
	addr, shutdown := startFleetServer(t, fleet.Config{
		Workers: 4, Metrics: obs.Discard,
	}, parityScorer{})
	defer shutdown()

	// n below the stream-queue bound: admission is then deterministic (the
	// queue can absorb the whole burst even before a worker wakes), so
	// nothing sheds regardless of scheduling.
	const n = 200
	sum, err := sendTrace(t, addr, syntheticTrace(t, 16, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Frames != n || sum.Failures != n/2 || sum.Tenant != 3 || sum.Shed != 0 || sum.Overload {
		t.Fatalf("summary %+v, want %d frames, %d failures, tenant 3, nothing shed", sum, n, n/2)
	}
	if sum.LER != 0.5 {
		t.Fatalf("LER %g, want 0.5", sum.LER)
	}
}

// TestFleetServerStreamCapOverload: a tenant over its MaxStreams cap gets
// an overload summary that SendTrace classifies as ErrOverload — not as
// truncation or corruption (the satellite-2 contract).
func TestFleetServerStreamCapOverload(t *testing.T) {
	reg := obs.NewRegistry(nil)
	addr, shutdown := startFleetServer(t, fleet.Config{
		Workers: 1, Metrics: reg,
		Tenants: map[uint32]fleet.TenantConfig{9: {MaxStreams: 1}},
	}, parityScorer{})
	defer shutdown()

	// First connection: send the header and hold the stream open so the
	// tenant's only slot stays occupied.
	raw := syntheticTrace(t, 16, 4, 9)
	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if _, err := hold.Write(raw[:68]); err != nil { // header only
		t.Fatal(err)
	}
	waitFor(t, func() bool { return reg.Gauge("fleet.streams.open").Value() == 1 })

	// Second connection for the same tenant: refused at admission.
	sum, err := sendTrace(t, addr, raw)
	if !errors.Is(err, stream.ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if !sum.Overload || sum.Tenant != 9 || sum.Frames != 0 {
		t.Fatalf("overload summary %+v", sum)
	}
	if errors.Is(err, stream.ErrTruncated) || errors.Is(err, stream.ErrCorrupt) {
		t.Fatalf("overload misclassified: %v", err)
	}
	if got := reg.Counter("fleet.streams.rejected").Value(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}

	// Release the slot; the tenant admits again.
	if _, err := hold.Write(raw[68:]); err != nil {
		t.Fatal(err)
	}
	hold.(*net.TCPConn).CloseWrite()
	waitFor(t, func() bool { return reg.Gauge("fleet.streams.open").Value() == 0 })
	if _, err := sendTrace(t, addr, raw); err != nil {
		t.Fatalf("stream after slot release: %v", err)
	}
}

// TestFleetServerShedsUnderRate: a rate-limited tenant's oversized burst is
// partially shed; the summary explains every sent frame as admitted or
// shed (zero unexplained loss) and flags the overload, while an unmetered
// tenant on the same server is untouched.
func TestFleetServerShedsUnderRate(t *testing.T) {
	now := time.Unix(5000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	addr, shutdown := startFleetServer(t, fleet.Config{
		Workers: 2, Metrics: obs.Discard, Now: clock,
		Tenants: map[uint32]fleet.TenantConfig{1: {FrameRate: 1e-9, Burst: 10}},
	}, parityScorer{})
	defer shutdown()

	const n = 100
	sum, err := sendTrace(t, addr, syntheticTrace(t, 16, n, 1))
	if !errors.Is(err, stream.ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload for a partially shed stream", err)
	}
	if sum.Frames != 10 || sum.Shed != n-10 || !sum.Overload {
		t.Fatalf("summary %+v, want 10 admitted / %d shed", sum, n-10)
	}
	if int64(sum.Frames)+sum.Shed != n {
		t.Fatalf("unexplained loss: %d+%d != %d", sum.Frames, sum.Shed, n)
	}

	// Tenant 2 is unmetered: full admission on the same server.
	sum2, err := sendTrace(t, addr, syntheticTrace(t, 16, n, 2))
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Frames != n || sum2.Shed != 0 {
		t.Fatalf("unmetered tenant summary %+v", sum2)
	}
}

// TestFleetServerConcurrentStreams is the in-process mini-soak: many
// concurrent streams across tenants through one small pool, every frame
// accounted for, per-tenant monitors registered, no stalls.
func TestFleetServerConcurrentStreams(t *testing.T) {
	const (
		streams = 32
		frames  = 200
		tenants = 4
	)
	health := stream.NewHealthRegistry()
	cfg := fleet.Config{
		Workers:     4,
		StreamQueue: 64,
		Metrics:     obs.Discard,
		Estimator:   stream.EstimatorConfig{Window: 50, Health: health},
	}
	addr, shutdown := startFleetServer(t, cfg, parityScorer{})

	var wg sync.WaitGroup
	sums := make([]stream.Summary, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw := syntheticTrace(t, 16, frames, uint32(i%tenants))
			sums[i], errs[i] = sendTrace(t, addr, raw)
		}(i)
	}
	wg.Wait()
	shutdown()

	for i := 0; i < streams; i++ {
		if errs[i] != nil && !errors.Is(errs[i], stream.ErrOverload) {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if got := int64(sums[i].Frames) + sums[i].Shed; got != frames {
			t.Fatalf("stream %d: %d admitted + %d shed != %d sent", i, sums[i].Frames, sums[i].Shed, frames)
		}
		if sums[i].Stream == "" {
			t.Fatalf("stream %d: no monitor name in summary %+v", i, sums[i])
		}
		if health.Get(sums[i].Stream) == nil {
			t.Fatalf("stream %d: monitor %q not in health registry", i, sums[i].Stream)
		}
	}
	// Monitor names carry the tenant: spot-check the prefix convention.
	if want := fmt.Sprintf("t%d-conn-", 0); len(health.Streams()) != streams {
		t.Fatalf("registry has %d monitors, want %d (prefix like %q)", len(health.Streams()), streams, want)
	}
}
