package fleet_test

import (
	"sync"
	"testing"
	"time"

	"caliqec/internal/fleet"
	"caliqec/internal/obs"
)

// sleepScorer models a decode that is slow relative to the offered pace
// while yielding the CPU, so the offer goroutines keep running even on a
// single-core box (a spinning scorer would starve them).
type sleepScorer struct{ cost time.Duration }

func (s sleepScorer) ScoreFrame(syn []int, obs uint64) bool {
	time.Sleep(s.cost)
	return false
}

// TestDRRAdmittedShareUnderPacedLoad pins the e2e fairness contract the
// loadgen harness asserts: under *sustained* paced load where the drain —
// not the queue refill — is each stream's binding constraint (per-stream
// arrival rate exceeds every tenant's per-stream drain share, so queues
// never fully empty between claims), the admitted-frame counts beyond the
// initial queue fill track the DRR weights. This is the regime the CI
// fleet-soak's fairness phase constructs with a slow decode and small
// queues; with a fast decode, queues drain completely between refill
// bursts and every burst admits exactly the queue cap per stream,
// weight-independently — which is correct DRR (weights govern drain
// share), just not a regime where admitted counts can show it.
func TestDRRAdmittedShareUnderPacedLoad(t *testing.T) {
	p := fleet.NewPool(fleet.Config{
		Workers:     1,
		StreamQueue: 32,
		Quantum:     16,
		Metrics:     obs.Discard,
		Tenants: map[uint32]fleet.TenantConfig{
			1: {Weight: 3},
			2: {Weight: 1},
			3: {Weight: 1},
			4: {Weight: 1},
		},
	})

	const perTenant = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	adm := map[uint32]int64{}
	stop := make(chan struct{})
	for id := uint32(1); id <= 4; id++ {
		for i := 0; i < perTenant; i++ {
			st, err := p.Open(testHeader(8, id), sleepScorer{cost: 40 * time.Microsecond}, "probe")
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(st *fleet.Stream, id uint32) {
				defer wg.Done()
				packed := make([]byte, 1)
				var a int64
				for {
					select {
					case <-stop:
						st.CloseSend()
						<-st.Done()
						st.Close()
						mu.Lock()
						adm[id] += a
						mu.Unlock()
						return
					default:
					}
					// ~3000 frames/s per stream, like loadgen -pace.
					for j := 0; j < 3; j++ {
						if st.Offer(packed, 0) {
							a++
						}
					}
					time.Sleep(time.Millisecond)
				}
			}(st, id)
		}
	}
	time.Sleep(time.Second)
	close(stop)
	wg.Wait()
	p.Close()

	const fill = perTenant * 32
	beyond := func(id uint32) int64 {
		b := adm[id] - fill
		if b < 0 {
			b = 0
		}
		return b
	}
	t.Logf("beyond-fill admissions: t1(w3)=%d t2=%d t3=%d t4=%d",
		beyond(1), beyond(2), beyond(3), beyond(4))
	if beyond(1) == 0 {
		t.Fatalf("weight-3 tenant admitted nothing beyond its queue fill — no drain signal at all")
	}
	// Directional, generous band: the weight-3 tenant must out-admit each
	// weight-1 tenant beyond the equal queue fill. The exact 3:1 ratio is
	// timing-sensitive; the ordering is not.
	for id := uint32(2); id <= 4; id++ {
		if beyond(1) <= beyond(id) {
			t.Errorf("weight-3 tenant admitted %d beyond fill, <= weight-1 tenant %d's %d",
				beyond(1), id, beyond(id))
		}
	}
}
