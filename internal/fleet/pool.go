package fleet

import (
	"fmt"
	"sync"
	"time"

	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// frame is one admitted decode work item. idx is the stream's dense
// admitted-frame index (shed frames consume none), which keys the drift
// monitor's windows scheduling-independently.
type frame struct {
	idx    int64
	obs    uint64
	packed []byte
}

// tenant is one tenant's scheduler state. All fields except the metric
// handles are guarded by the pool mutex.
type tenant struct {
	id     uint32
	cfg    TenantConfig
	bucket tokenBucket

	deficit  int       // DRR credit, in frames
	runnable []*Stream // FIFO of streams with queued frames
	queued   int       // total queued frames across runnable streams
	open     int       // concurrently open streams (MaxStreams accounting)
	inRing   bool

	admitted *obs.Counter   // fleet.tenant.<id>.admitted
	shed     *obs.Counter   // fleet.tenant.<id>.shed
	depth    *obs.Gauge     // fleet.tenant.<id>.queue.depth
	latency  *obs.Histogram // fleet.tenant.<id>.decode.latency
}

// Pool is the shared decode worker pool: a fixed set of workers claiming
// spans of queued frames from all open streams under deficit-round-robin
// across tenants (the mc.EvaluateBatch span-granular scheduler shape, with
// tenants in place of specs). Safe for concurrent use.
type Pool struct {
	cfg      Config
	nworkers int
	queueCap int
	quantum  int
	now      func() time.Time
	reg      *obs.Registry

	latency   *obs.Histogram // fleet.decode.latency
	occupancy *obs.Gauge     // fleet.pool.occupancy
	openG     *obs.Gauge     // fleet.streams.open
	rejectedC *obs.Counter   // fleet.streams.rejected

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	tenants map[uint32]*tenant
	ring    []*tenant // tenants with queued frames, DRR order
	cursor  int       // ring position of the next tenant to serve
	busy    int
	openN   int

	wg sync.WaitGroup
}

// NewPool starts the worker pool. The caller must Close it to drain queued
// frames and join the workers.
func NewPool(cfg Config) *Pool {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	p := &Pool{
		cfg:       cfg,
		nworkers:  cfg.workers(),
		queueCap:  cfg.streamQueue(),
		quantum:   cfg.quantum(),
		now:       cfg.clock(),
		reg:       reg,
		latency:   reg.Histogram("fleet.decode.latency"),
		occupancy: reg.Gauge("fleet.pool.occupancy"),
		openG:     reg.Gauge("fleet.streams.open"),
		rejectedC: reg.Counter("fleet.streams.rejected"),
		tenants:   map[uint32]*tenant{},
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < p.nworkers; i++ {
		p.wg.Add(1)
		go func() { //lint:allow bareloop the pool owns its workers; Close() drains every stream queue and joins them
			defer p.wg.Done()
			p.worker()
		}()
	}
	return p
}

// Workers returns the pool's decode concurrency.
func (p *Pool) Workers() int { return p.nworkers }

// getTenantLocked lazily materializes a tenant's scheduler state and metric
// handles. Called with mu held.
func (p *Pool) getTenantLocked(id uint32) *tenant {
	t := p.tenants[id]
	if t == nil {
		cfg := p.cfg.tenant(id)
		t = &tenant{
			id:     id,
			cfg:    cfg,
			bucket: tokenBucket{rate: cfg.FrameRate, burst: cfg.Burst},
		}
		pre := fmt.Sprintf("fleet.tenant.%d.", id)
		t.admitted = p.reg.Counter(pre + "admitted")
		t.shed = p.reg.Counter(pre + "shed")
		t.depth = p.reg.Gauge(pre + "queue.depth")
		t.latency = p.reg.Histogram(pre + "decode.latency")
		p.tenants[id] = t
	}
	return t
}

// Open admits a new stream for h.Tenant, decoding its frames with scorer.
// It never blocks: a tenant at its MaxStreams cap is refused with an error
// wrapping stream.ErrOverload. name labels the stream's drift monitor in
// the health registry when monitoring is configured.
func (p *Pool) Open(h stream.Header, scorer stream.FrameScorer, name string) (*Stream, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: pool closed", stream.ErrOverload)
	}
	t := p.getTenantLocked(h.Tenant)
	if t.cfg.MaxStreams > 0 && t.open >= t.cfg.MaxStreams {
		p.mu.Unlock()
		p.rejectedC.Inc()
		return nil, fmt.Errorf("%w: tenant %d at its %d-stream cap", stream.ErrOverload, h.Tenant, t.cfg.MaxStreams)
	}
	t.open++
	p.openN++
	openN := p.openN
	p.mu.Unlock()
	p.openG.Set(float64(openN))

	fbytes := stream.FrameBytes(h.NumDetectors)
	s := &Stream{
		p:      p,
		t:      t,
		scorer: scorer,
		name:   name,
		done:   make(chan struct{}),
	}
	s.bufs.New = func() interface{} { return make([]byte, fbytes) }
	if p.cfg.Estimator.Window > 0 {
		cfg := p.cfg.Estimator
		cfg.Stream = name
		s.mon = stream.NewMonitor(cfg, scorer, h, p.reg)
		cfg.Health.Register(s.mon)
	}
	return s, nil
}

// Close stops admission, lets the workers drain every queued frame, and
// joins them. Streams still waiting on Done are completed by the drain.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// worker claims and decodes spans until the pool closes and drains.
func (p *Pool) worker() {
	var syn []int
	var span []frame
	for {
		var st *Stream
		st, span = p.claim(span)
		if st == nil {
			return
		}
		failures := 0
		for i := range span {
			f := &span[i]
			fr := stream.Frame{Obs: f.obs, Packed: f.packed}
			syn = fr.Syndrome(syn[:0])
			var failed bool
			if p.latency != nil {
				start := p.reg.Now()
				failed = st.scorer.ScoreFrame(syn, f.obs)
				ns := p.reg.Now().Sub(start).Nanoseconds()
				p.latency.Observe(ns)
				st.t.latency.Observe(ns)
			} else {
				failed = st.scorer.ScoreFrame(syn, f.obs)
			}
			if failed {
				failures++
			}
			st.mon.Observe(f.idx, syn, failed)
			st.bufs.Put(f.packed)
		}
		p.complete(st, len(span), failures)
	}
}

// claim blocks until a span is available (returning it in span's backing
// array) or the pool is closed and fully drained (returning a nil stream).
func (p *Pool) claim(span []frame) (*Stream, []frame) {
	p.mu.Lock()
	for {
		if st, sp := p.claimLocked(span); st != nil {
			p.busy++
			p.occupancy.Set(float64(p.busy) / float64(p.nworkers))
			depth := st.t.queued
			p.mu.Unlock()
			st.t.depth.Set(float64(depth))
			return st, sp
		}
		if p.closed {
			p.mu.Unlock()
			return nil, span
		}
		p.cond.Wait()
	}
}

// claimLocked implements the deficit-round-robin claim: the cursor tenant
// earns quantum×weight credits when out, then surrenders up to its credit
// in consecutive frames from its head stream (copied into span's backing —
// the stream queue may be recycled while the span decodes). A tenant whose
// queues empty leaves the ring and forfeits leftover credit, so an idle
// tenant never banks a burst. Called with mu held.
func (p *Pool) claimLocked(span []frame) (*Stream, []frame) {
	if len(p.ring) == 0 {
		return nil, span
	}
	if p.cursor >= len(p.ring) {
		p.cursor = 0
	}
	t := p.ring[p.cursor]
	if t.deficit <= 0 {
		t.deficit += p.quantum * t.cfg.Weight
	}
	s := t.runnable[0]
	n := len(s.queue) - s.head
	if n > t.deficit {
		n = t.deficit
	}
	span = append(span[:0], s.queue[s.head:s.head+n]...)
	s.head += n
	s.inflight += n
	t.deficit -= n
	t.queued -= n
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
		s.runnable = false
		t.runnable = t.runnable[1:]
	} else if len(t.runnable) > 1 {
		// Partial drain with siblings waiting: rotate to the back so the
		// tenant's own streams share its credit round-robin.
		t.runnable = append(t.runnable[1:], s)
	}
	switch {
	case t.queued == 0:
		t.deficit = 0
		t.inRing = false
		p.ring = append(p.ring[:p.cursor], p.ring[p.cursor+1:]...)
	case t.deficit <= 0:
		p.cursor++
	}
	return s, span
}

// complete commits one decoded span's accounting and closes the stream's
// Done channel when it was the last outstanding work of a half-closed
// stream.
func (p *Pool) complete(st *Stream, n, failures int) {
	p.mu.Lock()
	st.inflight -= n
	st.failures += int64(failures)
	done := st.eof && !st.doneClosed && st.inflight == 0 && len(st.queue) == st.head
	if done {
		st.doneClosed = true
	}
	p.busy--
	p.occupancy.Set(float64(p.busy) / float64(p.nworkers))
	p.mu.Unlock()
	if done {
		close(st.done)
	}
}

// Stream is one admitted connection's handle into the pool. Offer,
// CloseSend, Done, Stats and Close are safe for concurrent use with the
// pool's workers; Offer itself is single-producer (one connection reader).
type Stream struct {
	p      *Pool
	t      *tenant
	scorer stream.FrameScorer
	mon    *stream.Monitor
	name   string
	bufs   sync.Pool

	done chan struct{}

	// guarded by p.mu
	queue      []frame
	head       int
	inflight   int
	eof        bool
	released   bool
	runnable   bool
	doneClosed bool
	nextIdx    int64
	admitted   int64
	shed       int64
	failures   int64
}

// Name returns the server-assigned stream name.
func (s *Stream) Name() string { return s.name }

// Offer submits one frame and never blocks: it reports false — and counts
// the shed — when the stream's queue is full, the tenant's token bucket is
// empty, the stream is half-closed, or the pool has shut down. packed is
// copied; the caller keeps ownership.
func (s *Stream) Offer(packed []byte, obsMask uint64) bool {
	p := s.p
	p.mu.Lock()
	if s.eof || p.closed || len(s.queue)-s.head >= p.queueCap || !s.t.bucket.take(p.now()) {
		s.shed++
		p.mu.Unlock()
		s.t.shed.Inc()
		return false
	}
	buf := s.bufs.Get().([]byte)
	copy(buf, packed)
	s.queue = append(s.queue, frame{idx: s.nextIdx, obs: obsMask, packed: buf})
	s.nextIdx++
	s.admitted++
	s.t.queued++
	depth := s.t.queued
	if !s.runnable {
		s.runnable = true
		s.t.runnable = append(s.t.runnable, s)
		if !s.t.inRing {
			s.t.inRing = true
			p.ring = append(p.ring, s.t)
		}
	}
	p.mu.Unlock()
	s.t.admitted.Inc()
	s.t.depth.Set(float64(depth))
	p.cond.Signal()
	return true
}

// CloseSend marks end-of-stream: no more Offers will arrive. Queued and
// in-flight frames still decode; Done closes once they have.
func (s *Stream) CloseSend() {
	p := s.p
	p.mu.Lock()
	if s.eof {
		p.mu.Unlock()
		return
	}
	s.eof = true
	done := !s.doneClosed && s.inflight == 0 && len(s.queue) == s.head
	if done {
		s.doneClosed = true
	}
	p.mu.Unlock()
	if done {
		close(s.done)
	}
}

// Done closes when every admitted frame has been decoded after CloseSend.
// The wait is bounded: at most StreamQueue queued frames plus one in-flight
// span remain at half-close.
func (s *Stream) Done() <-chan struct{} { return s.done }

// StreamStats is one stream's final (or live) accounting.
type StreamStats struct {
	// Admitted frames entered the queue and were (or will be) decoded;
	// Failures of them scored as logical failures. Shed frames were
	// declined by admission control or queue backpressure.
	Admitted    int64
	Shed        int64
	Failures    int64
	DriftEvents int64
}

// Stats reads the stream's accounting; call after Done for final values.
func (s *Stream) Stats() StreamStats {
	s.p.mu.Lock()
	st := StreamStats{Admitted: s.admitted, Shed: s.shed, Failures: s.failures}
	s.p.mu.Unlock()
	st.DriftEvents = s.mon.Events()
	return st
}

// Close releases the stream's admission slot and finalizes its drift
// monitor's trailing partial window. Idempotent. Call once the stream is
// drained (after Done); the monitor stays registered in the health registry
// so /health keeps serving the final state.
func (s *Stream) Close() {
	p := s.p
	p.mu.Lock()
	if s.released {
		p.mu.Unlock()
		return
	}
	s.released = true
	s.t.open--
	p.openN--
	openN := p.openN
	p.mu.Unlock()
	p.openG.Set(float64(openN))
	s.mon.Finalize()
}
