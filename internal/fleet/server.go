package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// Server ingests trace streams over any net.Listener — the same wire
// protocol as stream.Server (header + frames in, one JSON Summary line
// out) — but decodes every connection through one shared Pool instead of a
// per-connection pipeline. The trace header's Tenant field selects the
// admission and scheduling policy; shedding is reported in the summary
// (Shed count, Overload flag), never by stalling the socket: the read loop
// keeps consuming frames even when all of them shed.
type Server struct {
	pool    *Pool
	resolve func(stream.Header) (stream.FrameScorer, error)
	events  *obs.EventSink
	est     bool

	conns    *obs.Counter // fleet.server.conns
	active   *obs.Gauge   // fleet.server.active
	rejected *obs.Counter // fleet.server.rejected
	activeN  atomic.Int64
	connSeq  atomic.Int64
}

// NewServer builds the pool from cfg and resolves incoming streams through
// resolve (typically stream.Catalog.Resolve). Each connection's drift
// monitor (when cfg.Estimator.Window > 0) registers under
// "t<tenant>-conn-<n>".
func NewServer(cfg Config, resolve func(stream.Header) (stream.FrameScorer, error)) *Server {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	return &Server{
		pool:     NewPool(cfg),
		resolve:  resolve,
		events:   cfg.Estimator.Events,
		est:      cfg.Estimator.Window > 0,
		conns:    reg.Counter("fleet.server.conns"),
		active:   reg.Gauge("fleet.server.active"),
		rejected: reg.Counter("fleet.server.rejected"),
	}
}

// Pool returns the server's shared worker pool (tests and metrics probes).
func (s *Server) Pool() *Pool { return s.pool }

// Serve accepts connections until ctx is canceled, then drains: handlers
// finish their streams (the pool decodes what was admitted), the pool shuts
// down, and the drift-event sink is flushed — so no events from final
// partial windows are lost at shutdown. A cancellation-triggered stop
// returns nil. Serve owns the pool's lifecycle: it is one-shot.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		s.conns.Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handleConn(ctx, conn)
		}()
	}
	wg.Wait()
	s.pool.Close()
	if err := s.events.Flush(); err != nil && acceptErr == nil {
		acceptErr = fmt.Errorf("fleet: flushing drift events: %w", err)
	}
	return acceptErr
}

// handleConn reads one connection's frames into the pool and writes the
// summary. The loop never blocks on the pool — Offer sheds instead — so a
// slow or saturated pool cannot stall the socket or the accept path.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	ctx, span := obs.StartSpan(ctx, "fleet.serve_conn")
	defer span.End()
	s.active.Set(float64(s.activeN.Add(1)))
	defer func() { s.active.Set(float64(s.activeN.Add(-1))) }()

	r, err := stream.NewReader(conn)
	if err != nil {
		s.rejected.Inc()
		span.Event("rejected")
		writeSummary(conn, stream.Summary{Error: err.Error()})
		return
	}
	h := r.Header()
	scorer, err := s.resolve(h)
	if err != nil {
		s.rejected.Inc()
		span.Event("rejected")
		writeSummary(conn, stream.Summary{Tenant: h.Tenant, Error: err.Error()})
		return
	}
	name := fmt.Sprintf("t%d-conn-%d", h.Tenant, s.connSeq.Add(1))
	st, err := s.pool.Open(h, scorer, name)
	if err != nil {
		// Admission refused (stream cap): the overload summary is the typed
		// wire response — SendTrace surfaces it as stream.ErrOverload.
		s.rejected.Inc()
		span.Event("overload")
		writeSummary(conn, stream.Summary{Overload: true, Tenant: h.Tenant, Error: err.Error()})
		return
	}
	defer st.Close()

	var f stream.Frame
	var rerr error
	for {
		if err := ctx.Err(); err != nil {
			rerr = err
			break
		}
		err := r.Next(&f)
		if err == io.EOF {
			break
		}
		if err != nil {
			rerr = err
			break
		}
		st.Offer(f.Packed, f.Obs)
	}
	st.CloseSend()
	// Bounded wait: at most one stream queue plus the in-flight span.
	<-st.Done()

	stats := st.Stats()
	sum := stream.Summary{
		Frames:    int(stats.Admitted),
		Failures:  int(stats.Failures),
		Tenant:    h.Tenant,
		Shed:      stats.Shed,
		Overload:  stats.Shed > 0,
		Truncated: errors.Is(rerr, stream.ErrTruncated),
	}
	if s.est {
		sum.Stream = name
		sum.DriftEvents = stats.DriftEvents
	}
	if stats.Admitted > 0 {
		sum.LER = float64(stats.Failures) / float64(stats.Admitted)
	}
	if rerr != nil && !errors.Is(rerr, stream.ErrTruncated) {
		sum.Error = rerr.Error()
	}
	span.SetAttr("frames", int(stats.Admitted))
	span.SetAttr("shed", int(stats.Shed))
	writeSummary(conn, sum)
}

// writeSummary sends one JSON summary line; errors are ignored (the peer
// may already be gone, the accounting is recorded regardless).
func writeSummary(w io.Writer, sum stream.Summary) {
	_ = json.NewEncoder(w).Encode(sum)
}
