package stream_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

func memorySpec(t testing.TB, d int, p float64, shots int) mc.Spec {
	t.Helper()
	patch := code.NewPatch(lattice.NewSquare(d))
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		t.Fatal(err)
	}
	return mc.Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3, Seed: 42}
}

// recordTrace records spec to memory and returns the encoded trace.
func recordTrace(t testing.TB, spec mc.Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := stream.Record(context.Background(), spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != spec.Shots {
		t.Fatalf("recorded %d shots, want %d", n, spec.Shots)
	}
	return buf.Bytes()
}

// TestRecordReplayMatchesEvaluate is the tentpole's round-trip oracle: a
// recorded trace replayed through the pipeline must reproduce the logical
// failure count of the in-process evaluation it mirrors, bit-identically,
// for any worker fan-out.
func TestRecordReplayMatchesEvaluate(t *testing.T) {
	spec := memorySpec(t, 3, 3e-3, 5000) // not a ChunkShots multiple: tail chunk
	eng := mc.New(mc.Options{})
	want, err := eng.Evaluate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Failures == 0 {
		t.Fatal("test vacuous: no failures at this noise level")
	}

	raw := recordTrace(t, spec)
	fd, err := eng.FrameDecoder(spec.Circuit, spec.Decoder)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		r, err := stream.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if h := r.Header(); h.Fingerprint != mc.Fingerprint(spec.Circuit) ||
			h.Seed != spec.Seed || h.Shots != uint64(spec.Shots) {
			t.Fatalf("trace header %+v does not carry spec metadata", h)
		}
		stats, err := stream.Replay(context.Background(), r, fd,
			stream.PipelineOptions{Workers: workers, Metrics: obs.Discard})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Frames != spec.Shots {
			t.Fatalf("workers=%d: replayed %d frames, want %d", workers, stats.Frames, spec.Shots)
		}
		if stats.Failures != want.Failures {
			t.Fatalf("workers=%d: replay counted %d failures, Evaluate counted %d",
				workers, stats.Failures, want.Failures)
		}
	}
}

// gatedScorer blocks every ScoreFrame call until its gate closes, so tests
// can hold the pipeline's decode stage and observe queueing behaviour.
type gatedScorer struct {
	gate   chan struct{}
	scored atomic.Int64
}

func (g *gatedScorer) ScoreFrame(syndrome []int, actual uint64) bool {
	<-g.gate
	g.scored.Add(1)
	return actual&1 == 1
}

// countingReader tallies bytes consumed from the underlying reader so tests
// can see how far the pipeline has read into a stream.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// syntheticTrace builds a trace of n frames with obs = i&1, so half the
// frames "fail" under gatedScorer.
func syntheticTrace(t testing.TB, numDet, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, stream.Header{NumDetectors: numDet, NumObs: 1, Shots: uint64(n)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.WriteSyndrome([]int{i % numDet}, uint64(i&1)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// waitStable polls load until its value stops changing for a few
// consecutive checks, returning the settled value.
func waitStable(t testing.TB, load func() int64) int64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	last, stable := load(), 0
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		cur := load()
		if cur == last {
			stable++
			if stable >= 5 {
				return cur
			}
		} else {
			last, stable = cur, 0
		}
	}
	t.Fatal("value never stabilized")
	return 0
}

// TestReplayBackpressure: with the decode stage held, the reader may buffer
// at most the queue depth plus in-hand frames — it must not slurp the whole
// stream into memory.
func TestReplayBackpressure(t *testing.T) {
	const (
		numDet     = 16
		frames     = 500
		workers    = 2
		queueDepth = 8
	)
	raw := syntheticTrace(t, numDet, frames)
	frameLen := 4 + 8 + stream.FrameBytes(numDet) + 4

	cr := &countingReader{r: bytes.NewReader(raw)}
	r, err := stream.NewReader(cr)
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedScorer{gate: make(chan struct{})}
	type out struct {
		stats stream.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		stats, err := stream.Replay(context.Background(), r, g,
			stream.PipelineOptions{Workers: workers, QueueDepth: queueDepth, Metrics: obs.Discard})
		done <- out{stats, err}
	}()

	consumed := waitStable(t, cr.n.Load)
	// Header + (queue + one per worker + one in the reader's hand) frames is
	// the ceiling; anything more means the queue is not applying
	// backpressure.
	maxFrames := int64(queueDepth + workers + 1)
	if got := (consumed - 60) / int64(frameLen); got > maxFrames {
		t.Fatalf("reader consumed %d frames with decode stalled, want ≤ %d", got, maxFrames)
	}

	close(g.gate)
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.stats.Frames != frames || g.scored.Load() != frames {
		t.Fatalf("frames=%d scored=%d, want %d", res.stats.Frames, g.scored.Load(), frames)
	}
	if res.stats.Failures != frames/2 {
		t.Fatalf("failures=%d, want %d", res.stats.Failures, frames/2)
	}
}

// TestReplayCancellationDrains: cancelling mid-stream stops the reader
// promptly but the workers still score every frame already queued, and the
// returned stats account for exactly those frames.
func TestReplayCancellationDrains(t *testing.T) {
	const queueDepth = 4
	raw := syntheticTrace(t, 16, 200)
	cr := &countingReader{r: bytes.NewReader(raw)}
	r, err := stream.NewReader(cr)
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedScorer{gate: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type out struct {
		stats stream.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		stats, err := stream.Replay(ctx, r, g,
			stream.PipelineOptions{Workers: 1, QueueDepth: queueDepth, Metrics: obs.Discard})
		done <- out{stats, err}
	}()

	waitStable(t, cr.n.Load) // queue full, reader blocked on send
	cancel()
	close(g.gate) // release the decode stage so the drain can run
	res := <-done
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.err)
	}
	if res.stats.Frames == 0 {
		t.Fatal("no frames drained after cancellation")
	}
	if int64(res.stats.Frames) != g.scored.Load() {
		t.Fatalf("stats count %d frames but scorer saw %d", res.stats.Frames, g.scored.Load())
	}
	// 1 in the worker + queueDepth queued is everything that can be
	// committed once the reader stops.
	if res.stats.Frames > queueDepth+1 {
		t.Fatalf("drained %d frames, want ≤ %d", res.stats.Frames, queueDepth+1)
	}
}

// TestReplayTruncatedTrace: the pipeline surfaces truncation as partial
// stats plus ErrTruncated, matching the Reader contract.
func TestReplayTruncatedTrace(t *testing.T) {
	raw := syntheticTrace(t, 16, 50)
	frameLen := 4 + 8 + stream.FrameBytes(16) + 4
	r, err := stream.NewReader(bytes.NewReader(raw[:len(raw)-frameLen/2]))
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedScorer{gate: make(chan struct{})}
	close(g.gate)
	stats, err := stream.Replay(context.Background(), r, g, stream.PipelineOptions{Metrics: obs.Discard})
	if !errors.Is(err, stream.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if !stats.Truncated || stats.Frames != 49 {
		t.Fatalf("stats = %+v, want Truncated with 49 frames", stats)
	}
}

// TestServerConcurrentStreams: several clients stream the same recorded
// trace concurrently; every summary must carry the oracle's exact failure
// count, and cancelling the server afterwards shuts Serve down cleanly.
func TestServerConcurrentStreams(t *testing.T) {
	spec := memorySpec(t, 3, 3e-3, 2000)
	eng := mc.New(mc.Options{})
	want, err := eng.Evaluate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	raw := recordTrace(t, spec)
	fd, err := eng.FrameDecoder(spec.Circuit, spec.Decoder)
	if err != nil {
		t.Fatal(err)
	}
	cat := stream.NewCatalog()
	cat.Register(fd.CircuitFingerprint(), fd)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := stream.NewServer(cat.Resolve, stream.PipelineOptions{Workers: 2, Metrics: obs.Discard})
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			sum, err := stream.SendTrace(conn, bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			if sum.Error != "" || sum.Frames != spec.Shots || sum.Failures != want.Failures {
				errs <- errors.New("summary mismatch: " + sum.Error)
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}

// TestServerRejectsUnknownCircuit: a trace whose fingerprint is not in the
// catalog gets an error summary, not a decode.
func TestServerRejectsUnknownCircuit(t *testing.T) {
	var buf bytes.Buffer
	h := stream.Header{NumDetectors: 8, NumObs: 1, Shots: 2}
	h.Fingerprint[0] = 0xAB
	w, err := stream.NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.WriteSyndrome([]int{i}, 0); err != nil {
			t.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := stream.NewServer(stream.NewCatalog().Resolve, stream.PipelineOptions{Metrics: obs.Discard})
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sum, err := stream.SendTrace(conn, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Error == "" {
		t.Fatal("unknown fingerprint accepted")
	}
	cancel()
	<-served
}

// TestServerDrainingShutdown: cancelling the server while a client is
// mid-stream (header sent, write side still open) must unblock the pending
// connection read and return from Serve; the stalled client sees its
// connection closed.
func TestServerDrainingShutdown(t *testing.T) {
	g := &gatedScorer{gate: make(chan struct{})}
	close(g.gate)
	resolve := func(stream.Header) (stream.FrameScorer, error) { return g, nil }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := stream.NewServer(resolve, stream.PipelineOptions{Metrics: obs.Discard})
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a header plus one frame, then stall with the stream open.
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, stream.Header{NumDetectors: 8, NumObs: 1, Shots: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSyndrome([]int{3}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain the stalled connection")
	}
	// The server side closed our connection; the read eventually fails.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err == nil {
		// EOF from the closed server side is the expected clean outcome;
		// ReadAll maps it to nil, which is fine too.
		_ = err
	}
}

// TestReplayRealDecoderConcurrencyDeterminism replays the same real trace at
// several fan-outs with the production FrameDecoder and requires identical
// counts — the worker-count independence half of the determinism contract.
func TestReplayRealDecoderConcurrencyDeterminism(t *testing.T) {
	spec := memorySpec(t, 3, 5e-3, 1500)
	raw := recordTrace(t, spec)
	fd, err := mc.New(mc.Options{}).FrameDecoder(spec.Circuit, spec.Decoder)
	if err != nil {
		t.Fatal(err)
	}
	base := -1
	for _, workers := range []int{1, 3, 8} {
		r, err := stream.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := stream.Replay(context.Background(), r, fd,
			stream.PipelineOptions{Workers: workers, QueueDepth: 16, Metrics: obs.Discard})
		if err != nil {
			t.Fatal(err)
		}
		if base == -1 {
			base = stats.Failures
		} else if stats.Failures != base {
			t.Fatalf("workers=%d: %d failures, workers=1 counted %d", workers, stats.Failures, base)
		}
	}
}
