package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// appendV1Header encodes h as a version-1 header (no round fields) — the
// on-disk layout every pre-v2 trace carries. Kept in test code as the
// compatibility oracle.
func appendV1Header(buf []byte, h Header) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, 1) // version
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.NumDetectors))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.NumObs))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // reserved
	buf = append(buf, h.Fingerprint[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, h.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, h.Shots)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// TestHeaderRoundTripV2: the round-geometry fields survive a write/read
// cycle and the reader reports the current version.
func TestHeaderRoundTripV2(t *testing.T) {
	h := testHeader(4)
	h.Rounds = 5
	h.DetPerRound = 0 // non-uniform
	raw := writeTestTrace(t, h, 4)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != Version {
		t.Fatalf("reader version %d, want %d", r.Version(), Version)
	}
	if got := r.Header(); got != h {
		t.Fatalf("header round trip: got %+v want %+v", got, h)
	}
	// Uniform geometry round-trips too.
	h2 := testHeader(2)
	h2.NumDetectors = 12
	h2.Rounds = 3
	h2.DetPerRound = 4
	raw2 := writeTestTrace(t, h2, 2)
	r2, err := NewReader(bytes.NewReader(raw2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Header(); got != h2 {
		t.Fatalf("uniform header round trip: got %+v want %+v", got, h2)
	}
}

// TestReaderAcceptsV1 is the backward-compatibility gate: a trace with a
// version-1 header (written by every earlier release) must still read
// cleanly, with zero round fields and intact frames.
func TestReaderAcceptsV1(t *testing.T) {
	h := testHeader(3)
	var buf bytes.Buffer
	buf.Write(appendV1Header(nil, h))
	// Frames are version-independent; write them with the current writer
	// logic by hand-encoding (payloadLen | obs | packed | crc).
	fb := h.frameBytes()
	for i := 0; i < 3; i++ {
		packed := make([]byte, fb)
		packed[0] = byte(1 << uint(i))
		frame := binary.LittleEndian.AppendUint32(nil, uint32(8+fb))
		frame = binary.LittleEndian.AppendUint64(frame, uint64(i))
		frame = append(frame, packed...)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame[4:], crcTable))
		buf.Write(frame)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 {
		t.Fatalf("reader version %d, want 1", r.Version())
	}
	got := r.Header()
	if got.Rounds != 0 || got.DetPerRound != 0 {
		t.Fatalf("v1 header read with round fields %d/%d, want 0/0", got.Rounds, got.DetPerRound)
	}
	if got != h {
		t.Fatalf("v1 header: got %+v want %+v", got, h)
	}
	var f Frame
	for i := 0; i < 3; i++ {
		if err := r.Next(&f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Obs != uint64(i) {
			t.Fatalf("frame %d obs %d", i, f.Obs)
		}
		syn := f.Syndrome(nil)
		if len(syn) != 1 || syn[0] != i {
			t.Fatalf("frame %d syndrome %v", i, syn)
		}
	}
	if err := r.Next(&f); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

// TestReaderRejectsUnknownVersion: a version beyond what this release
// writes must be refused as ErrFormat, not misparsed.
func TestReaderRejectsUnknownVersion(t *testing.T) {
	raw := writeTestTrace(t, testHeader(1), 1)
	// Patch the version field (offset 8) and refresh nothing else: the CRC
	// check is downstream of the version switch, so the error must be the
	// version, not the CRC.
	raw[len(magic)] = 9
	_, err := NewReader(bytes.NewReader(raw))
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

// TestHeaderValidateRoundGeometry: inconsistent rounds x detPerRound is
// refused at write time and at read time.
func TestHeaderValidateRoundGeometry(t *testing.T) {
	h := testHeader(1)
	h.NumDetectors = 10
	h.Rounds = 3
	h.DetPerRound = 4 // 3*4 != 10
	if _, err := NewWriter(&bytes.Buffer{}, h); !errors.Is(err, ErrFormat) {
		t.Fatalf("writer err = %v, want ErrFormat", err)
	}
}
