package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func testHeader(shots uint64) Header {
	var fp [16]byte
	copy(fp[:], "fingerprint-test")
	return Header{Fingerprint: fp, NumDetectors: 21, NumObs: 2, Seed: 77, Shots: shots}
}

// writeTestTrace writes n frames with a simple deterministic pattern and
// returns the encoded bytes.
func writeTestTrace(t *testing.T, h Header, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		syn := []int{i % h.NumDetectors, (i * 7) % h.NumDetectors}
		if syn[0] == syn[1] {
			syn = syn[:1]
		}
		if err := w.WriteSyndrome(syn, uint64(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Frames() != uint64(n) {
		t.Fatalf("writer counted %d frames, want %d", w.Frames(), n)
	}
	return buf.Bytes()
}

func TestFormatRoundTrip(t *testing.T) {
	h := testHeader(10)
	raw := writeTestTrace(t, h, 10)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Header(); got != h {
		t.Fatalf("header round trip: got %+v want %+v", got, h)
	}
	var f Frame
	var syn []int
	for i := 0; ; i++ {
		err := r.Next(&f)
		if err == io.EOF {
			if i != 10 {
				t.Fatalf("EOF after %d frames, want 10", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		syn = f.Syndrome(syn[:0])
		want := []int{i % h.NumDetectors, (i * 7) % h.NumDetectors}
		if want[0] == want[1] {
			want = want[:1]
		}
		if len(syn) != len(want) {
			t.Fatalf("frame %d: syndrome %v, want %v", i, syn, want)
		}
		for j := range want {
			// Syndrome is ascending; want may not be.
			found := false
			for _, d := range syn {
				if d == want[j] {
					found = true
				}
			}
			if !found {
				t.Fatalf("frame %d: syndrome %v missing detector %d", i, syn, want[j])
			}
		}
		if f.Obs != uint64(i%4) {
			t.Fatalf("frame %d: obs %d, want %d", i, f.Obs, i%4)
		}
	}
	if !r.Complete() {
		t.Fatal("complete trace reported incomplete")
	}
	// Sticky EOF.
	if err := r.Next(&f); err != io.EOF {
		t.Fatalf("second EOF read: %v", err)
	}
}

func TestZeroDetectorAndEmptyObservableFrames(t *testing.T) {
	// Degenerate geometries the reader/decoder must tolerate: a stream with
	// zero detectors (every frame is an empty syndrome) and zero
	// observables.
	h := Header{NumDetectors: 0, NumObs: 0, Shots: 3}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.WriteSyndrome(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	n := 0
	for {
		err := r.Next(&f)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Syndrome(nil); len(got) != 0 {
			t.Fatalf("zero-detector frame decoded syndrome %v", got)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("read %d frames, want 3", n)
	}
}

func TestMaxIndexDetectorFrame(t *testing.T) {
	// The top detector index lands in the last partial byte of the packed
	// payload; it must survive the round trip.
	h := Header{NumDetectors: 21, NumObs: 1, Shots: 1}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSyndrome([]int{0, 20}, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSyndrome([]int{21}, 0); err == nil {
		t.Fatal("out-of-range detector accepted")
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := r.Next(&f); err != nil {
		t.Fatal(err)
	}
	syn := f.Syndrome(nil)
	if len(syn) != 2 || syn[0] != 0 || syn[1] != 20 {
		t.Fatalf("syndrome %v, want [0 20]", syn)
	}
}

func TestTruncationRecovery(t *testing.T) {
	h := testHeader(10)
	raw := writeTestTrace(t, h, 10)
	frameLen := 4 + 8 + FrameBytes(h.NumDetectors) + 4
	cases := []struct {
		name string
		cut  int // bytes removed from the tail
	}{
		{"mid-payload", frameLen / 2},
		{"partial length prefix", frameLen + 2},
		{"frame boundary before promised count", frameLen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(raw[:len(raw)-tc.cut]))
			if err != nil {
				t.Fatal(err)
			}
			var f Frame
			n := 0
			for {
				err := r.Next(&f)
				if err == nil {
					n++
					continue
				}
				if !errors.Is(err, ErrTruncated) {
					t.Fatalf("after %d frames: err %v, want ErrTruncated", n, err)
				}
				break
			}
			// Every complete frame before the cut must have been delivered.
			wantFrames := 10 - (tc.cut+frameLen-1)/frameLen
			if n != wantFrames {
				t.Fatalf("recovered %d frames, want %d", n, wantFrames)
			}
			if r.Complete() {
				t.Fatal("truncated trace reported complete")
			}
		})
	}
}

func TestOpenEndedStreamCleanEOF(t *testing.T) {
	// Shots == 0 means open-ended: clean EOF at a frame boundary is a
	// complete trace, not a truncation.
	h := testHeader(0)
	raw := writeTestTrace(t, h, 4)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	n := 0
	for {
		err := r.Next(&f)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 || !r.Complete() {
		t.Fatalf("frames=%d complete=%v, want 4/true", n, r.Complete())
	}
}

func TestCorruptionDetection(t *testing.T) {
	h := testHeader(10)
	raw := writeTestTrace(t, h, 10)
	t.Run("payload bit flip", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		// Flip a bit inside the 3rd frame's payload (past its length
		// prefix).
		frameLen := 4 + 8 + FrameBytes(h.NumDetectors) + 4
		bad[headerLen+2*frameLen+6] ^= 0x10
		r, err := NewReader(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var f Frame
		n := 0
		var ferr error
		for {
			if ferr = r.Next(&f); ferr != nil {
				break
			}
			n++
		}
		if !errors.Is(ferr, ErrCorrupt) {
			t.Fatalf("err %v, want ErrCorrupt", ferr)
		}
		if n != 2 {
			t.Fatalf("delivered %d frames before corruption, want 2", n)
		}
	})
	t.Run("length prefix damage", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[headerLen] ^= 0xFF
		r, err := NewReader(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var f Frame
		if err := r.Next(&f); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err %v, want ErrCorrupt", err)
		}
	})
	t.Run("header damage", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[12] ^= 0x01
		if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
			t.Fatalf("err %v, want ErrFormat", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] = 'X'
		if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
			t.Fatalf("err %v, want ErrFormat", err)
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(magic)] = 0xFE // version u16 low byte
		// Recompute nothing: CRC now fails first, which is also ErrFormat.
		if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
			t.Fatalf("err %v, want ErrFormat", err)
		}
	})
}

func TestWriterRejectsBadGeometry(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{NumObs: 65}); !errors.Is(err, ErrFormat) {
		t.Fatalf("65 observables: err %v, want ErrFormat", err)
	}
	if _, err := NewWriter(&buf, Header{NumDetectors: -1}); !errors.Is(err, ErrFormat) {
		t.Fatalf("negative detectors: err %v, want ErrFormat", err)
	}
	w, err := NewWriter(&buf, Header{NumDetectors: 8, NumObs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(make([]byte, 2), 0); err == nil {
		t.Fatal("oversized frame payload accepted")
	}
}

// FuzzReader: arbitrary bytes must never panic the reader — they parse, or
// they fail with one of the format sentinels (or a plain io error).
func FuzzReader(f *testing.F) {
	h := Header{NumDetectors: 9, NumObs: 1, Shots: 3}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, h)
	for i := 0; i < 3; i++ {
		w.WriteSyndrome([]int{i}, uint64(i&1))
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:headerLen+5])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var fr Frame
		var syn []int
		for i := 0; i < 1024; i++ {
			if err := r.Next(&fr); err != nil {
				return
			}
			syn = fr.Syndrome(syn[:0])
			for _, d := range syn {
				if d < 0 || d >= r.Header().NumDetectors {
					t.Fatalf("syndrome index %d outside [0, %d)", d, r.Header().NumDetectors)
				}
			}
		}
	})
}
