package stream_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/stream"
)

// TestRecordGoldenDigests pins the exact trace bytes stream.Record produces
// for fixed specs to SHA-256 digests captured from the pre-lane-widening
// implementation (64-shot batches). The multi-word sampler must reproduce
// those bytes bit-for-bit: same chunk split seeds, same per-shot frame order,
// same detector/observable bits. Shot counts cover whole 256-shot lane
// groups (2048), a ragged tail past a full group (1500 = 5*256 + 220), tails
// shorter than one group (300, 100), exactly one word (64), and a tail that
// straddles a word boundary (70).
func TestRecordGoldenDigests(t *testing.T) {
	patch := code.NewPatch(lattice.NewSquare(3))
	c, err := patch.MemoryCircuit(code.MemoryOptions{
		Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(3e-3)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		shots int
		seed  uint64
		want  string
	}{
		{2048, 11, "0a15b773e7a3cd820fec683d9d27a9d4e8e20ba940da0c291cdd8c364302db94"},
		{1500, 11, "fbc5f6274d7b1b38c8d8b87beb454cd851a9cc6df2a0710b0496c3da292552aa"},
		{300, 7, "098970155e3b1c17d034a1f841af3fb60d7d9ee9992a5b44c50360bf78b9ab0d"},
		{100, 7, "590e8ade967c30dc0eab0e20adc79367a12d9d1a711ae07446c3eaa1d3952673"},
		{64, 7, "1b49156ec222c705a9dba8c3eedebecd9fb18766d963412d05904986cb7ee0d8"},
		{70, 3, "df034ff8460bf3a126d2f95277be9ef2d553cc67f012a2917b9a9db9b76bad19"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		n, err := stream.Record(context.Background(), mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind, Shots: tc.shots, Rounds: 3, Seed: tc.seed,
		}, &buf)
		if err != nil {
			t.Fatalf("shots=%d seed=%d: %v", tc.shots, tc.seed, err)
		}
		if n != tc.shots {
			t.Fatalf("shots=%d seed=%d: recorded %d shots", tc.shots, tc.seed, n)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != tc.want {
			t.Errorf("shots=%d seed=%d: trace sha256 %s, want %s", tc.shots, tc.seed, got, tc.want)
		}
	}
}
