package stream_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// Race-stress tests: meaningful mostly under -race (the CI race-internal
// job), where they pin the concurrency contracts of the two shared lookup
// structures every fleet connection touches — the decoder catalog and the
// health registry.

// TestCatalogConcurrentAccess hammers one Catalog with concurrent
// Register / Resolve / Len from many goroutines over an overlapping
// fingerprint set: registration must never tear a Resolve, and a Resolve
// hit must always return a non-nil scorer.
func TestCatalogConcurrentAccess(t *testing.T) {
	cat := stream.NewCatalog()
	fp := func(g, i int) (f [16]byte) {
		f[0], f[1] = byte(g), byte(i)
		return f
	}
	// Seed a few entries so readers hit from the start.
	for i := 0; i < 4; i++ {
		cat.Register(fp(0, i), parityScorer{})
	}

	const (
		writers = 4
		readers = 4
		iters   = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cat.Register(fp(g, i%8), parityScorer{})
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h := stream.Header{Fingerprint: fp(g, i%8), NumDetectors: 8, NumObs: 1}
				s, err := cat.Resolve(h)
				if err == nil && s == nil {
					t.Error("Resolve hit returned a nil scorer")
					return
				}
				if n := cat.Len(); n < 4 {
					t.Errorf("Len shrank to %d under registration", n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHealthRegistryConcurrentScrape runs HTTP /health scrapes, direct
// Get/Streams lookups, and monitor churn (Register, Observe, Snapshot,
// Unregister, re-register) against one registry concurrently — the shape a
// fleet server produces, where connections come and go while an operator
// polls health.
func TestHealthRegistryConcurrentScrape(t *testing.T) {
	health := stream.NewHealthRegistry()
	web := httptest.NewServer(health.Handler())
	defer web.Close()

	const (
		feeders = 6
		rounds  = 12
		frames  = 64
	)
	var wg sync.WaitGroup
	done := make(chan struct{})

	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g)
			h := stream.Header{NumDetectors: 4, NumObs: 1}
			for r := 0; r < rounds; r++ {
				m := stream.NewMonitor(stream.EstimatorConfig{
					Window: 16, BaselineWindows: 1, Stream: name,
				}, parityScorer{}, h, obs.Discard)
				health.Register(m)
				for i := 0; i < frames; i++ {
					m.Observe(int64(i), []int{i % 4}, i&1 == 1)
				}
				m.Finalize()
				_ = m.Snapshot()
				if r%3 == 2 {
					health.Unregister(name)
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()

	scrape := func(path string) {
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Error(err)
		}
	}
	for {
		select {
		case <-done:
			return
		default:
		}
		scrape("/health")
		for _, name := range health.Streams() {
			if m := health.Get(name); m != nil {
				_ = m.Snapshot()
			}
			scrape("/health/stream/" + name) // may 404 mid-churn; only races matter
		}
	}
}
