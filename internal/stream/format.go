// Package stream records, replays and live-decodes syndrome streams.
//
// Real devices do not hand the decoder a simulator callback: they emit a
// continuous stream of detection events (Kelly et al. calibrate from
// exactly such a stream, and ReloQate detects drift on it online). This
// package closes that gap for CaliQEC with three layers:
//
//   - A versioned, self-describing binary trace format (this file): a
//     CRC-checked header carrying the circuit fingerprint, detector and
//     observable counts and seed metadata, followed by length-prefixed,
//     CRC-checked frames of bit-packed detection events plus the sampled
//     observable mask. Writer and Reader recover gracefully from
//     truncation: a partial trailing frame is reported as ErrTruncated
//     with every complete frame before it already delivered.
//   - A record tap (record.go) that persists the exact shot stream
//     mc.Evaluate would sample, making a trace a correctness oracle: a
//     replay must reproduce the in-process evaluation's logical failure
//     count bit-identically.
//   - A replay/live-decode pipeline (pipeline.go) and TCP ingestion server
//     (server.go) that feed any io.Reader — file, pipe, network — through
//     the mc engine's cached decoding graph and pooled decoders with
//     bounded queues, worker fan-out, per-stream metrics and spans, and
//     context-cancellable draining shutdown.
//
// Wire format (all integers little-endian):
//
//	header:  magic "CQSTRM01" (8) | version u16 | flags u16 |
//	         numDetectors u32 | numObs u32 | tenant u32 |
//	         fingerprint [16] | seed u64 | shots u64 |
//	         [v2+] rounds u32 | detPerRound u32 |
//	         crc32(header) u32
//	frame:   payloadLen u32 | obsMask u64 | packed detectors
//	         ceil(numDetectors/8) bytes | crc32(payload) u32
//
// Version 2 appends the shot's round structure to the header: rounds is the
// QEC rounds per shot (0 = unknown/roundless) and detPerRound the uniform
// detectors-per-round count (0 = non-uniform or unknown; memory circuits
// have thinner first and last detector rounds, so they record 0 and the
// decoder derives the per-round split from its own round map). The reader
// parses the version first and accepts v1 traces unchanged — their round
// fields read as zero.
//
// The tenant field occupies what both versions reserved as a zero u32:
// writers before the fleet subsystem always wrote 0 there, so tenant 0 (the
// default tenant) is byte-identical to every previously recorded trace and
// old readers ignore a nonzero tenant without a version bump. A multi-tenant
// server keys admission control and fair scheduling on it.
//
// Bit d of the packed detector bytes (byte d/8, bit d%8) is set when
// detector d fired. payloadLen is constant for a stream (8 + frame bytes);
// any other value marks the stream corrupt, which keeps a flipped length
// byte from desynchronizing the framing.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
)

// Version is the trace format version this package writes. Readers accept
// versions 1 and 2.
const Version = 2

const (
	magic        = "CQSTRM01"
	headerPre    = len(magic) + 2 + 2             // magic | version | flags
	headerBodyV1 = 2 + 2 + 4 + 4 + 4 + 16 + 8 + 8 // after magic, before CRC
	headerBodyV2 = headerBodyV1 + 4 + 4           // + rounds | detPerRound
	headerLen    = len(magic) + headerBodyV2 + 4  // current-version size
)

// headerBodyFor returns the post-magic, pre-CRC body size of a version, or
// 0 for unsupported versions.
func headerBodyFor(version uint16) int {
	switch version {
	case 1:
		return headerBodyV1
	case 2:
		return headerBodyV2
	}
	return 0
}

// Sentinel errors. Reader methods wrap these with positional detail; test
// with errors.Is.
var (
	// ErrTruncated marks a stream that ended mid-frame, or (when the header
	// promised a shot count) at a frame boundary before delivering it.
	// Every frame returned before the error is complete and CRC-valid, so
	// callers may treat a truncated trace as a shorter one.
	ErrTruncated = errors.New("stream: trace truncated")
	// ErrCorrupt marks a frame whose length prefix or CRC is wrong. Framing
	// cannot be trusted past this point; readers stop.
	ErrCorrupt = errors.New("stream: trace corrupt")
	// ErrFormat marks a header that is not a CaliQEC trace (bad magic,
	// unsupported version, inconsistent dimensions, bad header CRC).
	ErrFormat = errors.New("stream: not a valid trace header")
	// ErrOverload marks a stream the server shed under admission control or
	// queue backpressure: the connection was healthy and the frames intact,
	// but the fleet declined (some of) the work. Distinct from ErrTruncated —
	// a client seeing ErrOverload should back off and retry, not suspect
	// corruption.
	ErrOverload = errors.New("stream: server overloaded, stream shed")
)

// Header is the self-describing trace preamble.
type Header struct {
	// Fingerprint is mc.Fingerprint of the sampled circuit; replay matches
	// it against the decoder's circuit before decoding a single frame.
	Fingerprint [16]byte
	// NumDetectors and NumObs fix the frame geometry.
	NumDetectors int
	NumObs       int
	// Seed is the metadata seed the stream was recorded with (0 when
	// unknown, e.g. hardware streams).
	Seed uint64
	// Shots is the intended stream length; 0 means open-ended (a live
	// stream), in which case clean EOF at a frame boundary is a complete
	// trace.
	Shots uint64
	// Rounds is the QEC rounds per shot; 0 means unknown (v1 traces, or
	// roundless circuits). Windowed replay checks it against the decoder's
	// round count before decoding.
	Rounds int
	// DetPerRound is the uniform detectors-per-round count, or 0 when the
	// per-round detector count varies (memory circuits: the first and last
	// detector rounds are thinner) or is unknown.
	DetPerRound int
	// Tenant identifies the stream's tenant for multi-tenant admission
	// control and fair scheduling. 0 is the default tenant and encodes
	// byte-identically to pre-fleet traces (the field was a zero reserved
	// word).
	Tenant uint32
}

// FrameBytes returns the packed detector payload size for numDetectors.
func FrameBytes(numDetectors int) int { return (numDetectors + 7) / 8 }

// frameBytes is the per-frame detector payload for this header.
func (h Header) frameBytes() int { return FrameBytes(h.NumDetectors) }

func (h Header) validate() error {
	if h.NumDetectors < 0 {
		return fmt.Errorf("%w: negative detector count %d", ErrFormat, h.NumDetectors)
	}
	if h.NumObs < 0 || h.NumObs > 64 {
		return fmt.Errorf("%w: observable count %d outside [0, 64]", ErrFormat, h.NumObs)
	}
	if h.Rounds < 0 || h.DetPerRound < 0 {
		return fmt.Errorf("%w: negative round geometry (rounds=%d, detPerRound=%d)", ErrFormat, h.Rounds, h.DetPerRound)
	}
	if h.Rounds > 0 && h.DetPerRound > 0 && h.Rounds*h.DetPerRound != h.NumDetectors {
		return fmt.Errorf("%w: %d rounds x %d detectors/round != %d detectors", ErrFormat, h.Rounds, h.DetPerRound, h.NumDetectors)
	}
	return nil
}

var crcTable = crc32.IEEETable

// appendHeader encodes h.
func appendHeader(buf []byte, h Header) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.NumDetectors))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.NumObs))
	buf = binary.LittleEndian.AppendUint32(buf, h.Tenant)
	buf = append(buf, h.Fingerprint[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, h.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, h.Shots)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Rounds))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.DetPerRound))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// Writer serializes a trace: the header at construction, then one frame per
// WriteFrame/WriteSyndrome call. It performs no internal buffering beyond
// the frame being encoded — wrap w in a bufio.Writer for small frames. Not
// safe for concurrent use. Errors are sticky: after a write error every
// subsequent call returns it.
type Writer struct {
	w      io.Writer
	h      Header
	fbytes int
	buf    []byte // scratch: one encoded frame
	packed []byte // scratch for WriteSyndrome
	frames uint64
	err    error
}

// NewWriter validates h and writes the trace header to w.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	tw := &Writer{
		w:      w,
		h:      h,
		fbytes: h.frameBytes(),
	}
	tw.buf = make([]byte, 0, 4+8+tw.fbytes+4)
	tw.packed = make([]byte, tw.fbytes)
	hdr := appendHeader(make([]byte, 0, headerLen), h)
	if _, err := w.Write(hdr); err != nil {
		tw.err = err
		return nil, err
	}
	return tw, nil
}

// Header returns the header the writer was constructed with.
func (w *Writer) Header() Header { return w.h }

// Frames returns how many frames have been written.
func (w *Writer) Frames() uint64 { return w.frames }

// WriteFrame appends one frame: packed is the bit-packed detector payload
// (length must be exactly FrameBytes(h.NumDetectors)) and obs the sampled
// observable flip mask.
func (w *Writer) WriteFrame(packed []byte, obs uint64) error {
	if w.err != nil {
		return w.err
	}
	if len(packed) != w.fbytes {
		w.err = fmt.Errorf("stream: frame payload %d bytes, want %d", len(packed), w.fbytes)
		return w.err
	}
	buf := binary.LittleEndian.AppendUint32(w.buf[:0], uint32(8+w.fbytes))
	buf = binary.LittleEndian.AppendUint64(buf, obs)
	buf = append(buf, packed...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[4:], crcTable))
	w.buf = buf[:0]
	if _, err := w.w.Write(buf); err != nil {
		w.err = err
		return err
	}
	w.frames++
	return nil
}

// WriteSyndrome appends one frame given the sorted fired-detector list
// instead of packed bytes.
func (w *Writer) WriteSyndrome(syndrome []int, obs uint64) error {
	if w.err != nil {
		return w.err
	}
	for i := range w.packed {
		w.packed[i] = 0
	}
	for _, d := range syndrome {
		if d < 0 || d >= w.h.NumDetectors {
			w.err = fmt.Errorf("stream: detector %d outside [0, %d)", d, w.h.NumDetectors)
			return w.err
		}
		w.packed[d>>3] |= 1 << uint(d&7)
	}
	return w.WriteFrame(w.packed, obs)
}

// Frame is one decoded trace record. Packed aliases Reader scratch and is
// valid only until the next Next call; Syndrome copies out of it.
type Frame struct {
	Obs    uint64
	Packed []byte
}

// Syndrome appends the fired detector indices (ascending) to buf and
// returns it — the decoder-input form of the frame.
func (f *Frame) Syndrome(buf []int) []int {
	for i, b := range f.Packed {
		for ; b != 0; b &= b - 1 {
			buf = append(buf, i*8+bits.TrailingZeros8(b))
		}
	}
	return buf
}

// Reader parses a trace from any io.Reader. Not safe for concurrent use.
type Reader struct {
	r       io.Reader
	h       Header
	version int
	fbytes  int
	buf     []byte  // scratch: one frame payload + crc
	lenBuf  [4]byte // scratch: frame length prefix (a field so Next stays allocation-free)
	frames  uint64
	err     error // sticky terminal state (including io.EOF)
}

// NewReader reads and validates the trace header from r, accepting both
// the current version and v1 (whose round fields read as zero).
func NewReader(r io.Reader) (*Reader, error) {
	// Read magic + version + flags first; the rest of the header is
	// version-dependent.
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:headerPre]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: short header", ErrFormat)
		}
		return nil, err
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	version := binary.LittleEndian.Uint16(hdr[len(magic):])
	bodyLen := headerBodyFor(version)
	if bodyLen == 0 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, version)
	}
	total := len(magic) + bodyLen + 4
	if _, err := io.ReadFull(r, hdr[headerPre:total]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: short header", ErrFormat)
		}
		return nil, err
	}
	body := hdr[len(magic) : len(magic)+bodyLen]
	wantCRC := binary.LittleEndian.Uint32(hdr[len(magic)+bodyLen:])
	if crc32.Checksum(hdr[:len(magic)+bodyLen], crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: header CRC mismatch", ErrFormat)
	}
	h := Header{
		NumDetectors: int(binary.LittleEndian.Uint32(body[4:])),
		NumObs:       int(binary.LittleEndian.Uint32(body[8:])),
		Tenant:       binary.LittleEndian.Uint32(body[12:]),
		Seed:         binary.LittleEndian.Uint64(body[32:]),
		Shots:        binary.LittleEndian.Uint64(body[40:]),
	}
	copy(h.Fingerprint[:], body[16:32])
	if version >= 2 {
		h.Rounds = int(binary.LittleEndian.Uint32(body[48:]))
		h.DetPerRound = int(binary.LittleEndian.Uint32(body[52:]))
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	tr := &Reader{r: r, h: h, version: int(version), fbytes: h.frameBytes()}
	tr.buf = make([]byte, 8+tr.fbytes+4)
	return tr, nil
}

// Version returns the format version of the trace being read.
func (r *Reader) Version() int { return r.version }

// Header returns the parsed trace header.
func (r *Reader) Header() Header { return r.h }

// FrameBytes returns the packed detector payload size of this trace.
func (r *Reader) FrameBytes() int { return r.fbytes }

// Frames returns how many complete frames have been delivered.
func (r *Reader) Frames() uint64 { return r.frames }

// Complete reports whether the stream delivered everything the header
// promised (always true for open-ended streams once EOF is reached).
func (r *Reader) Complete() bool {
	return r.h.Shots == 0 || r.frames >= r.h.Shots
}

// Next reads the next frame into f. It returns io.EOF at a clean end of a
// complete trace, ErrTruncated when the stream stops mid-frame (or, for
// headers with a shot count, at a boundary before the promised count), and
// ErrCorrupt on framing or CRC damage. The error is sticky.
func (r *Reader) Next(f *Frame) error {
	if r.err != nil {
		return r.err
	}
	if _, err := io.ReadFull(r.r, r.lenBuf[:]); err != nil {
		switch err {
		case io.EOF:
			if !r.Complete() {
				r.err = fmt.Errorf("%w: %d of %d promised frames", ErrTruncated, r.frames, r.h.Shots)
			} else {
				r.err = io.EOF
			}
		case io.ErrUnexpectedEOF:
			r.err = fmt.Errorf("%w: partial length prefix after frame %d", ErrTruncated, r.frames)
		default:
			r.err = err
		}
		return r.err
	}
	if got := binary.LittleEndian.Uint32(r.lenBuf[:]); got != uint32(8+r.fbytes) {
		r.err = fmt.Errorf("%w: frame %d length %d, want %d", ErrCorrupt, r.frames, got, 8+r.fbytes)
		return r.err
	}
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.err = fmt.Errorf("%w: partial frame %d", ErrTruncated, r.frames)
		} else {
			r.err = err
		}
		return r.err
	}
	payload := r.buf[:8+r.fbytes]
	wantCRC := binary.LittleEndian.Uint32(r.buf[8+r.fbytes:])
	if crc32.Checksum(payload, crcTable) != wantCRC {
		r.err = fmt.Errorf("%w: frame %d CRC mismatch", ErrCorrupt, r.frames)
		return r.err
	}
	f.Obs = binary.LittleEndian.Uint64(payload)
	f.Packed = payload[8:]
	r.frames++
	return nil
}
