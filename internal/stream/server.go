package stream

import (
	"caliqec/internal/obs"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Summary is the server's single-line JSON reply to one ingested stream.
type Summary struct {
	Frames    int     `json:"frames"`
	Failures  int     `json:"failures"`
	LER       float64 `json:"ler"`
	Truncated bool    `json:"truncated,omitempty"`
	Error     string  `json:"error,omitempty"`
	// Stream is the server-assigned stream name ("conn-N") when drift
	// monitoring is on; look it up under /health/stream/<Stream>.
	Stream string `json:"stream,omitempty"`
	// DriftEvents counts the drift events the stream's monitor generated.
	DriftEvents int64 `json:"drift_events,omitempty"`
	// Tenant echoes the tenant the stream was accounted to (fleet servers).
	Tenant uint32 `json:"tenant,omitempty"`
	// Shed counts frames the fleet declined under admission control or
	// queue backpressure; Frames counts only the decoded ones, so
	// Frames+Shed is what the client sent.
	Shed int64 `json:"shed,omitempty"`
	// Overload marks a stream the fleet shed — entirely (admission refused,
	// Frames == 0) or partially (Shed > 0). SendTrace surfaces it as
	// ErrOverload.
	Overload bool `json:"overload,omitempty"`
}

// Catalog maps circuit fingerprints to frame scorers: the server's view of
// which circuits it can decode. Safe for concurrent use.
type Catalog struct {
	mu sync.RWMutex
	m  map[[16]byte]FrameScorer
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{m: map[[16]byte]FrameScorer{}}
}

// Register adds (or replaces) the scorer serving fingerprint fp.
func (c *Catalog) Register(fp [16]byte, s FrameScorer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[fp] = s
}

// Len returns how many fingerprints are registered.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Resolve returns the scorer for h's fingerprint, verifying the trace
// geometry against the scorer's circuit when the scorer exposes it (as
// *mc.FrameDecoder does).
func (c *Catalog) Resolve(h Header) (FrameScorer, error) {
	c.mu.RLock()
	s, ok := c.m[h.Fingerprint]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("stream: no decoder registered for circuit fingerprint %x", h.Fingerprint)
	}
	if dims, ok := s.(interface {
		NumDetectors() int
		NumObs() int
	}); ok {
		if dims.NumDetectors() != h.NumDetectors || dims.NumObs() != h.NumObs {
			return nil, fmt.Errorf("stream: trace geometry (%d detectors, %d observables) does not match decoder (%d, %d)",
				h.NumDetectors, h.NumObs, dims.NumDetectors(), dims.NumObs())
		}
	}
	// Round geometry: a windowed decoder (exposing NumRounds, as
	// *mc.WindowedFrameDecoder does) splits each frame by round, so a trace
	// recorded with a different rounds-per-shot would be mis-sliced. v1
	// traces carry no round count (h.Rounds == 0) and are accepted — the
	// decoder's own round map governs the split.
	if rd, ok := s.(interface{ NumRounds() int }); ok && h.Rounds > 0 {
		if rd.NumRounds() != h.Rounds {
			return nil, fmt.Errorf("stream: trace rounds/shot %d does not match decoder rounds %d", h.Rounds, rd.NumRounds())
		}
	}
	return s, nil
}

// Server ingests length-prefixed trace streams over TCP (or any
// net.Listener) and live-decodes them through the replay pipeline. The
// protocol is the trace format itself: a client connects, streams header
// plus frames, half-closes its write side, and receives one JSON Summary
// line. Backpressure is end-to-end — the bounded pipeline queue blocks the
// connection read, which TCP flow control propagates to the sender — so
// server memory stays bounded per stream regardless of client rate.
type Server struct {
	resolve func(Header) (FrameScorer, error)
	opt     PipelineOptions

	metrics serverMetrics
	connSeq atomic.Int64 // stream name sequence for drift monitoring
}

// serverMetrics bundles the server's handles into the shared obs.Registry
// (the one PipelineOptions.Metrics selects), so a /metrics scrape of that
// registry reflects live connection state — not a private copy.
type serverMetrics struct {
	conns    *obs.Counter // stream.server.conns: connections accepted
	active   *obs.Gauge   // stream.server.active: streams being decoded now
	rejected *obs.Counter // stream.server.rejected: streams refused (bad header / unknown circuit)

	// activeN backs the active gauge: gauges are last-value, so concurrent
	// handlers increment this atomic and publish its value.
	activeN atomic.Int64
}

// newServerMetrics resolves the server's handles in reg (nil selects
// obs.Default, obs.Discard disables them).
func newServerMetrics(reg *obs.Registry) serverMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return serverMetrics{
		conns:    reg.Counter("stream.server.conns"),
		active:   reg.Gauge("stream.server.active"),
		rejected: reg.Counter("stream.server.rejected"),
	}
}

// connStarted records a connection entering decode and publishes the new
// active count; the returned func records it leaving.
func (m *serverMetrics) connStarted() (done func()) {
	m.active.Set(float64(m.activeN.Add(1)))
	return func() { m.active.Set(float64(m.activeN.Add(-1))) }
}

// NewServer returns a server resolving incoming streams through resolve
// (typically Catalog.Resolve) and decoding them with opt. Metrics land in
// opt.Metrics. When opt.Estimator.Window > 0 every connection gets its own
// drift monitor under a server-assigned stream name ("conn-1", "conn-2",
// ...), registered in opt.Estimator.Health when set; note each name adds a
// stream.drift.qubits.<name> gauge to the registry, so a long-lived server
// with monitoring on accumulates one gauge per connection.
func NewServer(resolve func(Header) (FrameScorer, error), opt PipelineOptions) *Server {
	return &Server{
		resolve: resolve,
		opt:     opt,
		metrics: newServerMetrics(opt.Metrics),
	}
}

// Serve accepts connections from ln until ctx is canceled, decoding each
// stream concurrently. Shutdown is draining: cancellation closes the
// listener and unblocks in-flight connection reads, each pipeline drains
// its queued frames, and Serve returns only after every handler has
// finished. A cancellation-triggered shutdown returns nil; any other
// accept failure is returned after the same drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		s.metrics.conns.Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handleConn(ctx, conn)
		}()
	}
	wg.Wait()
	// Every handler has drained and finalized its monitor windows; flush the
	// drift-event sink so events from the final partial windows reach the log
	// before Serve returns and the process moves on (or exits). The sink
	// stays open — it is caller-owned and may be shared.
	if err := s.opt.Estimator.Events.Flush(); err != nil && acceptErr == nil {
		acceptErr = fmt.Errorf("stream: flushing drift events: %w", err)
	}
	return acceptErr
}

// handleConn decodes one connection's stream and writes the summary line.
// On cancellation the connection is closed to unblock a pending read; the
// pipeline still drains what was queued, and the summary write is then a
// best-effort no-op on the closed socket.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	ctx, span := obs.StartSpan(ctx, "stream.serve_conn")
	defer span.End()

	done := s.metrics.connStarted()
	defer done()

	r, err := NewReader(conn)
	if err != nil {
		s.metrics.rejected.Inc()
		span.Event("rejected")
		writeSummary(conn, Summary{Error: err.Error()})
		return
	}
	scorer, err := s.resolve(r.Header())
	if err != nil {
		s.metrics.rejected.Inc()
		span.Event("rejected")
		writeSummary(conn, Summary{Error: err.Error()})
		return
	}
	opt := s.opt
	if opt.Estimator.Window > 0 {
		opt.Estimator.Stream = fmt.Sprintf("conn-%d", s.connSeq.Add(1))
	}
	stats, rerr := Replay(ctx, r, scorer, opt)
	sum := Summary{Frames: stats.Frames, Failures: stats.Failures, Truncated: stats.Truncated}
	if opt.Estimator.Window > 0 {
		sum.Stream = opt.Estimator.Stream
		sum.DriftEvents = stats.DriftEvents
	}
	if stats.Frames > 0 {
		sum.LER = float64(stats.Failures) / float64(stats.Frames)
	}
	if rerr != nil && !errors.Is(rerr, ErrTruncated) {
		sum.Error = rerr.Error()
	}
	span.SetAttr("frames", stats.Frames)
	writeSummary(conn, sum)
}

// writeSummary sends one JSON summary line; errors are ignored (the peer
// may already be gone, and the stream stats were recorded regardless).
func writeSummary(w io.Writer, sum Summary) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(sum)
}

// CloseWriter is the half-close capability SendTrace needs from its
// connection; *net.TCPConn implements it.
type CloseWriter interface {
	CloseWrite() error
}

// SendTrace streams an already-encoded trace from tr to conn, half-closes
// the write side so the server sees end-of-stream, and decodes the server's
// summary line. The caller owns conn (set deadlines there for timeouts) and
// closes it afterwards.
//
// When the server sheds the stream the returned error wraps ErrOverload and
// the Summary still carries the server's accounting (admitted frames, shed
// count, tenant). This holds even when the send itself fails mid-copy: a
// fleet server that refuses admission writes its rejection summary and
// closes, which surfaces client-side as a write error (EPIPE/RST) — before
// reporting corruption, SendTrace reads whatever summary the server managed
// to send and classifies from it.
func SendTrace(conn io.ReadWriter, tr io.Reader) (Summary, error) {
	cw, ok := conn.(CloseWriter)
	if !ok {
		return Summary{}, fmt.Errorf("stream: connection %T cannot half-close; SendTrace requires a CloseWriter", conn)
	}
	// An I/O failure here may be the server closing on us after writing a
	// rejection summary, so fall through to the summary read either way; a
	// broken connection makes that read fail fast rather than block.
	copyErr := func() error {
		if _, err := io.Copy(conn, tr); err != nil {
			return fmt.Errorf("stream: sending trace: %w", err)
		}
		if err := cw.CloseWrite(); err != nil {
			return fmt.Errorf("stream: half-closing: %w", err)
		}
		return nil
	}()
	var sum Summary
	if err := json.NewDecoder(conn).Decode(&sum); err != nil {
		if copyErr != nil {
			return Summary{}, copyErr
		}
		return Summary{}, fmt.Errorf("stream: reading summary: %w", err)
	}
	if sum.Overload {
		return sum, fmt.Errorf("%w: %d frames admitted, %d shed (tenant %d)", ErrOverload, sum.Frames, sum.Shed, sum.Tenant)
	}
	if copyErr != nil {
		return sum, copyErr
	}
	return sum, nil
}
