package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// parityScorer fails a frame when the low observable bit is set — the
// deterministic stand-in for a real decoder in monitor tests.
type parityScorer struct{}

func (parityScorer) ScoreFrame(syndrome []int, actual uint64) bool { return actual&1 == 1 }

// driftTrace synthesizes steadyW windows of steady behaviour followed by
// driftW drifting windows of `window` frames each over numDet detectors.
// Steady: detector i%numDet fires each frame, 2% of frames fail. Drifting:
// detector hotDet additionally fires every frame and 30% of frames fail.
func driftTrace(t testing.TB, numDet, window, steadyW, driftW, hotDet int) []byte {
	t.Helper()
	var buf bytes.Buffer
	n := (steadyW + driftW) * window
	w, err := stream.NewWriter(&buf, stream.Header{NumDetectors: numDet, NumObs: 1, Shots: uint64(n)})
	if err != nil {
		t.Fatal(err)
	}
	for wi := 0; wi < steadyW+driftW; wi++ {
		hot := wi >= steadyW
		for i := 0; i < window; i++ {
			idx := wi*window + i
			syn := []int{idx % numDet}
			if hot && syn[0] != hotDet {
				if syn[0] < hotDet {
					syn = append(syn, hotDet)
				} else {
					syn = []int{hotDet, syn[0]}
				}
			}
			failEvery := 50 // 2%
			if hot {
				failEvery = 3 // ~33%
			}
			var o uint64
			if i%failEvery == 0 {
				o = 1
			}
			if err := w.WriteSyndrome(syn, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

func testEstimator(window int) stream.EstimatorConfig {
	return stream.EstimatorConfig{
		Window:          window,
		EWMAShift:       2,
		Slack:           0.02,
		Threshold:       0.1,
		BaselineWindows: 4,
		LERZ:            3,
	}
}

// TestMonitorDetectsDrift: the synthetic step trace must produce fire-rate
// events attributed to the hot detector and LER events, while the steady
// prefix alone produces none.
func TestMonitorDetectsDrift(t *testing.T) {
	const numDet, window, hotDet = 4, 100, 2

	// Steady control: no events at all.
	steady := driftTrace(t, numDet, window, 8, 0, hotDet)
	r, err := stream.NewReader(bytes.NewReader(steady))
	if err != nil {
		t.Fatal(err)
	}
	health := stream.NewHealthRegistry()
	opt := stream.PipelineOptions{Workers: 2, Metrics: obs.Discard, Estimator: testEstimator(window)}
	opt.Estimator.Health = health
	stats, err := stream.Replay(context.Background(), r, parityScorer{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DriftEvents != 0 {
		t.Fatalf("steady trace produced %d drift events", stats.DriftEvents)
	}
	snap := health.Get("replay").Snapshot()
	if len(snap.Drifting) != 0 || len(snap.DriftingQubits) != 0 {
		t.Fatalf("steady snapshot flags drift: %+v", snap)
	}
	if snap.Windows != 8 || snap.PendingFrames != 0 {
		t.Fatalf("windows=%d pending=%d, want 8/0", snap.Windows, snap.PendingFrames)
	}

	// Step trace: 4 baseline + 2 steady + 4 drifting windows.
	var events bytes.Buffer
	sink := obs.NewEventSink(&events, 64)
	raw := driftTrace(t, numDet, window, 6, 4, hotDet)
	r, err = stream.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	opt.Estimator.Events = sink
	stats, err = stream.Replay(context.Background(), r, parityScorer{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.DriftEvents == 0 {
		t.Fatal("drifting trace produced no events")
	}
	if sink.Emitted() != stats.DriftEvents || sink.Dropped() != 0 {
		t.Fatalf("sink emitted=%d dropped=%d, stats counted %d", sink.Emitted(), sink.Dropped(), stats.DriftEvents)
	}

	var sawFire, sawLER bool
	dec := json.NewDecoder(&events)
	for dec.More() {
		var ev stream.DriftEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case stream.DriftFireRate:
			sawFire = true
			if ev.Detector != hotDet {
				t.Fatalf("fire-rate event on detector %d, only %d drifts", ev.Detector, hotDet)
			}
			// First drifting window is the 7th (1-based); a 10x step must
			// trip immediately.
			if ev.Window < 7 {
				t.Fatalf("fire-rate event in window %d, before the step", ev.Window)
			}
			if ev.Severity != stream.SeverityCrit {
				t.Errorf("10x fire-rate step flagged %q, want crit", ev.Severity)
			}
		case stream.DriftLER:
			sawLER = true
			if ev.Detector != -1 || ev.Window < 7 {
				t.Fatalf("malformed LER event: %+v", ev)
			}
			if ev.RateLo <= ev.BaselineHi {
				t.Fatalf("LER event without interval separation: %+v", ev)
			}
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
	}
	if !sawFire || !sawLER {
		t.Fatalf("event kinds missing: fire=%v ler=%v", sawFire, sawLER)
	}

	snap = health.Get("replay").Snapshot()
	if len(snap.Drifting) != 1 || snap.Drifting[0].Detector != hotDet {
		t.Fatalf("drifting detectors %+v, want exactly detector %d", snap.Drifting, hotDet)
	}
	if snap.Events != stats.DriftEvents || snap.DroppedEvents != 0 {
		t.Fatalf("snapshot events=%d dropped=%d, want %d/0", snap.Events, snap.DroppedEvents, stats.DriftEvents)
	}
	if snap.LER <= snap.BaselineLER {
		t.Fatalf("rolling LER %g not above baseline %g after the step", snap.LER, snap.BaselineLER)
	}
}

// TestHealthDeterminismAcrossWorkers: the same trace must yield a
// byte-identical HealthSnapshot JSON encoding and a byte-identical drift
// event log whether one worker or eight raced over the frames.
func TestHealthDeterminismAcrossWorkers(t *testing.T) {
	raw := driftTrace(t, 4, 100, 6, 4, 2)
	run := func(workers int) (snapJSON, eventLog []byte) {
		t.Helper()
		r, err := stream.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var events bytes.Buffer
		sink := obs.NewEventSink(&events, 256)
		health := stream.NewHealthRegistry()
		opt := stream.PipelineOptions{Workers: workers, Metrics: obs.Discard, Estimator: testEstimator(100)}
		opt.Estimator.Health = health
		opt.Estimator.Events = sink
		if _, err := stream.Replay(context.Background(), r, parityScorer{}, opt); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(health.Get("replay").Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return js, events.Bytes()
	}
	snap1, ev1 := run(1)
	snap8, ev8 := run(8)
	if !bytes.Equal(snap1, snap8) {
		t.Errorf("snapshots diverge across worker counts:\n 1: %s\n 8: %s", snap1, snap8)
	}
	if !bytes.Equal(ev1, ev8) {
		t.Errorf("event logs diverge across worker counts:\n 1: %s\n 8: %s", ev1, ev8)
	}
	if len(ev1) == 0 {
		t.Error("determinism test vacuous: no events generated")
	}
}

// TestHealthEndpoint: /health lists every stream sorted by name,
// /health/stream/<id> serves one, unknown streams 404.
func TestHealthEndpoint(t *testing.T) {
	raw := driftTrace(t, 4, 100, 6, 4, 2)
	health := stream.NewHealthRegistry()
	for _, name := range []string{"beta", "alpha"} {
		r, err := stream.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		opt := stream.PipelineOptions{Workers: 2, Metrics: obs.Discard, Estimator: testEstimator(100)}
		opt.Estimator.Health = health
		opt.Estimator.Stream = name
		if _, err := stream.Replay(context.Background(), r, parityScorer{}, opt); err != nil {
			t.Fatal(err)
		}
	}

	h := health.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != 200 {
		t.Fatalf("/health status %d", rec.Code)
	}
	var rep struct {
		Streams []stream.HealthSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Streams) != 2 || rep.Streams[0].Stream != "alpha" || rep.Streams[1].Stream != "beta" {
		t.Fatalf("/health streams: %+v", rep.Streams)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/health/stream/alpha", nil))
	if rec.Code != 200 {
		t.Fatalf("/health/stream/alpha status %d", rec.Code)
	}
	var snap stream.HealthSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Stream != "alpha" || snap.Frames != 1000 || len(snap.Drifting) != 1 {
		t.Fatalf("/health/stream/alpha snapshot: %+v", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/health/stream/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown stream status %d, want 404", rec.Code)
	}
}

// TestServerDriftMonitoring: a server with the estimator enabled assigns
// per-connection stream names, reports drift in the summary, and exposes
// the monitor through the health registry.
func TestServerDriftMonitoring(t *testing.T) {
	raw := driftTrace(t, 4, 100, 6, 4, 2)
	health := stream.NewHealthRegistry()
	opt := stream.PipelineOptions{Workers: 2, Metrics: obs.Discard, Estimator: testEstimator(100)}
	opt.Estimator.Health = health
	srv := stream.NewServer(func(stream.Header) (stream.FrameScorer, error) {
		return parityScorer{}, nil
	}, opt)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stream.SendTrace(conn.(*net.TCPConn), bytes.NewReader(raw))
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stream != "conn-1" {
		t.Fatalf("summary stream %q, want conn-1", sum.Stream)
	}
	if sum.DriftEvents == 0 {
		t.Fatal("summary reports no drift events")
	}
	snap := health.Get("conn-1").Snapshot()
	if snap.Frames != 1000 || len(snap.Drifting) != 1 {
		t.Fatalf("conn-1 snapshot: %+v", snap)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServerMetricsLiveInSharedRegistry: the server's connection metrics
// must land in the caller's registry so a /metrics scrape mid-stream shows
// the live connection, not a stale private copy.
func TestServerMetricsLiveInSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry(nil)
	gate := make(chan struct{})
	scorer := &gatedScorer{gate: gate}
	srv := stream.NewServer(func(stream.Header) (stream.FrameScorer, error) {
		return scorer, nil
	}, stream.PipelineOptions{Workers: 1, QueueDepth: 4, Metrics: reg})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	raw := syntheticTrace(t, 8, 32)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}

	// scrape fetches one metric from the registry's HTTP handler — the same
	// path `caliqec serve -debug-addr` exposes.
	scrape := func(name string) float64 {
		rec := httptest.NewRecorder()
		reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		var m map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		raw, ok := m[name]
		if !ok {
			return 0
		}
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	// The decode stage is gated, so the connection stays active until we
	// release it; /metrics must show it live.
	waitFor(t, func() bool { return scrape("stream.server.active") == 1 }) //lint:allow floateq JSON round-trips the exact gauge integer
	if scrape("stream.server.conns") != 1 {                                //lint:allow floateq exact small integer
		t.Fatalf("conns = %g mid-stream, want 1", scrape("stream.server.conns"))
	}

	close(gate)
	var sum stream.Summary
	if err := json.NewDecoder(conn).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if sum.Frames != 32 {
		t.Fatalf("summary frames %d, want 32", sum.Frames)
	}
	waitFor(t, func() bool { return scrape("stream.server.active") == 0 }) //lint:allow floateq exact small integer

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestMonitorNilSafety: a nil monitor and zero-window configs are inert.
func TestMonitorNilSafety(t *testing.T) {
	var m *stream.Monitor
	m.Observe(0, []int{1}, true)
	if s := m.Snapshot(); s.Frames != 0 {
		t.Fatalf("nil monitor snapshot: %+v", s)
	}
	if m.Events() != 0 || m.Stream() != "" {
		t.Fatal("nil monitor not inert")
	}
	var h *stream.HealthRegistry
	h.Register(nil)
	h.Unregister("x")
	if h.Get("x") != nil || h.Streams() != nil {
		t.Fatal("nil registry not inert")
	}
}
