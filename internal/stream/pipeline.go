package stream

import (
	"caliqec/internal/obs"
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
)

// FrameScorer scores one frame: given the sorted fired-detector list and
// the sampled observable mask, it reports whether the frame is a logical
// failure. *mc.FrameDecoder is the production implementation (cached graph,
// pooled union-find decoders); tests substitute gated fakes to exercise
// backpressure. Implementations must be safe for concurrent use.
type FrameScorer interface {
	ScoreFrame(syndrome []int, actual uint64) bool
}

// PipelineOptions configures a replay/live-decode run.
type PipelineOptions struct {
	// Workers is the decode fan-out; ≤ 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the frame queue between the stream reader and the
	// decode workers; ≤ 0 selects 256. The queue is the only buffering in
	// the pipeline, so memory stays bounded no matter how fast frames
	// arrive: a full queue blocks the reader, which for network streams
	// pushes back to the sender through TCP flow control.
	QueueDepth int
	// Metrics selects the registry per-stream metrics land in; nil selects
	// obs.Default, obs.Discard disables them.
	Metrics *obs.Registry
	// Estimator configures drift monitoring over the decoded frames; the
	// zero value (Window 0) disables it and the pipeline runs exactly as
	// before.
	Estimator EstimatorConfig
}

func (opt PipelineOptions) workers() int {
	if opt.Workers > 0 {
		return opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (opt PipelineOptions) queueDepth() int {
	if opt.QueueDepth > 0 {
		return opt.QueueDepth
	}
	return 256
}

// Stats summarizes one replayed stream.
type Stats struct {
	// Frames is the number of frames decoded; Failures of them scored as
	// logical failures.
	Frames   int
	Failures int
	// Truncated reports the stream ended early but every delivered frame
	// was intact (the ErrTruncated recovery path).
	Truncated bool
	// DriftEvents is the number of drift events the estimator monitor
	// generated; always 0 when monitoring is disabled.
	DriftEvents int64
}

// pipelineMetrics holds the per-stream metric handles, resolved once per
// replay. Nil handles (Discard) make every update a no-op.
type pipelineMetrics struct {
	registry   *obs.Registry
	replays    *obs.Counter   // stream.replays: streams fully processed
	frames     *obs.Counter   // stream.frames: frames decoded
	failures   *obs.Counter   // stream.failures: logical failures scored
	truncated  *obs.Counter   // stream.truncated: streams that ended mid-frame
	queueDepth *obs.Gauge     // stream.queue.depth: frames waiting for a worker
	latency    *obs.Histogram // stream.decode.latency: per-frame decode wall ns
}

func newPipelineMetrics(r *obs.Registry) pipelineMetrics {
	if r == nil {
		r = obs.Default
	}
	return pipelineMetrics{
		registry:   r,
		replays:    r.Counter("stream.replays"),
		frames:     r.Counter("stream.frames"),
		failures:   r.Counter("stream.failures"),
		truncated:  r.Counter("stream.truncated"),
		queueDepth: r.Gauge("stream.queue.depth"),
		latency:    r.Histogram("stream.decode.latency"),
	}
}

// Replay feeds every frame of r through scorer over a bounded-queue worker
// pipeline and returns the aggregate stats. One goroutine reads frames and
// enqueues them; opt.Workers goroutines dequeue, decode and score. The
// queue is bounded (PipelineOptions.QueueDepth), so a slow decode applies
// backpressure to the reader instead of buffering the stream in memory.
//
// Termination:
//
//   - Clean end of a complete trace: returns the totals with a nil error.
//   - Truncated trace: returns the totals over the delivered frames with
//     Stats.Truncated set and an error wrapping ErrTruncated; callers that
//     tolerate partial traces test with errors.Is.
//   - Corrupt trace or read failure: totals so far plus the error.
//   - Context cancellation: the reader stops promptly, the workers drain
//     every frame already queued (bounded by QueueDepth, so the drain is
//     prompt too), and Replay returns the partial totals with ctx.Err().
//
// Replay is deterministic in its counts: scoring is per-frame and the sum
// is order-independent, so worker count and queue depth never change the
// result — the property the round-trip oracle tests rely on.
func Replay(ctx context.Context, r *Reader, scorer FrameScorer, opt PipelineOptions) (Stats, error) {
	m := newPipelineMetrics(opt.Metrics)
	ctx, span := obs.StartSpan(ctx, "stream.replay")
	defer span.End()
	span.SetAttr("detectors", r.Header().NumDetectors)

	// The drift monitor observes every scored frame, keyed by the frame's
	// stream position so its windows are identical across worker counts.
	var mon *Monitor
	if opt.Estimator.Window > 0 {
		mon = NewMonitor(opt.Estimator, scorer, r.Header(), m.registry)
		opt.Estimator.Health.Register(mon)
	}

	type job struct {
		idx    int64
		packed []byte
		obs    uint64
	}
	jobs := make(chan job, opt.queueDepth())
	bufs := sync.Pool{New: func() interface{} { return make([]byte, r.FrameBytes()) }}

	// The reader goroutine owns the jobs channel: it is the only sender and
	// closes it on every exit path, so workers always terminate by channel
	// closure. readErr is written before the close and read after the
	// workers are joined, which orders the accesses.
	var readErr error
	go func() {
		defer close(jobs)
		var f Frame
		var idx int64
		for {
			if err := ctx.Err(); err != nil {
				readErr = err
				return
			}
			err := r.Next(&f)
			if err == io.EOF {
				return
			}
			if err != nil {
				readErr = err
				return
			}
			buf := bufs.Get().([]byte)
			copy(buf, f.Packed)
			select {
			case jobs <- job{idx: idx, packed: buf, obs: f.Obs}:
				idx++
				m.queueDepth.Set(float64(len(jobs)))
			case <-ctx.Done():
				readErr = ctx.Err()
				return
			}
		}
	}()

	var (
		mu     sync.Mutex
		totals Stats
		wg     sync.WaitGroup
	)
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			syn := make([]int, 0, r.Header().NumDetectors)
			frames, failures := 0, 0
			for j := range jobs {
				f := Frame{Obs: j.obs, Packed: j.packed}
				syn = f.Syndrome(syn[:0])
				var failed bool
				if m.latency != nil {
					start := m.registry.Now()
					failed = scorer.ScoreFrame(syn, j.obs)
					m.latency.Observe(m.registry.Now().Sub(start).Nanoseconds())
				} else {
					failed = scorer.ScoreFrame(syn, j.obs)
				}
				if failed {
					failures++
				}
				mon.Observe(j.idx, syn, failed)
				frames++
				bufs.Put(j.packed)
			}
			mu.Lock()
			totals.Frames += frames
			totals.Failures += failures
			mu.Unlock()
		}()
	}
	wg.Wait()
	// The stream has ended on every path (clean, truncated, corrupt,
	// cancelled): flush the monitor's trailing partial window so drift in it
	// still produces events before the summary is written.
	mon.Finalize()
	m.queueDepth.Set(0)
	m.frames.Add(int64(totals.Frames))
	m.failures.Add(int64(totals.Failures))
	m.replays.Inc()
	span.SetAttr("frames", totals.Frames)
	span.SetAttr("failures", totals.Failures)
	if mon != nil {
		totals.DriftEvents = mon.Events()
		if totals.DriftEvents > 0 {
			span.Event("drift")
			span.SetAttr("drift_events", totals.DriftEvents)
		}
	}

	switch {
	case readErr == nil:
		return totals, nil
	case errors.Is(readErr, ErrTruncated):
		totals.Truncated = true
		m.truncated.Inc()
		span.Event("truncated")
		return totals, readErr
	default:
		span.Event("aborted")
		return totals, readErr
	}
}
