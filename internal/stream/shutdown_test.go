package stream_test

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// TestServerShutdownFlushesPartialWindowEvents is the shutdown-ordering
// regression test: a client streams one clean baseline window plus a final
// PARTIAL window containing a hot detector, keeps its write side open, and
// the server is cancelled. The drift event from that partial window must
// still be on the event sink's writer by the time Serve returns — i.e. the
// draining handler finalized the monitor's pending window and Serve flushed
// the sink before handing control back. Before that ordering existed, the
// trailing frames never reached the estimators and the event was lost.
func TestServerShutdownFlushesPartialWindowEvents(t *testing.T) {
	const (
		numDet = 8
		window = 100
		steady = window // one full window to learn the baseline
		tail   = 50     // final partial window carrying the drift
		hotDet = 3
	)

	// Open-ended trace (Shots 0): steady frames fire detector i%numDet;
	// tail frames all fire hotDet, pushing its windowed rate from ~1/8 to
	// 1.0 — far past the CUSUM threshold once the baseline window is done.
	var trace bytes.Buffer
	w, err := stream.NewWriter(&trace, stream.Header{NumDetectors: numDet, NumObs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steady+tail; i++ {
		packed := make([]byte, stream.FrameBytes(numDet))
		d := i % numDet
		if i >= steady {
			d = hotDet
		}
		packed[d/8] |= 1 << (d % 8)
		if err := w.WriteFrame(packed, 0); err != nil {
			t.Fatal(err)
		}
	}

	var events bytes.Buffer
	sink := obs.NewEventSink(&events, 64)
	defer sink.Close()
	health := stream.NewHealthRegistry()
	addr, cancel, served := startTestServer(t,
		func(stream.Header) (stream.FrameScorer, error) { return parityScorer{}, nil },
		stream.PipelineOptions{
			Workers: 2, Metrics: obs.Discard,
			Estimator: stream.EstimatorConfig{
				Window:          window,
				BaselineWindows: 1,
				Health:          health,
				Events:          sink,
			},
		})
	defer cancel()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(trace.Bytes()); err != nil {
		t.Fatal(err)
	}
	// No half-close: from the server's view the stream never ends, so only
	// shutdown can finalize the trailing partial window.

	// Wait until every sent frame has been decoded and observed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := health.Get("conn-1")
		if m != nil && m.Snapshot().Frames == steady+tail {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not decode all frames in time")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}

	// The draining handler finalized the pending partial window.
	snap := health.Get("conn-1").Snapshot()
	if snap.Windows != 2 || snap.PendingFrames != 0 {
		t.Fatalf("snapshot after shutdown: %d windows / %d pending frames, want 2 / 0 (partial window finalized)",
			snap.Windows, snap.PendingFrames)
	}

	// And Serve flushed the sink before returning: the hot detector's event
	// is already on the writer, no Close needed to see it. (Reading the
	// buffer here is safe — every sink write happened before Flush acked,
	// which happened before Serve returned.)
	var got []stream.DriftEvent
	for _, line := range bytes.Split(bytes.TrimSpace(events.Bytes()), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev stream.DriftEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		got = append(got, ev)
	}
	found := false
	for _, ev := range got {
		if ev.Kind == stream.DriftFireRate && ev.Detector == hotDet && ev.Window == 2 && ev.Stream == "conn-1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fire-rate event for detector %d in partial window 2 lost at shutdown; sink has %+v", hotDet, got)
	}
	if dropped := sink.Dropped(); dropped != 0 {
		t.Fatalf("%d events dropped", dropped)
	}
}
