package stream_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"caliqec/internal/mc"
	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// TestReplayWindowedDecoder is the streaming half of the windowed
// equivalence contract: a recorded trace replayed through a
// WindowedFrameDecoder with a full window reproduces the whole-shot
// evaluation bit-identically, and a genuinely sliding window (W=3) stays
// within the same statistical tolerance the mc-level ablation enforces.
func TestReplayWindowedDecoder(t *testing.T) {
	spec := memorySpec(t, 3, 3e-3, 3000)
	eng := mc.New(mc.Options{})
	want, err := eng.Evaluate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Failures == 0 {
		t.Fatal("test vacuous: no failures at this noise level")
	}
	raw := recordTrace(t, spec)

	r, err := stream.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.Rounds != spec.Circuit.NumRounds {
		t.Fatalf("trace header rounds %d, circuit has %d", h.Rounds, spec.Circuit.NumRounds)
	}

	// Full window: no mid-stream commits, so the failure count matches
	// Evaluate exactly for any worker fan-out.
	wd, err := eng.WindowedFrameDecoder(spec.Circuit, spec.Circuit.NumRounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		r, err := stream.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := stream.Replay(context.Background(), r, wd,
			stream.PipelineOptions{Workers: workers, Metrics: obs.Discard})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Frames != spec.Shots || stats.Failures != want.Failures {
			t.Fatalf("workers=%d: windowed replay %d failures over %d frames, Evaluate counted %d over %d",
				workers, stats.Failures, stats.Frames, want.Failures, spec.Shots)
		}
	}

	// Sliding window: commits happen mid-shot; the count may drift within
	// noise but a broken commit rule multiplies it.
	wd3, err := eng.WindowedFrameDecoder(spec.Circuit, 3)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := stream.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := stream.Replay(context.Background(), r3, wd3,
		stream.PipelineOptions{Workers: 2, Metrics: obs.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != spec.Shots {
		t.Fatalf("W=3 replay saw %d frames, want %d", stats.Frames, spec.Shots)
	}
	diff := stats.Failures - want.Failures
	if diff < 0 {
		diff = -diff
	}
	if tol := want.Failures/2 + 10; diff > tol {
		t.Fatalf("W=3 replay counted %d failures vs whole-shot %d (tolerance %d)",
			stats.Failures, want.Failures, tol)
	}
}

// TestCatalogResolveRoundMismatch: a trace whose header advertises a
// rounds-per-shot different from the registered windowed decoder must be
// refused, while a v1 trace (no round metadata) is still served.
func TestCatalogResolveRoundMismatch(t *testing.T) {
	spec := memorySpec(t, 3, 3e-3, 10)
	wd, err := mc.New(mc.Options{}).WindowedFrameDecoder(spec.Circuit, 3)
	if err != nil {
		t.Fatal(err)
	}
	cat := stream.NewCatalog()
	cat.Register(wd.CircuitFingerprint(), wd)

	h := stream.Header{
		Fingerprint:  wd.CircuitFingerprint(),
		NumDetectors: wd.NumDetectors(),
		NumObs:       wd.NumObs(),
		Rounds:       wd.NumRounds() + 1,
	}
	if _, err := cat.Resolve(h); err == nil {
		t.Fatal("round-count mismatch accepted")
	} else if !strings.Contains(err.Error(), "rounds") {
		t.Fatalf("unexpected error: %v", err)
	}

	h.Rounds = wd.NumRounds()
	if _, err := cat.Resolve(h); err != nil {
		t.Fatalf("matching rounds rejected: %v", err)
	}
	h.Rounds = 0 // v1 trace: no round metadata recorded
	if _, err := cat.Resolve(h); err != nil {
		t.Fatalf("v1 trace rejected: %v", err)
	}
}
