package stream_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"caliqec/internal/mc"
	"caliqec/internal/obs"
	"caliqec/internal/stream"
)

// startTestServer spins a server on a loopback listener and returns the
// address, the cancel handle, and the Serve result channel.
func startTestServer(t *testing.T, resolve func(stream.Header) (stream.FrameScorer, error), opt stream.PipelineOptions) (net.Addr, context.CancelFunc, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := stream.NewServer(resolve, opt)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	return ln.Addr(), cancel, served
}

// TestServerTruncatedFinalFrame: a client whose stream dies halfway through
// its last frame still gets a summary — every complete frame decoded, the
// truncation flagged, and no error (truncation is a stream property, not a
// server failure).
func TestServerTruncatedFinalFrame(t *testing.T) {
	spec := memorySpec(t, 3, 3e-3, 300)
	eng := mc.New(mc.Options{})
	raw := recordTrace(t, spec)
	fd, err := eng.FrameDecoder(spec.Circuit, spec.Decoder)
	if err != nil {
		t.Fatal(err)
	}
	cat := stream.NewCatalog()
	cat.Register(fd.CircuitFingerprint(), fd)
	addr, cancel, served := startTestServer(t, cat.Resolve, stream.PipelineOptions{Workers: 2, Metrics: obs.Discard})
	defer cancel()

	frameLen := 4 + 8 + stream.FrameBytes(spec.Circuit.NumDetectors) + 4
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sum, err := stream.SendTrace(conn, bytes.NewReader(raw[:len(raw)-frameLen/2]))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Truncated {
		t.Fatalf("summary %+v: truncation not flagged", sum)
	}
	if sum.Frames != spec.Shots-1 {
		t.Fatalf("summary counted %d frames, want %d (all complete ones)", sum.Frames, spec.Shots-1)
	}
	if sum.Error != "" {
		t.Fatalf("truncation reported as server error: %q", sum.Error)
	}
	cancel()
	<-served
}

// TestServerConcurrentCancellation: with several clients stalled mid-stream
// (header and a few frames sent, write side still open) and one completed,
// cancelling the server must (a) have answered the completed client
// correctly, (b) unblock every stalled connection, and (c) return from
// Serve after the drain — no handler leak, no hang.
func TestServerConcurrentCancellation(t *testing.T) {
	spec := memorySpec(t, 3, 3e-3, 400)
	eng := mc.New(mc.Options{})
	want, err := eng.Evaluate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	raw := recordTrace(t, spec)
	fd, err := eng.FrameDecoder(spec.Circuit, spec.Decoder)
	if err != nil {
		t.Fatal(err)
	}
	cat := stream.NewCatalog()
	cat.Register(fd.CircuitFingerprint(), fd)
	addr, cancel, served := startTestServer(t, cat.Resolve, stream.PipelineOptions{Workers: 2, Metrics: obs.Discard})
	defer cancel()

	// One client runs to completion first; its summary must be exact.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stream.SendTrace(conn, bytes.NewReader(raw))
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Error != "" || sum.Frames != spec.Shots || sum.Failures != want.Failures {
		t.Fatalf("completed client summary %+v, want %d frames / %d failures", sum, spec.Shots, want.Failures)
	}

	// Several clients stall mid-stream with their write sides open.
	const stalled = 3
	frameLen := 4 + 8 + stream.FrameBytes(spec.Circuit.NumDetectors) + 4
	partial := len(raw) - 10*frameLen - frameLen/2 // mid-frame, 10 frames short
	conns := make([]net.Conn, stalled)
	for i := range conns {
		c, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Write(raw[:partial]); err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	// Let the server read into each stalled stream before cancelling, so
	// cancellation races against genuinely in-flight decodes.
	time.Sleep(50 * time.Millisecond)

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return with stalled connections in flight")
	}

	// Every stalled connection was closed server-side; reads unblock.
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := io.ReadAll(c); err != nil {
				// Reset or deadline are both fine — the point is the read
				// ended; only a deadline timeout marks a leak.
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					t.Errorf("client %d: read still blocked after shutdown", i)
				}
			}
		}(i, c)
	}
	wg.Wait()
}
