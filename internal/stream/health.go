package stream

import (
	"caliqec/internal/obs"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// EstimatorConfig configures the per-stream drift monitor the replay
// pipeline feeds. The zero value disables monitoring; setting Window (frames
// per estimator window) enables it with defaults for everything else.
//
// Determinism contract: with a fixed config, the same trace produces the
// same window sequence, the same estimator states, the same drift events in
// the same order, and a byte-identical HealthSnapshot JSON encoding — no
// matter how many decode workers raced over the frames. The monitor buckets
// frames by their stream position (additive integer counts, order-free
// within a window) and finalizes windows strictly in ascending order, so
// scheduling never reaches the estimators.
type EstimatorConfig struct {
	// Window is the estimator window in frames; <= 0 disables monitoring.
	Window int
	// EWMAShift sets the fire-rate smoothing alpha = 2^-EWMAShift; 0 selects 3.
	EWMAShift uint
	// Slack is the CUSUM allowance per window (rate units); 0 selects 0.01.
	Slack float64
	// Threshold is the CUSUM trip threshold (rate units); 0 selects 0.05.
	Threshold float64
	// BaselineWindows is how many initial windows learn the LER baseline and
	// warm up the fire-rate estimators; 0 selects 4.
	BaselineWindows int
	// LERZ is the z-score of the Wilson intervals used for LER drift
	// (baseline vs window separation); 0 selects 3 (~99.7%).
	LERZ float64
	// Stream names this stream in events, metrics and /health; "" selects
	// "replay". The server overrides it per connection.
	Stream string
	// Health, when non-nil, receives the monitor for /health serving.
	Health *HealthRegistry
	// Events, when non-nil, receives one JSON line per drift event.
	Events *obs.EventSink
}

func (c EstimatorConfig) resolved() EstimatorConfig {
	if c.EWMAShift == 0 {
		c.EWMAShift = 3
	}
	if c.Slack <= 0 {
		c.Slack = 0.01
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.05
	}
	if c.BaselineWindows <= 0 {
		c.BaselineWindows = 4
	}
	if c.LERZ <= 0 {
		c.LERZ = 3
	}
	if c.Stream == "" {
		c.Stream = "replay"
	}
	return c
}

// Drift event kinds and severities.
const (
	DriftFireRate = "fire-rate" // a detector's windowed fire rate tripped its CUSUM
	DriftLER      = "ler"       // a window's LER interval cleared the baseline interval

	SeverityWarn = "warn"
	SeverityCrit = "crit"
)

// DriftEvent is one structured drift observation, emitted as a JSON line
// through EstimatorConfig.Events and counted in Stats.DriftEvents. Detector,
// Qubit and Round are -1 when not applicable (LER events) or unknown (no
// qubit attribution in the decoding graph).
type DriftEvent struct {
	Stream   string  `json:"stream"`
	Kind     string  `json:"kind"`
	Severity string  `json:"severity"`
	Window   int64   `json:"window"` // 1-based finalized window index
	Detector int     `json:"detector"`
	Qubit    int     `json:"qubit"`
	Round    int     `json:"round"`
	Rate     float64 `json:"rate"`     // this window's rate (fire rate or LER)
	Baseline float64 `json:"baseline"` // frozen baseline rate
	EWMA     float64 `json:"ewma,omitempty"`
	// Wilson bounds, LER events only: the window's lower bound cleared the
	// baseline's upper bound.
	RateLo     float64 `json:"rate_lo,omitempty"`
	BaselineHi float64 `json:"baseline_hi,omitempty"`
}

// DriftingDetector is one flagged detector in a HealthSnapshot.
type DriftingDetector struct {
	Detector   int     `json:"detector"`
	Qubit      int     `json:"qubit"`
	Round      int     `json:"round"`
	Trips      int64   `json:"trips"`
	LastWindow int64   `json:"last_window"`
	EWMA       float64 `json:"ewma"`
	Baseline   float64 `json:"baseline"`
	Score      float64 `json:"score"`
}

// HealthSnapshot is one stream's health state as served by /health. Every
// float is derived from the monitor's integer state by a fixed expression,
// so identical traces produce byte-identical JSON encodings.
type HealthSnapshot struct {
	Stream        string `json:"stream"`
	WindowSize    int    `json:"window_size"`
	RoundsPerShot int    `json:"rounds_per_shot"`
	Frames        int64  `json:"frames"`
	Failures      int64  `json:"failures"`
	// Windows counts finalized estimator windows; PendingFrames are observed
	// frames not yet part of a finalized window.
	Windows       int64 `json:"windows"`
	PendingFrames int64 `json:"pending_frames"`

	LER         float64 `json:"ler"`
	LERLo       float64 `json:"ler_lo"`
	LERHi       float64 `json:"ler_hi"`
	BaselineLER float64 `json:"baseline_ler"`

	LastWindowFailures int64 `json:"last_window_failures"`

	FireRateEWMA   []float64          `json:"fire_rate_ewma"`
	Drifting       []DriftingDetector `json:"drifting"`
	DriftingQubits []int              `json:"drifting_qubits"`

	Events        int64 `json:"events"`
	DroppedEvents int64 `json:"dropped_events"`
}

// windowBucket accumulates one window's additive counts. Workers touch
// buckets in whatever order they drain the queue; only completed buckets
// reach the estimators, in window order.
type windowBucket struct {
	frames   int
	failures int
	fires    []int64 // per-detector fire count
}

// Monitor is one stream's drift monitor: per-detector fire-rate estimators
// (EWMA + Page/CUSUM over fixed-point integers) plus a windowed-LER check
// against a learned baseline, fed per decoded frame by Replay. Safe for
// concurrent use; all methods are no-ops on a nil receiver.
type Monitor struct {
	cfg     EstimatorConfig
	rateCfg obs.RateConfig
	numDet  int
	rounds  int
	detQ    []int // detector -> qubit, nil when unattributed
	detR    []int // detector -> round, nil when unlayered

	registry    *obs.Registry
	evTotal     *obs.Counter   // stream.drift.events
	evFire      *obs.Counter   // stream.drift.events.fire_rate
	evLER       *obs.Counter   // stream.drift.events.ler
	qubitGauge  *obs.Gauge     // stream.drift.qubits.<stream>
	finalizeLat *obs.Histogram // stream.estimator.update.latency

	mu        sync.Mutex
	frames    int64
	failures  int64
	buckets   map[int64]*windowBucket
	next      int64 // lowest unfinalized window index
	finalized int64 // frames inside finalized windows (≤ frames)
	est       []obs.RateEstimator
	baseFail  int64 // LER baseline accumulators (frozen after BaselineWindows)
	baseN     int64
	lastFails int64 // failures in the most recently finalized window
	events    int64
	dropped   int64
}

// NewMonitor builds a monitor for one stream. Detector-to-qubit and
// detector-to-round attribution is pulled from scorer when it exposes the
// decoding graph's maps (as *mc.FrameDecoder and *mc.WindowedFrameDecoder
// do); otherwise drifting detectors report qubit and round -1. Metrics land
// in reg (nil selects obs.Default; obs.Discard disables them, including the
// estimator-update latency timing). Replay constructs one per stream when
// PipelineOptions.Estimator.Window > 0; construct directly only to feed
// frames outside the pipeline.
func NewMonitor(cfg EstimatorConfig, scorer FrameScorer, h Header, reg *obs.Registry) *Monitor {
	cfg = cfg.resolved()
	if reg == nil {
		reg = obs.Default
	}
	m := &Monitor{
		cfg:    cfg,
		numDet: h.NumDetectors,
		rounds: h.Rounds,
		rateCfg: obs.RateConfig{
			EWMAShift: cfg.EWMAShift,
			Warmup:    cfg.BaselineWindows,
			Slack:     obs.ToFixed(cfg.Slack),
			Threshold: obs.ToFixed(cfg.Threshold),
		},
		registry:    reg,
		evTotal:     reg.Counter("stream.drift.events"),
		evFire:      reg.Counter("stream.drift.events.fire_rate"),
		evLER:       reg.Counter("stream.drift.events.ler"),
		qubitGauge:  reg.Gauge("stream.drift.qubits." + cfg.Stream),
		finalizeLat: reg.Histogram("stream.estimator.update.latency"),
		buckets:     map[int64]*windowBucket{},
		est:         make([]obs.RateEstimator, h.NumDetectors),
	}
	if qs, ok := scorer.(interface{ DetectorQubits() []int }); ok {
		if q := qs.DetectorQubits(); len(q) == m.numDet {
			m.detQ = q
		}
	}
	if rs, ok := scorer.(interface{ DetectorRounds() []int }); ok {
		if r := rs.DetectorRounds(); len(r) == m.numDet {
			m.detR = r
		}
	}
	if m.rounds == 0 {
		if nr, ok := scorer.(interface{ NumRounds() int }); ok {
			m.rounds = nr.NumRounds()
		}
	}
	return m
}

// Stream returns the monitor's stream name.
func (m *Monitor) Stream() string {
	if m == nil {
		return ""
	}
	return m.cfg.Stream
}

// Events returns how many drift events the monitor has generated (whether
// or not an event sink accepted them).
func (m *Monitor) Events() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Observe feeds one decoded frame: idx is the frame's position in the
// stream (assigned by the reader, so it is scheduling-independent),
// syndrome the sorted fired detectors, failed the scorer's verdict. Safe
// for concurrent use from many workers.
func (m *Monitor) Observe(idx int64, syndrome []int, failed bool) {
	if m == nil || m.cfg.Window <= 0 || idx < 0 {
		return
	}
	w := idx / int64(m.cfg.Window)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frames++
	if failed {
		m.failures++
	}
	b := m.buckets[w]
	if b == nil {
		b = &windowBucket{fires: make([]int64, m.numDet)}
		m.buckets[w] = b
	}
	b.frames++
	if failed {
		b.failures++
	}
	for _, d := range syndrome {
		if d >= 0 && d < m.numDet {
			b.fires[d]++
		}
	}
	// Finalize every completed window in ascending order. Windows beyond a
	// still-incomplete one wait in their buckets (the pipeline's bounded
	// queue bounds how many), preserving the deterministic event order.
	for {
		nb := m.buckets[m.next]
		if nb == nil || nb.frames < m.cfg.Window {
			break
		}
		m.finalizeTimed(nb, int64(m.cfg.Window))
		delete(m.buckets, m.next)
		m.finalized += int64(m.cfg.Window)
		m.next++
	}
}

// Finalize flushes the monitor's pending partial windows: every bucket still
// waiting for frames is finalized with its actual frame count as the rate
// denominator, in ascending window order. Call it once the stream has ended
// (Replay does, after the workers drain) so drift in a final partial window
// still produces events and the health snapshot reflects every observed
// frame; without it, up to Window-1 trailing frames would never reach the
// estimators. Further Observe calls after Finalize open new windows past the
// flushed ones. No-op on nil or when monitoring is disabled.
func (m *Monitor) Finalize() {
	if m == nil || m.cfg.Window <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Frame indices are dense, so pending windows are contiguous from next.
	for {
		nb := m.buckets[m.next]
		if nb == nil {
			break
		}
		m.finalizeTimed(nb, int64(nb.frames))
		delete(m.buckets, m.next)
		m.finalized += int64(nb.frames)
		m.next++
	}
}

// finalizeTimed wraps finalizeWindow with the estimator-latency histogram.
// Called with mu held.
func (m *Monitor) finalizeTimed(b *windowBucket, wsize int64) {
	if m.finalizeLat != nil {
		start := m.registry.Now()
		m.finalizeWindow(b, wsize)
		m.finalizeLat.Observe(m.registry.Now().Sub(start).Nanoseconds())
	} else {
		m.finalizeWindow(b, wsize)
	}
}

// finalizeWindow runs the estimator updates for one window and emits drift
// events. wsize is the rate denominator: the configured window for complete
// buckets, the actual frame count for a Finalize-flushed partial one.
// Called with mu held, strictly in window order.
func (m *Monitor) finalizeWindow(b *windowBucket, wsize int64) {
	window := m.next + 1 // 1-based in events, matching RateEstimator.LastTrip
	m.lastFails = int64(b.failures)

	for d := range m.est {
		rate := (b.fires[d] << obs.FPShift) / wsize
		if !m.est[d].Update(m.rateCfg, rate) {
			continue
		}
		e := &m.est[d]
		sev := SeverityWarn
		if rate-e.Baseline()-m.rateCfg.Slack >= 2*m.rateCfg.Threshold {
			sev = SeverityCrit
		}
		m.emit(DriftEvent{
			Stream:   m.cfg.Stream,
			Kind:     DriftFireRate,
			Severity: sev,
			Window:   window,
			Detector: d,
			Qubit:    m.detectorQubit(d),
			Round:    m.detectorRound(d),
			Rate:     obs.FromFixed(rate),
			Baseline: obs.FromFixed(e.Baseline()),
			EWMA:     obs.FromFixed(e.EWMA()),
		}, m.evFire)
	}

	if m.next < int64(m.cfg.BaselineWindows) {
		// Still learning the LER baseline.
		m.baseFail += int64(b.failures)
		m.baseN += wsize
	} else {
		_, baseHi := obs.Wilson(m.baseFail, m.baseN, m.cfg.LERZ)
		wLo, _ := obs.Wilson(int64(b.failures), wsize, m.cfg.LERZ)
		if wLo > baseHi {
			sev := SeverityWarn
			if wLo > 2*baseHi {
				sev = SeverityCrit
			}
			m.emit(DriftEvent{
				Stream:     m.cfg.Stream,
				Kind:       DriftLER,
				Severity:   sev,
				Window:     window,
				Detector:   -1,
				Qubit:      -1,
				Round:      -1,
				Rate:       float64(b.failures) / float64(wsize),
				Baseline:   float64(m.baseFail) / float64(m.baseN),
				RateLo:     wLo,
				BaselineHi: baseHi,
			}, m.evLER)
		}
	}
	m.qubitGauge.Set(float64(len(m.driftingQubitsLocked())))
}

// emit records one drift event: counters, then the sink (non-blocking; a
// full or absent sink only affects delivery, never the counts or the
// estimator state). Called with mu held.
func (m *Monitor) emit(ev DriftEvent, kind *obs.Counter) {
	m.events++
	m.evTotal.Inc()
	kind.Inc()
	if m.cfg.Events != nil && !m.cfg.Events.Emit(ev) {
		m.dropped++
	}
}

func (m *Monitor) detectorQubit(d int) int {
	if d < 0 || d >= len(m.detQ) {
		return -1
	}
	return m.detQ[d]
}

func (m *Monitor) detectorRound(d int) int {
	if d < 0 || d >= len(m.detR) {
		return -1
	}
	return m.detR[d]
}

// driftingQubitsLocked returns the sorted distinct qubits behind tripped
// detectors (unattributed detectors excluded). Called with mu held.
func (m *Monitor) driftingQubitsLocked() []int {
	seen := map[int]bool{}
	for d := range m.est {
		if m.est[d].Trips() > 0 {
			if q := m.detectorQubit(d); q >= 0 {
				seen[q] = true
			}
		}
	}
	qs := make([]int, 0, len(seen))
	for q := range seen {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	return qs
}

// Snapshot returns the stream's current health. Deterministic: identical
// observation sequences produce identical snapshots, byte-for-byte under
// encoding/json.
func (m *Monitor) Snapshot() HealthSnapshot {
	if m == nil {
		return HealthSnapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := HealthSnapshot{
		Stream:             m.cfg.Stream,
		WindowSize:         m.cfg.Window,
		RoundsPerShot:      m.rounds,
		Frames:             m.frames,
		Failures:           m.failures,
		Windows:            m.next,
		PendingFrames:      m.frames - m.finalized,
		LastWindowFailures: m.lastFails,
		FireRateEWMA:       make([]float64, m.numDet),
		Drifting:           []DriftingDetector{},
		DriftingQubits:     m.driftingQubitsLocked(),
		Events:             m.events,
		DroppedEvents:      m.dropped,
	}
	if m.frames > 0 {
		s.LER = float64(m.failures) / float64(m.frames)
		s.LERLo, s.LERHi = obs.Wilson(m.failures, m.frames, m.cfg.LERZ)
	}
	if m.baseN > 0 {
		s.BaselineLER = float64(m.baseFail) / float64(m.baseN)
	}
	for d := range m.est {
		e := &m.est[d]
		s.FireRateEWMA[d] = obs.FromFixed(e.EWMA())
		if e.Trips() > 0 {
			s.Drifting = append(s.Drifting, DriftingDetector{
				Detector:   d,
				Qubit:      m.detectorQubit(d),
				Round:      m.detectorRound(d),
				Trips:      e.Trips(),
				LastWindow: e.LastTrip(),
				EWMA:       obs.FromFixed(e.EWMA()),
				Baseline:   obs.FromFixed(e.Baseline()),
				Score:      obs.FromFixed(e.Score()),
			})
		}
	}
	return s
}

// HealthRegistry aggregates the monitors of live (and recently finished)
// streams and serves them over HTTP. Monitors stay registered after their
// stream completes — /health reports final state — until replaced by a
// same-named stream or removed with Unregister. Safe for concurrent use;
// methods are no-ops on a nil receiver.
type HealthRegistry struct {
	mu   sync.RWMutex
	mons map[string]*Monitor
}

// NewHealthRegistry returns an empty registry.
func NewHealthRegistry() *HealthRegistry {
	return &HealthRegistry{mons: map[string]*Monitor{}}
}

// Register adds m under its stream name, replacing any previous monitor of
// that name.
func (h *HealthRegistry) Register(m *Monitor) {
	if h == nil || m == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mons[m.Stream()] = m
}

// Unregister removes the named stream's monitor.
func (h *HealthRegistry) Unregister(stream string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.mons, stream)
}

// Get returns the named stream's monitor, nil if absent.
func (h *HealthRegistry) Get(stream string) *Monitor {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.mons[stream]
}

// Streams returns the registered stream names, sorted.
func (h *HealthRegistry) Streams() []string {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.mons))
	for n := range h.mons {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// healthReport is the /health response body.
type healthReport struct {
	Streams []HealthSnapshot `json:"streams"`
}

// Handler serves the registry as JSON:
//
//	GET /health             — every stream's snapshot, sorted by stream name
//	GET /health/stream/<id> — one stream's snapshot, 404 when unknown
//
// Mount it at the server root (it routes on the full path), typically next
// to the obs registry's /metrics handler.
func (h *HealthRegistry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/health":
			rep := healthReport{Streams: []HealthSnapshot{}}
			for _, name := range h.Streams() {
				if m := h.Get(name); m != nil {
					rep.Streams = append(rep.Streams, m.Snapshot())
				}
			}
			writeHealthJSON(w, rep)
		case strings.HasPrefix(r.URL.Path, "/health/stream/"):
			name := strings.TrimPrefix(r.URL.Path, "/health/stream/")
			m := h.Get(name)
			if m == nil {
				http.Error(w, "unknown stream "+name, http.StatusNotFound)
				return
			}
			writeHealthJSON(w, m.Snapshot())
		default:
			http.NotFound(w, r)
		}
	})
}

func writeHealthJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
