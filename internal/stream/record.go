package stream

import (
	"caliqec/internal/mc"
	"caliqec/internal/sim"
	"context"
	"fmt"
	"io"
	"math/bits"
)

// Record samples spec's Monte-Carlo shot stream exactly as mc.Evaluate
// would draw it (mc.SampleChunks: ChunkShots-sized shards, per-chunk split
// seeds) and persists it to w as a trace, one frame per shot. The header
// carries the sampled circuit's fingerprint, so replay can verify it is
// decoding against the right graph, and spec.Seed/spec.Shots as metadata.
//
// Because the sampled randomness is bit-identical to an in-process
// evaluation of the same spec, replaying the trace through a FrameDecoder
// built from the same prior reproduces that evaluation's logical failure
// count exactly — the round-trip determinism contract CI enforces.
//
// Returns the number of shots written. On error (including cancellation)
// the trace is left truncated mid-stream; Reader reports it as such.
func Record(ctx context.Context, spec mc.Spec, w io.Writer) (int, error) {
	if spec.Circuit == nil {
		return 0, fmt.Errorf("stream: nil circuit")
	}
	h := Header{
		Fingerprint:  mc.Fingerprint(spec.Circuit),
		NumDetectors: spec.Circuit.NumDetectors,
		NumObs:       spec.Circuit.NumObs,
		Seed:         spec.Seed,
		Shots:        uint64(spec.Shots),
		Rounds:       spec.Circuit.NumRounds,
		DetPerRound:  uniformDetPerRound(spec.Circuit.DetectorRounds(), spec.Circuit.NumRounds),
	}
	tw, err := NewWriter(w, h)
	if err != nil {
		return 0, err
	}
	fb := h.frameBytes()
	// One packed frame per shot of a sampler batch, backed by a single slab.
	slab := make([]byte, sim.LaneShots*fb)
	var packed [sim.LaneShots][]byte
	for s := range packed {
		packed[s] = slab[s*fb : (s+1)*fb]
	}
	var actual [sim.LaneShots]uint64
	written := 0
	err = mc.SampleChunks(ctx, spec, func(b sim.BatchResult) error {
		words := b.Words()
		for i := range slab {
			slab[i] = 0
		}
		for s := 0; s < b.Shots; s++ {
			actual[s] = 0
		}
		// Transpose detector lanes (shot s at bit s%64 of word s/64) into
		// per-shot packed frames, walking set bits only — cost scales with
		// fired detectors.
		for d := range b.Detectors {
			byteIdx, bit := d>>3, byte(1)<<uint(d&7)
			for w := 0; w < words; w++ {
				base := w * 64
				for word := b.Detectors[d][w]; word != 0; word &= word - 1 {
					packed[base+bits.TrailingZeros64(word)][byteIdx] |= bit
				}
			}
		}
		for o := range b.Observables {
			obit := uint64(1) << uint(o)
			for w := 0; w < words; w++ {
				base := w * 64
				for word := b.Observables[o][w]; word != 0; word &= word - 1 {
					actual[base+bits.TrailingZeros64(word)] |= obit
				}
			}
		}
		for s := 0; s < b.Shots; s++ {
			if werr := tw.WriteFrame(packed[s], actual[s]); werr != nil {
				return werr
			}
			written++
		}
		return nil
	})
	return written, err
}

// uniformDetPerRound returns the common detectors-per-round count when
// every round of [0, numRounds) owns the same number of detectors, else 0
// (the header's "non-uniform" marker). Memory circuits are non-uniform:
// their first and last detector rounds carry only memory-basis checks.
func uniformDetPerRound(detRounds []int, numRounds int) int {
	if numRounds <= 0 || len(detRounds) == 0 || len(detRounds)%numRounds != 0 {
		return 0
	}
	per := len(detRounds) / numRounds
	counts := make([]int, numRounds)
	for _, r := range detRounds {
		counts[r]++
	}
	for _, c := range counts {
		if c != per {
			return 0
		}
	}
	return per
}
