// Package code implements surface-code patches: stabilizer checks and their
// gauge factorizations, logical operators, syndrome-extraction circuit
// generation for square and heavy-hexagon lattices, and code-distance
// computation for pristine and deformed patches.
//
// The central abstraction is the Check/Gauge split. A Check is a stabilizer
// of the (possibly deformed) code; its value each round is the product of
// one or more Gauge measurements. A pristine patch has one single-gauge
// check per lattice plaquette. Code deformation (internal/deform) splits
// checks into multiple gauges and merges neighbouring checks into
// super-stabilizers, exactly as in the paper's instruction set; the
// detector for a check is always the round-to-round parity of all its gauge
// outcomes, which stays deterministic under gauge fixing even when the
// individual gauge outcomes randomize.
package code

import (
	"caliqec/internal/bitvec"
	"caliqec/internal/lattice"
	"caliqec/internal/pauli"
	"fmt"
	"sort"
)

// Gauge is one directly-measurable operator: a product of single-qubit
// Paulis (of the parent check's basis) over Data, measured through the
// ancilla path Chain.
type Gauge struct {
	// Data lists the data-qubit support in measurement order.
	Data []int
	// Chain is the ancilla path used to measure the gauge. On the square
	// lattice it is a single syndrome qubit that couples directly to every
	// data qubit. On the heavy hexagon it is a connected sub-path of the
	// plaquette bridge; data qubits couple at their attached degree-3
	// ancillas.
	Chain []int
	// Attach maps chain ancillas to the data qubit they couple (heavy-hex
	// only). Nil means square-style: every data qubit couples to Chain[0].
	Attach map[int]int
}

// Clone returns a deep copy of the gauge.
func (g *Gauge) Clone() *Gauge {
	c := &Gauge{
		Data:  append([]int(nil), g.Data...),
		Chain: append([]int(nil), g.Chain...),
	}
	if g.Attach != nil {
		c.Attach = make(map[int]int, len(g.Attach))
		for k, v := range g.Attach {
			c.Attach[k] = v
		}
	}
	return c
}

// Check is one stabilizer of the current code.
type Check struct {
	ID    int
	Basis lattice.Basis
	// Gauges are the measurement units whose product is the check value.
	// A pristine check has exactly one gauge.
	Gauges []*Gauge
	// Plaqs lists the lattice plaquettes this check descends from (more
	// than one for super-stabilizers).
	Plaqs []int
}

// Operator returns the check's Pauli operator on data qubits (the product
// of its gauges; shared data qubits cancel).
func (c *Check) Operator() *pauli.String {
	p := pauli.I
	if c.Basis == lattice.BasisX {
		p = pauli.X
	} else {
		p = pauli.Z
	}
	s := pauli.NewString()
	for _, g := range c.Gauges {
		for _, q := range g.Data {
			s.MulAt(q, p)
		}
	}
	return s
}

// Support returns the sorted data-qubit support of the check operator.
func (c *Check) Support() []int { return c.Operator().Support() }

// IsSuper reports whether the check is a super-stabilizer (multiple gauges
// or multiple source plaquettes).
func (c *Check) IsSuper() bool { return len(c.Gauges) > 1 || len(c.Plaqs) > 1 }

// Clone returns a deep copy of the check.
func (c *Check) Clone() *Check {
	n := &Check{ID: c.ID, Basis: c.Basis, Plaqs: append([]int(nil), c.Plaqs...)}
	for _, g := range c.Gauges {
		n.Gauges = append(n.Gauges, g.Clone())
	}
	return n
}

// Patch is a (possibly deformed) surface-code patch.
type Patch struct {
	Lat    *lattice.Lattice
	Checks []*Check
	// Removed marks physically isolated qubits (under calibration or
	// excluded by deformation); they appear in no circuit.
	Removed map[int]bool
	// LogicalX is the data support of the logical X operator (a vertical
	// column in the pristine patch); LogicalZ the logical Z (a horizontal
	// row). Deformation may reroute them.
	LogicalX, LogicalZ []int
	nextID             int
}

// NewPatch builds the pristine patch over lat: one single-gauge check per
// plaquette, logical X on data column 0, logical Z on data row 0.
func NewPatch(lat *lattice.Lattice) *Patch {
	p := &Patch{Lat: lat, Removed: map[int]bool{}}
	for i := range lat.Plaquettes {
		pl := &lat.Plaquettes[i]
		g := &Gauge{}
		if lat.Kind == lattice.Square {
			g.Chain = []int{pl.Syndrome}
			g.Data = measurementOrder(pl)
		} else {
			g.Chain = append([]int(nil), pl.Bridge...)
			g.Attach = make(map[int]int, len(pl.DataAttach))
			for k, v := range pl.DataAttach {
				g.Attach[k] = v
			}
			// Data in path order (attachment order along the bridge).
			for _, a := range pl.Bridge {
				if d, ok := pl.DataAttach[a]; ok {
					g.Data = append(g.Data, d)
				}
			}
		}
		p.Checks = append(p.Checks, &Check{
			ID:     p.nextID,
			Basis:  pl.Basis,
			Gauges: []*Gauge{g},
			Plaqs:  []int{pl.ID},
		})
		p.nextID++
	}
	for r := 0; r < lat.Rows; r++ {
		p.LogicalX = append(p.LogicalX, lat.DataID[[2]int{r, 0}])
	}
	for c := 0; c < lat.Cols; c++ {
		p.LogicalZ = append(p.LogicalZ, lat.DataID[[2]int{0, c}])
	}
	return p
}

// measurementOrder returns a plaquette's data qubits in the hook-safe CX
// slot order: NW,NE,SW,SE for X checks ("Z" sweep) and NW,SW,NE,SE for Z
// checks ("S" sweep), skipping absent corners.
func measurementOrder(pl *lattice.Plaquette) []int {
	order := [4]int{lattice.NW, lattice.NE, lattice.SW, lattice.SE}
	if pl.Basis == lattice.BasisZ {
		order = [4]int{lattice.NW, lattice.SW, lattice.NE, lattice.SE}
	}
	var out []int
	for _, k := range order {
		if pl.Corners[k] >= 0 {
			out = append(out, pl.Corners[k])
		}
	}
	return out
}

// Clone returns a deep copy of the patch (the lattice is shared; it is
// immutable).
func (p *Patch) Clone() *Patch {
	n := &Patch{
		Lat:      p.Lat,
		Removed:  make(map[int]bool, len(p.Removed)),
		LogicalX: append([]int(nil), p.LogicalX...),
		LogicalZ: append([]int(nil), p.LogicalZ...),
		nextID:   p.nextID,
	}
	for q := range p.Removed {
		n.Removed[q] = true
	}
	for _, c := range p.Checks {
		n.Checks = append(n.Checks, c.Clone())
	}
	return n
}

// CheckByID returns the check with the given ID, or nil.
func (p *Patch) CheckByID(id int) *Check {
	for _, c := range p.Checks {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// NewCheckID reserves and returns a fresh check ID.
func (p *Patch) NewCheckID() int {
	id := p.nextID
	p.nextID++
	return id
}

// RemoveCheck deletes the check with the given ID.
func (p *Patch) RemoveCheck(id int) {
	for i, c := range p.Checks {
		if c.ID == id {
			p.Checks = append(p.Checks[:i], p.Checks[i+1:]...)
			return
		}
	}
}

// ChecksWithData returns active checks of the given basis whose operator
// support contains data qubit q.
func (p *Patch) ChecksWithData(q int, basis lattice.Basis) []*Check {
	var out []*Check
	for _, c := range p.Checks {
		if c.Basis != basis {
			continue
		}
		if c.Operator().At(q) != pauli.I {
			out = append(out, c)
		}
	}
	return out
}

// LogicalOp returns the logical operator string for the given basis.
func (p *Patch) LogicalOp(basis lattice.Basis) *pauli.String {
	if basis == lattice.BasisX {
		return pauli.FromSupport(pauli.X, p.LogicalX...)
	}
	return pauli.FromSupport(pauli.Z, p.LogicalZ...)
}

// ActiveQubits returns all non-removed qubit IDs referenced by the patch's
// gauges (data and ancilla), sorted.
func (p *Patch) ActiveQubits() []int {
	seen := map[int]bool{}
	for _, c := range p.Checks {
		for _, g := range c.Gauges {
			for _, q := range g.Data {
				seen[q] = true
			}
			for _, a := range g.Chain {
				seen[a] = true
			}
		}
	}
	for _, q := range p.LogicalX {
		seen[q] = true
	}
	for _, q := range p.LogicalZ {
		seen[q] = true
	}
	var out []int
	for q := range seen {
		if !p.Removed[q] {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}

// Validate checks the stabilizer-code invariants of the current patch:
//
//  1. no check or gauge touches a removed qubit;
//  2. every pair of check operators commutes;
//  3. every check operator commutes with every gauge operator of every
//     other check (the gauge-fixing requirement that stabilizers lie in
//     the centralizer of the gauge group);
//  4. both logical operators commute with all checks;
//  5. the logical operators anticommute with each other.
func (p *Patch) Validate() error {
	gaugeOps := make([]*pauli.String, 0)
	gaugeOwner := make([]int, 0)
	for _, c := range p.Checks {
		pl := pauli.Z
		if c.Basis == lattice.BasisX {
			pl = pauli.X
		}
		for _, g := range c.Gauges {
			for _, q := range g.Data {
				if p.Removed[q] {
					return fmt.Errorf("code: check %d gauge touches removed data qubit %d", c.ID, q)
				}
			}
			for _, a := range g.Chain {
				if p.Removed[a] {
					return fmt.Errorf("code: check %d gauge uses removed ancilla %d", c.ID, a)
				}
			}
			gaugeOps = append(gaugeOps, pauli.FromSupport(pl, g.Data...))
			gaugeOwner = append(gaugeOwner, c.ID)
		}
	}
	ops := make([]*pauli.String, len(p.Checks))
	for i, c := range p.Checks {
		ops[i] = c.Operator()
	}
	for i := range ops {
		for j := i + 1; j < len(ops); j++ {
			if !ops[i].Commutes(ops[j]) {
				return fmt.Errorf("code: checks %d and %d anticommute", p.Checks[i].ID, p.Checks[j].ID)
			}
		}
	}
	for i, c := range p.Checks {
		for k, gop := range gaugeOps {
			if gaugeOwner[k] == c.ID {
				continue
			}
			if !ops[i].Commutes(gop) {
				return fmt.Errorf("code: check %d anticommutes with a gauge of check %d", c.ID, gaugeOwner[k])
			}
		}
	}
	lx, lz := p.LogicalOp(lattice.BasisX), p.LogicalOp(lattice.BasisZ)
	for i, c := range p.Checks {
		if !ops[i].Commutes(lx) {
			return fmt.Errorf("code: check %d anticommutes with logical X", c.ID)
		}
		if !ops[i].Commutes(lz) {
			return fmt.Errorf("code: check %d anticommutes with logical Z", c.ID)
		}
	}
	for _, q := range append(append([]int(nil), p.LogicalX...), p.LogicalZ...) {
		if p.Removed[q] {
			return fmt.Errorf("code: logical operator passes through removed qubit %d", q)
		}
	}
	if lx.Commutes(lz) {
		return fmt.Errorf("code: logical X and Z commute (should anticommute)")
	}
	return nil
}

// StabilizerMatrix returns the binary support matrix of the active checks
// of the given basis: one row per check, one column per data qubit listed
// in dataIdx order (a map from qubit ID to column).
func (p *Patch) StabilizerMatrix(basis lattice.Basis, dataIdx map[int]int) *bitvec.Matrix {
	var rows []*bitvec.Vec
	for _, c := range p.Checks {
		if c.Basis != basis {
			continue
		}
		v := bitvec.NewVec(len(dataIdx))
		for _, q := range c.Support() {
			if col, ok := dataIdx[q]; ok {
				v.Set(col, true)
			}
		}
		rows = append(rows, v)
	}
	return bitvec.FromRows(rows)
}

// DataIndex returns a dense column index over the patch's non-removed data
// qubits.
func (p *Patch) DataIndex() (map[int]int, []int) {
	idx := map[int]int{}
	var ids []int
	for r := 0; r < p.Lat.Rows; r++ {
		for c := 0; c < p.Lat.Cols; c++ {
			q := p.Lat.DataID[[2]int{r, c}]
			if !p.Removed[q] {
				idx[q] = len(ids)
				ids = append(ids, q)
			}
		}
	}
	return idx, ids
}
