package code

import (
	"caliqec/internal/circuit"
	"caliqec/internal/lattice"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"testing"
)

func TestPristinePatchCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
			var lat *lattice.Lattice
			if kind == lattice.Square {
				lat = lattice.NewSquare(d)
			} else {
				lat = lattice.NewHeavyHex(d)
			}
			p := NewPatch(lat)
			if got, want := len(p.Checks), d*d-1; got != want {
				t.Errorf("%v d=%d: %d checks, want %d", kind, d, got, want)
			}
			nx, nz := 0, 0
			for _, c := range p.Checks {
				if len(c.Gauges) != 1 {
					t.Errorf("%v d=%d: pristine check %d has %d gauges", kind, d, c.ID, len(c.Gauges))
				}
				if c.Basis == lattice.BasisX {
					nx++
				} else {
					nz++
				}
			}
			if nx != nz {
				t.Errorf("%v d=%d: %d X vs %d Z checks, want equal", kind, d, nx, nz)
			}
		}
	}
}

func TestPristinePatchValidates(t *testing.T) {
	for _, d := range []int{3, 5} {
		if err := NewPatch(lattice.NewSquare(d)).Validate(); err != nil {
			t.Errorf("square d=%d: %v", d, err)
		}
		if err := NewPatch(lattice.NewHeavyHex(d)).Validate(); err != nil {
			t.Errorf("heavy-hex d=%d: %v", d, err)
		}
	}
}

func TestRectangularPatchValidates(t *testing.T) {
	p := NewPatch(lattice.NewSquareRect(5, 7))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Distance(lattice.BasisX); got != 5 {
		t.Errorf("X distance = %d, want 5 (rows)", got)
	}
	if got := p.Distance(lattice.BasisZ); got != 7 {
		t.Errorf("Z distance = %d, want 7 (cols)", got)
	}
}

func TestPristineDistance(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
			var lat *lattice.Lattice
			if kind == lattice.Square {
				lat = lattice.NewSquare(d)
			} else {
				lat = lattice.NewHeavyHex(d)
			}
			p := NewPatch(lat)
			if got := p.Distance(lattice.BasisX); got != d {
				t.Errorf("%v d=%d: X distance %d", kind, d, got)
			}
			if got := p.Distance(lattice.BasisZ); got != d {
				t.Errorf("%v d=%d: Z distance %d", kind, d, got)
			}
		}
	}
}

func TestBruteDistanceMatchesGraph(t *testing.T) {
	for _, d := range []int{3, 5} {
		p := NewPatch(lattice.NewSquare(d))
		for _, basis := range []lattice.Basis{lattice.BasisX, lattice.BasisZ} {
			graph := p.Distance(basis)
			brute := p.BruteDistance(basis)
			if graph != brute || brute != d {
				t.Errorf("d=%d basis=%v: graph=%d brute=%d want %d", d, basis, graph, brute, d)
			}
		}
	}
}

// TestNoiselessDetectorsZero is the load-bearing correctness test for
// circuit generation: on a noiseless run every detector of the memory
// experiment must be deterministic and zero, for both lattices, both memory
// bases, and multiple rounds. The frame simulator's validity rests on this.
func TestNoiselessDetectorsZero(t *testing.T) {
	r := rng.New(7)
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		for _, basis := range []lattice.Basis{lattice.BasisZ, lattice.BasisX} {
			var lat *lattice.Lattice
			if kind == lattice.Square {
				lat = lattice.NewSquare(3)
			} else {
				lat = lattice.NewHeavyHex(3)
			}
			p := NewPatch(lat)
			c, err := p.MemoryCircuit(MemoryOptions{Rounds: 3, Basis: basis})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 3; trial++ {
				res, err := sim.RunNoiseless(c, r)
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range res.Detectors {
					if v {
						t.Fatalf("%v memory-%v: detector %d fired on noiseless run", kind, basis, i)
					}
				}
				if res.Observables[0] {
					t.Fatalf("%v memory-%v: observable flipped on noiseless run", kind, basis)
				}
			}
		}
	}
}

// TestFrameMatchesNoiselessStructure: with zero noise the frame simulator
// must report no detector or observable flips.
func TestFrameNoiselessAllZero(t *testing.T) {
	p := NewPatch(lattice.NewSquare(3))
	c, err := p.MemoryCircuit(MemoryOptions{Rounds: 2, Basis: lattice.BasisZ})
	if err != nil {
		t.Fatal(err)
	}
	fs := sim.NewFrameSimulator(c, rng.New(1))
	fs.Sample(128, func(b sim.BatchResult) {
		for i, l := range b.Detectors {
			if l != (sim.Lane{}) {
				t.Fatalf("detector %d flipped with zero noise", i)
			}
		}
		for _, l := range b.Observables {
			if l != (sim.Lane{}) {
				t.Fatal("observable flipped with zero noise")
			}
		}
	})
}

// TestInterleavedScheduleDeterministic: the simultaneous X/Z schedule must
// also produce deterministic zero detectors noiselessly, and reject
// deformed or heavy-hex patches.
func TestInterleavedScheduleDeterministic(t *testing.T) {
	r := rng.New(21)
	for _, basis := range []lattice.Basis{lattice.BasisZ, lattice.BasisX} {
		p := NewPatch(lattice.NewSquare(5))
		c, err := p.MemoryCircuit(MemoryOptions{Rounds: 3, Basis: basis, Interleaved: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunNoiseless(c, r)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Detectors {
			if v {
				t.Fatalf("memory-%v interleaved: detector %d fired noiselessly", basis, i)
			}
		}
		if res.Observables[0] {
			t.Fatalf("memory-%v interleaved: observable random", basis)
		}
	}
	// Heavy-hex patches must be rejected.
	hx := NewPatch(lattice.NewHeavyHex(3))
	if _, err := hx.MemoryCircuit(MemoryOptions{Rounds: 1, Basis: lattice.BasisZ, Interleaved: true}); err == nil {
		t.Error("interleaved schedule accepted a heavy-hex patch")
	}
}

// TestInterleavedEquivalentCounts: under the per-gate noise model both
// schedules apply the same operations (only the order differs), and both
// must sustain error suppression — the interleaved LER may differ from the
// sequential one only by an O(1) hook-structure factor.
func TestInterleavedEquivalentCounts(t *testing.T) {
	p := NewPatch(lattice.NewSquare(5))
	seq, err := p.MemoryCircuit(MemoryOptions{Rounds: 4, Basis: lattice.BasisZ, Noise: UniformNoise(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	il, err := p.MemoryCircuit(MemoryOptions{Rounds: 4, Basis: lattice.BasisZ, Noise: UniformNoise(1e-3), Interleaved: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.CountOps(circuit.OpCX) != il.CountOps(circuit.OpCX) {
		t.Errorf("CX counts differ: %d vs %d", seq.CountOps(circuit.OpCX), il.CountOps(circuit.OpCX))
	}
	if seq.NumMeas != il.NumMeas || seq.NumDetectors != il.NumDetectors {
		t.Errorf("record structure differs: meas %d/%d det %d/%d",
			seq.NumMeas, il.NumMeas, seq.NumDetectors, il.NumDetectors)
	}
}
