package code

import (
	"caliqec/internal/circuit"
	"caliqec/internal/lattice"
	"fmt"
)

// NoiseModel supplies per-operation physical error rates to circuit
// generation. internal/noise provides implementations; the trivial
// UniformNoise below covers the common fixed-rate case.
type NoiseModel interface {
	// Gate1 is the depolarizing rate after a single-qubit gate on q.
	Gate1(q int) float64
	// Gate2 is the two-qubit depolarizing rate after a CX on (a, b).
	Gate2(a, b int) float64
	// Meas is the classical readout flip probability on q.
	Meas(q int) float64
	// Reset is the preparation error probability on q.
	Reset(q int) float64
}

// UniformNoise applies the same rate p to every operation, matching the
// paper's circuit-level noise model initialization (§7.2).
type UniformNoise float64

// Gate1 implements NoiseModel.
func (u UniformNoise) Gate1(int) float64 { return float64(u) }

// Gate2 implements NoiseModel.
func (u UniformNoise) Gate2(int, int) float64 { return float64(u) }

// Meas implements NoiseModel.
func (u UniformNoise) Meas(q int) float64 { return float64(u) }

// Reset implements NoiseModel.
func (u UniformNoise) Reset(q int) float64 { return float64(u) }

// HotQubit wraps a base model and elevates every operation touching one
// qubit to rate P — the circuit-level picture of a single drifted qubit.
// The drift-injection experiment records traces under HotQubit segments and
// splices them after steady segments to exercise the stream pipeline's
// drift detection with a known ground-truth qubit.
type HotQubit struct {
	Base  NoiseModel
	Qubit int
	P     float64
}

// Gate1 implements NoiseModel.
func (h HotQubit) Gate1(q int) float64 {
	if q == h.Qubit {
		return h.P
	}
	return h.Base.Gate1(q)
}

// Gate2 implements NoiseModel.
func (h HotQubit) Gate2(a, b int) float64 {
	if a == h.Qubit || b == h.Qubit {
		return h.P
	}
	return h.Base.Gate2(a, b)
}

// Meas implements NoiseModel.
func (h HotQubit) Meas(q int) float64 {
	if q == h.Qubit {
		return h.P
	}
	return h.Base.Meas(q)
}

// Reset implements NoiseModel.
func (h HotQubit) Reset(q int) float64 {
	if q == h.Qubit {
		return h.P
	}
	return h.Base.Reset(q)
}

// MemoryOptions configures memory-experiment circuit generation.
type MemoryOptions struct {
	Rounds int           // number of QEC rounds (≥ 1)
	Basis  lattice.Basis // memory basis: BasisZ stores |0>, BasisX stores |+>
	Noise  NoiseModel
	// Interleaved selects the standard simultaneous X/Z extraction
	// schedule (all plaquettes run their four CX time-steps together, with
	// the hook-safe zigzag corner orders), as used on hardware. Under this
	// package's per-gate noise model the gate count matches the default
	// sequential X-phase-then-Z-phase schedule; what changes is the hook-
	// error propagation structure. It is only defined for pristine
	// single-gauge square-lattice patches; deformed codes need the
	// sequential phases for consistent gauge fixing, and MemoryCircuit
	// returns an error if the patch does not qualify.
	Interleaved bool
}

// MemoryCircuit generates the full memory experiment for the patch: data
// initialization, Rounds cycles of gauge measurements with round-to-round
// detectors, transversal data readout with final-round detectors, and the
// logical observable. Observable 0 is the memory-basis logical.
func (p *Patch) MemoryCircuit(opt MemoryOptions) (*circuit.Circuit, error) {
	if opt.Rounds < 1 {
		return nil, fmt.Errorf("code: MemoryCircuit needs ≥ 1 round, got %d", opt.Rounds)
	}
	if opt.Noise == nil {
		opt.Noise = UniformNoise(0)
	}
	g := newCircuitGen(p, opt.Noise)
	b := g.b

	// Initialize data qubits in the memory basis.
	data := p.dataQubits()
	if opt.Basis == lattice.BasisZ {
		for _, q := range data {
			b.Reset(opt.Noise.Reset(q), q)
		}
	} else {
		for _, q := range data {
			b.ResetX(opt.Noise.Reset(q), q)
		}
	}
	b.Tick()

	if opt.Interleaved {
		if err := p.interleavable(); err != nil {
			return nil, err
		}
	}

	var prev map[int][]int // check ID -> gauge record indices of prior round
	for r := 0; r < opt.Rounds; r++ {
		// Data qubits idle (or are dynamically decoupled) while syndromes
		// are extracted: one single-qubit depolarizing channel per round at
		// the qubit's 1Q-gate rate. This is where single-qubit gate drift
		// on data qubits enters the logical error rate.
		for _, q := range data {
			b.Depolarize1(opt.Noise.Gate1(q), q)
		}
		var cur map[int][]int
		if opt.Interleaved {
			cur = g.measureRoundInterleaved(p.Checks)
		} else {
			cur = g.measureRound(p.Checks)
		}
		for _, c := range p.Checks {
			recs := cur[c.ID]
			if r == 0 {
				// First round: only the memory-basis checks have
				// deterministic values (their gauges stabilize the fresh
				// product state).
				if c.Basis == opt.Basis {
					b.Detector(recs...)
				}
				continue
			}
			b.Detector(append(append([]int(nil), prev[c.ID]...), recs...)...)
		}
		prev = cur
		b.Tick()
	}

	// Transversal readout in the memory basis.
	dataRec := map[int]int{}
	for _, q := range data {
		var rec []int
		if opt.Basis == lattice.BasisZ {
			rec = b.M(opt.Noise.Meas(q), q)
		} else {
			rec = b.MX(opt.Noise.Meas(q), q)
		}
		dataRec[q] = rec[0]
	}
	// Final detectors: each memory-basis check compared against the parity
	// of its support in the data readout.
	for _, c := range p.Checks {
		if c.Basis != opt.Basis {
			continue
		}
		recs := append([]int(nil), prev[c.ID]...)
		for _, q := range c.Support() {
			recs = append(recs, dataRec[q])
		}
		b.Detector(recs...)
	}
	// Logical observable from the data readout.
	logical := p.LogicalZ
	if opt.Basis == lattice.BasisX {
		logical = p.LogicalX
	}
	var obsRecs []int
	for _, q := range logical {
		obsRecs = append(obsRecs, dataRec[q])
	}
	b.Observable(0, obsRecs...)

	return b.Build(), nil
}

// dataQubits returns the non-removed data qubits of the patch.
func (p *Patch) dataQubits() []int {
	_, ids := p.DataIndex()
	return ids
}

// circuitGen holds shared state for emitting gauge-measurement rounds.
type circuitGen struct {
	p     *Patch
	b     *circuit.Builder
	noise NoiseModel
}

func newCircuitGen(p *Patch, n NoiseModel) *circuitGen {
	return &circuitGen{p: p, b: circuit.NewBuilder(p.Lat.NumQubits()), noise: n}
}

// measureRound emits one full QEC round: all X-basis gauges first, then all
// Z-basis gauges (two phases, so that anticommuting gauges of deformed
// codes are measured in a consistent order within every round). It returns
// the gauge record indices grouped by check ID.
func (g *circuitGen) measureRound(checks []*Check) map[int][]int {
	recs := map[int][]int{}
	for _, basis := range []lattice.Basis{lattice.BasisX, lattice.BasisZ} {
		for _, c := range checks {
			if c.Basis != basis {
				continue
			}
			for _, ga := range c.Gauges {
				r := g.measureGauge(ga, basis)
				recs[c.ID] = append(recs[c.ID], r)
			}
		}
	}
	return recs
}

// measureGauge emits the measurement of one gauge and returns its record
// index.
func (g *circuitGen) measureGauge(ga *Gauge, basis lattice.Basis) int {
	if len(ga.Chain) == 0 {
		panic("code: gauge with empty ancilla chain") //lint:allow panicpolicy an empty gauge chain is a code-generation bug, not a runtime condition
	}
	if ga.Attach == nil {
		return g.measureDirect(ga, basis)
	}
	return g.measureChain(ga, basis)
}

// measureDirect measures a square-lattice gauge: a single syndrome ancilla
// coupled directly to each data qubit in order.
func (g *circuitGen) measureDirect(ga *Gauge, basis lattice.Basis) int {
	b, n := g.b, g.noise
	s := ga.Chain[0]
	b.Reset(n.Reset(s), s)
	if basis == lattice.BasisX {
		b.H(s)
		b.Depolarize1(n.Gate1(s), s)
		for _, d := range ga.Data {
			b.CX(s, d)
			b.Depolarize2(n.Gate2(s, d), s, d)
		}
		b.H(s)
		b.Depolarize1(n.Gate1(s), s)
	} else {
		for _, d := range ga.Data {
			b.CX(d, s)
			b.Depolarize2(n.Gate2(d, s), d, s)
		}
	}
	return b.M(n.Meas(s), s)[0]
}

// measureChain measures a heavy-hex gauge through its ancilla path.
//
// Z basis: parities funnel along the chain into the last ancilla
// (compute), the partial parities are then uncomputed, and the last ancilla
// is measured.
//
// X basis: a GHZ state is spread along the chain from the first ancilla,
// each attached data qubit is CX-coupled from its degree-3 ancilla, the GHZ
// is unwound, and the first ancilla is measured in the X basis.
func (g *circuitGen) measureChain(ga *Gauge, basis lattice.Basis) int {
	b, n := g.b, g.noise
	chain := ga.Chain
	last := chain[len(chain)-1]
	for _, a := range chain {
		b.Reset(n.Reset(a), a)
	}
	cx := func(c, t int) {
		b.CX(c, t)
		b.Depolarize2(n.Gate2(c, t), c, t)
	}
	if basis == lattice.BasisZ {
		// Forward: data parities in, funnel along the chain.
		type op struct{ c, t int }
		var forward []op
		for i, a := range chain {
			if d, ok := ga.Attach[a]; ok {
				forward = append(forward, op{d, a})
			}
			if i+1 < len(chain) {
				forward = append(forward, op{a, chain[i+1]})
			}
		}
		for _, o := range forward {
			cx(o.c, o.t)
		}
		// Uncompute everything that did not write into the readout ancilla.
		for i := len(forward) - 1; i >= 0; i-- {
			if forward[i].t == last {
				continue
			}
			cx(forward[i].c, forward[i].t)
		}
		return b.M(n.Meas(last), last)[0]
	}
	// X basis via GHZ chain rooted at chain[0].
	root := chain[0]
	b.H(root)
	b.Depolarize1(n.Gate1(root), root)
	for i := 0; i+1 < len(chain); i++ {
		cx(chain[i], chain[i+1])
	}
	for _, a := range chain {
		if d, ok := ga.Attach[a]; ok {
			cx(a, d)
		}
	}
	for i := len(chain) - 2; i >= 0; i-- {
		cx(chain[i], chain[i+1])
	}
	b.H(root)
	b.Depolarize1(n.Gate1(root), root)
	return b.M(n.Meas(root), root)[0]
}

// interleavable reports whether the patch supports the interleaved
// schedule: square lattice, every check a single direct-coupled gauge.
func (p *Patch) interleavable() error {
	if p.Lat.Kind != lattice.Square {
		return fmt.Errorf("code: interleaved schedule requires the square lattice")
	}
	for _, c := range p.Checks {
		if len(c.Gauges) != 1 || c.Gauges[0].Attach != nil || len(c.Gauges[0].Chain) != 1 {
			return fmt.Errorf("code: interleaved schedule requires a pristine patch (check %d is deformed)", c.ID)
		}
	}
	return nil
}

// measureRoundInterleaved emits one QEC round in the standard simultaneous
// schedule: reset all syndrome ancillas, Hadamard the X ancillas, run four
// CX time-steps in which every plaquette couples one corner (zigzag orders
// per basis), un-Hadamard, and measure everything.
func (g *circuitGen) measureRoundInterleaved(checks []*Check) map[int][]int {
	b, n := g.b, g.noise
	recs := map[int][]int{}
	var xs []int // X-check ancillas
	for _, c := range checks {
		s := c.Gauges[0].Chain[0]
		b.Reset(n.Reset(s), s)
		if c.Basis == lattice.BasisX {
			xs = append(xs, s)
		}
	}
	for _, s := range xs {
		b.H(s)
		b.Depolarize1(n.Gate1(s), s)
	}
	// Four time-steps: the k-th entry of each gauge's measurement-ordered
	// Data list couples in step k.
	for step := 0; step < 4; step++ {
		for _, c := range checks {
			ga := c.Gauges[0]
			if step >= len(ga.Data) {
				continue
			}
			s, d := ga.Chain[0], ga.Data[step]
			if c.Basis == lattice.BasisX {
				b.CX(s, d)
				b.Depolarize2(n.Gate2(s, d), s, d)
			} else {
				b.CX(d, s)
				b.Depolarize2(n.Gate2(d, s), d, s)
			}
		}
	}
	for _, s := range xs {
		b.H(s)
		b.Depolarize1(n.Gate1(s), s)
	}
	for _, c := range checks {
		s := c.Gauges[0].Chain[0]
		recs[c.ID] = b.M(n.Meas(s), s)
	}
	return recs
}
