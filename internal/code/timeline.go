package code

import (
	"caliqec/internal/bitvec"
	"caliqec/internal/circuit"
	"caliqec/internal/lattice"
	"fmt"
)

// Epoch is one segment of a deformation timeline: a patch state (check set)
// held for a number of QEC rounds. Successive epochs differ by deformation
// instructions — qubits isolated or reintegrated, checks split or merged.
type Epoch struct {
	Patch  *Patch
	Rounds int
}

// TimelineOptions configures TimelineCircuit.
type TimelineOptions struct {
	Basis lattice.Basis
	Noise NoiseModel
}

// TimelineCircuit builds one continuous memory experiment that runs
// *through* code deformations: epoch k's checks are measured for its
// rounds, then the qubits leaving the code are measured out, the qubits
// re-entering are reset, and epoch k+1's checks take over.
//
// The fault-tolerance bookkeeping across each transition is the gauge-
// fixing rule of §2.2: a new check is compared against the past iff its
// operator can be written as a product of (a) old check operators, (b)
// single-qubit memory-basis operators of qubits measured out at the
// transition, and (c) single-qubit memory-basis operators of qubits
// freshly reset. The GF(2) solve runs per check; solvable checks get a
// transition detector linking their first-round outcome to the involved
// old records, unsolvable ones start fresh (their first detector compares
// rounds 1 and 2 of the new epoch). This keeps every emitted detector
// deterministic on a noiseless run — the property the tests pin down —
// while preserving error detection through the deformation.
//
// Constraints: every epoch must share one lattice (use isolation and
// reintegration, not enlargement), and the memory logical operator must
// have the same representative in every epoch (pick deformation targets
// off the logical support); TimelineCircuit returns an error otherwise.
func TimelineCircuit(epochs []Epoch, opt TimelineOptions) (*circuit.Circuit, error) {
	if len(epochs) == 0 {
		return nil, fmt.Errorf("code: timeline needs ≥ 1 epoch")
	}
	if opt.Noise == nil {
		opt.Noise = UniformNoise(0)
	}
	lat := epochs[0].Patch.Lat
	logical := logicalSupport(epochs[0].Patch, opt.Basis)
	for i, e := range epochs {
		// Lattice construction is deterministic, so same kind and
		// dimensions means identical qubit IDs; pointer identity is not
		// required.
		l := e.Patch.Lat
		if l.Kind != lat.Kind || l.Rows != lat.Rows || l.Cols != lat.Cols {
			return nil, fmt.Errorf("code: epoch %d uses a different lattice (enlargement is not supported in timelines)", i)
		}
		if e.Rounds < 1 {
			return nil, fmt.Errorf("code: epoch %d has %d rounds", i, e.Rounds)
		}
		if !sameInts(logicalSupport(e.Patch, opt.Basis), logical) {
			return nil, fmt.Errorf("code: epoch %d moved the logical representative; timelines need a stable logical", i)
		}
	}

	g := newCircuitGen(epochs[0].Patch, opt.Noise)
	b := g.b

	// Initialize epoch 0's data qubits in the memory basis.
	prevData := epochs[0].Patch.dataQubits()
	resetData(b, opt, prevData)
	b.Tick()

	// lastRecs maps a check ID to its most recent round's gauge records.
	var lastRecs map[int][]int

	for ei := range epochs {
		patch := epochs[ei].Patch
		g.p = patch
		var transDet map[int][]int // check ID -> extra records for its first-round detector
		freshs := map[int]bool{}   // checks with no transition predictor
		var pairDets []pairDet     // predictable products of fresh check pairs

		if ei > 0 {
			prev := epochs[ei-1].Patch
			curData := patch.dataQubits()
			leaving := diffInts(prevData, curData)
			entering := diffInts(curData, prevData)
			// Measure out leaving qubits in the memory basis.
			leavingRec := map[int]int{}
			for _, q := range leaving {
				var rec []int
				if opt.Basis == lattice.BasisZ {
					rec = b.M(opt.Noise.Meas(q), q)
				} else {
					rec = b.MX(opt.Noise.Meas(q), q)
				}
				leavingRec[q] = rec[0]
			}
			// Reset entering qubits in the memory basis (known +1
			// single-qubit stabilizers, no record).
			resetData(b, opt, entering)

			// Build the transition solve per new check.
			var olds []transOld
			for _, c := range prev.Checks {
				if c.Basis != opt.Basis {
					continue
				}
				sup := map[int]bool{}
				for _, q := range c.Support() {
					sup[q] = true
				}
				olds = append(olds, transOld{op: sup, recs: lastRecs[c.ID]})
			}
			var singles []transSingle
			for _, q := range leaving {
				singles = append(singles, transSingle{q, leavingRec[q]})
			}
			for _, q := range entering {
				singles = append(singles, transSingle{q, -1})
			}
			transDet = map[int][]int{}
			var freshMem []*Check // memory-basis checks with no individual predictor
			for _, c := range patch.Checks {
				if c.Basis != opt.Basis {
					// Non-memory-basis checks are never deterministic at a
					// transition in a memory experiment; they re-anchor via
					// in-epoch comparisons (their operators are unchanged
					// unless the instruction touched them, in which case
					// they also start fresh).
					if sameOpInPrev(c, prev) {
						continue // keeps cross-epoch comparison, handled below
					}
					freshs[c.ID] = true
					continue
				}
				sel, ok := solveTransition(c, olds, singles)
				if !ok {
					freshs[c.ID] = true
					freshMem = append(freshMem, c)
					continue
				}
				var recs []int
				for _, oi := range sel.oldIdx {
					recs = append(recs, olds[oi].recs...)
				}
				recs = append(recs, sel.singleRecs...)
				transDet[c.ID] = recs
			}
			// Second pass: individually-fresh checks may still have
			// predictable *products* (e.g. two checks split from a
			// reintegrated super-stabilizer multiply back to it, the
			// Stace–Barrett reintegration comparison). Solve pairs.
			for i := 0; i < len(freshMem); i++ {
				for j := i + 1; j < len(freshMem); j++ {
					a, bb := freshMem[i], freshMem[j]
					if a == nil || bb == nil {
						continue
					}
					combined := &Check{Basis: a.Basis, Gauges: append(append([]*Gauge(nil), a.Gauges...), bb.Gauges...)}
					sel, ok := solveTransition(combined, olds, singles)
					if !ok {
						continue
					}
					var recs []int
					for _, oi := range sel.oldIdx {
						recs = append(recs, olds[oi].recs...)
					}
					recs = append(recs, sel.singleRecs...)
					pairDets = append(pairDets, pairDet{a: a.ID, b: bb.ID, extra: recs})
					freshMem[i], freshMem[j] = nil, nil
					break
				}
			}
			b.Tick()
		}

		cur := map[int][]int{}
		for r := 0; r < epochs[ei].Rounds; r++ {
			cur = g.measureRound(patch.Checks)
			for _, c := range patch.Checks {
				recs := cur[c.ID]
				switch {
				case ei == 0 && r == 0:
					if c.Basis == opt.Basis {
						b.Detector(recs...)
					}
				case r == 0 && transDet != nil:
					if extra, ok := transDet[c.ID]; ok {
						b.Detector(append(append([]int(nil), extra...), recs...)...)
						continue
					}
					if freshs[c.ID] {
						continue // fresh stabilizer: first comparison next round
					}
					// Check survived the transition with the same operator:
					// compare across the epoch boundary.
					if old, ok := lastRecs[c.ID]; ok && sameOpInPrev(c, epochs[ei-1].Patch) {
						b.Detector(append(append([]int(nil), old...), recs...)...)
					}
				default:
					b.Detector(append(append([]int(nil), lastRecs[c.ID]...), recs...)...)
				}
			}
			if r == 0 && len(pairDets) > 0 {
				for _, pd := range pairDets {
					recs := append([]int(nil), pd.extra...)
					recs = append(recs, cur[pd.a]...)
					recs = append(recs, cur[pd.b]...)
					b.Detector(recs...)
				}
			}
			lastRecs = cur
			b.Tick()
		}
		prevData = patch.dataQubits()
	}

	// Final transversal readout of the last epoch.
	last := epochs[len(epochs)-1].Patch
	dataRec := map[int]int{}
	for _, q := range last.dataQubits() {
		var rec []int
		if opt.Basis == lattice.BasisZ {
			rec = b.M(opt.Noise.Meas(q), q)
		} else {
			rec = b.MX(opt.Noise.Meas(q), q)
		}
		dataRec[q] = rec[0]
	}
	for _, c := range last.Checks {
		if c.Basis != opt.Basis {
			continue
		}
		recs := append([]int(nil), lastRecs[c.ID]...)
		for _, q := range c.Support() {
			recs = append(recs, dataRec[q])
		}
		b.Detector(recs...)
	}
	var obsRecs []int
	for _, q := range logicalSupport(last, opt.Basis) {
		obsRecs = append(obsRecs, dataRec[q])
	}
	b.Observable(0, obsRecs...)
	return b.Build(), nil
}

func logicalSupport(p *Patch, basis lattice.Basis) []int {
	if basis == lattice.BasisZ {
		return p.LogicalZ
	}
	return p.LogicalX
}

func resetData(b *circuit.Builder, opt TimelineOptions, qubits []int) {
	for _, q := range qubits {
		if opt.Basis == lattice.BasisZ {
			b.Reset(opt.Noise.Reset(q), q)
		} else {
			b.ResetX(opt.Noise.Reset(q), q)
		}
	}
}

// sameOpInPrev reports whether a check with the same ID and operator exists
// in the previous patch (it survived the transition untouched).
func sameOpInPrev(c *Check, prev *Patch) bool {
	pc := prev.CheckByID(c.ID)
	return pc != nil && pc.Basis == c.Basis && pc.Operator().Equal(c.Operator())
}

// pairDet is a transition detector over the product of two fresh checks.
type pairDet struct {
	a, b  int
	extra []int
}

type transitionSel struct {
	oldIdx     []int
	singleRecs []int
}

// transOld is one previous-epoch check available to the transition solve.
type transOld struct {
	op   map[int]bool // data support
	recs []int        // its last round's gauge records
}

// transSingle is one known single-qubit operator at a transition: a qubit
// measured out (rec ≥ 0) or freshly reset (rec == -1, value +1).
type transSingle struct {
	q   int
	rec int
}

// solveTransition expresses the new check's operator as a GF(2) combination
// of old check operators and known single-qubit operators.
func solveTransition(c *Check, olds []transOld, singles []transSingle) (transitionSel, bool) {
	// Column index over all data qubits mentioned anywhere.
	cols := map[int]int{}
	addQ := func(q int) {
		if _, ok := cols[q]; !ok {
			cols[q] = len(cols)
		}
	}
	for _, o := range olds {
		for q := range o.op {
			addQ(q)
		}
	}
	for _, s := range singles {
		addQ(s.q)
	}
	target := c.Support()
	for _, q := range target {
		addQ(q)
	}
	nGens := len(olds) + len(singles)
	m := bitvec.NewMatrix(len(cols), nGens)
	for gi, o := range olds {
		for q := range o.op {
			m.Set(cols[q], gi, true)
		}
	}
	for si, s := range singles {
		m.Set(cols[s.q], len(olds)+si, true)
	}
	bvec := bitvec.NewVec(len(cols))
	for _, q := range target {
		bvec.Set(cols[q], true)
	}
	x, ok := m.Solve(bvec)
	if !ok {
		return transitionSel{}, false
	}
	var sel transitionSel
	for gi := 0; gi < len(olds); gi++ {
		if x.Get(gi) {
			sel.oldIdx = append(sel.oldIdx, gi)
		}
	}
	for si := 0; si < len(singles); si++ {
		if x.Get(len(olds) + si) {
			if singles[si].rec >= 0 {
				sel.singleRecs = append(sel.singleRecs, singles[si].rec)
			}
		}
	}
	return sel, true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]int{}
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		seen[x]--
	}
	for _, v := range seen {
		if v != 0 {
			return false
		}
	}
	return true
}

func diffInts(a, b []int) []int {
	in := map[int]bool{}
	for _, x := range b {
		in[x] = true
	}
	var out []int
	for _, x := range a {
		if !in[x] {
			out = append(out, x)
		}
	}
	return out
}
