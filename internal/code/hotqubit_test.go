package code

import "testing"

func TestHotQubitElevatesOnlyTarget(t *testing.T) {
	h := HotQubit{Base: UniformNoise(1e-3), Qubit: 5, P: 3e-2}
	if got := h.Gate1(5); got != 3e-2 { //lint:allow floateq model returns its parameter exactly
		t.Errorf("Gate1(hot) = %g, want 3e-2", got)
	}
	if got := h.Gate1(4); got != 1e-3 { //lint:allow floateq model returns its parameter exactly
		t.Errorf("Gate1(cold) = %g, want base rate", got)
	}
	for _, pair := range [][2]int{{5, 1}, {1, 5}} {
		if got := h.Gate2(pair[0], pair[1]); got != 3e-2 { //lint:allow floateq model returns its parameter exactly
			t.Errorf("Gate2(%v) = %g, want 3e-2", pair, got)
		}
	}
	if got := h.Gate2(1, 2); got != 1e-3 { //lint:allow floateq model returns its parameter exactly
		t.Errorf("Gate2(cold pair) = %g, want base rate", got)
	}
	if h.Meas(5) != 3e-2 || h.Meas(0) != 1e-3 { //lint:allow floateq model returns its parameter exactly
		t.Error("Meas does not single out the hot qubit")
	}
	if h.Reset(5) != 3e-2 || h.Reset(0) != 1e-3 { //lint:allow floateq model returns its parameter exactly
		t.Error("Reset does not single out the hot qubit")
	}
}
