package code

import (
	"caliqec/internal/lattice"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"testing"
)

// timelineEpochs builds the canonical calibration cycle: pristine →
// isolated (one interior data qubit off the logicals) → reintegrated, on
// the given lattice kind. It uses the deformation semantics directly (the
// deform package cannot be imported here without a cycle, so the isolation
// is reproduced through the patch API: this mirrors deform.dataQRM).
func timelineEpochs(t *testing.T, kind lattice.Kind, target [2]int) []Epoch {
	t.Helper()
	mk := func() *Patch {
		if kind == lattice.Square {
			return NewPatch(lattice.NewSquare(5))
		}
		return NewPatch(lattice.NewHeavyHex(5))
	}
	pristine := mk()
	iso := mk()
	q := iso.Lat.DataID[target]
	// Inline DataQ_RM: drop q from all gauges, merge the two containing
	// checks per basis.
	iso.Removed[q] = true
	for _, c := range iso.Checks {
		for _, g := range c.Gauges {
			out := g.Data[:0]
			for _, d := range g.Data {
				if d != q {
					out = append(out, d)
				}
			}
			g.Data = out
			for a, d := range g.Attach {
				if d == q {
					delete(g.Attach, a)
				}
			}
		}
	}
	for _, basis := range []lattice.Basis{lattice.BasisX, lattice.BasisZ} {
		var group []*Check
		for _, c := range iso.Checks {
			if c.Basis != basis {
				continue
			}
			for _, pl := range c.Plaqs {
				for _, dq := range iso.Lat.Plaquettes[pl].Data {
					if dq == q {
						group = append(group, c)
					}
				}
			}
		}
		if len(group) == 2 {
			group[0].Gauges = append(group[0].Gauges, group[1].Gauges...)
			group[0].Plaqs = append(group[0].Plaqs, group[1].Plaqs...)
			iso.RemoveCheck(group[1].ID)
		}
	}
	if err := iso.Validate(); err != nil {
		t.Fatalf("isolated patch invalid: %v", err)
	}
	reint := mk()
	return []Epoch{{pristine, 3}, {iso, 3}, {reint, 3}}
}

// TestTimelineNoiselessDeterministic is the acid test for gauge-fixing
// across deformation transitions: a full isolate→reintegrate cycle must
// produce only deterministic, zero-valued detectors on a noiseless run.
func TestTimelineNoiselessDeterministic(t *testing.T) {
	r := rng.New(3)
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		for _, basis := range []lattice.Basis{lattice.BasisZ, lattice.BasisX} {
			epochs := timelineEpochs(t, kind, [2]int{2, 2})
			c, err := TimelineCircuit(epochs, TimelineOptions{Basis: basis})
			if err != nil {
				t.Fatalf("%v %v: %v", kind, basis, err)
			}
			for trial := 0; trial < 3; trial++ {
				res, err := sim.RunNoiseless(c, r)
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range res.Detectors {
					if v {
						t.Fatalf("%v memory-%v: timeline detector %d fired noiselessly", kind, basis, i)
					}
				}
				if res.Observables[0] {
					t.Fatalf("%v memory-%v: timeline observable not deterministic", kind, basis)
				}
			}
		}
	}
}

// TestTimelineHasTransitionDetectors: the circuit must carry detectors
// linking epochs (more detectors than three isolated memory experiments
// would have minus their initials would imply).
func TestTimelineHasTransitionDetectors(t *testing.T) {
	epochs := timelineEpochs(t, lattice.Square, [2]int{2, 2})
	c, err := TimelineCircuit(epochs, TimelineOptions{Basis: lattice.BasisZ})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDetectors < 24*9-10 {
		t.Errorf("only %d detectors; transitions appear to drop most comparisons", c.NumDetectors)
	}
	if c.NumObs != 1 {
		t.Errorf("%d observables", c.NumObs)
	}
}

// TestTimelineRejectsMovedLogical: deforming a qubit on the logical support
// moves the representative; TimelineCircuit must refuse.
func TestTimelineRejectsMovedLogical(t *testing.T) {
	pristine := NewPatch(lattice.NewSquare(5))
	moved := NewPatch(lattice.NewSquare(5))
	moved.LogicalZ = append([]int(nil), moved.LogicalZ[1:]...) // corrupt support
	_, err := TimelineCircuit([]Epoch{{pristine, 2}, {moved, 2}}, TimelineOptions{Basis: lattice.BasisZ})
	if err == nil {
		t.Fatal("moved logical accepted")
	}
}
