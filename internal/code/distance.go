package code

import (
	"caliqec/internal/lattice"
	"caliqec/internal/pauli"
	"math/bits"
)

// Distance returns the patch's code distance for the given logical basis
// via shortest-path analysis of the matching graph:
//
//   - the Z distance (basis Z: minimum-weight logical Z) is the shortest
//     west→east chain of data qubits where consecutive qubits share an
//     active X check;
//   - the X distance (basis X) is the shortest north→south chain where
//     consecutive qubits share an active Z check.
//
// Deformation is handled naturally: a super-stabilizer is a single node, so
// holes shorten paths exactly as distance loss demands. For matchable codes
// (which all CaliQEC deformations preserve) this equals the true minimum
// logical weight; BruteDistance provides the exact cross-check for small
// patches.
func (p *Patch) Distance(basis lattice.Basis) int {
	checkBasis := lattice.BasisX // checks that detect the errors of `basis`
	if basis == lattice.BasisX {
		checkBasis = lattice.BasisZ
	}
	// Node IDs: check index within filtered list; two virtual boundaries.
	var checks []*Check
	for _, c := range p.Checks {
		if c.Basis == checkBasis {
			checks = append(checks, c)
		}
	}
	id := map[int]int{} // check ID -> node
	for i, c := range checks {
		id[c.ID] = i
	}
	bndA, bndB := len(checks), len(checks)+1
	n := len(checks) + 2

	// Boundary side of a data qubit with only one incident check: for Z
	// distance the relevant boundaries are west/east (column extremes), for
	// X distance north/south (row extremes).
	side := func(q int) int {
		qb := p.Lat.Qubit(q)
		if basis == lattice.BasisZ {
			if qb.Col <= (p.Lat.Cols-1)*4/2 {
				return bndA
			}
			return bndB
		}
		if qb.Row <= (p.Lat.Rows-1)*4/2 {
			return bndA
		}
		return bndB
	}

	adj := make([][]int, n)
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	_, dataIDs := p.DataIndex()
	for _, q := range dataIDs {
		var incident []int
		for _, c := range checks {
			if c.Operator().At(q) != pauli.I {
				incident = append(incident, id[c.ID])
			}
		}
		switch len(incident) {
		case 2:
			addEdge(incident[0], incident[1])
		case 1:
			addEdge(incident[0], side(q))
		case 0:
			// Unchecked data qubit: errors on it are invisible. A valid
			// deformed code never produces this for an active qubit.
		}
	}
	// BFS from boundary A to boundary B counting edges (= qubits).
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[bndA] = 0
	queue := []int{bndA}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == bndB {
			return dist[v]
		}
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return 0 // boundaries disconnected: no logical of this basis survives
}

// BruteDistance returns the exact minimum weight of a logical operator of
// the given basis by enumerating data-qubit subsets in increasing weight.
// A weight-w Z-type operator is logical iff it commutes with every X check
// and anticommutes with the logical X. Exponential in the number of data
// qubits; intended for patches with ≤ ~25 data qubits (d ≤ 5) in tests.
func (p *Patch) BruteDistance(basis lattice.Basis) int {
	checkBasis := lattice.BasisX
	logical := p.LogicalOp(lattice.BasisX)
	if basis == lattice.BasisX {
		checkBasis = lattice.BasisZ
		logical = p.LogicalOp(lattice.BasisZ)
	}
	idx, ids := p.DataIndex()
	nd := len(ids)
	// Precompute per-check and logical support masks.
	var checkMasks []uint64
	for _, c := range p.Checks {
		if c.Basis != checkBasis {
			continue
		}
		var m uint64
		for _, q := range c.Support() {
			if col, ok := idx[q]; ok {
				m |= 1 << uint(col)
			}
		}
		checkMasks = append(checkMasks, m)
	}
	var logMask uint64
	for _, q := range logical.Support() {
		if col, ok := idx[q]; ok {
			logMask |= 1 << uint(col)
		}
	}
	if nd > 30 {
		panic("code: BruteDistance limited to ≤ 30 data qubits") //lint:allow panicpolicy documented capacity limit; exceeding it is a programming error
	}
	best := nd + 1
	// Enumerate subsets by increasing popcount using Gosper's hack per
	// weight class, stopping at the first weight with a logical.
	for w := 1; w <= nd; w++ {
		if w >= best {
			break
		}
		v := uint64(1)<<uint(w) - 1
		limit := uint64(1) << uint(nd)
		for v < limit {
			ok := true
			for _, m := range checkMasks {
				if bits.OnesCount64(v&m)&1 == 1 {
					ok = false
					break
				}
			}
			if ok && bits.OnesCount64(v&logMask)&1 == 1 {
				return w
			}
			// Gosper's hack: next subset with the same popcount.
			c := v & -v
			r := v + c
			v = (((r ^ v) >> 2) / c) | r
		}
	}
	return 0
}
