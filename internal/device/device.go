// Package device models a synthetic quantum processor: the calibratable
// gates over a lattice, each with its own freshly-calibrated error rate,
// drift time constant, calibration duration, and crosstalk neighbourhood.
//
// This substitutes for the paper's IBM Eagle / Rigetti Ankaa-2 hardware:
// the paper's own large-scale evaluation is simulation driven by
// hardware-*derived parameters* (drift constants log-normal with mean
// 14.08 h, per-gate calibration times of minutes), which is exactly what
// this package samples. The characterization stage (internal/charac)
// re-estimates these ground-truth parameters through simulated experiments,
// like the preparation stage of the paper does on real devices.
package device

import (
	"caliqec/internal/lattice"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"fmt"
	"sort"
)

// GateKind distinguishes one- from two-qubit gates.
type GateKind uint8

// Gate kinds.
const (
	Gate1Q GateKind = iota
	Gate2Q
)

func (k GateKind) String() string {
	if k == Gate1Q {
		return "1Q"
	}
	return "2Q"
}

// Gate is one calibratable operation.
type Gate struct {
	ID     int
	Kind   GateKind
	Qubits []int // 1 or 2 qubit IDs
	// Drift is the ground-truth drift law (re-estimated by charac).
	Drift noise.Drift
	// CaliHours is the time a calibration of this gate takes.
	CaliHours float64
	// Nbr is the ground-truth crosstalk neighbourhood: qubits disturbed by
	// calibrating this gate (paper §4). It always contains the gate's own
	// qubits.
	Nbr []int
	// lastCali is the time (hours) of the most recent calibration.
	lastCali float64
}

// ErrorRate returns the gate's error rate at absolute time t (hours),
// accounting for its most recent calibration.
func (g *Gate) ErrorRate(t float64) float64 {
	dt := t - g.lastCali
	if dt < 0 {
		dt = 0
	}
	return g.Drift.At(dt)
}

// Device is a synthetic processor over a lattice.
type Device struct {
	Lat   *lattice.Lattice
	Gates []Gate
	Model noise.Model
}

// Options configures device synthesis.
type Options struct {
	Model noise.Model // drift-constant distribution
	// P0 is the freshly calibrated error rate (default
	// noise.InitialErrorRate).
	P0 float64
	// CaliMinHours/CaliMaxHours bound per-gate calibration durations
	// (default 2–10 minutes, "individual gate calibration takes a few
	// minutes", §4).
	CaliMinHours, CaliMaxHours float64
	// ExtraNbrProb adds each second-shell qubit to a gate's crosstalk set
	// with this probability (default 0.15), modelling the irregular
	// TLS-induced couplings the Fig. 6 probe discovers.
	ExtraNbrProb float64
}

func (o *Options) fill() {
	if o.Model.MeanHours == 0 { //lint:allow floateq zero MeanHours marks an unset noise model, an exact sentinel
		o.Model = noise.CurrentModel()
	}
	defaultFloat(&o.P0, noise.InitialErrorRate)
	defaultFloat(&o.CaliMinHours, 2.0/60)
	defaultFloat(&o.CaliMaxHours, 10.0/60)
	defaultFloat(&o.ExtraNbrProb, 0.15)
}

// defaultFloat assigns d to *v when the field was left at its zero value.
func defaultFloat(v *float64, d float64) {
	if *v == 0 { //lint:allow floateq the zero value means "unset", an exact sentinel never produced by arithmetic
		*v = d
	}
}

// New synthesizes a device over lat: one single-qubit gate per qubit and
// one two-qubit gate per coupling-graph edge, each with independently
// sampled drift constants and crosstalk neighbourhoods.
func New(lat *lattice.Lattice, opt Options, r *rng.RNG) *Device {
	opt.fill()
	d := &Device{Lat: lat, Model: opt.Model}
	addGate := func(kind GateKind, qubits []int) {
		g := Gate{
			ID:     len(d.Gates),
			Kind:   kind,
			Qubits: qubits,
			Drift: noise.Drift{
				P0:     opt.P0,
				TDrift: opt.Model.SampleTDrift(r),
			},
			CaliHours: opt.CaliMinHours + r.Float64()*(opt.CaliMaxHours-opt.CaliMinHours),
		}
		// Crosstalk neighbourhood: own qubits, all coupled neighbours, and
		// a random sprinkle of second-shell qubits.
		nbr := map[int]bool{}
		for _, q := range qubits {
			nbr[q] = true
			for _, x := range lat.Neighbors(q) {
				nbr[x] = true
				for _, y := range lat.Neighbors(x) {
					if !nbr[y] && r.Bernoulli(opt.ExtraNbrProb) {
						nbr[y] = true
					}
				}
			}
		}
		for q := range nbr {
			g.Nbr = append(g.Nbr, q)
		}
		sort.Ints(g.Nbr)
		d.Gates = append(d.Gates, g)
	}
	for q := range lat.Qubits {
		addGate(Gate1Q, []int{q})
	}
	seen := map[[2]int]bool{}
	for q := range lat.Qubits {
		for _, nb := range lat.Neighbors(q) {
			a, b := q, nb
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			addGate(Gate2Q, []int{a, b})
		}
	}
	return d
}

// Gate returns the gate with the given ID.
func (d *Device) Gate(id int) *Gate {
	if id < 0 || id >= len(d.Gates) {
		panic(fmt.Sprintf("device: gate %d out of range", id)) //lint:allow panicpolicy gate-ID misuse mirrors built-in slice indexing
	}
	return &d.Gates[id]
}

// Calibrate resets a gate's drift clock at time t (hours).
func (d *Device) Calibrate(id int, t float64) { d.Gate(id).lastCali = t }

// CalibrateAll resets every gate at time t (the full pre-program
// calibration of §4).
func (d *Device) CalibrateAll(t float64) {
	for i := range d.Gates {
		d.Gates[i].lastCali = t
	}
}

// NoiseAt lowers the device's state at time t into a per-operation noise
// map for circuit generation: single-qubit gate rates feed H/reset/measure
// noise on that qubit, two-qubit rates feed CX noise on that pair.
func (d *Device) NoiseAt(t float64) *noise.Map {
	m := noise.NewMap(noise.InitialErrorRate)
	for i := range d.Gates {
		g := &d.Gates[i]
		p := g.ErrorRate(t)
		switch g.Kind {
		case Gate1Q:
			q := g.Qubits[0]
			m.Gate1Q[q] = p
			m.MeasQ[q] = p
			m.ResetQ[q] = p
		case Gate2Q:
			m.SetGate2(g.Qubits[0], g.Qubits[1], p)
		}
	}
	return m
}

// MeanErrorAt returns the device-average gate error rate at time t.
func (d *Device) MeanErrorAt(t float64) float64 {
	sum := 0.0
	for i := range d.Gates {
		sum += d.Gates[i].ErrorRate(t)
	}
	return sum / float64(len(d.Gates))
}

// FractionAbove returns the fraction of gates whose error rate at time t
// exceeds the given threshold (the Fig. 1 metric).
func (d *Device) FractionAbove(t, threshold float64) float64 {
	n := 0
	for i := range d.Gates {
		if d.Gates[i].ErrorRate(t) > threshold {
			n++
		}
	}
	return float64(n) / float64(len(d.Gates))
}

// GatesOnQubit returns the IDs of gates acting on qubit q.
func (d *Device) GatesOnQubit(q int) []int {
	var out []int
	for i := range d.Gates {
		for _, x := range d.Gates[i].Qubits {
			if x == q {
				out = append(out, i)
				break
			}
		}
	}
	return out
}
