package device

import (
	"caliqec/internal/lattice"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"testing"
)

func TestDeviceSynthesis(t *testing.T) {
	lat := lattice.NewSquare(5)
	dev := New(lat, Options{}, rng.New(1))
	// One 1Q gate per qubit plus one 2Q gate per coupling edge.
	n1, n2 := 0, 0
	for i := range dev.Gates {
		g := &dev.Gates[i]
		switch g.Kind {
		case Gate1Q:
			n1++
			if len(g.Qubits) != 1 {
				t.Errorf("1Q gate %d has %d qubits", g.ID, len(g.Qubits))
			}
		case Gate2Q:
			n2++
			if len(g.Qubits) != 2 {
				t.Errorf("2Q gate %d has %d qubits", g.ID, len(g.Qubits))
			}
		}
		if g.Drift.TDrift <= 0 {
			t.Errorf("gate %d has non-positive drift constant", g.ID)
		}
		if g.CaliHours < 2.0/60-1e-9 || g.CaliHours > 10.0/60+1e-9 {
			t.Errorf("gate %d calibration %.3fh outside [2,10] minutes", g.ID, g.CaliHours)
		}
		// The crosstalk neighbourhood always contains the gate's qubits.
		for _, q := range g.Qubits {
			found := false
			for _, n := range g.Nbr {
				if n == q {
					found = true
				}
			}
			if !found {
				t.Errorf("gate %d nbr misses own qubit %d", g.ID, q)
			}
		}
	}
	if n1 != lat.NumQubits() {
		t.Errorf("%d 1Q gates, want %d", n1, lat.NumQubits())
	}
	if n2 == 0 {
		t.Error("no 2Q gates")
	}
}

func TestCalibrationResetsDrift(t *testing.T) {
	dev := New(lattice.NewSquare(3), Options{}, rng.New(2))
	g := dev.Gate(0)
	p12 := g.ErrorRate(12)
	if p12 <= g.Drift.P0 {
		t.Fatal("no drift after 12h")
	}
	dev.Calibrate(0, 12)
	if got := g.ErrorRate(12); got != g.Drift.P0 {
		t.Errorf("rate right after calibration %.4g, want p0", got)
	}
	if g.ErrorRate(13) <= g.Drift.P0 {
		t.Error("drift should resume after calibration")
	}
}

func TestFractionAboveMonotone(t *testing.T) {
	dev := New(lattice.NewHeavyHex(5), Options{}, rng.New(3))
	prev := -1.0
	for _, h := range []float64{0, 6, 12, 24, 48} {
		f := dev.FractionAbove(h, noise.Threshold)
		if f < prev {
			t.Errorf("fraction above threshold decreased: %.3f after %.3f", f, prev)
		}
		prev = f
	}
	if dev.FractionAbove(0, noise.Threshold) != 0 {
		t.Error("freshly calibrated device should have nothing above threshold")
	}
	if dev.FractionAbove(96, noise.Threshold) < 0.9 {
		t.Errorf("after 4 days only %.2f above threshold", dev.FractionAbove(96, noise.Threshold))
	}
}

func TestNoiseAtLowersToMap(t *testing.T) {
	dev := New(lattice.NewSquare(3), Options{}, rng.New(4))
	m := dev.NoiseAt(10)
	// Every qubit has an explicit 1Q rate above p0.
	for q := 0; q < dev.Lat.NumQubits(); q++ {
		if m.Gate1(q) <= noise.InitialErrorRate {
			t.Errorf("qubit %d rate %.4g not drifted", q, m.Gate1(q))
		}
	}
	// 2Q rates follow coupling pairs.
	any2 := false
	for q := 0; q < dev.Lat.NumQubits(); q++ {
		for _, nb := range dev.Lat.Neighbors(q) {
			if m.Gate2(q, nb) > noise.InitialErrorRate {
				any2 = true
			}
		}
	}
	if !any2 {
		t.Error("no drifted 2Q rates found")
	}
}

func TestGatesOnQubit(t *testing.T) {
	dev := New(lattice.NewSquare(3), Options{}, rng.New(5))
	gs := dev.GatesOnQubit(0)
	if len(gs) < 2 { // its 1Q gate plus at least one coupler
		t.Errorf("qubit 0 has %d gates", len(gs))
	}
	for _, id := range gs {
		found := false
		for _, q := range dev.Gate(id).Qubits {
			if q == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("gate %d does not touch qubit 0", id)
		}
	}
}
