package decoder

import (
	"caliqec/internal/circuit"
	"caliqec/internal/dem"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"fmt"
	"math"
)

// Result summarizes a Monte-Carlo logical-error-rate measurement.
type Result struct {
	Shots       int
	Failures    int     // shots where decoded prediction missed observable 0
	LER         float64 // Failures / Shots (per run of the sampled circuit)
	WilsonLo    float64 // 95% Wilson interval on LER
	WilsonHi    float64
	Rounds      int     // QEC rounds the circuit contained (caller-provided)
	PerRoundLER float64 // LER converted to a per-round rate (if Rounds > 0)
}

func (r Result) String() string {
	return fmt.Sprintf("shots=%d failures=%d LER=%.3g [%.3g, %.3g]",
		r.Shots, r.Failures, r.LER, r.WilsonLo, r.WilsonHi)
}

// DecoderKind selects which decoder Evaluate builds.
type DecoderKind int

// Available decoders.
const (
	KindUnionFind DecoderKind = iota
	KindGreedy
)

// New builds a decoder of the given kind over g.
func New(kind DecoderKind, g *Graph) Decoder {
	switch kind {
	case KindGreedy:
		return NewGreedy(g)
	default:
		return NewUnionFind(g)
	}
}

// Evaluate samples `shots` Monte-Carlo trajectories of c, decodes each with
// the requested decoder, and returns the logical error rate of observable 0.
// rounds is the number of QEC rounds in the circuit and is only used to
// derive the per-round rate; pass 0 if not applicable.
func Evaluate(c *circuit.Circuit, kind DecoderKind, shots, rounds int, r *rng.RNG) (Result, error) {
	return EvaluateMismatched(c, c, kind, shots, rounds, r)
}

// EvaluateMismatched samples trajectories of `c` but builds the decoder
// from `prior` — a circuit with identical structure whose noise rates
// reflect what the decoder *believes* (e.g. the last calibration). This
// models decoding with stale priors after error drift: the paper's drifted
// scenarios run exactly this way, since the decoder is not told a gate has
// drifted.
func EvaluateMismatched(c, prior *circuit.Circuit, kind DecoderKind, shots, rounds int, r *rng.RNG) (Result, error) {
	if c.NumDetectors != prior.NumDetectors || c.NumObs != prior.NumObs {
		return Result{}, fmt.Errorf("decoder: prior circuit structure mismatch (%d/%d detectors, %d/%d observables)",
			prior.NumDetectors, c.NumDetectors, prior.NumObs, c.NumObs)
	}
	model, err := dem.FromCircuit(prior)
	if err != nil {
		return Result{}, fmt.Errorf("decoder: extracting DEM: %w", err)
	}
	g, err := BuildGraph(model)
	if err != nil {
		return Result{}, fmt.Errorf("decoder: building graph: %w", err)
	}
	dec := New(kind, g)
	fs := sim.NewFrameSimulator(c, r)
	failures := 0
	syndrome := make([]int, 0, 64)
	fs.Sample(shots, func(b sim.BatchResult) {
		for s := 0; s < b.Shots; s++ {
			bit := uint64(1) << uint(s)
			syndrome = syndrome[:0]
			for d, w := range b.Detectors {
				if w&bit != 0 {
					syndrome = append(syndrome, d)
				}
			}
			pred := dec.Decode(syndrome)
			var actual uint64
			if len(b.Observables) > 0 && b.Observables[0]&bit != 0 {
				actual = 1
			}
			if pred&1 != actual {
				failures++
			}
		}
	})
	return Summarize(shots, failures, rounds), nil
}

// Summarize converts raw shot/failure counts into a Result.
func Summarize(shots, failures, rounds int) Result {
	res := Result{Shots: shots, Failures: failures, Rounds: rounds}
	if shots > 0 {
		res.LER = float64(failures) / float64(shots)
		res.WilsonLo, res.WilsonHi = rng.WilsonInterval(failures, shots)
	}
	if rounds > 0 && res.LER < 1 {
		// Per-round rate from total failure probability:
		// P_total = 1 - (1 - p_round)^rounds.
		res.PerRoundLER = 1 - math.Pow(1-res.LER, 1/float64(rounds))
	}
	return res
}
