package decoder

import (
	"caliqec/internal/rng"
	"fmt"
	"math"
)

// Result summarizes a Monte-Carlo logical-error-rate measurement.
//
// The measurement loop itself lives in internal/mc: the Engine there owns
// sampling, decoding, caching and cancellation, and reports its counts
// through this type (via Summarize). This package only defines the
// decoders and the decoding graph.
type Result struct {
	Shots       int
	Failures    int     // shots where the predicted observable mask missed the sampled one
	LER         float64 // Failures / Shots (per run of the sampled circuit)
	WilsonLo    float64 // 95% Wilson interval on LER
	WilsonHi    float64
	Rounds      int     // QEC rounds the circuit contained (caller-provided)
	PerRoundLER float64 // LER converted to a per-round rate (if Rounds > 0)
}

func (r Result) String() string {
	return fmt.Sprintf("shots=%d failures=%d LER=%.3g [%.3g, %.3g]",
		r.Shots, r.Failures, r.LER, r.WilsonLo, r.WilsonHi)
}

// DecoderKind selects a decoder family.
type DecoderKind int

// Available decoders.
const (
	KindUnionFind DecoderKind = iota
	KindGreedy
)

// New builds a decoder of the given kind over g.
func New(kind DecoderKind, g *Graph) Decoder {
	switch kind {
	case KindGreedy:
		return NewGreedy(g)
	default:
		return NewUnionFind(g)
	}
}

// Summarize converts raw shot/failure counts into a Result.
func Summarize(shots, failures, rounds int) Result {
	res := Result{Shots: shots, Failures: failures, Rounds: rounds}
	if shots > 0 {
		res.LER = float64(failures) / float64(shots)
		res.WilsonLo, res.WilsonHi = rng.WilsonInterval(failures, shots)
	}
	if rounds > 0 && res.LER < 1 {
		// Per-round rate from total failure probability:
		// P_total = 1 - (1 - p_round)^rounds.
		res.PerRoundLER = 1 - math.Pow(1-res.LER, 1/float64(rounds))
	}
	return res
}
