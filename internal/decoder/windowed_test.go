package decoder

import (
	"caliqec/internal/lattice"
	"math/rand"
	"testing"
)

// splitRounds slices a sorted syndrome into per-round detector lists using
// the graph's round map (the same linear walk the stream path uses).
func splitRounds(g *Graph, syndrome []int) [][]int {
	rounds := make([][]int, g.NumRounds)
	for _, d := range syndrome {
		r := g.NodeRound[d]
		rounds[r] = append(rounds[r], d)
	}
	return rounds
}

// windowedDecode runs one whole shot through a Windowed decoder.
func windowedDecode(t *testing.T, w *Windowed, g *Graph, syndrome []int) uint64 {
	t.Helper()
	w.Reset()
	for _, fired := range splitRounds(g, syndrome) {
		if err := w.IngestRound(fired); err != nil {
			t.Fatal(err)
		}
	}
	return w.Flush()
}

func TestGraphRoundLayering(t *testing.T) {
	_, g, _, _, _ := memCircuit(t, lattice.Square, 3, 4, 1e-3)
	if g.NumRounds == 0 || g.NodeRound == nil || g.RoundNodes == nil {
		t.Fatalf("graph missing round layering: NumRounds=%d", g.NumRounds)
	}
	seen := 0
	for r, nodes := range g.RoundNodes {
		prev := -1
		for _, n := range nodes {
			if g.NodeRound[n] != r {
				t.Fatalf("node %d in layer %d but NodeRound=%d", n, r, g.NodeRound[n])
			}
			if n <= prev {
				t.Fatalf("layer %d not ascending: %v", r, nodes)
			}
			prev = n
			seen++
		}
	}
	if seen != g.NumDetectors {
		t.Fatalf("layers cover %d of %d detectors", seen, g.NumDetectors)
	}
	for i, e := range g.Edges {
		wantMin, wantMax := g.NodeRound[e.U], g.NodeRound[e.U]
		if e.V != g.Boundary {
			if r := g.NodeRound[e.V]; r < wantMin {
				wantMin = r
			} else if r > wantMax {
				wantMax = r
			}
		}
		if e.MinRound != wantMin || e.MaxRound != wantMax {
			t.Fatalf("edge %d span [%d,%d], want [%d,%d]", i, e.MinRound, e.MaxRound, wantMin, wantMax)
		}
		if e.MaxRound-e.MinRound > 1 {
			t.Fatalf("edge %d spans %d rounds; matching graphs are time-local", i, e.MaxRound-e.MinRound+1)
		}
	}
}

// TestWindowedFullWindowBitIdentical: a window at least as large as the shot
// never slides mid-stream, so Flush performs a single unmasked decode that
// must agree bit-for-bit with whole-shot UnionFind.Decode.
func TestWindowedFullWindowBitIdentical(t *testing.T) {
	_, g, uf, _, _ := memCircuit(t, lattice.Square, 3, 5, 2e-3)
	w, err := NewWindowed(g, g.NumRounds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		var syndrome []int
		for d := 0; d < g.NumDetectors; d++ {
			if rng.Float64() < 0.04 {
				syndrome = append(syndrome, d)
			}
		}
		want := uf.(*UnionFind).Decode(syndrome)
		got := windowedDecode(t, w, g, syndrome)
		if got != want {
			t.Fatalf("trial %d: windowed %b != whole-shot %b (syndrome %v)", trial, got, want, syndrome)
		}
	}
}

// TestWindowedSingleMechanisms: every elementary mechanism's syndrome must
// decode to its observable mask for any window that can hold a time-like
// edge (W >= 2); single errors always fit inside one window.
func TestWindowedSingleMechanisms(t *testing.T) {
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		_, g, _, _, m := memCircuit(t, kind, 3, 4, 1e-3)
		for _, win := range []int{2, 3, 4} {
			w, err := NewWindowed(g, win)
			if err != nil {
				t.Fatal(err)
			}
			for i, mech := range m.Mechanisms {
				pred := windowedDecode(t, w, g, mech.Detectors)
				if pred != mech.ObsMask {
					t.Errorf("%v W=%d: mechanism %d %v obs=%b decoded as %b",
						kind, win, i, mech.Detectors, mech.ObsMask, pred)
				}
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestWindowedDeterministicReuse: the same decoder instance must produce the
// same answers across interleaved shots (scratch state fully reset).
func TestWindowedDeterministicReuse(t *testing.T) {
	_, g, _, _, _ := memCircuit(t, lattice.Square, 3, 6, 2e-3)
	w, err := NewWindowed(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	syndromes := make([][]int, 50)
	for i := range syndromes {
		for d := 0; d < g.NumDetectors; d++ {
			if rng.Float64() < 0.05 {
				syndromes[i] = append(syndromes[i], d)
			}
		}
	}
	first := make([]uint64, len(syndromes))
	for i, s := range syndromes {
		first[i] = windowedDecode(t, w, g, s)
	}
	for i := len(syndromes) - 1; i >= 0; i-- {
		if got := windowedDecode(t, w, g, syndromes[i]); got != first[i] {
			t.Fatalf("shot %d: %b on reuse, %b first", i, got, first[i])
		}
	}
}

func TestWindowedIngestErrors(t *testing.T) {
	_, g, _, _, _ := memCircuit(t, lattice.Square, 3, 3, 1e-3)
	if _, err := NewWindowed(g, 0); err == nil {
		t.Error("want error for window 0")
	}
	roundless := &Graph{NumDetectors: 2, Boundary: 2, Adj: make([][]int, 3)}
	if _, err := NewWindowed(roundless, 3); err == nil {
		t.Error("want error for roundless graph")
	}
	w, err := NewWindowed(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Detector from the wrong round.
	var late int
	for d, r := range g.NodeRound {
		if r == g.NumRounds-1 {
			late = d
			break
		}
	}
	if err := w.IngestRound([]int{late}); err == nil {
		t.Error("want error for detector outside its round")
	}
	w.Reset()
	for r := 0; r < g.NumRounds; r++ {
		if err := w.IngestRound(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.IngestRound(nil); err == nil {
		t.Error("want error for ingesting past NumRounds")
	}
}

// TestWindowedCommitCrossingEdge exercises the artifact-edge path directly:
// a time-like defect pair straddling the commit boundary must still be
// matched through its time-like edge, with the future-side pending defect
// cancelled by the committed correction rather than re-matched later.
func TestWindowedCommitCrossingEdge(t *testing.T) {
	_, g, uf, _, _ := memCircuit(t, lattice.Square, 3, 6, 2e-3)
	// Find a time-like edge with an interior span (not touching first/last
	// detector rounds) and empty observable effect distinction irrelevant.
	var pair []int
	for _, e := range g.Edges {
		if e.V != g.Boundary && e.MaxRound == e.MinRound+1 && e.MinRound == 2 {
			pair = []int{e.U, e.V}
			if pair[0] > pair[1] {
				pair[0], pair[1] = pair[1], pair[0]
			}
			break
		}
	}
	if pair == nil {
		t.Skip("no interior time-like edge found")
	}
	want := uf.(*UnionFind).Decode(pair)
	for _, win := range []int{2, 3} {
		w, err := NewWindowed(g, win)
		if err != nil {
			t.Fatal(err)
		}
		if got := windowedDecode(t, w, g, pair); got != want {
			t.Errorf("W=%d: crossing pair %v decoded %b, whole-shot %b", win, pair, got, want)
		}
	}
}
