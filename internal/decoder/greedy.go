package decoder

import (
	"sort"
)

// Greedy is a minimum-weight matching decoder. For each syndrome it
// computes shortest paths between defects (and from each defect to the
// boundary) with Dijkstra, then matches defects pairwise or to the
// boundary. For up to maxExactDefects defects the matching is solved
// exactly by subset dynamic programming (true MWPM on the derived complete
// graph); larger syndromes fall back to greedy closest-pair matching. It
// stands in for PyMatching as the baseline/cross-check decoder.
type Greedy struct {
	g    *Graph
	dist []float64
	via  []int // edge used to reach node in Dijkstra
	mark []int // visit stamp
	gen  int

	// Dijkstra scratch, reused across calls (one Dijkstra runs per defect
	// per Decode, so per-call allocations here dominate batch decoding).
	settled    []int // settle stamp, valid when == settledGen
	settledGen int
	q          pq
}

// NewGreedy returns a greedy matching decoder over g.
func NewGreedy(g *Graph) *Greedy {
	n := g.NumDetectors + 1
	return &Greedy{
		g:       g,
		dist:    make([]float64, n),
		via:     make([]int, n),
		mark:    make([]int, n),
		settled: make([]int, n),
	}
}

type pqItem struct {
	node int
	d    float64
}

// pq is a typed binary min-heap on pqItem.d. The sift routines mirror
// container/heap's up/down exactly (same comparisons, same swap pattern),
// so the pop order among equal-distance items — and hence Dijkstra's `via`
// tie-breaking — is bit-identical to the old container/heap-backed version,
// without the interface{} boxing per push/pop.
type pq []pqItem

func (p *pq) push(it pqItem) {
	*p = append(*p, it)
	// Sift up from the new last element.
	h := *p
	j := len(h) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].d < h[i].d) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (p *pq) pop() pqItem {
	h := *p
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down over h[:n].
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].d < h[j1].d {
			j = j2
		}
		if !(h[j].d < h[i].d) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	*p = h[:n]
	return it
}

// dijkstra runs a single-source shortest-path pass from src, returning the
// distance/parent arrays (valid for entries stamped with the current gen).
func (d *Greedy) dijkstra(src int) {
	d.gen++
	d.settledGen++
	q := append(d.q[:0], pqItem{src, 0})
	d.dist[src] = 0
	d.via[src] = -1
	d.mark[src] = d.gen
	for len(q) > 0 {
		it := q.pop()
		if d.settled[it.node] == d.settledGen {
			continue
		}
		d.settled[it.node] = d.settledGen
		for _, ei := range d.g.Adj[it.node] {
			e := &d.g.Edges[ei]
			y := e.U
			if y == it.node {
				y = e.V
			}
			nd := it.d + e.W
			if d.mark[y] != d.gen || nd < d.dist[y] {
				d.mark[y] = d.gen
				d.dist[y] = nd
				d.via[y] = ei
				q.push(pqItem{y, nd})
			}
		}
	}
	d.q = q[:0]
}

// pathObs walks parents from dst back to the Dijkstra source, XOR-ing edge
// observable masks.
func (d *Greedy) pathObs(dst int) uint64 {
	var obs uint64
	v := dst
	for d.via[v] >= 0 {
		e := &d.g.Edges[d.via[v]]
		obs ^= e.ObsMask
		if e.U == v {
			v = e.V
		} else {
			v = e.U
		}
	}
	return obs
}

// maxExactDefects bounds the subset-DP exact matching (2^k·k² work).
const maxExactDefects = 16

// Decode implements Decoder.
func (d *Greedy) Decode(syndrome []int) uint64 {
	if len(syndrome) == 0 {
		return 0
	}
	n := len(syndrome)
	// Pairwise defect distances plus boundary distances, one Dijkstra per
	// defect. inf entries mark unreachable pairs.
	const inf = 1e18
	pair := make([][]float64, n)
	pobs := make([][]uint64, n)
	bnd := make([]float64, n)
	bobs := make([]uint64, n)
	for i := range pair {
		pair[i] = make([]float64, n)
		pobs[i] = make([]uint64, n)
		for j := range pair[i] {
			pair[i][j] = inf
		}
		bnd[i] = inf
	}
	for i, s := range syndrome {
		d.dijkstra(s)
		for j := i + 1; j < n; j++ {
			t := syndrome[j]
			if d.mark[t] == d.gen {
				pair[i][j] = d.dist[t]
				pair[j][i] = d.dist[t]
				o := d.pathObs(t)
				pobs[i][j] = o
				pobs[j][i] = o
			}
		}
		if d.mark[d.g.Boundary] == d.gen {
			bnd[i] = d.dist[d.g.Boundary]
			bobs[i] = d.pathObs(d.g.Boundary)
		}
	}
	if n <= maxExactDefects {
		return d.exactMatch(n, pair, pobs, bnd, bobs, inf)
	}
	return d.greedyMatch(n, pair, pobs, bnd, bobs, inf)
}

// exactMatch solves min-weight matching with a boundary option by dynamic
// programming over defect subsets.
func (d *Greedy) exactMatch(n int, pair [][]float64, pobs [][]uint64, bnd []float64, bobs []uint64, inf float64) uint64 {
	size := 1 << uint(n)
	cost := make([]float64, size)
	choice := make([]int32, size) // encodes (i<<8)|j, j==0xff for boundary
	for m := 1; m < size; m++ {
		cost[m] = inf
		choice[m] = -1
		// Lowest set defect must be matched now.
		i := 0
		for (m>>uint(i))&1 == 0 {
			i++
		}
		rest := m &^ (1 << uint(i))
		if bnd[i] < inf && cost[rest]+bnd[i] < cost[m] {
			cost[m] = cost[rest] + bnd[i]
			choice[m] = int32(i<<8 | 0xff)
		}
		for j := i + 1; j < n; j++ {
			if (m>>uint(j))&1 == 0 || pair[i][j] >= inf {
				continue
			}
			sub := rest &^ (1 << uint(j))
			if c := cost[sub] + pair[i][j]; c < cost[m] {
				cost[m] = c
				choice[m] = int32(i<<8 | j)
			}
		}
		if choice[m] == -1 {
			// Unmatchable defect: drop it (disconnected graph component).
			cost[m] = cost[rest]
			choice[m] = int32(i<<8 | 0xfe)
		}
	}
	var obs uint64
	for m := size - 1; m > 0; {
		ch := choice[m]
		i := int(ch >> 8)
		j := int(ch & 0xff)
		switch j {
		case 0xff:
			obs ^= bobs[i]
			m &^= 1 << uint(i)
		case 0xfe:
			m &^= 1 << uint(i)
		default:
			obs ^= pobs[i][j]
			m &^= 1<<uint(i) | 1<<uint(j)
		}
	}
	return obs
}

// greedyMatch matches closest pairs (or boundary) first; used when the
// defect count exceeds the exact-DP budget.
func (d *Greedy) greedyMatch(n int, pair [][]float64, pobs [][]uint64, bnd []float64, bobs []uint64, inf float64) uint64 {
	type cand struct {
		i, j int // j == -1 means boundary
		dst  float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pair[i][j] < inf {
				cands = append(cands, cand{i, j, pair[i][j]})
			}
		}
		if bnd[i] < inf {
			cands = append(cands, cand{i, -1, bnd[i]})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dst < cands[b].dst })
	matched := make([]bool, n)
	remaining := n
	var obs uint64
	for _, c := range cands {
		if remaining == 0 {
			break
		}
		if matched[c.i] || (c.j >= 0 && matched[c.j]) {
			continue
		}
		matched[c.i] = true
		remaining--
		if c.j >= 0 {
			matched[c.j] = true
			remaining--
			obs ^= pobs[c.i][c.j]
		} else {
			obs ^= bobs[c.i]
		}
	}
	return obs
}
