// Package decoder turns detector error models into decoding graphs and
// implements two decoders over them:
//
//   - a weighted union-find decoder (Delfosse–Nickerson [15 in the paper]),
//     the production decoder used by every Monte-Carlo experiment; and
//   - a greedy minimum-weight matching decoder kept as a baseline and
//     cross-check.
//
// Both decoders consume syndromes (sets of fired detectors) and emit the
// predicted logical-observable flip mask, standing in for PyMatching in the
// paper's Stim+PyMatching evaluation pipeline.
package decoder

import (
	"caliqec/internal/dem"
	"fmt"
	"math"
)

// Graph is a decoding graph: nodes are detectors plus one virtual boundary
// node, edges are graph-like error mechanisms. When the source model carries
// round structure the graph is additionally layered by round: NodeRound maps
// each detector to its QEC round, RoundNodes lists each round's detectors in
// ascending index order, and every edge records the round span it covers.
// The edge list and adjacency order are independent of the layering — they
// are built in mechanism order exactly as before — so round metadata never
// perturbs union-find tie-breaking.
type Graph struct {
	NumDetectors int
	Boundary     int // index of the virtual boundary node (= NumDetectors)
	Edges        []Edge
	Adj          [][]int // node -> incident edge indices

	// Round layering; zero/nil when the model has no round structure.
	NumRounds  int
	NodeRound  []int   // detector -> round (boundary node excluded)
	RoundNodes [][]int // round -> detector indices, ascending
	// NodeQubit maps each detector to the physical qubit whose measurement
	// closed it (-1 unknown); nil when the source model carries no qubit
	// attribution. Drift observability reads it through DetectorQubit to
	// name the hardware qubit behind an anomalous detector fire rate.
	NodeQubit []int
}

// DetectorQubit returns the physical qubit detector d is attributed to, or
// -1 when the graph carries no qubit attribution or d is out of range.
func (g *Graph) DetectorQubit(d int) int {
	if d < 0 || d >= len(g.NodeQubit) {
		return -1
	}
	return g.NodeQubit[d]
}

// DetectorRound returns the QEC round of detector d, or -1 when the graph
// carries no round layering or d is out of range.
func (g *Graph) DetectorRound(d int) int {
	if d < 0 || d >= len(g.NodeRound) {
		return -1
	}
	return g.NodeRound[d]
}

// Edge is one decoding-graph edge.
type Edge struct {
	U, V    int     // node indices; U is always a detector, V may be the boundary
	P       float64 // total mechanism probability
	W       float64 // weight = ln((1-p)/p), clamped to ≥ minEdgeWeight
	WInt    int     // integer weight used by union-find growth
	ObsMask uint64  // observables flipped when this edge is in the correction
	// MinRound/MaxRound span the rounds of the edge's real endpoints: equal
	// for space-like and boundary edges, adjacent for time-like edges. The
	// windowed decoder uses only edges whose span lies inside the active
	// window. Both zero when the graph has no round structure.
	MinRound int
	MaxRound int
}

const minEdgeWeight = 1e-3

// weightScale converts log-likelihood weights to integer growth units for
// the union-find decoder. Two units per unit weight keeps half-edge growth
// meaningful while bounding the number of growth rounds.
const weightScale = 2.0

// BuildGraph converts a DEM into a decoding graph. Mechanisms with one
// detector become boundary edges; with two, internal edges. Mechanisms with
// zero detectors but a non-zero observable mask are undetectable logical
// errors and cause an error, since no decoder can handle them.
func BuildGraph(m *dem.Model) (*Graph, error) {
	g := &Graph{
		NumDetectors: m.NumDetectors,
		Boundary:     m.NumDetectors,
		Adj:          make([][]int, m.NumDetectors+1),
	}
	// Merge parallel mechanisms (same endpoints, possibly different obs
	// masks). Distinct obs masks on the same endpoints cannot be merged;
	// keep the heavier-probability one as the representative correction,
	// folding probabilities, which is the standard matching-graph
	// approximation.
	type key struct{ u, v int }
	index := map[key]int{}
	for _, mech := range m.Mechanisms {
		var u, v int
		switch len(mech.Detectors) {
		case 0:
			if mech.ObsMask != 0 {
				return nil, fmt.Errorf("decoder: undetectable logical error mechanism (p=%g)", mech.P)
			}
			continue
		case 1:
			u, v = mech.Detectors[0], g.Boundary
		case 2:
			u, v = mech.Detectors[0], mech.Detectors[1]
		default:
			return nil, fmt.Errorf("decoder: non-graph-like mechanism with %d detectors", len(mech.Detectors))
		}
		k := key{u, v}
		if i, ok := index[k]; ok {
			e := &g.Edges[i]
			if mech.P > e.P && mech.ObsMask != e.ObsMask {
				e.ObsMask = mech.ObsMask
			}
			e.P = e.P*(1-mech.P) + mech.P*(1-e.P)
			continue
		}
		index[k] = len(g.Edges)
		g.Edges = append(g.Edges, Edge{U: u, V: v, P: mech.P, ObsMask: mech.ObsMask})
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		p := e.P
		if p > 0.5 {
			p = 0.5
		}
		w := math.Log((1 - p) / p)
		if w < minEdgeWeight {
			w = minEdgeWeight
		}
		e.W = w
		e.WInt = int(math.Round(w * weightScale))
		if e.WInt < 1 {
			e.WInt = 1
		}
		g.Adj[e.U] = append(g.Adj[e.U], i)
		g.Adj[e.V] = append(g.Adj[e.V], i)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.DetectorQubits != nil {
		g.NodeQubit = append([]int(nil), m.DetectorQubits...)
	}
	if m.NumRounds > 0 {
		g.NumRounds = m.NumRounds
		g.NodeRound = append([]int(nil), m.DetectorRounds...)
		g.RoundNodes = make([][]int, m.NumRounds)
		for d, r := range g.NodeRound {
			g.RoundNodes[r] = append(g.RoundNodes[r], d)
		}
		for i := range g.Edges {
			e := &g.Edges[i]
			e.MinRound = g.NodeRound[e.U]
			e.MaxRound = e.MinRound
			if e.V != g.Boundary {
				rv := g.NodeRound[e.V]
				if rv < e.MinRound {
					e.MinRound = rv
				}
				if rv > e.MaxRound {
					e.MaxRound = rv
				}
			}
		}
	}
	return g, nil
}

// Decoder predicts the logical-observable flip mask from a syndrome.
type Decoder interface {
	// Decode takes the sorted list of fired detectors and returns the
	// predicted observable flip mask.
	Decode(syndrome []int) uint64
}
