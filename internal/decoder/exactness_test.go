package decoder

import (
	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/dem"
	"caliqec/internal/lattice"
	"testing"
)

// codeCapacityCircuit builds a code-capacity experiment for a patch: data X
// errors only, one perfect syndrome-extraction round, perfect readout. In
// this setting every weight-≤⌊(d−1)/2⌋ error is uniquely correctable, so a
// sound decoder must fix all of them.
func codeCapacityCircuit(t *testing.T, patch *code.Patch, p float64) *circuit.Circuit {
	t.Helper()
	c, err := patch.MemoryCircuit(code.MemoryOptions{
		Rounds: 1, Basis: lattice.BasisZ, Noise: dataOnlyNoise{p},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// dataOnlyNoise puts depolarizing noise only on data-qubit idles (the
// per-round idle channel) and nothing on gates, measurement or reset.
type dataOnlyNoise struct{ p float64 }

func (n dataOnlyNoise) Gate1(q int) float64    { return n.p } // idle channel uses Gate1
func (n dataOnlyNoise) Gate2(a, b int) float64 { return 0 }
func (n dataOnlyNoise) Meas(q int) float64     { return 0 }
func (n dataOnlyNoise) Reset(q int) float64    { return 0 }

// TestAllLowWeightErrorsCorrected enumerates every single mechanism and
// every pair of mechanisms of the d=5 code-capacity model and checks that
// the decoders predict the exact observable flip. Weight ≤ 2 < d/2, so
// failure is a decoder bug, not a code limitation.
func TestAllLowWeightErrorsCorrected(t *testing.T) {
	patch := code.NewPatch(lattice.NewSquare(5))
	c := codeCapacityCircuit(t, patch, 1e-3)
	m, err := dem.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	decoders := map[string]Decoder{
		"union-find": NewUnionFind(g),
		"matching":   NewGreedy(g),
	}
	// Gate1 noise also lands on ancilla H gates; restrict to mechanisms
	// whose probability matches the data-idle channel components and which
	// are space-like (some mechanisms coincide — fine, they are all valid
	// single errors anyway).
	mechs := m.Mechanisms
	if len(mechs) < 20 {
		t.Fatalf("only %d mechanisms", len(mechs))
	}
	xorInts := func(a, b []int) []int {
		seen := map[int]int{}
		for _, x := range a {
			seen[x]++
		}
		for _, x := range b {
			seen[x]++
		}
		var out []int
		for x, n := range seen {
			if n%2 == 1 {
				out = append(out, x)
			}
		}
		return out
	}
	for name, dec := range decoders {
		// Singles.
		for i, mech := range mechs {
			if got := dec.Decode(sorted(mech.Detectors)); got != mech.ObsMask {
				t.Errorf("%s: single mechanism %d mispredicted (obs %b vs %b)", name, i, got, mech.ObsMask)
			}
		}
		// Pairs (weight-2 errors).
		failures := 0
		total := 0
		for i := 0; i < len(mechs); i++ {
			for j := i + 1; j < len(mechs); j++ {
				syndrome := xorInts(mechs[i].Detectors, mechs[j].Detectors)
				want := mechs[i].ObsMask ^ mechs[j].ObsMask
				total++
				if got := dec.Decode(sorted(syndrome)); got != want {
					failures++
				}
			}
		}
		// Matching (exact for ≤16 defects) must fix every pair; union-find
		// is allowed a small number of tie-breaking misses.
		limit := 0
		if name == "union-find" {
			limit = total / 50 // ≤2%
		}
		if failures > limit {
			t.Errorf("%s: %d/%d weight-2 errors mispredicted (limit %d)", name, failures, total, limit)
		}
	}
}

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
