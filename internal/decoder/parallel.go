package decoder

import (
	"caliqec/internal/circuit"
	"caliqec/internal/dem"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"fmt"
	"runtime"
	"sync"
)

// EvaluateParallel is Evaluate with the Monte-Carlo shots fanned out over a
// worker pool: each worker owns an independent frame simulator (seeded by
// splitting r deterministically) and its own decoder instance over the
// shared decoding graph. Results are exactly reproducible for a fixed
// (seed, workers) pair; workers ≤ 0 selects GOMAXPROCS.
func EvaluateParallel(c *circuit.Circuit, kind DecoderKind, shots, rounds, workers int, r *rng.RNG) (Result, error) {
	return evaluateParallelMismatched(c, c, kind, shots, rounds, workers, r)
}

// EvaluateParallelMismatched is EvaluateMismatched over a worker pool.
func EvaluateParallelMismatched(c, prior *circuit.Circuit, kind DecoderKind, shots, rounds, workers int, r *rng.RNG) (Result, error) {
	return evaluateParallelMismatched(c, prior, kind, shots, rounds, workers, r)
}

func evaluateParallelMismatched(c, prior *circuit.Circuit, kind DecoderKind, shots, rounds, workers int, r *rng.RNG) (Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots/64+1 {
		workers = shots/64 + 1
	}
	if c.NumDetectors != prior.NumDetectors || c.NumObs != prior.NumObs {
		return Result{}, fmt.Errorf("decoder: prior circuit structure mismatch")
	}
	model, err := dem.FromCircuit(prior)
	if err != nil {
		return Result{}, fmt.Errorf("decoder: extracting DEM: %w", err)
	}
	g, err := BuildGraph(model)
	if err != nil {
		return Result{}, fmt.Errorf("decoder: building graph: %w", err)
	}
	// Seeds are drawn up front so the assignment is independent of
	// scheduling order.
	seeds := make([]*rng.RNG, workers)
	for i := range seeds {
		seeds[i] = r.Split()
	}
	per := shots / workers
	rem := shots % workers

	var wg sync.WaitGroup
	failures := make([]int, workers)
	for w := 0; w < workers; w++ {
		n := per
		if w < rem {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			dec := New(kind, g)
			fs := sim.NewFrameSimulator(c, seeds[w])
			syndrome := make([]int, 0, 64)
			fs.Sample(n, func(b sim.BatchResult) {
				for s := 0; s < b.Shots; s++ {
					bit := uint64(1) << uint(s)
					syndrome = syndrome[:0]
					for d, word := range b.Detectors {
						if word&bit != 0 {
							syndrome = append(syndrome, d)
						}
					}
					pred := dec.Decode(syndrome)
					var actual uint64
					if len(b.Observables) > 0 && b.Observables[0]&bit != 0 {
						actual = 1
					}
					if pred&1 != actual {
						failures[w]++
					}
				}
			})
		}(w, n)
	}
	wg.Wait()
	total := 0
	for _, f := range failures {
		total += f
	}
	return Summarize(shots, total, rounds), nil
}
