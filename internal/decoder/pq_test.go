package decoder

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refPQ is the old container/heap-backed implementation, kept in test code
// as the oracle: the typed pq must reproduce its pop order exactly,
// including ties, since Dijkstra's via[] tie-breaking depends on it.
type refPQ []pqItem

func (p refPQ) Len() int            { return len(p) }
func (p refPQ) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p refPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *refPQ) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *refPQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

func TestTypedPQMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var a pq
		var b refPQ
		// Interleave pushes and pops; duplicate keys are likely (d drawn
		// from a small set) so tie order is genuinely exercised.
		for op := 0; op < 400; op++ {
			if len(a) == 0 || rng.Intn(3) > 0 {
				it := pqItem{node: op, d: float64(rng.Intn(8))}
				a.push(it)
				heap.Push(&b, it)
			} else {
				x := a.pop()
				y := heap.Pop(&b).(pqItem)
				if x != y {
					t.Fatalf("trial %d op %d: typed pop %+v, container/heap pop %+v", trial, op, x, y)
				}
			}
		}
		for len(a) > 0 {
			x := a.pop()
			y := heap.Pop(&b).(pqItem)
			if x != y {
				t.Fatalf("trial %d drain: typed pop %+v, container/heap pop %+v", trial, x, y)
			}
		}
	}
}
