package decoder

import "sort"

// UnionFind is a weighted union-find decoder (Delfosse–Nickerson). Clusters
// grow from syndrome defects in integer weight units; when the grown regions
// of two endpoints cover an edge, their clusters merge. Growth stops when
// every cluster is neutral (even defect count or touching the boundary).
// A spanning-forest peeling pass then extracts the correction.
//
// Scratch state is kept pristine between calls instead of being reset at
// the start of every decode: each decode tracks exactly the nodes and edges
// it dirties (syndrome defects, absorbed endpoints, partially grown edges —
// O(cluster) of them, typically a handful) and restores them before
// returning, so per-shot cost scales with the syndrome instead of with
// graph size. At realistic error rates most shots fire a few detectors out
// of hundreds, making this the difference between O(defects) and O(V+E)
// per shot.
type UnionFind struct {
	g *Graph

	// Scratch state, pristine between Decode calls. Pristine means:
	// parent[i]=i, rank/parity 0, hasBnd only at the boundary node,
	// defect/isRoot/added/visited/carry all false, parentEdge -1, every
	// frontier list empty, every edge's grow 0 and grown false.
	parent  []int
	rank    []int
	parity  []int  // defects mod 2 per cluster root
	hasBnd  []bool // cluster contains the boundary node
	visited []bool
	defect  []bool
	grow    []int // growth accumulated on each edge
	grown   []bool
	// Per-root candidate boundary edge list (lazily cleaned).
	frontier [][]int

	// Root-set scratch: rootList holds current cluster roots in insertion
	// order (a deterministic replacement for the old map-based set, whose
	// iteration order could reorder tie-breaking unions between runs);
	// isRoot marks membership.
	rootList []int
	isRoot   []bool
	added    []bool // node's adjacency already pushed to a frontier
	act      []int  // active roots this growth round
	satur    []int  // edges saturated this growth round

	// Dirty tracking: the nodes (excluding the boundary, which is handled
	// unconditionally) and edges this decode has touched and must restore.
	// dirty is exactly the added-marked node set — every node that can
	// receive a union/find/frontier write is either a defect or an absorbed
	// endpoint, and both are added-marked before the write.
	dirty     []int
	grownList []int // edges with grow > 0, pushed on the 0→1 transition

	// Peeling scratch.
	parentEdge []int
	order      []int
	stack      []int
	carry      []bool
	peelNodes  []int // sorted copy of dirty: ascending spanning-forest roots
	chosen     []int // edge indices of the correction extracted by peel

	// Active round window [winLo, winHi): edges whose round span falls
	// outside it are invisible to growth. Whole-shot Decode sets the window
	// to cover everything, so the filter is a no-op there.
	winLo, winHi int
}

// NewUnionFind returns a union-find decoder over g.
func NewUnionFind(g *Graph) *UnionFind {
	n := g.NumDetectors + 1
	u := &UnionFind{
		g:          g,
		parent:     make([]int, n),
		rank:       make([]int, n),
		parity:     make([]int, n),
		hasBnd:     make([]bool, n),
		visited:    make([]bool, n),
		defect:     make([]bool, n),
		grow:       make([]int, len(g.Edges)),
		grown:      make([]bool, len(g.Edges)),
		frontier:   make([][]int, n),
		isRoot:     make([]bool, n),
		added:      make([]bool, n),
		parentEdge: make([]int, n),
		carry:      make([]bool, n),
	}
	// Establish the pristine invariant once; decode restores it on exit.
	for i := 0; i < n; i++ {
		u.parent[i] = i
		u.parentEdge[i] = -1
	}
	u.hasBnd[g.Boundary] = true
	return u
}

func (u *UnionFind) find(v int) int {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

// union merges the clusters of roots a and b and returns the new root.
func (u *UnionFind) union(a, b int) int {
	if a == b {
		return a
	}
	if u.rank[a] < u.rank[b] {
		a, b = b, a
	}
	u.parent[b] = a
	if u.rank[a] == u.rank[b] {
		u.rank[a]++
	}
	u.parity[a] ^= u.parity[b]
	u.hasBnd[a] = u.hasBnd[a] || u.hasBnd[b]
	// Concatenate frontier lists; stale (internal or fully grown) entries
	// are discarded lazily during growth. Truncate (rather than nil) the
	// absorbed list so its backing array is reused by later Decode calls.
	if len(u.frontier[a]) < len(u.frontier[b]) {
		u.frontier[a], u.frontier[b] = u.frontier[b], u.frontier[a]
	}
	u.frontier[a] = append(u.frontier[a], u.frontier[b]...)
	u.frontier[b] = u.frontier[b][:0]
	return a
}

// active reports whether the cluster rooted at r still needs to grow.
func (u *UnionFind) active(r int) bool { return u.parity[r] == 1 && !u.hasBnd[r] }

// Decode implements Decoder.
func (u *UnionFind) Decode(syndrome []int) uint64 {
	const maxInt = int(^uint(0) >> 1)
	return u.decode(syndrome, 0, maxInt)
}

// DecodeWindow decodes the syndrome using only edges whose round span lies
// entirely inside [lo, hi), and returns the predicted observable mask along
// with the correction's edge indices appended to chosen. The edge filter is
// the only difference from Decode: with a window covering every round the
// two are bit-identical, growth order included. The returned slice aliases
// chosen's backing array when capacity allows.
func (u *UnionFind) DecodeWindow(syndrome []int, lo, hi int, chosen []int) (uint64, []int) {
	obs := u.decode(syndrome, lo, hi)
	return obs, append(chosen, u.chosen...)
}

// markDirty records v as touched this decode. Every node a decode writes to
// — defects at setup, endpoints absorbed during growth — passes through
// here exactly once (guarded by the added flag), except the boundary node,
// which restore() resets unconditionally.
func (u *UnionFind) markDirty(v int) {
	u.added[v] = true
	u.dirty = append(u.dirty, v)
}

func (u *UnionFind) decode(syndrome []int, lo, hi int) uint64 {
	u.chosen = u.chosen[:0]
	if len(syndrome) == 0 {
		return 0
	}
	u.winLo, u.winHi = lo, hi
	g := u.g
	u.dirty = u.dirty[:0]
	u.grownList = u.grownList[:0]

	u.rootList = u.rootList[:0]
	for _, d := range syndrome {
		u.defect[d] = true
		u.parity[d] = 1
		u.frontier[d] = append(u.frontier[d], g.Adj[d]...)
		if !u.added[d] {
			u.markDirty(d)
		}
		if !u.isRoot[d] {
			u.isRoot[d] = true
			u.rootList = append(u.rootList, d)
		}
	}

	// Growth rounds: every active cluster grows each frontier edge by one
	// unit; saturated edges merge clusters. Roots are processed in
	// insertion order, so union tie-breaks resolve identically on every
	// run.
	for {
		// Canonicalize and compact the root list: map each entry to its
		// current root, dropping merged-away and duplicate entries.
		live := u.rootList[:0]
		for _, r := range u.rootList {
			rr := u.find(r)
			if u.isRoot[rr] {
				u.isRoot[rr] = false // claim, so duplicates drop below
				live = append(live, rr)
			}
		}
		u.rootList = live
		for _, r := range u.rootList {
			u.isRoot[r] = true
		}
		// Gather current active roots.
		act := u.act[:0]
		for _, r := range u.rootList {
			if u.active(r) {
				act = append(act, r)
			}
		}
		u.act = act
		if len(act) == 0 {
			break
		}
		saturated := u.satur[:0]
		progress := false
		for _, r := range act {
			fr := u.frontier[r][:0]
			for _, ei := range u.frontier[r] {
				e := &g.Edges[ei]
				if u.grown[ei] {
					continue
				}
				if e.MinRound < u.winLo || e.MaxRound >= u.winHi {
					continue // outside the active window, drop
				}
				ru, rv := u.find(e.U), u.find(e.V)
				if ru == rv {
					continue // internal edge, drop
				}
				if u.grow[ei] == 0 {
					u.grownList = append(u.grownList, ei)
				}
				u.grow[ei]++
				progress = true
				if u.grow[ei] >= e.WInt {
					u.grown[ei] = true
					saturated = append(saturated, ei)
				} else {
					fr = append(fr, ei)
				}
			}
			u.frontier[r] = fr
		}
		u.satur = saturated
		if !progress {
			// Disconnected defect with nowhere to grow: give up on it
			// rather than spinning (its correction is unknowable anyway).
			break
		}
		for _, ei := range saturated {
			e := &g.Edges[ei]
			ru, rv := u.find(e.U), u.find(e.V)
			// A newly absorbed endpoint contributes its incident edges to
			// the merged cluster's frontier (the boundary node never grows).
			for _, v := range [2]int{e.U, e.V} {
				if !u.added[v] && v != g.Boundary {
					u.markDirty(v)
					r := u.find(v)
					u.frontier[r] = append(u.frontier[r], g.Adj[v]...)
				}
			}
			if ru == rv {
				continue
			}
			nr := u.union(ru, rv)
			u.isRoot[ru] = false
			u.isRoot[rv] = false
			if !u.isRoot[nr] {
				u.isRoot[nr] = true
				u.rootList = append(u.rootList, nr)
			}
		}
	}
	obs := u.peel()
	u.restore()
	return obs
}

// restore re-establishes the pristine invariant over exactly the state this
// decode dirtied: the tracked node set, the boundary node (which union,
// frontier concatenation and peel may touch without an added mark), and the
// partially or fully grown edges.
func (u *UnionFind) restore() {
	for _, v := range u.dirty {
		u.resetNode(v)
	}
	u.resetNode(u.g.Boundary)
	for _, ei := range u.grownList {
		u.grow[ei] = 0
		u.grown[ei] = false
	}
}

func (u *UnionFind) resetNode(v int) {
	u.parent[v] = v
	u.rank[v] = 0
	u.parity[v] = 0
	u.hasBnd[v] = v == u.g.Boundary
	u.defect[v] = false
	u.isRoot[v] = false
	u.added[v] = false
	u.frontier[v] = u.frontier[v][:0]
}

// peel extracts the correction from the grown-edge forest: build a spanning
// forest of each cluster over grown edges (rooting at the boundary node when
// present), then peel leaves outward, emitting an edge whenever the leaf
// carries a defect.
func (u *UnionFind) peel() uint64 {
	g := u.g
	// Build spanning forest over grown edges (struct scratch: peel runs
	// once per Decode, and per-shot allocations dominate batch decoding).
	// Every cluster node — defect or absorbed endpoint — is in the dirty
	// list; visiting the candidates in ascending node order makes each
	// component's forest root the smallest unvisited member, exactly the
	// root the old 0..n-1 scan over all nodes selected, so the extracted
	// correction is bit-identical.
	parentEdge := u.parentEdge
	order := u.order[:0]
	u.peelNodes = append(u.peelNodes[:0], u.dirty...)
	sort.Ints(u.peelNodes)
	stack := u.stack[:0]
	pushRoot := func(v int) {
		u.visited[v] = true
		stack = append(stack, v)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, x)
			for _, ei := range g.Adj[x] {
				if !u.grown[ei] {
					continue
				}
				e := &g.Edges[ei]
				y := e.U
				if y == x {
					y = e.V
				}
				if !u.visited[y] {
					u.visited[y] = true
					parentEdge[y] = ei
					stack = append(stack, y)
				}
			}
		}
	}
	// Root at the boundary first so defects can discharge into it.
	pushRoot(g.Boundary)
	for _, v := range u.peelNodes {
		if !u.visited[v] {
			pushRoot(v)
		}
	}
	u.order = order
	u.stack = stack
	// Peel in reverse DFS order (children before parents). carry is
	// pristine false everywhere; seed it with the defect bits of the nodes
	// actually in the forest (order covers every dirty node plus the
	// boundary, and only dirty nodes can be defects).
	var obs uint64
	carry := u.carry
	for _, v := range order {
		carry[v] = u.defect[v]
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		ei := parentEdge[v]
		if ei < 0 {
			continue
		}
		if carry[v] {
			e := &g.Edges[ei]
			p := e.U
			if p == v {
				p = e.V
			}
			carry[v] = false
			carry[p] = !carry[p]
			obs ^= e.ObsMask
			u.chosen = append(u.chosen, ei)
		}
	}
	// Restore peel scratch to pristine for the nodes this forest visited.
	for _, v := range order {
		parentEdge[v] = -1
		u.visited[v] = false
		carry[v] = false
	}
	return obs
}
