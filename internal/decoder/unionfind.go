package decoder

// UnionFind is a weighted union-find decoder (Delfosse–Nickerson). Clusters
// grow from syndrome defects in integer weight units; when the grown regions
// of two endpoints cover an edge, their clusters merge. Growth stops when
// every cluster is neutral (even defect count or touching the boundary).
// A spanning-forest peeling pass then extracts the correction.
type UnionFind struct {
	g *Graph

	// Scratch state reused across Decode calls.
	parent  []int
	rank    []int
	parity  []int  // defects mod 2 per cluster root
	hasBnd  []bool // cluster contains the boundary node
	visited []bool
	defect  []bool
	grow    []int // growth accumulated on each edge
	grown   []bool
	// Per-root candidate boundary edge list (lazily cleaned).
	frontier [][]int

	// Root-set scratch: rootList holds current cluster roots in insertion
	// order (a deterministic replacement for the old map-based set, whose
	// iteration order could reorder tie-breaking unions between runs);
	// isRoot marks membership.
	rootList []int
	isRoot   []bool
	added    []bool // node's adjacency already pushed to a frontier
	act      []int  // active roots this growth round
	satur    []int  // edges saturated this growth round

	// Peeling scratch.
	parentEdge []int
	order      []int
	stack      []int
	carry      []bool
	chosen     []int // edge indices of the correction extracted by peel

	// Active round window [winLo, winHi): edges whose round span falls
	// outside it are invisible to growth. Whole-shot Decode sets the window
	// to cover everything, so the filter is a no-op there.
	winLo, winHi int
}

// NewUnionFind returns a union-find decoder over g.
func NewUnionFind(g *Graph) *UnionFind {
	n := g.NumDetectors + 1
	return &UnionFind{
		g:          g,
		parent:     make([]int, n),
		rank:       make([]int, n),
		parity:     make([]int, n),
		hasBnd:     make([]bool, n),
		visited:    make([]bool, n),
		defect:     make([]bool, n),
		grow:       make([]int, len(g.Edges)),
		grown:      make([]bool, len(g.Edges)),
		frontier:   make([][]int, n),
		isRoot:     make([]bool, n),
		added:      make([]bool, n),
		parentEdge: make([]int, n),
		carry:      make([]bool, n),
	}
}

func (u *UnionFind) find(v int) int {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

// union merges the clusters of roots a and b and returns the new root.
func (u *UnionFind) union(a, b int) int {
	if a == b {
		return a
	}
	if u.rank[a] < u.rank[b] {
		a, b = b, a
	}
	u.parent[b] = a
	if u.rank[a] == u.rank[b] {
		u.rank[a]++
	}
	u.parity[a] ^= u.parity[b]
	u.hasBnd[a] = u.hasBnd[a] || u.hasBnd[b]
	// Concatenate frontier lists; stale (internal or fully grown) entries
	// are discarded lazily during growth. Truncate (rather than nil) the
	// absorbed list so its backing array is reused by later Decode calls.
	if len(u.frontier[a]) < len(u.frontier[b]) {
		u.frontier[a], u.frontier[b] = u.frontier[b], u.frontier[a]
	}
	u.frontier[a] = append(u.frontier[a], u.frontier[b]...)
	u.frontier[b] = u.frontier[b][:0]
	return a
}

// active reports whether the cluster rooted at r still needs to grow.
func (u *UnionFind) active(r int) bool { return u.parity[r] == 1 && !u.hasBnd[r] }

// Decode implements Decoder.
func (u *UnionFind) Decode(syndrome []int) uint64 {
	const maxInt = int(^uint(0) >> 1)
	return u.decode(syndrome, 0, maxInt)
}

// DecodeWindow decodes the syndrome using only edges whose round span lies
// entirely inside [lo, hi), and returns the predicted observable mask along
// with the correction's edge indices appended to chosen. The edge filter is
// the only difference from Decode: with a window covering every round the
// two are bit-identical, growth order included. The returned slice aliases
// chosen's backing array when capacity allows.
func (u *UnionFind) DecodeWindow(syndrome []int, lo, hi int, chosen []int) (uint64, []int) {
	obs := u.decode(syndrome, lo, hi)
	return obs, append(chosen, u.chosen...)
}

func (u *UnionFind) decode(syndrome []int, lo, hi int) uint64 {
	u.chosen = u.chosen[:0]
	if len(syndrome) == 0 {
		return 0
	}
	u.winLo, u.winHi = lo, hi
	g := u.g
	n := g.NumDetectors + 1
	// Reset scratch state (touched nodes/edges only would be faster; a full
	// reset is simple and still linear in graph size).
	for i := 0; i < n; i++ {
		u.parent[i] = i
		u.rank[i] = 0
		u.parity[i] = 0
		u.hasBnd[i] = false
		u.defect[i] = false
		u.isRoot[i] = false
		u.added[i] = false
		u.frontier[i] = u.frontier[i][:0]
	}
	for i := range u.grow {
		u.grow[i] = 0
		u.grown[i] = false
	}
	u.hasBnd[g.Boundary] = true

	u.rootList = u.rootList[:0]
	for _, d := range syndrome {
		u.defect[d] = true
		u.parity[d] = 1
		u.frontier[d] = append(u.frontier[d], g.Adj[d]...)
		u.added[d] = true
		if !u.isRoot[d] {
			u.isRoot[d] = true
			u.rootList = append(u.rootList, d)
		}
	}

	// Growth rounds: every active cluster grows each frontier edge by one
	// unit; saturated edges merge clusters. Roots are processed in
	// insertion order, so union tie-breaks resolve identically on every
	// run.
	for {
		// Canonicalize and compact the root list: map each entry to its
		// current root, dropping merged-away and duplicate entries.
		live := u.rootList[:0]
		for _, r := range u.rootList {
			rr := u.find(r)
			if u.isRoot[rr] {
				u.isRoot[rr] = false // claim, so duplicates drop below
				live = append(live, rr)
			}
		}
		u.rootList = live
		for _, r := range u.rootList {
			u.isRoot[r] = true
		}
		// Gather current active roots.
		act := u.act[:0]
		for _, r := range u.rootList {
			if u.active(r) {
				act = append(act, r)
			}
		}
		u.act = act
		if len(act) == 0 {
			break
		}
		saturated := u.satur[:0]
		progress := false
		for _, r := range act {
			fr := u.frontier[r][:0]
			for _, ei := range u.frontier[r] {
				e := &g.Edges[ei]
				if u.grown[ei] {
					continue
				}
				if e.MinRound < u.winLo || e.MaxRound >= u.winHi {
					continue // outside the active window, drop
				}
				ru, rv := u.find(e.U), u.find(e.V)
				if ru == rv {
					continue // internal edge, drop
				}
				u.grow[ei]++
				progress = true
				if u.grow[ei] >= e.WInt {
					u.grown[ei] = true
					saturated = append(saturated, ei)
				} else {
					fr = append(fr, ei)
				}
			}
			u.frontier[r] = fr
		}
		u.satur = saturated
		if !progress {
			// Disconnected defect with nowhere to grow: give up on it
			// rather than spinning (its correction is unknowable anyway).
			break
		}
		for _, ei := range saturated {
			e := &g.Edges[ei]
			ru, rv := u.find(e.U), u.find(e.V)
			// A newly absorbed endpoint contributes its incident edges to
			// the merged cluster's frontier (the boundary node never grows).
			for _, v := range [2]int{e.U, e.V} {
				if !u.added[v] && v != g.Boundary {
					u.added[v] = true
					r := u.find(v)
					u.frontier[r] = append(u.frontier[r], g.Adj[v]...)
				}
			}
			if ru == rv {
				continue
			}
			nr := u.union(ru, rv)
			u.isRoot[ru] = false
			u.isRoot[rv] = false
			if !u.isRoot[nr] {
				u.isRoot[nr] = true
				u.rootList = append(u.rootList, nr)
			}
		}
	}
	return u.peel()
}

// peel extracts the correction from the grown-edge forest: build a spanning
// forest of each cluster over grown edges (rooting at the boundary node when
// present), then peel leaves outward, emitting an edge whenever the leaf
// carries a defect.
func (u *UnionFind) peel() uint64 {
	g := u.g
	n := g.NumDetectors + 1
	// Build spanning forest over grown edges (struct scratch: peel runs
	// once per Decode, and per-shot allocations dominate batch decoding).
	parentEdge := u.parentEdge
	order := u.order[:0]
	for i := range parentEdge {
		parentEdge[i] = -1
		u.visited[i] = false
	}
	stack := u.stack[:0]
	pushRoot := func(v int) {
		u.visited[v] = true
		stack = append(stack, v)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, x)
			for _, ei := range g.Adj[x] {
				if !u.grown[ei] {
					continue
				}
				e := &g.Edges[ei]
				y := e.U
				if y == x {
					y = e.V
				}
				if !u.visited[y] {
					u.visited[y] = true
					parentEdge[y] = ei
					stack = append(stack, y)
				}
			}
		}
	}
	// Root at the boundary first so defects can discharge into it.
	pushRoot(g.Boundary)
	for v := 0; v < n; v++ {
		if !u.visited[v] {
			pushRoot(v)
		}
	}
	u.order = order
	u.stack = stack
	// Peel in reverse DFS order (children before parents).
	var obs uint64
	carry := u.carry
	copy(carry, u.defect)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		ei := parentEdge[v]
		if ei < 0 {
			continue
		}
		if carry[v] {
			e := &g.Edges[ei]
			p := e.U
			if p == v {
				p = e.V
			}
			carry[v] = false
			carry[p] = !carry[p]
			obs ^= e.ObsMask
			u.chosen = append(u.chosen, ei)
		}
	}
	return obs
}
