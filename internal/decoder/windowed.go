package decoder

import "fmt"

// Windowed is a sliding-window union-find decoder for round-layered graphs.
// Syndrome rounds are ingested incrementally; whenever the active window
// holds Window() rounds, the decoder decodes the window, commits the
// correction edges touching the oldest round, and slides the window forward
// by one round. Flush decodes whatever remains and returns the accumulated
// observable mask.
//
// Commit semantics: after decoding window [lo, hi), the commit boundary is
// lo+1. A correction edge with MinRound == lo (its span starts in the
// sliding-out round; the in-window filter guarantees MinRound >= lo) is
// committed — its observable mask is applied and the pending defect bit at
// each real endpoint is toggled. For a time-like artifact edge crossing the
// commit boundary (MinRound == lo, MaxRound == lo+1) that toggle lands on
// the future-side endpoint, leaving the residual syndrome the next window
// must explain. Edges entirely beyond the boundary (MinRound > lo) are
// tentative and discarded: those rounds are re-decoded with one more round
// of future context in the next window.
//
// Every correction edge incident to a round-lo defect has MinRound == lo,
// so committed edges fully resolve the sliding-out round; a defect the
// grower could not connect anywhere (which whole-shot decoding also cannot
// correct) is dropped when its round slides out.
//
// Resident state is O(detectors) for the pending-bit array plus the shared
// union-find scratch — independent of how many rounds a stream carries.
type Windowed struct {
	g  *Graph
	uf *UnionFind
	w  int

	lo, hi   int // active window: rounds [lo, hi) ingested and not committed
	pending  []bool
	obs      uint64
	syndrome []int
	chosen   []int
}

// NewWindowed returns a windowed decoder over g with the given window size
// in rounds. The graph must carry round structure. A window of 1 is legal
// but degenerate — time-like edges never fit inside it — so callers wanting
// matching across rounds need window >= 2; accuracy close to whole-shot
// needs window >= 3 (see the ablate-window experiment).
func NewWindowed(g *Graph, window int) (*Windowed, error) {
	if g.NumRounds == 0 {
		return nil, fmt.Errorf("decoder: windowed decoding needs a round-layered graph")
	}
	if window < 1 {
		return nil, fmt.Errorf("decoder: window %d < 1", window)
	}
	return &Windowed{
		g:       g,
		uf:      NewUnionFind(g),
		w:       window,
		pending: make([]bool, g.NumDetectors),
	}, nil
}

// Window returns the window size in rounds.
func (d *Windowed) Window() int { return d.w }

// Rounds returns the number of rounds ingested so far.
func (d *Windowed) Rounds() int { return d.hi }

// Reset prepares the decoder for a new shot.
func (d *Windowed) Reset() {
	for i := range d.pending {
		d.pending[i] = false
	}
	d.lo, d.hi, d.obs = 0, 0, 0
}

// IngestRound feeds the fired detectors of the next round (round index
// Rounds()). Every index must belong to that round. If the window is full
// the oldest round is decoded and committed first, so each call does at
// most one window decode — the per-round latency the stream path budgets.
func (d *Windowed) IngestRound(fired []int) error {
	if d.hi >= d.g.NumRounds {
		return fmt.Errorf("decoder: round %d beyond circuit rounds %d", d.hi, d.g.NumRounds)
	}
	if d.hi-d.lo == d.w {
		d.decodeAndSlide()
	}
	for _, f := range fired {
		if f < 0 || f >= d.g.NumDetectors || d.g.NodeRound[f] != d.hi {
			return fmt.Errorf("decoder: detector %d not in round %d", f, d.hi)
		}
		d.pending[f] = !d.pending[f]
	}
	d.hi++
	return nil
}

// Flush decodes the remaining window, commits everything, and returns the
// shot's accumulated observable mask. The decoder is left ready for Reset.
func (d *Windowed) Flush() uint64 {
	syn := d.gather()
	if len(syn) > 0 {
		_, chosen := d.uf.DecodeWindow(syn, d.lo, d.hi, d.chosen[:0])
		d.chosen = chosen
		for _, ei := range chosen {
			d.obs ^= d.g.Edges[ei].ObsMask
		}
	}
	d.lo = d.hi
	return d.obs
}

// gather collects the pending defects of rounds [lo, hi) in ascending
// detector order (round layers are index-sorted and rounds are monotone in
// detector index, so concatenating layers preserves sortedness).
func (d *Windowed) gather() []int {
	syn := d.syndrome[:0]
	for r := d.lo; r < d.hi; r++ {
		for _, n := range d.g.RoundNodes[r] {
			if d.pending[n] {
				syn = append(syn, n)
			}
		}
	}
	d.syndrome = syn
	return syn
}

func (d *Windowed) decodeAndSlide() {
	syn := d.gather()
	if len(syn) > 0 {
		_, chosen := d.uf.DecodeWindow(syn, d.lo, d.hi, d.chosen[:0])
		d.chosen = chosen
		for _, ei := range chosen {
			e := &d.g.Edges[ei]
			if e.MinRound > d.lo {
				continue // tentative: re-decoded with more context next window
			}
			d.obs ^= e.ObsMask
			d.pending[e.U] = !d.pending[e.U]
			if e.V != d.g.Boundary {
				d.pending[e.V] = !d.pending[e.V]
			}
		}
	}
	// Defects the grower could not discharge (disconnected within this
	// window) die with their round, mirroring whole-shot behaviour for
	// unmatchable defects.
	for _, n := range d.g.RoundNodes[d.lo] {
		d.pending[n] = false
	}
	d.lo++
}
