package decoder

import (
	"caliqec/internal/code"
	"caliqec/internal/dem"
	"caliqec/internal/lattice"
	"caliqec/internal/rng"
	"testing"
)

func memCircuit(t *testing.T, kind lattice.Kind, d, rounds int, p float64) (*code.Patch, *Graph, Decoder, Decoder, *dem.Model) {
	t.Helper()
	var lat *lattice.Lattice
	if kind == lattice.Square {
		lat = lattice.NewSquare(d)
	} else {
		lat = lattice.NewHeavyHex(d)
	}
	patch := code.NewPatch(lat)
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dem.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	return patch, g, NewUnionFind(g), NewGreedy(g), m
}

func TestDEMGraphlike(t *testing.T) {
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		_, g, _, _, m := memCircuit(t, kind, 3, 3, 1e-3)
		if len(m.Mechanisms) == 0 {
			t.Fatalf("%v: empty DEM", kind)
		}
		if len(g.Edges) == 0 {
			t.Fatalf("%v: empty decoding graph", kind)
		}
		for _, mech := range m.Mechanisms {
			if len(mech.Detectors) > 2 {
				t.Fatalf("%v: non-graph-like mechanism %v", kind, mech)
			}
		}
	}
}

// TestDecodersCorrectSingleMechanisms injects every single elementary error
// mechanism as a syndrome: any decoder worth the name must predict its
// observable effect exactly (single errors are always correctable for d≥3).
func TestDecodersCorrectSingleMechanisms(t *testing.T) {
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		_, g, uf, gr, m := memCircuit(t, kind, 3, 3, 1e-3)
		_ = g
		for i, mech := range m.Mechanisms {
			for name, dec := range map[string]Decoder{"uf": uf, "greedy": gr} {
				pred := dec.Decode(mech.Detectors)
				if pred != mech.ObsMask {
					t.Errorf("%v %s: mechanism %d %v obs=%b decoded as %b",
						kind, name, i, mech.Detectors, mech.ObsMask, pred)
				}
			}
		}
		if t.Failed() {
			break
		}
	}
}

// TestLogicalErrorSuppression is the headline physics check: below
// threshold, distance 5 must beat distance 3.
func TestLogicalErrorSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	p := 2e-3
	shots := 30000
	var lers [2]float64
	for i, d := range []int{3, 5} {
		lat := lattice.NewSquare(d)
		patch := code.NewPatch(lat)
		c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: d, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(c, KindUnionFind, shots, d, rng.New(uint64(42+d)))
		if err != nil {
			t.Fatal(err)
		}
		lers[i] = res.LER
		t.Logf("d=%d: %v", d, res)
	}
	if lers[1] >= lers[0] {
		t.Errorf("no error suppression: LER(d=3)=%.4g LER(d=5)=%.4g", lers[0], lers[1])
	}
	if lers[0] == 0 {
		t.Errorf("suspiciously zero LER at d=3, p=%g", p)
	}
}

// TestGreedyAgreesRoughly: greedy matching should produce failure rates in
// the same ballpark as union-find on d=3 (within a factor of a few).
func TestGreedyAgreesRoughly(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	patch := code.NewPatch(lattice.NewSquare(3))
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(3e-3)})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := Evaluate(c, KindUnionFind, 20000, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Evaluate(c, KindGreedy, 20000, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uf=%v greedy=%v", ru, rg)
	if ru.Failures == 0 || rg.Failures == 0 {
		t.Fatal("expected some failures at p=3e-3, d=3")
	}
	ratio := ru.LER / rg.LER
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("decoders disagree wildly: uf=%.4g greedy=%.4g", ru.LER, rg.LER)
	}
}

func TestEmptySyndrome(t *testing.T) {
	_, _, uf, gr, _ := memCircuit(t, lattice.Square, 3, 2, 1e-3)
	if uf.Decode(nil) != 0 || gr.Decode(nil) != 0 {
		t.Fatal("empty syndrome must decode to no correction")
	}
}

// TestParallelEvaluateDeterministic: same seed and worker count give
// identical results; and the parallel failure rate matches the serial one
// statistically.
func TestParallelEvaluateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	patch := code.NewPatch(lattice.NewSquare(3))
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(3e-3)})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := EvaluateParallel(c, KindUnionFind, 20000, 3, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EvaluateParallel(c, KindUnionFind, 20000, 3, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Failures != r2.Failures {
		t.Errorf("parallel evaluation nondeterministic: %d vs %d failures", r1.Failures, r2.Failures)
	}
	serial, err := Evaluate(c, KindUnionFind, 20000, 3, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	lo := serial.LER / 2
	hi := serial.LER * 2
	if r1.LER < lo || r1.LER > hi {
		t.Errorf("parallel LER %.4g outside [%.4g, %.4g] of serial", r1.LER, lo, hi)
	}
}
