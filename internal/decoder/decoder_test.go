package decoder

import (
	"caliqec/internal/code"
	"caliqec/internal/dem"
	"caliqec/internal/lattice"
	"testing"
)

func memCircuit(t *testing.T, kind lattice.Kind, d, rounds int, p float64) (*code.Patch, *Graph, Decoder, Decoder, *dem.Model) {
	t.Helper()
	var lat *lattice.Lattice
	if kind == lattice.Square {
		lat = lattice.NewSquare(d)
	} else {
		lat = lattice.NewHeavyHex(d)
	}
	patch := code.NewPatch(lat)
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dem.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	return patch, g, NewUnionFind(g), NewGreedy(g), m
}

func TestDEMGraphlike(t *testing.T) {
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		_, g, _, _, m := memCircuit(t, kind, 3, 3, 1e-3)
		if len(m.Mechanisms) == 0 {
			t.Fatalf("%v: empty DEM", kind)
		}
		if len(g.Edges) == 0 {
			t.Fatalf("%v: empty decoding graph", kind)
		}
		for _, mech := range m.Mechanisms {
			if len(mech.Detectors) > 2 {
				t.Fatalf("%v: non-graph-like mechanism %v", kind, mech)
			}
		}
	}
}

// TestDecodersCorrectSingleMechanisms injects every single elementary error
// mechanism as a syndrome: any decoder worth the name must predict its
// observable effect exactly (single errors are always correctable for d≥3).
func TestDecodersCorrectSingleMechanisms(t *testing.T) {
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		_, g, uf, gr, m := memCircuit(t, kind, 3, 3, 1e-3)
		_ = g
		for i, mech := range m.Mechanisms {
			for name, dec := range map[string]Decoder{"uf": uf, "greedy": gr} {
				pred := dec.Decode(mech.Detectors)
				if pred != mech.ObsMask {
					t.Errorf("%v %s: mechanism %d %v obs=%b decoded as %b",
						kind, name, i, mech.Detectors, mech.ObsMask, pred)
				}
			}
		}
		if t.Failed() {
			break
		}
	}
}

func TestEmptySyndrome(t *testing.T) {
	_, _, uf, gr, _ := memCircuit(t, lattice.Square, 3, 2, 1e-3)
	if uf.Decode(nil) != 0 || gr.Decode(nil) != 0 {
		t.Fatal("empty syndrome must decode to no correction")
	}
}
