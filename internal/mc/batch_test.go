package mc

import (
	"bytes"
	"caliqec/internal/decoder"
	"caliqec/internal/obs"
	"caliqec/internal/rng"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// batchSpecs builds a mixed batch exercising every per-spec feature the
// shared scheduler must keep independent: plain fixed-shot specs over
// distinct circuits, a stale-prior spec, an early-stop spec and a
// progress-callback spec.
func batchSpecs(t *testing.T, workers int) []Spec {
	t.Helper()
	c3 := memCircuit(t, 3, 3, 3e-3)
	c3hot := memCircuit(t, 3, 3, 8e-3)
	c5 := memCircuit(t, 5, 3, 3e-3)
	return []Spec{
		{Circuit: c3, Decoder: decoder.KindUnionFind, Shots: 5000, Rounds: 3, Seed: 11, Workers: workers},
		{Circuit: c5, Decoder: decoder.KindUnionFind, Shots: 3000, Rounds: 3, Seed: 22, Workers: workers},
		{Circuit: c3hot, Prior: c3, Decoder: decoder.KindUnionFind, Shots: 4000, Rounds: 3, Seed: 33, Workers: workers},
		{Circuit: c3hot, Decoder: decoder.KindUnionFind, Shots: 60000, Rounds: 3, Seed: 44, Workers: workers,
			TargetFailures: 15, MinShots: 1024},
		{Circuit: c3, Decoder: decoder.KindGreedy, Shots: 2500, Rounds: 3, Seed: 55, Workers: workers},
	}
}

// TestBatchMatchesSequential: every spec's batch result must be
// bit-identical to a standalone Evaluate with the same seed, across worker
// counts — the tentpole determinism guarantee. Early-stop and progress
// specs ride in the same batch.
func TestBatchMatchesSequential(t *testing.T) {
	ctx := context.Background()
	// Reference results from standalone Evaluates on a fresh engine.
	seq := New(Options{Metrics: obs.NewRegistry(nil)})
	var want []Result
	for _, spec := range batchSpecs(t, 0) {
		res, err := seq.Evaluate(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		specs := batchSpecs(t, workers)
		// Attach a progress callback to one spec to mix callbacks into the
		// batch; it must not perturb any result.
		var mu sync.Mutex
		var shotsSeen []int
		specs[1].Progress = func(shots, failures int) {
			mu.Lock()
			shotsSeen = append(shotsSeen, shots)
			mu.Unlock()
		}
		e := New(Options{Metrics: obs.NewRegistry(nil)})
		got, err := e.EvaluateBatch(ctx, specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d spec %d: batch %+v differs from standalone %+v", workers, i, got[i], want[i])
			}
		}
		mu.Lock()
		for i := 1; i < len(shotsSeen); i++ {
			if shotsSeen[i] <= shotsSeen[i-1] {
				t.Errorf("workers=%d: progress shots not strictly increasing: %v", workers, shotsSeen)
			}
		}
		if len(shotsSeen) == 0 || shotsSeen[len(shotsSeen)-1] != want[1].Shots {
			t.Errorf("workers=%d: final progress call %v, want last = %d", workers, shotsSeen, want[1].Shots)
		}
		mu.Unlock()
	}
}

// TestBatchSeedIsolation: each spec's chunk seeds come from its own
// RNG/Seed, so inserting an extra spec into a batch must not perturb the
// results of the specs around it.
func TestBatchSeedIsolation(t *testing.T) {
	ctx := context.Background()
	c := memCircuit(t, 3, 3, 3e-3)
	a := Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 4000, Rounds: 3, Seed: 7}
	b := Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 4000, Rounds: 3, Seed: 8}
	extra := Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 4000, Rounds: 3, Seed: 9}

	e := New(Options{Metrics: obs.NewRegistry(nil)})
	two, err := e.EvaluateBatch(ctx, []Spec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	three, err := e.EvaluateBatch(ctx, []Spec{a, extra, b})
	if err != nil {
		t.Fatal(err)
	}
	if three[0] != two[0] || three[2] != two[1] {
		t.Errorf("co-scheduled spec perturbed its neighbors: [a b] = %+v, [a x b] = (%+v, _, %+v)",
			two, three[0], three[2])
	}
}

// TestBatchSharedRNG: specs sharing one RNG instance draw their chunk seeds
// in spec order during prepare, matching sequential Evaluate calls that
// share the generator the same way.
func TestBatchSharedRNG(t *testing.T) {
	ctx := context.Background()
	c := memCircuit(t, 3, 3, 3e-3)
	mk := func(r *rng.RNG) []Spec {
		return []Spec{
			{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 3000, Rounds: 3, RNG: r},
			{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 3000, Rounds: 3, RNG: r},
		}
	}
	seq := New(Options{Metrics: obs.NewRegistry(nil)})
	var want []Result
	for _, spec := range mk(rng.New(123)) {
		res, err := seq.Evaluate(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	e := New(Options{Metrics: obs.NewRegistry(nil)})
	got, err := e.EvaluateBatch(ctx, mk(rng.New(123)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("shared-RNG spec %d: batch %+v, sequential %+v", i, got[i], want[i])
		}
	}
}

func TestBatchEmptyAndValidation(t *testing.T) {
	ctx := context.Background()
	e := New(Options{Metrics: obs.NewRegistry(nil)})
	res, err := e.EvaluateBatch(ctx, nil)
	if res != nil || err != nil {
		t.Errorf("empty batch: got (%v, %v), want (nil, nil)", res, err)
	}
	c := memCircuit(t, 3, 3, 3e-3)
	_, err = e.EvaluateBatch(ctx, []Spec{
		{Circuit: c, Shots: 100},
		{Circuit: nil, Shots: 100},
	})
	if err == nil || !strings.Contains(err.Error(), "spec 1") {
		t.Errorf("invalid spec error should name the index: %v", err)
	}
}

func TestBatchCancellation(t *testing.T) {
	c := memCircuit(t, 3, 3, 3e-3)
	e := New(Options{Metrics: obs.NewRegistry(nil)})
	specs := []Spec{
		{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 1 << 22, Seed: 1},
		{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 1 << 22, Seed: 2},
	}
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EvaluateBatch(pre, specs); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled batch: %v, want context.Canceled", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	specs[0].Progress = func(shots, failures int) {
		if !fired {
			fired = true
			cancel()
		}
	}
	defer cancel()
	if _, err := e.EvaluateBatch(ctx, specs); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancel: %v, want context.Canceled", err)
	}
}

// TestBatchSpan: the batch records one mc.evaluate_batch parent span plus
// one mc.evaluate child span per spec.
func TestBatchSpan(t *testing.T) {
	tr := obs.NewTracer(nil)
	ctx := obs.WithTracer(context.Background(), tr)
	e := New(Options{Metrics: obs.NewRegistry(nil)})
	c := memCircuit(t, 3, 3, 2e-2)
	specs := []Spec{
		{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 2000, Seed: 1},
		{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 200000, Seed: 2, TargetFailures: 20, MinShots: 1024},
	}
	if _, err := e.EvaluateBatch(ctx, specs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"mc.evaluate_batch"`) {
		t.Errorf("trace missing mc.evaluate_batch span:\n%s", out)
	}
	if got := strings.Count(out, `"mc.evaluate"`); got != len(specs) {
		t.Errorf("trace has %d mc.evaluate child spans, want %d:\n%s", got, len(specs), out)
	}
	if !strings.Contains(out, `"early-stop"`) {
		t.Errorf("trace missing the early-stopped spec's event:\n%s", out)
	}
}

// TestBatchMetrics: a batch increments mc.batch.evaluations once and
// mc.evaluations once per spec, and the scheduler occupancy gauge returns
// to zero when the pool drains.
func TestBatchMetrics(t *testing.T) {
	reg := obs.NewRegistry(nil)
	e := New(Options{Metrics: reg})
	c := memCircuit(t, 3, 3, 3e-3)
	specs := []Spec{
		{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 2000, Seed: 1},
		{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 2000, Seed: 2},
	}
	if _, err := e.EvaluateBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["mc.batch.evaluations"]; got != int64(1) {
		t.Errorf("mc.batch.evaluations = %v, want 1", got)
	}
	if got := snap["mc.evaluations"]; got != int64(len(specs)) {
		t.Errorf("mc.evaluations = %v, want %d", got, len(specs))
	}
	occ, ok := snap["mc.sched.occupancy"]
	if !ok {
		t.Fatal("mc.sched.occupancy gauge not registered")
	}
	if occ != float64(0) {
		t.Errorf("mc.sched.occupancy = %v after batch completed, want 0", occ)
	}
}
