package mc

import (
	"bytes"
	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/obs"
	"caliqec/internal/sim"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func memCircuit(t testing.TB, d, rounds int, p float64) *circuit.Circuit {
	t.Helper()
	patch := code.NewPatch(lattice.NewSquare(d))
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustEval(t *testing.T, e *Engine, spec Spec) Result {
	t.Helper()
	res, err := e.Evaluate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSerialParallelConsistency: the Result must be bit-identical across
// worker counts for a fixed seed — the chunk-sharded determinism guarantee —
// and repeated runs with the same (seed, workers) must agree exactly.
func TestSerialParallelConsistency(t *testing.T) {
	c := memCircuit(t, 3, 3, 3e-3)
	e := New(Options{})
	spec := func(workers int) Spec {
		return Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 5000, Rounds: 3, Seed: 42, Workers: workers}
	}
	serial := mustEval(t, e, spec(1))
	if serial.Shots != 5000 {
		t.Fatalf("serial run spent %d shots, want 5000", serial.Shots)
	}
	for _, w := range []int{2, 4, 8, 0} {
		par := mustEval(t, e, spec(w))
		if par != serial {
			t.Errorf("workers=%d result %+v differs from serial %+v", w, par, serial)
		}
	}
	again := mustEval(t, e, spec(4))
	if again != serial {
		t.Errorf("repeated run not reproducible: %+v vs %+v", again, serial)
	}
}

// TestCacheCorrectness: identical circuit structure with different noise
// rates must NOT share a cache entry (the fingerprint covers channel
// probabilities), and a cache hit must return the same Result as the cold
// build did.
func TestCacheCorrectness(t *testing.T) {
	cLow := memCircuit(t, 3, 3, 1e-3)
	cHigh := memCircuit(t, 3, 3, 8e-3)
	if Fingerprint(cLow) == Fingerprint(cHigh) {
		t.Fatal("circuits with different noise rates share a fingerprint")
	}

	e := New(Options{})
	spec := Spec{Circuit: cHigh, Decoder: decoder.KindUnionFind, Shots: 3000, Rounds: 3, Seed: 7}
	cold := mustEval(t, e, spec)
	if _, misses, entries := e.CacheStats(); misses != 1 || entries != 1 {
		t.Fatalf("after cold run: misses=%d entries=%d, want 1/1", misses, entries)
	}
	// Different rates, same structure: must be a second miss, not a hit.
	mustEval(t, e, Spec{Circuit: cLow, Decoder: decoder.KindUnionFind, Shots: 3000, Rounds: 3, Seed: 7})
	if hits, misses, entries := e.CacheStats(); hits != 0 || misses != 2 || entries != 2 {
		t.Fatalf("after second rate: hits=%d misses=%d entries=%d, want 0/2/2", hits, misses, entries)
	}
	// Re-evaluating the first circuit is a hit and reproduces the cold Result.
	warm := mustEval(t, e, spec)
	if hits, _, _ := e.CacheStats(); hits != 1 {
		t.Fatalf("re-evaluation did not hit the cache")
	}
	if warm != cold {
		t.Errorf("cache hit result %+v differs from cold result %+v", warm, cold)
	}
}

// TestCacheEviction: the LRU bound holds.
func TestCacheEviction(t *testing.T) {
	e := New(Options{CacheSize: 2})
	for _, p := range []float64{1e-3, 2e-3, 3e-3} {
		mustEval(t, e, Spec{Circuit: memCircuit(t, 3, 2, p), Decoder: decoder.KindUnionFind, Shots: 100, Seed: 1})
	}
	if _, _, entries := e.CacheStats(); entries != 2 {
		t.Fatalf("cache holds %d entries, want LRU bound 2", entries)
	}
}

// TestStalePriorDecoding: a Prior circuit with the same structure but
// different rates is accepted (and is the stale-priors path Fig. 13 uses);
// a structurally different prior is rejected.
func TestStalePriorDecoding(t *testing.T) {
	c := memCircuit(t, 3, 3, 8e-3)
	prior := memCircuit(t, 3, 3, 1e-3)
	e := New(Options{})
	res := mustEval(t, e, Spec{Circuit: c, Prior: prior, Decoder: decoder.KindUnionFind, Shots: 2000, Rounds: 3, Seed: 5})
	if res.Shots != 2000 {
		t.Fatalf("spent %d shots, want 2000", res.Shots)
	}
	bad := memCircuit(t, 3, 2, 1e-3) // fewer rounds → fewer detectors
	if _, err := e.Evaluate(context.Background(), Spec{Circuit: c, Prior: bad, Decoder: decoder.KindUnionFind, Shots: 100}); err == nil {
		t.Fatal("structurally mismatched prior not rejected")
	}
}

// TestCancellation: a pre-cancelled context returns immediately; cancelling
// mid-evaluation aborts promptly with context.Canceled instead of draining
// the shot budget.
func TestCancellation(t *testing.T) {
	c := memCircuit(t, 5, 5, 2e-3)
	e := New(Options{})

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Evaluate(pre, Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 1000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// A budget far beyond what 10ms covers: only cancellation ends this run
	// quickly.
	_, err := e.Evaluate(ctx, Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 50_000_000})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; want prompt abort", elapsed)
	}
}

// TestEarlyStopTargetFailures: the evaluation stops once the target failure
// count is reached over the committed prefix, reports the shots actually
// spent, and remains deterministic across worker counts.
func TestEarlyStopTargetFailures(t *testing.T) {
	c := memCircuit(t, 3, 3, 1.5e-2) // high rate so failures come fast
	e := New(Options{})
	spec := func(workers int) Spec {
		return Spec{
			Circuit: c, Decoder: decoder.KindUnionFind, Shots: 400000, Rounds: 3,
			Seed: 11, Workers: workers, TargetFailures: 50,
		}
	}
	res := mustEval(t, e, spec(4))
	if !res.EarlyStopped {
		t.Fatal("evaluation did not stop early")
	}
	if res.Shots >= res.Requested {
		t.Fatalf("early stop spent the whole budget: %d/%d", res.Shots, res.Requested)
	}
	if res.Failures < 50 {
		t.Fatalf("stopped with %d failures, target 50", res.Failures)
	}
	if serial := mustEval(t, e, spec(1)); serial != res {
		t.Errorf("early-stopped result depends on workers: %+v vs %+v", serial, res)
	}
}

// TestEarlyStopWilsonWidth: the interval-width criterion also stops early
// and the reported interval satisfies the target.
func TestEarlyStopWilsonWidth(t *testing.T) {
	c := memCircuit(t, 3, 3, 1.5e-2)
	e := New(Options{})
	res := mustEval(t, e, Spec{
		Circuit: c, Decoder: decoder.KindUnionFind, Shots: 400000, Rounds: 3,
		Seed: 3, TargetWilsonWidth: 0.05, MinShots: 1024,
	})
	if !res.EarlyStopped {
		t.Fatal("evaluation did not stop early")
	}
	if w := res.WilsonHi - res.WilsonLo; w > 0.05 {
		t.Fatalf("stopped with interval width %.4g > target 0.05", w)
	}
	if res.Shots < 1024 {
		t.Fatalf("stopped below MinShots: %d", res.Shots)
	}
}

// TestProgressReporting: the callback sees monotonically non-decreasing
// committed totals ending at the final result.
func TestProgressReporting(t *testing.T) {
	c := memCircuit(t, 3, 3, 3e-3)
	e := New(Options{})
	var lastShots, lastFails, calls int
	res := mustEval(t, e, Spec{
		Circuit: c, Decoder: decoder.KindUnionFind, Shots: 5000, Rounds: 3, Seed: 9, Workers: 1,
		Progress: func(shots, failures int) {
			if shots < lastShots || failures < lastFails {
				t.Errorf("progress went backwards: (%d,%d) after (%d,%d)", shots, failures, lastShots, lastFails)
			}
			lastShots, lastFails = shots, failures
			calls++
		},
	})
	if calls == 0 {
		t.Fatal("progress callback never called")
	}
	if lastShots != res.Shots || lastFails != res.Failures {
		t.Errorf("final progress (%d,%d) != result (%d,%d)", lastShots, lastFails, res.Shots, res.Failures)
	}
}

// TestSpecValidation covers the error paths: nil circuit, non-positive
// shots, too many observables.
func TestSpecValidation(t *testing.T) {
	e := New(Options{})
	ctx := context.Background()
	if _, err := e.Evaluate(ctx, Spec{Shots: 10}); err == nil {
		t.Error("nil circuit accepted")
	}
	c := memCircuit(t, 3, 2, 1e-3)
	if _, err := e.Evaluate(ctx, Spec{Circuit: c}); err == nil {
		t.Error("zero shots accepted")
	}
	wide := *c
	wide.NumObs = 65
	if _, err := e.Evaluate(ctx, Spec{Circuit: &wide, Shots: 10}); err == nil {
		t.Error("NumObs=65 accepted; observable masks beyond 64 bits must be an explicit error")
	}
}

// maskDecoder is a stub whose prediction is fixed, for exercising the
// observable-mask comparison without a full decoding stack.
type maskDecoder uint64

func (m maskDecoder) Decode([]int) uint64 { return uint64(m) }

// TestMultiObservableScoring: a shot fails when ANY observable bit differs
// — not just observable 0. The old harness compared Observables[0] against
// pred&1 and was blind to failures on higher observables.
func TestMultiObservableScoring(t *testing.T) {
	// Batch of 2 shots, 3 observables. Sampled masks: shot0 = 0b010,
	// shot1 = 0b011.
	b := sim.BatchResult{
		Detectors:   nil,
		Observables: []sim.Lane{{0b10}, {0b11}, {0b00}}, // per-observable shot lanes
		Shots:       2,
	}
	scratch := new(batchScratch)
	cases := []struct {
		pred  uint64
		wantF int
	}{
		{0b010, 1}, // matches shot0 exactly; shot1 differs in bit 0
		{0b011, 1}, // matches shot1; shot0 differs in bit 0
		{0b000, 2}, // misses both — invisible to an Observables[0]-only check for shot0? no: bit0 of shot0 is 0, so a low-bit-only check would PASS shot0 despite bit1 differing
		{0b110, 2}, // bit1 matches shot0 but bit2 flipped: both fail
	}
	for _, tc := range cases {
		if got := countBatchFailures(maskDecoder(tc.pred), b, 0b111, scratch); got != tc.wantF {
			t.Errorf("pred=%03b: %d failures, want %d", tc.pred, got, tc.wantF)
		}
	}
	// The documented blind spot, explicitly: prediction 0b000 vs sampled
	// 0b010 agrees on observable 0 yet is a logical failure.
	if got := countBatchFailures(maskDecoder(0), sim.BatchResult{Observables: []sim.Lane{{0b0}, {0b1}, {0b0}}, Shots: 1}, 0b111, scratch); got != 1 {
		t.Errorf("higher-observable mismatch not counted: got %d failures, want 1", got)
	}
}

// TestLogicalErrorSuppression (migrated from internal/decoder): LER must
// drop with distance below threshold — the end-to-end sanity check of the
// sample→decode pipeline.
func TestLogicalErrorSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	const p = 2e-3
	e := New(Options{})
	var lers []float64
	for _, d := range []int{3, 5} {
		c := memCircuit(t, d, d, p)
		res := mustEval(t, e, Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 20000, Rounds: d, Seed: 17})
		lers = append(lers, res.LER)
	}
	if lers[1] >= lers[0] {
		t.Errorf("LER not suppressed with distance: d=3 %.4g, d=5 %.4g", lers[0], lers[1])
	}
}

// TestGreedyAgreesRoughly (migrated from internal/decoder): the greedy
// baseline should land within a modest factor of union-find on the same
// shots.
func TestGreedyAgreesRoughly(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	c := memCircuit(t, 3, 3, 4e-3)
	e := New(Options{})
	uf := mustEval(t, e, Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 20000, Rounds: 3, Seed: 21})
	gr := mustEval(t, e, Spec{Circuit: c, Decoder: decoder.KindGreedy, Shots: 20000, Rounds: 3, Seed: 21})
	if uf.Failures == 0 || gr.Failures == 0 {
		t.Fatal("underpowered: no failures observed")
	}
	ratio := gr.LER / uf.LER
	if ratio < 0.3 || ratio > 3.5 {
		t.Errorf("decoders disagree wildly: greedy %.4g vs union-find %.4g (%.2fx)", gr.LER, uf.LER, ratio)
	}
}

// TestProgressMultiWorker: with many workers racing to commit chunks, the
// callback must still see serialized, strictly increasing shot counts and a
// guaranteed final call carrying the returned totals.
func TestProgressMultiWorker(t *testing.T) {
	c := memCircuit(t, 3, 3, 3e-3)
	e := New(Options{})
	var (
		inCallback atomic.Bool
		lastShots  = -1
		lastFails  int
		calls      int
	)
	res := mustEval(t, e, Spec{
		Circuit: c, Decoder: decoder.KindUnionFind, Shots: 20000, Rounds: 3, Seed: 11, Workers: 8,
		Progress: func(shots, failures int) {
			if !inCallback.CompareAndSwap(false, true) {
				t.Error("Progress called concurrently")
			}
			defer inCallback.Store(false)
			if shots <= lastShots {
				t.Errorf("progress shots not strictly increasing: %d after %d", shots, lastShots)
			}
			if failures < lastFails {
				t.Errorf("progress failures went backwards: %d after %d", failures, lastFails)
			}
			lastShots, lastFails = shots, failures
			calls++
		},
	})
	if calls == 0 {
		t.Fatal("progress callback never called")
	}
	if lastShots != res.Shots || lastFails != res.Failures {
		t.Errorf("final progress (%d,%d) != result (%d,%d)", lastShots, lastFails, res.Shots, res.Failures)
	}
}

// TestProgressFinalCallEarlyStop: the guaranteed final call also holds when
// an early-stop criterion truncates the evaluation.
func TestProgressFinalCallEarlyStop(t *testing.T) {
	c := memCircuit(t, 3, 3, 2e-2)
	e := New(Options{})
	lastShots, lastFails := -1, 0
	res := mustEval(t, e, Spec{
		Circuit: c, Decoder: decoder.KindUnionFind, Shots: 200000, Rounds: 3, Seed: 5, Workers: 4,
		TargetFailures: 20,
		Progress: func(shots, failures int) {
			lastShots, lastFails = shots, failures
		},
	})
	if !res.EarlyStopped {
		t.Fatal("expected an early stop at p=2e-2 with TargetFailures=20")
	}
	if lastShots != res.Shots || lastFails != res.Failures {
		t.Errorf("final progress (%d,%d) != result (%d,%d)", lastShots, lastFails, res.Shots, res.Failures)
	}
}

// TestEngineMetrics: an engine wired to a fresh registry records shot,
// failure, evaluation and cache metrics plus a per-chunk latency histogram.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry(nil)
	e := New(Options{Metrics: reg})
	c := memCircuit(t, 3, 3, 3e-3)
	spec := Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 4096, Rounds: 3, Seed: 3}
	res := mustEval(t, e, spec)
	mustEval(t, e, spec) // second run hits the DEM/graph cache

	snap := reg.Snapshot()
	if got := snap["mc.shots"].(int64); got != int64(2*res.Shots) {
		t.Errorf("mc.shots = %d, want %d", got, 2*res.Shots)
	}
	if got := snap["mc.evaluations"].(int64); got != 2 {
		t.Errorf("mc.evaluations = %d, want 2", got)
	}
	if got := snap["mc.failures"].(int64); got != int64(2*res.Failures) {
		t.Errorf("mc.failures = %d, want %d", got, 2*res.Failures)
	}
	hs := snap["mc.decode.latency"].(obs.HistogramSnapshot)
	wantChunks := int64(2 * ((spec.Shots + ChunkShots - 1) / ChunkShots))
	if hs.Count != wantChunks {
		t.Errorf("mc.decode.latency count = %d, want %d chunks", hs.Count, wantChunks)
	}
	if got := snap["mc.cache.hits"].(float64); got < 1 {
		t.Errorf("mc.cache.hits = %v, want >= 1 after a repeated evaluation", got)
	}
	if got := snap["mc.cache.misses"].(float64); got < 1 {
		t.Errorf("mc.cache.misses = %v, want >= 1 after a cold evaluation", got)
	}
}

// TestEngineDiscardMetrics: an engine on obs.Discard records nothing and
// still evaluates correctly.
func TestEngineDiscardMetrics(t *testing.T) {
	e := New(Options{Metrics: obs.Discard})
	c := memCircuit(t, 3, 3, 3e-3)
	res := mustEval(t, e, Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 2048, Rounds: 3, Seed: 3})
	if res.Shots != 2048 {
		t.Errorf("Shots = %d, want 2048", res.Shots)
	}
	if len(obs.Discard.Snapshot()) != 0 {
		t.Error("Discard registry must stay empty")
	}
}

// TestEvaluateSpan: Evaluate records an mc.evaluate span when the context
// carries a tracer, with an early-stop instant event when a criterion fires.
func TestEvaluateSpan(t *testing.T) {
	tr := obs.NewTracer(nil)
	ctx := obs.WithTracer(context.Background(), tr)
	e := New(Options{Metrics: obs.NewRegistry(nil)})
	c := memCircuit(t, 3, 3, 2e-2)
	if _, err := e.Evaluate(ctx, Spec{
		Circuit: c, Decoder: decoder.KindUnionFind, Shots: 200000, Rounds: 3, Seed: 5,
		TargetFailures: 20,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"mc.evaluate"`) {
		t.Errorf("trace missing mc.evaluate span:\n%s", out)
	}
	if !strings.Contains(out, `"early-stop"`) {
		t.Errorf("trace missing early-stop event:\n%s", out)
	}
}
