package mc

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"context"
	"testing"
)

func frameTestCircuit(t testing.TB, d int, p float64) *code.Patch {
	t.Helper()
	return code.NewPatch(lattice.NewSquare(d))
}

// TestSampleChunksMatchesEvaluate is the in-package half of the stream
// round-trip oracle: scoring every batch SampleChunks produces through a
// FrameDecoder must reproduce Evaluate's failure count bit-identically,
// for both the worker-pool path and the sequential tap.
func TestSampleChunksMatchesEvaluate(t *testing.T) {
	patch := frameTestCircuit(t, 3, 3e-3)
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(3e-3)})
	if err != nil {
		t.Fatal(err)
	}
	const shots = 5000 // not a multiple of ChunkShots: exercises the short tail chunk
	spec := func() Spec {
		return Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3, RNG: rng.New(42)}
	}
	eng := New(Options{})
	want, err := eng.Evaluate(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}

	fd, err := eng.FrameDecoder(c, decoder.KindUnionFind)
	if err != nil {
		t.Fatal(err)
	}
	if fd.NumDetectors() != c.NumDetectors || fd.NumObs() != c.NumObs {
		t.Fatalf("FrameDecoder dims (%d,%d), want (%d,%d)", fd.NumDetectors(), fd.NumObs(), c.NumDetectors, c.NumObs)
	}
	if fd.CircuitFingerprint() != Fingerprint(c) {
		t.Fatal("FrameDecoder fingerprint mismatch")
	}

	got, total := 0, 0
	var syn []int
	err = SampleChunks(context.Background(), spec(), func(b sim.BatchResult) error {
		for s := 0; s < b.Shots; s++ {
			syn = syn[:0]
			var actual uint64
			w, bit := s/64, uint(s%64)
			for di := range b.Detectors {
				if b.Detectors[di][w]>>bit&1 == 1 {
					syn = append(syn, di)
				}
			}
			for o := range b.Observables {
				if b.Observables[o][w]>>bit&1 == 1 {
					actual |= 1 << uint(o)
				}
			}
			if fd.ScoreFrame(syn, actual) {
				got++
			}
			total++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != shots {
		t.Fatalf("SampleChunks delivered %d shots, want %d", total, shots)
	}
	if got != want.Failures {
		t.Fatalf("per-frame scoring counted %d failures, Evaluate counted %d", got, want.Failures)
	}
	if want.Failures == 0 {
		t.Fatal("test vacuous: no failures at this noise level; raise p")
	}
}

// TestSampleChunksCancellation: a canceled context aborts between batches
// with the context's error.
func TestSampleChunksCancellation(t *testing.T) {
	patch := frameTestCircuit(t, 3, 1e-3)
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	batches := 0
	err = SampleChunks(ctx, Spec{Circuit: c, Shots: 1 << 20, Seed: 1}, func(sim.BatchResult) error {
		batches++
		if batches == 3 {
			cancel()
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if batches > 4 {
		t.Fatalf("sampling ran %d batches after cancellation", batches)
	}
}

// TestDecodeFrameConcurrent exercises the pooled decoder checkout under
// parallel callers (run with -race in CI).
func TestDecodeFrameConcurrent(t *testing.T) {
	patch := frameTestCircuit(t, 3, 2e-3)
	c, err := patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(2e-3)})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := New(Options{}).FrameDecoder(c, decoder.KindUnionFind)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-draw syndromes, then decode them from many goroutines and check
	// every goroutine sees the same predictions as a serial pass.
	var syndromes [][]int
	fs := sim.NewFrameSimulator(c, rng.New(9))
	fs.Sample(256, func(b sim.BatchResult) {
		for s := 0; s < b.Shots; s++ {
			var syn []int
			for di := range b.Detectors {
				if b.Detectors[di][s/64]>>uint(s%64)&1 == 1 {
					syn = append(syn, di)
				}
			}
			syndromes = append(syndromes, syn)
		}
	})
	want := make([]uint64, len(syndromes))
	for i, syn := range syndromes {
		want[i] = fd.DecodeFrame(syn)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i, syn := range syndromes {
				if got := fd.DecodeFrame(syn); got != want[i] {
					errs <- nil
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		<-errs
	}
	// Re-verify serially after the concurrent churn: pooled scratch must not
	// have corrupted the graph.
	for i, syn := range syndromes {
		if got := fd.DecodeFrame(syn); got != want[i] {
			t.Fatalf("syndrome %d: prediction changed after concurrent use", i)
		}
	}
}
