package mc

import (
	"caliqec/internal/circuit"
	"caliqec/internal/decoder"
	"caliqec/internal/dem"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
)

// fingerprint is a 128-bit content hash of a circuit: structure AND noise
// parameters. Two circuits with identical instruction sequences but
// different channel probabilities hash differently, so they never share a
// cached decoding graph.
type fingerprint [16]byte

// Fingerprint hashes c's full content — dimensions, every instruction's
// opcode, targets, record references, annotation index, and the float bits
// of its probability argument (FNV-1a 128).
func Fingerprint(c *circuit.Circuit) [16]byte {
	h := fnv.New128a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(c.NumQubits))
	put(uint64(c.NumMeas))
	put(uint64(c.NumDetectors))
	put(uint64(c.NumObs))
	put(uint64(len(c.Instructions)))
	for _, in := range c.Instructions {
		put(uint64(in.Op))
		put(math.Float64bits(in.Arg))
		put(uint64(in.Index))
		put(uint64(len(in.Targets)))
		for _, t := range in.Targets {
			put(uint64(t))
		}
		put(uint64(len(in.Recs)))
		for _, r := range in.Recs {
			put(uint64(r))
		}
	}
	var fp fingerprint
	h.Sum(fp[:0])
	return fp
}

// fpMemo caches fingerprints by circuit pointer identity. Circuits are
// immutable once built (the builder is the only writer, and the simulator
// pool already relies on pointer identity meaning "same compiled program"),
// so a pointer seen before hashes to the same fingerprint — which turns the
// per-Evaluate rehash of a warm sweep's unchanged prior (a measurable
// fraction of warm evaluation time) into one map lookup. Bounded: at
// fpMemoMax entries the map is dropped wholesale, which also releases the
// circuit pointers it keeps alive.
var fpMemo struct {
	sync.Mutex
	m map[*circuit.Circuit]fingerprint
}

const fpMemoMax = 1024

// fingerprintOf is Fingerprint memoized by pointer identity.
func fingerprintOf(c *circuit.Circuit) fingerprint {
	fpMemo.Lock()
	if fp, ok := fpMemo.m[c]; ok {
		fpMemo.Unlock()
		return fp
	}
	fpMemo.Unlock()
	// Hash outside the lock; concurrent misses on one circuit hash twice
	// but agree on the result.
	fp := Fingerprint(c)
	fpMemo.Lock()
	if fpMemo.m == nil || len(fpMemo.m) >= fpMemoMax {
		fpMemo.m = make(map[*circuit.Circuit]fingerprint, 64)
	}
	fpMemo.m[c] = fp
	fpMemo.Unlock()
	return fp
}

// cacheEntry holds everything derivable from one prior circuit: its DEM,
// the decoding graph, a pool of reusable decoder instances per kind
// (decoders carry scratch state, so one instance serves one worker at a
// time; pooling avoids rebuilding their adjacency scans every chunk), and a
// free list of frame simulators (a simulator's compiled program and frame
// storage are reusable across chunks after a Reset).
type cacheEntry struct {
	model *dem.Model
	graph *decoder.Graph
	pools [2]sync.Pool // indexed by decoder.DecoderKind

	simMu sync.Mutex
	sims  []*sim.FrameSimulator
}

func newCacheEntry(prior *circuit.Circuit) (*cacheEntry, error) {
	model, err := dem.FromCircuit(prior)
	if err != nil {
		return nil, fmt.Errorf("mc: extracting DEM: %w", err)
	}
	g, err := decoder.BuildGraph(model)
	if err != nil {
		return nil, fmt.Errorf("mc: building graph: %w", err)
	}
	ent := &cacheEntry{model: model, graph: g}
	for kind := range ent.pools {
		k := decoder.DecoderKind(kind)
		ent.pools[kind].New = func() interface{} { return decoder.New(k, g) }
	}
	return ent, nil
}

func (ent *cacheEntry) getDecoder(kind decoder.DecoderKind) decoder.Decoder {
	return ent.pools[poolIndex(kind)].Get().(decoder.Decoder)
}

func (ent *cacheEntry) putDecoder(kind decoder.DecoderKind, dec decoder.Decoder) {
	ent.pools[poolIndex(kind)].Put(dec)
}

func poolIndex(kind decoder.DecoderKind) int {
	if kind == decoder.KindGreedy {
		return 1
	}
	return 0
}

// getSim returns a pooled frame simulator compiled for exactly c, rebound
// to r, or builds a fresh one. Matching is by circuit identity: stale-prior
// specs share a cache entry keyed by the prior but sample a *different*
// circuit, so a free simulator is only reused when it was compiled for the
// same circuit pointer.
func (ent *cacheEntry) getSim(c *circuit.Circuit, r *rng.RNG) *sim.FrameSimulator {
	ent.simMu.Lock()
	for i := len(ent.sims) - 1; i >= 0; i-- {
		if ent.sims[i].Circuit() == c {
			fs := ent.sims[i]
			last := len(ent.sims) - 1
			ent.sims[i] = ent.sims[last]
			ent.sims[last] = nil
			ent.sims = ent.sims[:last]
			ent.simMu.Unlock()
			fs.Reset(r)
			return fs
		}
	}
	ent.simMu.Unlock()
	return sim.NewFrameSimulator(c, r)
}

// putSim returns a simulator to the free list, bounded at twice GOMAXPROCS
// so an entry never hoards more simulators than a full worker pool can use.
func (ent *cacheEntry) putSim(fs *sim.FrameSimulator) {
	ent.simMu.Lock()
	if len(ent.sims) < 2*runtime.GOMAXPROCS(0) {
		ent.sims = append(ent.sims, fs)
	}
	ent.simMu.Unlock()
}

// entryFor returns the cached DEM+graph for prior, building and inserting
// it on a miss (LRU eviction beyond the configured size).
func (e *Engine) entryFor(prior *circuit.Circuit) (*cacheEntry, error) {
	return e.entryForFP(fingerprintOf(prior), prior)
}

// entryForFP is entryFor with the fingerprint already computed, so callers
// that needed it anyway (batch dedup) do not hash twice.
func (e *Engine) entryForFP(fp fingerprint, prior *circuit.Circuit) (*cacheEntry, error) {
	e.mu.Lock()
	if ent, ok := e.cache[fp]; ok {
		e.hits++
		e.touch(fp)
		e.mu.Unlock()
		return ent, nil
	}
	e.misses++
	e.mu.Unlock()

	// Built outside the lock: concurrent misses on the same circuit may
	// build twice, but the last insert wins and both results are valid.
	ent, err := newCacheEntry(prior)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if _, ok := e.cache[fp]; !ok {
		e.cache[fp] = ent
		e.order = append(e.order, fp)
		for len(e.cache) > e.maxEntry {
			oldest := e.order[0]
			e.order = e.order[1:]
			delete(e.cache, oldest)
		}
	}
	ent = e.cache[fp]
	e.mu.Unlock()
	return ent, nil
}

// touch moves fp to the most-recently-used end. Called with e.mu held.
func (e *Engine) touch(fp fingerprint) {
	for i, f := range e.order {
		if f == fp {
			copy(e.order[i:], e.order[i+1:])
			e.order[len(e.order)-1] = fp
			return
		}
	}
}
