package mc

import (
	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/obs"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"context"
	"math"
	"testing"
)

func windowedTestCircuit(t testing.TB, d, rounds int, p float64) *circuit.Circuit {
	t.Helper()
	c, err := code.NewPatch(lattice.NewSquare(d)).MemoryCircuit(
		code.MemoryOptions{Rounds: rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWindowedFrameDecoderFullWindowMatchesWholeShot: with window >= rounds
// the windowed decoder never commits mid-stream, so its failure count over
// the sampled stream must equal Evaluate's bit-identically — the mc-level
// equivalence anchor for the windowed path.
func TestWindowedFrameDecoderFullWindowMatchesWholeShot(t *testing.T) {
	c := windowedTestCircuit(t, 3, 4, 3e-3)
	const shots = 4000
	eng := New(Options{})
	want, err := eng.Evaluate(context.Background(),
		Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 4, RNG: rng.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := eng.AblateWindows(context.Background(),
		Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 4, RNG: rng.New(5)},
		[]int{c.NumRounds})
	if err != nil {
		t.Fatal(err)
	}
	if ab.Shots != shots {
		t.Fatalf("ablation sampled %d shots, want %d", ab.Shots, shots)
	}
	if ab.WholeFails != want.Failures {
		t.Fatalf("whole-shot path counted %d failures, Evaluate %d", ab.WholeFails, want.Failures)
	}
	if ab.WindowFails[0] != want.Failures {
		t.Fatalf("window=%d (full) counted %d failures, Evaluate %d", c.NumRounds, ab.WindowFails[0], want.Failures)
	}
	if want.Failures == 0 {
		t.Fatal("test vacuous: no failures at this noise level; raise p")
	}
}

// TestWindowedLERTolerance is the committed equivalence assertion from the
// issue: windowed LER for W >= 3 must match whole-shot LER within
// statistical tolerance. Whole-shot and windowed decoders score the same
// sampled shots, so the failure sets are strongly correlated; the tolerance
// below (5 sigma of the whole-shot count plus a small floor) is far wider
// than the residual window effect and far narrower than a real regression
// (e.g. dropped time-like matching, which multiplies the LER).
func TestWindowedLERTolerance(t *testing.T) {
	c := windowedTestCircuit(t, 3, 8, 3e-3)
	const shots = 6000
	eng := New(Options{})
	ab, err := eng.AblateWindows(context.Background(),
		Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 8, RNG: rng.New(21)},
		[]int{3, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if ab.WholeFails == 0 {
		t.Fatal("test vacuous: no whole-shot failures; raise p or shots")
	}
	tol := 5*math.Sqrt(float64(ab.WholeFails)) + 5
	for i, w := range ab.Windows {
		diff := math.Abs(float64(ab.WindowFails[i] - ab.WholeFails))
		t.Logf("W=%d: %d failures vs whole-shot %d (shots %d, tol %.1f)", w, ab.WindowFails[i], ab.WholeFails, shots, tol)
		if diff > tol {
			t.Errorf("W=%d: windowed failures %d vs whole-shot %d, diff %.0f exceeds tolerance %.1f",
				w, ab.WindowFails[i], ab.WholeFails, diff, tol)
		}
	}
}

// collectSyndromes transposes a batch into per-shot sorted syndromes.
func collectSyndromes(out *[][]int, b sim.BatchResult) error {
	for s := 0; s < b.Shots; s++ {
		var syn []int
		for di := range b.Detectors {
			if b.Detectors[di][s/64]>>uint(s%64)&1 == 1 {
				syn = append(syn, di)
			}
		}
		*out = append(*out, syn)
	}
	return nil
}

// TestWindowedFrameDecoderConcurrent: pooled windowed decoders under
// parallel callers must agree with a serial pass (run with -race in CI).
func TestWindowedFrameDecoderConcurrent(t *testing.T) {
	c := windowedTestCircuit(t, 3, 5, 2e-3)
	eng := New(Options{})
	wd, err := eng.WindowedFrameDecoder(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wd.NumRounds() != c.NumRounds || wd.Window() != 3 {
		t.Fatalf("dims: rounds=%d window=%d", wd.NumRounds(), wd.Window())
	}
	if wd.CircuitFingerprint() != Fingerprint(c) {
		t.Fatal("fingerprint mismatch")
	}
	var syndromes [][]int
	err = SampleChunks(context.Background(), Spec{Circuit: c, Shots: 512, Seed: 3}, func(b sim.BatchResult) error {
		return collectSyndromes(&syndromes, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, len(syndromes))
	for i, syn := range syndromes {
		want[i] = wd.DecodeFrame(syn)
	}
	const workers = 8
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			bad := 0
			for i, syn := range syndromes {
				if wd.DecodeFrame(syn) != want[i] {
					bad++
				}
			}
			done <- bad
		}()
	}
	for w := 0; w < workers; w++ {
		if bad := <-done; bad != 0 {
			t.Fatalf("%d mismatched predictions under concurrency", bad)
		}
	}
}

// TestWindowedRoundLatencyMetrics: SetRoundMetrics records one histogram
// sample per ingested round.
func TestWindowedRoundLatencyMetrics(t *testing.T) {
	c := windowedTestCircuit(t, 3, 4, 2e-3)
	wd, err := New(Options{}).WindowedFrameDecoder(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(nil)
	wd.SetRoundMetrics(reg)
	const frames = 7
	for i := 0; i < frames; i++ {
		wd.DecodeFrame(nil)
	}
	h := reg.Histogram("stream.decode.round.latency")
	if got, want := h.Count(), int64(frames*c.NumRounds); got != want {
		t.Fatalf("round latency samples %d, want %d (%d frames x %d rounds)", got, want, frames, c.NumRounds)
	}
}

// TestWindowedFrameDecoderRejectsRoundless: a circuit without round
// structure (a hand-assembled literal that never went through the Builder,
// so NumRounds stays 0) cannot be windowed-decoded.
func TestWindowedFrameDecoderRejectsRoundless(t *testing.T) {
	c := &circuit.Circuit{
		Instructions: []circuit.Instruction{
			{Op: circuit.OpXError, Targets: []int{0}, Arg: 1e-3},
			{Op: circuit.OpM, Targets: []int{0}},
			{Op: circuit.OpDetector, Recs: []int{0}, Index: 0},
			{Op: circuit.OpObservable, Recs: []int{0}, Index: 0},
		},
		NumQubits: 1, NumMeas: 1, NumDetectors: 1, NumObs: 1,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{}).WindowedFrameDecoder(c, 3); err == nil {
		t.Fatal("want error for roundless circuit")
	}
}
