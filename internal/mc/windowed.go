package mc

import (
	"caliqec/internal/circuit"
	"caliqec/internal/decoder"
	"caliqec/internal/obs"
	"caliqec/internal/sim"
	"context"
	"fmt"
	"math/bits"
	"sync"
)

// WindowedFrameDecoder is the bounded-latency counterpart of FrameDecoder:
// it decodes frames through a sliding round window (decoder.Windowed over
// the same cached graph an Evaluate would use), committing corrections as
// rounds slide out. Resident decode state is O(window), independent of how
// many rounds a stream carries, and each round's decode cost is bounded by
// one window decode — the property the per-round latency budget in CI
// measures.
//
// Safe for concurrent use: every call checks a windowed decoder out of the
// pool and returns it before reporting.
type WindowedFrameDecoder struct {
	ent       *cacheEntry
	window    int
	obsMask   uint64
	numDet    int
	numObs    int
	numRounds int
	fp        [16]byte
	pool      sync.Pool // *decoder.Windowed

	// Optional per-round latency histogram (stream.decode.round.latency),
	// installed by SetRoundMetrics. Nil handles skip timing entirely.
	registry     *obs.Registry
	roundLatency *obs.Histogram
}

// WindowedFrameDecoder returns a sliding-window per-frame decoder over the
// cached decoding graph of prior. The prior must carry round structure
// (built by circuit.Builder with Ticks) and window must be >= 1; a window
// of at least NumRounds degenerates to whole-shot decoding bit-identically.
func (e *Engine) WindowedFrameDecoder(prior *circuit.Circuit, window int) (*WindowedFrameDecoder, error) {
	if prior == nil {
		return nil, fmt.Errorf("mc: nil circuit")
	}
	if prior.NumObs > 64 {
		return nil, fmt.Errorf("mc: %d observables exceed the 64-bit mask limit", prior.NumObs)
	}
	ent, err := e.entryFor(prior)
	if err != nil {
		return nil, err
	}
	// Build one eagerly so configuration errors (roundless graph, bad
	// window) surface here rather than inside a decode worker.
	first, err := decoder.NewWindowed(ent.graph, window)
	if err != nil {
		return nil, err
	}
	e.publishCacheStats()
	wd := &WindowedFrameDecoder{
		ent:       ent,
		window:    window,
		obsMask:   observableMask(prior.NumObs),
		numDet:    prior.NumDetectors,
		numObs:    prior.NumObs,
		numRounds: ent.graph.NumRounds,
		fp:        fingerprintOf(prior),
	}
	g := ent.graph
	wd.pool.New = func() interface{} {
		w, nerr := decoder.NewWindowed(g, window)
		if nerr != nil {
			panic(nerr) //lint:allow panicpolicy same (graph, window) pair validated by the first NewWindowed above; failure here is an internal invariant break
		}
		return w
	}
	wd.pool.Put(first)
	return wd, nil
}

// NumDetectors returns the detector count of the decoder's circuit.
func (wd *WindowedFrameDecoder) NumDetectors() int { return wd.numDet }

// NumObs returns the observable count of the decoder's circuit.
func (wd *WindowedFrameDecoder) NumObs() int { return wd.numObs }

// NumRounds returns the circuit's round count.
func (wd *WindowedFrameDecoder) NumRounds() int { return wd.numRounds }

// Window returns the window size in rounds.
func (wd *WindowedFrameDecoder) Window() int { return wd.window }

// CircuitFingerprint returns the content fingerprint of the prior circuit.
func (wd *WindowedFrameDecoder) CircuitFingerprint() [16]byte { return wd.fp }

// DetectorQubits returns a copy of the graph's detector→qubit attribution
// (nil when the circuit carries none).
func (wd *WindowedFrameDecoder) DetectorQubits() []int {
	return append([]int(nil), wd.ent.graph.NodeQubit...)
}

// DetectorRounds returns a copy of the graph's detector→round layering (nil
// when the circuit carries no round structure).
func (wd *WindowedFrameDecoder) DetectorRounds() []int {
	return append([]int(nil), wd.ent.graph.NodeRound...)
}

// SetRoundMetrics installs a per-round decode-latency histogram
// (stream.decode.round.latency) in r; nil selects obs.Default. Call before
// decoding starts.
func (wd *WindowedFrameDecoder) SetRoundMetrics(r *obs.Registry) {
	if r == nil {
		r = obs.Default
	}
	wd.registry = r
	wd.roundLatency = r.Histogram("stream.decode.round.latency")
}

// DecodeFrame decodes one whole-shot frame through the sliding window:
// the sorted syndrome is split into rounds (a single linear walk — detector
// order agrees with round order by the dem round-map contract) and ingested
// round by round, committing as the window slides. Returns the predicted
// observable flip mask.
func (wd *WindowedFrameDecoder) DecodeFrame(syndrome []int) uint64 {
	w := wd.pool.Get().(*decoder.Windowed)
	w.Reset()
	nodeRound := wd.ent.graph.NodeRound
	i := 0
	for r := 0; r < wd.numRounds; r++ {
		j := i
		for j < len(syndrome) && nodeRound[syndrome[j]] == r {
			j++
		}
		var err error
		if wd.roundLatency != nil {
			start := wd.registry.Now()
			err = w.IngestRound(syndrome[i:j])
			wd.roundLatency.Observe(wd.registry.Now().Sub(start).Nanoseconds())
		} else {
			err = w.IngestRound(syndrome[i:j])
		}
		if err != nil {
			// Unreachable for sorted in-range syndromes of this circuit;
			// reaching it means the splitter contract broke.
			panic(err) //lint:allow panicpolicy unreachable for the splitter's sorted in-range rounds; reaching it is an internal invariant break
		}
		i = j
	}
	pred := w.Flush() & wd.obsMask
	wd.pool.Put(w)
	return pred
}

// ScoreFrame implements stream.FrameScorer: decode one frame through the
// window and report whether it is a logical failure.
func (wd *WindowedFrameDecoder) ScoreFrame(syndrome []int, actual uint64) bool {
	return wd.DecodeFrame(syndrome) != actual&wd.obsMask
}

// WindowAblation is the result of AblateWindows: logical failure counts of
// whole-shot decoding and of each windowed decoder over one common sampled
// shot stream, so differences are attributable to the window alone.
type WindowAblation struct {
	Shots        int
	WholeFails   int   // whole-shot union-find failures
	Windows      []int // ablated window sizes
	WindowFails  []int // failures per window size, aligned with Windows
	NumRounds    int   // circuit rounds (window >= NumRounds is whole-shot)
	NumDetectors int
}

// LER returns the whole-shot logical error rate.
func (a *WindowAblation) LER() float64 { return float64(a.WholeFails) / float64(a.Shots) }

// WindowLER returns the logical error rate at Windows[i].
func (a *WindowAblation) WindowLER(i int) float64 {
	return float64(a.WindowFails[i]) / float64(a.Shots)
}

// AblateWindows samples spec's shot stream once (bit-identical to Evaluate's
// randomness, via SampleChunks) and scores every shot with the whole-shot
// union-find decoder and with a windowed decoder per requested window size.
// Early-stop criteria in spec are ignored; the full Shots budget is sampled.
func (e *Engine) AblateWindows(ctx context.Context, spec Spec, windows []int) (*WindowAblation, error) {
	prior := spec.Prior
	if prior == nil {
		prior = spec.Circuit
	}
	fd, err := e.FrameDecoder(prior, decoder.KindUnionFind)
	if err != nil {
		return nil, err
	}
	wds := make([]*WindowedFrameDecoder, len(windows))
	for i, w := range windows {
		if wds[i], err = e.WindowedFrameDecoder(prior, w); err != nil {
			return nil, fmt.Errorf("mc: window %d: %w", w, err)
		}
	}
	ab := &WindowAblation{
		Windows:      append([]int(nil), windows...),
		WindowFails:  make([]int, len(windows)),
		NumRounds:    fd.ent.graph.NumRounds,
		NumDetectors: spec.Circuit.NumDetectors,
	}
	obsMask := observableMask(spec.Circuit.NumObs)
	var perShot [sim.LaneShots][]int
	var actual [sim.LaneShots]uint64
	err = SampleChunks(ctx, spec, func(b sim.BatchResult) error {
		words := b.Words()
		for s := 0; s < b.Shots; s++ {
			perShot[s] = perShot[s][:0]
			actual[s] = 0
		}
		// Transpose detector lanes (bit s%64 of word s/64 per shot) into
		// per-shot sorted syndromes; detectors are visited in ascending
		// order so each shot's list is born sorted.
		for d := range b.Detectors {
			for w := 0; w < words; w++ {
				base := w * 64
				for word := b.Detectors[d][w]; word != 0; word &= word - 1 {
					s := base + bits.TrailingZeros64(word)
					perShot[s] = append(perShot[s], d)
				}
			}
		}
		for o := range b.Observables {
			obit := uint64(1) << uint(o)
			for w := 0; w < words; w++ {
				base := w * 64
				for word := b.Observables[o][w]; word != 0; word &= word - 1 {
					actual[base+bits.TrailingZeros64(word)] |= obit
				}
			}
		}
		for s := 0; s < b.Shots; s++ {
			a := actual[s] & obsMask
			if fd.ScoreFrame(perShot[s], a) {
				ab.WholeFails++
			}
			for i := range wds {
				if wds[i].ScoreFrame(perShot[s], a) {
					ab.WindowFails[i]++
				}
			}
			ab.Shots++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ab, nil
}
