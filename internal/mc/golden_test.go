package mc

import (
	"context"
	"testing"

	"caliqec/internal/decoder"
)

// The golden values below were captured from the pre-lane-widening
// implementation (64-shot sampler batches, full union-find reset per shot).
// The widened 256-shot sampler, the popcount failure counter, the span
// scheduler and the incremental union-find reset must all leave them
// untouched — any drift here means the bit-identity contract broke, not
// just a statistical wobble.

// TestEvaluateGoldenCounts pins exact failure counts of fixed-seed
// evaluations across decoder kinds and distances.
func TestEvaluateGoldenCounts(t *testing.T) {
	e := New(Options{})
	cases := []struct {
		d, rounds int
		p         float64
		shots     int
		seed      uint64
		kind      decoder.DecoderKind
		wantFails int
	}{
		{3, 3, 0.003, 5000, 42, decoder.KindUnionFind, 26},
		{5, 5, 0.002, 2000, 1, decoder.KindUnionFind, 1},
		{3, 3, 0.004, 3000, 21, decoder.KindGreedy, 36},
	}
	for _, tc := range cases {
		c := memCircuit(t, tc.d, tc.rounds, tc.p)
		res := mustEval(t, e, Spec{
			Circuit: c, Decoder: tc.kind, Shots: tc.shots, Rounds: tc.rounds, Seed: tc.seed,
		})
		if res.Shots != tc.shots || res.Failures != tc.wantFails {
			t.Errorf("d=%d p=%g seed=%d kind=%v: shots=%d failures=%d, want shots=%d failures=%d",
				tc.d, tc.p, tc.seed, tc.kind, res.Shots, res.Failures, tc.shots, tc.wantFails)
		}
	}
}

// TestEarlyStopGolden pins the committed-prefix early-stop point: the exact
// chunk boundary and failure count must survive the scheduler's span
// claiming and the widened batches.
func TestEarlyStopGolden(t *testing.T) {
	c := memCircuit(t, 3, 3, 1.5e-2)
	res := mustEval(t, New(Options{}), Spec{
		Circuit: c, Decoder: decoder.KindUnionFind, Shots: 400000, Rounds: 3,
		Seed: 11, TargetFailures: 50,
	})
	if !res.EarlyStopped || res.Shots != 1024 || res.Failures != 122 {
		t.Errorf("early stop at shots=%d failures=%d stopped=%v, want 1024/122/true",
			res.Shots, res.Failures, res.EarlyStopped)
	}
}

// TestAblateWindowsGolden pins the windowed ablation counts, covering the
// lane transpose in AblateWindows and DecodeWindow through the incremental
// union-find.
func TestAblateWindowsGolden(t *testing.T) {
	c := memCircuit(t, 3, 3, 3e-3)
	ab, err := New(Options{}).AblateWindows(context.Background(),
		Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 2000, Rounds: 3, Seed: 3},
		[]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ab.Shots != 2000 || ab.WholeFails != 10 {
		t.Errorf("whole-shot: shots=%d fails=%d, want 2000/10", ab.Shots, ab.WholeFails)
	}
	want := []int{47, 11, 10}
	for i, w := range ab.Windows {
		if ab.WindowFails[i] != want[i] {
			t.Errorf("window=%d: %d failures, want %d", w, ab.WindowFails[i], want[i])
		}
	}
}
