// Package mc is the Monte-Carlo logical-error-rate engine: the single
// entry point through which every experiment, command, example and the
// public facade in this repository measures LERs.
//
// The engine owns the whole sample→decode pipeline — extract a detector
// error model from the decoder's prior circuit, build the decoding graph,
// fan Monte-Carlo shots over a worker pool, decode each shot, and count
// logical failures — and layers three capabilities on top of the raw loop
// that used to be copy-pasted across internal/decoder:
//
//   - Cancellation. Evaluate takes a context.Context and aborts an
//     in-flight evaluation between sampler batches, so long sweeps
//     (Table 2 fits, repro runs, benchmarks) stop promptly on Ctrl-C or
//     deadline.
//   - Caching. DEM extraction and decoding-graph construction are cached
//     behind a content fingerprint of the prior circuit (instructions and
//     noise parameters included), so repeated evaluations of the same
//     circuit — the dominant pattern in internal/exp — pay graph
//     construction once. Decoder and frame-simulator instances are pooled
//     per cached graph.
//   - Adaptive early stopping. Besides the fixed-shot mode, an evaluation
//     can stop as soon as a target failure count is reached or the 95%
//     Wilson interval is narrower than a target width, reporting the shots
//     actually spent.
//
// Determinism: shots are sharded into fixed-size chunks, each seeded by
// splitting the caller's RNG in chunk order, and early-stop decisions are
// taken over the in-order prefix of completed chunks. Results are therefore
// bit-identical for a fixed seed regardless of worker count — a stronger
// guarantee than the old per-worker sharding, which tied results to the
// (seed, workers) pair.
//
// Batched evaluation: EvaluateBatch runs many specs over one shared chunk
// scheduler — a single worker pool interleaves chunks from all specs, while
// seeding, committed-prefix accounting, early stopping and progress stay
// per-spec. Each spec's result is bit-identical to a standalone Evaluate
// with the same seed, regardless of worker count or which specs it shares
// the batch with.
package mc

import (
	"caliqec/internal/circuit"
	"caliqec/internal/decoder"
	"caliqec/internal/obs"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
)

// ChunkShots is the shot-shard size: the unit of work a worker claims, the
// granularity of early-stop decisions and of progress reports. A multiple
// of sim.LaneShots so every chunk runs whole frame-simulator batches.
// Exported so
// internal/stream's record path shards its shot stream identically (see
// SampleChunks).
const ChunkShots = 1024

// Spec describes one Monte-Carlo LER evaluation.
type Spec struct {
	// Circuit is sampled; required.
	Circuit *circuit.Circuit
	// Prior, when non-nil, is a circuit with identical structure whose
	// noise rates reflect what the decoder *believes* (e.g. the last
	// calibration): the DEM and decoding graph are built from it. This
	// models decoding with stale priors after drift — the paper's drifted
	// scenarios run exactly this way. Nil means decode with Circuit's own
	// rates.
	Prior *circuit.Circuit
	// Decoder selects the decoder family (union-find by default).
	Decoder decoder.DecoderKind
	// Shots is the Monte-Carlo budget; required. With early stopping
	// enabled it is the maximum spent.
	Shots int
	// Rounds is the number of QEC rounds the circuit contains, used only
	// to derive the per-round rate; 0 if not applicable.
	Rounds int
	// RNG seeds the evaluation; if nil, rng.New(Seed) is used. The
	// generator is consumed (split once per chunk), so pass a dedicated
	// generator or a fresh split.
	//
	// In EvaluateBatch every spec's chunk seeds are drawn from that spec's
	// own RNG/Seed, in spec order, before any sampling starts — never from
	// a stream shared across specs. Adding, removing or reordering other
	// specs in a batch therefore cannot perturb this spec's result (though
	// reordering specs that share one RNG instance reorders which splits
	// each receives, exactly as reordering sequential Evaluate calls
	// would).
	RNG *rng.RNG
	// Seed is used only when RNG is nil.
	Seed uint64
	// Workers sets the pool size; ≤ 0 selects GOMAXPROCS. The result does
	// not depend on it. In EvaluateBatch the pool is shared: its size is
	// the maximum over the batch's specs.
	Workers int

	// TargetFailures, when > 0, stops the evaluation once at least this
	// many failures have been counted over the committed chunk prefix.
	TargetFailures int
	// TargetWilsonWidth, when > 0, stops once the 95% Wilson interval on
	// the LER is narrower than this.
	TargetWilsonWidth float64
	// MinShots, when > 0, is a floor below which early stopping does not
	// trigger.
	MinShots int

	// Progress, when non-nil, receives (shots committed, failures so far)
	// as the committed chunk prefix advances. Calls are serialized — never
	// concurrent — and the reported shot count is strictly increasing, but
	// calls may come from different worker goroutines, so the callback must
	// not assume a particular goroutine and must be fast (it runs on the
	// evaluation's critical path). When Evaluate returns without error, the
	// final call is guaranteed to have carried the returned totals. In
	// EvaluateBatch each spec's callback is serialized independently;
	// callbacks of different specs may run concurrently.
	Progress func(shots, failures int)
}

// Result is the outcome of one evaluation.
type Result struct {
	decoder.Result
	// Requested is the shot budget asked for; Shots ≤ Requested when the
	// evaluation stopped early.
	Requested int
	// EarlyStopped reports whether a TargetFailures / TargetWilsonWidth
	// criterion ended the evaluation before the budget was spent.
	EarlyStopped bool
}

// Options configures an Engine.
type Options struct {
	// CacheSize bounds the number of cached DEM+graph entries (LRU);
	// ≤ 0 selects the default (64).
	CacheSize int
	// Metrics selects the registry the engine records into; nil selects
	// obs.Default. Pass obs.Discard for an uninstrumented engine (the
	// baseline BenchmarkObsOverhead measures against).
	Metrics *obs.Registry
}

// Engine runs Monte-Carlo LER evaluations with a shared DEM/graph cache.
// The zero value is not usable; construct with New. An Engine is safe for
// concurrent use.
type Engine struct {
	metrics engineMetrics

	mu       sync.Mutex
	cache    map[fingerprint]*cacheEntry
	order    []fingerprint // LRU order, most recent last
	maxEntry int
	hits     uint64
	misses   uint64
}

// engineMetrics holds the engine's metric handles, resolved once at
// construction so the hot path pays atomic adds only. Every handle is nil
// (a no-op) when the engine records into obs.Discard.
type engineMetrics struct {
	registry     *obs.Registry
	shots        *obs.Counter   // mc.shots: Monte-Carlo shots committed
	failures     *obs.Counter   // mc.failures: logical failures counted
	evaluations  *obs.Counter   // mc.evaluations: Evaluate calls completed
	earlyStops   *obs.Counter   // mc.earlystop: evaluations ended by a criterion
	batches      *obs.Counter   // mc.batch.evaluations: EvaluateBatch calls completed
	occupancy    *obs.Gauge     // mc.sched.occupancy: busy fraction of the chunk scheduler's pool
	cacheHits    *obs.Gauge     // mc.cache.hits: cumulative DEM/graph cache hits
	cacheMisses  *obs.Gauge     // mc.cache.misses: cumulative cache misses
	cacheEntries *obs.Gauge     // mc.cache.entries: current cache population
	latency      *obs.Histogram // mc.decode.latency: per-chunk wall ns
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	if r == nil {
		r = obs.Default
	}
	return engineMetrics{
		registry:     r,
		shots:        r.Counter("mc.shots"),
		failures:     r.Counter("mc.failures"),
		evaluations:  r.Counter("mc.evaluations"),
		earlyStops:   r.Counter("mc.earlystop"),
		batches:      r.Counter("mc.batch.evaluations"),
		occupancy:    r.Gauge("mc.sched.occupancy"),
		cacheHits:    r.Gauge("mc.cache.hits"),
		cacheMisses:  r.Gauge("mc.cache.misses"),
		cacheEntries: r.Gauge("mc.cache.entries"),
		latency:      r.Histogram("mc.decode.latency"),
	}
}

// New returns an Engine with the given options.
func New(opt Options) *Engine {
	if opt.CacheSize <= 0 {
		opt.CacheSize = 64
	}
	return &Engine{
		metrics:  newEngineMetrics(opt.Metrics),
		cache:    make(map[fingerprint]*cacheEntry),
		maxEntry: opt.CacheSize,
	}
}

// Default is the process-wide shared engine: package-level Evaluate uses
// it, so independent call sites (experiments, facade, CLI) share one
// DEM/graph cache.
var Default = New(Options{})

// Evaluate runs spec on the Default engine.
func Evaluate(ctx context.Context, spec Spec) (Result, error) {
	return Default.Evaluate(ctx, spec)
}

// EvaluateBatch runs specs on the Default engine.
func EvaluateBatch(ctx context.Context, specs []Spec) ([]Result, error) {
	return Default.EvaluateBatch(ctx, specs)
}

// CacheStats reports cache hits, misses and current entries.
func (e *Engine) CacheStats() (hits, misses uint64, entries int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses, len(e.cache)
}

// publishCacheStats mirrors the cache counters into the gauge metrics.
func (e *Engine) publishCacheStats() {
	hits, misses, entries := e.CacheStats()
	e.metrics.cacheHits.Set(float64(hits))
	e.metrics.cacheMisses.Set(float64(misses))
	e.metrics.cacheEntries.Set(float64(entries))
}

// evalState is one spec's complete scheduling state inside the shared chunk
// scheduler: its chunk seeds, completed-chunk records, committed-prefix
// accumulator, early-stop bound and progress guard. All fields except the
// progress guard are protected by the scheduler's mutex.
type evalState struct {
	spec  Spec
	prior *circuit.Circuit // resolved prior (spec.Prior or spec.Circuit)
	ent   *cacheEntry

	seeds     []*rng.RNG // per-chunk generators, split in chunk order
	numChunks int

	chunks    []chunkState
	next      int // next chunk index to claim
	committed int // chunks [0, committed) are aggregated
	stopAt    int // chunks ≥ stopAt are not needed
	accShots  int
	accFails  int
	stopped   bool // an early-stop criterion fired

	// done is closed when the spec's committed prefix is final (all needed
	// chunks aggregated, or the batch aborted). Per-spec span goroutines
	// block on it.
	done     chan struct{}
	doneOnce sync.Once

	// Progress serialization: workers snapshot committed totals under the
	// scheduler mutex and may race to deliver them; the monotonic guard
	// drops a snapshot that lost the race so the callback sees strictly
	// increasing shot counts.
	progressMu    sync.Mutex
	reportedShots int
}

type chunkState struct {
	failures int
	shots    int
	done     bool
}

func (st *evalState) closeDone() { st.doneOnce.Do(func() { close(st.done) }) }

// report delivers a progress snapshot, deduplicating stale racers.
func (st *evalState) report(shots, failures int) {
	if st.spec.Progress == nil {
		return
	}
	st.progressMu.Lock()
	defer st.progressMu.Unlock()
	if shots <= st.reportedShots {
		return
	}
	st.reportedShots = shots
	st.spec.Progress(shots, failures)
}

// prepare validates spec and draws its chunk seeds. Seeds are drawn here, on
// the caller's goroutine and in chunk order, so the shot stream assigned to
// chunk i depends only on the spec's own generator — not on scheduling,
// worker count, or (for batches) which specs run alongside. SampleChunks
// shares this function, which is what pins the record path's shot stream to
// Evaluate's.
func prepare(spec Spec) (*evalState, error) {
	if spec.Circuit == nil {
		return nil, fmt.Errorf("mc: nil circuit")
	}
	if spec.Shots <= 0 {
		return nil, fmt.Errorf("mc: shots must be positive, got %d", spec.Shots)
	}
	if spec.Circuit.NumObs > 64 {
		return nil, fmt.Errorf("mc: %d observables exceed the 64-bit mask limit", spec.Circuit.NumObs)
	}
	prior := spec.Prior
	if prior == nil {
		prior = spec.Circuit
	}
	if spec.Circuit.NumDetectors != prior.NumDetectors || spec.Circuit.NumObs != prior.NumObs {
		return nil, fmt.Errorf("mc: prior circuit structure mismatch (%d/%d detectors, %d/%d observables)",
			prior.NumDetectors, spec.Circuit.NumDetectors, prior.NumObs, spec.Circuit.NumObs)
	}
	st := &evalState{
		spec:          spec,
		prior:         prior,
		numChunks:     (spec.Shots + ChunkShots - 1) / ChunkShots,
		done:          make(chan struct{}),
		reportedShots: -1,
	}
	base := spec.RNG
	if base == nil {
		base = rng.New(spec.Seed)
	}
	st.seeds = make([]*rng.RNG, st.numChunks)
	for i := range st.seeds {
		st.seeds[i] = base.Split()
	}
	st.chunks = make([]chunkState, st.numChunks)
	st.stopAt = st.numChunks
	return st, nil
}

// Evaluate samples spec.Shots Monte-Carlo trajectories of spec.Circuit,
// decodes each with a pooled decoder over the (cached) decoding graph of
// the prior circuit, and returns the logical error rate. All observables
// are compared: a shot fails when the predicted observable mask differs
// from the sampled one in any bit.
func (e *Engine) Evaluate(ctx context.Context, spec Spec) (Result, error) {
	st, err := prepare(spec)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ctx, span := obs.StartSpan(ctx, "mc.evaluate")
	defer span.End()
	span.SetAttr("shots", spec.Shots)
	span.SetAttr("detectors", spec.Circuit.NumDetectors)
	st.ent, err = e.entryFor(st.prior)
	if err != nil {
		return Result{}, err
	}
	e.publishCacheStats()
	if err := e.runStates(ctx, []*evalState{st}); err != nil {
		return Result{}, err
	}
	res := e.finish(st)
	if st.stopped {
		span.Event("early-stop")
		span.SetAttr("earlystop", true)
	}
	return res, nil
}

// EvaluateBatch evaluates every spec over one shared chunk scheduler: a
// single worker pool (sized at the maximum of the specs' Workers settings)
// claims chunk spans from all specs in rotation, so short specs do not
// serialize behind long ones and the pool never idles while any spec has
// work. Cache entries for distinct priors are built concurrently before
// sampling starts.
//
// Each spec keeps its own seeding, committed-prefix accounting, early
// stopping and progress callback; spec i's result is bit-identical to
// e.Evaluate(ctx, specs[i]) with the same seed. The first error (including
// context cancellation) aborts the whole batch. An empty batch returns
// (nil, nil).
func (e *Engine) EvaluateBatch(ctx context.Context, specs []Spec) ([]Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	states := make([]*evalState, len(specs))
	for i, spec := range specs {
		st, err := prepare(spec)
		if err != nil {
			return nil, fmt.Errorf("mc: batch spec %d: %w", i, err)
		}
		states[i] = st
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "mc.evaluate_batch")
	defer span.End()
	span.SetAttr("specs", len(specs))
	if err := e.buildEntries(states); err != nil {
		return nil, err
	}
	e.publishCacheStats()

	// Per-spec child spans: each lives in its own goroutine (started before
	// scheduling, ended when the spec's committed prefix is final) so the
	// trace shows one mc.evaluate span per spec under the batch parent.
	var spanWG sync.WaitGroup
	for _, st := range states {
		st := st
		spanWG.Add(1)
		go func() {
			defer spanWG.Done()
			_, sp := obs.StartSpan(ctx, "mc.evaluate")
			defer sp.End()
			sp.SetAttr("shots", st.spec.Shots)
			sp.SetAttr("detectors", st.spec.Circuit.NumDetectors)
			<-st.done
			if st.stopped {
				sp.Event("early-stop")
				sp.SetAttr("earlystop", true)
			}
		}()
	}

	err := e.runStates(ctx, states)
	for _, st := range states {
		st.closeDone() // release span goroutines of unfinished specs on error
	}
	spanWG.Wait()
	if err != nil {
		return nil, err
	}
	e.metrics.batches.Inc()
	results := make([]Result, len(states))
	for i, st := range states {
		results[i] = e.finish(st)
	}
	return results, nil
}

// buildEntries resolves the cache entry of every state, building distinct
// priors concurrently: on a cold sweep over D distinct circuits the DEM
// extractions and graph constructions — the dominant cold-start cost —
// overlap instead of serializing.
func (e *Engine) buildEntries(states []*evalState) error {
	type build struct {
		fp  fingerprint
		st  *evalState // representative state carrying the prior
		ent *cacheEntry
		err error
	}
	var (
		uniq  []*build
		byFP  = make(map[fingerprint]*build)
		index = make([]*build, len(states))
	)
	for i, st := range states {
		fp := fingerprintOf(st.prior)
		b, ok := byFP[fp]
		if !ok {
			b = &build{fp: fp, st: st}
			byFP[fp] = b
			uniq = append(uniq, b)
		}
		index[i] = b
	}
	if len(uniq) == 1 {
		ent, err := e.entryForFP(uniq[0].fp, uniq[0].st.prior)
		if err != nil {
			return err
		}
		uniq[0].ent = ent
	} else {
		var wg sync.WaitGroup
		for _, b := range uniq {
			b := b
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.ent, b.err = e.entryForFP(b.fp, b.st.prior)
			}()
		}
		wg.Wait()
		for _, b := range uniq {
			if b.err != nil {
				return b.err
			}
		}
	}
	for i, st := range states {
		st.ent = index[i].ent
	}
	return nil
}

// runStates is the shared chunk scheduler. One worker pool claims spans of
// consecutive chunks, rotating across states; each completed chunk is
// committed into its state's in-order prefix, where early-stop criteria are
// applied exactly as in a standalone evaluation. A state's done channel
// closes the moment its prefix is final, under the same critical section
// that wrote its totals.
func (e *Engine) runStates(ctx context.Context, states []*evalState) error {
	totalChunks := 0
	workers := 0
	for _, st := range states {
		totalChunks += st.numChunks
		w := st.spec.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > workers {
			workers = w
		}
	}
	if workers > totalChunks {
		workers = totalChunks
	}

	var (
		mu      sync.Mutex
		cursor  int // round-robin position over states
		busy    int
		evalErr error
	)
	// claimLocked picks the next needed span: a run of consecutive chunks
	// from one state, sized to divide that state's remaining chunks evenly
	// over the pool (ceil(remaining/workers), so all workers can still share
	// one large spec). Rotating across states keeps every spec progressing;
	// handing a worker a span rather than a single chunk keeps it on one
	// spec's circuit, graph and decoder long enough for its caches to stay
	// warm instead of interleaving structurally distinct specs every 1024
	// shots — the source of the old batch-warm > sequential-warm regression.
	// Chunks are still committed (and early-stop applied) one at a time, and
	// a worker abandons the rest of its span the moment stopAt drops below
	// it, so early-stopped results are unchanged. Called with mu held.
	claimLocked := func() (*evalState, int, int) {
		for k := 0; k < len(states); k++ {
			st := states[(cursor+k)%len(states)]
			if st.next < st.stopAt {
				lo := st.next
				hi := lo + (st.stopAt-lo+workers-1)/workers
				if hi > st.stopAt {
					hi = st.stopAt
				}
				st.next = hi
				cursor = (cursor + k + 1) % len(states)
				return st, lo, hi
			}
		}
		return nil, 0, 0
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if evalErr != nil {
					mu.Unlock()
					return
				}
				st, i, hi := claimLocked()
				if st == nil {
					mu.Unlock()
					return
				}
				// The occupancy gauge tracks span claims (not individual
				// chunks): one update pair per span keeps the gauge off the
				// per-chunk critical path.
				busy++
				e.metrics.occupancy.Set(float64(busy) / float64(workers))
				mu.Unlock()

				for more := true; more; {
					n := ChunkShots
					if rem := st.spec.Shots - i*ChunkShots; rem < n {
						n = rem
					}
					fails, cerr := e.runChunk(ctx, st.spec.Circuit, st.ent, st.spec.Decoder, n, st.seeds[i])

					mu.Lock()
					if cerr != nil {
						busy--
						e.metrics.occupancy.Set(float64(busy) / float64(workers))
						if evalErr == nil {
							evalErr = cerr
						}
						mu.Unlock()
						return
					}
					st.chunks[i] = chunkState{failures: fails, shots: n, done: true}
					// Advance the committed prefix in chunk order and apply the
					// early-stop criteria at each step: the first prefix that
					// satisfies them is the same no matter which worker finished
					// which chunk — or which other specs share the scheduler —
					// which keeps early-stopped results exactly reproducible for
					// a fixed seed.
					progressed := false
					for st.committed < st.stopAt && st.chunks[st.committed].done {
						st.accShots += st.chunks[st.committed].shots
						st.accFails += st.chunks[st.committed].failures
						st.committed++
						progressed = true
						if st.spec.stopSatisfied(st.accShots, st.accFails) {
							st.stopAt = st.committed
							st.stopped = true
							break
						}
					}
					snapShots, snapFails := st.accShots, st.accFails
					if st.committed >= st.stopAt {
						st.closeDone() // totals are final; written under mu just above
					}
					i++
					more = i < hi && i < st.stopAt && evalErr == nil
					if !more {
						busy--
						e.metrics.occupancy.Set(float64(busy) / float64(workers))
					}
					mu.Unlock()
					if progressed {
						st.report(snapShots, snapFails)
					}
				}
			}
		}()
	}
	wg.Wait()
	if evalErr != nil {
		return evalErr
	}
	// The last committing worker snapshots totals outside mu and can lose
	// the delivery race, so guarantee each callback's final call carries the
	// committed totals (the monotonic guard deduplicates if it already did).
	for _, st := range states {
		st.report(st.accShots, st.accFails)
	}
	return nil
}

// finish records a completed state's totals into the metrics and summarizes
// its result.
func (e *Engine) finish(st *evalState) Result {
	e.metrics.shots.Add(int64(st.accShots))
	e.metrics.failures.Add(int64(st.accFails))
	e.metrics.evaluations.Inc()
	if st.stopped {
		e.metrics.earlyStops.Inc()
	}
	return Result{
		Result:       decoder.Summarize(st.accShots, st.accFails, st.spec.Rounds),
		Requested:    st.spec.Shots,
		EarlyStopped: st.stopped,
	}
}

// stopSatisfied reports whether an adaptive criterion ends the evaluation
// after shots/failures have been committed.
func (s *Spec) stopSatisfied(shots, failures int) bool {
	if s.TargetFailures <= 0 && s.TargetWilsonWidth <= 0 {
		return false
	}
	if shots < s.MinShots {
		return false
	}
	if s.TargetFailures > 0 && failures >= s.TargetFailures {
		return true
	}
	if s.TargetWilsonWidth > 0 {
		lo, hi := rng.WilsonInterval(failures, shots)
		if hi-lo <= s.TargetWilsonWidth {
			return true
		}
	}
	return false
}

// batchScratch is the per-chunk decode scratch: one syndrome list per shot
// of a sampler batch plus the sampled observable masks. Pooled so the
// steady-state chunk loop performs no per-batch allocation.
type batchScratch struct {
	syn    [sim.LaneShots][]int
	actual [sim.LaneShots]uint64
}

var scratchPool = sync.Pool{New: func() interface{} { return new(batchScratch) }}

// runChunk samples and decodes one shot chunk with a pooled frame simulator
// and a pooled decoder, checking ctx between sampler batches. Each chunk's
// wall time lands in the mc.decode.latency histogram (skipped entirely on a
// discarding registry, so the uninstrumented path pays no clock reads).
func (e *Engine) runChunk(ctx context.Context, c *circuit.Circuit, ent *cacheEntry, kind decoder.DecoderKind, shots int, seed *rng.RNG) (int, error) {
	if e.metrics.latency != nil {
		start := e.metrics.registry.Now()
		defer func() {
			e.metrics.latency.Observe(e.metrics.registry.Now().Sub(start).Nanoseconds())
		}()
	}
	dec := ent.getDecoder(kind)
	defer ent.putDecoder(kind, dec)
	fs := ent.getSim(c, seed)
	defer ent.putSim(fs)
	sc := scratchPool.Get().(*batchScratch)
	defer scratchPool.Put(sc)
	obsMask := observableMask(c.NumObs)
	failures := 0
	canceled := false
	fs.SampleWhile(shots, func(b sim.BatchResult) bool {
		if ctx.Err() != nil {
			canceled = true
			return false
		}
		failures += countBatchFailures(dec, b, obsMask, sc)
		return true
	})
	if canceled {
		return 0, ctx.Err()
	}
	return failures, nil
}

// countBatchFailures decodes the shots of one sampler batch and counts
// those whose predicted observable mask misses the sampled one. All
// observables participate — not just observable 0.
//
// The batch is processed one 64-shot lane word at a time. The detector
// lanes of each word are OR-reduced into a fired mask: shots with an empty
// syndrome decode to the decoder's empty-syndrome prediction (0 for every
// decoder in this repository — probed once per batch so stub decoders that
// predict otherwise still score correctly), so their failures are a single
// bits.OnesCount64 popcount of flipped-but-silent shots instead of a
// per-shot decode. Only fired shots get syndromes gathered — set bits
// walked with bits.TrailingZeros64, detector words in ascending index order
// so each shot's syndrome list stays sorted — and decoded, in ascending
// shot order: the same inputs in the same order as decoding every shot
// densely, so results are bit-identical.
func countBatchFailures(dec decoder.Decoder, b sim.BatchResult, obsMask uint64, sc *batchScratch) int {
	// Every real decoder predicts 0 for an empty syndrome without touching
	// its scratch state, making the probe free and the skipped decodes
	// unobservable.
	emptyPred := dec.Decode(nil) & obsMask
	words := b.Words()
	failures := 0
	for w := 0; w < words; w++ {
		base := w * 64
		var fired uint64
		for d := range b.Detectors {
			fired |= b.Detectors[d][w]
		}
		if emptyPred == 0 {
			var flipped uint64
			for o := range b.Observables {
				flipped |= b.Observables[o][w]
			}
			// Empty-syndrome shots fail exactly when any observable flipped.
			// Bits past b.Shots are zero in every lane, so they cannot count.
			failures += bits.OnesCount64(flipped &^ fired)
		} else {
			// Nonzero empty-syndrome prediction: every valid shot must be
			// decoded and compared individually.
			fired = ^uint64(0)
			if rem := b.Shots - base; rem < 64 {
				fired = uint64(1)<<uint(rem) - 1
			}
		}
		if fired == 0 {
			continue
		}
		for m := fired; m != 0; m &= m - 1 {
			s := base + bits.TrailingZeros64(m)
			sc.syn[s] = sc.syn[s][:0]
			sc.actual[s] = 0
		}
		for d := range b.Detectors {
			for word := b.Detectors[d][w]; word != 0; word &= word - 1 {
				s := base + bits.TrailingZeros64(word)
				sc.syn[s] = append(sc.syn[s], d)
			}
		}
		for o := range b.Observables {
			obit := uint64(1) << uint(o)
			for word := b.Observables[o][w] & fired; word != 0; word &= word - 1 {
				sc.actual[base+bits.TrailingZeros64(word)] |= obit
			}
		}
		for m := fired; m != 0; m &= m - 1 {
			s := base + bits.TrailingZeros64(m)
			if dec.Decode(sc.syn[s])&obsMask != sc.actual[s] {
				failures++
			}
		}
	}
	return failures
}
