// Package mc is the Monte-Carlo logical-error-rate engine: the single
// entry point through which every experiment, command, example and the
// public facade in this repository measures LERs.
//
// The engine owns the whole sample→decode pipeline — extract a detector
// error model from the decoder's prior circuit, build the decoding graph,
// fan Monte-Carlo shots over a worker pool, decode each shot, and count
// logical failures — and layers three capabilities on top of the raw loop
// that used to be copy-pasted across internal/decoder:
//
//   - Cancellation. Evaluate takes a context.Context and aborts an
//     in-flight evaluation between 64-shot batches, so long sweeps
//     (Table 2 fits, repro runs, benchmarks) stop promptly on Ctrl-C or
//     deadline.
//   - Caching. DEM extraction and decoding-graph construction are cached
//     behind a content fingerprint of the prior circuit (instructions and
//     noise parameters included), so repeated evaluations of the same
//     circuit — the dominant pattern in internal/exp — pay graph
//     construction once. Decoder instances are pooled per cached graph.
//   - Adaptive early stopping. Besides the fixed-shot mode, an evaluation
//     can stop as soon as a target failure count is reached or the 95%
//     Wilson interval is narrower than a target width, reporting the shots
//     actually spent.
//
// Determinism: shots are sharded into fixed-size chunks, each seeded by
// splitting the caller's RNG in chunk order, and early-stop decisions are
// taken over the in-order prefix of completed chunks. Results are therefore
// bit-identical for a fixed seed regardless of worker count — a stronger
// guarantee than the old per-worker sharding, which tied results to the
// (seed, workers) pair.
package mc

import (
	"caliqec/internal/circuit"
	"caliqec/internal/decoder"
	"caliqec/internal/obs"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"context"
	"fmt"
	"runtime"
	"sync"
)

// chunkShots is the shot-shard size: the unit of work a worker claims, the
// granularity of early-stop decisions and of progress reports. A multiple
// of 64 so every chunk runs whole frame-simulator batches.
const chunkShots = 1024

// Spec describes one Monte-Carlo LER evaluation.
type Spec struct {
	// Circuit is sampled; required.
	Circuit *circuit.Circuit
	// Prior, when non-nil, is a circuit with identical structure whose
	// noise rates reflect what the decoder *believes* (e.g. the last
	// calibration): the DEM and decoding graph are built from it. This
	// models decoding with stale priors after drift — the paper's drifted
	// scenarios run exactly this way. Nil means decode with Circuit's own
	// rates.
	Prior *circuit.Circuit
	// Decoder selects the decoder family (union-find by default).
	Decoder decoder.DecoderKind
	// Shots is the Monte-Carlo budget; required. With early stopping
	// enabled it is the maximum spent.
	Shots int
	// Rounds is the number of QEC rounds the circuit contains, used only
	// to derive the per-round rate; 0 if not applicable.
	Rounds int
	// RNG seeds the evaluation; if nil, rng.New(Seed) is used. The
	// generator is consumed (split once per chunk), so pass a dedicated
	// generator or a fresh split.
	RNG *rng.RNG
	// Seed is used only when RNG is nil.
	Seed uint64
	// Workers sets the pool size; ≤ 0 selects GOMAXPROCS. The result does
	// not depend on it.
	Workers int

	// TargetFailures, when > 0, stops the evaluation once at least this
	// many failures have been counted over the committed chunk prefix.
	TargetFailures int
	// TargetWilsonWidth, when > 0, stops once the 95% Wilson interval on
	// the LER is narrower than this.
	TargetWilsonWidth float64
	// MinShots, when > 0, is a floor below which early stopping does not
	// trigger.
	MinShots int

	// Progress, when non-nil, receives (shots committed, failures so far)
	// as the committed chunk prefix advances. Calls are serialized — never
	// concurrent — and the reported shot count is strictly increasing, but
	// calls may come from different worker goroutines, so the callback must
	// not assume a particular goroutine and must be fast (it runs on the
	// evaluation's critical path). When Evaluate returns without error, the
	// final call is guaranteed to have carried the returned totals.
	Progress func(shots, failures int)
}

// Result is the outcome of one evaluation.
type Result struct {
	decoder.Result
	// Requested is the shot budget asked for; Shots ≤ Requested when the
	// evaluation stopped early.
	Requested int
	// EarlyStopped reports whether a TargetFailures / TargetWilsonWidth
	// criterion ended the evaluation before the budget was spent.
	EarlyStopped bool
}

// Options configures an Engine.
type Options struct {
	// CacheSize bounds the number of cached DEM+graph entries (LRU);
	// ≤ 0 selects the default (64).
	CacheSize int
	// Metrics selects the registry the engine records into; nil selects
	// obs.Default. Pass obs.Discard for an uninstrumented engine (the
	// baseline BenchmarkObsOverhead measures against).
	Metrics *obs.Registry
}

// Engine runs Monte-Carlo LER evaluations with a shared DEM/graph cache.
// The zero value is not usable; construct with New. An Engine is safe for
// concurrent use.
type Engine struct {
	metrics engineMetrics

	mu       sync.Mutex
	cache    map[fingerprint]*cacheEntry
	order    []fingerprint // LRU order, most recent last
	maxEntry int
	hits     uint64
	misses   uint64
}

// engineMetrics holds the engine's metric handles, resolved once at
// construction so the hot path pays atomic adds only. Every handle is nil
// (a no-op) when the engine records into obs.Discard.
type engineMetrics struct {
	registry     *obs.Registry
	shots        *obs.Counter   // mc.shots: Monte-Carlo shots committed
	failures     *obs.Counter   // mc.failures: logical failures counted
	evaluations  *obs.Counter   // mc.evaluations: Evaluate calls completed
	earlyStops   *obs.Counter   // mc.earlystop: evaluations ended by a criterion
	cacheHits    *obs.Gauge     // mc.cache.hits: cumulative DEM/graph cache hits
	cacheMisses  *obs.Gauge     // mc.cache.misses: cumulative cache misses
	cacheEntries *obs.Gauge     // mc.cache.entries: current cache population
	latency      *obs.Histogram // mc.decode.latency: per-chunk wall ns
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	if r == nil {
		r = obs.Default
	}
	return engineMetrics{
		registry:     r,
		shots:        r.Counter("mc.shots"),
		failures:     r.Counter("mc.failures"),
		evaluations:  r.Counter("mc.evaluations"),
		earlyStops:   r.Counter("mc.earlystop"),
		cacheHits:    r.Gauge("mc.cache.hits"),
		cacheMisses:  r.Gauge("mc.cache.misses"),
		cacheEntries: r.Gauge("mc.cache.entries"),
		latency:      r.Histogram("mc.decode.latency"),
	}
}

// New returns an Engine with the given options.
func New(opt Options) *Engine {
	if opt.CacheSize <= 0 {
		opt.CacheSize = 64
	}
	return &Engine{
		metrics:  newEngineMetrics(opt.Metrics),
		cache:    make(map[fingerprint]*cacheEntry),
		maxEntry: opt.CacheSize,
	}
}

// Default is the process-wide shared engine: package-level Evaluate uses
// it, so independent call sites (experiments, facade, CLI) share one
// DEM/graph cache.
var Default = New(Options{})

// Evaluate runs spec on the Default engine.
func Evaluate(ctx context.Context, spec Spec) (Result, error) {
	return Default.Evaluate(ctx, spec)
}

// CacheStats reports cache hits, misses and current entries.
func (e *Engine) CacheStats() (hits, misses uint64, entries int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses, len(e.cache)
}

// Evaluate samples spec.Shots Monte-Carlo trajectories of spec.Circuit,
// decodes each with a pooled decoder over the (cached) decoding graph of
// the prior circuit, and returns the logical error rate. All observables
// are compared: a shot fails when the predicted observable mask differs
// from the sampled one in any bit.
func (e *Engine) Evaluate(ctx context.Context, spec Spec) (Result, error) {
	if spec.Circuit == nil {
		return Result{}, fmt.Errorf("mc: nil circuit")
	}
	if spec.Shots <= 0 {
		return Result{}, fmt.Errorf("mc: shots must be positive, got %d", spec.Shots)
	}
	if spec.Circuit.NumObs > 64 {
		return Result{}, fmt.Errorf("mc: %d observables exceed the 64-bit mask limit", spec.Circuit.NumObs)
	}
	prior := spec.Prior
	if prior == nil {
		prior = spec.Circuit
	}
	if spec.Circuit.NumDetectors != prior.NumDetectors || spec.Circuit.NumObs != prior.NumObs {
		return Result{}, fmt.Errorf("mc: prior circuit structure mismatch (%d/%d detectors, %d/%d observables)",
			prior.NumDetectors, spec.Circuit.NumDetectors, prior.NumObs, spec.Circuit.NumObs)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ctx, span := obs.StartSpan(ctx, "mc.evaluate")
	defer span.End()
	span.SetAttr("shots", spec.Shots)
	span.SetAttr("detectors", spec.Circuit.NumDetectors)
	ent, err := e.entryFor(prior)
	if err != nil {
		return Result{}, err
	}
	hits, misses, entries := e.CacheStats()
	e.metrics.cacheHits.Set(float64(hits))
	e.metrics.cacheMisses.Set(float64(misses))
	e.metrics.cacheEntries.Set(float64(entries))

	base := spec.RNG
	if base == nil {
		base = rng.New(spec.Seed)
	}
	numChunks := (spec.Shots + chunkShots - 1) / chunkShots
	// Chunk seeds are drawn up front, in chunk order, so the shot stream
	// assigned to chunk i depends only on the base generator — not on
	// scheduling or worker count.
	seeds := make([]*rng.RNG, numChunks)
	for i := range seeds {
		seeds[i] = base.Split()
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numChunks {
		workers = numChunks
	}

	type chunkState struct {
		failures int
		shots    int
		done     bool
	}
	var (
		mu        sync.Mutex
		chunks    = make([]chunkState, numChunks)
		next      = 0         // next chunk index to claim
		committed = 0         // chunks [0, committed) are aggregated
		stopAt    = numChunks // chunks ≥ stopAt are not needed
		accShots  = 0
		accFails  = 0
		stopped   = false // an early-stop criterion fired
		evalErr   error
	)

	// report serializes Progress callbacks. Workers snapshot the committed
	// totals outside mu and may race to deliver them, so the monotonic
	// guard drops a stale snapshot that lost the race — the callback sees
	// strictly increasing shot counts, never interleaved or reordered.
	var (
		progressMu    sync.Mutex
		reportedShots = -1
	)
	report := func(shots, failures int) {
		if spec.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		if shots <= reportedShots {
			return
		}
		reportedShots = shots
		spec.Progress(shots, failures)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if evalErr != nil || next >= stopAt {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				n := chunkShots
				if rem := spec.Shots - i*chunkShots; rem < n {
					n = rem
				}
				fails, cerr := e.runChunk(ctx, spec.Circuit, ent, spec.Decoder, n, seeds[i])

				mu.Lock()
				if cerr != nil {
					if evalErr == nil {
						evalErr = cerr
					}
					mu.Unlock()
					return
				}
				chunks[i] = chunkState{failures: fails, shots: n, done: true}
				// Advance the committed prefix in chunk order and apply the
				// early-stop criteria at each step: the first prefix that
				// satisfies them is the same no matter which worker finished
				// which chunk, which keeps early-stopped results exactly
				// reproducible for a fixed seed.
				progressed := false
				for committed < stopAt && chunks[committed].done {
					accShots += chunks[committed].shots
					accFails += chunks[committed].failures
					committed++
					progressed = true
					if spec.stopSatisfied(accShots, accFails) {
						stopAt = committed
						stopped = true
						break
					}
				}
				snapShots, snapFails := accShots, accFails
				mu.Unlock()
				if progressed {
					report(snapShots, snapFails)
				}
			}
		}()
	}
	wg.Wait()
	if evalErr != nil {
		return Result{}, evalErr
	}
	// The last committing worker snapshots totals outside mu and can lose
	// the delivery race, so guarantee the callback's final call carries the
	// committed totals Evaluate returns (the monotonic guard deduplicates
	// if it already did).
	report(accShots, accFails)
	e.metrics.shots.Add(int64(accShots))
	e.metrics.failures.Add(int64(accFails))
	e.metrics.evaluations.Inc()
	if stopped {
		e.metrics.earlyStops.Inc()
		span.Event("early-stop")
		span.SetAttr("earlystop", true)
	}
	return Result{
		Result:       decoder.Summarize(accShots, accFails, spec.Rounds),
		Requested:    spec.Shots,
		EarlyStopped: stopped,
	}, nil
}

// stopSatisfied reports whether an adaptive criterion ends the evaluation
// after shots/failures have been committed.
func (s *Spec) stopSatisfied(shots, failures int) bool {
	if s.TargetFailures <= 0 && s.TargetWilsonWidth <= 0 {
		return false
	}
	if shots < s.MinShots {
		return false
	}
	if s.TargetFailures > 0 && failures >= s.TargetFailures {
		return true
	}
	if s.TargetWilsonWidth > 0 {
		lo, hi := rng.WilsonInterval(failures, shots)
		if hi-lo <= s.TargetWilsonWidth {
			return true
		}
	}
	return false
}

// runChunk samples and decodes one shot chunk with its own frame simulator
// and a pooled decoder, checking ctx between 64-shot batches. Each chunk's
// wall time lands in the mc.decode.latency histogram (skipped entirely on a
// discarding registry, so the uninstrumented path pays no clock reads).
func (e *Engine) runChunk(ctx context.Context, c *circuit.Circuit, ent *cacheEntry, kind decoder.DecoderKind, shots int, seed *rng.RNG) (int, error) {
	if e.metrics.latency != nil {
		start := e.metrics.registry.Now()
		defer func() {
			e.metrics.latency.Observe(e.metrics.registry.Now().Sub(start).Nanoseconds())
		}()
	}
	dec := ent.getDecoder(kind)
	defer ent.putDecoder(kind, dec)
	fs := sim.NewFrameSimulator(c, seed)
	obsMask := uint64(1)<<uint(c.NumObs) - 1
	if c.NumObs >= 64 {
		obsMask = ^uint64(0)
	}
	syndrome := make([]int, 0, 64)
	failures := 0
	canceled := false
	fs.SampleWhile(shots, func(b sim.BatchResult) bool {
		if ctx.Err() != nil {
			canceled = true
			return false
		}
		failures += countBatchFailures(dec, b, obsMask, &syndrome)
		return true
	})
	if canceled {
		return 0, ctx.Err()
	}
	return failures, nil
}

// countBatchFailures decodes every shot of one 64-shot batch and counts
// those whose predicted observable mask misses the sampled one. All
// observables participate — not just observable 0.
func countBatchFailures(dec decoder.Decoder, b sim.BatchResult, obsMask uint64, syndrome *[]int) int {
	failures := 0
	for s := 0; s < b.Shots; s++ {
		bit := uint64(1) << uint(s)
		syn := (*syndrome)[:0]
		for d, w := range b.Detectors {
			if w&bit != 0 {
				syn = append(syn, d)
			}
		}
		*syndrome = syn
		pred := dec.Decode(syn) & obsMask
		var actual uint64
		for o, w := range b.Observables {
			if w&bit != 0 {
				actual |= uint64(1) << uint(o)
			}
		}
		if pred != actual {
			failures++
		}
	}
	return failures
}
