package mc

import (
	"caliqec/internal/circuit"
	"caliqec/internal/decoder"
	"caliqec/internal/sim"
	"context"
	"fmt"
)

// FrameDecoder is the engine's per-frame decode hot path, exported for
// consumers that bring their own detector frames instead of sampling them
// in-process — internal/stream's replay/live-decode pipeline feeds recorded
// or network-delivered syndromes through it. It wraps the same cached
// decoding graph and pooled decoder instances Evaluate uses, so a frame
// decoded here follows bit-for-bit the path a simulated shot takes inside
// runChunk.
//
// A FrameDecoder is safe for concurrent use: every DecodeFrame call checks
// a decoder instance out of the cache entry's pool and returns it before
// reporting.
type FrameDecoder struct {
	ent     *cacheEntry
	kind    decoder.DecoderKind
	obsMask uint64
	numDet  int
	numObs  int
	fp      [16]byte
}

// FrameDecoder returns a per-frame decoder over the (cached) decoding graph
// of prior — the same cache entry an Evaluate with this prior would use, so
// a live stream and an in-process evaluation of the same circuit share one
// graph and one decoder pool.
func (e *Engine) FrameDecoder(prior *circuit.Circuit, kind decoder.DecoderKind) (*FrameDecoder, error) {
	if prior == nil {
		return nil, fmt.Errorf("mc: nil circuit")
	}
	if prior.NumObs > 64 {
		return nil, fmt.Errorf("mc: %d observables exceed the 64-bit mask limit", prior.NumObs)
	}
	ent, err := e.entryFor(prior)
	if err != nil {
		return nil, err
	}
	e.publishCacheStats()
	return &FrameDecoder{
		ent:     ent,
		kind:    kind,
		obsMask: observableMask(prior.NumObs),
		numDet:  prior.NumDetectors,
		numObs:  prior.NumObs,
		fp:      fingerprintOf(prior),
	}, nil
}

// NumDetectors returns the detector count of the decoder's circuit.
func (fd *FrameDecoder) NumDetectors() int { return fd.numDet }

// NumObs returns the observable count of the decoder's circuit.
func (fd *FrameDecoder) NumObs() int { return fd.numObs }

// CircuitFingerprint returns the content fingerprint of the prior circuit
// the decoding graph was built from. Stream consumers match it against a
// trace header before decoding.
func (fd *FrameDecoder) CircuitFingerprint() [16]byte { return fd.fp }

// DetectorQubits returns a copy of the graph's detector→qubit attribution
// (nil when the circuit carries none). Stream health monitoring uses it to
// map a drifting detector back to the hardware qubit behind it.
func (fd *FrameDecoder) DetectorQubits() []int {
	return append([]int(nil), fd.ent.graph.NodeQubit...)
}

// DetectorRounds returns a copy of the graph's detector→round layering (nil
// when the circuit carries no round structure).
func (fd *FrameDecoder) DetectorRounds() []int {
	return append([]int(nil), fd.ent.graph.NodeRound...)
}

// DecodeFrame decodes one frame: syndrome is the sorted list of fired
// detectors, and the return value is the predicted observable flip mask
// (masked to the circuit's observables), exactly as the evaluation loop
// computes it.
func (fd *FrameDecoder) DecodeFrame(syndrome []int) uint64 {
	dec := fd.ent.getDecoder(fd.kind)
	pred := dec.Decode(syndrome) & fd.obsMask
	fd.ent.putDecoder(fd.kind, dec)
	return pred
}

// ScoreFrame decodes one frame and reports whether it is a logical failure:
// the predicted observable mask differs from the sampled (actual) one in
// any bit. This is the exact failure criterion of Evaluate, so summing
// ScoreFrame over a recorded shot stream reproduces the evaluation's
// failure count bit-identically.
func (fd *FrameDecoder) ScoreFrame(syndrome []int, actual uint64) bool {
	return fd.DecodeFrame(syndrome) != actual&fd.obsMask
}

// observableMask is the mask selecting numObs low observable bits (all 64
// at the limit). Shared by the chunk loop and FrameDecoder so both score
// against the identical mask.
func observableMask(numObs int) uint64 {
	if numObs >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(numObs) - 1
}

// SampleChunks samples spec's Monte-Carlo shot stream exactly as Evaluate
// would draw it — sharded into ChunkShots-sized chunks, each seeded by
// splitting the spec's generator in chunk order — but sequentially on the
// caller's goroutine, invoking visit once per sampler batch of detector and
// observable flip lanes. The randomness consumed is bit-identical to an
// Evaluate of the same spec regardless of that evaluation's worker count,
// which is what makes a trace recorded from these batches a correctness
// oracle: replaying it must reproduce Evaluate's failure count exactly.
//
// Early-stop criteria in spec are ignored (a recording captures the full
// budget). The BatchResult passed to visit aliases simulator scratch and is
// only valid during the call. A non-nil error from visit aborts sampling
// and is returned; cancellation is checked between batches.
func SampleChunks(ctx context.Context, spec Spec, visit func(sim.BatchResult) error) error {
	st, err := prepare(spec)
	if err != nil {
		return err
	}
	var fs *sim.FrameSimulator
	for i := 0; i < st.numChunks; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := ChunkShots
		if rem := spec.Shots - i*ChunkShots; rem < n {
			n = rem
		}
		if fs == nil {
			fs = sim.NewFrameSimulator(spec.Circuit, st.seeds[i])
		} else {
			fs.Reset(st.seeds[i])
		}
		var verr error
		fs.SampleWhile(n, func(b sim.BatchResult) bool {
			if cerr := ctx.Err(); cerr != nil {
				verr = cerr
				return false
			}
			if berr := visit(b); berr != nil {
				verr = berr
				return false
			}
			return true
		})
		if verr != nil {
			return verr
		}
	}
	return nil
}
