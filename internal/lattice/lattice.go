// Package lattice defines the physical qubit layouts CaliQEC targets: the
// square (rotated surface code) lattice used by Rigetti-style devices and
// the heavy-hexagon lattice used by IBM-style devices.
//
// A Lattice is pure geometry: qubits with roles and coordinates, the
// hardware coupling graph, and the stabilizer plaquettes with their
// measurement resources (a single syndrome qubit on the square lattice, a
// seven-ancilla "S"-shaped bridge on the heavy hexagon). Code semantics
// (stabilizer operators, circuits, logicals) live in internal/code, and the
// deformation instruction sets in internal/deform consume the roles and
// adjacency defined here.
//
// Patches may be rectangular (Rows×Cols data qubits, both odd): dynamic
// code enlargement (PatchQ_AD) grows one dimension by two data rows or
// columns, which preserves the boundary stabilizer pattern.
package lattice

import "fmt"

// Kind identifies the lattice family.
type Kind uint8

// Lattice kinds.
const (
	Square Kind = iota
	HeavyHex
)

func (k Kind) String() string {
	if k == Square {
		return "square"
	}
	return "heavy-hex"
}

// Basis is the stabilizer type of a plaquette.
type Basis uint8

// Stabilizer bases.
const (
	BasisX Basis = iota
	BasisZ
)

func (b Basis) String() string {
	if b == BasisX {
		return "X"
	}
	return "Z"
}

// Opposite returns the other basis.
func (b Basis) Opposite() Basis {
	if b == BasisX {
		return BasisZ
	}
	return BasisX
}

// Role classifies a physical qubit.
type Role uint8

// Qubit roles. The bridge roles follow the paper's §6.1 taxonomy for the
// heavy hexagon: degree-3 ancillas attach to exactly one data qubit, while
// degree-2 ancillas only link other ancillas. "Vertical" degree-2 ancillas
// (qb/qf in the paper's Fig. 8) sit inside an edge segment shared by two
// plaquettes; the "horizontal" degree-2 ancilla (qd) is a plaquette-private
// middle link.
const (
	RoleData Role = iota
	RoleSyndrome
	RoleBridgeDeg3    // heavy-hex: attaches one data qubit (qa,qc,qe,qg)
	RoleBridgeDeg2Ver // heavy-hex: shared segment middle (qb,qf)
	RoleBridgeDeg2Hor // heavy-hex: plaquette-private middle (qd)
)

func (r Role) String() string {
	switch r {
	case RoleData:
		return "data"
	case RoleSyndrome:
		return "syndrome"
	case RoleBridgeDeg3:
		return "deg3"
	case RoleBridgeDeg2Ver:
		return "deg2v"
	case RoleBridgeDeg2Hor:
		return "deg2h"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Qubit is one physical qubit.
type Qubit struct {
	ID   int
	Role Role
	// Row/Col are on a refined grid so every qubit (including bridge
	// ancillas) has distinct integer coordinates: data qubit (r,c) of the
	// code sits at (4r, 4c).
	Row, Col int
}

// Corner indices into Plaquette.Corners.
const (
	NW = iota
	NE
	SW
	SE
)

// Plaquette is one stabilizer of the code with its measurement resources.
type Plaquette struct {
	ID    int
	Basis Basis
	// Cell coordinates in the (Rows+1)×(Cols+1) plaquette grid.
	CellRow, CellCol int
	// Corners holds the data qubit at each geometric corner (NW, NE, SW,
	// SE), or -1 where the corner falls outside the patch.
	Corners [4]int
	// Data lists the present data qubit IDs (the non-negative Corners).
	Data []int
	// Syndrome is the qubit whose measurement yields the stabilizer value:
	// the single ancilla on the square lattice, the readout end of the
	// bridge on the heavy hexagon.
	Syndrome int
	// Bridge is the full ordered ancilla path for heavy-hex plaquettes
	// (qa qb qc [qd qe qf qg]); nil on the square lattice. Weight-2
	// boundary plaquettes carry only their single three-ancilla segment.
	Bridge []int
	// DataAttach maps each degree-3 bridge ancilla to its data qubit
	// (heavy-hex only).
	DataAttach map[int]int
}

// Weight returns the stabilizer weight (number of data qubits).
func (p *Plaquette) Weight() int { return len(p.Data) }

// Lattice is a full device layout for one code patch.
type Lattice struct {
	Kind Kind
	// Rows and Cols are the data-grid dimensions (both odd). The vertical
	// logical operator has length Rows, the horizontal one length Cols, so
	// the code distance of the pristine patch is min(Rows, Cols).
	Rows, Cols int
	Qubits     []Qubit
	Plaquettes []Plaquette
	// DataID maps code-grid coordinates (r, c) to the data qubit ID.
	DataID map[[2]int]int
	adj    map[int][]int
}

// D returns the pristine code distance, min(Rows, Cols).
func (l *Lattice) D() int {
	if l.Rows < l.Cols {
		return l.Rows
	}
	return l.Cols
}

// NumQubits returns the total physical qubit count.
func (l *Lattice) NumQubits() int { return len(l.Qubits) }

// NumData returns the data qubit count (Rows·Cols).
func (l *Lattice) NumData() int { return len(l.DataID) }

// Neighbors returns the coupling-graph neighbours of qubit q.
func (l *Lattice) Neighbors(q int) []int { return l.adj[q] }

// Qubit returns the qubit record for id.
func (l *Lattice) Qubit(id int) Qubit { return l.Qubits[id] }

// PlaquettesWithData returns the plaquettes of the given basis whose
// support contains data qubit q.
func (l *Lattice) PlaquettesWithData(q int, basis Basis) []int {
	var out []int
	for i := range l.Plaquettes {
		p := &l.Plaquettes[i]
		if p.Basis != basis {
			continue
		}
		for _, dq := range p.Data {
			if dq == q {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

func (l *Lattice) addQubit(role Role, row, col int) int {
	id := len(l.Qubits)
	l.Qubits = append(l.Qubits, Qubit{ID: id, Role: role, Row: row, Col: col})
	return id
}

func (l *Lattice) addEdge(a, b int) {
	l.adj[a] = append(l.adj[a], b)
	l.adj[b] = append(l.adj[b], a)
}

// cellBasis returns the checkerboard basis of plaquette cell (i, j):
// X on even i+j, Z on odd.
func cellBasis(i, j int) Basis {
	if (i+j)%2 == 0 {
		return BasisX
	}
	return BasisZ
}

// cellIncluded reports whether plaquette cell (i,j) exists in a rows×cols
// rotated surface code: all interior cells, X cells on the north/south
// boundary rows, Z cells on the west/east boundary columns, no corners.
func cellIncluded(rows, cols, i, j int) bool {
	interiorR := i >= 1 && i <= rows-1
	interiorC := j >= 1 && j <= cols-1
	switch {
	case interiorR && interiorC:
		return true
	case (i == 0 || i == rows) && interiorC:
		return cellBasis(i, j) == BasisX
	case (j == 0 || j == cols) && interiorR:
		return cellBasis(i, j) == BasisZ
	}
	return false
}

// cellCorners returns the four data coordinates of cell (i,j) in NW, NE,
// SW, SE order; out-of-range corners are (-1,-1).
func cellCorners(rows, cols, i, j int) [4][2]int {
	var out [4][2]int
	for k, rc := range [4][2]int{{i - 1, j - 1}, {i - 1, j}, {i, j - 1}, {i, j}} {
		if rc[0] >= 0 && rc[0] < rows && rc[1] >= 0 && rc[1] < cols {
			out[k] = rc
		} else {
			out[k] = [2]int{-1, -1}
		}
	}
	return out
}

func validateDims(rows, cols int) {
	if rows < 3 || rows%2 == 0 || cols < 3 || cols%2 == 0 {
		panic(fmt.Sprintf("lattice: dimensions must be odd integers ≥ 3, got %d×%d", rows, cols)) //lint:allow panicpolicy constructor misuse: dimensions are fixed at call sites
	}
}

// NewSquare builds the distance-d rotated-surface-code layout on a square
// lattice.
func NewSquare(d int) *Lattice { return NewSquareRect(d, d) }

// NewSquareRect builds a rows×cols rotated-surface-code layout on a square
// lattice: rows·cols data qubits plus one syndrome qubit per plaquette.
func NewSquareRect(rows, cols int) *Lattice {
	validateDims(rows, cols)
	l := &Lattice{Kind: Square, Rows: rows, Cols: cols, DataID: map[[2]int]int{}, adj: map[int][]int{}}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			l.DataID[[2]int{r, c}] = l.addQubit(RoleData, 4*r, 4*c)
		}
	}
	for i := 0; i <= rows; i++ {
		for j := 0; j <= cols; j++ {
			if !cellIncluded(rows, cols, i, j) {
				continue
			}
			syn := l.addQubit(RoleSyndrome, 4*i-2, 4*j-2)
			p := Plaquette{
				ID:      len(l.Plaquettes),
				Basis:   cellBasis(i, j),
				CellRow: i, CellCol: j,
				Syndrome: syn,
			}
			for k, rc := range cellCorners(rows, cols, i, j) {
				if rc[0] < 0 {
					p.Corners[k] = -1
					continue
				}
				dq := l.DataID[rc]
				p.Corners[k] = dq
				p.Data = append(p.Data, dq)
				l.addEdge(syn, dq)
			}
			l.Plaquettes = append(l.Plaquettes, p)
		}
	}
	return l
}

// NewHeavyHex builds the distance-d heavy-hexagon layout.
func NewHeavyHex(d int) *Lattice { return NewHeavyHexRect(d, d) }

// NewHeavyHexRect builds a rows×cols heavy-hexagon layout. Stabilizer
// plaquettes are the same rotated-surface-code cells as on the square
// lattice, but each is measured through an "S"-shaped ancilla bridge:
//
//	q1 — qa — qb — qc — q2        (segment of the plaquette's north edge)
//	                |
//	                qd            (plaquette-private middle)
//	                |
//	q3 — qe — qf — qg — q4        (segment of the plaquette's south edge)
//
// Horizontal-edge segments are shared between the plaquette above and the
// plaquette below the edge, reproducing the paper's shared-ancilla
// structure (§6.1): degree-3 ancillas attach one data qubit each, degree-2
// ancillas bridge ancillas only. West/east weight-2 Z plaquettes span a
// vertical data pair and use a private vertical segment.
func NewHeavyHexRect(rows, cols int) *Lattice {
	validateDims(rows, cols)
	l := &Lattice{Kind: HeavyHex, Rows: rows, Cols: cols, DataID: map[[2]int]int{}, adj: map[int][]int{}}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			l.DataID[[2]int{r, c}] = l.addQubit(RoleData, 4*r, 4*c)
		}
	}
	// seg holds the shared three-ancilla segment of each horizontal data
	// edge, keyed by (row, leftCol): [A, B, C] with A attached to the left
	// data qubit and C to the right.
	type segment struct{ a, b, c int }
	segs := map[[2]int]segment{}
	segFor := func(r, c int) segment {
		key := [2]int{r, c}
		if s, ok := segs[key]; ok {
			return s
		}
		dl := l.DataID[[2]int{r, c}]
		dr := l.DataID[[2]int{r, c + 1}]
		a := l.addQubit(RoleBridgeDeg3, 4*r, 4*c+1)
		b := l.addQubit(RoleBridgeDeg2Ver, 4*r, 4*c+2)
		cc := l.addQubit(RoleBridgeDeg3, 4*r, 4*c+3)
		l.addEdge(dl, a)
		l.addEdge(a, b)
		l.addEdge(b, cc)
		l.addEdge(cc, dr)
		s := segment{a, b, cc}
		segs[key] = s
		return s
	}
	for i := 0; i <= rows; i++ {
		for j := 0; j <= cols; j++ {
			if !cellIncluded(rows, cols, i, j) {
				continue
			}
			p := Plaquette{
				ID:      len(l.Plaquettes),
				Basis:   cellBasis(i, j),
				CellRow: i, CellCol: j,
				DataAttach: map[int]int{},
			}
			corners := cellCorners(rows, cols, i, j)
			for k, rc := range corners {
				if rc[0] < 0 {
					p.Corners[k] = -1
					continue
				}
				p.Corners[k] = l.DataID[rc]
				p.Data = append(p.Data, l.DataID[rc])
			}
			hasNorth := i >= 1 && j >= 1 && j <= cols-1
			hasSouth := i <= rows-1 && j >= 1 && j <= cols-1
			switch {
			case j == 0 || j == cols:
				// West/east boundary Z plaquette: vertical data pair
				// (i-1, c), (i, c) joined by a private vertical segment.
				c := 0
				if j == cols {
					c = cols - 1
				}
				dt := l.DataID[[2]int{i - 1, c}]
				db := l.DataID[[2]int{i, c}]
				col := -2
				if j == cols {
					col = 4*(cols-1) + 2
				}
				a := l.addQubit(RoleBridgeDeg3, 4*i-3, col)
				b := l.addQubit(RoleBridgeDeg2Ver, 4*i-2, col)
				cc := l.addQubit(RoleBridgeDeg3, 4*i-1, col)
				l.addEdge(dt, a)
				l.addEdge(a, b)
				l.addEdge(b, cc)
				l.addEdge(cc, db)
				p.Bridge = []int{a, b, cc}
				p.Syndrome = cc
				p.DataAttach[a] = dt
				p.DataAttach[cc] = db
			case hasNorth && hasSouth:
				// Full weight-4 plaquette: north segment + middle + south.
				n := segFor(i-1, j-1)
				s := segFor(i, j-1)
				mid := l.addQubit(RoleBridgeDeg2Hor, 4*i-2, 4*j-2)
				l.addEdge(n.c, mid)
				l.addEdge(mid, s.a)
				p.Bridge = []int{n.a, n.b, n.c, mid, s.a, s.b, s.c}
				p.Syndrome = s.c
				p.DataAttach[n.a] = l.DataID[[2]int{i - 1, j - 1}]
				p.DataAttach[n.c] = l.DataID[[2]int{i - 1, j}]
				p.DataAttach[s.a] = l.DataID[[2]int{i, j - 1}]
				p.DataAttach[s.c] = l.DataID[[2]int{i, j}]
			case hasNorth:
				// South-boundary weight-2 X plaquette: only the north edge.
				n := segFor(i-1, j-1)
				p.Bridge = []int{n.a, n.b, n.c}
				p.Syndrome = n.c
				p.DataAttach[n.a] = l.DataID[[2]int{i - 1, j - 1}]
				p.DataAttach[n.c] = l.DataID[[2]int{i - 1, j}]
			case hasSouth:
				// North-boundary weight-2 X plaquette: only the south edge.
				s := segFor(i, j-1)
				p.Bridge = []int{s.a, s.b, s.c}
				p.Syndrome = s.c
				p.DataAttach[s.a] = l.DataID[[2]int{i, j - 1}]
				p.DataAttach[s.c] = l.DataID[[2]int{i, j}]
			}
			l.Plaquettes = append(l.Plaquettes, p)
		}
	}
	return l
}
