package lattice

import "testing"

func TestSquareCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		l := NewSquare(d)
		if l.NumData() != d*d {
			t.Errorf("d=%d: %d data qubits, want %d", d, l.NumData(), d*d)
		}
		if len(l.Plaquettes) != d*d-1 {
			t.Errorf("d=%d: %d plaquettes, want %d", d, len(l.Plaquettes), d*d-1)
		}
		if l.NumQubits() != d*d+(d*d-1) {
			t.Errorf("d=%d: %d qubits total", d, l.NumQubits())
		}
		nx, nz := 0, 0
		for _, p := range l.Plaquettes {
			if p.Basis == BasisX {
				nx++
			} else {
				nz++
			}
			if w := p.Weight(); w != 2 && w != 4 {
				t.Errorf("d=%d: plaquette weight %d", d, w)
			}
		}
		if nx != nz {
			t.Errorf("d=%d: %d X vs %d Z plaquettes", d, nx, nz)
		}
	}
}

func TestSquareStabilizerOverlaps(t *testing.T) {
	// Any two plaquettes of opposite basis must share an even number of
	// data qubits (0 or 2): the CSS commutation condition in geometry form.
	l := NewSquare(5)
	for i := range l.Plaquettes {
		for j := i + 1; j < len(l.Plaquettes); j++ {
			a, b := &l.Plaquettes[i], &l.Plaquettes[j]
			if a.Basis == b.Basis {
				continue
			}
			shared := 0
			for _, qa := range a.Data {
				for _, qb := range b.Data {
					if qa == qb {
						shared++
					}
				}
			}
			if shared%2 != 0 {
				t.Errorf("plaquettes %d,%d share %d qubits", i, j, shared)
			}
		}
	}
}

func TestHeavyHexRoles(t *testing.T) {
	l := NewHeavyHex(5)
	// Every degree-3 bridge ancilla attaches exactly one data qubit and
	// has ≤ 3 coupling neighbours; degree-2 ancillas have exactly 2.
	for _, q := range l.Qubits {
		n := len(l.Neighbors(q.ID))
		switch q.Role {
		case RoleBridgeDeg3:
			if n < 2 || n > 3 {
				t.Errorf("deg-3 ancilla %d has %d neighbours", q.ID, n)
			}
			dataN := 0
			for _, nb := range l.Neighbors(q.ID) {
				if l.Qubit(nb).Role == RoleData {
					dataN++
				}
			}
			if dataN != 1 {
				t.Errorf("deg-3 ancilla %d touches %d data qubits, want 1", q.ID, dataN)
			}
		case RoleBridgeDeg2Ver, RoleBridgeDeg2Hor:
			if n != 2 {
				t.Errorf("deg-2 ancilla %d (%v) has %d neighbours", q.ID, q.Role, n)
			}
			for _, nb := range l.Neighbors(q.ID) {
				if l.Qubit(nb).Role == RoleData {
					t.Errorf("deg-2 ancilla %d couples directly to data", q.ID)
				}
			}
		case RoleData:
			// Data qubits couple only to degree-3 ancillas on heavy hex.
			for _, nb := range l.Neighbors(q.ID) {
				if l.Qubit(nb).Role != RoleBridgeDeg3 {
					t.Errorf("data %d couples to %v", q.ID, l.Qubit(nb).Role)
				}
			}
		}
	}
}

func TestHeavyHexSharedSegments(t *testing.T) {
	// Interior full bridges are 7 ancillas; vertically adjacent plaquettes
	// share their 3-ancilla edge segment.
	l := NewHeavyHex(5)
	countShared := 0
	for i := range l.Plaquettes {
		for j := i + 1; j < len(l.Plaquettes); j++ {
			a, b := &l.Plaquettes[i], &l.Plaquettes[j]
			shared := 0
			for _, qa := range a.Bridge {
				for _, qb := range b.Bridge {
					if qa == qb {
						shared++
					}
				}
			}
			if shared > 0 {
				if shared != 3 {
					t.Errorf("plaquettes %d,%d share %d bridge ancillas, want 3 (one segment)", i, j, shared)
				}
				if a.Basis == b.Basis {
					t.Errorf("same-basis plaquettes %d,%d share a segment", i, j)
				}
				countShared++
			}
		}
	}
	if countShared == 0 {
		t.Error("no shared segments found")
	}
}

func TestRectangular(t *testing.T) {
	l := NewSquareRect(5, 9)
	if l.Rows != 5 || l.Cols != 9 || l.D() != 5 {
		t.Errorf("rect dims wrong: %d×%d D=%d", l.Rows, l.Cols, l.D())
	}
	if l.NumData() != 45 {
		t.Errorf("%d data qubits", l.NumData())
	}
	if len(l.Plaquettes) != 5*9-1 {
		t.Errorf("%d plaquettes, want 44", len(l.Plaquettes))
	}
}

func TestInvalidDims(t *testing.T) {
	for _, bad := range [][2]int{{2, 3}, {3, 4}, {1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v should panic", bad)
				}
			}()
			NewSquareRect(bad[0], bad[1])
		}()
	}
}

func TestPlaquettesWithData(t *testing.T) {
	l := NewSquare(5)
	// An interior data qubit belongs to exactly 2 X and 2 Z plaquettes.
	q := l.DataID[[2]int{2, 2}]
	if n := len(l.PlaquettesWithData(q, BasisX)); n != 2 {
		t.Errorf("interior qubit in %d X plaquettes", n)
	}
	if n := len(l.PlaquettesWithData(q, BasisZ)); n != 2 {
		t.Errorf("interior qubit in %d Z plaquettes", n)
	}
	// Corner qubits are in 1+1 or 1+0.
	c := l.DataID[[2]int{0, 0}]
	total := len(l.PlaquettesWithData(c, BasisX)) + len(l.PlaquettesWithData(c, BasisZ))
	if total != 2 {
		t.Errorf("corner qubit in %d plaquettes, want 2", total)
	}
}

func TestCoordinatesUnique(t *testing.T) {
	for _, l := range []*Lattice{NewSquare(5), NewHeavyHex(5)} {
		seen := map[[2]int]int{}
		for _, q := range l.Qubits {
			key := [2]int{q.Row, q.Col}
			if prev, ok := seen[key]; ok {
				t.Errorf("%v: qubits %d and %d share coordinate %v", l.Kind, prev, q.ID, key)
			}
			seen[key] = q.ID
		}
	}
}
