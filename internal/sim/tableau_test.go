package sim

import (
	"caliqec/internal/rng"
	"testing"
)

func TestTableauBasics(t *testing.T) {
	r := rng.New(1)
	tb := NewTableau(1)
	if tb.MeasureZ(0, r) {
		t.Fatal("|0> measured as 1")
	}
	tb.X(0)
	if !tb.MeasureZ(0, r) {
		t.Fatal("X|0> measured as 0")
	}
	// |+> gives random but repeatable outcomes.
	tb2 := NewTableau(1)
	tb2.H(0)
	m1 := tb2.MeasureZ(0, r)
	m2 := tb2.MeasureZ(0, r)
	if m1 != m2 {
		t.Fatal("repeated Z measurement disagreed")
	}
}

func TestTableauBell(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		r := rng.New(seed)
		tb := NewTableau(2)
		tb.H(0)
		tb.CX(0, 1)
		a := tb.MeasureZ(0, r)
		b := tb.MeasureZ(1, r)
		if a != b {
			t.Fatalf("seed %d: Bell pair outcomes disagree", seed)
		}
	}
}

// TestTableauRepeatedXStabilizer measures X0X1 repeatedly through an
// ancilla: the first outcome is random but subsequent ones must repeat it.
func TestTableauRepeatedXStabilizer(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		r := rng.New(seed)
		tb := NewTableau(3)
		var first bool
		for round := 0; round < 4; round++ {
			tb.ResetZ(2, r)
			tb.H(2)
			tb.CX(2, 0)
			tb.CX(2, 1)
			tb.H(2)
			m := tb.MeasureZ(2, r)
			if round == 0 {
				first = m
			} else if m != first {
				t.Fatalf("seed %d round %d: X0X1 flipped without noise", seed, round)
			}
		}
	}
}

// TestTableauFunnelZ measures Z0Z1 through a two-ancilla funnel chain with
// uncompute; on |00> the outcome is deterministic 0 every round.
func TestTableauFunnelZ(t *testing.T) {
	r := rng.New(5)
	tb := NewTableau(4)
	for round := 0; round < 4; round++ {
		tb.ResetZ(2, r)
		tb.ResetZ(3, r)
		tb.CX(0, 2)
		tb.CX(2, 3)
		tb.CX(1, 3)
		tb.CX(0, 2) // uncompute partial
		if tb.MeasureZ(3, r) {
			t.Fatalf("round %d: Z0Z1 on |00> measured 1", round)
		}
	}
}

// TestTableauAlternatingStabilizers interleaves X0X1 and Z0Z1-style
// measurements (they anticommute individually on overlapping supports when
// using gauge pieces); here use commuting X0X1 and Z0Z1 on a Bell-like
// state: both must be simultaneously repeatable.
func TestTableauAlternatingStabilizers(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.New(seed + 100)
		tb := NewTableau(4) // q0,q1 data; q2,q3 ancillas
		var fx, fz bool
		for round := 0; round < 4; round++ {
			tb.ResetZ(2, r)
			tb.H(2)
			tb.CX(2, 0)
			tb.CX(2, 1)
			tb.H(2)
			mx := tb.MeasureZ(2, r)
			tb.ResetZ(3, r)
			tb.CX(0, 3)
			tb.CX(1, 3)
			mz := tb.MeasureZ(3, r)
			if round == 0 {
				fx, fz = mx, mz
			} else if mx != fx || mz != fz {
				t.Fatalf("seed %d round %d: stabilizers drifted (X %v->%v, Z %v->%v)",
					seed, round, fx, mx, fz, mz)
			}
		}
	}
}
