// Package sim implements Monte-Carlo sampling of stabilizer circuits.
//
// The workhorse is a batched Pauli-frame simulator: instead of tracking
// quantum state, it tracks — for each of many shots in parallel — the Pauli
// difference ("frame") between the noisy execution and the noiseless
// reference execution. For circuits whose measurements are all determined
// by stabilizer propagation (true of every syndrome-extraction circuit this
// repository generates), the frame fully determines which measurement
// outcomes flip relative to the noiseless run, hence all detector and
// observable values. This is the same strategy Stim uses for its sampling
// fast path.
//
// Shots are packed 64 per machine word so one pass over the circuit
// advances 64 Monte-Carlo trajectories.
package sim

import (
	"caliqec/internal/circuit"
	"caliqec/internal/rng"
	"math"
)

// FrameSimulator samples detector and observable flip bits for batches of
// shots of a fixed circuit.
type FrameSimulator struct {
	c   *circuit.Circuit
	rng *rng.RNG

	nWords int // words per 64-shot batch row (always 1; kept for clarity)

	// Per-qubit frame bits for the current 64-shot batch.
	xf []uint64 // X component of the frame (flips Z-basis measurements)
	zf []uint64 // Z component of the frame (flips X-basis measurements)

	// Measurement-record flip bits for the current batch.
	recs []uint64
}

// NewFrameSimulator returns a simulator for c drawing randomness from r.
func NewFrameSimulator(c *circuit.Circuit, r *rng.RNG) *FrameSimulator {
	return &FrameSimulator{
		c: c, rng: r, nWords: 1,
		xf:   make([]uint64, c.NumQubits),
		zf:   make([]uint64, c.NumQubits),
		recs: make([]uint64, c.NumMeas),
	}
}

// BatchResult holds detector and observable flips for one 64-shot batch,
// one word per detector/observable with bit i belonging to shot i.
type BatchResult struct {
	Detectors   []uint64
	Observables []uint64
	Shots       int // number of valid low bits (≤ 64)
}

// bernoulliMask returns a 64-bit word whose bits are independently 1 with
// probability p. For small p it uses geometric skipping (draw the gap to the
// next success) which costs O(p·64) random draws instead of 64.
func bernoulliMask(r *rng.RNG, p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	var mask uint64
	if p < 0.1 {
		// Geometric skipping: positions of successes in a Bernoulli stream.
		logq := math.Log1p(-p)
		i := 0
		for {
			u := r.Float64()
			// Gap ~ floor(log(1-u)/log(1-p)); u in [0,1) keeps log finite.
			gap := int(math.Log1p(-u) / logq)
			i += gap
			if i >= 64 {
				return mask
			}
			mask |= 1 << uint(i)
			i++
		}
	}
	for i := 0; i < 64; i++ {
		if r.Float64() < p {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// runBatch executes one 64-shot pass, filling det/obs flip words.
func (fs *FrameSimulator) runBatch(det, obs []uint64) {
	for i := range fs.xf {
		fs.xf[i] = 0
		fs.zf[i] = 0
	}
	for i := range fs.recs {
		fs.recs[i] = 0
	}
	for i := range det {
		det[i] = 0
	}
	for i := range obs {
		obs[i] = 0
	}
	meas := 0
	for _, in := range fs.c.Instructions {
		switch in.Op {
		case circuit.OpH:
			for _, q := range in.Targets {
				fs.xf[q], fs.zf[q] = fs.zf[q], fs.xf[q]
			}
		case circuit.OpS:
			// S maps X -> Y: an X frame gains a Z component.
			for _, q := range in.Targets {
				fs.zf[q] ^= fs.xf[q]
			}
		case circuit.OpCX:
			for i := 0; i < len(in.Targets); i += 2 {
				c, t := in.Targets[i], in.Targets[i+1]
				fs.xf[t] ^= fs.xf[c] // X on control propagates to target
				fs.zf[c] ^= fs.zf[t] // Z on target propagates to control
			}
		case circuit.OpCZ:
			for i := 0; i < len(in.Targets); i += 2 {
				a, b := in.Targets[i], in.Targets[i+1]
				fs.zf[a] ^= fs.xf[b]
				fs.zf[b] ^= fs.xf[a]
			}
		case circuit.OpSwap:
			for i := 0; i < len(in.Targets); i += 2 {
				a, b := in.Targets[i], in.Targets[i+1]
				fs.xf[a], fs.xf[b] = fs.xf[b], fs.xf[a]
				fs.zf[a], fs.zf[b] = fs.zf[b], fs.zf[a]
			}
		case circuit.OpReset:
			// Reset discards the frame; a noisy reset leaves an X error
			// (wrong computational-basis state) with probability Arg.
			for _, q := range in.Targets {
				fs.xf[q] = bernoulliMask(fs.rng, in.Arg)
				fs.zf[q] = 0
			}
		case circuit.OpResetX:
			for _, q := range in.Targets {
				fs.zf[q] = bernoulliMask(fs.rng, in.Arg)
				fs.xf[q] = 0
			}
		case circuit.OpM:
			// An X or Y frame flips a Z-basis outcome; readout error adds an
			// independent classical flip. The post-measurement Z frame is a
			// stabilizer of the collapsed state, so it is cleared.
			for _, q := range in.Targets {
				fs.recs[meas] = fs.xf[q] ^ bernoulliMask(fs.rng, in.Arg)
				fs.zf[q] = 0
				meas++
			}
		case circuit.OpMX:
			for _, q := range in.Targets {
				fs.recs[meas] = fs.zf[q] ^ bernoulliMask(fs.rng, in.Arg)
				fs.xf[q] = 0
				meas++
			}
		case circuit.OpXError:
			for _, q := range in.Targets {
				fs.xf[q] ^= bernoulliMask(fs.rng, in.Arg)
			}
		case circuit.OpZError:
			for _, q := range in.Targets {
				fs.zf[q] ^= bernoulliMask(fs.rng, in.Arg)
			}
		case circuit.OpYError:
			for _, q := range in.Targets {
				m := bernoulliMask(fs.rng, in.Arg)
				fs.xf[q] ^= m
				fs.zf[q] ^= m
			}
		case circuit.OpDepolarize1:
			for _, q := range in.Targets {
				m := bernoulliMask(fs.rng, in.Arg)
				if m == 0 {
					continue
				}
				// For each erring shot choose X, Y or Z uniformly.
				for w := m; w != 0; w &= w - 1 {
					bit := w & -w
					switch fs.rng.Intn(3) {
					case 0:
						fs.xf[q] ^= bit
					case 1:
						fs.xf[q] ^= bit
						fs.zf[q] ^= bit
					case 2:
						fs.zf[q] ^= bit
					}
				}
			}
		case circuit.OpDepolarize2:
			for i := 0; i < len(in.Targets); i += 2 {
				a, b := in.Targets[i], in.Targets[i+1]
				m := bernoulliMask(fs.rng, in.Arg)
				if m == 0 {
					continue
				}
				for w := m; w != 0; w &= w - 1 {
					bit := w & -w
					// Choose one of the 15 non-identity two-qubit Paulis.
					k := fs.rng.Intn(15) + 1 // 1..15, 2 bits per qubit
					pa, pb := k&3, k>>2
					if pa&2 != 0 {
						fs.xf[a] ^= bit
					}
					if pa&1 != 0 {
						fs.zf[a] ^= bit
					}
					if pb&2 != 0 {
						fs.xf[b] ^= bit
					}
					if pb&1 != 0 {
						fs.zf[b] ^= bit
					}
				}
			}
		case circuit.OpDetector:
			var v uint64
			for _, rIdx := range in.Recs {
				v ^= fs.recs[rIdx]
			}
			det[in.Index] = v
		case circuit.OpObservable:
			var v uint64
			for _, rIdx := range in.Recs {
				v ^= fs.recs[rIdx]
			}
			obs[in.Index] ^= v
		case circuit.OpTick:
			// no state effect
		}
	}
}

// Sample runs shots Monte-Carlo trajectories and invokes visit once per
// 64-shot batch with the detector and observable flip words. The final
// batch may contain fewer than 64 valid shots (BatchResult.Shots).
func (fs *FrameSimulator) Sample(shots int, visit func(BatchResult)) {
	fs.SampleWhile(shots, func(b BatchResult) bool {
		visit(b)
		return true
	})
}

// SampleWhile is Sample with early exit: sampling stops as soon as visit
// returns false, leaving the remaining batches undrawn. This is what lets
// internal/mc abort an in-flight evaluation between batches on context
// cancellation without consuming randomness for work it will discard.
func (fs *FrameSimulator) SampleWhile(shots int, visit func(BatchResult) bool) {
	det := make([]uint64, fs.c.NumDetectors)
	obs := make([]uint64, fs.c.NumObs)
	for done := 0; done < shots; done += 64 {
		n := shots - done
		if n > 64 {
			n = 64
		}
		fs.runBatch(det, obs)
		if n < 64 {
			lowMask := uint64(1)<<uint(n) - 1
			for i := range det {
				det[i] &= lowMask
			}
			for i := range obs {
				obs[i] &= lowMask
			}
		}
		if !visit(BatchResult{Detectors: det, Observables: obs, Shots: n}) {
			return
		}
	}
}

// CountObservableFlips samples shots trajectories with no decoding and
// returns, per observable, the number of shots whose raw observable flipped.
// This measures the *undecoded* physical failure rate and is mostly useful
// for tests; real experiments decode first (see internal/mc.Engine).
func (fs *FrameSimulator) CountObservableFlips(shots int) []int {
	counts := make([]int, fs.c.NumObs)
	fs.Sample(shots, func(b BatchResult) {
		for i, w := range b.Observables {
			counts[i] += popcount(w)
		}
	})
	return counts
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}
