// Package sim implements Monte-Carlo sampling of stabilizer circuits.
//
// The workhorse is a batched Pauli-frame simulator: instead of tracking
// quantum state, it tracks — for each of many shots in parallel — the Pauli
// difference ("frame") between the noisy execution and the noiseless
// reference execution. For circuits whose measurements are all determined
// by stabilizer propagation (true of every syndrome-extraction circuit this
// repository generates), the frame fully determines which measurement
// outcomes flip relative to the noiseless run, hence all detector and
// observable values. This is the same strategy Stim uses for its sampling
// fast path.
//
// Shots are packed 64 per machine word and LaneWords words per Lane, so one
// pass over the circuit advances LaneShots (256) Monte-Carlo trajectories.
// The circuit is compiled once, at construction, into two flat closure
// lists: a draw program that consumes randomness one 64-shot word at a time
// (run word-major, so the RNG stream is bit-identical to the old 64-wide
// simulator's batch-sequential order), and an apply program whose steps
// each advance a whole lane. Ticks and zero-probability noise compile to
// nothing, per-instruction constants (measurement offsets, log(1-p)) are
// resolved at compile time, and per-instruction dispatch overhead
// amortizes over 4× more shots than the single-word version.
package sim

import (
	"caliqec/internal/circuit"
	"caliqec/internal/rng"
	"math"
	"math/bits"
)

// Shot-lane geometry. Within a batch, shot s lives at bit s%64 of word
// s/64 — the same mapping chunks use, so consumers walk set bits with
// bits.TrailingZeros64 per word exactly as they did when batches were one
// word wide.
const (
	// LaneWords is the number of 64-shot words advanced per pass.
	LaneWords = 4
	// LaneShots is the number of shots per batch (bits per Lane).
	LaneShots = 64 * LaneWords
)

// Lane holds one bit per shot of a batch for a single detector, observable,
// or frame component.
type Lane [LaneWords]uint64

// FrameSimulator samples detector and observable flip bits for batches of
// shots of a fixed circuit. It is not safe for concurrent use; internal/mc
// pools one instance per worker. Reset rebinds a simulator to a new
// randomness stream so pooled instances can be reused across chunks without
// reallocating frame or scratch storage.
type FrameSimulator struct {
	c   *circuit.Circuit
	rng *rng.RNG

	// draws is the compiled noise program: one entry per randomness-consuming
	// instruction, in circuit order. Each call draws the instruction's masks
	// for a single 64-shot word w into the noise buffer. runBatch runs the
	// draw program once per active word (word-major), reproducing exactly the
	// randomness order of a 64-shot-per-pass simulator running the batch's
	// words as consecutive batches.
	draws []drawStep

	// prog is the compiled apply program: one step per state-affecting
	// instruction, in circuit order, each advancing a full lane. Ticks and
	// zero-probability pure-noise instructions compile to nothing (they
	// neither touch frames nor consume randomness), so skipping them
	// preserves the RNG stream bit-for-bit.
	prog []step

	// noise holds the masks drawn for the current batch, one Lane per
	// compile-time-assigned slot. Words ≥ the batch's active word count keep
	// stale bits; they only feed shot columns that are masked away.
	noise []Lane

	// Per-qubit frame bits for the current batch.
	xf []Lane // X component of the frame (flips Z-basis measurements)
	zf []Lane // Z component of the frame (flips X-basis measurements)

	// Measurement-record flip bits for the current batch.
	recs []Lane

	// Detector/observable lanes for the current batch, reused across
	// batches and across Sample calls (previously allocated per call).
	det []Lane
	obs []Lane
}

// step advances one compiled instruction on the current batch's lanes.
type step func(fs *FrameSimulator)

// drawStep draws one instruction's noise masks for 64-shot word w.
type drawStep func(fs *FrameSimulator, w int)

// NewFrameSimulator returns a simulator for c drawing randomness from r.
func NewFrameSimulator(c *circuit.Circuit, r *rng.RNG) *FrameSimulator {
	fs := &FrameSimulator{
		c: c, rng: r,
		xf:   make([]Lane, c.NumQubits),
		zf:   make([]Lane, c.NumQubits),
		recs: make([]Lane, c.NumMeas),
		det:  make([]Lane, c.NumDetectors),
		obs:  make([]Lane, c.NumObs),
	}
	var slots int
	fs.draws, fs.prog, slots = compile(c)
	fs.noise = make([]Lane, slots)
	return fs
}

// Circuit returns the circuit this simulator was compiled for. Pool
// implementations use it to match a free simulator to a request.
func (fs *FrameSimulator) Circuit() *circuit.Circuit { return fs.c }

// Reset rebinds the simulator to a new randomness stream. The compiled
// program and all scratch storage are retained; the next Sample call draws
// from r exactly as a freshly constructed simulator would.
func (fs *FrameSimulator) Reset(r *rng.RNG) { fs.rng = r }

// BatchResult holds detector and observable flips for one batch of up to
// LaneShots shots: one Lane per detector/observable, with shot s at bit
// s%64 of word s/64. Words at or beyond Words() are zero.
type BatchResult struct {
	Detectors   []Lane
	Observables []Lane
	Shots       int // number of valid shots (≤ LaneShots)
}

// Words returns the number of lane words carrying valid shots: the final
// partial batch of a run may fill fewer than LaneWords words, and consumers
// iterating words should stop there.
func (b BatchResult) Words() int { return (b.Shots + 63) / 64 }

// geomThreshold is the error probability below which bernoulli draws use
// geometric skipping (O(p·64) draws per word instead of 64).
const geomThreshold = 0.1

// noiseLogq precomputes log(1-p) for the geometric-skipping fast path, or 0
// when p is outside the fast-path range. Hoisting it to compile time removes
// a math.Log1p from every noisy instruction of every batch.
func noiseLogq(p float64) float64 {
	if p > 0 && p < geomThreshold {
		return math.Log1p(-p)
	}
	return 0
}

// bernoulliMask returns a 64-bit word whose bits are independently 1 with
// probability p. For small p it uses geometric skipping (draw the gap to the
// next success) which costs O(p·64) random draws instead of 64.
func bernoulliMask(r *rng.RNG, p float64) uint64 {
	return bernoulliMaskLogq(r, p, noiseLogq(p))
}

// bernoulliMaskLogq is bernoulliMask with log(1-p) precomputed (as returned
// by noiseLogq). The randomness consumed is identical to bernoulliMask for
// the same p.
func bernoulliMaskLogq(r *rng.RNG, p, logq float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	var mask uint64
	if p < geomThreshold {
		// Geometric skipping: positions of successes in a Bernoulli stream.
		i := 0
		for {
			u := r.Float64()
			// Gap ~ floor(log(1-u)/log(1-p)); u in [0,1) keeps log finite.
			gap := int(math.Log1p(-u) / logq)
			i += gap
			if i >= 64 {
				return mask
			}
			mask |= 1 << uint(i)
			i++
		}
	}
	for i := 0; i < 64; i++ {
		if r.Float64() < p {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// compile lowers c's instruction list into a draw program and an apply
// program. Each apply step captures its targets and — for measurements —
// the absolute measurement-record base index; each draw step captures its
// probability argument, precomputed log(1-p), and the noise-buffer slot
// range it fills. slots is the total noise-buffer size in Lanes.
//
// RNG-stream compatibility: for one 64-shot word the draw program consumes
// randomness in exactly the order and quantity the single-word simulator's
// fused steps did. The only instructions elided are ticks and pure-noise
// channels with Arg ≤ 0, neither of which consumes randomness, and noiseless
// resets/measurements compile to draw-free apply steps (an Arg ≤ 0 bernoulli
// draw consumed nothing either), so compiled wide and narrow execution are
// bit-identical for the same seed.
func compile(c *circuit.Circuit) (draws []drawStep, prog []step, slots int) {
	prog = make([]step, 0, len(c.Instructions))
	meas := 0
	for _, in := range c.Instructions {
		targets := in.Targets
		arg := in.Arg
		logq := noiseLogq(arg)
		index := in.Index
		recsIdx := in.Recs
		switch in.Op {
		case circuit.OpH:
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					fs.xf[q], fs.zf[q] = fs.zf[q], fs.xf[q]
				}
			})
		case circuit.OpS:
			// S maps X -> Y: an X frame gains a Z component.
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					x, z := &fs.xf[q], &fs.zf[q]
					for w := 0; w < LaneWords; w++ {
						z[w] ^= x[w]
					}
				}
			})
		case circuit.OpCX:
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					c, t := targets[i], targets[i+1]
					xc, xt := &fs.xf[c], &fs.xf[t]
					zc, zt := &fs.zf[c], &fs.zf[t]
					for w := 0; w < LaneWords; w++ {
						xt[w] ^= xc[w] // X on control propagates to target
						zc[w] ^= zt[w] // Z on target propagates to control
					}
				}
			})
		case circuit.OpCZ:
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					a, b := targets[i], targets[i+1]
					xa, xb := &fs.xf[a], &fs.xf[b]
					za, zb := &fs.zf[a], &fs.zf[b]
					for w := 0; w < LaneWords; w++ {
						za[w] ^= xb[w]
						zb[w] ^= xa[w]
					}
				}
			})
		case circuit.OpSwap:
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					a, b := targets[i], targets[i+1]
					fs.xf[a], fs.xf[b] = fs.xf[b], fs.xf[a]
					fs.zf[a], fs.zf[b] = fs.zf[b], fs.zf[a]
				}
			})
		case circuit.OpReset:
			// Reset discards the frame; a noisy reset leaves an X error
			// (wrong computational-basis state) with probability Arg.
			if arg <= 0 {
				prog = append(prog, func(fs *FrameSimulator) {
					for _, q := range targets {
						fs.xf[q] = Lane{}
						fs.zf[q] = Lane{}
					}
				})
				continue
			}
			base := slots
			slots += len(targets)
			draws = append(draws, maskDraw(base, len(targets), arg, logq))
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					fs.xf[q] = fs.noise[base+j]
					fs.zf[q] = Lane{}
				}
			})
		case circuit.OpResetX:
			if arg <= 0 {
				prog = append(prog, func(fs *FrameSimulator) {
					for _, q := range targets {
						fs.xf[q] = Lane{}
						fs.zf[q] = Lane{}
					}
				})
				continue
			}
			base := slots
			slots += len(targets)
			draws = append(draws, maskDraw(base, len(targets), arg, logq))
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					fs.zf[q] = fs.noise[base+j]
					fs.xf[q] = Lane{}
				}
			})
		case circuit.OpM:
			// An X or Y frame flips a Z-basis outcome; readout error adds an
			// independent classical flip. The post-measurement Z frame is a
			// stabilizer of the collapsed state, so it is cleared.
			base := meas
			meas += len(targets)
			if arg <= 0 {
				prog = append(prog, func(fs *FrameSimulator) {
					for j, q := range targets {
						fs.recs[base+j] = fs.xf[q]
						fs.zf[q] = Lane{}
					}
				})
				continue
			}
			nbase := slots
			slots += len(targets)
			draws = append(draws, maskDraw(nbase, len(targets), arg, logq))
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					r, x, m := &fs.recs[base+j], &fs.xf[q], &fs.noise[nbase+j]
					for w := 0; w < LaneWords; w++ {
						r[w] = x[w] ^ m[w]
					}
					fs.zf[q] = Lane{}
				}
			})
		case circuit.OpMX:
			base := meas
			meas += len(targets)
			if arg <= 0 {
				prog = append(prog, func(fs *FrameSimulator) {
					for j, q := range targets {
						fs.recs[base+j] = fs.zf[q]
						fs.xf[q] = Lane{}
					}
				})
				continue
			}
			nbase := slots
			slots += len(targets)
			draws = append(draws, maskDraw(nbase, len(targets), arg, logq))
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					r, z, m := &fs.recs[base+j], &fs.zf[q], &fs.noise[nbase+j]
					for w := 0; w < LaneWords; w++ {
						r[w] = z[w] ^ m[w]
					}
					fs.xf[q] = Lane{}
				}
			})
		case circuit.OpXError:
			if arg <= 0 {
				continue // draws nothing and flips nothing
			}
			base := slots
			slots += len(targets)
			draws = append(draws, maskDraw(base, len(targets), arg, logq))
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					x, m := &fs.xf[q], &fs.noise[base+j]
					for w := 0; w < LaneWords; w++ {
						x[w] ^= m[w]
					}
				}
			})
		case circuit.OpZError:
			if arg <= 0 {
				continue
			}
			base := slots
			slots += len(targets)
			draws = append(draws, maskDraw(base, len(targets), arg, logq))
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					z, m := &fs.zf[q], &fs.noise[base+j]
					for w := 0; w < LaneWords; w++ {
						z[w] ^= m[w]
					}
				}
			})
		case circuit.OpYError:
			if arg <= 0 {
				continue
			}
			base := slots
			slots += len(targets)
			draws = append(draws, maskDraw(base, len(targets), arg, logq))
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					x, z, m := &fs.xf[q], &fs.zf[q], &fs.noise[base+j]
					for w := 0; w < LaneWords; w++ {
						x[w] ^= m[w]
						z[w] ^= m[w]
					}
				}
			})
		case circuit.OpDepolarize1:
			if arg <= 0 {
				continue
			}
			base := slots
			slots += 2 * len(targets) // X mask + Z mask per target
			draws = append(draws, func(fs *FrameSimulator, w int) {
				for j := range targets {
					m := bernoulliMaskLogq(fs.rng, arg, logq)
					// For each erring shot choose X, Y or Z uniformly.
					var xm, zm uint64
					for v := m; v != 0; v &= v - 1 {
						bit := v & -v
						switch fs.rng.Intn(3) {
						case 0:
							xm ^= bit
						case 1:
							xm ^= bit
							zm ^= bit
						case 2:
							zm ^= bit
						}
					}
					fs.noise[base+2*j][w] = xm
					fs.noise[base+2*j+1][w] = zm
				}
			})
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					x, z := &fs.xf[q], &fs.zf[q]
					xm, zm := &fs.noise[base+2*j], &fs.noise[base+2*j+1]
					for w := 0; w < LaneWords; w++ {
						x[w] ^= xm[w]
						z[w] ^= zm[w]
					}
				}
			})
		case circuit.OpDepolarize2:
			if arg <= 0 {
				continue
			}
			base := slots
			slots += 2 * len(targets) // X+Z masks for both qubits per pair
			draws = append(draws, func(fs *FrameSimulator, w int) {
				for i := 0; i < len(targets); i += 2 {
					m := bernoulliMaskLogq(fs.rng, arg, logq)
					var xa, za, xb, zb uint64
					for v := m; v != 0; v &= v - 1 {
						bit := v & -v
						// Choose one of the 15 non-identity two-qubit Paulis.
						k := fs.rng.Intn(15) + 1 // 1..15, 2 bits per qubit
						pa, pb := k&3, k>>2
						if pa&2 != 0 {
							xa ^= bit
						}
						if pa&1 != 0 {
							za ^= bit
						}
						if pb&2 != 0 {
							xb ^= bit
						}
						if pb&1 != 0 {
							zb ^= bit
						}
					}
					s := base + 2*i
					fs.noise[s][w] = xa
					fs.noise[s+1][w] = za
					fs.noise[s+2][w] = xb
					fs.noise[s+3][w] = zb
				}
			})
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					a, b := targets[i], targets[i+1]
					s := base + 2*i
					xa, za := &fs.xf[a], &fs.zf[a]
					xb, zb := &fs.xf[b], &fs.zf[b]
					ma, mb := &fs.noise[s], &fs.noise[s+1]
					mc, md := &fs.noise[s+2], &fs.noise[s+3]
					for w := 0; w < LaneWords; w++ {
						xa[w] ^= ma[w]
						za[w] ^= mb[w]
						xb[w] ^= mc[w]
						zb[w] ^= md[w]
					}
				}
			})
		case circuit.OpDetector:
			prog = append(prog, func(fs *FrameSimulator) {
				var v Lane
				for _, rIdx := range recsIdx {
					r := &fs.recs[rIdx]
					for w := 0; w < LaneWords; w++ {
						v[w] ^= r[w]
					}
				}
				fs.det[index] = v
			})
		case circuit.OpObservable:
			prog = append(prog, func(fs *FrameSimulator) {
				var v Lane
				for _, rIdx := range recsIdx {
					r := &fs.recs[rIdx]
					for w := 0; w < LaneWords; w++ {
						v[w] ^= r[w]
					}
				}
				o := &fs.obs[index]
				for w := 0; w < LaneWords; w++ {
					o[w] ^= v[w]
				}
			})
		case circuit.OpTick:
			// no state effect, no randomness: compiles to nothing
		}
	}
	return draws, prog, slots
}

// maskDraw returns a draw step filling n consecutive noise slots starting at
// base with plain bernoulli masks — the shared shape of every noise channel
// that needs no per-bit Pauli choice.
func maskDraw(base, n int, arg, logq float64) drawStep {
	return func(fs *FrameSimulator, w int) {
		for j := 0; j < n; j++ {
			fs.noise[base+j][w] = bernoulliMaskLogq(fs.rng, arg, logq)
		}
	}
}

// runBatch executes one pass with the given number of active 64-shot words,
// filling fs.det/fs.obs flip lanes. The draw program runs word-major (all
// instructions for word 0, then word 1, …) so randomness is consumed in the
// same order as running each word as its own 64-shot batch; the apply
// program then advances all LaneWords words per step. Lane words ≥ words
// compute on stale noise bits and hold garbage until the caller masks them.
func (fs *FrameSimulator) runBatch(words int) {
	clear(fs.xf)
	clear(fs.zf)
	clear(fs.recs)
	clear(fs.det)
	clear(fs.obs)
	for w := 0; w < words; w++ {
		for _, d := range fs.draws {
			d(fs, w)
		}
	}
	for _, st := range fs.prog {
		st(fs)
	}
}

// Sample runs shots Monte-Carlo trajectories and invokes visit once per
// batch with the detector and observable flip lanes. The final batch may
// contain fewer than LaneShots valid shots (BatchResult.Shots).
func (fs *FrameSimulator) Sample(shots int, visit func(BatchResult)) {
	fs.SampleWhile(shots, func(b BatchResult) bool {
		visit(b)
		return true
	})
}

// SampleWhile is Sample with early exit: sampling stops as soon as visit
// returns false, leaving the remaining batches undrawn. This is what lets
// internal/mc abort an in-flight evaluation between batches on context
// cancellation without consuming randomness for work it will discard.
//
// A partial final batch draws randomness for exactly ceil(n/64) words — the
// same amount the single-word simulator drew for the same shot count — and
// its detector/observable lanes are masked so bits of shots ≥ n are zero.
//
// The BatchResult lanes alias the simulator's internal scratch: they are
// valid only until the next batch (or the next Sample call) and must not be
// retained by visit.
func (fs *FrameSimulator) SampleWhile(shots int, visit func(BatchResult) bool) {
	for done := 0; done < shots; done += LaneShots {
		n := shots - done
		if n > LaneShots {
			n = LaneShots
		}
		words := (n + 63) / 64
		fs.runBatch(words)
		if n < LaneShots {
			maskTail(fs.det, n)
			maskTail(fs.obs, n)
		}
		if !visit(BatchResult{Detectors: fs.det, Observables: fs.obs, Shots: n}) {
			return
		}
	}
}

// maskTail zeroes the bits of shots ≥ n in every lane: the high bits of the
// last active word plus all words after it. n must be in (0, LaneShots).
func maskTail(lanes []Lane, n int) {
	last := (n - 1) / 64
	low := ^uint64(0)
	if r := uint(n & 63); r != 0 {
		low = uint64(1)<<r - 1
	}
	for i := range lanes {
		l := &lanes[i]
		l[last] &= low
		for w := last + 1; w < LaneWords; w++ {
			l[w] = 0
		}
	}
}

// CountObservableFlips samples shots trajectories with no decoding and
// returns, per observable, the number of shots whose raw observable flipped.
// This measures the *undecoded* physical failure rate and is mostly useful
// for tests; real experiments decode first (see internal/mc.Engine).
func (fs *FrameSimulator) CountObservableFlips(shots int) []int {
	counts := make([]int, fs.c.NumObs)
	fs.Sample(shots, func(b BatchResult) {
		for i := range b.Observables {
			l := &b.Observables[i]
			for w := 0; w < LaneWords; w++ {
				counts[i] += bits.OnesCount64(l[w])
			}
		}
	})
	return counts
}
