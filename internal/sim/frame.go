// Package sim implements Monte-Carlo sampling of stabilizer circuits.
//
// The workhorse is a batched Pauli-frame simulator: instead of tracking
// quantum state, it tracks — for each of many shots in parallel — the Pauli
// difference ("frame") between the noisy execution and the noiseless
// reference execution. For circuits whose measurements are all determined
// by stabilizer propagation (true of every syndrome-extraction circuit this
// repository generates), the frame fully determines which measurement
// outcomes flip relative to the noiseless run, hence all detector and
// observable values. This is the same strategy Stim uses for its sampling
// fast path.
//
// Shots are packed 64 per machine word so one pass over the circuit
// advances 64 Monte-Carlo trajectories. The circuit is compiled once, at
// construction, into a flat list of closures (one per instruction, with
// opcode dispatch, measurement offsets and the geometric-skipping log
// already resolved), so the per-batch loop is a straight walk with no
// re-switching on Op and no per-batch float math beyond the draws
// themselves.
package sim

import (
	"caliqec/internal/circuit"
	"caliqec/internal/rng"
	"math"
	"math/bits"
)

// FrameSimulator samples detector and observable flip bits for batches of
// shots of a fixed circuit. It is not safe for concurrent use; internal/mc
// pools one instance per worker. Reset rebinds a simulator to a new
// randomness stream so pooled instances can be reused across chunks without
// reallocating frame or scratch storage.
type FrameSimulator struct {
	c   *circuit.Circuit
	rng *rng.RNG

	// prog is the compiled instruction stream: one step per state-affecting
	// instruction, in circuit order. Ticks and zero-probability pure-noise
	// instructions compile to nothing (they neither touch frames nor consume
	// randomness), so skipping them preserves the RNG stream bit-for-bit.
	prog []step

	// Per-qubit frame bits for the current 64-shot batch.
	xf []uint64 // X component of the frame (flips Z-basis measurements)
	zf []uint64 // Z component of the frame (flips X-basis measurements)

	// Measurement-record flip bits for the current batch.
	recs []uint64

	// Detector/observable words for the current batch, reused across
	// batches and across Sample calls (previously allocated per call).
	det []uint64
	obs []uint64
}

// step advances one compiled instruction on the current 64-shot batch.
type step func(fs *FrameSimulator)

// NewFrameSimulator returns a simulator for c drawing randomness from r.
func NewFrameSimulator(c *circuit.Circuit, r *rng.RNG) *FrameSimulator {
	fs := &FrameSimulator{
		c: c, rng: r,
		xf:   make([]uint64, c.NumQubits),
		zf:   make([]uint64, c.NumQubits),
		recs: make([]uint64, c.NumMeas),
		det:  make([]uint64, c.NumDetectors),
		obs:  make([]uint64, c.NumObs),
	}
	fs.prog = compile(c)
	return fs
}

// Circuit returns the circuit this simulator was compiled for. Pool
// implementations use it to match a free simulator to a request.
func (fs *FrameSimulator) Circuit() *circuit.Circuit { return fs.c }

// Reset rebinds the simulator to a new randomness stream. The compiled
// program and all scratch storage are retained; the next Sample call draws
// from r exactly as a freshly constructed simulator would.
func (fs *FrameSimulator) Reset(r *rng.RNG) { fs.rng = r }

// BatchResult holds detector and observable flips for one 64-shot batch,
// one word per detector/observable with bit i belonging to shot i.
type BatchResult struct {
	Detectors   []uint64
	Observables []uint64
	Shots       int // number of valid low bits (≤ 64)
}

// geomThreshold is the error probability below which bernoulli draws use
// geometric skipping (O(p·64) draws per word instead of 64).
const geomThreshold = 0.1

// noiseLogq precomputes log(1-p) for the geometric-skipping fast path, or 0
// when p is outside the fast-path range. Hoisting it to compile time removes
// a math.Log1p from every noisy instruction of every batch.
func noiseLogq(p float64) float64 {
	if p > 0 && p < geomThreshold {
		return math.Log1p(-p)
	}
	return 0
}

// bernoulliMask returns a 64-bit word whose bits are independently 1 with
// probability p. For small p it uses geometric skipping (draw the gap to the
// next success) which costs O(p·64) random draws instead of 64.
func bernoulliMask(r *rng.RNG, p float64) uint64 {
	return bernoulliMaskLogq(r, p, noiseLogq(p))
}

// bernoulliMaskLogq is bernoulliMask with log(1-p) precomputed (as returned
// by noiseLogq). The randomness consumed is identical to bernoulliMask for
// the same p.
func bernoulliMaskLogq(r *rng.RNG, p, logq float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	var mask uint64
	if p < geomThreshold {
		// Geometric skipping: positions of successes in a Bernoulli stream.
		i := 0
		for {
			u := r.Float64()
			// Gap ~ floor(log(1-u)/log(1-p)); u in [0,1) keeps log finite.
			gap := int(math.Log1p(-u) / logq)
			i += gap
			if i >= 64 {
				return mask
			}
			mask |= 1 << uint(i)
			i++
		}
	}
	for i := 0; i < 64; i++ {
		if r.Float64() < p {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// compile lowers c's instruction list into a flat step stream. Each step
// captures its targets, probability argument, precomputed log(1-p) and — for
// measurements — the absolute measurement-record base index, so executing a
// batch never re-inspects opcodes or recomputes per-instruction constants.
//
// RNG-stream compatibility: steps draw randomness in exactly the order and
// quantity the interpreted switch did. The only instructions elided are
// ticks and pure-noise channels with Arg ≤ 0, neither of which consumes
// randomness, so compiled and interpreted execution are bit-identical for
// the same seed.
func compile(c *circuit.Circuit) []step {
	prog := make([]step, 0, len(c.Instructions))
	meas := 0
	for _, in := range c.Instructions {
		targets := in.Targets
		arg := in.Arg
		logq := noiseLogq(arg)
		index := in.Index
		recsIdx := in.Recs
		switch in.Op {
		case circuit.OpH:
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					fs.xf[q], fs.zf[q] = fs.zf[q], fs.xf[q]
				}
			})
		case circuit.OpS:
			// S maps X -> Y: an X frame gains a Z component.
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					fs.zf[q] ^= fs.xf[q]
				}
			})
		case circuit.OpCX:
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					c, t := targets[i], targets[i+1]
					fs.xf[t] ^= fs.xf[c] // X on control propagates to target
					fs.zf[c] ^= fs.zf[t] // Z on target propagates to control
				}
			})
		case circuit.OpCZ:
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					a, b := targets[i], targets[i+1]
					fs.zf[a] ^= fs.xf[b]
					fs.zf[b] ^= fs.xf[a]
				}
			})
		case circuit.OpSwap:
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					a, b := targets[i], targets[i+1]
					fs.xf[a], fs.xf[b] = fs.xf[b], fs.xf[a]
					fs.zf[a], fs.zf[b] = fs.zf[b], fs.zf[a]
				}
			})
		case circuit.OpReset:
			// Reset discards the frame; a noisy reset leaves an X error
			// (wrong computational-basis state) with probability Arg.
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					fs.xf[q] = bernoulliMaskLogq(fs.rng, arg, logq)
					fs.zf[q] = 0
				}
			})
		case circuit.OpResetX:
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					fs.zf[q] = bernoulliMaskLogq(fs.rng, arg, logq)
					fs.xf[q] = 0
				}
			})
		case circuit.OpM:
			// An X or Y frame flips a Z-basis outcome; readout error adds an
			// independent classical flip. The post-measurement Z frame is a
			// stabilizer of the collapsed state, so it is cleared.
			base := meas
			meas += len(targets)
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					fs.recs[base+j] = fs.xf[q] ^ bernoulliMaskLogq(fs.rng, arg, logq)
					fs.zf[q] = 0
				}
			})
		case circuit.OpMX:
			base := meas
			meas += len(targets)
			prog = append(prog, func(fs *FrameSimulator) {
				for j, q := range targets {
					fs.recs[base+j] = fs.zf[q] ^ bernoulliMaskLogq(fs.rng, arg, logq)
					fs.xf[q] = 0
				}
			})
		case circuit.OpXError:
			if arg <= 0 {
				continue // draws nothing and flips nothing
			}
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					fs.xf[q] ^= bernoulliMaskLogq(fs.rng, arg, logq)
				}
			})
		case circuit.OpZError:
			if arg <= 0 {
				continue
			}
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					fs.zf[q] ^= bernoulliMaskLogq(fs.rng, arg, logq)
				}
			})
		case circuit.OpYError:
			if arg <= 0 {
				continue
			}
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					m := bernoulliMaskLogq(fs.rng, arg, logq)
					fs.xf[q] ^= m
					fs.zf[q] ^= m
				}
			})
		case circuit.OpDepolarize1:
			if arg <= 0 {
				continue
			}
			prog = append(prog, func(fs *FrameSimulator) {
				for _, q := range targets {
					m := bernoulliMaskLogq(fs.rng, arg, logq)
					// For each erring shot choose X, Y or Z uniformly.
					for w := m; w != 0; w &= w - 1 {
						bit := w & -w
						switch fs.rng.Intn(3) {
						case 0:
							fs.xf[q] ^= bit
						case 1:
							fs.xf[q] ^= bit
							fs.zf[q] ^= bit
						case 2:
							fs.zf[q] ^= bit
						}
					}
				}
			})
		case circuit.OpDepolarize2:
			if arg <= 0 {
				continue
			}
			prog = append(prog, func(fs *FrameSimulator) {
				for i := 0; i < len(targets); i += 2 {
					a, b := targets[i], targets[i+1]
					m := bernoulliMaskLogq(fs.rng, arg, logq)
					for w := m; w != 0; w &= w - 1 {
						bit := w & -w
						// Choose one of the 15 non-identity two-qubit Paulis.
						k := fs.rng.Intn(15) + 1 // 1..15, 2 bits per qubit
						pa, pb := k&3, k>>2
						if pa&2 != 0 {
							fs.xf[a] ^= bit
						}
						if pa&1 != 0 {
							fs.zf[a] ^= bit
						}
						if pb&2 != 0 {
							fs.xf[b] ^= bit
						}
						if pb&1 != 0 {
							fs.zf[b] ^= bit
						}
					}
				}
			})
		case circuit.OpDetector:
			prog = append(prog, func(fs *FrameSimulator) {
				var v uint64
				for _, rIdx := range recsIdx {
					v ^= fs.recs[rIdx]
				}
				fs.det[index] = v
			})
		case circuit.OpObservable:
			prog = append(prog, func(fs *FrameSimulator) {
				var v uint64
				for _, rIdx := range recsIdx {
					v ^= fs.recs[rIdx]
				}
				fs.obs[index] ^= v
			})
		case circuit.OpTick:
			// no state effect, no randomness: compiles to nothing
		}
	}
	return prog
}

// runBatch executes one 64-shot pass, filling fs.det/fs.obs flip words.
func (fs *FrameSimulator) runBatch() {
	for i := range fs.xf {
		fs.xf[i] = 0
		fs.zf[i] = 0
	}
	for i := range fs.recs {
		fs.recs[i] = 0
	}
	for i := range fs.det {
		fs.det[i] = 0
	}
	for i := range fs.obs {
		fs.obs[i] = 0
	}
	for _, st := range fs.prog {
		st(fs)
	}
}

// Sample runs shots Monte-Carlo trajectories and invokes visit once per
// 64-shot batch with the detector and observable flip words. The final
// batch may contain fewer than 64 valid shots (BatchResult.Shots).
func (fs *FrameSimulator) Sample(shots int, visit func(BatchResult)) {
	fs.SampleWhile(shots, func(b BatchResult) bool {
		visit(b)
		return true
	})
}

// SampleWhile is Sample with early exit: sampling stops as soon as visit
// returns false, leaving the remaining batches undrawn. This is what lets
// internal/mc abort an in-flight evaluation between batches on context
// cancellation without consuming randomness for work it will discard.
//
// The BatchResult words alias the simulator's internal scratch: they are
// valid only until the next batch (or the next Sample call) and must not be
// retained by visit.
func (fs *FrameSimulator) SampleWhile(shots int, visit func(BatchResult) bool) {
	for done := 0; done < shots; done += 64 {
		n := shots - done
		if n > 64 {
			n = 64
		}
		fs.runBatch()
		if n < 64 {
			lowMask := uint64(1)<<uint(n) - 1
			for i := range fs.det {
				fs.det[i] &= lowMask
			}
			for i := range fs.obs {
				fs.obs[i] &= lowMask
			}
		}
		if !visit(BatchResult{Detectors: fs.det, Observables: fs.obs, Shots: n}) {
			return
		}
	}
}

// CountObservableFlips samples shots trajectories with no decoding and
// returns, per observable, the number of shots whose raw observable flipped.
// This measures the *undecoded* physical failure rate and is mostly useful
// for tests; real experiments decode first (see internal/mc.Engine).
func (fs *FrameSimulator) CountObservableFlips(shots int) []int {
	counts := make([]int, fs.c.NumObs)
	fs.Sample(shots, func(b BatchResult) {
		for i, w := range b.Observables {
			counts[i] += bits.OnesCount64(w)
		}
	})
	return counts
}
