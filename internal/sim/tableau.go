package sim

import (
	"caliqec/internal/circuit"
	"caliqec/internal/rng"
	"fmt"
)

// Tableau is a CHP-style stabilizer state simulator (Aaronson–Gottesman).
// It is the slow, exact reference implementation: the test suite uses it to
// prove that generated syndrome-extraction circuits have deterministic,
// zero-valued detectors in the absence of noise, which is precisely the
// property the fast frame simulator relies on.
type Tableau struct {
	n int
	// Rows 0..n-1 are destabilizers, n..2n-1 stabilizers, plus one scratch
	// row at index 2n. Each row stores x bits, z bits and a phase bit r
	// (phase is 0 for +1, 1 for -1; i phases cannot survive for valid rows).
	x [][]uint64
	z [][]uint64
	r []uint8
	w int // words per row
}

// NewTableau returns the state |0…0> on n qubits.
func NewTableau(n int) *Tableau {
	w := (n + 63) / 64
	t := &Tableau{n: n, w: w,
		x: make([][]uint64, 2*n+1),
		z: make([][]uint64, 2*n+1),
		r: make([]uint8, 2*n+1),
	}
	for i := range t.x {
		t.x[i] = make([]uint64, w)
		t.z[i] = make([]uint64, w)
	}
	for i := 0; i < n; i++ {
		t.setX(i, i, true)   // destabilizer i = X_i
		t.setZ(n+i, i, true) // stabilizer i = Z_i
	}
	return t
}

func (t *Tableau) getX(row, q int) bool { return t.x[row][q>>6]>>(uint(q)&63)&1 == 1 }
func (t *Tableau) getZ(row, q int) bool { return t.z[row][q>>6]>>(uint(q)&63)&1 == 1 }
func (t *Tableau) setX(row, q int, b bool) {
	if b {
		t.x[row][q>>6] |= 1 << (uint(q) & 63)
	} else {
		t.x[row][q>>6] &^= 1 << (uint(q) & 63)
	}
}
func (t *Tableau) setZ(row, q int, b bool) {
	if b {
		t.z[row][q>>6] |= 1 << (uint(q) & 63)
	} else {
		t.z[row][q>>6] &^= 1 << (uint(q) & 63)
	}
}

// H applies a Hadamard on qubit q.
func (t *Tableau) H(q int) {
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.getX(i, q), t.getZ(i, q)
		if xi && zi {
			t.r[i] ^= 1
		}
		t.setX(i, q, zi)
		t.setZ(i, q, xi)
	}
}

// S applies the phase gate on qubit q.
func (t *Tableau) S(q int) {
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.getX(i, q), t.getZ(i, q)
		if xi && zi {
			t.r[i] ^= 1
		}
		t.setZ(i, q, zi != xi)
	}
}

// CX applies a CNOT with control c and target d.
func (t *Tableau) CX(c, d int) {
	for i := 0; i < 2*t.n; i++ {
		xc, zc := t.getX(i, c), t.getZ(i, c)
		xd, zd := t.getX(i, d), t.getZ(i, d)
		if xc && zd && (xd == zc) {
			t.r[i] ^= 1
		}
		t.setX(i, d, xd != xc)
		t.setZ(i, c, zc != zd)
	}
}

// CZ applies a controlled-Z on qubits a and b.
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CX(a, b)
	t.H(b)
}

// Swap exchanges qubits a and b.
func (t *Tableau) Swap(a, b int) {
	t.CX(a, b)
	t.CX(b, a)
	t.CX(a, b)
}

// X applies a Pauli X on qubit q (phase update only).
func (t *Tableau) X(q int) {
	for i := 0; i < 2*t.n; i++ {
		if t.getZ(i, q) {
			t.r[i] ^= 1
		}
	}
}

// Z applies a Pauli Z on qubit q.
func (t *Tableau) Z(q int) {
	for i := 0; i < 2*t.n; i++ {
		if t.getX(i, q) {
			t.r[i] ^= 1
		}
	}
}

// rowsum implements the Aaronson–Gottesman "rowsum(h, i)" phase-tracked row
// multiplication: row h *= row i.
func (t *Tableau) rowsum(h, i int) {
	// Accumulate the exponent of the i phase (mod 4).
	g := 0
	for q := 0; q < t.n; q++ {
		x1, z1 := t.getX(i, q), t.getZ(i, q)
		x2, z2 := t.getX(h, q), t.getZ(h, q)
		g += gExp(x1, z1, x2, z2)
	}
	g += 2 * int(t.r[h])
	g += 2 * int(t.r[i])
	// For stabilizer and scratch rows the product phase is always real
	// (those rows pairwise commute); destabilizer rows may anticommute with
	// the pivot, leaving an imaginary phase whose bit is meaningless — CHP
	// stores a junk bit there too, so any mapping of odd gm is fine.
	gm := ((g % 4) + 4) % 4
	if gm == 0 {
		t.r[h] = 0
	} else {
		t.r[h] = 1
	}
	for w := 0; w < t.w; w++ {
		t.x[h][w] ^= t.x[i][w]
		t.z[h][w] ^= t.z[i][w]
	}
}

// gExp is the g function from Aaronson–Gottesman: the exponent of i produced
// when multiplying single-qubit Paulis (x1,z1)·(x2,z2).
func gExp(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		return b2i(z2) * (2*b2i(x2) - 1)
	default: // Z
		return b2i(x2) * (1 - 2*b2i(z2))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// MeasureZ performs a Z-basis measurement of qubit q, using r for random
// outcomes, and returns the result bit.
func (t *Tableau) MeasureZ(q int, r *rng.RNG) bool {
	n := t.n
	p := -1
	for i := n; i < 2*n; i++ {
		if t.getX(i, q) {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome.
		for i := 0; i < 2*n; i++ {
			if i != p && t.getX(i, q) {
				t.rowsum(i, p)
			}
		}
		// Destabilizer row p-n becomes old stabilizer row p.
		copy(t.x[p-n], t.x[p])
		copy(t.z[p-n], t.z[p])
		t.r[p-n] = t.r[p]
		for w := 0; w < t.w; w++ {
			t.x[p][w] = 0
			t.z[p][w] = 0
		}
		t.r[p] = 0
		if r.Bool() {
			t.r[p] = 1
		}
		t.setZ(p, q, true)
		return t.r[p] == 1
	}
	// Deterministic outcome: accumulate into scratch row 2n.
	s := 2 * n
	for w := 0; w < t.w; w++ {
		t.x[s][w] = 0
		t.z[s][w] = 0
	}
	t.r[s] = 0
	for i := 0; i < n; i++ {
		if t.getX(i, q) {
			t.rowsum(s, i+n)
		}
	}
	return t.r[s] == 1
}

// MeasureX performs an X-basis measurement of qubit q.
func (t *Tableau) MeasureX(q int, r *rng.RNG) bool {
	t.H(q)
	out := t.MeasureZ(q, r)
	t.H(q)
	return out
}

// ResetZ resets qubit q to |0>.
func (t *Tableau) ResetZ(q int, r *rng.RNG) {
	if t.MeasureZ(q, r) {
		t.X(q)
	}
}

// ResetX resets qubit q to |+>.
func (t *Tableau) ResetX(q int, r *rng.RNG) {
	if t.MeasureX(q, r) {
		t.Z(q)
	}
}

// RunResult is the outcome of a noiseless tableau run of a circuit.
type RunResult struct {
	Measurements []bool
	Detectors    []bool
	Observables  []bool
}

// RunNoiseless executes c on a fresh tableau, ignoring all noise channels
// (their Arg is treated as zero) but honouring gates, resets, measurements
// and annotations. Random measurement outcomes use r.
func RunNoiseless(c *circuit.Circuit, r *rng.RNG) (*RunResult, error) {
	t := NewTableau(c.NumQubits)
	res := &RunResult{
		Measurements: make([]bool, 0, c.NumMeas),
		Detectors:    make([]bool, c.NumDetectors),
		Observables:  make([]bool, c.NumObs),
	}
	for _, in := range c.Instructions {
		switch in.Op {
		case circuit.OpH:
			for _, q := range in.Targets {
				t.H(q)
			}
		case circuit.OpS:
			for _, q := range in.Targets {
				t.S(q)
			}
		case circuit.OpCX:
			for i := 0; i < len(in.Targets); i += 2 {
				t.CX(in.Targets[i], in.Targets[i+1])
			}
		case circuit.OpCZ:
			for i := 0; i < len(in.Targets); i += 2 {
				t.CZ(in.Targets[i], in.Targets[i+1])
			}
		case circuit.OpSwap:
			for i := 0; i < len(in.Targets); i += 2 {
				t.Swap(in.Targets[i], in.Targets[i+1])
			}
		case circuit.OpReset:
			for _, q := range in.Targets {
				t.ResetZ(q, r)
			}
		case circuit.OpResetX:
			for _, q := range in.Targets {
				t.ResetX(q, r)
			}
		case circuit.OpM:
			for _, q := range in.Targets {
				res.Measurements = append(res.Measurements, t.MeasureZ(q, r))
			}
		case circuit.OpMX:
			for _, q := range in.Targets {
				res.Measurements = append(res.Measurements, t.MeasureX(q, r))
			}
		case circuit.OpDetector:
			v := false
			for _, rec := range in.Recs {
				v = v != res.Measurements[rec]
			}
			res.Detectors[in.Index] = v
		case circuit.OpObservable:
			v := res.Observables[in.Index]
			for _, rec := range in.Recs {
				v = v != res.Measurements[rec]
			}
			res.Observables[in.Index] = v
		case circuit.OpXError, circuit.OpZError, circuit.OpYError,
			circuit.OpDepolarize1, circuit.OpDepolarize2, circuit.OpTick:
			// noiseless run: skip
		default:
			return nil, fmt.Errorf("sim: unsupported opcode %v", in.Op)
		}
	}
	return res, nil
}
