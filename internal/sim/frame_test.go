package sim

import (
	"caliqec/internal/circuit"
	"caliqec/internal/rng"
	"math"
	"math/bits"
	"testing"
)

// buildRepCode returns a 3-qubit bit-flip repetition-code memory circuit
// with the given data X-error rate: Z0Z1 and Z1Z2 measured via two ancillas
// for `rounds` rounds.
func buildRepCode(rounds int, p float64) *circuit.Circuit {
	b := circuit.NewBuilder(5) // data 0,1,2; ancillas 3,4
	b.Reset(0, 0, 1, 2)
	var prev []int
	for r := 0; r < rounds; r++ {
		b.XError(p, 0, 1, 2)
		b.Reset(0, 3, 4)
		b.CX(0, 3, 1, 3)
		b.CX(1, 4, 2, 4)
		recs := b.M(0, 3, 4)
		if r == 0 {
			b.Detector(recs[0])
			b.Detector(recs[1])
		} else {
			b.Detector(prev[0], recs[0])
			b.Detector(prev[1], recs[1])
		}
		prev = recs
	}
	dr := b.M(0, 0, 1, 2)
	b.Detector(prev[0], dr[0], dr[1])
	b.Detector(prev[1], dr[1], dr[2])
	b.Observable(0, dr[0])
	return b.Build()
}

func TestFrameDetectsInjectedErrors(t *testing.T) {
	// With p=1 on a single qubit the detectors adjacent to it fire every
	// shot deterministically.
	b := circuit.NewBuilder(5)
	b.Reset(0, 0, 1, 2)
	b.XError(1, 0) // always flip qubit 0
	b.Reset(0, 3, 4)
	b.CX(0, 3, 1, 3)
	b.CX(1, 4, 2, 4)
	recs := b.M(0, 3, 4)
	b.Detector(recs[0])
	b.Detector(recs[1])
	dr := b.M(0, 0, 1, 2)
	b.Observable(0, dr[0])
	c := b.Build()
	fs := NewFrameSimulator(c, rng.New(1))
	fs.Sample(64, func(res BatchResult) {
		if res.Detectors[0][0] != ^uint64(0) {
			t.Error("detector 0 should fire on every shot")
		}
		if onesLane(res.Detectors[1]) != 0 {
			t.Error("detector 1 should never fire")
		}
		if res.Observables[0][0] != ^uint64(0) {
			t.Error("observable should flip every shot")
		}
	})
}

// TestFrameMatchesBinomial: the marginal firing rate of a single detector
// under a single X error channel must match the analytic probability.
func TestFrameMatchesBinomial(t *testing.T) {
	p := 0.07
	b := circuit.NewBuilder(2)
	b.Reset(0, 0)
	b.XError(p, 0)
	b.Reset(0, 1)
	b.CX(0, 1)
	recs := b.M(0, 1)
	b.Detector(recs[0])
	c := b.Build()
	fs := NewFrameSimulator(c, rng.New(99))
	const shots = 200000
	fired := 0
	fs.Sample(shots, func(res BatchResult) {
		fired += onesLane(res.Detectors[0])
	})
	got := float64(fired) / shots
	if math.Abs(got-p) > 0.004 {
		t.Errorf("detector rate %.4f, want %.4f", got, p)
	}
}

// TestFrameVsTableauStatistics cross-validates the two simulators: inject
// depolarizing noise in a small stabilizer round and compare detector
// firing rates. The tableau runs the gates exactly (per-shot) with manual
// error injection driven by the same probabilities.
func TestFrameRepCodeRates(t *testing.T) {
	p := 0.02
	rounds := 4
	c := buildRepCode(rounds, p)
	fs := NewFrameSimulator(c, rng.New(5))
	const shots = 100000
	counts := make([]int, c.NumDetectors)
	fs.Sample(shots, func(res BatchResult) {
		for i := range res.Detectors {
			counts[i] += onesLane(res.Detectors[i])
		}
	})
	// Middle-round detectors compare two syndrome measurements; detector 2
	// (round 1, stabilizer Z0Z1) fires if exactly one of q0,q1 flipped in
	// round 1: 2p(1-p) to first order.
	want := 2 * p * (1 - p)
	got := float64(counts[2]) / shots
	if math.Abs(got-want) > 0.005 {
		t.Errorf("detector 2 rate %.4f, want ≈ %.4f", got, want)
	}
}

func TestMeasurementErrorTimelike(t *testing.T) {
	// A measurement flip shows up in two consecutive time-like detectors.
	b := circuit.NewBuilder(2)
	b.Reset(0, 0)
	var prev []int
	for r := 0; r < 3; r++ {
		b.Reset(0, 1)
		b.CX(0, 1)
		var recs []int
		if r == 1 {
			recs = b.M(1.0, 1) // always misread in round 1
		} else {
			recs = b.M(0, 1)
		}
		if r > 0 {
			b.Detector(prev[0], recs[0])
		}
		prev = recs
	}
	c := b.Build()
	fs := NewFrameSimulator(c, rng.New(1))
	fs.Sample(64, func(res BatchResult) {
		if res.Detectors[0][0] != ^uint64(0) || res.Detectors[1][0] != ^uint64(0) {
			t.Error("measurement flip must fire both adjacent time-like detectors")
		}
	})
}

func TestDepolarize2MarginalRate(t *testing.T) {
	// DEPOLARIZE2(p): qubit A suffers an X-component with probability
	// p·8/15 (8 of 15 Paulis have X or Y on A).
	p := 0.09
	b := circuit.NewBuilder(3)
	b.Reset(0, 0, 1)
	b.Depolarize2(p, 0, 1)
	b.Reset(0, 2)
	b.CX(0, 2)
	recs := b.M(0, 2)
	b.Detector(recs[0])
	c := b.Build()
	fs := NewFrameSimulator(c, rng.New(1234))
	const shots = 300000
	fired := 0
	fs.Sample(shots, func(res BatchResult) {
		fired += onesLane(res.Detectors[0])
	})
	got := float64(fired) / shots
	want := p * 8 / 15
	if math.Abs(got-want) > 0.003 {
		t.Errorf("X-marginal of DEPOLARIZE2 = %.4f, want %.4f", got, want)
	}
}

func TestPartialBatchMasking(t *testing.T) {
	b := circuit.NewBuilder(1)
	b.Reset(0, 0)
	b.XError(1, 0)
	recs := b.M(0, 0)
	b.Detector(recs[0])
	c := b.Build()
	fs := NewFrameSimulator(c, rng.New(1))
	total := 0
	fs.Sample(70, func(res BatchResult) {
		total += onesLane(res.Detectors[0])
	})
	if total != 70 {
		t.Errorf("got %d fired shots, want exactly 70 (partial batch must be masked)", total)
	}
}

// onesLane counts the set bits across every word of a lane.
func onesLane(l Lane) int {
	n := 0
	for w := 0; w < LaneWords; w++ {
		n += bits.OnesCount64(l[w])
	}
	return n
}

// collectWords samples shots and returns every detector/observable lane word
// in batch order, copying out of the simulator's reused scratch.
func collectWords(fs *FrameSimulator, shots int) []uint64 {
	var out []uint64
	fs.Sample(shots, func(res BatchResult) {
		for i := range res.Detectors {
			out = append(out, res.Detectors[i][:]...)
		}
		for i := range res.Observables {
			out = append(out, res.Observables[i][:]...)
		}
	})
	return out
}

// TestResetReproducesStream: a pooled simulator rebound to a fresh generator
// with Reset must produce exactly the words a newly constructed simulator
// does — the contract internal/mc's per-entry simulator pool relies on.
func TestResetReproducesStream(t *testing.T) {
	c := buildRepCode(3, 0.02)
	fresh := NewFrameSimulator(c, rng.New(7))
	want := collectWords(fresh, 500)

	reused := NewFrameSimulator(c, rng.New(42))
	collectWords(reused, 300) // dirty the frames, records and scratch
	reused.Reset(rng.New(7))
	got := collectWords(reused, 500)

	if len(got) != len(want) {
		t.Fatalf("word count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d = %#x after Reset, want %#x", i, got[i], want[i])
		}
	}
}

// TestElisionPreservesStream: ticks and zero-probability noise channels
// compile to nothing; interleaving them through a circuit must not perturb
// the randomness stream, so the sampled words stay bit-identical.
func TestElisionPreservesStream(t *testing.T) {
	build := func(padded bool) *circuit.Circuit {
		b := circuit.NewBuilder(5)
		pad := func() {
			if padded {
				b.Tick()
				b.XError(0, 0, 1, 2)
				b.Depolarize1(0, 3)
				b.ZError(0, 4)
			}
		}
		b.Reset(0, 0, 1, 2)
		pad()
		var prev []int
		for r := 0; r < 3; r++ {
			b.XError(0.03, 0, 1, 2)
			pad()
			b.Reset(0, 3, 4)
			b.CX(0, 3, 1, 3)
			pad()
			b.CX(1, 4, 2, 4)
			recs := b.M(0.01, 3, 4)
			pad()
			if r == 0 {
				b.Detector(recs[0])
				b.Detector(recs[1])
			} else {
				b.Detector(prev[0], recs[0])
				b.Detector(prev[1], recs[1])
			}
			prev = recs
		}
		dr := b.M(0, 0, 1, 2)
		b.Detector(prev[0], dr[0], dr[1])
		b.Detector(prev[1], dr[1], dr[2])
		b.Observable(0, dr[0])
		return b.Build()
	}
	plain := collectWords(NewFrameSimulator(build(false), rng.New(11)), 640)
	padded := collectWords(NewFrameSimulator(build(true), rng.New(11)), 640)
	for i := range plain {
		if plain[i] != padded[i] {
			t.Fatalf("word %d differs with elided instructions: %#x vs %#x", i, plain[i], padded[i])
		}
	}
}

// TestSampleDoesNotAllocate: after construction, repeated Sample calls reuse
// the struct-owned det/obs scratch — the steady-state sampling loop must be
// allocation-free.
func TestSampleDoesNotAllocate(t *testing.T) {
	c := buildRepCode(3, 0.02)
	fs := NewFrameSimulator(c, rng.New(3))
	fs.Sample(64, func(BatchResult) {})
	allocs := testing.AllocsPerRun(10, func() {
		fs.Sample(256, func(BatchResult) {})
	})
	if allocs != 0 {
		t.Errorf("Sample allocated %.1f objects per run, want 0", allocs)
	}
}
