package sim_test

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"testing"

	"caliqec/internal/circuit"
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
)

// rawCircuit is the fixed circuit behind the width-equivalence and golden
// digest tests: a d=3 surface-code memory over 2 rounds at p=5e-3.
func rawCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	c, err := code.NewPatch(lattice.NewSquare(3)).MemoryCircuit(code.MemoryOptions{
		Rounds: 2, Basis: lattice.BasisZ, Noise: code.UniformNoise(5e-3)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// shotRecord is one shot's flipped bits in transposed (per-shot) form.
type shotRecord struct {
	syn []int
	obs uint64
}

// appendShots transposes a batch into per-shot records using the lane
// contract: shot s lives at bit s%64 of word s/64.
func appendShots(out []shotRecord, b sim.BatchResult) []shotRecord {
	for s := 0; s < b.Shots; s++ {
		w, bit := s/64, uint(s%64)
		var rec shotRecord
		for d := range b.Detectors {
			if b.Detectors[d][w]>>bit&1 == 1 {
				rec.syn = append(rec.syn, d)
			}
		}
		for o := range b.Observables {
			if b.Observables[o][w]>>bit&1 == 1 {
				rec.obs |= 1 << uint(o)
			}
		}
		out = append(out, rec)
	}
	return out
}

// TestWideMatchesNarrowReference is the cross-width equivalence anchor: a
// single wide Sample(n) pass (256-shot lane batches) must produce exactly
// the shots that a sequence of <=64-shot Sample calls produces from the same
// seed. A <=64-shot call activates only lane word 0 and draws one mask word
// per noisy instruction per batch — precisely the pre-widening 64-wide
// sampler's behavior — so this pins both the lane->shot bit mapping and the
// word-major RNG draw order, including ragged tails.
func TestWideMatchesNarrowReference(t *testing.T) {
	c := rawCircuit(t)
	for _, shots := range []int{640, 330, 300, 70, 64, 1} {
		wide := sim.NewFrameSimulator(c, rng.New(9))
		var got []shotRecord
		wide.Sample(shots, func(b sim.BatchResult) { got = appendShots(got, b) })

		narrow := sim.NewFrameSimulator(c, rng.New(9))
		var want []shotRecord
		for left := shots; left > 0; {
			n := left
			if n > 64 {
				n = 64
			}
			narrow.Sample(n, func(b sim.BatchResult) { want = appendShots(want, b) })
			left -= n
		}

		if len(got) != len(want) {
			t.Fatalf("shots=%d: wide produced %d shots, narrow %d", shots, len(got), len(want))
		}
		for s := range want {
			if got[s].obs != want[s].obs || !equalInts(got[s].syn, want[s].syn) {
				t.Fatalf("shots=%d: shot %d differs: wide syn=%v obs=%#x, narrow syn=%v obs=%#x",
					shots, s, got[s].syn, got[s].obs, want[s].syn, want[s].obs)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeShots appends each shot's fired detectors (two little-endian bytes
// each, ascending), a 0xff separator, and flipped observables (one byte
// each, ascending) to h — a width-independent serialization of the sampled
// stream.
func writeShots(h hash.Hash, b sim.BatchResult) {
	for s := 0; s < b.Shots; s++ {
		w, bit := s/64, uint(s%64)
		for d := range b.Detectors {
			if b.Detectors[d][w]>>bit&1 == 1 {
				h.Write([]byte{byte(d), byte(d >> 8)})
			}
		}
		h.Write([]byte{0xff})
		for o := range b.Observables {
			if b.Observables[o][w]>>bit&1 == 1 {
				h.Write([]byte{byte(o)})
			}
		}
	}
}

// TestSampleGoldenDigests pins the sampled bit stream of fixed seeds to
// digests captured from the pre-lane-widening implementation. The
// serialization is per-shot and width-independent, so it is the same digest
// no matter how shots are grouped into batches; matching it proves the
// widened sampler draws bit-identical trajectories. Shot counts cover whole
// lane groups (640), a ragged tail crossing a lane-group boundary (330),
// and a tail inside the second word of the first group (70).
func TestSampleGoldenDigests(t *testing.T) {
	c := rawCircuit(t)
	cases := []struct {
		shots int
		want  string
	}{
		{640, "4d36fc2610a04013cf6a001d18f1624808788e91fa69fdd975f739cdf31076f4"},
		{330, "36011081de1168f04625d7c8c3c2c0175d1314cb444af000a04cfd53f0ae88ad"},
		{70, "4998be8cb6320e5c1da938883b862215fe7261c53473257502b92c027aea26b5"},
	}
	for _, tc := range cases {
		fs := sim.NewFrameSimulator(c, rng.New(9))
		h := sha256.New()
		fs.Sample(tc.shots, func(b sim.BatchResult) { writeShots(h, b) })
		if got := hex.EncodeToString(h.Sum(nil)); got != tc.want {
			t.Errorf("shots=%d: stream sha256 %s, want %s", tc.shots, got, tc.want)
		}
	}
}

// TestCountObservableFlipsGolden pins the undecoded flip count of a fixed
// seed, exercising the multi-word popcount in CountObservableFlips.
func TestCountObservableFlipsGolden(t *testing.T) {
	fs := sim.NewFrameSimulator(rawCircuit(t), rng.New(13))
	got := fs.CountObservableFlips(1000)
	if len(got) != 1 || got[0] != 105 {
		t.Errorf("CountObservableFlips(1000) = %v, want [105]", got)
	}
}
