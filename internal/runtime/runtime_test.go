package runtime

import (
	"bytes"
	"caliqec/internal/obs"
	"caliqec/internal/workload"
	"context"
	"strings"
	"testing"
)

// TestTable2Shape runs the three strategies on Hubbard-10-10 at d=25 and
// asserts the qualitative Table 2 orderings:
//   - NoCal: fewest qubits, base time, retry risk ≈ 100%;
//   - LSC: ~4-5× qubits, longer time, risk near target;
//   - CaliQEC: modest qubit overhead, base time, risk below LSC.
func TestTable2Shape(t *testing.T) {
	cfg := Config{
		Prog:        workload.Hubbard(10, 10),
		D:           25,
		RetryTarget: 0.01,
		Seed:        7,
	}
	noCal, err := Run(context.Background(), cfg, StrategyNoCal)
	if err != nil {
		t.Fatal(err)
	}
	lsc, err := Run(context.Background(), cfg, StrategyLSC)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Run(context.Background(), cfg, StrategyCaliQEC)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("no-cal : %v", noCal)
	t.Logf("LSC    : %v", lsc)
	t.Logf("CaliQEC: %v", cq)
	t.Logf("p_tar=%.4g", cq.PTar)

	if noCal.RetryRisk < 0.95 {
		t.Errorf("no-calibration retry risk %.3g, want ≈ 100%%", noCal.RetryRisk)
	}
	if cq.RetryRisk > 0.25 {
		t.Errorf("CaliQEC retry risk %.3g, want near the 1%% target", cq.RetryRisk)
	}
	if cq.RetryRisk >= lsc.RetryRisk {
		t.Errorf("CaliQEC risk %.3g ≥ LSC risk %.3g, want lower", cq.RetryRisk, lsc.RetryRisk)
	}
	ratioLSC := lsc.PhysicalQubits / noCal.PhysicalQubits
	if ratioLSC < 3 || ratioLSC > 6 {
		t.Errorf("LSC qubit ratio %.2f, want ≈ 4×", ratioLSC)
	}
	ratioCQ := cq.PhysicalQubits / noCal.PhysicalQubits
	if ratioCQ < 1.05 || ratioCQ > 1.6 {
		t.Errorf("CaliQEC qubit ratio %.2f, want modest (~1.1-1.4×)", ratioCQ)
	}
	if lsc.ExecHours <= noCal.ExecHours {
		t.Errorf("LSC time %.3g ≤ base %.3g, want overhead", lsc.ExecHours, noCal.ExecHours)
	}
	if cq.ExecHours != noCal.ExecHours {
		t.Errorf("CaliQEC time %.3g != base %.3g, want no overhead", cq.ExecHours, noCal.ExecHours)
	}
	if cq.Calibrations <= 0 {
		t.Error("CaliQEC performed no calibrations")
	}
}

// TestExecTimeNearPaper checks the fitted execution-time model against the
// paper's Table 2 values (±15%).
func TestExecTimeNearPaper(t *testing.T) {
	cases := []struct {
		prog  workload.Program
		d     int
		hours float64
	}{
		{workload.Hubbard(10, 10), 25, 5.29},
		{workload.Hubbard(20, 20), 29, 91.3},
		{workload.Jellium(250), 39, 177},
		{workload.Jellium(1024), 45, 1870},
		{workload.Grover(100), 41, 220},
	}
	for _, c := range cases {
		cfg := Config{Prog: c.prog, D: c.d, RetryTarget: 0.01, Seed: 1}
		r, err := Run(context.Background(), cfg, StrategyNoCal)
		if err != nil {
			t.Fatalf("%s: %v", c.prog.Name, err)
		}
		ratio := r.ExecHours / c.hours
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s d=%d: exec %.4gh vs paper %.4gh (ratio %.2f)", c.prog.Name, c.d, r.ExecHours, c.hours, ratio)
		}
	}
}

// TestQubitCountNearPaper checks the layout model against Table 2's
// no-calibration physical qubit counts (±20%).
func TestQubitCountNearPaper(t *testing.T) {
	cases := []struct {
		prog   workload.Program
		d      int
		qubits float64
	}{
		{workload.Hubbard(10, 10), 25, 9.81e5},
		{workload.Hubbard(20, 20), 29, 5.28e6},
		{workload.Jellium(250), 39, 2.74e6},
		{workload.Jellium(1024), 45, 1.66e7},
		{workload.Grover(100), 41, 1.35e6},
	}
	for _, c := range cases {
		cfg := Config{Prog: c.prog, D: c.d, RetryTarget: 0.01, Seed: 1}
		r, err := Run(context.Background(), cfg, StrategyNoCal)
		if err != nil {
			t.Fatalf("%s: %v", c.prog.Name, err)
		}
		ratio := r.PhysicalQubits / c.qubits
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s d=%d: %.3g qubits vs paper %.3g (ratio %.2f)", c.prog.Name, c.d, r.PhysicalQubits, c.qubits, ratio)
		}
	}
}

// TestRunCanceled: a pre-canceled context aborts the patch simulation.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Prog: workload.Hubbard(10, 10), D: 25, RetryTarget: 0.01, Seed: 7}
	if _, err := Run(ctx, cfg, StrategyCaliQEC); err == nil {
		t.Fatal("canceled context must abort Run")
	}
}

// TestRunRecordsRetryRiskGauge: every Run publishes its retry risk and
// calibration volume as per-strategy gauges in the default registry.
func TestRunRecordsRetryRiskGauge(t *testing.T) {
	cfg := Config{Prog: workload.Hubbard(10, 10), D: 25, RetryTarget: 0.01, Seed: 7}
	res, err := Run(context.Background(), cfg, StrategyCaliQEC)
	if err != nil {
		t.Fatal(err)
	}
	g := obs.Default.Gauge("runtime.retry_risk." + StrategyCaliQEC.String())
	if g.Value() != res.RetryRisk { //lint:allow floateq the gauge stores the exact value Run computed
		t.Errorf("gauge = %v, want %v", g.Value(), res.RetryRisk)
	}
	c := obs.Default.Gauge("runtime.calibrations." + StrategyCaliQEC.String())
	if c.Value() != res.Calibrations { //lint:allow floateq the gauge stores the exact value Run computed
		t.Errorf("calibrations gauge = %v, want %v", c.Value(), res.Calibrations)
	}
}

// TestRunGroupSpans: with a tracer in the context, CaliQEC's Algorithm-1
// grouping emits one runtime.group span per period class, nested under
// runtime.run.
func TestRunGroupSpans(t *testing.T) {
	tr := obs.NewTracer(nil)
	ctx := obs.WithTracer(context.Background(), tr)
	cfg := Config{Prog: workload.Hubbard(10, 10), D: 25, RetryTarget: 0.01, Seed: 7}
	if _, err := Run(ctx, cfg, StrategyCaliQEC); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"runtime.run"`) {
		t.Error("trace missing runtime.run span")
	}
	if !strings.Contains(out, `"runtime.group"`) {
		t.Error("trace missing runtime.group spans")
	}
}
