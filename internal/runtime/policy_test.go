package runtime

import (
	"caliqec/internal/ler"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"caliqec/internal/workload"
	"context"
	"math"
	"testing"
)

func testConfig() Config {
	return Config{
		Prog:        workload.Hubbard(10, 10),
		D:           25,
		RetryTarget: 0.01,
		Seed:        5,
	}
}

// TestCaliQECNeverExceedsPTar: the defining property of the in-situ
// schedule — no gate's error rate ever passes the target between
// calibrations.
func TestCaliQECNeverExceedsPTar(t *testing.T) {
	cfg := testConfig()
	cfg.fill()
	pTar, err := PTarFor(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := newSimulator(&cfg, rng.New(1), 20, pTar)
	pol := newPolicyCaliQEC(pTar)
	mu, sigma := lnParams(cfg.Model)
	gates := make([]gateState, 128)
	for i := range gates {
		gates[i].drift = noise.Drift{P0: noise.InitialErrorRate, TDrift: rng.LogNormInv(clampP(rng.New(uint64(i)).Float64()), mu, sigma)}
		gates[i].deadline = gates[i].drift.TimeToReach(pTar)
		gates[i].weight = 1
	}
	pol.init(context.Background(), sim, gates)
	for tt := 0.0; tt < 20; tt += cfg.StepHours {
		pol.step(sim, gates, tt)
		for i := range gates {
			p := gates[i].drift.At(tt - gates[i].last)
			if p > pTar*1.0001 {
				t.Fatalf("gate %d at p=%.4g > p_tar=%.4g at t=%.2f (deadline %.2f, last %.2f)",
					i, p, pTar, tt, gates[i].deadline, gates[i].last)
			}
		}
	}
	if sim.cals == 0 {
		t.Error("no calibrations performed")
	}
}

// TestLSCPeriodBoundedByCapacity: the coarse-grained baseline cannot park
// patches faster than the transfer channels allow.
func TestLSCPeriodBoundedByCapacity(t *testing.T) {
	cfg := testConfig()
	cfg.fill()
	pol := newPolicyLSC(&cfg, 2e-3)
	wantMin := float64(cfg.Prog.LogicalQubits) * cfg.LSCOutageHours / (0.9 * float64(cfg.Prog.LogicalQubits) / 12)
	if pol.period < wantMin-1e-9 {
		t.Errorf("LSC period %.3f below the capacity bound %.3f", pol.period, wantMin)
	}
}

// TestNoCalRiskMonotoneInHorizon: longer programs can only accumulate more
// retry risk without calibration.
func TestNoCalRiskMonotoneInHorizon(t *testing.T) {
	prev := -1.0
	for _, par := range []float64{30, 10, 3} { // higher parallelism = shorter program
		cfg := testConfig()
		cfg.Prog.Parallelism = par
		res, err := Run(context.Background(), cfg, StrategyNoCal)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.RetryRisk < prev-1e-6 {
			t.Errorf("risk decreased for longer program: %.4g after %.4g", res.RetryRisk, prev)
		}
		prev = res.RetryRisk
	}
}

// TestPTarForScalesWithBudget: a looser retry budget must allow a higher
// target physical rate.
func TestPTarForScalesWithBudget(t *testing.T) {
	cfgTight := testConfig()
	cfgTight.RetryTarget = 0.001
	cfgTight.fill()
	cfgLoose := testConfig()
	cfgLoose.RetryTarget = 0.01
	cfgLoose.fill()
	pt, err := PTarFor(&cfgTight)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PTarFor(&cfgLoose)
	if err != nil {
		t.Fatal(err)
	}
	if pl <= pt {
		t.Errorf("loose budget p_tar %.4g ≤ tight %.4g", pl, pt)
	}
}

// TestPTarForRejectsHopelessDistance: a small distance on a huge program
// leaves no drift headroom.
func TestPTarForRejectsHopelessDistance(t *testing.T) {
	cfg := Config{Prog: workload.Jellium(1024), D: 15, RetryTarget: 0.001}
	cfg.fill()
	if _, err := PTarFor(&cfg); err == nil {
		t.Error("d=15 on jellium-1024 should be rejected")
	}
}

// TestFutureModelNeedsFewerCalibrations: doubling drift constants halves
// the calibration volume, roughly.
func TestFutureModelNeedsFewerCalibrations(t *testing.T) {
	cur := testConfig()
	res1, err := Run(context.Background(), cur, StrategyCaliQEC)
	if err != nil {
		t.Fatal(err)
	}
	fut := testConfig()
	fut.Model = noise.FutureModel()
	res2, err := Run(context.Background(), fut, StrategyCaliQEC)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Calibrations >= res1.Calibrations {
		t.Errorf("future model calibrations %.3g ≥ current %.3g", res2.Calibrations, res1.Calibrations)
	}
	ratio := res1.Calibrations / res2.Calibrations
	if ratio < 1.4 || ratio > 4 {
		t.Errorf("calibration ratio current/future = %.2f, want ≈2", ratio)
	}
}

// TestHotSaturationBound: the per-gate LER cap equals hotSaturation × the
// at-target LER and binds below threshold.
func TestHotSaturationBound(t *testing.T) {
	cfg := testConfig()
	cfg.fill()
	pTar := 2e-3
	sim := newSimulator(&cfg, rng.New(1), 10, pTar)
	m := ler.PaperModel()
	gates := []gateState{
		{drift: noise.Drift{P0: 5e-3, TDrift: 1e9}, weight: 1},                     // hot but sub-threshold
		{drift: noise.Drift{P0: noise.InitialErrorRate, TDrift: 1e9}, weight: 1e9}, // cold bulk
	}
	for i := range gates {
		gates[i].deadline = math.Inf(1)
	}
	sim.accumulate(gates, 0)
	bound := 1e3 * m.PerCycle(cfg.D, pTar)
	// The single hot gate contributes ≤ bound/1e9 to the weighted mean.
	if sim.lerSum > bound {
		t.Errorf("accumulated LER %.4g exceeds the saturation cap %.4g", sim.lerSum, bound)
	}
}
