// Package runtime executes calibration strategies against a drifting
// device over the lifetime of a quantum program and accounts for the
// resulting physical-qubit footprint, execution time, calibration volume,
// and retry risk. It is the engine behind Table 2 and the §8 component
// analyses, corresponding to the paper artifact's evaluation.py.
//
// Large programs occupy millions of physical qubits; the engine simulates a
// sample of logical patches (each with a sample of its gates' drift
// processes) and scales the accounting, which is statistically equivalent
// because gates are i.i.d. draws from the device's drift-constant
// distribution.
//
// Retry risk follows the Gidney–Ekerå spacetime-volume accounting the
// paper's metric cites: the program executes ops·d logical cell-cycles,
// each failing at the Eq. (4) per-cycle LER of its patch at that moment.
// Patch LER combines the patch-average physical rate with a hot-gate boost:
// Eq. (4) arises from error-path counting, so a single gate at p > p_tar
// multiplies the worst path's weight by p/p_tar — this reproduces the
// paper's Fig. 13 observation that one drifted gate inflates LER far more
// than the average-rate shift suggests.
package runtime

import (
	"caliqec/internal/ftqc"
	"caliqec/internal/ler"
	"caliqec/internal/noise"
	"caliqec/internal/obs"
	"caliqec/internal/rng"
	"caliqec/internal/sched"
	"caliqec/internal/workload"
	"context"
	"fmt"
	"math"
	"sort"
)

// Strategy selects the calibration policy (§7.3's baselines and CaliQEC).
type Strategy int

// Strategies.
const (
	StrategyNoCal Strategy = iota
	StrategyLSC
	StrategyCaliQEC
)

func (s Strategy) String() string {
	switch s {
	case StrategyNoCal:
		return "no-calibration"
	case StrategyLSC:
		return "LSC"
	case StrategyCaliQEC:
		return "CaliQEC"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Config describes one evaluation run.
type Config struct {
	Prog  workload.Program
	D     int         // code distance
	Model noise.Model // drift-constant distribution
	// RetryTarget is the program-level retry-risk budget used to derive
	// p_tar (Table 2 uses 1% and 0.1%).
	RetryTarget float64
	// DeltaD is CaliQEC's maximum tolerable distance loss (§7.3: 4).
	DeltaD int
	// LERModel are the Eq. (4) constants; zero value uses the paper's.
	LERModel ler.Model
	// GatesPerPatch is how many calibratable gates one logical patch
	// carries; 0 derives it from the layout (≈ 3 per data site: one 1Q
	// gate per qubit plus couplers).
	GatesPerPatch int
	// SamplePatches caps how many patches are simulated explicitly
	// (default 24).
	SamplePatches int
	// SampleGates caps how many gates are simulated per patch (default
	// 512). The unsampled remainder's fastest drifters are drawn via order
	// statistics so coarse-grained (min-deadline) behaviour is preserved.
	SampleGates int
	// StepHours is the simulation time step (default 0.25).
	StepHours float64
	// LSCOutageHours is the per-event unavailability of a parked patch:
	// two logical state transfers plus the due gates' calibration
	// (default 0.15 h).
	LSCOutageHours float64
	// LSCLookaheadHours batches a parked patch's calibrations: every gate
	// due within this window is calibrated during one park (default 1.0).
	LSCLookaheadHours float64
	// LSCStallFactor converts parked-patch fraction into critical-path
	// stall (default 0.45; <1 because the compiler reorders around parked
	// qubits).
	LSCStallFactor float64
	Seed           uint64
}

func (c *Config) fill() {
	if c.DeltaD == 0 {
		c.DeltaD = 4
	}
	if c.LERModel == (ler.Model{}) {
		c.LERModel = ler.PaperModel()
	}
	if c.SamplePatches == 0 {
		c.SamplePatches = 24
	}
	if c.SampleGates == 0 {
		c.SampleGates = 512
	}
	defaultFloat(&c.StepHours, 0.25)
	defaultFloat(&c.LSCOutageHours, 0.15)
	defaultFloat(&c.LSCLookaheadHours, 1.0)
	defaultFloat(&c.LSCStallFactor, 0.45)
	if c.GatesPerPatch == 0 {
		c.GatesPerPatch = 3 * c.D * c.D
	}
	if c.Model.MeanHours == 0 { //lint:allow floateq zero MeanHours marks an unset noise model, an exact sentinel
		c.Model = noise.CurrentModel()
	}
}

// defaultFloat assigns d to *v when the field was left at its zero value.
func defaultFloat(v *float64, d float64) {
	if *v == 0 { //lint:allow floateq the zero value means "unset", an exact sentinel never produced by arithmetic
		*v = d
	}
}

// Result summarizes one strategy run.
type Result struct {
	Strategy       Strategy
	Layout         ftqc.Layout
	PhysicalQubits float64
	ExecHours      float64
	RetryRisk      float64
	// Calibrations counts gate-calibration operations over the program
	// (scaled to the full device).
	Calibrations float64
	// PTar is the derived target physical error rate.
	PTar float64
	// MeanLER is the time-averaged per-cycle logical error rate of one
	// patch.
	MeanLER float64
}

func (r Result) String() string {
	return fmt.Sprintf("%-14s qubits=%.3g time=%.4gh retry=%.3g%% cals=%.3g",
		r.Strategy, r.PhysicalQubits, r.ExecHours, 100*r.RetryRisk, r.Calibrations)
}

// PTarFor derives the targeted physical error rate from the retry budget
// over the program's spacetime volume (ops·d cell-cycles).
func PTarFor(cfg *Config) (float64, error) {
	vol := cfg.Prog.LogicalOps() * float64(cfg.D)
	lerTar := cfg.RetryTarget / vol
	p := cfg.LERModel.PTarget(cfg.D, lerTar)
	if p <= noise.InitialErrorRate*1.02 {
		return 0, fmt.Errorf("runtime: d=%d leaves no drift headroom (p_tar=%.4g vs p0=%.4g)",
			cfg.D, p, noise.InitialErrorRate)
	}
	if p >= cfg.LERModel.Pth {
		p = cfg.LERModel.Pth * 0.99
	}
	return p, nil
}

func lnParams(m noise.Model) (mu, sigma float64) {
	sigma = m.Sigma
	mu = math.Log(m.MeanHours) - sigma*sigma/2
	return
}

// Run evaluates one strategy. The context cancels the patch simulation
// between time steps and carries the optional obs tracer; retry risk and
// calibration volume land in the obs.Default registry as
// runtime.retry_risk.<strategy> / runtime.calibrations.<strategy> gauges.
func Run(ctx context.Context, cfg Config, strat Strategy) (*Result, error) {
	cfg.fill()
	ctx, span := obs.StartSpan(ctx, "runtime.run")
	defer span.End()
	span.SetAttr("strategy", strat.String())
	span.SetAttr("d", cfg.D)
	r := rng.New(cfg.Seed ^ uint64(strat)<<32)
	execBase := ftqc.ExecTimeHours(cfg.Prog, cfg.D)
	pTar, err := PTarFor(&cfg)
	if err != nil && strat != StrategyNoCal {
		return nil, err
	}

	res := &Result{Strategy: strat, PTar: pTar, ExecHours: execBase}
	switch strat {
	case StrategyNoCal:
		res.Layout = ftqc.BaselineLayout(cfg.Prog.LogicalQubits, cfg.D)
	case StrategyLSC:
		res.Layout = ftqc.LSCLayout(cfg.Prog.LogicalQubits, cfg.D)
	case StrategyCaliQEC:
		res.Layout = ftqc.CaliQECLayout(cfg.Prog.LogicalQubits, cfg.D, cfg.DeltaD)
	}
	// The paper's Table 2 physical-qubit accounting folds T-state
	// resources into the tiled layout (its counts match 2·L·(d+w)² within
	// ~10%), so no separate factory term is added here.
	res.PhysicalQubits = res.Layout.PhysicalQubits()

	sim := newSimulator(&cfg, r, execBase, pTar)
	switch strat {
	case StrategyNoCal:
		err = sim.run(ctx, policyNoCal{})
	case StrategyCaliQEC:
		err = sim.run(ctx, newPolicyCaliQEC(pTar))
	case StrategyLSC:
		pol := newPolicyLSC(&cfg, pTar)
		err = sim.run(ctx, pol)
		// Execution-time overhead: stalls proportional to the fraction of
		// the logical plane parked at any time.
		parkedFrac := pol.outageHours * sim.patchScale / (execBase * float64(cfg.Prog.LogicalQubits))
		res.ExecHours = execBase * (1 + cfg.LSCStallFactor*parkedFrac)
	}
	if err != nil {
		return nil, err
	}
	res.RetryRisk, res.MeanLER = sim.results()
	res.Calibrations = sim.cals * sim.patchScale // gate weights already scale to the full patch
	obs.Default.Gauge("runtime.retry_risk." + strat.String()).Set(res.RetryRisk)
	obs.Default.Gauge("runtime.calibrations." + strat.String()).Set(res.Calibrations)
	return res, nil
}

// gateState is one simulated gate's drift process.
type gateState struct {
	drift    noise.Drift
	deadline float64 // hours from calibration to reach pTar
	last     float64 // last calibration time
	// weight is how many of the patch's real gates this sample represents.
	// The fastest drifters are sampled exactly (weight 1) via order
	// statistics, because coarse-grained calibration's failure mode is
	// driven by the worst-case tail; the bulk is represented by a smaller
	// weighted sample.
	weight float64
}

// tailExact is how many of a patch's fastest-drifting gates are drawn
// exactly from the order-statistic distribution.
const tailExact = 64

// simulator walks the program timeline for sampled patches under a policy.
type simulator struct {
	cfg        *Config
	r          *rng.RNG
	horizon    float64
	pTar       float64
	nPatches   int
	nGates     int
	gateScale  float64
	patchScale float64

	// risk accounting
	volPerStep float64 // spacetime volume attributed to one (patch, step) sample
	logSurvive float64
	lerSum     float64
	samples    int
	cals       float64
}

func newSimulator(cfg *Config, r *rng.RNG, horizon, pTar float64) *simulator {
	nPatches := cfg.SamplePatches
	if cfg.Prog.LogicalQubits < nPatches {
		nPatches = cfg.Prog.LogicalQubits
	}
	nGates := cfg.SampleGates
	if cfg.GatesPerPatch < nGates {
		nGates = cfg.GatesPerPatch
	}
	steps := math.Ceil(horizon / cfg.StepHours)
	vol := cfg.Prog.LogicalOps() * float64(cfg.D)
	return &simulator{
		cfg: cfg, r: r, horizon: horizon, pTar: pTar,
		nPatches: nPatches, nGates: nGates,
		gateScale:  float64(cfg.GatesPerPatch) / float64(nGates),
		patchScale: float64(cfg.Prog.LogicalQubits) / float64(nPatches),
		volPerStep: vol / (float64(nPatches) * steps),
	}
}

// policy drives calibration decisions for one patch.
type policy interface {
	// init is called once per patch after its gates are sampled; ctx
	// carries the optional obs tracer for calibration-group spans.
	init(ctx context.Context, s *simulator, gates []gateState)
	// step may calibrate gates (set gates[i].last, increment s.cals) at
	// time t.
	step(s *simulator, gates []gateState, t float64)
}

func (s *simulator) run(ctx context.Context, pol policy) error {
	mu, sigma := lnParams(s.cfg.Model)
	full := s.cfg.GatesPerPatch
	tail := tailExact
	if tail > full/2 || tail > s.nGates/2 {
		tail = 0 // small patches: plain sampling suffices
	}
	for p := 0; p < s.nPatches; p++ {
		gates := make([]gateState, s.nGates)
		for i := range gates {
			var td, w float64
			if i < tail {
				// The (i+1)-th smallest drift constant of the full patch,
				// via the uniform order-statistic quantile with jitter.
				q := (float64(i) + 0.2 + 0.6*s.r.Float64()) / float64(full+1)
				td = rng.LogNormInv(clampP(q), mu, sigma)
				w = 1
			} else {
				td = rng.LogNormInv(clampP(s.r.Float64()), mu, sigma)
				w = float64(full-tail) / float64(s.nGates-tail)
			}
			gates[i].drift = noise.Drift{P0: noise.InitialErrorRate, TDrift: td}
			gates[i].deadline = gates[i].drift.TimeToReach(s.pTar)
			gates[i].weight = w
		}
		if s.pTar == 0 { //lint:allow floateq pTar is exactly 0 only for the no-calibration strategy, an exact sentinel
			for i := range gates {
				gates[i].deadline = math.Inf(1)
			}
		}
		pol.init(ctx, s, gates)
		for t := 0.0; t < s.horizon; t += s.cfg.StepHours {
			if err := ctx.Err(); err != nil {
				return err
			}
			pol.step(s, gates, t)
			s.accumulate(gates, t)
		}
	}
	return nil
}

// accumulate folds the patch's instantaneous LER into the risk integral.
// Following the paper's evaluation methodology, the patch LER is the
// per-gate average of Eq. (4) — each gate contributes LER(d, p_g) in
// proportion to its share of the patch — rather than Eq. (4) at the average
// rate. Because the LER is steeply convex in p (exponent (d+1)/2), this
// per-gate accounting is dominated by the gates closest to (or beyond)
// p_tar: a single gate left drifting past the target under coarse-grained
// calibration multiplies the patch LER by (p_g/p_tar)^((d+1)/2), which is
// exactly the Fig. 13 sensitivity and the §8.1 separation between LSC and
// CaliQEC.
// hotSaturation bounds how far a single runaway gate can multiply its share
// of the patch LER beyond the at-target value: once a gate's local failure
// probability saturates its neighbourhood, further drift adds nothing. The
// three-decade bound reproduces the paper's Table 2 LSC risk magnitudes
// (e.g. Hubbard-10-10 d=25: ~11%).
const hotSaturation = 1e3

func (s *simulator) accumulate(gates []gateState, t float64) {
	lim := 1.0
	if s.pTar > 0 {
		lim = hotSaturation * s.cfg.LERModel.PerCycle(s.cfg.D, s.pTar)
	}
	sum, wsum, pm := 0.0, 0.0, 0.0
	for i := range gates {
		dt := t - gates[i].last
		if dt < 0 {
			dt = 0 // calibration completes later this step
		}
		p := gates[i].drift.At(dt)
		lg := s.cfg.LERModel.PerCycle(s.cfg.D, p)
		// The saturation bound models a decoder-blind hot spot in an
		// otherwise working code: local damage is capped.
		if lg > lim {
			lg = lim
		}
		w := gates[i].weight
		sum += w * lg
		pm += w * p
		wsum += w
	}
	// Patch LER: capped per-gate average (hot spots in a working code)
	// plus whole-patch failure when the average rate itself approaches
	// threshold (the no-calibration endgame), whichever dominates.
	l := sum / wsum
	if bulk := s.cfg.LERModel.PerCycle(s.cfg.D, pm/wsum); bulk > l {
		l = bulk
	}
	if l > 1-1e-12 {
		l = 1 - 1e-12
	}
	s.logSurvive += s.volPerStep * math.Log1p(-l)
	s.lerSum += l
	s.samples++
}

func (s *simulator) results() (risk, meanLER float64) {
	risk = 1 - math.Exp(s.logSurvive)
	if s.samples > 0 {
		meanLER = s.lerSum / float64(s.samples)
	}
	return
}

func clampP(u float64) float64 {
	if u < 1e-12 {
		return 1e-12
	}
	if u > 1-1e-12 {
		return 1 - 1e-12
	}
	return u
}

// policyNoCal never calibrates (Baseline 1).
type policyNoCal struct{}

func (policyNoCal) init(context.Context, *simulator, []gateState) {}
func (policyNoCal) step(*simulator, []gateState, float64)         {}

// policyCaliQEC calibrates each gate at its Algorithm-1 group period,
// in situ: no stalls, never exceeding p_tar.
type policyCaliQEC struct {
	pTar   float64
	period []float64
}

func newPolicyCaliQEC(pTar float64) *policyCaliQEC { return &policyCaliQEC{pTar: pTar} }

func (p *policyCaliQEC) init(ctx context.Context, s *simulator, gates []gateState) {
	p.period = make([]float64, len(gates))
	var due []sched.GateProfile
	for i := range gates {
		p.period[i] = math.Inf(1)
		if gates[i].deadline < s.horizon {
			due = append(due, sched.GateProfile{GateID: i, Drift: gates[i].drift})
		}
	}
	if len(due) == 0 {
		return
	}
	gr, err := sched.AssignGroups(due, p.pTar)
	if err != nil {
		// Degenerate grouping (e.g. a deadline of ~0): calibrate each gate
		// exactly at its own deadline.
		for _, g := range due {
			p.period[g.GateID] = gates[g.GateID].deadline
		}
		return
	}
	// One span per Algorithm-1 calibration group, in sorted-k order so the
	// trace is deterministic: the timeline shows which period multiples the
	// grouping chose and how many gates each absorbed.
	ks := make([]int, 0, len(gr.Groups))
	for k := range gr.Groups {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		_, gsp := obs.StartSpan(ctx, "runtime.group")
		gsp.SetAttr("k", k)
		gsp.SetAttr("gates", len(gr.Groups[k]))
		gsp.SetAttr("period_hours", float64(k)*gr.TCaliHours)
		gsp.End()
	}
	for id, k := range gr.Period {
		p.period[id] = float64(k) * gr.TCaliHours
	}
}

func (p *policyCaliQEC) step(s *simulator, gates []gateState, t float64) {
	for i := range gates {
		if t-gates[i].last >= p.period[i] {
			gates[i].last = t
			s.cals += gates[i].weight
		}
	}
}

// policyLSC is the coarse-grained baseline: calibrating any gate requires
// parking its whole logical patch (transfer out, calibrate, transfer back).
// Parks contend for the shared communication channels, so the per-patch
// park period is bounded below by channel capacity — the granularity
// mismatch of §8.1: gates whose drift deadline is shorter than the park
// period cyclically exceed p_tar between parks, inflating the retry risk,
// while the parks themselves stall execution.
type policyLSC struct {
	cfg         *Config
	pTar        float64
	period      float64 // capacity-limited minimum park period per patch
	nextPark    float64
	outageHours float64
	utilization float64
}

func newPolicyLSC(cfg *Config, pTar float64) *policyLSC {
	// Transfer channels: the doubled layout provides roughly one transfer
	// lane per 12 patches; stable queueing requires utilization ≤ 0.9.
	capacity := float64(cfg.Prog.LogicalQubits) / 12
	if capacity < 1 {
		capacity = 1
	}
	period := float64(cfg.Prog.LogicalQubits) * cfg.LSCOutageHours / (0.9 * capacity)
	if period < cfg.LSCLookaheadHours {
		period = cfg.LSCLookaheadHours
	}
	return &policyLSC{cfg: cfg, pTar: pTar, period: period, utilization: 0.9}
}

func (p *policyLSC) init(ctx context.Context, s *simulator, gates []gateState) { p.nextPark = 0 }

func (p *policyLSC) step(s *simulator, gates []gateState, t float64) {
	if t < p.nextPark {
		return
	}
	// Park only when some gate is due within the coming period.
	due := false
	for i := range gates {
		if gates[i].deadline < s.horizon && t+p.period-gates[i].last >= gates[i].deadline {
			due = true
			break
		}
	}
	if !due {
		p.nextPark = t + p.period
		return
	}
	// Residual queueing delay at ~90% utilization (M/M/1-ish residual).
	delay := p.cfg.LSCOutageHours * p.utilization / (1 - p.utilization) * s.r.Float64()
	tCal := t + delay
	// Coarse-grained batch: calibrate everything that would come due
	// before the next park.
	for i := range gates {
		if gates[i].deadline < s.horizon && tCal+p.period-gates[i].last >= gates[i].deadline {
			gates[i].last = tCal
			s.cals += gates[i].weight
		}
	}
	p.outageHours += p.cfg.LSCOutageHours + delay
	p.nextPark = tCal + p.period
}
