package deform

import (
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"caliqec/internal/rng"
	"testing"
	"testing/quick"
)

func squarePatch(t *testing.T, d int) *code.Patch {
	t.Helper()
	return code.NewPatch(lattice.NewSquare(d))
}

func hexPatch(t *testing.T, d int) *code.Patch {
	t.Helper()
	return code.NewPatch(lattice.NewHeavyHex(d))
}

func TestInstructionSetTable1(t *testing.T) {
	sq := InstructionSet(lattice.Square)
	if len(sq) != 4 {
		t.Errorf("square set has %d instructions, want 4 (Table 1)", len(sq))
	}
	hx := InstructionSet(lattice.HeavyHex)
	if len(hx) != 6 {
		t.Errorf("heavy-hex set has %d instructions, want 6 (Table 1)", len(hx))
	}
}

// TestDataQRMInterior removes a central data qubit on the square lattice:
// both bases must merge into super-stabilizers, the patch must stay a valid
// code, and the distance must drop by at most 1 per basis (Fig. 4a).
func TestDataQRMInterior(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *code.Patch{squarePatch, hexPatch} {
		p := mk(t, 5)
		kind := p.Lat.Kind
		q := p.Lat.DataID[[2]int{2, 2}]
		before := len(p.Checks)
		rec, err := Apply(p, DataQRM, q)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: deformed patch invalid: %v", kind, err)
		}
		// Two X checks merge to one, two Z checks merge to one: net -2.
		if got, want := len(p.Checks), before-2; got != want {
			t.Errorf("%v: %d checks after DataQ_RM, want %d", kind, got, want)
		}
		supers := 0
		for _, c := range p.Checks {
			if c.IsSuper() {
				supers++
			}
		}
		if supers != 2 {
			t.Errorf("%v: %d super-stabilizers, want 2", kind, supers)
		}
		if rec.DistanceX < 4 || rec.DistanceZ < 4 {
			t.Errorf("%v: distance after single DataQ_RM = (%d,%d), want ≥ 4", kind, rec.DistanceX, rec.DistanceZ)
		}
		if rec.DistanceX > 5 || rec.DistanceZ > 5 {
			t.Errorf("%v: distance grew? (%d,%d)", kind, rec.DistanceX, rec.DistanceZ)
		}
	}
}

// TestDataQRMOnLogical removes a qubit lying on both logical operators (the
// corner) — rerouting must keep valid anticommuting logicals.
func TestDataQRMOnLogical(t *testing.T) {
	p := squarePatch(t, 5)
	q := p.Lat.DataID[[2]int{0, 0}]
	if _, err := Apply(p, DataQRM, q); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("deformed patch invalid: %v", err)
	}
}

// TestSyndromeQRM removes a syndrome qubit on the square lattice: the
// stabilizer's data is measured out and surrounding opposite checks form a
// super-stabilizer around the hole (Fig. 4b).
func TestSyndromeQRM(t *testing.T) {
	p := squarePatch(t, 5)
	// Pick an interior plaquette's syndrome qubit.
	var syn int
	for _, pl := range p.Lat.Plaquettes {
		if pl.CellRow == 2 && pl.CellCol == 2 {
			syn = pl.Syndrome
		}
	}
	rec, err := Apply(p, SyndromeQRM, syn)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("deformed patch invalid: %v", err)
	}
	if len(rec.Removed) < 5 { // 4 data + the syndrome qubit
		t.Errorf("removed %v, want the stabilizer's 4 data + syndrome", rec.Removed)
	}
	if rec.DistanceX < 3 || rec.DistanceZ < 3 {
		t.Errorf("distance after SyndromeQ_RM = (%d,%d), want ≥ 3", rec.DistanceX, rec.DistanceZ)
	}
}

// TestAncQRMHorDeg2 removes a plaquette-private middle ancilla on the heavy
// hexagon: the stabilizer splits into two gauges and the west/east
// neighbours merge into a super-stabilizer (paper Fig. 8c).
func TestAncQRMHorDeg2(t *testing.T) {
	p := hexPatch(t, 5)
	// Find an interior plaquette's middle ancilla (RoleBridgeDeg2Hor).
	var mid int = -1
	for _, pl := range p.Lat.Plaquettes {
		if pl.CellRow == 2 && pl.CellCol == 2 && len(pl.Bridge) == 7 {
			mid = pl.Bridge[3]
		}
	}
	if mid < 0 {
		t.Fatal("no interior plaquette with full bridge found")
	}
	before := len(p.Checks)
	rec, err := Apply(p, AncQRMHorDeg2, mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("deformed patch invalid: %v", err)
	}
	// The split check keeps its identity (2 gauges); two neighbours merge
	// into one super: net -1 checks.
	if got, want := len(p.Checks), before-1; got != want {
		t.Errorf("%d checks, want %d", got, want)
	}
	var split, super *code.Check
	for _, c := range p.Checks {
		if len(c.Gauges) == 2 && len(c.Plaqs) == 1 {
			split = c
		}
		if len(c.Plaqs) == 2 {
			super = c
		}
	}
	if split == nil {
		t.Error("no check with two gauges (split stabilizer s0' · s0'')")
	} else {
		for _, g := range split.Gauges {
			if len(g.Data) != 2 {
				t.Errorf("split gauge has %d data qubits, want 2 (X_{1,2} / X_{3,4})", len(g.Data))
			}
		}
	}
	if super == nil {
		t.Error("no merged neighbour super-stabilizer (g2·g3)")
	} else if super.Basis == p.CheckByID(split.ID).Basis {
		t.Error("neighbour super-stabilizer has same basis as split check, want opposite")
	}
	if len(rec.Suspended) != 0 {
		t.Errorf("interior HorDeg2 suspended checks %v, want none", rec.Suspended)
	}
	_ = rec
}

// TestAncQRMVerDeg2 removes a shared segment-middle ancilla: BOTH plaquettes
// sharing the segment split, and the paper's X1·s0'·s1 / Z2·g1'·g2
// super-stabilizers emerge (Fig. 8d).
func TestAncQRMVerDeg2(t *testing.T) {
	p := hexPatch(t, 5)
	// The shared horizontal segment between interior cells (2,2) and (3,2):
	// take the north segment of cell (3,2)'s bridge (Bridge[1] = qb).
	var qb int = -1
	for _, pl := range p.Lat.Plaquettes {
		if pl.CellRow == 3 && pl.CellCol == 2 && len(pl.Bridge) == 7 {
			qb = pl.Bridge[1]
		}
	}
	if qb < 0 {
		t.Fatal("no interior shared segment found")
	}
	if got := p.Lat.Qubit(qb).Role; got != lattice.RoleBridgeDeg2Ver {
		t.Fatalf("Bridge[1] role = %v, want deg2v", got)
	}
	rec, err := Apply(p, AncQRMVerDeg2, qb)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("deformed patch invalid: %v", err)
	}
	// Expect: one X super with 3 gauges incl. a single-qubit gauge (X1),
	// one Z super with 3 gauges incl. a single-qubit gauge (Z2).
	var foundX, foundZ bool
	for _, c := range p.Checks {
		if len(c.Gauges) == 3 && len(c.Plaqs) == 2 {
			single := 0
			for _, g := range c.Gauges {
				if len(g.Data) == 1 {
					single++
				}
			}
			if single >= 1 {
				if c.Basis == lattice.BasisX {
					foundX = true
				} else {
					foundZ = true
				}
			}
		}
	}
	if !foundX || !foundZ {
		t.Errorf("expected X1·s0'·s1 and Z2·g1'·g2 supers (3 gauges, 2 plaquettes, a single-qubit gauge); foundX=%v foundZ=%v", foundX, foundZ)
	}
	if len(rec.Suspended) != 0 {
		t.Errorf("interior VerDeg2 suspended %v, want none", rec.Suspended)
	}
}

// TestAncQRMDeg3 removes a degree-3 ancilla: its attached data qubit drops
// out of the code as an isolated gauge qubit (Fig. 8e).
func TestAncQRMDeg3(t *testing.T) {
	p := hexPatch(t, 5)
	var qc, q2 int = -1, -1
	for _, pl := range p.Lat.Plaquettes {
		if pl.CellRow == 3 && pl.CellCol == 2 && len(pl.Bridge) == 7 {
			qc = pl.Bridge[2] // north segment's C ancilla (attached to NE data)
			q2 = pl.DataAttach[qc]
		}
	}
	if qc < 0 {
		t.Fatal("no interior deg-3 ancilla found")
	}
	rec, err := Apply(p, AncQRMDeg3, qc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("deformed patch invalid: %v", err)
	}
	removedData := false
	for _, q := range rec.Removed {
		if q == q2 {
			removedData = true
		}
	}
	if !removedData {
		t.Errorf("data qubit %d attached to removed deg-3 ancilla should leave the code; removed=%v", q2, rec.Removed)
	}
}

// TestPatchShrink removes a boundary data qubit (PatchQ_RM).
func TestPatchShrink(t *testing.T) {
	p := squarePatch(t, 5)
	q := p.Lat.DataID[[2]int{4, 2}] // south boundary, off the logicals
	rec, err := PatchShrink(p, []int{q}, lattice.BasisZ)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("deformed patch invalid: %v", err)
	}
	_ = rec
}

// TestIsolateThenReintegrate runs the full runtime cycle: isolate a region,
// verify structure, reintegrate, and verify the patch is pristine again.
func TestIsolateThenReintegrate(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *code.Patch{squarePatch, hexPatch} {
		p := mk(t, 5)
		kind := p.Lat.Kind
		d := NewDeformer(p)
		pristineChecks := len(p.Checks)
		q := p.Lat.DataID[[2]int{2, 2}]
		if _, err := d.IsolateRegion([]int{q}, "cal-g7"); err != nil {
			t.Fatalf("%v isolate: %v", kind, err)
		}
		if err := d.Patch.Validate(); err != nil {
			t.Fatalf("%v isolated patch invalid: %v", kind, err)
		}
		if err := d.Reintegrate("cal-g7"); err != nil {
			t.Fatalf("%v reintegrate: %v", kind, err)
		}
		if err := d.Patch.Validate(); err != nil {
			t.Fatalf("%v reintegrated patch invalid: %v", kind, err)
		}
		if len(d.Patch.Checks) != pristineChecks {
			t.Errorf("%v: %d checks after reintegration, want pristine %d", kind, len(d.Patch.Checks), pristineChecks)
		}
		if len(d.Patch.Removed) != 0 {
			t.Errorf("%v: removed set non-empty after reintegration: %v", kind, d.Patch.Removed)
		}
		if got := d.Patch.Distance(lattice.BasisX); got != 5 {
			t.Errorf("%v: distance %d after reintegration, want 5", kind, got)
		}
	}
}

// TestEnlargeRestoresDistance: isolating qubits costs distance; PatchQ_AD
// must bring it back (§8.2.1: "the code distance reduction Δd during
// calibration requires only a d+Δd expansion").
func TestEnlargeRestoresDistance(t *testing.T) {
	p := squarePatch(t, 5)
	d := NewDeformer(p)
	q := p.Lat.DataID[[2]int{2, 2}]
	if _, err := d.IsolateRegion([]int{q}, "cal"); err != nil {
		t.Fatal(err)
	}
	dx := d.Patch.Distance(lattice.BasisX)
	dz := d.Patch.Distance(lattice.BasisZ)
	if dx == 5 && dz == 5 {
		t.Fatalf("isolation cost no distance (dx=%d dz=%d); test needs a lossy isolation", dx, dz)
	}
	growRows := dx < 5
	if err := d.Enlarge(growRows); err != nil {
		t.Fatal(err)
	}
	if err := d.Patch.Validate(); err != nil {
		t.Fatalf("enlarged patch invalid: %v", err)
	}
	ndx, ndz := d.Patch.Distance(lattice.BasisX), d.Patch.Distance(lattice.BasisZ)
	if ndx < 5 && ndz < 5 {
		t.Errorf("enlargement did not restore distance: (%d,%d)", ndx, ndz)
	}
	// Reintegrate, then shrink back.
	if err := d.Reintegrate("cal"); err != nil {
		t.Fatal(err)
	}
	if err := d.Shrink(growRows); err != nil {
		t.Fatal(err)
	}
	if d.Patch.Lat.Rows != 5 || d.Patch.Lat.Cols != 5 {
		t.Errorf("patch is %d×%d after shrink, want 5×5", d.Patch.Lat.Rows, d.Patch.Lat.Cols)
	}
	if err := d.Patch.Validate(); err != nil {
		t.Fatalf("shrunk patch invalid: %v", err)
	}
}

// TestEveryInteriorQubitIsolatable: sweep all interior qubits on both
// lattices and verify each can be isolated leaving a valid code. This
// exercises every instruction in Table 1 across many geometric positions.
func TestEveryInteriorQubitIsolatable(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *code.Patch{squarePatch, hexPatch} {
		base := mk(t, 5)
		kind := base.Lat.Kind
		for _, qb := range base.Lat.Qubits {
			// Interior test region: coordinates within the middle.
			if qb.Row < 4 || qb.Row > 12 || qb.Col < 4 || qb.Col > 12 {
				continue
			}
			p := mk(t, 5)
			d := NewDeformer(p)
			rec, err := d.IsolateQubit(qb.ID, "sweep")
			if err != nil {
				t.Errorf("%v qubit %d (%v at %d,%d): %v", kind, qb.ID, qb.Role, qb.Row, qb.Col, err)
				continue
			}
			if err := p.Validate(); err != nil {
				t.Errorf("%v qubit %d (%v): invalid after isolation: %v", kind, qb.ID, qb.Role, err)
			}
			if rec.DistanceX < 3 || rec.DistanceZ < 3 {
				t.Errorf("%v qubit %d (%v): distance collapsed to (%d,%d)", kind, qb.ID, qb.Role, rec.DistanceX, rec.DistanceZ)
			}
		}
	}
}

// TestBoundaryQubitIsolatable: boundary isolation may suspend checks but
// must never produce an invalid code.
func TestBoundaryQubitIsolatable(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *code.Patch{squarePatch, hexPatch} {
		base := mk(t, 5)
		kind := base.Lat.Kind
		count := 0
		for _, qb := range base.Lat.Qubits {
			if qb.Row >= 4 && qb.Row <= 12 && qb.Col >= 4 && qb.Col <= 12 {
				continue // interior covered elsewhere
			}
			count++
			if count%3 != 0 {
				continue // sample a third of the boundary for speed
			}
			p := mk(t, 5)
			d := NewDeformer(p)
			if _, err := d.IsolateQubit(qb.ID, "sweep"); err != nil {
				t.Errorf("%v boundary qubit %d (%v at %d,%d): %v", kind, qb.ID, qb.Role, qb.Row, qb.Col, err)
				continue
			}
			if err := p.Validate(); err != nil {
				t.Errorf("%v boundary qubit %d (%v): invalid: %v", kind, qb.ID, qb.Role, err)
			}
		}
	}
}

// TestRandomIsolationSequences (property): random sequences of isolation
// instructions on random interior targets always leave a valid code, and
// reintegration always restores the pristine structure. This fuzzes the
// commutation-repair engine across instruction interleavings the explicit
// tests do not enumerate.
func TestRandomIsolationSequences(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		kind := lattice.Square
		if r.Bool() {
			kind = lattice.HeavyHex
		}
		var p *code.Patch
		if kind == lattice.Square {
			p = code.NewPatch(lattice.NewSquare(7))
		} else {
			p = code.NewPatch(lattice.NewHeavyHex(7))
		}
		pristineChecks := len(p.Checks)
		d := NewDeformer(p)
		// Pick 2-4 interior targets of any role.
		var interior []int
		for _, qb := range p.Lat.Qubits {
			if qb.Row >= 6 && qb.Row <= 18 && qb.Col >= 6 && qb.Col <= 18 {
				interior = append(interior, qb.ID)
			}
		}
		n := 2 + r.Intn(3)
		for i := 0; i < n; i++ {
			q := interior[r.Intn(len(interior))]
			if d.Patch.Removed[q] {
				continue
			}
			if _, err := d.IsolateQubit(q, "fuzz"); err != nil {
				// A rejected instruction (e.g. the isolation would sever
				// every bare logical route) must leave the patch intact —
				// the scheduler defers such calibrations.
				if err := d.Patch.Validate(); err != nil {
					t.Logf("seed %d: rejected isolation corrupted the patch: %v", seed, err)
					return false
				}
				continue
			}
			if err := d.Patch.Validate(); err != nil {
				t.Logf("seed %d: invalid after isolating %d: %v", seed, q, err)
				return false
			}
		}
		if err := d.Reintegrate("fuzz"); err != nil {
			t.Logf("seed %d: reintegrate: %v", seed, err)
			return false
		}
		if err := d.Patch.Validate(); err != nil {
			t.Logf("seed %d: invalid after reintegration: %v", seed, err)
			return false
		}
		return len(d.Patch.Checks) == pristineChecks && len(d.Patch.Removed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
