package deform

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"caliqec/internal/sim"
	"context"
	"testing"
)

// TestDeformedCircuitDeterministic is the gauge-fixing acid test: after an
// isolation instruction, individual gauge outcomes randomize round to round
// (crossing gauges anticommute) but every detector — built from gauge
// *products* — must remain deterministic and zero on a noiseless run.
func TestDeformedCircuitDeterministic(t *testing.T) {
	r := rng.New(11)
	cases := []struct {
		kind  lattice.Kind
		coord [2]int
	}{
		{lattice.Square, [2]int{2, 2}},
		{lattice.Square, [2]int{1, 2}},
		{lattice.HeavyHex, [2]int{2, 2}},
		{lattice.HeavyHex, [2]int{2, 1}},
	}
	for _, tc := range cases {
		for _, basis := range []lattice.Basis{lattice.BasisZ, lattice.BasisX} {
			var lat *lattice.Lattice
			if tc.kind == lattice.Square {
				lat = lattice.NewSquare(5)
			} else {
				lat = lattice.NewHeavyHex(5)
			}
			p := code.NewPatch(lat)
			d := NewDeformer(p)
			q := lat.DataID[tc.coord]
			if _, err := d.IsolateQubit(q, "t"); err != nil {
				t.Fatal(err)
			}
			c, err := d.Patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: basis})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 3; trial++ {
				res, err := sim.RunNoiseless(c, r)
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range res.Detectors {
					if v {
						t.Fatalf("%v data %v memory-%v: detector %d fired noiselessly after DataQ_RM",
							tc.kind, tc.coord, basis, i)
					}
				}
				if res.Observables[0] {
					t.Fatalf("%v data %v memory-%v: observable not deterministic after DataQ_RM",
						tc.kind, tc.coord, basis)
				}
			}
		}
	}
}

// TestDeformedAncillaCircuitDeterministic repeats the acid test for the
// heavy-hex ancilla-removal instructions (split gauges measured on
// sub-chains).
func TestDeformedAncillaCircuitDeterministic(t *testing.T) {
	r := rng.New(13)
	lat := lattice.NewHeavyHex(5)
	// Gather one target of each ancilla role from an interior plaquette.
	var targets []int
	for _, pl := range lat.Plaquettes {
		if pl.CellRow == 2 && pl.CellCol == 2 && len(pl.Bridge) == 7 {
			targets = append(targets, pl.Bridge[3], pl.Bridge[1], pl.Bridge[2])
		}
	}
	if len(targets) != 3 {
		t.Fatal("no interior full bridge found")
	}
	for _, target := range targets {
		p := code.NewPatch(lattice.NewHeavyHex(5))
		d := NewDeformer(p)
		role := p.Lat.Qubit(target).Role
		if _, err := d.IsolateQubit(target, "t"); err != nil {
			t.Fatalf("%v: %v", role, err)
		}
		for _, basis := range []lattice.Basis{lattice.BasisZ, lattice.BasisX} {
			c, err := d.Patch.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: basis})
			if err != nil {
				t.Fatalf("%v: %v", role, err)
			}
			res, err := sim.RunNoiseless(c, r)
			if err != nil {
				t.Fatalf("%v: %v", role, err)
			}
			for i, v := range res.Detectors {
				if v {
					t.Fatalf("%v memory-%v: detector %d fired noiselessly", role, basis, i)
				}
			}
			if res.Observables[0] {
				t.Fatalf("%v memory-%v: observable not deterministic", role, basis)
			}
		}
	}
}

// TestDeformedPatchDecodes: a deformed patch's noisy circuit must still
// produce a graph-like DEM and decode with finite logical error rate.
func TestDeformedPatchDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		var lat *lattice.Lattice
		if kind == lattice.Square {
			lat = lattice.NewSquare(3)
		} else {
			lat = lattice.NewHeavyHex(3)
		}
		p := code.NewPatch(lat)
		d := NewDeformer(p)
		q := lat.DataID[[2]int{1, 1}]
		if _, err := d.IsolateQubit(q, "t"); err != nil {
			t.Fatal(err)
		}
		c, err := d.Patch.MemoryCircuit(code.MemoryOptions{
			Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(1e-3),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Evaluate(context.Background(), mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind, Shots: 5000, Rounds: 3, RNG: rng.New(99),
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.LER > 0.3 {
			t.Errorf("%v: deformed d=3 patch LER=%.3g, decoding seems broken", kind, res.LER)
		}
		t.Logf("%v deformed d=3: %v", kind, res)
	}
}
