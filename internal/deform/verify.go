package deform

import (
	"fmt"
	"sort"

	"caliqec/internal/lattice"
)

// OpReintegrate is the pseudo-instruction a Deformer appends to History
// when a tagged group of isolations is reversed. It is not part of the
// paper's Table 1 instruction set (reintegration is the undo of RM
// instructions, not an instruction itself), so it is legal on every
// lattice kind but only meaningful in audit logs.
const OpReintegrate Op = "Reintegrate"

// IssueKind classifies a static log-legality violation.
type IssueKind uint8

// Issue kinds found by VerifyLog.
const (
	// IllegalOp: the instruction is not in the lattice kind's instruction
	// set (paper Table 1) — e.g. SyndromeQ_RM on a heavy hexagon.
	IllegalOp IssueKind = iota
	// DoubleIsolate: a removal targets a coordinate that an earlier,
	// not-yet-reintegrated instruction already took out of the code.
	DoubleIsolate
	// DanglingReintegrate: a reintegrate names a tag with no live
	// isolations.
	DanglingReintegrate
	// UnmatchedIsolate: the log ends with the coordinate still isolated —
	// its tag is never reintegrated. For a log that is supposed to
	// describe a completed calibration session this means qubits were
	// left out of the code.
	UnmatchedIsolate
)

func (k IssueKind) String() string {
	switch k {
	case IllegalOp:
		return "illegal-op"
	case DoubleIsolate:
		return "double-isolate"
	case DanglingReintegrate:
		return "dangling-reintegrate"
	case UnmatchedIsolate:
		return "unmatched-isolate"
	}
	return fmt.Sprintf("IssueKind(%d)", uint8(k))
}

// Issue is one legality violation in a deformation log.
type Issue struct {
	Kind  IssueKind
	Index int      // index into the verified log, -1 for end-of-log issues
	Entry LogEntry // the offending entry
	Msg   string
}

func (i Issue) String() string {
	if i.Index < 0 {
		return fmt.Sprintf("end of log: %s: %s", i.Kind, i.Msg)
	}
	return fmt.Sprintf("entry %d (%s): %s: %s", i.Index, i.Entry.Op, i.Kind, i.Msg)
}

// VerifyLog statically checks a deformation instruction log — typically a
// Deformer's History — for legality against a lattice kind, without
// touching a patch or running the simulator:
//
//   - every opcode must be in InstructionSet(kind) (or OpReintegrate);
//   - no instruction may remove a coordinate that is already isolated and
//     not yet reintegrated (the runtime refuses this too, but only when it
//     happens; here a planned log is checked up front);
//   - every reintegrate must name a tag with at least one live isolation;
//   - a completed log must leave no isolation live (every isolate's tag is
//     eventually reintegrated).
//
// Issues are returned in log order, end-of-log issues last. An empty
// result means the log is legal.
func VerifyLog(kind lattice.Kind, log []LogEntry) []Issue {
	legal := map[Op]bool{OpReintegrate: true}
	for _, op := range InstructionSet(kind) {
		legal[op] = true
	}
	type coord struct{ row, col int }
	live := map[coord]int{} // isolated coordinate -> log index of its removal
	var issues []Issue
	for i, e := range log {
		if !legal[e.Op] {
			issues = append(issues, Issue{
				Kind: IllegalOp, Index: i, Entry: e,
				Msg: fmt.Sprintf("%s is not in the %v instruction set", e.Op, kind),
			})
			continue
		}
		switch e.Op {
		case PatchQAD:
			// Enlargement targets no coordinate.
		case OpReintegrate:
			found := false
			for c, at := range live {
				if log[at].Tag == e.Tag {
					delete(live, c)
					found = true
				}
			}
			if !found {
				issues = append(issues, Issue{
					Kind: DanglingReintegrate, Index: i, Entry: e,
					Msg: fmt.Sprintf("no live isolation tagged %q", e.Tag),
				})
			}
		default:
			// All RM-family instructions (DataQ_RM, SyndromeQ_RM, the
			// AncQ_RM variants, single-coordinate PatchQ_RM) remove the
			// entry's coordinate. Row -1 marks a patch-level PatchQ_RM
			// (boundary rows/columns), which targets no single coordinate.
			if e.Row < 0 {
				break
			}
			c := coord{e.Row, e.Col}
			if prev, ok := live[c]; ok {
				issues = append(issues, Issue{
					Kind: DoubleIsolate, Index: i, Entry: e,
					Msg: fmt.Sprintf("qubit at (%d,%d) already isolated by entry %d (%s, tag %q)", e.Row, e.Col, prev, log[prev].Op, log[prev].Tag),
				})
				continue
			}
			live[c] = i
		}
	}
	// Deterministic order for end-of-log issues: by removal log index.
	var leftover []int
	for _, at := range live {
		leftover = append(leftover, at)
	}
	sort.Ints(leftover)
	for _, at := range leftover {
		e := log[at]
		issues = append(issues, Issue{
			Kind: UnmatchedIsolate, Index: -1, Entry: e,
			Msg: fmt.Sprintf("qubit at (%d,%d) isolated by entry %d (tag %q) is never reintegrated", e.Row, e.Col, at, e.Tag),
		})
	}
	return issues
}
