// Package deform implements the CaliQEC code-deformation instruction sets
// (paper §6, Table 1) for square and heavy-hexagon surface codes:
//
//	Square:     DataQ_RM, SyndromeQ_RM, PatchQ_RM, PatchQ_AD
//	Heavy-hex:  DataQ_RM, AncQ_RM_HorDeg2, AncQ_RM_VerDeg2, AncQ_RM_Deg3,
//	            PatchQ_RM, PatchQ_AD
//
// Every instruction mutates a *code.Patch. Internally they all reduce to
// one engine:
//
//  1. remove qubits — drop data qubits from gauge supports, split gauge
//     ancilla chains at removed ancillas (orphaned data, whose degree-3
//     attachment vanished, is removed recursively);
//  2. reroute logical operators off removed qubits by multiplying with
//     stabilizers;
//  3. repair commutation — a fixpoint that merges checks into
//     super-stabilizers until every check operator commutes with every
//     gauge. This reproduces the paper's explicit constructions (e.g.
//     AncQ_RM_VerDeg2's X1·s0'·s1 and Z2·g1'·g2 super-stabilizers) from
//     first principles, and code.Patch.Validate certifies the result.
//
// Checks that cannot be repaired by merging (which only happens against a
// patch boundary) are suspended — removed from the stabilizer set for the
// duration of the deformation at the cost of extra distance loss. This is
// a conservative over-approximation of the paper's boundary handling.
package deform

import (
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"caliqec/internal/pauli"
	"fmt"
)

// Op names a deformation instruction.
type Op string

// The instruction set (Table 1).
const (
	DataQRM       Op = "DataQ_RM"
	SyndromeQRM   Op = "SyndromeQ_RM"
	PatchQRM      Op = "PatchQ_RM"
	PatchQAD      Op = "PatchQ_AD"
	AncQRMHorDeg2 Op = "AncQ_RM_HorDeg2"
	AncQRMVerDeg2 Op = "AncQ_RM_VerDeg2"
	AncQRMDeg3    Op = "AncQ_RM_Deg3"
)

// InstructionSet returns the instructions available on a lattice kind
// (paper Table 1).
func InstructionSet(kind lattice.Kind) []Op {
	if kind == lattice.Square {
		return []Op{DataQRM, SyndromeQRM, PatchQRM, PatchQAD}
	}
	return []Op{DataQRM, AncQRMHorDeg2, AncQRMVerDeg2, AncQRMDeg3, PatchQRM, PatchQAD}
}

// Record describes one applied instruction.
type Record struct {
	Op      Op
	Target  int   // primary target qubit ID (-1 for PatchQ_AD)
	Removed []int // all qubits taken out of the code by this instruction
	// Suspended lists check IDs deleted because boundary geometry left no
	// merge partner (see package comment).
	Suspended []int
	// DistanceX/Z record the patch distances after the instruction.
	DistanceX, DistanceZ int
}

func (r Record) String() string {
	return fmt.Sprintf("%s(q%d): removed=%v dX=%d dZ=%d", r.Op, r.Target, r.Removed, r.DistanceX, r.DistanceZ)
}

// Apply dispatches an instruction targeting qubit q on patch p. The qubit's
// role must match the instruction (e.g. AncQ_RM_Deg3 needs a degree-3
// bridge ancilla). Apply is transactional: if the instruction cannot
// complete — for example, the isolation would sever every bare logical
// route — the patch is left exactly as it was and the error tells the
// scheduler to defer or re-plan that calibration.
func Apply(p *code.Patch, op Op, q int) (*Record, error) {
	snapshot := p.Clone()
	rec, err := applyInner(p, op, q)
	if err != nil {
		restorePatch(p, snapshot)
		return nil, err
	}
	return rec, nil
}

// restorePatch copies the snapshot's state back into p.
func restorePatch(p, snapshot *code.Patch) {
	*p = *snapshot
}

func applyInner(p *code.Patch, op Op, q int) (*Record, error) {
	role := p.Lat.Qubit(q).Role
	switch op {
	case DataQRM:
		if role != lattice.RoleData {
			return nil, fmt.Errorf("deform: %s target %d has role %v, want data", op, q, role)
		}
		return dataQRM(p, q)
	case SyndromeQRM:
		if p.Lat.Kind != lattice.Square || role != lattice.RoleSyndrome {
			return nil, fmt.Errorf("deform: %s needs a square-lattice syndrome qubit, got %v on %v", op, role, p.Lat.Kind)
		}
		return syndromeQRM(p, q)
	case AncQRMHorDeg2:
		if p.Lat.Kind != lattice.HeavyHex || role != lattice.RoleBridgeDeg2Hor {
			return nil, fmt.Errorf("deform: %s needs a heavy-hex horizontal degree-2 ancilla, got %v on %v", op, role, p.Lat.Kind)
		}
		return ancQRM(p, op, q)
	case AncQRMVerDeg2:
		if p.Lat.Kind != lattice.HeavyHex || role != lattice.RoleBridgeDeg2Ver {
			return nil, fmt.Errorf("deform: %s needs a heavy-hex vertical degree-2 ancilla, got %v on %v", op, role, p.Lat.Kind)
		}
		return ancQRM(p, op, q)
	case AncQRMDeg3:
		if p.Lat.Kind != lattice.HeavyHex || role != lattice.RoleBridgeDeg3 {
			return nil, fmt.Errorf("deform: %s needs a heavy-hex degree-3 ancilla, got %v on %v", op, role, p.Lat.Kind)
		}
		return ancQRM(p, op, q)
	default:
		return nil, fmt.Errorf("deform: Apply does not handle %s (use the dedicated entry point)", op)
	}
}

// dataQRM removes a single data qubit (paper Fig. 4a): the checks
// containing it become super-stabilizers excluding it.
func dataQRM(p *code.Patch, q int) (*Record, error) {
	rec := &Record{Op: DataQRM, Target: q}
	eng := engine{p: p, rec: rec}
	if err := eng.removeData(q); err != nil {
		return nil, err
	}
	if err := eng.finish(); err != nil {
		return nil, err
	}
	return rec, nil
}

// syndromeQRM removes a square-lattice syndrome qubit (paper Fig. 4b): the
// data qubits of its stabilizer are measured in the stabilizer basis and
// leave the code; surrounding opposite-basis checks merge around the hole.
func syndromeQRM(p *code.Patch, s int) (*Record, error) {
	var owner *code.Check
	for _, c := range p.Checks {
		for _, g := range c.Gauges {
			for _, a := range g.Chain {
				if a == s {
					owner = c
				}
			}
		}
	}
	rec := &Record{Op: SyndromeQRM, Target: s}
	eng := engine{p: p, rec: rec}
	if owner == nil {
		// The ancilla's check was already dismantled by earlier
		// instructions (e.g. its data qubits left the code): removing it
		// is structurally trivial.
		eng.markRemoved(s)
		if err := eng.finish(); err != nil {
			return nil, err
		}
		return rec, nil
	}
	support := owner.Support()
	p.RemoveCheck(owner.ID)
	eng.markRemoved(s)
	for _, q := range support {
		if err := eng.removeData(q); err != nil {
			return nil, err
		}
	}
	if err := eng.finish(); err != nil {
		return nil, err
	}
	return rec, nil
}

// ancQRM removes a heavy-hex bridge ancilla, splitting every gauge whose
// chain passes through it; data orphaned by a lost degree-3 attachment is
// removed from the code (the paper's isolated-gauge-qubit rule in
// AncQ_RM_Deg3).
func ancQRM(p *code.Patch, op Op, a int) (*Record, error) {
	rec := &Record{Op: op, Target: a}
	eng := engine{p: p, rec: rec}
	orphans, err := eng.splitChainsAt(a)
	if err == errAncillaUnused {
		// Already detached by earlier instructions: trivial removal.
		eng.markRemoved(a)
		if err := eng.finish(); err != nil {
			return nil, err
		}
		return rec, nil
	}
	if err != nil {
		return nil, err
	}
	for _, q := range orphans {
		if err := eng.removeData(q); err != nil {
			return nil, err
		}
	}
	if err := eng.finish(); err != nil {
		return nil, err
	}
	return rec, nil
}

// PatchShrink removes a set of boundary data qubits (PatchQ_RM, Fig. 4c),
// measuring them in the given basis. Like Apply, it is transactional.
func PatchShrink(p *code.Patch, qubits []int, basis lattice.Basis) (*Record, error) {
	snapshot := p.Clone()
	rec, err := patchShrinkInner(p, qubits, basis)
	if err != nil {
		restorePatch(p, snapshot)
		return nil, err
	}
	return rec, nil
}

func patchShrinkInner(p *code.Patch, qubits []int, basis lattice.Basis) (*Record, error) {
	rec := &Record{Op: PatchQRM, Target: -1}
	eng := engine{p: p, rec: rec}
	for _, q := range qubits {
		if p.Lat.Qubit(q).Role != lattice.RoleData {
			return nil, fmt.Errorf("deform: PatchQ_RM target %d is not a data qubit", q)
		}
		if err := eng.removeData(q); err != nil {
			return nil, err
		}
	}
	_ = basis // the measurement basis matters for the runtime transition, not the structure
	if err := eng.finish(); err != nil {
		return nil, err
	}
	return rec, nil
}

// errAncillaUnused reports that an ancilla removal found no gauge chain to
// split (the ancilla was already detached by earlier instructions).
var errAncillaUnused = fmt.Errorf("deform: ancilla is in no gauge chain")

// engine is the shared instruction-application machinery.
type engine struct {
	p   *code.Patch
	rec *Record
}

func (e *engine) markRemoved(q int) {
	if !e.p.Removed[q] {
		e.p.Removed[q] = true
		e.rec.Removed = append(e.rec.Removed, q)
	}
}

// removeData takes data qubit q out of the code: drops it from every gauge
// support and attachment, and removes now-empty gauges. Logical operators
// are recomputed once, in finish.
func (e *engine) removeData(q int) error {
	if e.p.Removed[q] {
		return nil
	}
	e.markRemoved(q)
	for _, c := range e.p.Checks {
		for _, g := range c.Gauges {
			out := g.Data[:0]
			for _, d := range g.Data {
				if d != q {
					out = append(out, d)
				}
			}
			g.Data = out
			for a, d := range g.Attach {
				if d == q {
					delete(g.Attach, a)
				}
			}
		}
	}
	e.pruneEmpty()
	return nil
}

// splitChainsAt removes ancilla a from the lattice and splits every gauge
// whose chain contains it into the left and right sub-chains. It returns
// data qubits orphaned by losing their degree-3 attachment.
func (e *engine) splitChainsAt(a int) ([]int, error) {
	e.markRemoved(a)
	var orphans []int
	touched := false
	for _, c := range e.p.Checks {
		var newGauges []*code.Gauge
		for _, g := range c.Gauges {
			idx := -1
			for i, x := range g.Chain {
				if x == a {
					idx = i
					break
				}
			}
			if idx < 0 {
				newGauges = append(newGauges, g)
				continue
			}
			touched = true
			if d, ok := g.Attach[a]; ok {
				// The ancilla attached a data qubit: that data qubit loses
				// its coupling into this gauge entirely.
				orphans = append(orphans, d)
			}
			for _, part := range [][]int{g.Chain[:idx], g.Chain[idx+1:]} {
				if len(part) == 0 {
					continue
				}
				ng := &code.Gauge{Chain: append([]int(nil), part...), Attach: map[int]int{}}
				for _, anc := range part {
					if d, ok := g.Attach[anc]; ok {
						ng.Attach[anc] = d
						ng.Data = append(ng.Data, d)
					}
				}
				if len(ng.Data) > 0 {
					newGauges = append(newGauges, ng)
				}
			}
		}
		c.Gauges = newGauges
	}
	if !touched {
		return nil, errAncillaUnused
	}
	e.pruneEmpty()
	return orphans, nil
}

// pruneEmpty deletes checks whose operator became empty.
func (e *engine) pruneEmpty() {
	out := e.p.Checks[:0]
	for _, c := range e.p.Checks {
		keep := false
		for _, g := range c.Gauges {
			if len(g.Data) > 0 {
				keep = true
			}
		}
		if keep {
			// Also drop empty gauges inside kept checks.
			gs := c.Gauges[:0]
			for _, g := range c.Gauges {
				if len(g.Data) > 0 {
					gs = append(gs, g)
				}
			}
			c.Gauges = gs
			out = append(out, c)
		}
	}
	e.p.Checks = out
}

// finish runs the commutation-repair fixpoint, recomputes any logical
// operator that lost a support qubit, and records distances.
func (e *engine) finish() error {
	if err := e.repair(); err != nil {
		return err
	}
	for _, basis := range []lattice.Basis{lattice.BasisX, lattice.BasisZ} {
		support := &e.p.LogicalZ
		if basis == lattice.BasisX {
			support = &e.p.LogicalX
		}
		dirty := false
		for _, q := range *support {
			if e.p.Removed[q] {
				dirty = true
				break
			}
		}
		if !dirty {
			continue
		}
		path, err := e.gaugePathLogical(basis)
		if err != nil {
			return err
		}
		*support = path
	}
	e.rec.DistanceX = e.p.Distance(lattice.BasisX)
	e.rec.DistanceZ = e.p.Distance(lattice.BasisZ)
	return nil
}

// gaugePathLogical finds a bare logical operator of the given basis on the
// deformed patch: a boundary-to-boundary chain of data qubits in which
// consecutive qubits share a *gauge* of the opposite basis. Sharing a gauge
// (not merely a check) makes the chain commute with the whole gauge group,
// so it remains a deterministic observable under gauge fixing — it routes
// around super-stabilizer holes rather than through them.
func (e *engine) gaugePathLogical(basis lattice.Basis) ([]int, error) {
	gaugeBasis := lattice.BasisX // gauges that must see even overlap
	if basis == lattice.BasisX {
		gaugeBasis = lattice.BasisZ
	}
	// Collect opposite-basis gauges as nodes.
	type gnode struct{ data map[int]bool }
	var nodes []gnode
	for _, c := range e.p.Checks {
		if c.Basis != gaugeBasis {
			continue
		}
		for _, g := range c.Gauges {
			set := map[int]bool{}
			for _, q := range g.Data {
				set[q] = true
			}
			nodes = append(nodes, gnode{set})
		}
	}
	bndA, bndB := len(nodes), len(nodes)+1
	n := len(nodes) + 2
	// For each active data qubit, an edge between the gauges containing it.
	// Only qubits on the true patch boundary may terminate the logical: a
	// bare logical cannot end at an interior hole (the hole-edge gauge
	// would anticommute). Misassigning hole-adjacent qubits to a virtual
	// boundary can manufacture homologically trivial "logicals" that fail
	// to anticommute with the conjugate logical.
	lat := e.p.Lat
	side := func(q int) (int, bool) {
		qb := lat.Qubit(q)
		if basis == lattice.BasisZ {
			switch qb.Col {
			case 0:
				return bndA, true
			case 4 * (lat.Cols - 1):
				return bndB, true
			}
			return 0, false
		}
		switch qb.Row {
		case 0:
			return bndA, true
		case 4 * (lat.Rows - 1):
			return bndB, true
		}
		return 0, false
	}
	type edge struct{ to, qubit int }
	adj := make([][]edge, n)
	addEdge := func(a, b, q int) {
		adj[a] = append(adj[a], edge{b, q})
		adj[b] = append(adj[b], edge{a, q})
	}
	_, dataIDs := e.p.DataIndex()
	for _, q := range dataIDs {
		var in []int
		for i, nd := range nodes {
			if nd.data[q] {
				in = append(in, i)
			}
		}
		switch len(in) {
		case 2:
			addEdge(in[0], in[1], q)
		case 1:
			if b, ok := side(q); ok {
				addEdge(in[0], b, q)
			}
		}
	}
	// BFS from boundary A to B; reconstruct the qubits along the path.
	parent := make([]int, n)
	via := make([]int, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[bndA] = -1
	queue := []int{bndA}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == bndB {
			var path []int
			for x := v; parent[x] >= -1 && x != bndA; x = parent[x] {
				path = append(path, via[x])
			}
			return path, nil
		}
		for _, ed := range adj[v] {
			if parent[ed.to] == -2 {
				parent[ed.to] = v
				via[ed.to] = ed.qubit
				queue = append(queue, ed.to)
			}
		}
	}
	return nil, fmt.Errorf("deform: no bare logical %v survives the deformation", basis)
}

// repair merges checks into super-stabilizers until every check operator
// commutes with every gauge of every other check. Checks at the patch
// boundary with no merge partner are suspended.
func (e *engine) repair() error {
	for iter := 0; iter < 64; iter++ {
		offender := e.findOffender()
		if offender == nil {
			return nil
		}
		// Merge all same-basis checks that anticommute with any gauge of
		// another check into one super-stabilizer.
		group := e.anticommutingGroup(offender.Basis)
		if len(group) >= 2 {
			e.merge(group)
			continue
		}
		// No merge partner (patch boundary): suspend the lightest offender
		// across both bases to minimize the resulting distance loss.
		worst := offender
		for _, basis := range []lattice.Basis{lattice.BasisX, lattice.BasisZ} {
			for _, c := range e.anticommutingGroup(basis) {
				if c.Operator().Weight() < worst.Operator().Weight() {
					worst = c
				}
			}
		}
		e.rec.Suspended = append(e.rec.Suspended, worst.ID)
		e.p.RemoveCheck(worst.ID)
	}
	return fmt.Errorf("deform: commutation repair did not converge")
}

// findOffender returns a check whose operator anticommutes with some gauge
// of a different check, or nil.
func (e *engine) findOffender() *code.Check {
	type gaugeRec struct {
		owner int
		op    *pauli.String
	}
	var gauges []gaugeRec
	for _, c := range e.p.Checks {
		pl := pauli.Z
		if c.Basis == lattice.BasisX {
			pl = pauli.X
		}
		for _, g := range c.Gauges {
			gauges = append(gauges, gaugeRec{c.ID, pauli.FromSupport(pl, g.Data...)})
		}
	}
	for _, c := range e.p.Checks {
		op := c.Operator()
		for _, g := range gauges {
			if g.owner == c.ID {
				continue
			}
			if !op.Commutes(g.op) {
				return c
			}
		}
	}
	return nil
}

// anticommutingGroup returns all checks of the given basis whose operator
// anticommutes with at least one gauge of another check.
func (e *engine) anticommutingGroup(basis lattice.Basis) []*code.Check {
	var out []*code.Check
	for _, c := range e.p.Checks {
		if c.Basis != basis {
			continue
		}
		op := c.Operator()
		anti := false
	scan:
		for _, o := range e.p.Checks {
			if o.ID == c.ID {
				continue
			}
			pl := pauli.Z
			if o.Basis == lattice.BasisX {
				pl = pauli.X
			}
			for _, g := range o.Gauges {
				if !op.Commutes(pauli.FromSupport(pl, g.Data...)) {
					anti = true
					break scan
				}
			}
		}
		if anti {
			out = append(out, c)
		}
	}
	return out
}

// merge folds group[1:] into group[0].
func (e *engine) merge(group []*code.Check) {
	dst := group[0]
	for _, src := range group[1:] {
		dst.Gauges = append(dst.Gauges, src.Gauges...)
		dst.Plaqs = append(dst.Plaqs, src.Plaqs...)
		e.p.RemoveCheck(src.ID)
	}
}
