package deform

import (
	"testing"

	"caliqec/internal/code"
	"caliqec/internal/lattice"
)

func kinds(issues []Issue) []IssueKind {
	out := make([]IssueKind, len(issues))
	for i, is := range issues {
		out[i] = is.Kind
	}
	return out
}

func wantKinds(t *testing.T, issues []Issue, want ...IssueKind) {
	t.Helper()
	got := kinds(issues)
	if len(got) != len(want) {
		t.Fatalf("got %d issue(s) %v, want %d %v\nissues: %v", len(got), got, len(want), want, issues)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("issue %d: got %v, want %v\nissues: %v", i, got[i], want[i], issues)
		}
	}
}

func TestVerifyLogEmptyAndLegal(t *testing.T) {
	wantKinds(t, VerifyLog(lattice.Square, nil))
	wantKinds(t, VerifyLog(lattice.Square, []LogEntry{
		{Op: DataQRM, Row: 2, Col: 2, Tag: "cal"},
		{Op: SyndromeQRM, Row: 3, Col: 1, Tag: "cal"},
		{Op: PatchQAD, Row: -1, Col: -1},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "cal"},
		{Op: PatchQRM, Row: -1, Col: -1}, // patch-level shrink marker
	}))
}

func TestVerifyLogDoubleIsolate(t *testing.T) {
	issues := VerifyLog(lattice.Square, []LogEntry{
		{Op: DataQRM, Row: 2, Col: 2, Tag: "a"},
		{Op: DataQRM, Row: 2, Col: 2, Tag: "b"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "a"},
	})
	// The second removal of (2,2) is a double isolation; reintegrating "a"
	// then clears the live entry, so nothing is left unmatched.
	wantKinds(t, issues, DoubleIsolate)
	if issues[0].Index != 1 {
		t.Errorf("double-isolate reported at log index %d, want 1", issues[0].Index)
	}
}

func TestVerifyLogIllegalOpForLattice(t *testing.T) {
	// SyndromeQ_RM is square-only: heavy hexagons isolate measurement
	// ancillas with the AncQ_RM family (paper Table 1).
	issues := VerifyLog(lattice.HeavyHex, []LogEntry{
		{Op: SyndromeQRM, Row: 3, Col: 1, Tag: "a"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "a"},
	})
	// The illegal op never enters the live set, so the reintegrate that
	// names its tag dangles too.
	wantKinds(t, issues, IllegalOp, DanglingReintegrate)

	// The same ancilla isolation phrased for the right lattice is clean.
	wantKinds(t, VerifyLog(lattice.HeavyHex, []LogEntry{
		{Op: AncQRMDeg3, Row: 3, Col: 1, Tag: "a"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "a"},
	}))

	// And AncQ_RM instructions are in turn illegal on the square lattice.
	wantKinds(t, VerifyLog(lattice.Square, []LogEntry{
		{Op: AncQRMHorDeg2, Row: 1, Col: 2, Tag: "a"},
	}), IllegalOp)
}

func TestVerifyLogDanglingReintegrate(t *testing.T) {
	issues := VerifyLog(lattice.Square, []LogEntry{
		{Op: DataQRM, Row: 2, Col: 2, Tag: "a"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "b"},
	})
	wantKinds(t, issues, DanglingReintegrate, UnmatchedIsolate)
	if issues[1].Index != -1 {
		t.Errorf("unmatched-isolate Index = %d, want -1 (end-of-log issue)", issues[1].Index)
	}

	// Reintegrating the same tag twice: the second pass finds nothing live.
	wantKinds(t, VerifyLog(lattice.Square, []LogEntry{
		{Op: DataQRM, Row: 2, Col: 2, Tag: "a"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "a"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "a"},
	}), DanglingReintegrate)
}

func TestVerifyLogUnmatchedIsolateOrder(t *testing.T) {
	issues := VerifyLog(lattice.Square, []LogEntry{
		{Op: DataQRM, Row: 2, Col: 2, Tag: "a"},
		{Op: DataQRM, Row: 4, Col: 4, Tag: "b"},
	})
	wantKinds(t, issues, UnmatchedIsolate, UnmatchedIsolate)
	// End-of-log issues come in removal order for deterministic output.
	if issues[0].Entry.Row != 2 || issues[1].Entry.Row != 4 {
		t.Errorf("unmatched issues out of removal order: %v", issues)
	}
}

// TestVerifyLogReisolationAfterReintegrate: once a tag is reintegrated its
// coordinates are free again, so a later removal of the same qubit is legal.
func TestVerifyLogReisolationAfterReintegrate(t *testing.T) {
	wantKinds(t, VerifyLog(lattice.Square, []LogEntry{
		{Op: DataQRM, Row: 2, Col: 2, Tag: "a"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "a"},
		{Op: DataQRM, Row: 2, Col: 2, Tag: "b"},
		{Op: OpReintegrate, Row: -1, Col: -1, Tag: "b"},
	}))
}

// TestDeformerHistory runs a real isolate→enlarge→reintegrate→shrink session
// and checks that the audit History survives rebuilds (which rewrite Log)
// and verifies clean.
func TestDeformerHistory(t *testing.T) {
	for _, kind := range []lattice.Kind{lattice.Square, lattice.HeavyHex} {
		var lat *lattice.Lattice
		if kind == lattice.Square {
			lat = lattice.NewSquareRect(3, 3)
		} else {
			lat = lattice.NewHeavyHexRect(3, 3)
		}
		df := NewDeformer(code.NewPatch(lat))
		q := lat.DataID[[2]int{1, 1}]
		if _, err := df.IsolateQubit(q, "cal"); err != nil {
			t.Fatalf("%v: isolate: %v", kind, err)
		}
		if err := df.Enlarge(true); err != nil {
			t.Fatalf("%v: enlarge: %v", kind, err)
		}
		if err := df.Reintegrate("cal"); err != nil {
			t.Fatalf("%v: reintegrate: %v", kind, err)
		}
		if err := df.Shrink(true); err != nil {
			t.Fatalf("%v: shrink: %v", kind, err)
		}
		want := []Op{DataQRM, PatchQAD, OpReintegrate, PatchQRM}
		if len(df.History) != len(want) {
			t.Fatalf("%v: history has %d entries %v, want %d", kind, len(df.History), df.History, len(want))
		}
		for i, op := range want {
			if df.History[i].Op != op {
				t.Errorf("%v: history[%d].Op = %s, want %s", kind, i, df.History[i].Op, op)
			}
		}
		if issues := VerifyLog(kind, df.History); len(issues) != 0 {
			t.Errorf("%v: session history not clean: %v", kind, issues)
		}
		// Log, by contrast, was rewritten by the rebuilds: after full
		// reintegration and shrink it carries no live removals.
		if issues := VerifyLog(kind, df.Log); len(issues) != 0 {
			t.Errorf("%v: replay log not clean: %v", kind, issues)
		}
	}
}

// TestDeformerHistoryRecordsRuntimeRefusal: the runtime's own double-isolate
// refusal means an offending instruction never reaches History, so a History
// produced through the Deformer API verifies clean by construction.
func TestDeformerHistoryRecordsRuntimeRefusal(t *testing.T) {
	lat := lattice.NewSquareRect(3, 3)
	df := NewDeformer(code.NewPatch(lat))
	q := lat.DataID[[2]int{1, 1}]
	if _, err := df.IsolateQubit(q, "a"); err != nil {
		t.Fatalf("isolate: %v", err)
	}
	if _, err := df.IsolateQubit(q, "b"); err == nil {
		t.Fatal("second isolate of the same qubit should fail at runtime")
	}
	if n := len(df.History); n != 1 {
		t.Fatalf("refused instruction leaked into History: %v", df.History)
	}
	if err := df.Reintegrate("a"); err != nil {
		t.Fatalf("reintegrate: %v", err)
	}
	if issues := VerifyLog(lattice.Square, df.History); len(issues) != 0 {
		t.Errorf("history not clean: %v", issues)
	}
}
