package deform

import (
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"fmt"
)

// LogEntry is one instruction in a Deformer's replayable log. Targets are
// stored as lattice coordinates (stable across patch enlargement, which
// rebuilds the lattice) rather than qubit IDs.
type LogEntry struct {
	Op       Op
	Row, Col int           // target qubit coordinate (PatchQ_RM: one entry per qubit)
	Basis    lattice.Basis // PatchQ_RM measurement basis
	Tag      string        // caller label, e.g. the calibration task this isolates for
}

// Deformer owns a patch plus the instruction log that produced it from a
// pristine code, enabling patch enlargement (PatchQ_AD rebuilds the lattice
// and replays the log) and reintegration (drop log entries and replay).
type Deformer struct {
	Patch *code.Patch
	Log   []LogEntry
	// Records mirrors Log with the outcome of each instruction.
	Records []Record
	// History is the append-only audit trail of every instruction ever
	// issued, including OpReintegrate markers that Log drops when it is
	// replayed. Unlike Log it is never rewritten by rebuilds, so
	// VerifyLog can statically check a whole deformation session for
	// legality (double isolation, dangling reintegrates, ops illegal on
	// the lattice kind) without running the simulator.
	History []LogEntry
}

// NewDeformer wraps a pristine patch.
func NewDeformer(p *code.Patch) *Deformer {
	return &Deformer{Patch: p}
}

// QubitAt resolves a coordinate to the qubit ID on the current lattice.
// Coordinates are stable across Enlarge/Shrink rebuilds (south/east growth
// only), so callers holding qubits from an earlier lattice can re-resolve
// them by coordinate.
func (d *Deformer) QubitAt(row, col int) (int, error) {
	for _, q := range d.Patch.Lat.Qubits {
		if q.Row == row && q.Col == col {
			return q.ID, nil
		}
	}
	return -1, fmt.Errorf("deform: no qubit at (%d,%d)", row, col)
}

func (d *Deformer) qubitAt(row, col int) (int, error) { return d.QubitAt(row, col) }

// ApplyQubit applies op to qubit ID q and appends it to the log.
func (d *Deformer) ApplyQubit(op Op, q int, tag string) (*Record, error) {
	rec, err := Apply(d.Patch, op, q)
	if err != nil {
		return nil, err
	}
	qb := d.Patch.Lat.Qubit(q)
	e := LogEntry{Op: op, Row: qb.Row, Col: qb.Col, Tag: tag}
	d.Log = append(d.Log, e)
	d.History = append(d.History, e)
	d.Records = append(d.Records, *rec)
	return rec, nil
}

// IsolateQubit applies the role-appropriate removal instruction to qubit q:
// the fine-grained isolation primitive of the CaliQEC runtime. The mapping
// follows Table 1: data qubits use DataQ_RM on both lattices; measurement
// ancillas use SyndromeQ_RM on the square lattice and the AncQ_RM family on
// the heavy hexagon.
func (d *Deformer) IsolateQubit(q int, tag string) (*Record, error) {
	if d.Patch.Removed[q] {
		return nil, fmt.Errorf("deform: qubit %d already isolated", q)
	}
	var op Op
	switch d.Patch.Lat.Qubit(q).Role {
	case lattice.RoleData:
		op = DataQRM
	case lattice.RoleSyndrome:
		op = SyndromeQRM
	case lattice.RoleBridgeDeg2Hor:
		op = AncQRMHorDeg2
	case lattice.RoleBridgeDeg2Ver:
		op = AncQRMVerDeg2
	case lattice.RoleBridgeDeg3:
		op = AncQRMDeg3
	default:
		return nil, fmt.Errorf("deform: qubit %d has unknown role", q)
	}
	return d.ApplyQubit(op, q, tag)
}

// IsolateRegion isolates a set of qubits (a calibrating gate's qubits plus
// its crosstalk neighbourhood nbr(g), per paper §4). Qubits already removed
// by earlier instructions in the region are skipped. It returns the records
// of the instructions actually applied.
func (d *Deformer) IsolateRegion(qubits []int, tag string) ([]Record, error) {
	var recs []Record
	for _, q := range qubits {
		if d.Patch.Removed[q] {
			continue
		}
		r, err := d.IsolateQubit(q, tag)
		if err != nil {
			return recs, err
		}
		recs = append(recs, *r)
	}
	return recs, nil
}

// Reintegrate reverses every instruction tagged tag: the isolated qubits
// are reset to |0>/|+> and the original stabilizers measured again (paper
// §2.2). Structurally this rebuilds the patch from a pristine code and
// replays the remaining log.
func (d *Deformer) Reintegrate(tag string) error {
	var keep []LogEntry
	found := false
	for _, e := range d.Log {
		if e.Tag == tag {
			found = true
			continue
		}
		keep = append(keep, e)
	}
	if !found {
		return fmt.Errorf("deform: no instructions tagged %q", tag)
	}
	if err := d.rebuild(d.Patch.Lat.Rows, d.Patch.Lat.Cols, keep); err != nil {
		return err
	}
	d.History = append(d.History, LogEntry{Op: OpReintegrate, Row: -1, Col: -1, Tag: tag})
	return nil
}

// Enlarge applies PatchQ_AD along one dimension: the patch grows by two
// data rows (growRows) or two data columns, restoring distance lost to
// isolation. The lattice is rebuilt and the log replayed at the new size.
func (d *Deformer) Enlarge(growRows bool) error {
	rows, cols := d.Patch.Lat.Rows, d.Patch.Lat.Cols
	if growRows {
		rows += 2
	} else {
		cols += 2
	}
	log := append([]LogEntry(nil), d.Log...)
	if err := d.rebuild(rows, cols, log); err != nil {
		return err
	}
	d.Log = append(d.Log, LogEntry{Op: PatchQAD, Row: -1, Col: -1})
	d.History = append(d.History, LogEntry{Op: PatchQAD, Row: -1, Col: -1})
	d.Records = append(d.Records, Record{
		Op: PatchQAD, Target: -1,
		DistanceX: d.Patch.Distance(lattice.BasisX),
		DistanceZ: d.Patch.Distance(lattice.BasisZ),
	})
	return nil
}

// Shrink reverses one Enlarge (PatchQ_RM of the added boundary rows or
// columns), used when reintegration makes the extra distance unnecessary.
func (d *Deformer) Shrink(shrinkRows bool) error {
	rows, cols := d.Patch.Lat.Rows, d.Patch.Lat.Cols
	if shrinkRows {
		rows -= 2
	} else {
		cols -= 2
	}
	if rows < 3 || cols < 3 {
		return fmt.Errorf("deform: cannot shrink below 3×3 (have %d×%d)", rows, cols)
	}
	// Entries whose coordinates fall outside the smaller lattice cannot be
	// replayed; they must have been reintegrated first.
	for _, e := range d.Log {
		if e.Op == PatchQAD {
			continue
		}
		if e.Row >= 4*rows-3 || e.Col >= 4*cols-3 {
			return fmt.Errorf("deform: log entry %v lies in the region being removed", e)
		}
	}
	log := append([]LogEntry(nil), d.Log...)
	// Drop one PatchQAD marker.
	for i := len(log) - 1; i >= 0; i-- {
		if log[i].Op == PatchQAD {
			log = append(log[:i], log[i+1:]...)
			break
		}
	}
	if err := d.rebuild(rows, cols, log); err != nil {
		return err
	}
	// Patch-level removal marker: Row/Col -1 means "boundary rows/cols",
	// not a single coordinate.
	d.History = append(d.History, LogEntry{Op: PatchQRM, Row: -1, Col: -1})
	return nil
}

// rebuild reconstructs the patch at the given size and replays log.
func (d *Deformer) rebuild(rows, cols int, log []LogEntry) error {
	var lat *lattice.Lattice
	if d.Patch.Lat.Kind == lattice.Square {
		lat = lattice.NewSquareRect(rows, cols)
	} else {
		lat = lattice.NewHeavyHexRect(rows, cols)
	}
	p := code.NewPatch(lat)
	nd := &Deformer{Patch: p}
	for _, e := range log {
		if e.Op == PatchQAD {
			nd.Log = append(nd.Log, e)
			continue
		}
		q, err := nd.qubitAt(e.Row, e.Col)
		if err != nil {
			return err
		}
		if e.Op == PatchQRM {
			rec, err2 := PatchShrink(p, []int{q}, e.Basis)
			if err2 != nil {
				return err2
			}
			nd.Log = append(nd.Log, e)
			nd.Records = append(nd.Records, *rec)
			continue
		}
		if _, err := nd.ApplyQubit(e.Op, q, e.Tag); err != nil {
			return err
		}
		// ApplyQubit appended a log entry with the same coordinates; keep
		// the original (it carries the caller's tag and basis).
		nd.Log[len(nd.Log)-1] = e
	}
	d.Patch = nd.Patch
	d.Log = nd.Log
	d.Records = nd.Records
	return nil
}

// DistanceLoss returns how much distance the current deformations cost
// relative to the pristine patch dimensions, per logical basis.
func (d *Deformer) DistanceLoss() (lossX, lossZ int) {
	lossX = d.Patch.Lat.Rows - d.Patch.Distance(lattice.BasisX)
	lossZ = d.Patch.Lat.Cols - d.Patch.Distance(lattice.BasisZ)
	if lossX < 0 {
		lossX = 0
	}
	if lossZ < 0 {
		lossZ = 0
	}
	return
}
