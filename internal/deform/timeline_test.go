package deform

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"context"
	"testing"
)

// cycleEpochs builds pristine → isolated → reintegrated epochs through the
// real instruction set.
func cycleEpochs(t *testing.T, kind lattice.Kind) []code.Epoch {
	t.Helper()
	mk := func() *code.Patch {
		if kind == lattice.Square {
			return code.NewPatch(lattice.NewSquare(5))
		}
		return code.NewPatch(lattice.NewHeavyHex(5))
	}
	pristine := mk()
	isoPatch := mk()
	d := NewDeformer(isoPatch)
	q := isoPatch.Lat.DataID[[2]int{2, 2}]
	if _, err := d.IsolateQubit(q, "cycle"); err != nil {
		t.Fatal(err)
	}
	reint := mk()
	return []code.Epoch{{Patch: pristine, Rounds: 3}, {Patch: d.Patch, Rounds: 3}, {Patch: reint, Rounds: 3}}
}

// TestCalibrationCycleLER is the circuit-level capstone: Monte-Carlo LER of
// a full isolate→calibrate→reintegrate cycle, decoded end to end. The
// cycle's LER must stay within a small factor of the static code's (the
// paper's claim that deformation preserves error protection, measured here
// at the circuit level rather than through Eq. 4).
func TestCalibrationCycleLER(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	const (
		p     = 2e-3
		shots = 40000
	)
	for _, kind := range []lattice.Kind{lattice.Square} {
		epochs := cycleEpochs(t, kind)
		cyc, err := code.TimelineCircuit(epochs, code.TimelineOptions{Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
		if err != nil {
			t.Fatal(err)
		}
		cycRes, err := mc.Evaluate(context.Background(), mc.Spec{
			Circuit: cyc, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 9, RNG: rng.New(1),
		})
		if err != nil {
			t.Fatalf("%v cycle: %v", kind, err)
		}
		static := code.NewPatch(lattice.NewSquare(5))
		st, err := static.MemoryCircuit(code.MemoryOptions{Rounds: 9, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
		if err != nil {
			t.Fatal(err)
		}
		stRes, err := mc.Evaluate(context.Background(), mc.Spec{
			Circuit: st, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 9, RNG: rng.New(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v: cycle=%v static=%v", kind, cycRes, stRes)
		if stRes.Failures == 0 {
			t.Fatal("static run has no failures; raise p or shots")
		}
		if cycRes.LER > 10*stRes.LER {
			t.Errorf("%v: calibration cycle LER %.4g vs static %.4g — deformation destroys protection", kind, cycRes.LER, stRes.LER)
		}
	}
}
