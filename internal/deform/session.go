package deform

import (
	"caliqec/internal/obs"
	"context"
)

// Session is one isolate→calibrate→reintegrate deformation episode on a
// Deformer, observed as a single "deform.session" span attributed with the
// instruction kinds issued and the distance loss at close. Obtain with
// BeginSession and always End it; a nil Session (and a session without a
// tracer in the context) is safe to End.
type Session struct {
	d    *Deformer
	span *obs.Span
	ops0 int // History length at BeginSession; the delta is this session's work
}

// BeginSession opens a deformation session tagged tag, returning a derived
// context carrying the session span so nested work (mc evaluations during
// isolation) appears under it in the trace.
//
// The span deliberately outlives this function: the caller owns it through
// Session.End, which the facade defers around each calibration batch.
func (d *Deformer) BeginSession(ctx context.Context, tag string) (context.Context, *Session) {
	ctx, span := obs.StartSpan(ctx, "deform.session") //lint:allow obsspan the span escapes by design: Session.End closes it
	span.SetAttr("tag", tag)
	return ctx, &Session{d: d, span: span, ops0: len(d.History)}
}

// End closes the session: it counts the instructions issued since
// BeginSession from the append-only History (rebuild replays rewrite Log
// but never History, so the delta is exactly this session's work, counted
// once), attributes the span with per-kind counts and the patch's current
// distance loss, bumps the deform.* counters in obs.Default, and ends the
// span. Idempotent via the span's own End semantics; safe on nil.
func (s *Session) End() {
	if s == nil {
		return
	}
	issued := s.d.History[s.ops0:]
	kinds := map[Op]int{}
	for _, e := range issued {
		kinds[e.Op]++
	}
	for op, n := range kinds {
		s.span.SetAttr("op."+string(op), n)
	}
	s.span.SetAttr("instructions", len(issued))
	lossX, lossZ := s.d.DistanceLoss()
	s.span.SetAttr("loss_x", lossX)
	s.span.SetAttr("loss_z", lossZ)
	obs.Default.Counter("deform.sessions").Inc()
	obs.Default.Counter("deform.instructions").Add(int64(len(issued)))
	if n := kinds[OpReintegrate]; n > 0 {
		obs.Default.Counter("deform.reintegrations").Add(int64(n))
	}
	s.span.End()
}
