// Package ftqc models the surface-code FTQC architecture of §2.1: logical
// patches tiled on a plane with communication channels of width d between
// them, lattice-surgery operations routed through those channels, magic-
// state distillation factories, and the resulting physical-qubit and
// execution-time accounting that drives Table 2.
package ftqc

import (
	"caliqec/internal/workload"
	"math"
)

// CycleMicros is the QEC cycle time (§7.1: 1 µs, standard in FTQC studies).
const CycleMicros = 1.0

// Layout describes one qubit-plane floor plan.
type Layout struct {
	Logical int // number of logical data patches
	D       int // code distance
	// Channel is the interspace (communication channel width) between
	// patches in data-qubit units. The baseline architecture uses D (§2.1);
	// CaliQEC adds Δd headroom (§7.3); LSC doubles the layout in both
	// dimensions (§7.3).
	Channel int
}

// BaselineLayout is the no-calibration floor plan: channel width d.
func BaselineLayout(logical, d int) Layout {
	return Layout{Logical: logical, D: d, Channel: d}
}

// CaliQECLayout adds Δd interspace for dynamic code enlargement during
// calibration.
func CaliQECLayout(logical, d, deltaD int) Layout {
	return Layout{Logical: logical, D: d, Channel: d + deltaD}
}

// CaliQECSharedLayout models §8.2.1's optimization: compensation qubits
// are only needed while a patch is actually enlarged, so adjacent patches
// share their Δd interspace headroom through the flexible layout scheme —
// each patch border carries Δd/2 of extra width instead of Δd ("this
// sharing reduces the net qubit overhead to 6%", vs 14% unshared).
func CaliQECSharedLayout(logical, d, deltaD int) Layout {
	return Layout{Logical: logical, D: d, Channel: d + (deltaD+1)/2}
}

// LSCLayout expands the communication channels in both dimensions so
// logical states can be parked during coarse-grained calibration,
// approximately quadrupling the footprint (§7.3).
func LSCLayout(logical, d int) Layout {
	// Pitch doubles: (d + channel) → 2·(d + d) ⇒ channel = 3d.
	return Layout{Logical: logical, D: d, Channel: 3 * d}
}

// PhysicalQubits returns the total physical qubit count of the floor plan:
// each logical patch owns a (D+Channel)² site footprint (its own D² data
// sites plus its share of syndrome qubits and routing channels), at two
// physical qubits per site (data + measurement ancillas). The constant
// matches the paper's Table 2 within ~10% across all benchmarks (e.g.
// Hubbard-10-10 at d=25: model 1.0e6 vs paper 9.81e5).
func (l Layout) PhysicalQubits() float64 {
	pitch := float64(l.D + l.Channel)
	return float64(l.Logical) * 2 * pitch * pitch
}

// QubitOverhead returns the relative qubit overhead versus a baseline
// layout at the same distance.
func (l Layout) QubitOverhead(base Layout) float64 {
	return l.PhysicalQubits()/base.PhysicalQubits() - 1
}

// ExecTimeHours estimates program wall-clock time: every logical operation
// (lattice-surgery CX or T-state consumption) occupies d QEC cycles, and
// the program sustains prog.Parallelism concurrent operations.
func ExecTimeHours(prog workload.Program, d int) float64 {
	cycles := prog.LogicalOps() * float64(d) / prog.Parallelism
	return cycles * CycleMicros * 1e-6 / 3600
}

// TotalCycles returns the number of QEC cycles the computation spans.
func TotalCycles(prog workload.Program, d int) float64 {
	return ExecTimeHours(prog, d) * 3600 * 1e6 / CycleMicros
}

// TFactory models a 15-to-1 magic-state distillation factory (§7.1 uses
// magic state distillation for logical T gates, per Fowler–Gidney).
type TFactory struct {
	D int
}

// Qubits returns the factory footprint: 2·(3d)² sites ≈ 11 tiles of the
// Fowler–Gidney compact layout.
func (f TFactory) Qubits() float64 {
	return 2 * 9 * float64(f.D*f.D)
}

// CyclesPerState returns the distillation latency in QEC cycles (≈ 10d).
func (f TFactory) CyclesPerState() float64 { return 10 * float64(f.D) }

// FactoriesFor returns the factory count needed to supply the program's T
// states without stalling: rate matching against the program's T-consumption
// rate.
func FactoriesFor(prog workload.Program, d int) int {
	cycles := TotalCycles(prog, d)
	if cycles == 0 { //lint:allow floateq an empty program has exactly zero cycles; guards the division below
		return 0
	}
	tRate := prog.T / cycles // states consumed per cycle
	f := TFactory{D: d}
	need := int(math.Ceil(tRate * f.CyclesPerState()))
	if need < 1 {
		need = 1
	}
	return need
}
