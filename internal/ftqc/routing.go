package ftqc

import (
	"caliqec/internal/rng"
	"fmt"
)

// Arch is a tile-level model of the lattice-surgery plane: logical patches
// sit on a grid with channel tiles between and around them (§2.1, Fig. 3e).
// Lattice-surgery CNOTs claim an edge-disjoint channel path between their
// two patches for one surgery window (d QEC cycles); the router packs
// pending operations into windows, which is how the paper's evaluation
// ("a custom simulator based on the path finding process of lattice
// surgery", artifact §A.5) derives program execution schedules.
type Arch struct {
	PatchRows, PatchCols int // patch grid dimensions
	Logical              int
	D                    int
	// tile grid dimensions: patches at odd (2r+1, 2c+1), channels elsewhere.
	tileRows, tileCols int
}

// NewArch lays out `logical` patches in a near-square grid at distance d.
func NewArch(logical, d int) *Arch {
	if logical < 1 {
		panic("ftqc: need ≥ 1 logical patch") //lint:allow panicpolicy an empty logical program is API misuse
	}
	cols := 1
	for cols*cols < logical {
		cols++
	}
	rows := (logical + cols - 1) / cols
	return &Arch{
		PatchRows: rows, PatchCols: cols, Logical: logical, D: d,
		tileRows: 2*rows + 1, tileCols: 2*cols + 1,
	}
}

// patchTile returns the tile coordinates of logical patch i.
func (a *Arch) patchTile(i int) [2]int {
	r, c := i/a.PatchCols, i%a.PatchCols
	return [2]int{2*r + 1, 2*c + 1}
}

// SurgeryOp is one pending lattice-surgery operation between two logical
// patches (control, target).
type SurgeryOp struct{ A, B int }

// RouteResult summarizes routing a stream of surgery operations.
type RouteResult struct {
	Ops     int
	Windows int // surgery windows used; wall time = Windows · D cycles
	// MeanParallelism is Ops / Windows.
	MeanParallelism float64
}

// Route packs the given operations into surgery windows using greedy
// edge-disjoint path allocation (cf. the edge-disjoint-paths compilation of
// Beverland et al., the paper's reference [8]): within a window, an
// operation succeeds if a channel-tile path between its patches avoids all
// tiles claimed earlier in that window.
func (a *Arch) Route(ops []SurgeryOp) RouteResult {
	pending := append([]SurgeryOp(nil), ops...)
	windows := 0
	for len(pending) > 0 {
		windows++
		claimed := map[[2]int]bool{}
		var next []SurgeryOp
		for _, op := range pending {
			path := a.findPath(op, claimed)
			if path == nil {
				next = append(next, op)
				continue
			}
			for _, t := range path {
				claimed[t] = true
			}
		}
		if len(next) == len(pending) {
			// No progress: should be impossible on a connected channel
			// grid with an empty claim set, but guard against livelock.
			panic(fmt.Sprintf("ftqc: routing livelock with %d ops pending", len(pending))) //lint:allow panicpolicy a routing livelock is a scheduler bug that must fail loudly
		}
		pending = next
	}
	res := RouteResult{Ops: len(ops), Windows: windows}
	if windows > 0 {
		res.MeanParallelism = float64(len(ops)) / float64(windows)
	}
	return res
}

// findPath BFS-routes between the channel tiles adjacent to the two
// patches, avoiding claimed tiles; it returns the claimed tile set or nil.
func (a *Arch) findPath(op SurgeryOp, claimed map[[2]int]bool) [][2]int {
	src, dst := a.patchTile(op.A), a.patchTile(op.B)
	isChannel := func(t [2]int) bool {
		if t[0] < 0 || t[0] >= a.tileRows || t[1] < 0 || t[1] >= a.tileCols {
			return false
		}
		return t[0]%2 == 0 || t[1]%2 == 0 // non-patch tiles are channel
	}
	type node struct {
		t    [2]int
		prev *node
	}
	var queue []*node
	visited := map[[2]int]bool{}
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for _, d := range dirs {
		t := [2]int{src[0] + d[0], src[1] + d[1]}
		if isChannel(t) && !claimed[t] && !visited[t] {
			visited[t] = true
			queue = append(queue, &node{t: t})
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		// Adjacent to the destination patch?
		for _, d := range dirs {
			if [2]int{n.t[0] + d[0], n.t[1] + d[1]} == dst {
				var path [][2]int
				for x := n; x != nil; x = x.prev {
					path = append(path, x.t)
				}
				return path
			}
		}
		for _, d := range dirs {
			t := [2]int{n.t[0] + d[0], n.t[1] + d[1]}
			if isChannel(t) && !claimed[t] && !visited[t] {
				visited[t] = true
				queue = append(queue, &node{t: t, prev: n})
			}
		}
	}
	return nil
}

// RandomOps draws n surgery operations between uniformly random distinct
// patches, a synthetic stand-in for a compiled program's CNOT stream.
func (a *Arch) RandomOps(n int, r *rng.RNG) []SurgeryOp {
	ops := make([]SurgeryOp, n)
	for i := range ops {
		x := r.Intn(a.Logical)
		y := r.Intn(a.Logical)
		for y == x {
			y = r.Intn(a.Logical)
		}
		ops[i] = SurgeryOp{A: x, B: y}
	}
	return ops
}
