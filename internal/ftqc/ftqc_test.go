package ftqc

import (
	"caliqec/internal/rng"
	"caliqec/internal/workload"
	"math"
	"testing"
)

func TestLayoutQubitCounts(t *testing.T) {
	base := BaselineLayout(200, 25)
	if got := base.PhysicalQubits(); math.Abs(got-1e6) > 5e4 {
		t.Errorf("baseline 200@d=25: %.3g qubits, want ≈1e6 (paper 9.81e5)", got)
	}
	lsc := LSCLayout(200, 25)
	if r := lsc.PhysicalQubits() / base.PhysicalQubits(); math.Abs(r-4) > 0.01 {
		t.Errorf("LSC ratio %.2f, want 4 (doubled pitch)", r)
	}
	cq := CaliQECLayout(200, 25, 4)
	over := cq.QubitOverhead(base)
	if over < 0.1 || over > 0.25 {
		t.Errorf("CaliQEC overhead %.3f, want 10-25%% (paper: 12-15%%/24%%)", over)
	}
}

func TestExecTimeMatchesFit(t *testing.T) {
	// By construction of the fitted Parallelism, Hubbard-10-10 at d=25 is
	// ≈5.29 h.
	h := ExecTimeHours(workload.Hubbard(10, 10), 25)
	if math.Abs(h-5.29)/5.29 > 0.05 {
		t.Errorf("exec %.3fh, want ≈5.29h", h)
	}
	if TotalCycles(workload.Hubbard(10, 10), 25) < 1e10 {
		t.Error("cycle count implausibly low")
	}
}

func TestTFactory(t *testing.T) {
	f := TFactory{D: 25}
	if f.Qubits() != 2*9*625 {
		t.Errorf("factory qubits %.0f", f.Qubits())
	}
	if f.CyclesPerState() != 250 {
		t.Errorf("cycles per state %.0f", f.CyclesPerState())
	}
	n := FactoriesFor(workload.Grover(100), 41)
	if n < 1 {
		t.Errorf("factories %d", n)
	}
}

func TestRoutingAllOpsComplete(t *testing.T) {
	a := NewArch(25, 11)
	r := rng.New(5)
	ops := a.RandomOps(200, r)
	res := a.Route(ops)
	if res.Ops != 200 {
		t.Errorf("routed %d ops", res.Ops)
	}
	if res.Windows < 1 || res.Windows > 200 {
		t.Errorf("windows %d out of range", res.Windows)
	}
	if res.MeanParallelism < 1 {
		t.Errorf("parallelism %.2f < 1", res.MeanParallelism)
	}
}

func TestRoutingConflictsSerialize(t *testing.T) {
	// Many ops sharing one patch must serialize: patch 0 appears in every
	// op, so parallelism collapses toward ~1-2.
	a := NewArch(16, 11)
	var ops []SurgeryOp
	for i := 1; i < 13; i++ {
		ops = append(ops, SurgeryOp{A: 0, B: i})
	}
	res := a.Route(ops)
	if res.Windows < 3 {
		t.Errorf("hub-contended ops finished in %d windows; expected serialization", res.Windows)
	}
}

func TestRoutingParallelismGrowsWithFabric(t *testing.T) {
	r := rng.New(9)
	small := NewArch(9, 11)
	big := NewArch(81, 11)
	ps := small.Route(small.RandomOps(100, r)).MeanParallelism
	pb := big.Route(big.RandomOps(100, rng.New(9))).MeanParallelism
	if pb <= ps {
		t.Errorf("parallelism should grow with fabric: small=%.2f big=%.2f", ps, pb)
	}
}

func TestArchGeometry(t *testing.T) {
	a := NewArch(10, 5)
	if a.PatchRows*a.PatchCols < 10 {
		t.Error("grid too small for patches")
	}
	// Distinct patches get distinct tiles.
	seen := map[[2]int]bool{}
	for i := 0; i < a.Logical; i++ {
		tl := a.patchTile(i)
		if seen[tl] {
			t.Errorf("patch tile collision at %v", tl)
		}
		seen[tl] = true
		if tl[0]%2 == 0 || tl[1]%2 == 0 {
			t.Errorf("patch %d on a channel tile %v", i, tl)
		}
	}
}

// TestSharedCompensationHalvesOverhead reproduces §8.2.1's accounting: the
// unshared Δd headroom costs ~2·Δd/(2d) relative qubits, sharing it across
// adjacent patches roughly halves that (paper: 14% → 6% at their d).
func TestSharedCompensationHalvesOverhead(t *testing.T) {
	base := BaselineLayout(200, 25)
	full := CaliQECLayout(200, 25, 4)
	shared := CaliQECSharedLayout(200, 25, 4)
	fo := full.QubitOverhead(base)
	so := shared.QubitOverhead(base)
	if so >= fo {
		t.Fatalf("shared overhead %.3f not below unshared %.3f", so, fo)
	}
	ratio := so / fo
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("sharing reduced overhead to %.2f of unshared, want ≈0.5 (paper 6%%/14%%)", ratio)
	}
}
