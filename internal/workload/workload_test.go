package workload

import (
	"math"
	"testing"
)

// TestTable2Counts checks each generator against the resource counts the
// paper reports in Table 2 (±10%: the generators are power-law fits through
// those points).
func TestTable2Counts(t *testing.T) {
	cases := []struct {
		prog       Program
		logical    int
		cx, tcount float64
	}{
		{Hubbard(10, 10), 200, 1.64e9, 7.10e8},
		{Hubbard(20, 20), 800, 5.3e10, 1.2e10},
		{Jellium(250), 250, 8.23e9, 1.10e9},
		{Jellium(1024), 1024, 1.25e12, 4.30e10},
		{Grover(100), 100, 6.8e9, 5.4e10},
	}
	for _, c := range cases {
		if c.prog.LogicalQubits != c.logical {
			t.Errorf("%s: %d logical qubits, want %d", c.prog.Name, c.prog.LogicalQubits, c.logical)
		}
		if r := c.prog.CX / c.cx; r < 0.9 || r > 1.1 {
			t.Errorf("%s: CX %.3g vs paper %.3g", c.prog.Name, c.prog.CX, c.cx)
		}
		if r := c.prog.T / c.tcount; r < 0.9 || r > 1.1 {
			t.Errorf("%s: T %.3g vs paper %.3g", c.prog.Name, c.prog.T, c.tcount)
		}
		if c.prog.Parallelism <= 0 {
			t.Errorf("%s: non-positive parallelism", c.prog.Name)
		}
	}
}

func TestScalingMonotone(t *testing.T) {
	if Hubbard(12, 12).CX <= Hubbard(10, 10).CX {
		t.Error("Hubbard CX should grow with lattice size")
	}
	if Jellium(500).T <= Jellium(250).T {
		t.Error("Jellium T should grow with orbitals")
	}
	if Grover(120).LogicalOps() <= Grover(100).LogicalOps() {
		t.Error("Grover ops should grow with width")
	}
}

func TestFeMoCo(t *testing.T) {
	f := FeMoCo()
	if f.LogicalQubits != 156 || f.T < 1e10 {
		t.Errorf("FeMoCo resource estimate off: %+v", f)
	}
}

func TestTable2Programs(t *testing.T) {
	ps := Table2Programs()
	if len(ps) != 5 {
		t.Fatalf("%d programs", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if math.IsNaN(p.CX) || math.IsInf(p.CX, 0) {
			t.Errorf("%s: bad CX", p.Name)
		}
	}
	for _, want := range []string{"Hubbard-10-10", "Hubbard-20-20", "jellium-250", "jellium-1024", "Grover-100"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}
