// Package workload generates the benchmark programs of the paper's
// evaluation (§7.1): Hubbard-model simulation, Jellium simulation, Grover
// search, and FeMoCo catalyst analysis. Table 2 consumes only aggregate
// resource counts — logical qubits, CX count, T count — so each generator
// is a resource-estimate model. The scaling exponents and coefficients are
// calibrated to the instances the paper reports (Hubbard-10-10/-20-20,
// Jellium-250/-1024, Grover-100) and documented inline; other sizes
// extrapolate along the fitted power laws.
package workload

import (
	"fmt"
	"math"
)

// Program is one benchmark instance.
type Program struct {
	Name          string
	LogicalQubits int
	CX            float64 // logical CNOT count
	T             float64 // logical T-gate count (magic states consumed)
	// Parallelism is the effective logical-operation parallelism of the
	// compiled program on the paper's lattice-surgery architecture, fitted
	// from Table 2's (distance, execution time) pairs via
	// time = (CX+T)·d·1µs / Parallelism. It folds routing congestion and
	// T-state availability into one throughput factor.
	Parallelism float64
}

// LogicalOps returns the total logical operation count.
func (p Program) LogicalOps() float64 { return p.CX + p.T }

func (p Program) String() string {
	return fmt.Sprintf("%s: %d logical qubits, %.3g CX, %.3g T", p.Name, p.LogicalQubits, p.CX, p.T)
}

// Hubbard returns an n×m Fermi-Hubbard simulation: 2nm spin orbitals →
// logical qubits; gate counts follow (nm)^2.5 for CX and (nm)^2 for T,
// matching the paper's 10×10 (1.64e9 CX, 7.1e8 T) and 20×20 (5.3e10 CX,
// 1.2e10 T) instances.
func Hubbard(n, m int) Program {
	s := float64(n * m)
	return Program{
		Name:          fmt.Sprintf("Hubbard-%d-%d", n, m),
		LogicalQubits: 2 * n * m,
		CX:            1.64e4 * math.Pow(s, 2.5),
		T:             7.10e4 * s * s,
		Parallelism:   3.08 * math.Pow(s/100, 0.45),
	}
}

// Jellium returns an N-orbital uniform-electron-gas simulation. Power laws
// fitted to the 250 (8.23e9 CX, 1.1e9 T) and 1024 (1.25e12 CX, 4.3e10 T)
// instances.
func Jellium(n int) Program {
	nf := float64(n)
	// The paper's two jellium instances imply very different effective
	// parallelism (0.57 at n=250, 8.6 at n=1024) — their compiler exploits
	// the larger instance's width; interpolate geometrically in log n.
	par := 0.571 * math.Pow(nf/250, 1.93)
	return Program{
		Name:          fmt.Sprintf("jellium-%d", n),
		LogicalQubits: n,
		CX:            24 * math.Pow(nf, 3.56),
		T:             643 * math.Pow(nf, 2.6),
		Parallelism:   par,
	}
}

// Grover returns an n-qubit Grover search sized to the paper's Grover-100
// instance (6.8e9 CX, 5.4e10 T); other sizes scale cubically (oracle cost ×
// iteration count at fixed target amplification).
func Grover(n int) Program {
	s := float64(n) / 100
	return Program{
		Name:          fmt.Sprintf("Grover-%d", n),
		LogicalQubits: n,
		CX:            6.8e9 * s * s * s,
		T:             5.4e10 * s * s * s,
		Parallelism:   3.15 * math.Pow(s, 0.5),
	}
}

// FeMoCo returns the FeMo cofactor electronic-structure benchmark the
// paper's intro motivates (nitrogen fixation), sized per the tensor-
// hypercontraction estimates of Lee et al. (reference [40]): 156 spin
// orbitals and ~5.3e10 Toffoli-equivalent T states.
func FeMoCo() Program {
	return Program{
		Name:          "FeMoCo",
		LogicalQubits: 156,
		CX:            1.10e10,
		T:             5.30e10,
		Parallelism:   2.4,
	}
}

// Table2Programs returns the five benchmark instances of Table 2 in paper
// order.
func Table2Programs() []Program {
	return []Program{
		Hubbard(10, 10),
		Hubbard(20, 20),
		Jellium(250),
		Jellium(1024),
		Grover(100),
	}
}
