package analysis_test

import (
	"testing"

	"caliqec/internal/analysis"
)

// TestSuppressBlockComment pins waiver scanning inside /* */ comment groups:
// each line of the block is scanned separately, so a directive keeps its own
// line position instead of the comment opener's.
func TestSuppressBlockComment(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"directive on the last line of a block comment covers the statement below",
			map[string]string{"a/a.go": `package a

func Sentinel(a, b float64) bool {
	/* The comparison below checks the exact zero sentinel.
	   lint:allow floateq zero value means unset */
	return a == b
}
`},
			nil,
		},
		{
			"directive on its own line inside a starred block comment",
			map[string]string{"a/a.go": `package a

func Sentinel(a, b float64) bool {
	/*
	 * lint:allow floateq zero value means unset
	 */
	return a == b
}
`},
			nil,
		},
		{
			"directive buried early in a long block does not reach distant lines",
			map[string]string{"a/a.go": `package a

func Sentinel(a, b float64) bool {
	/* lint:allow floateq zero value means unset
	   more prose
	   and more prose pushing the statement out of range */
	return a == b
}
`},
			map[string]int{"floateq": 1},
		},
		{
			"unknown rule inside a block comment is reported with its own line",
			map[string]string{"a/a.go": `package a

/*
Notes on the waiver below.
lint:allow nosuchrule because reasons
*/
func F() {}
`},
			map[string]int{"lint": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.FloatEq()), tc.want)
		})
	}
}

// TestSuppressMultilineStatement pins waiver extension over multi-line simple
// statements: a comment-above waiver covers diagnostics anchored on the
// statement's continuation lines, but never extends through compound
// statements like if or for.
func TestSuppressMultilineStatement(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"waiver above covers a comparison on a continuation line",
			map[string]string{"a/a.go": `package a

func Sentinels(a, b, c, d float64) bool {
	//lint:allow floateq exact zero sentinels documented here
	eq := a == b ||
		c == d
	return eq
}
`},
			nil,
		},
		{
			"without the waiver both comparisons fire",
			map[string]string{"a/a.go": `package a

func Sentinels(a, b, c, d float64) bool {
	eq := a == b ||
		c == d
	return eq
}
`},
			map[string]int{"floateq": 2},
		},
		{
			"waiver above an if does not blanket its body",
			map[string]string{"a/a.go": `package a

func Guard(a, b float64) bool {
	//lint:allow floateq waivers do not extend into blocks
	if a > 0 {
		return a == b
	}
	return false
}
`},
			map[string]int{"floateq": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.FloatEq()), tc.want)
		})
	}
}
