package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments have the form
//
//	//lint:allow rule1[,rule2...] reason text
//
// and waive the named rules for diagnostics on the comment's own line or
// on the line immediately below it (so both trailing comments and
// comments-above-the-statement work). When the line below starts a simple
// multi-line statement (an assignment, call, return, send, defer, go or
// declaration continued across lines), the waiver covers the statement's
// whole extent — a diagnostic anchored on a continuation line is still
// suppressed. Inside /* */ comment blocks each line is scanned separately,
// so a directive keeps its own line position wherever it sits in the block.
// The reason is mandatory: an allow without one does not suppress anything
// and is reported itself, which keeps every waiver in the tree documented.

const allowPrefix = "lint:allow"

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

type allowSet struct {
	rules map[lineKey]map[string]bool
}

func (a allowSet) covers(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if rs, ok := a.rules[lineKey{d.Pos.Filename, line}]; ok && rs[d.Rule] {
			return true
		}
	}
	return false
}

// collectAllows scans a package's comments for lint:allow directives.
// known guards against typo'd rule names: allowing a rule no analyzer
// implements is reported rather than silently ignored.
func collectAllows(pkg *Package, known map[string]bool) (allowSet, []Diagnostic) {
	out := allowSet{rules: map[lineKey]map[string]bool{}}
	var diags []Diagnostic
	report := func(pos lineKey, msg string) {
		diags = append(diags, Diagnostic{
			Rule:    "lint",
			Pos:     token.Position{Filename: pos.file, Line: pos.line, Column: 1},
			Message: msg,
		})
	}
	// record parses one directive, reports problems at key, and applies the
	// valid rules to every key in keys (a block-comment directive can cover
	// both its own line and the block's closing line).
	record := func(text string, key lineKey, keys ...lineKey) {
		rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			report(key, "lint:allow needs a rule name and a reason")
			return
		}
		if len(fields) < 2 {
			report(key, "lint:allow "+fields[0]+" needs a reason explaining why the contract is waived")
			return
		}
		for _, rule := range strings.Split(fields[0], ",") {
			rule = strings.TrimSpace(rule)
			if rule == "" {
				continue
			}
			if !known[rule] {
				report(key, "lint:allow names unknown rule "+rule)
				continue
			}
			for _, k := range append([]lineKey{key}, keys...) {
				if out.rules[k] == nil {
					out.rules[k] = map[string]bool{}
				}
				out.rules[k][rule] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				start := pkg.Fset.Position(c.Pos())
				if strings.HasPrefix(c.Text, "//") {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if strings.HasPrefix(text, allowPrefix) {
						record(text, lineKey{start.Filename, start.Line})
					}
					continue
				}
				// Block comment: scan line by line so a directive buried in
				// /* ... */ keeps the position of its own line, not the
				// comment opener's. Leading * decorations are stripped. A
				// directive followed only by decoration (the closing */ of a
				// starred block) also counts at the block's last line, so
				// the adjacency rule still reaches the statement below.
				body := strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				lines := strings.Split(body, "\n")
				strip := func(s string) string {
					return strings.TrimSpace(strings.TrimLeft(strings.TrimSpace(s), "*"))
				}
				for i, line := range lines {
					text := strip(line)
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					tailBlank := true
					for _, rest := range lines[i+1:] {
						if strip(rest) != "" {
							tailBlank = false
							break
						}
					}
					own := lineKey{start.Filename, start.Line + i}
					if tailBlank && i < len(lines)-1 {
						record(text, own, lineKey{start.Filename, start.Line + len(lines) - 1})
					} else {
						record(text, own)
					}
				}
			}
		}
		extendMultiline(pkg, f, out)
	}
	return out, diags
}

// extendMultiline widens comment-above waivers over multi-line simple
// statements: when a statement's first line (or the line above it) carries
// allows, every line of the statement inherits them, so diagnostics anchored
// mid-statement (a float comparison on a continuation line, a StartSpan call
// after a line break) are still covered. Only simple statements extend —
// a waiver above an if or for must not blanket the whole body.
func extendMultiline(pkg *Package, f *ast.File, out allowSet) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.SendStmt,
			*ast.DeferStmt, *ast.GoStmt, *ast.DeclStmt, *ast.IncDecStmt:
		default:
			return true
		}
		start := pkg.Fset.Position(n.Pos())
		end := pkg.Fset.Position(n.End())
		if end.Line <= start.Line {
			return true
		}
		var src map[string]bool
		for _, line := range []int{start.Line, start.Line - 1} {
			if rs, ok := out.rules[lineKey{start.Filename, line}]; ok {
				src = rs
				break
			}
		}
		if src == nil {
			return true
		}
		for line := start.Line + 1; line <= end.Line; line++ {
			key := lineKey{start.Filename, line}
			if out.rules[key] == nil {
				out.rules[key] = map[string]bool{}
			}
			for rule := range src {
				out.rules[key][rule] = true
			}
		}
		return true
	})
}
