package analysis

import (
	"go/token"
	"strings"
)

// Suppression comments have the form
//
//	//lint:allow rule1[,rule2...] reason text
//
// and waive the named rules for diagnostics on the comment's own line or
// on the line immediately below it (so both trailing comments and
// comments-above-the-statement work). The reason is mandatory: an allow
// without one does not suppress anything and is reported itself, which
// keeps every waiver in the tree documented.

const allowPrefix = "lint:allow"

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

type allowSet struct {
	rules map[lineKey]map[string]bool
}

func (a allowSet) covers(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if rs, ok := a.rules[lineKey{d.Pos.Filename, line}]; ok && rs[d.Rule] {
			return true
		}
	}
	return false
}

// collectAllows scans a package's comments for lint:allow directives.
// known guards against typo'd rule names: allowing a rule no analyzer
// implements is reported rather than silently ignored.
func collectAllows(pkg *Package, known map[string]bool) (allowSet, []Diagnostic) {
	out := allowSet{rules: map[lineKey]map[string]bool{}}
	var diags []Diagnostic
	report := func(pos lineKey, msg string) {
		diags = append(diags, Diagnostic{
			Rule:    "lint",
			Pos:     token.Position{Filename: pos.file, Line: pos.line, Column: 1},
			Message: msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(key, "lint:allow needs a rule name and a reason")
					continue
				}
				if len(fields) < 2 {
					report(key, "lint:allow "+fields[0]+" needs a reason explaining why the contract is waived")
					continue
				}
				for _, rule := range strings.Split(fields[0], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					if !known[rule] {
						report(key, "lint:allow names unknown rule "+rule)
						continue
					}
					if out.rules[key] == nil {
						out.rules[key] = map[string]bool{}
					}
					out.rules[key][rule] = true
				}
			}
		}
	}
	return out, diags
}
