package analysis

import (
	"go/ast"
	"go/types"
)

// ChanClose enforces channel-ownership discipline: the goroutine that sends
// on a channel owns it and is the only one allowed to close it. Contract
// (DESIGN.md, internal/stream): every pipeline channel has a single owner
// whose exit path closes it exactly once; a close anywhere else is a latent
// "send on closed channel" panic that only fires under rare interleavings.
// Two kinds of violation are flagged:
//
//   - close of a channel the function received as a parameter: the callee
//     cannot know whether the caller (or other senders) is done with it
//     (structural check, function literals inherit their enclosing
//     functions' parameters);
//   - any path on which a channel is used after it was closed: a second
//     close, or a send on the closed channel. This is forward dataflow on
//     the function's CFG, so it covers the shapes the old per-block walk
//     missed — `if done { close(ch) }; ch <- v`, close before an early
//     return, and the loop-invariant close whose second iteration
//     double-closes. Rebinding the variable (`ch = make(...)`, a fresh `:=`,
//     or a per-iteration range binding) starts a new channel and clears the
//     fact; `defer close(ch)` runs at function exit and sets no fact.
//
// Intentional transfers of close responsibility carry a
// //lint:allow chanclose waiver naming the ownership handoff.
func ChanClose() *Rule {
	return &Rule{
		Name: "chanclose",
		Doc:  "channels are closed only by their owner: no close of channel parameters, no close/send on a path where the channel is already closed",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					w := &chancloseWalker{p: p, params: map[types.Object]bool{}}
					w.addParams(fd.Type)
					w.walkBody(fd.Body)
				}
			}
			eachFuncBody(p, func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
				checkUseAfterClose(p, fn)
			})
		},
	}
}

// chancloseWalker carries the parameter-close check's state: the
// channel-typed parameter objects of the current function and its enclosing
// functions (a literal must not close a channel its parent received either).
type chancloseWalker struct {
	p      *Pass
	params map[types.Object]bool
}

// addParams records fn's channel-typed parameter objects.
func (w *chancloseWalker) addParams(fn *ast.FuncType) {
	if fn.Params == nil {
		return
	}
	for _, field := range fn.Params.List {
		for _, name := range field.Names {
			obj := w.p.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Chan); ok {
				w.params[obj] = true
			}
		}
	}
}

// walkBody flags closes of parameter channels, descending into function
// literals with their parameter set widened by the literal's own params.
func (w *chancloseWalker) walkBody(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := &chancloseWalker{p: w.p, params: w.params}
			inner.addParams(n.Type)
			inner.walkBody(n.Body)
			return false
		case *ast.CallExpr:
			if obj, _ := closedChan(w.p, n); obj != nil && w.params[obj] {
				w.p.Reportf(n.Pos(), "close of channel parameter %s: the callee does not own it, so other senders may still be live", obj.Name())
			}
			return true
		}
		return true
	})
}

// closedChan returns the object of the channel identifier in a builtin
// close(ch) call, or nil when n is not one (or closes a non-identifier,
// which the rule leaves to the owner's judgment).
func closedChan(p *Pass, n ast.Node) (types.Object, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "close" {
		return nil, nil
	}
	if b, ok := p.Pkg.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "close" {
		return nil, nil // shadowed: not the builtin
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return p.Pkg.Info.Uses[id], call
}

// checkUseAfterClose runs the may-closed dataflow over one function body and
// reports closes and sends reached by a state in which the channel is
// already closed.
func checkUseAfterClose(p *Pass, fn ast.Node) {
	g := p.CFG(fn)
	if g == nil {
		return
	}

	// Track every object closed by a non-deferred close in this function.
	closeFact := map[types.Object]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue
			}
			inspectShallow(n, func(m ast.Node) bool {
				if obj, _ := closedChan(p, m); obj != nil {
					if _, have := closeFact[obj]; !have {
						closeFact[obj] = len(closeFact)
					}
				}
				return true
			})
		}
	}
	if len(closeFact) == 0 || len(closeFact) > 64 {
		return
	}

	// rebinds clears the facts of channel variables this node rebinds: an
	// assignment or declaration with the variable on the left, or a range
	// statement's per-iteration key/value binding (those idents are recorded
	// as standalone block nodes with a Defs entry).
	rebinds := func(n ast.Node, s Facts) Facts {
		clear := func(id *ast.Ident) {
			if obj := p.Pkg.Info.Defs[id]; obj != nil {
				if f, have := closeFact[obj]; have {
					s = s.Without(f)
				}
			}
			if obj := p.Pkg.Info.Uses[id]; obj != nil {
				if f, have := closeFact[obj]; have {
					s = s.Without(f)
				}
			}
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Defs[n]; obj != nil {
				if f, have := closeFact[obj]; have {
					s = s.Without(f)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					clear(id)
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							clear(id)
						}
					}
				}
			}
		}
		return s
	}

	transfer := func(n ast.Node, s Facts) Facts {
		if _, ok := n.(*ast.DeferStmt); ok {
			return s // defer close runs at function exit, after every use
		}
		s = rebinds(n, s)
		inspectShallow(n, func(m ast.Node) bool {
			if obj, _ := closedChan(p, m); obj != nil {
				s = s.With(closeFact[obj])
			}
			return true
		})
		return s
	}

	r := Forward(g, 0, transfer)
	reported := map[ast.Node]bool{}
	r.Walk(func(n ast.Node, before Facts) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		before = rebinds(n, before)
		inspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if obj, call := closedChan(p, m); obj != nil && before.Has(closeFact[obj]) && !reported[call] {
					reported[call] = true
					p.Reportf(call.Pos(), "close of %s on a path where it is already closed: closing a closed channel panics (second loop iteration included)", obj.Name())
				}
			case *ast.SendStmt:
				id, ok := m.Chan.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := p.Pkg.Info.Uses[id]; obj != nil && !reported[m] {
					if f, have := closeFact[obj]; have && before.Has(f) {
						reported[m] = true
						p.Reportf(m.Pos(), "send on %s on a path where it was closed: this panics at run time", id.Name)
					}
				}
			}
			return true
		})
	})
}
