package analysis

import (
	"go/ast"
	"go/types"
)

// ChanClose enforces channel-ownership discipline: the goroutine that sends
// on a channel owns it and is the only one allowed to close it. Contract
// (DESIGN.md, internal/stream): every pipeline channel has a single owner
// whose exit path closes it exactly once; a close anywhere else is a latent
// "send on closed channel" panic that only fires under rare interleavings.
// Three shapes are flagged:
//
//   - close of a channel the function received as a parameter: the callee
//     cannot know whether the caller (or other senders) is done with it;
//   - close of a loop-invariant channel inside a loop body: the second
//     iteration panics (closing channels that the loop itself declares, or
//     ranges over, stays legal);
//   - a send on a channel after a close of the same channel earlier in the
//     same block (defer close is exempt: it runs at function exit).
//
// Intentional transfers of close responsibility carry a
// //lint:allow chanclose waiver naming the ownership handoff.
func ChanClose() *Rule {
	return &Rule{
		Name: "chanclose",
		Doc:  "channels are closed only by their owner: no close of channel parameters, no loop-invariant close inside loops, no send after close",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					w := &chancloseWalker{p: p, params: map[types.Object]bool{}}
					w.addParams(fd.Type)
					w.walkBody(fd.Body)
				}
			}
		},
	}
}

// chancloseWalker carries the per-function state: the channel-typed
// parameter objects of the current function and its enclosing functions,
// and the loop statements enclosing the node being visited (reset at every
// function-literal boundary — a goroutine body is its own ownership scope).
type chancloseWalker struct {
	p      *Pass
	params map[types.Object]bool
	loops  []ast.Node
}

// addParams records fn's channel-typed parameter objects.
func (w *chancloseWalker) addParams(fn *ast.FuncType) {
	if fn.Params == nil {
		return
	}
	for _, field := range fn.Params.List {
		for _, name := range field.Names {
			obj := w.p.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Chan); ok {
				w.params[obj] = true
			}
		}
	}
}

// closedChan returns the object of the channel identifier in a builtin
// close(ch) call, or nil when n is not one (or closes a non-identifier,
// which the rule leaves to the owner's judgment).
func (w *chancloseWalker) closedChan(n ast.Node) (types.Object, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "close" {
		return nil, nil
	}
	if b, ok := w.p.Pkg.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "close" {
		return nil, nil // shadowed: not the builtin
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return w.p.Pkg.Info.Uses[id], call
}

// walkBody visits every node of a statement tree, maintaining the loop
// stack and spawning fresh walkers at function-literal boundaries.
func (w *chancloseWalker) walkBody(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A new ownership scope: enclosing params stay visible (the
			// literal still must not close them), the loop stack does not
			// (the literal body runs as its own goroutine or call).
			inner := &chancloseWalker{p: w.p, params: w.params}
			inner.addParams(n.Type)
			inner.walkBody(n.Body)
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			w.loops = append(w.loops, n)
			if fs, ok := n.(*ast.ForStmt); ok {
				w.walkLoopParts(fs.Init, fs.Cond, fs.Post, fs.Body)
			} else {
				rs := n.(*ast.RangeStmt)
				w.walkLoopParts(rs.Key, rs.Value, rs.X, rs.Body)
			}
			w.loops = w.loops[:len(w.loops)-1]
			return false
		case *ast.BlockStmt:
			w.checkSendAfterClose(n)
			return true
		case *ast.CallExpr:
			w.checkClose(n)
			return true
		}
		return true
	})
}

// walkLoopParts visits a loop's sub-nodes under the current loop stack.
func (w *chancloseWalker) walkLoopParts(parts ...ast.Node) {
	for _, part := range parts {
		if part != nil {
			w.walkBody(part)
		}
	}
}

// checkClose applies the parameter-close and loop-invariant-close checks to
// one close(ch) call.
func (w *chancloseWalker) checkClose(call *ast.CallExpr) {
	obj, _ := w.closedChan(call)
	if obj == nil {
		return
	}
	if w.params[obj] {
		w.p.Reportf(call.Pos(), "close of channel parameter %s: the callee does not own it, so other senders may still be live", obj.Name())
		return
	}
	if len(w.loops) == 0 {
		return
	}
	// Closing a channel born inside any enclosing loop (its range variable,
	// or a declaration in its body) is per-iteration ownership and fine;
	// closing one declared outside every enclosing loop double-closes on
	// the second iteration.
	for _, loop := range w.loops {
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			return
		}
	}
	w.p.Reportf(call.Pos(), "close of %s inside a loop but declared outside it: the second iteration closes a closed channel", obj.Name())
}

// checkSendAfterClose flags a send statement that follows a close of the
// same channel in the same statement list. Only direct statements of the
// block participate: branches and nested blocks have their own flow, and a
// defer close runs at function exit, after every send.
func (w *chancloseWalker) checkSendAfterClose(block *ast.BlockStmt) {
	var closed map[types.Object]bool
	for _, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if obj, _ := w.closedChan(s.X); obj != nil {
				if closed == nil {
					closed = map[types.Object]bool{}
				}
				closed[obj] = true
			}
		case *ast.SendStmt:
			id, ok := s.Chan.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := w.p.Pkg.Info.Uses[id]; obj != nil && closed[obj] {
				w.p.Reportf(s.Pos(), "send on %s after it was closed earlier in this block: this panics at run time", id.Name)
			}
		}
	}
}
