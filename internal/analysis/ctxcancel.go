package analysis

import (
	"go/ast"
)

// CtxCancel enforces the context package's documented obligation: the cancel
// function returned by context.WithCancel/WithTimeout/WithDeadline (and the
// *Cause variants) must be called on every path, or the derived context and
// its timer leak until the parent is cancelled — in a server accept loop
// that is an unbounded leak. Contract (DESIGN.md §13): cancel is called or
// deferred on all paths out of the function, or visibly handed off.
//
// On the function's CFG, the assignment site sets a per-site "pending" fact;
// any subsequent use of the cancel variable clears it — a direct call, a
// defer (deferred calls run on panic paths too), passing it to a function,
// returning it, storing it in a struct, or capturing it in a closure all
// transfer the responsibility somewhere the analysis can no longer see, and
// flow-blind uses are exactly what //lint:allow waivers are for when they
// lie. Discarding the cancel func with _ is reported outright. The
// diagnostic anchors at the With* call, so one waiver covers all paths.
func CtxCancel() *Rule {
	return &Rule{
		Name: "ctxcancel",
		Doc:  "the cancel func from context.WithCancel/WithTimeout/WithDeadline must be called or deferred on all paths",
		Run: func(p *Pass) {
			eachFuncBody(p, func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
				checkCtxCancel(p, fn)
			})
		},
	}
}

// cancelFuncs are the context constructors whose last result is a CancelFunc.
var cancelFuncs = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

type cancelSite struct {
	assign *ast.AssignStmt
	call   *ast.CallExpr
	name   string // context constructor name
	id     *ast.Ident
	fact   int
}

// cancelAssign matches `ctx, cancel := context.WithX(...)` and returns the
// constructor call, its name and the identifier receiving the cancel func.
func cancelAssign(p *Pass, as *ast.AssignStmt) (*ast.CallExpr, string, *ast.Ident) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return nil, "", nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, "", nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !cancelFuncs[sel.Sel.Name] || pkgRef(p, sel.X) != "context" {
		return nil, "", nil
	}
	id, _ := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	return call, sel.Sel.Name, id
}

func checkCtxCancel(p *Pass, fn ast.Node) {
	g := p.CFG(fn)
	if g == nil {
		return
	}

	var sites []*cancelSite
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			call, name, id := cancelAssign(p, as)
			if call == nil {
				continue
			}
			if id == nil || id.Name == "_" {
				p.Reportf(call.Pos(), "cancel func from context.%s discarded with _: the derived context can never be released", name)
				continue
			}
			sites = append(sites, &cancelSite{assign: as, call: call, name: name, id: id, fact: len(sites)})
		}
	}
	if len(sites) == 0 || len(sites) > 64 {
		return
	}

	transfer := func(n ast.Node, s Facts) Facts {
		for _, site := range sites {
			if n == site.assign {
				// (Re)binding the cancel variable starts a fresh obligation.
				s = s.With(site.fact)
				continue
			}
			obj := spanObject(p, site.id)
			if obj == nil {
				continue
			}
			// Any use — call, defer, argument, return value, assignment,
			// closure capture — discharges the site. The walk is deep on
			// purpose: a cancel captured by a spawned closure has escaped.
			used := false
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if used {
				s = s.Without(site.fact)
			}
		}
		return s
	}

	r := Forward(g, 0, transfer)
	for _, site := range sites {
		if r.MayExit(site.fact) {
			p.Reportf(site.call.Pos(),
				"cancel func %s from context.%s is not called on every path: defer %s() right after the assignment, or call it before each return",
				site.id.Name, site.name, site.id.Name)
		}
	}
}
