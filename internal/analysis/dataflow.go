package analysis

import "go/ast"

// This file is the forward dataflow solver the flow-sensitive rules share.
//
// The abstraction is deliberately path-shaped rather than the classic single
// bitvector per block: the state at a program point is a *set* of Facts
// values, one per distinguishable path class. Meet is set union, so the
// solver natively answers both quantifiers the rules need:
//
//   - "may":  some path reaches here with fact f        (any state has f)
//   - "must": every path reaches here with fact f       (all states have f)
//
// Keeping fact *combinations* intact matters: lockbalance must distinguish
// the path that locked and deferred from the path that did neither — a plain
// may-union of {held} and {covered} would conflate them into a false
// positive, and a must-intersection into a false negative.
//
// Termination: Facts is a finite set (≤ 64 bits, and rules use a handful),
// states only accumulate, and when a block's state set exceeds maxFlowStates
// it is widened to the single union-of-all state, which is conservative for
// the may-queries the rules report on.

// Facts is a bitset of up to 64 rule-defined boolean facts along one path.
type Facts uint64

// Has reports whether fact i is set.
func (f Facts) Has(i int) bool { return f&(1<<uint(i)) != 0 }

// With returns f with fact i set.
func (f Facts) With(i int) Facts { return f | 1<<uint(i) }

// Without returns f with fact i cleared.
func (f Facts) Without(i int) Facts { return f &^ (1 << uint(i)) }

// maxFlowStates caps the distinct path states tracked per block; beyond it
// the set widens to its union. Real functions sit far below the cap.
const maxFlowStates = 64

// FlowResult holds the solved per-block entry states.
type FlowResult struct {
	g        *CFG
	transfer func(ast.Node, Facts) Facts
	in       map[*Block][]Facts
}

// Forward runs the transfer function to fixpoint over g, starting from init
// at the entry block. transfer maps the state before an atomic CFG node to
// the state after it; it must be deterministic and must not descend into
// function literals (their bodies have their own CFGs — use inspectShallow).
func Forward(g *CFG, init Facts, transfer func(n ast.Node, s Facts) Facts) *FlowResult {
	r := &FlowResult{g: g, transfer: transfer, in: map[*Block][]Facts{}}
	r.in[g.Entry] = []Facts{init}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		outs := make([]Facts, 0, len(r.in[b]))
		for _, s := range r.in[b] {
			for _, n := range b.Nodes {
				s = transfer(n, s)
			}
			outs = addState(outs, s)
		}
		for _, succ := range b.Succs {
			changed := false
			for _, s := range outs {
				next := addState(r.in[succ], s)
				if len(next) != len(r.in[succ]) {
					r.in[succ] = next
					changed = true
				}
			}
			if len(r.in[succ]) > maxFlowStates {
				var union Facts
				for _, s := range r.in[succ] {
					union |= s
				}
				r.in[succ] = []Facts{union}
				changed = true
			}
			if changed && !queued[succ] {
				work = append(work, succ)
				queued[succ] = true
			}
		}
	}
	return r
}

// addState appends s if not already present.
func addState(set []Facts, s Facts) []Facts {
	for _, have := range set {
		if have == s {
			return set
		}
	}
	return append(set, s)
}

// ExitStates returns the distinct path states reaching the function exit —
// returns, falls-off-the-end, explicit panics and process terminators alike.
// Empty means the exit is unreachable (the function never returns).
func (r *FlowResult) ExitStates() []Facts { return r.in[r.g.Exit] }

// MayExit reports whether some path leaves the function with fact i set.
func (r *FlowResult) MayExit(i int) bool {
	for _, s := range r.ExitStates() {
		if s.Has(i) {
			return true
		}
	}
	return false
}

// MustExit reports whether every path leaving the function has fact i set.
// Vacuously false when the exit is unreachable.
func (r *FlowResult) MustExit(i int) bool {
	states := r.ExitStates()
	for _, s := range states {
		if !s.Has(i) {
			return false
		}
	}
	return len(states) > 0
}

// Walk replays the transfer function over every reachable block, invoking
// visit with the state in force immediately before each node, once per
// distinct entry state of the node's block. Rules use it to report at the
// offending node ("send after close", "Add after Wait") with path context.
func (r *FlowResult) Walk(visit func(n ast.Node, before Facts)) {
	for _, b := range r.g.Blocks {
		for _, s := range r.in[b] {
			for _, n := range b.Nodes {
				visit(n, s)
				s = r.transfer(n, s)
			}
		}
	}
}

// inspectShallow walks n without descending into function literals: a
// closure's body executes under its own CFG (possibly on another goroutine),
// so its statements are invisible to the enclosing function's dataflow.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}

// eachFuncBody invokes f for every function body in the package: top-level
// declarations and every (nested) function literal, each of which is its own
// CFG scope.
func eachFuncBody(p *Pass, f func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					f(n, n.Type, n.Body)
				}
			case *ast.FuncLit:
				f(n, n.Type, n.Body)
			}
			return true
		})
	}
}
