package analysis

import (
	"go/ast"
)

// WgDiscipline enforces the three sync.WaitGroup rules whose violations all
// present as the same flaky symptom — Wait returning early or never:
//
//   - Add must happen in the spawning goroutine, before the `go` statement:
//     an Add inside the spawned closure races with Wait, which may observe
//     the counter before the goroutine has incremented it;
//   - a goroutine that participates in a WaitGroup must reach Done on every
//     exit path (defer wg.Done() also covers panic unwinding) — a missed
//     Done on one early-return path hangs Wait forever;
//   - no Add after Wait in the same function: reusing the group for a second
//     wave in one function body is almost always a refactor remnant, and if
//     the waves genuinely are sequential the //lint:allow wgdiscipline
//     waiver documents it.
//
// The Done check runs on the spawned closure's own CFG; the Add-after-Wait
// check is forward dataflow on the spawning function (branches and loops
// included: `for { wg.Add(1); go ...; wg.Wait() }` flags the second
// iteration's Add).
func WgDiscipline() *Rule {
	return &Rule{
		Name: "wgdiscipline",
		Doc:  "WaitGroup.Add before the go statement, Done reachable on all goroutine exit paths, no Add after Wait in one function",
		Run: func(p *Pass) {
			// Checks 1 and 2 anchor on go statements anywhere in the package.
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					checkSpawnedWg(p, gs)
					return true
				})
			}
			// Check 3 runs per function body.
			eachFuncBody(p, func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
				checkAddAfterWait(p, fn)
			})
		},
	}
}

// checkSpawnedWg applies the inside-the-goroutine checks to one go statement
// with a closure: no Add on an outer WaitGroup, and Done (when used at all)
// reachable on every exit path.
func checkSpawnedWg(p *Pass, gs *ast.GoStmt) {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	lo, hi := lit.Pos(), lit.End()

	// Check 1: wg.Add on a WaitGroup declared outside the goroutine. The
	// walk is deep (nested closures still run inside this goroutine's
	// lifetime as far as the race with Wait is concerned).
	doneKeys := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, key, tn, method, ok := syncOp(p, call)
		if !ok || tn != "WaitGroup" {
			return true
		}
		root := rootIdent(recv)
		outer := root != nil && declaredOutside(p, root, lo, hi)
		switch method {
		case "Add":
			if outer {
				p.Reportf(call.Pos(), "%s.Add inside the spawned goroutine races with Wait: Add in the spawning goroutine, before the go statement", key)
			}
		case "Done":
			if outer {
				doneKeys[key] = true
			}
		}
		return true
	})

	// Check 2: every exit path of the goroutine reaches Done for each outer
	// WaitGroup it participates in.
	if len(doneKeys) == 0 {
		return
	}
	g := p.CFG(lit)
	if g == nil || len(g.Blocks) == 0 {
		return
	}
	if len(Forward(g, 0, func(ast.Node, Facts) Facts { return 0 }).ExitStates()) == 0 {
		return // the goroutine never exits (run-forever worker): Done is moot
	}
	for key := range doneKeys {
		fact := 0
		transfer := func(n ast.Node, s Facts) Facts {
			if d, ok := n.(*ast.DeferStmt); ok {
				if deferReleases(p, d.Call, key, "Done") {
					return s.With(fact)
				}
				return s
			}
			inspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if _, k, tn, method, ok := syncOp(p, call); ok && tn == "WaitGroup" && k == key && method == "Done" {
						s = s.With(fact)
					}
				}
				return true
			})
			return s
		}
		if !Forward(g, 0, transfer).MustExit(fact) {
			p.Reportf(gs.Pos(), "goroutine may exit without calling %s.Done: defer %s.Done() first thing in the goroutine", key, key)
		}
	}
}

// checkAddAfterWait flags wg.Add reachable after wg.Wait in the same
// function body via forward dataflow (one "waited" fact per receiver key).
func checkAddAfterWait(p *Pass, fn ast.Node) {
	g := p.CFG(fn)
	if g == nil {
		return
	}
	waitFact := map[string]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if _, key, tn, method, ok := syncOp(p, call); ok && tn == "WaitGroup" && method == "Wait" {
						if _, have := waitFact[key]; !have {
							waitFact[key] = len(waitFact)
						}
					}
				}
				return true
			})
		}
	}
	if len(waitFact) == 0 || len(waitFact) > 64 {
		return
	}
	transfer := func(n ast.Node, s Facts) Facts {
		inspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if _, key, tn, method, ok := syncOp(p, call); ok && tn == "WaitGroup" && method == "Wait" {
					if f, have := waitFact[key]; have {
						s = s.With(f)
					}
				}
			}
			return true
		})
		return s
	}
	r := Forward(g, 0, transfer)
	reported := map[*ast.CallExpr]bool{}
	r.Walk(func(n ast.Node, before Facts) {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || reported[call] {
				return true
			}
			if _, key, tn, method, ok := syncOp(p, call); ok && tn == "WaitGroup" && method == "Add" {
				if f, have := waitFact[key]; have && before.Has(f) {
					reported[call] = true
					p.Reportf(call.Pos(), "%s.Add after %s.Wait in the same function: use a fresh WaitGroup per wave (or waive a documented sequential reuse)", key, key)
				}
			}
			return true
		})
	})
}
