package analysis_test

import (
	"testing"

	"caliqec/internal/analysis"
)

func TestChanClose(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on close of a channel parameter",
			map[string]string{"a/a.go": `package a

func Drain(ch chan int) {
	for range ch {
	}
	close(ch)
}
`},
			map[string]int{"chanclose": 1},
		},
		{
			"fires on close of a parameter inside a literal",
			map[string]string{"a/a.go": `package a

func Spawn(ch chan int) {
	go func() {
		close(ch)
	}()
}
`},
			map[string]int{"chanclose": 1},
		},
		{
			"silent on close of a locally owned channel",
			map[string]string{"a/a.go": `package a

func Owner() <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		ch <- 1
	}()
	return ch
}
`},
			nil,
		},
		{
			"fires on loop-invariant close inside a loop",
			map[string]string{"a/a.go": `package a

func Broadcast(n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		close(done)
	}
}
`},
			map[string]int{"chanclose": 1},
		},
		{
			"silent when the loop declares the channel it closes",
			map[string]string{"a/a.go": `package a

func Fan(chans []chan int) {
	for _, ch := range chans {
		close(ch)
	}
	for i := 0; i < 3; i++ {
		c := make(chan int)
		close(c)
	}
}
`},
			nil,
		},
		{
			"fires on send after close in the same block",
			map[string]string{"a/a.go": `package a

func Bad() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1
}
`},
			map[string]int{"chanclose": 1},
		},
		{
			"silent on send with only a deferred close",
			map[string]string{"a/a.go": `package a

func Good() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1
}
`},
			nil,
		},
		{
			"silent on send and close in different branches",
			map[string]string{"a/a.go": `package a

func Branch(done bool) {
	ch := make(chan int, 1)
	if done {
		close(ch)
	} else {
		ch <- 1
	}
}
`},
			nil,
		},
		{
			"silent on shadowed close",
			map[string]string{"a/a.go": `package a

func Shadow(ch chan int) {
	close := func(chan int) {}
	close(ch)
}
`},
			nil,
		},
		{
			"loop stack resets inside a goroutine body",
			map[string]string{"a/a.go": `package a

func PerItem(n int) {
	for i := 0; i < n; i++ {
		res := make(chan int)
		go func() {
			defer close(res)
			res <- 1
		}()
		<-res
	}
}
`},
			nil,
		},
		{
			"waiver with a reason suppresses",
			map[string]string{"a/a.go": `package a

func Handoff(ch chan int) {
	//lint:allow chanclose ownership transferred by the constructor contract
	close(ch)
}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.ChanClose()), tc.want)
		})
	}
}
