// Package analysis is a small, stdlib-only static-analysis framework plus
// the project-specific rules that enforce CaliQEC's reproducibility and
// cancellation contracts at the source level.
//
// The repo promises (DESIGN.md, internal/mc) that every result is
// bit-identical for a fixed seed and that every long-running path honors
// context.Context. Those are social contracts unless something checks them:
// one stray math/rand call, a time.Now() in a hot path, or a float ==
// comparison in LER code silently breaks the paper's Table-2/Fig-13
// reproductions. The rules here (see AllRules) turn each contract into a
// build-time error.
//
// The framework is deliberately tiny — go/ast + go/parser + go/types, no
// golang.org/x/tools — so it obeys the repo's no-external-deps rule:
//
//   - Load parses and type-checks the module's packages (tolerantly:
//     unresolved external imports degrade to untyped expressions rather
//     than failing the load).
//   - A Rule inspects one package per Pass and reports Diagnostics.
//   - `//lint:allow <rule>[,<rule>...] <reason>` on, or on the line above,
//     an offending line suppresses the diagnostic. The reason is
//     mandatory: an allow comment without one is itself a diagnostic, so
//     every suppression in the tree documents why the contract is waived.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Rule is one named check over a single package.
type Rule struct {
	Name string
	Doc  string // one-line contract statement, shown in -rules output
	Run  func(*Pass)
}

// Pass gives a rule access to one loaded package and a reporting sink.
type Pass struct {
	Pkg   *Package
	rule  *Rule
	diags *[]Diagnostic
}

// CFG returns the control-flow graph for fn (*ast.FuncDecl or *ast.FuncLit),
// building it on first use and caching it on the package so the whole rule
// pack shares one graph per function. Returns nil for bodyless declarations.
func (p *Pass) CFG(fn ast.Node) *CFG {
	if p.Pkg.cfgs == nil {
		p.Pkg.cfgs = map[ast.Node]*CFG{}
	}
	g, ok := p.Pkg.cfgs[fn]
	if !ok {
		g = BuildCFG(fn)
		p.Pkg.cfgs[fn] = g
	}
	return g
}

// Reportf records a diagnostic for the running rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic plus its suppression status. RunDetailed
// returns waived findings too so reporting layers (caliqec-lint -json, CI
// artifacts) can show which contracts were consciously waived where; Run
// drops them for callers that only care about violations.
type Finding struct {
	Diagnostic
	Waived bool
}

// Run applies every rule to every package and returns the surviving
// diagnostics: suppressed ones are dropped, and malformed or unknown
// suppression comments are reported under the pseudo-rule "lint". The
// result is sorted by file, line, column, rule for stable output.
func Run(pkgs []*Package, rules []*Rule) []Diagnostic {
	var out []Diagnostic
	for _, f := range RunDetailed(pkgs, rules) {
		if !f.Waived {
			out = append(out, f.Diagnostic)
		}
	}
	return out
}

// RunDetailed is Run keeping the waived diagnostics, each marked with
// Waived=true instead of being dropped.
func RunDetailed(pkgs []*Package, rules []*Rule) []Finding {
	// A waiver is "unknown" only if no rule in the whole registry carries
	// that name — a subset run (focused tests, single-rule invocations)
	// must tolerate waivers aimed at rules it is not applying, while still
	// catching genuine typos.
	known := make(map[string]bool, len(rules))
	for _, r := range AllRules() {
		known[r.Name] = true
	}
	for _, r := range rules {
		known[r.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, r := range rules {
			r.Run(&Pass{Pkg: pkg, rule: r, diags: &diags})
		}
		allows, allowDiags := collectAllows(pkg, known)
		for _, d := range allowDiags {
			out = append(out, Finding{Diagnostic: d})
		}
		for _, d := range diags {
			out = append(out, Finding{Diagnostic: d, Waived: allows.covers(d)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
