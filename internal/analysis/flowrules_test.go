package analysis_test

import (
	"testing"

	"caliqec/internal/analysis"
)

// The concurrency rule pack runs on the CFG + dataflow layer: every test
// here includes at least one flow-sensitive shape (early return, branch
// merge, loop back-edge, goto cycle) that the flat AST walks of PR 2-6
// could not express.

func TestLockBalance(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on an early return holding the lock",
			map[string]string{"a/a.go": `package a

import "sync"

func X(mu *sync.Mutex, b bool) int {
	mu.Lock()
	if b {
		return 1
	}
	mu.Unlock()
	return 0
}
`},
			map[string]int{"lockbalance": 1},
		},
		{
			"silent with defer Unlock",
			map[string]string{"a/a.go": `package a

import "sync"

func X(mu *sync.Mutex, b bool) int {
	mu.Lock()
	defer mu.Unlock()
	if b {
		return 1
	}
	return 0
}
`},
			nil,
		},
		{
			"silent with explicit Unlock on every branch",
			map[string]string{"a/a.go": `package a

import "sync"

func X(mu *sync.Mutex, b bool) int {
	mu.Lock()
	if b {
		mu.Unlock()
		return 1
	}
	mu.Unlock()
	return 0
}
`},
			nil,
		},
		{
			"fires when an explicit panic escapes the lock",
			map[string]string{"a/a.go": `package a

import "sync"

func X(mu *sync.Mutex, b bool) {
	mu.Lock()
	if b {
		panic("boom")
	}
	mu.Unlock()
}
`},
			map[string]int{"lockbalance": 1},
		},
		{
			"silent when a deferred closure unlocks",
			map[string]string{"a/a.go": `package a

import "sync"

func X(mu *sync.Mutex, b bool) {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	if b {
		panic("boom")
	}
}
`},
			nil,
		},
		{
			"tracks RLock/RUnlock separately from Lock/Unlock",
			map[string]string{"a/a.go": `package a

import "sync"

func X(mu *sync.RWMutex, b bool) int {
	mu.RLock()
	if b {
		mu.Unlock()
		return 1
	}
	mu.RUnlock()
	return 0
}
`},
			map[string]int{"lockbalance": 1},
		},
		{
			"fires on an embedded mutex through a struct field",
			map[string]string{"a/a.go": `package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Bump(b bool) {
	s.mu.Lock()
	if b {
		return
	}
	s.n++
	s.mu.Unlock()
}
`},
			map[string]int{"lockbalance": 1},
		},
		{
			"silent on lock/unlock per iteration in a loop",
			map[string]string{"a/a.go": `package a

import "sync"

func X(mu *sync.Mutex, xs []int) {
	for range xs {
		mu.Lock()
		mu.Unlock()
	}
}
`},
			nil,
		},
		{
			"waiver on the Lock line suppresses a handoff",
			map[string]string{"a/a.go": `package a

import "sync"

func Acquire(mu *sync.Mutex) {
	mu.Lock() //lint:allow lockbalance caller releases via Release
}

func Release(mu *sync.Mutex) {
	mu.Unlock()
}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.LockBalance()), tc.want)
		})
	}
}

func TestCtxCancel(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on an early return skipping cancel",
			map[string]string{"a/a.go": `package a

import "context"

func X(parent context.Context, b bool) error {
	ctx, cancel := context.WithCancel(parent)
	if b {
		return ctx.Err()
	}
	cancel()
	return nil
}
`},
			map[string]int{"ctxcancel": 1},
		},
		{
			"silent with defer cancel",
			map[string]string{"a/a.go": `package a

import (
	"context"
	"time"
)

func X(parent context.Context, b bool) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	if b {
		return ctx.Err()
	}
	return nil
}
`},
			nil,
		},
		{
			"fires on cancel discarded with _",
			map[string]string{"a/a.go": `package a

import "context"

func X(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent)
	return ctx
}
`},
			map[string]int{"ctxcancel": 1},
		},
		{
			"silent when cancel escapes by return",
			map[string]string{"a/a.go": `package a

import "context"

func X(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}
`},
			nil,
		},
		{
			"silent when cancel is captured by a closure",
			map[string]string{"a/a.go": `package a

import "context"

func X(parent context.Context, done chan struct{}) context.Context {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		<-done
		cancel()
	}()
	return ctx
}
`},
			nil,
		},
		{
			"fires only on the leaky branch of a select",
			map[string]string{"a/a.go": `package a

import "context"

func X(parent context.Context, quit chan struct{}) {
	ctx, cancel := context.WithCancel(parent)
	select {
	case <-quit:
		return
	case <-ctx.Done():
		cancel()
	}
}
`},
			map[string]int{"ctxcancel": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.CtxCancel()), tc.want)
		})
	}
}

func TestGoroutineLeak(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on a detached goroutine in a for loop",
			map[string]string{"a/a.go": `package a

func x(work func()) {
	for {
		go func() {
			work()
		}()
	}
}
`},
			map[string]int{"goroutineleak": 1},
		},
		{
			"fires on a goto-formed accept loop",
			map[string]string{"a/a.go": `package a

func x(accept func() func()) {
loop:
	h := accept()
	go func() {
		h()
	}()
	goto loop
}
`},
			map[string]int{"goroutineleak": 1},
		},
		{
			"silent when the closure watches a context",
			map[string]string{"a/a.go": `package a

import "context"

func x(ctx context.Context, work func()) {
	for {
		go func() {
			select {
			case <-ctx.Done():
			default:
				work()
			}
		}()
	}
}
`},
			nil,
		},
		{
			"silent when tied to a WaitGroup",
			map[string]string{"a/a.go": `package a

import "sync"

func x(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w func()) {
			defer wg.Done()
			w()
		}(w)
	}
	wg.Wait()
}
`},
			nil,
		},
		{
			"silent when a quit channel is visible in the closure",
			map[string]string{"a/a.go": `package a

type s struct{ quit chan struct{} }

func (sv *s) serve(work func()) {
	for {
		go func() {
			select {
			case <-sv.quit:
			default:
				work()
			}
		}()
	}
}
`},
			nil,
		},
		{
			"fires when the only channel is goroutine-local",
			map[string]string{"a/a.go": `package a

func x(work func()) {
	for {
		go func() {
			private := make(chan struct{})
			_ = private
			work()
		}()
	}
}
`},
			map[string]int{"goroutineleak": 1},
		},
		{
			"silent outside loops",
			map[string]string{"a/a.go": `package a

func x(work func()) {
	go func() {
		work()
	}()
}
`},
			nil,
		},
		{
			// The fleet worker-pool shutdown pattern: a constructor spawns N
			// workers in a loop, each tied to the pool's WaitGroup through a
			// free-variable defer; Close joins them. The wg tie is the
			// shutdown story the rule wants to see.
			"silent on the shared-pool worker spawn (wg-tied, Close joins)",
			map[string]string{"a/a.go": `package a

import "sync"

type pool struct {
	wg     sync.WaitGroup
	closed bool
}

func (p *pool) worker() {}

func newPool(n int) *pool {
	p := &pool{}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.worker()
		}()
	}
	return p
}

func (p *pool) close() {
	p.closed = true
	p.wg.Wait()
}
`},
			nil,
		},
		{
			// The same spawn loop with the WaitGroup tie dropped: nothing
			// joins the workers, so pool shutdown leaks n goroutines.
			"fires on the pool worker spawn without a join",
			map[string]string{"a/a.go": `package a

type pool struct{ closed bool }

func (p *pool) worker() {}

func newPool(n int) *pool {
	p := &pool{}
	for i := 0; i < n; i++ {
		go func() {
			p.worker()
		}()
	}
	return p
}
`},
			map[string]int{"goroutineleak": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.GoroutineLeak()), tc.want)
		})
	}
}

func TestWgDiscipline(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on Add inside the spawned goroutine",
			map[string]string{"a/a.go": `package a

import "sync"

func x(work func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
`},
			map[string]int{"wgdiscipline": 1},
		},
		{
			"fires when an early return skips Done",
			map[string]string{"a/a.go": `package a

import "sync"

func x(wg *sync.WaitGroup, b bool, work func()) {
	wg.Add(1)
	go func() {
		if b {
			return
		}
		work()
		wg.Done()
	}()
}
`},
			map[string]int{"wgdiscipline": 1},
		},
		{
			"silent with defer Done",
			map[string]string{"a/a.go": `package a

import "sync"

func x(wg *sync.WaitGroup, b bool, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		if b {
			return
		}
		work()
	}()
}
`},
			nil,
		},
		{
			"fires on Add after Wait",
			map[string]string{"a/a.go": `package a

import "sync"

func x(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
`},
			map[string]int{"wgdiscipline": 1},
		},
		{
			"fires on Add reached after Wait around a loop back-edge",
			map[string]string{"a/a.go": `package a

import "sync"

func x(n int, work func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
		wg.Wait()
	}
}
`},
			map[string]int{"wgdiscipline": 1},
		},
		{
			"silent on the canonical spawn pattern",
			map[string]string{"a/a.go": `package a

import "sync"

func x(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w func()) {
			defer wg.Done()
			w()
		}(w)
	}
	wg.Wait()
}
`},
			nil,
		},
		{
			// The fleet pool's constructor/Close split: Add(1) before each
			// spawn in the constructor, Wait in a different method. The
			// discipline holds per flow path even though Add and Wait never
			// share a function body.
			"silent on the pool constructor Add / Close Wait split",
			map[string]string{"a/a.go": `package a

import "sync"

type pool struct{ wg sync.WaitGroup }

func (p *pool) worker() {}

func newPool(n int) *pool {
	p := &pool{}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.worker()
		}()
	}
	return p
}

func (p *pool) close() { p.wg.Wait() }
`},
			nil,
		},
		{
			// The broken variant: the worker registers itself, so Close can
			// Wait before any Add lands — the classic racy pool shutdown.
			"fires when pool workers Add themselves",
			map[string]string{"a/a.go": `package a

import "sync"

type pool struct{ wg sync.WaitGroup }

func (p *pool) worker() {}

func newPool(n int) *pool {
	p := &pool{}
	for i := 0; i < n; i++ {
		go func() {
			p.wg.Add(1)
			defer p.wg.Done()
			p.worker()
		}()
	}
	return p
}

func (p *pool) close() { p.wg.Wait() }
`},
			map[string]int{"wgdiscipline": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.WgDiscipline()), tc.want)
		})
	}
}

func TestDeferLoop(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on defer Close in a range body",
			map[string]string{"a/a.go": `package a

import "os"

func x(names []string) error {
	for _, n := range names {
		f, err := os.Open(n)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return nil
}
`},
			map[string]int{"deferloop": 1},
		},
		{
			"fires on defer Unlock in a goto loop",
			map[string]string{"a/a.go": `package a

import "sync"

func x(mu *sync.Mutex, n int) {
top:
	mu.Lock()
	defer mu.Unlock()
	n--
	if n > 0 {
		goto top
	}
}
`},
			map[string]int{"deferloop": 1},
		},
		{
			"fires on a deferred cancel func in a loop",
			map[string]string{"a/a.go": `package a

import "context"

func x(parent context.Context, n int) {
	for i := 0; i < n; i++ {
		_, cancel := context.WithCancel(parent)
		defer cancel()
	}
}
`},
			map[string]int{"deferloop": 1},
		},
		{
			"silent when the defer lives in a per-iteration closure",
			map[string]string{"a/a.go": `package a

import "os"

func x(names []string) error {
	for _, n := range names {
		if err := func() error {
			f, err := os.Open(n)
			if err != nil {
				return err
			}
			defer f.Close()
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}
`},
			nil,
		},
		{
			"silent on defer outside loops",
			map[string]string{"a/a.go": `package a

import "os"

func x(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.DeferLoop()), tc.want)
		})
	}
}

// TestObsSpanFlow pins the flow-sensitive shapes the pre-CFG obsspan walk
// could not decide: per-arm select/switch coverage and goto-formed paths.
func TestObsSpanFlow(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"silent when every select arm ends the span",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, a, b chan int) {
	_, sp := obs.StartSpan(ctx, "x")
	select {
	case <-a:
		sp.End()
	case <-b:
		sp.End()
	default:
		sp.End()
	}
}
`},
			nil,
		},
		{
			"fires when one select arm skips End",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, a chan int) {
	_, sp := obs.StartSpan(ctx, "x")
	select {
	case <-a:
		sp.End()
	default:
	}
}
`},
			map[string]int{"obsspan": 1},
		},
		{
			"fires when a switch case returns without End",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, n int) {
	_, sp := obs.StartSpan(ctx, "x")
	switch n {
	case 0:
		return
	default:
		sp.End()
	}
}
`},
			map[string]int{"obsspan": 1},
		},
		{
			"silent when a goto retry loop ends the span on both exits",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, tries int) {
	_, sp := obs.StartSpan(ctx, "x")
retry:
	if tries > 0 {
		tries--
		goto retry
	}
	sp.End()
}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.ObsSpan()), tc.want)
		})
	}
}

// TestChanCloseFlow pins the path-sensitive close shapes the pre-CFG
// per-block walk missed: close and use meeting across a branch join,
// path-dependent double closes, and rebinding clearing the closed state.
func TestChanCloseFlow(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on send after a branchy close joins the main path",
			map[string]string{"a/a.go": `package a

func X(done bool) {
	ch := make(chan int, 1)
	if done {
		close(ch)
	}
	ch <- 1
}
`},
			map[string]int{"chanclose": 1},
		},
		{
			"fires once when both branches close before the send",
			map[string]string{"a/a.go": `package a

func X(b bool) {
	ch := make(chan int, 1)
	if b {
		close(ch)
	} else {
		close(ch)
	}
	ch <- 1
}
`},
			map[string]int{"chanclose": 1},
		},
		{
			"fires on a path-dependent double close",
			map[string]string{"a/a.go": `package a

func X(b bool) {
	ch := make(chan int)
	if b {
		close(ch)
	}
	close(ch)
}
`},
			map[string]int{"chanclose": 1},
		},
		{
			"silent when rebinding makes a fresh channel after close",
			map[string]string{"a/a.go": `package a

func X() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
}
`},
			nil,
		},
		{
			"silent when the closed branch returns before the send",
			map[string]string{"a/a.go": `package a

func X(done bool) {
	ch := make(chan int, 1)
	if done {
		close(ch)
		return
	}
	ch <- 1
}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.ChanClose()), tc.want)
		})
	}
}
