package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package of the module under analysis.
type Package struct {
	Path      string // import path, e.g. "caliqec/internal/mc"
	Name      string // package clause name
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // parallel to Filenames; test files are excluded
	Filenames []string
	Types     *types.Package
	Info      *types.Info
	// Target reports whether the package matched a Load pattern (as
	// opposed to being pulled in only as a dependency for type
	// information). Run still analyzes non-target packages' types but the
	// caller typically filters diagnostics to target packages; Run itself
	// runs rules on every loaded package, so lint over "./..." sees all.
	Target bool

	cfgs map[ast.Node]*CFG // per-function CFG cache shared by the rule pack
}

// Load parses and type-checks the packages matching patterns, rooted at the
// module containing dir. Supported patterns: "./..." (every package under
// the module root) and directory paths relative to dir ("." , "./internal/mc").
// In-module dependencies of matched packages are loaded too so that
// cross-package type information is real; imports outside the module
// (standard library included, when source type-checking it fails) degrade
// to empty placeholder packages — analysis is tolerant by construction and
// never fails because of an unresolved external symbol.
func Load(dir string, patterns ...string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := matchDirs(root, dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := map[string]*parsedPkg{}
	// Parse the pattern-matched packages, then chase in-module imports.
	queue := make([]string, 0, len(dirs))
	for _, d := range dirs {
		p, err := parseDir(fset, root, modPath, d)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no buildable Go files
		}
		p.target = true
		byPath[p.importPath] = p
		queue = append(queue, p.importPath)
	}
	for len(queue) > 0 {
		ip := queue[0]
		queue = queue[1:]
		for _, dep := range byPath[ip].imports {
			if !inModule(dep, modPath) {
				continue
			}
			if _, ok := byPath[dep]; ok {
				continue
			}
			depDir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(dep, modPath), "/")))
			p, err := parseDir(fset, root, modPath, depDir)
			if err != nil {
				return nil, err
			}
			if p == nil {
				return nil, fmt.Errorf("analysis: import %q has no Go files in %s", dep, depDir)
			}
			byPath[p.importPath] = p
			queue = append(queue, p.importPath)
		}
	}

	order, err := topoSort(byPath, modPath)
	if err != nil {
		return nil, err
	}

	imp := newModuleImporter(fset, modPath)
	var out []*Package
	for _, ip := range order {
		pp := byPath[ip]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			// Tolerant: record what can be typed, keep going on errors
			// (missing members of placeholder packages, etc.).
			Error: func(error) {},
		}
		tpkg, _ := conf.Check(ip, fset, pp.files, info)
		imp.checked[ip] = tpkg
		out = append(out, &Package{
			Path:      ip,
			Name:      pp.name,
			Dir:       pp.dir,
			Fset:      fset,
			Files:     pp.files,
			Filenames: pp.filenames,
			Types:     tpkg,
			Info:      info,
			Target:    pp.target,
		})
	}
	return out, nil
}

type parsedPkg struct {
	importPath string
	name       string
	dir        string
	files      []*ast.File
	filenames  []string
	imports    []string
	target     bool
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					mp := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(mp); err == nil {
						mp = unq
					}
					return d, mp, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func inModule(importPath, modPath string) bool {
	return importPath == modPath || strings.HasPrefix(importPath, modPath+"/")
}

// matchDirs expands patterns to candidate package directories.
func matchDirs(root, base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			err := filepath.WalkDir(root, func(p string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !de.IsDir() {
					return nil
				}
				name := de.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			p := pat
			if !filepath.IsAbs(p) {
				p = filepath.Join(base, p)
			}
			if fi, err := os.Stat(p); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
			}
			add(filepath.Clean(p))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory. It returns nil if
// the directory contains no buildable Go files.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	ip := modPath
	if rel != "." {
		ip = modPath + "/" + filepath.ToSlash(rel)
	}
	pp := &parsedPkg{importPath: ip, dir: dir}
	importSet := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		fn := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pp.name == "" {
			pp.name = f.Name.Name
		}
		if f.Name.Name != pp.name {
			// Mixed-package directory (e.g. a main shim next to a library):
			// keep the majority package by ignoring the stray file.
			continue
		}
		pp.files = append(pp.files, f)
		pp.filenames = append(pp.filenames, fn)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	for p := range importSet {
		pp.imports = append(pp.imports, p)
	}
	sort.Strings(pp.imports)
	return pp, nil
}

// topoSort orders packages dependency-first over in-module imports.
func topoSort(byPath map[string]*parsedPkg, modPath string) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, dep := range byPath[ip].imports {
			if inModule(dep, modPath) {
				if _, ok := byPath[dep]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for ip := range byPath {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves in-module imports to the packages type-checked
// earlier in topological order, standard-library imports via the source
// importer when possible, and everything else to an empty placeholder
// package so that type-checking degrades instead of failing.
type moduleImporter struct {
	checked map[string]*types.Package
	fakes   map[string]*types.Package
	src     types.ImporterFrom
	modPath string
}

// stdImporter source-type-checks GOROOT packages once per process: the
// importer memoizes every package it checks, so repeated Load calls (the
// lint CLI loads one module, tests load many fixture modules) share the
// work. Standard-library positions land in this private FileSet — fine,
// since diagnostics only ever point into the loaded module.
var stdImporter = sync.OnceValue(func() types.ImporterFrom {
	imp, _ := importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	return imp
})

func newModuleImporter(fset *token.FileSet, modPath string) *moduleImporter {
	return &moduleImporter{
		checked: map[string]*types.Package{},
		fakes:   map[string]*types.Package{},
		modPath: modPath,
		src:     stdImporter(),
	}
}

func (m *moduleImporter) Import(p string) (*types.Package, error) {
	return m.ImportFrom(p, "", 0)
}

func (m *moduleImporter) ImportFrom(p, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.checked[p]; ok && pkg != nil {
		return pkg, nil
	}
	if pkg, ok := m.fakes[p]; ok {
		return pkg, nil
	}
	if m.src != nil && !strings.Contains(p, ".") && !inModule(p, m.modPath) {
		// Heuristically a GOROOT package (no domain in the path): type-check
		// it from source so float/struct kinds from std resolve for real.
		if pkg, err := m.srcImport(p, srcDir); err == nil && pkg != nil {
			return pkg, nil
		}
	}
	pkg := types.NewPackage(p, path.Base(p))
	pkg.MarkComplete()
	m.fakes[p] = pkg
	return pkg, nil
}

// srcImport shields the loader from srcimporter panics (it can panic on
// exotic build configurations); failures fall back to a placeholder.
func (m *moduleImporter) srcImport(p, srcDir string) (pkg *types.Package, err error) {
	defer func() {
		if r := recover(); r != nil {
			pkg, err = nil, fmt.Errorf("source import of %s panicked: %v", p, r)
		}
	}()
	return m.src.ImportFrom(p, srcDir, 0)
}
