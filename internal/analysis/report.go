package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Report is the machine-readable lint output consumed by CI: every finding
// (waived ones included, marked as such) plus summary counts, so a pipeline
// can gate on Violations without re-parsing the findings and an auditor can
// read the waiver inventory from the same artifact.
type Report struct {
	Findings   []ReportFinding `json:"findings"`
	Violations int             `json:"violations"` // unwaived findings
	Waived     int             `json:"waived"`
}

// ReportFinding is one diagnostic in JSON form. File is relative to the
// directory the lint run was rooted at when possible, absolute otherwise.
type ReportFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Waived  bool   `json:"waived"`
}

// NewReport converts findings to the JSON report shape, relativizing file
// paths against relTo (pass "" to keep them as reported).
func NewReport(findings []Finding, relTo string) Report {
	r := Report{Findings: []ReportFinding{}}
	for _, f := range findings {
		file := f.Pos.Filename
		if relTo != "" {
			if rel, err := filepath.Rel(relTo, file); err == nil && !filepath.IsAbs(rel) {
				file = rel
			}
		}
		r.Findings = append(r.Findings, ReportFinding{
			File:    file,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
			Waived:  f.Waived,
		})
		if f.Waived {
			r.Waived++
		} else {
			r.Violations++
		}
	}
	return r
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
