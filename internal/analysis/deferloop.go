package analysis

import (
	"go/ast"
)

// DeferLoop flags resource-releasing defers registered inside a loop body.
// Defers run at function exit, not at iteration end, so a per-iteration
// `defer f.Close()` holds every file of the loop open until the function
// returns — a quiet descriptor/lock/span leak proportional to iteration
// count. Contract (DESIGN.md §13): per-iteration resources are released
// per-iteration, either explicitly or by hoisting the body into a function.
//
// "Inside a loop" is CFG cycle membership (goto loops included). "Resource-
// releasing" is a vocabulary check on the deferred call: the release methods
// the repo's resource types share (Close/Unlock/RUnlock/Done/End/Stop/
// Release/Shutdown), a context.CancelFunc value, or a closure invoking one
// of those. A defer inside a function literal that merely *sits* in a loop
// is not flagged — it runs at the literal's exit, which is per-invocation.
// Intentional accumulation (N small cleanups bounded by a small N) carries a
// //lint:allow deferloop waiver.
func DeferLoop() *Rule {
	return &Rule{
		Name: "deferloop",
		Doc:  "no resource-releasing defer inside a loop body: it runs at function exit, so iterations pile up",
		Run: func(p *Pass) {
			eachFuncBody(p, func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
				g := p.CFG(fn)
				if g == nil {
					return
				}
				for _, b := range g.Blocks {
					if !g.InLoop(b) {
						continue
					}
					for _, n := range b.Nodes {
						d, ok := n.(*ast.DeferStmt)
						if !ok {
							continue
						}
						if what, ok := releasingCall(p, d.Call); ok {
							p.Reportf(d.Pos(), "defer %s inside a loop runs only at function exit, piling up one registration per iteration: release explicitly or hoist the loop body into a function", what)
						}
					}
				}
			})
		},
	}
}

// releaseMethods is the shared release vocabulary of the repo's resource
// types: files/connections/channels (Close), locks (Unlock/RUnlock),
// WaitGroups (Done), obs spans (End), tickers/servers (Stop/Shutdown),
// pooled objects (Release).
var releaseMethods = map[string]bool{
	"Close": true, "Unlock": true, "RUnlock": true, "Done": true,
	"End": true, "Stop": true, "Release": true, "Shutdown": true,
}

// releasingCall classifies call as resource-releasing and returns a short
// rendering for the diagnostic.
func releasingCall(p *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if releaseMethods[fun.Sel.Name] {
			return exprText(fun) + "()", true
		}
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[fun]; obj != nil && namedFrom(obj.Type(), "context", "CancelFunc") {
			return fun.Name + "()", true
		}
	case *ast.FuncLit:
		found := ""
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if what, ok := releasingCall(p, inner); ok {
					found = what
					return false
				}
			}
			return true
		})
		if found != "" {
			return "func() { ... " + found + " ... }()", true
		}
	}
	return "", false
}

// exprText renders a selector chain compactly (best-effort, identifiers and
// dots only) for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	default:
		return "..."
	}
}
