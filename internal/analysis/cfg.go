package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file builds intraprocedural control-flow graphs over function bodies.
// A CFG is the substrate for the flow-sensitive rules (lockbalance, ctxcancel,
// obsspan, ...): where the original AST-walk rules could only ask "does an
// Unlock appear somewhere below this Lock", a CFG rule asks "does every path
// from the Lock to the function exit pass an Unlock" — which is the actual
// contract.
//
// The graph is deliberately simple:
//
//   - Blocks hold a straight-line sequence of atomic nodes (plain statements
//     and the condition/tag expressions of the control statements that end
//     the block). Nodes never contain sub-statements of the same function —
//     a function literal inside a node is an opaque value here and gets its
//     own CFG when analyzed.
//   - Every function has one synthetic Exit block. Returns, falling off the
//     end, explicit panic(...) calls and process terminators (os.Exit,
//     log.Fatal*, runtime.Goexit) all edge to Exit, so "on every path out of
//     the function" is exactly "in every dataflow state reaching Exit".
//     Deferred calls run on both return and panic paths, which is why the
//     rules treat a registered defer as covering all downstream exits.
//   - goto/labeled break/labeled continue resolve to real edges, so loops
//     written with goto are loops here too (InLoop is cycle membership, not
//     syntax).
//
// Dead code after a terminator lands in an "unreachable" block with no
// predecessors; dataflow never reaches it and rules stay silent there.

// CFG is the control-flow graph of one function body.
type CFG struct {
	Fn     ast.Node // *ast.FuncDecl or *ast.FuncLit
	Blocks []*Block // Blocks[0] is Entry; Exit is always last
	Entry  *Block
	Exit   *Block

	scc []int // lazily computed cycle-membership (block index -> scc id, -1 = not on a cycle)
}

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	Kind  string     // entry, exit, if.then, for.body, select.case, ... (for dumps and tests)
	Nodes []ast.Node // statements and control expressions in execution order
	Succs []*Block
}

// BuildCFG constructs the CFG for a *ast.FuncDecl or *ast.FuncLit. It
// returns nil for bodyless declarations. Construction is purely syntactic:
// no type information is needed, so tests can build graphs from parsed
// snippets directly.
func BuildCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	default:
		return nil
	}
	if body == nil {
		return nil
	}
	g := &CFG{Fn: fn}
	b := &cfgBuilder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"} // appended (and numbered) last, in finish
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

type labelInfo struct {
	block *Block // the block the labeled statement starts in (goto target)
}

// branchTarget is one enclosing breakable/continuable construct.
type branchTarget struct {
	label      string // the statement's label, "" if unlabeled
	breakTo    *Block
	continueTo *Block // nil for switch/select (continue passes through to the loop)
}

type cfgBuilder struct {
	g        *CFG
	cur      *Block // nil when the current point is unreachable
	labels   map[string]*labelInfo
	targets  []branchTarget
	curLabel string // label attached to the statement about to be built
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// block returns the current block, starting an unreachable one for dead code.
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// startIn closes the current block with an edge into next and continues there.
func (b *cfgBuilder) startIn(next *Block) {
	if b.cur != nil {
		b.edge(b.cur, next)
	}
	b.cur = next
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a loop/switch/select statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

// labelBlock returns (creating on demand) the goto-target block for name.
func (b *cfgBuilder) labelBlock(name string) *Block {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li.block
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.startIn(lb)
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.BlockStmt:
		b.curLabel = ""
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.block(), b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminatorCall(s.X) {
			b.edge(b.block(), b.g.Exit)
			b.cur = nil
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())

	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, true, b.takeLabel())

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, false, b.takeLabel())

	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Defer, Go, Send, IncDec: atomic, straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		b.edge(b.block(), b.labelBlock(s.Label.Name))
		b.cur = nil
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.block(), t.breakTo)
				break
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo == nil {
				continue // switch/select: continue refers to the enclosing loop
			}
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.block(), t.continueTo)
				break
			}
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchStmt, which links the case to its successor.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.block()

	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	afterThen := b.cur

	var afterElse *Block
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			b.stmtList(e.List)
		default:
			b.stmt(e) // else-if chain
		}
		afterElse = b.cur
	}

	if afterThen == nil && hasElse && afterElse == nil {
		b.cur = nil // both arms terminated: no join point
		return
	}
	done := b.newBlock("if.done")
	if afterThen != nil {
		b.edge(afterThen, done)
	}
	if hasElse {
		if afterElse != nil {
			b.edge(afterElse, done)
		}
	} else {
		b.edge(cond, done) // condition false falls through
	}
	b.cur = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.startIn(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	done := b.newBlock("for.done")
	if s.Cond != nil {
		b.edge(head, done)
	}
	body := b.newBlock("for.body")
	b.edge(head, body)

	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		continueTo = post
	}
	b.targets = append(b.targets, branchTarget{label: label, breakTo: done, continueTo: continueTo})
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	if post != nil {
		b.startIn(post)
		b.stmt(s.Post)
		b.startIn(head)
	} else if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X) // the ranged expression is evaluated once, before the loop
	head := b.newBlock("range.head")
	b.startIn(head)
	done := b.newBlock("range.done")
	b.edge(head, done)
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.cur = body
	// Per-iteration key/value bindings happen at the top of the body.
	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}
	b.targets = append(b.targets, branchTarget{label: label, breakTo: done, continueTo: head})
	b.stmtList(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = done
}

// switchStmt builds expression switches (allowFall=true) and type switches.
// tag is the Tag expression or the type-switch Assign statement.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, allowFall bool, label string) {
	if init != nil {
		b.stmt(init)
	}
	b.add(tag)
	head := b.block()
	done := b.newBlock("switch.done")

	// One block per case, created up front so fallthrough can link forward.
	var caseBlocks []*Block
	hasDefault := false
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		cb := b.newBlock(kind)
		b.edge(head, cb)
		caseBlocks = append(caseBlocks, cb)
	}
	if !hasDefault {
		b.edge(head, done)
	}

	b.targets = append(b.targets, branchTarget{label: label, breakTo: done})
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = allowFall && i+1 < len(caseBlocks)
				continue
			}
			b.stmt(st)
		}
		if b.cur != nil {
			if falls {
				b.edge(b.cur, caseBlocks[i+1])
			} else {
				b.edge(b.cur, done)
			}
			b.cur = nil
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.block()
	if len(s.Body.List) == 0 {
		// select{} blocks forever: everything after is unreachable.
		b.cur = nil
		return
	}
	done := b.newBlock("select.done")
	b.targets = append(b.targets, branchTarget{label: label, breakTo: done})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		cb := b.newBlock(kind)
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	// A select (with or without default) always runs exactly one arm, so
	// the only way past it is through a case: no head->done shortcut.
	b.cur = done
}

// isTerminatorCall reports whether e is a call that never returns control to
// this function: the panic builtin, os.Exit, runtime.Goexit, or log.Fatal*.
// Purely name-based (the builder has no type information); a shadowed panic
// would be misclassified, which only makes the analysis conservative.
func isTerminatorCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// InLoop reports whether b lies on a cycle of the graph — syntactic loops
// (for/range), but equally loops written with goto or labeled continue.
func (g *CFG) InLoop(b *Block) bool {
	g.ensureSCC()
	return g.scc[b.Index] >= 0
}

// LoopSpan returns the source extent covered by the cycle containing b
// (min Pos / max End over the nodes of every block in b's strongly
// connected component). ok is false when b is not on a cycle or the cycle
// has no positioned nodes.
func (g *CFG) LoopSpan(b *Block) (lo, hi token.Pos, ok bool) {
	g.ensureSCC()
	id := g.scc[b.Index]
	if id < 0 {
		return 0, 0, false
	}
	for _, blk := range g.Blocks {
		if g.scc[blk.Index] != id {
			continue
		}
		for _, n := range blk.Nodes {
			if !ok || n.Pos() < lo {
				lo = n.Pos()
			}
			if !ok || n.End() > hi {
				hi = n.End()
			}
			ok = true
		}
	}
	return lo, hi, ok
}

// ensureSCC computes cycle membership with Tarjan's algorithm: a block is on
// a cycle iff its strongly connected component has more than one member, or
// it has a self-edge.
func (g *CFG) ensureSCC() {
	if g.scc != nil {
		return
	}
	n := len(g.Blocks)
	g.scc = make([]int, n)
	for i := range g.scc {
		g.scc[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next, sccID := 0, 0
	var strong func(v int)
	strong = func(v int) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, s := range g.Blocks[v].Succs {
			w := s.Index
			if index[w] < 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			cyclic := len(comp) > 1
			if !cyclic {
				for _, s := range g.Blocks[v].Succs {
					if s.Index == v {
						cyclic = true // self-edge
					}
				}
			}
			if cyclic {
				for _, w := range comp {
					g.scc[w] = sccID
				}
				sccID++
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strong(v)
		}
	}
}

// Dump renders the graph one block per line — "bN kind: [nodes] -> succs" —
// for the golden CFG tests and for debugging rules.
func (g *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Kind)
		if len(b.Nodes) > 0 {
			parts := make([]string, len(b.Nodes))
			for i, n := range b.Nodes {
				parts[i] = nodeString(fset, n)
			}
			fmt.Fprintf(&sb, " [%s]", strings.Join(parts, "; "))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeString renders a node compactly on one line, truncated for readability.
func nodeString(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 44 {
		s = s[:41] + "..."
	}
	return s
}
