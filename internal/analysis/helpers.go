package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgRef resolves x in a qualified identifier x.Sel to the import path of
// the referenced package, using type information so renamed imports are
// followed and locally shadowed identifiers are not mistaken for package
// names. It returns "" when x does not denote a package.
func pkgRef(p *Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isQualified reports whether e is a reference to pkgPath.sel.
func isQualified(p *Pass, e ast.Expr, pkgPath, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	return pkgRef(p, s.X) == pkgPath
}

// isContextType reports whether the type expression denotes context.Context.
func isContextType(p *Pass, t ast.Expr) bool {
	return isQualified(p, t, "context", "Context")
}

// funcTakesContext reports whether ft has a context.Context parameter and,
// if so, whether the first parameter is one.
func funcTakesContext(p *Pass, ft *ast.FuncType) (has, first bool) {
	if ft.Params == nil {
		return false, false
	}
	for i, f := range ft.Params.List {
		if isContextType(p, f.Type) {
			if !has {
				has, first = true, i == 0
			}
		}
	}
	return has, first
}

// fileOf returns the base filename a position belongs to.
func fileOf(p *Pass, pos ast.Node) string {
	return p.Pkg.Fset.Position(pos.Pos()).Filename
}

// deref peels pointers off a type.
func deref(t types.Type) types.Type {
	for {
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = ptr.Elem()
	}
}

// namedFrom reports whether t (after peeling pointers) is the named type
// pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// syncOp classifies call as a method call on a sync.Mutex, sync.RWMutex or
// sync.WaitGroup value — directly or through an embedded field — returning
// the receiver expression, its rendered key (stable within one function,
// e.g. "mu" or "s.mu"), the receiver type name and the method name. The
// resolution is type-driven: a Lock method on an unrelated type does not
// match, and when type information degraded to placeholders the call is
// (conservatively) not classified.
func syncOp(p *Pass, call *ast.CallExpr) (recv ast.Expr, key, typeName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "Add", "Done", "Wait":
	default:
		return nil, "", "", "", false
	}
	var rt types.Type
	if s := p.Pkg.Info.Selections[sel]; s != nil {
		if fn, isFn := s.Obj().(*types.Func); isFn {
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				rt = sig.Recv().Type()
			}
		}
	}
	if rt == nil {
		if tv, found := p.Pkg.Info.Types[sel.X]; found {
			rt = tv.Type
		}
	}
	for _, name := range []string{"Mutex", "RWMutex", "WaitGroup"} {
		if namedFrom(rt, "sync", name) {
			return sel.X, types.ExprString(sel.X), name, sel.Sel.Name, true
		}
	}
	return nil, "", "", "", false
}

// rootIdent returns the leftmost identifier of an expression chain like
// s.pool.mu or (*s).mu, or nil when there is none.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the object id resolves to was declared
// outside the [lo, hi) source extent — i.e. it is a free variable of the
// function literal spanning that extent.
func declaredOutside(p *Pass, id *ast.Ident, lo, hi token.Pos) bool {
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() < lo || obj.Pos() >= hi
}
