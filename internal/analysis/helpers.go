package analysis

import (
	"go/ast"
	"go/types"
)

// pkgRef resolves x in a qualified identifier x.Sel to the import path of
// the referenced package, using type information so renamed imports are
// followed and locally shadowed identifiers are not mistaken for package
// names. It returns "" when x does not denote a package.
func pkgRef(p *Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isQualified reports whether e is a reference to pkgPath.sel.
func isQualified(p *Pass, e ast.Expr, pkgPath, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	return pkgRef(p, s.X) == pkgPath
}

// isContextType reports whether the type expression denotes context.Context.
func isContextType(p *Pass, t ast.Expr) bool {
	return isQualified(p, t, "context", "Context")
}

// funcTakesContext reports whether ft has a context.Context parameter and,
// if so, whether the first parameter is one.
func funcTakesContext(p *Pass, ft *ast.FuncType) (has, first bool) {
	if ft.Params == nil {
		return false, false
	}
	for i, f := range ft.Params.List {
		if isContextType(p, f.Type) {
			if !has {
				has, first = true, i == 0
			}
		}
	}
	return has, first
}

// fileOf returns the base filename a position belongs to.
func fileOf(p *Pass, pos ast.Node) string {
	return p.Pkg.Fset.Position(pos.Pos()).Filename
}
