package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caliqec/internal/analysis"
)

// Fixture modules are written to a temp dir with their own go.mod so each
// test exercises the real Load path: module discovery, "./..." matching,
// in-module import chasing, and tolerant type-checking.
const goMod = "module fixture\n\ngo 1.22\n"

func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(goMod), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		fn := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(fn), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fn, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func lint(t *testing.T, files map[string]string, rules ...*analysis.Rule) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := analysis.Load(writeFixture(t, files), "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(rules) == 0 {
		rules = analysis.AllRules()
	}
	return analysis.Run(pkgs, rules)
}

// wantCounts asserts the exact multiset of rule names in diags.
func wantCounts(t *testing.T, diags []analysis.Diagnostic, want map[string]int) {
	t.Helper()
	got := map[string]int{}
	for _, d := range diags {
		got[d.Rule]++
	}
	for r, n := range want {
		if got[r] != n {
			t.Errorf("rule %s: got %d diagnostic(s), want %d\nall: %v", r, got[r], n, diags)
		}
	}
	for r, n := range got {
		if want[r] == 0 {
			t.Errorf("unexpected %d %s diagnostic(s): %v", n, r, diags)
		}
	}
}

func TestNakedRand(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on math/rand import",
			map[string]string{"a/a.go": `package a

import "math/rand"

func X() int { return rand.Int() }
`},
			map[string]int{"nakedrand": 1},
		},
		{
			"fires on blank and v2 imports",
			map[string]string{"a/a.go": `package a

import (
	_ "math/rand"
	"math/rand/v2"
)

func X() int { return rand.Int() }
`},
			map[string]int{"nakedrand": 2},
		},
		{
			"silent inside internal/rng",
			map[string]string{"internal/rng/r.go": `package rng

import "math/rand"

func X() int { return rand.Int() }
`},
			nil,
		},
		{
			"silent on crypto/rand",
			map[string]string{"a/a.go": `package a

import "crypto/rand"

var _ = rand.Read
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.NakedRand()), tc.want)
		})
	}
}

func TestTimeNow(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		allow []string
		want  map[string]int
	}{
		{
			"fires on Now, Since and Until in a library package",
			map[string]string{"a/a.go": `package a

import "time"

func X() float64 {
	t0 := time.Now()
	_ = time.Until(t0)
	return time.Since(t0).Seconds()
}
`},
			nil,
			map[string]int{"timenow": 3},
		},
		{
			"fires through a renamed import",
			map[string]string{"a/a.go": `package a

import tm "time"

func X() tm.Time { return tm.Now() }
`},
			nil,
			map[string]int{"timenow": 1},
		},
		{
			"silent in package main",
			map[string]string{"cmd/x/main.go": `package main

import "time"

func main() { _ = time.Now() }
`},
			nil,
			nil,
		},
		{
			"silent in an allowed timing file",
			map[string]string{"a/clock.go": `package a

import "time"

func X() time.Time { return time.Now() }
`},
			[]string{"clock.go"},
			map[string]int{},
		},
		{
			"silent on a non-time Now",
			map[string]string{"a/a.go": `package a

type clock struct{}

func (clock) Now() int { return 0 }

func X() int { return clock{}.Now() }
`},
			nil,
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.TimeNow(tc.allow...)), tc.want)
		})
	}
}

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on float64 == and !=",
			map[string]string{"a/a.go": `package a

func X(a, b float64) bool { return a == b || a != 0.0 }
`},
			map[string]int{"floateq": 2},
		},
		{
			"fires on float32 and named float types",
			map[string]string{"a/a.go": `package a

type Prob float64

func X(p, q Prob, f, g float32) bool { return p == q || f == g }
`},
			map[string]int{"floateq": 2},
		},
		{
			"silent on integer equality and float ordering",
			map[string]string{"a/a.go": `package a

func X(i, j int, a, b float64) bool { return i == j || a < b }
`},
			nil,
		},
		{
			"silent on stdlib integer-backed types",
			map[string]string{"a/a.go": `package a

import "time"

func X(d time.Duration) bool { return d == 0 }
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.FloatEq()), tc.want)
		})
	}
}

func TestCtxFirst(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires when context is not the first parameter",
			map[string]string{"a/a.go": `package a

import "context"

func X(n int, ctx context.Context) error { return ctx.Err() }
`},
			map[string]int{"ctxfirst": 1},
		},
		{
			"fires on methods and interface methods",
			map[string]string{"a/a.go": `package a

import "context"

type T struct{}

func (T) M(n int, ctx context.Context) error { return ctx.Err() }

type I interface {
	N(n int, ctx context.Context) error
}
`},
			map[string]int{"ctxfirst": 2},
		},
		{
			"fires on a context stored in a struct",
			map[string]string{"a/a.go": `package a

import "context"

type T struct {
	ctx context.Context
	n   int
}
`},
			map[string]int{"ctxfirst": 1},
		},
		{
			"silent when context comes first",
			map[string]string{"a/a.go": `package a

import "context"

func X(ctx context.Context, n int) error { return ctx.Err() }

func Y() {}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.CtxFirst()), tc.want)
		})
	}
}

func TestPanicPolicy(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on panic in a library package",
			map[string]string{"a/a.go": `package a

func X(n int) {
	if n < 0 {
		panic("negative")
	}
}
`},
			map[string]int{"panicpolicy": 1},
		},
		{
			"silent in package main",
			map[string]string{"cmd/x/main.go": `package main

func main() { panic("boom") }
`},
			nil,
		},
		{
			"silent in internal/circuit's builder",
			map[string]string{"internal/circuit/builder.go": `package circuit

func X() { panic("misuse") }
`},
			nil,
		},
		{
			"fires elsewhere in internal/circuit",
			map[string]string{"internal/circuit/circuit.go": `package circuit

func X() { panic("misuse") }
`},
			map[string]int{"panicpolicy": 1},
		},
		{
			"silent when panic is shadowed",
			map[string]string{"a/a.go": `package a

func X() {
	panic := func(string) {}
	panic("not the builtin")
}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.PanicPolicy()), tc.want)
		})
	}
}

func TestBareLoop(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires on an exported function launching a goroutine without context",
			map[string]string{"a/a.go": `package a

func X() {
	go func() {}()
}
`},
			map[string]int{"bareloop": 1},
		},
		{
			"fires on an exported method of an exported type",
			map[string]string{"a/a.go": `package a

type T struct{}

func (t *T) Run() {
	go func() {}()
}
`},
			map[string]int{"bareloop": 1},
		},
		{
			"silent when the function takes a context",
			map[string]string{"a/a.go": `package a

import "context"

func X(ctx context.Context) {
	go func() { <-ctx.Done() }()
}
`},
			nil,
		},
		{
			"silent on unexported functions and unexported receivers",
			map[string]string{"a/a.go": `package a

type t struct{}

func (t) Run() { go func() {}() }

func x() { go func() {}() }
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.BareLoop()), tc.want)
		})
	}
}

func TestSuppression(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"same-line allow suppresses",
			map[string]string{"a/a.go": `package a

func X(a, b float64) bool {
	return a == b //lint:allow floateq exact sentinel documented here
}
`},
			nil,
		},
		{
			"previous-line allow suppresses",
			map[string]string{"a/a.go": `package a

func X(a, b float64) bool {
	//lint:allow floateq exact sentinel documented here
	return a == b
}
`},
			nil,
		},
		{
			"allow two lines above does not suppress",
			map[string]string{"a/a.go": `package a

func X(a, b float64) bool {
	//lint:allow floateq too far away

	return a == b
}
`},
			map[string]int{"floateq": 1},
		},
		{
			"comma list covers several rules on one line",
			map[string]string{"a/a.go": `package a

import "time"

func X(a float64) bool {
	//lint:allow floateq,timenow startup stamp compared exactly
	return a == float64(time.Now().Unix())
}
`},
			nil,
		},
		{
			"allow without a reason is itself reported",
			map[string]string{"a/a.go": `package a

func X(a, b float64) bool {
	return a == b //lint:allow floateq
}
`},
			// A reason-less allow is invalid, so it does not suppress: both
			// the malformed comment and the original violation surface.
			map[string]int{"lint": 1, "floateq": 1},
		},
		{
			"allow naming an unknown rule is reported",
			map[string]string{"a/a.go": `package a

//lint:allow nosuchrule because reasons
func X() {}
`},
			map[string]int{"lint": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files), tc.want)
		})
	}
}

// TestCrossPackageTypes proves the loader feeds real type information across
// in-module package boundaries: a named float type defined in one package
// must trigger floateq when compared in another.
func TestCrossPackageTypes(t *testing.T) {
	diags := lint(t, map[string]string{
		"prob/prob.go": `package prob

type P float64
`,
		"use/use.go": `package use

import "fixture/prob"

func Same(a, b prob.P) bool { return a == b }
`,
	}, analysis.FloatEq())
	wantCounts(t, diags, map[string]int{"floateq": 1})
	if len(diags) == 1 && !strings.Contains(diags[0].Pos.Filename, "use.go") {
		t.Errorf("diagnostic in %s, want use.go", diags[0].Pos.Filename)
	}
}

func TestAllRulesNamedAndDocumented(t *testing.T) {
	rules := analysis.AllRules()
	if len(rules) < 7 {
		t.Fatalf("AllRules returned %d rules, want >= 7", len(rules))
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if r.Name == "" || r.Doc == "" || r.Run == nil {
			t.Errorf("rule %+v missing name, doc or run", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
}

// TestDiagnosticsSorted checks Run's stable output order across files.
func TestDiagnosticsSorted(t *testing.T) {
	diags := lint(t, map[string]string{
		"b/b.go": `package b

func X(a, b float64) bool { return a == b }
`,
		"a/a.go": `package a

func Y(a, b float64) bool { return a != b && a == 0 }
`,
	}, analysis.FloatEq())
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for i := 1; i < len(diags); i++ {
		p, q := diags[i-1].Pos, diags[i].Pos
		if p.Filename > q.Filename || (p.Filename == q.Filename && p.Line > q.Line) ||
			(p.Filename == q.Filename && p.Line == q.Line && p.Column > q.Column) {
			t.Errorf("diagnostics out of order: %v before %v", diags[i-1], diags[i])
		}
	}
}

// obsFixture is a module-local stand-in for caliqec/internal/obs with the
// same StartSpan shape, so the obsspan rule resolves the span through real
// type information.
const obsFixture = `package obs

import "context"

type Span struct{}

func (s *Span) End()                    {}
func (s *Span) SetAttr(k string, v any) {}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) { return ctx, nil }
`

func TestObsSpan(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  map[string]int
	}{
		{
			"fires when the span is never ended",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "x")
	sp.SetAttr("k", 1)
}
`},
			map[string]int{"obsspan": 1},
		},
		{
			"silent with defer span.End()",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context) error {
	ctx, sp := obs.StartSpan(ctx, "x")
	defer sp.End()
	_ = ctx
	if true {
		return nil
	}
	return nil
}
`},
			nil,
		},
		{
			"silent with explicit End before every return",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, b bool) error {
	_, sp := obs.StartSpan(ctx, "x")
	if b {
		sp.End()
		return nil
	}
	sp.End()
	return nil
}
`},
			nil,
		},
		{
			"fires when only one branch ends the span",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, b bool) error {
	_, sp := obs.StartSpan(ctx, "x")
	if b {
		sp.End()
	}
	return nil
}
`},
			map[string]int{"obsspan": 1},
		},
		{
			"fires when the span is discarded with _",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context) {
	ctx2, _ := obs.StartSpan(ctx, "x")
	_ = ctx2
}
`},
			map[string]int{"obsspan": 1},
		},
		{
			"silent when a deferred closure ends the span",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "x")
	defer func() {
		sp.SetAttr("done", true)
		sp.End()
	}()
}
`},
			nil,
		},
		{
			"fires on an early return before End",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, b bool) error {
	_, sp := obs.StartSpan(ctx, "x")
	if b {
		return nil
	}
	sp.End()
	return nil
}
`},
			map[string]int{"obsspan": 1},
		},
		{
			"fires inside a loop body that leaks the span",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, sp := obs.StartSpan(ctx, "iter")
		sp.SetAttr("i", i)
	}
}
`},
			map[string]int{"obsspan": 1},
		},
		{
			"silent inside a loop body that ends the span",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func X(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, sp := obs.StartSpan(ctx, "iter")
		sp.SetAttr("i", i)
		sp.End()
	}
}
`},
			nil,
		},
		{
			"waiver on the StartSpan line suppresses a hand-off",
			map[string]string{"obs/obs.go": obsFixture, "a/a.go": `package a

import (
	"context"

	"fixture/obs"
)

func Begin(ctx context.Context) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, "x") //lint:allow obsspan ownership handed to the caller, who must End it
	return ctx, sp
}
`},
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCounts(t, lint(t, tc.files, analysis.ObsSpan()), tc.want)
		})
	}
}
