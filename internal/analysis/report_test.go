package analysis_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"caliqec/internal/analysis"
)

// TestRunDetailedAndReport pins the machine-readable contract caliqec-lint
// -json is built on: RunDetailed keeps waived findings marked Waived,
// NewReport counts violations and waivers separately, and the JSON shape
// (file/line/rule/message/waived) round-trips.
func TestRunDetailedAndReport(t *testing.T) {
	dir := writeFixture(t, map[string]string{"a/a.go": `package a

func Eq(a, b float64) bool {
	return a == b
}

func Sentinel(a, b float64) bool {
	return a == b //lint:allow floateq exact sentinel documented here
}
`})
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings := analysis.RunDetailed(pkgs, []*analysis.Rule{analysis.FloatEq()})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (one live, one waived): %v", len(findings), findings)
	}
	report := analysis.NewReport(findings, dir)
	if report.Violations != 1 || report.Waived != 1 {
		t.Fatalf("got violations=%d waived=%d, want 1 and 1", report.Violations, report.Waived)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded analysis.Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Findings) != 2 {
		t.Fatalf("decoded %d findings, want 2", len(decoded.Findings))
	}
	for _, f := range decoded.Findings {
		if f.Rule != "floateq" || f.File != "a/a.go" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
	if decoded.Findings[0].Waived == decoded.Findings[1].Waived {
		t.Errorf("expected exactly one waived finding, got %+v", decoded.Findings)
	}
}
