package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"caliqec/internal/analysis"
)

// buildCFG parses a single function declaration and builds its CFG.
func buildCFG(t *testing.T, fnSrc string) (*analysis.CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n\n"+fnSrc, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			g := analysis.BuildCFG(fd)
			if g == nil {
				t.Fatal("BuildCFG returned nil")
			}
			return g, fset
		}
	}
	t.Fatal("no function in fixture")
	return nil, nil
}

// TestCFGGolden pins exact block/edge structure for the syntax the dataflow
// rules depend on. The dumps are the specification of the builder: a change
// that reshapes a graph must update the golden text deliberately.
func TestCFGGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"straight line",
			`func f() {
	x := 1
	x++
	return
}`,
			`b0 entry: [x := 1; x++; return] -> b1
b1 exit:
`,
		},
		{
			"if else join",
			`func f(b bool) int {
	if b {
		return 1
	} else {
		x := 2
		_ = x
	}
	return 0
}`,
			`b0 entry: [b] -> b1 b2
b1 if.then: [return 1] -> b4
b2 if.else: [x := 2; _ = x] -> b3
b3 if.done: [return 0] -> b4
b4 exit:
`,
		},
		{
			"select with default",
			`func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}`,
			`b0 entry: -> b2 b3
b1 select.done: -> b4
b2 select.case: [v := <-ch; return v] -> b4
b3 select.default: [return 0] -> b4
b4 exit:
`,
		},
		{
			"labeled break and continue",
			`func f() {
outer:
	for i := 0; i < 3; i++ {
		for {
			if i == 1 {
				continue outer
			}
			break outer
		}
	}
}`,
			`b0 entry: -> b1
b1 label.outer: [i := 0] -> b2
b2 for.head: [i < 3] -> b3 b4
b3 for.done: -> b11
b4 for.body: -> b6
b5 for.post: [i++] -> b2
b6 for.head: -> b8
b7 for.done: -> b5
b8 for.body: [i == 1] -> b9 b10
b9 if.then: -> b5
b10 if.done: -> b3
b11 exit:
`,
		},
		{
			"goto forms a loop",
			`func f(n int) {
retry:
	n--
	if n > 0 {
		goto retry
	}
}`,
			`b0 entry: -> b1
b1 label.retry: [n--; n > 0] -> b2 b3
b2 if.then: -> b1
b3 if.done: -> b4
b4 exit:
`,
		},
		{
			"early return inside range",
			`func f(xs []int) int {
	for _, x := range xs {
		if x < 0 {
			return x
		}
	}
	return 0
}`,
			`b0 entry: [xs] -> b1
b1 range.head: -> b2 b3
b2 range.done: [return 0] -> b6
b3 range.body: [_; x; x < 0] -> b4 b5
b4 if.then: [return x] -> b6
b5 if.done: -> b1
b6 exit:
`,
		},
		{
			"panic-only exit",
			`func f() {
	panic("always")
}`,
			`b0 entry: [panic("always")] -> b1
b1 exit:
`,
		},
		{
			"panic in one branch",
			`func f(b bool) {
	if b {
		panic("bad")
	}
}`,
			`b0 entry: [b] -> b1 b2
b1 if.then: [panic("bad")] -> b3
b2 if.done: -> b3
b3 exit:
`,
		},
		{
			"switch without default falls through",
			`func f(n int) {
	switch n {
	case 1:
		n++
	case 2:
		n--
	}
}`,
			`b0 entry: [n] -> b2 b3 b1
b1 switch.done: -> b4
b2 switch.case: [1; n++] -> b1
b3 switch.case: [2; n--] -> b1
b4 exit:
`,
		},
		{
			"switch fallthrough chains cases",
			`func f(n int) {
	switch n {
	case 1:
		n++
		fallthrough
	case 2:
		n--
	default:
		n = 0
	}
}`,
			`b0 entry: [n] -> b2 b3 b4
b1 switch.done: -> b5
b2 switch.case: [1; n++] -> b3
b3 switch.case: [2; n--] -> b1
b4 switch.default: [n = 0] -> b1
b5 exit:
`,
		},
		{
			"dead code after return is unreachable",
			`func f() int {
	return 1
	x := 2
	_ = x
	return x
}`,
			`b0 entry: [return 1] -> b2
b1 unreachable: [x := 2; _ = x; return x] -> b2
b2 exit:
`,
		},
		{
			"for without condition loops forever",
			`func f() {
	for {
		g()
	}
}`,
			`b0 entry: -> b1
b1 for.head: -> b3
b2 for.done: -> b4
b3 for.body: [g()] -> b1
b4 exit:
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, fset := buildCFG(t, tc.src)
			got := g.Dump(fset)
			if got != tc.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGInLoop pins cycle membership, including the goto-formed loop the
// syntactic rules could never see.
func TestCFGInLoop(t *testing.T) {
	g, _ := buildCFG(t, `func f(n int) {
retry:
	n--
	if n > 0 {
		goto retry
	}
}`)
	inLoop := 0
	for _, b := range g.Blocks {
		if g.InLoop(b) {
			inLoop++
		}
	}
	// label.retry and if.then cycle through each other; entry, if.done and
	// exit do not.
	if inLoop != 2 {
		t.Errorf("got %d blocks in a loop, want 2\n%s", inLoop, g.Dump(token.NewFileSet()))
	}
	if lo, hi, ok := g.LoopSpan(g.Blocks[1]); !ok || lo >= hi {
		t.Errorf("LoopSpan(label.retry) = (%v, %v, %v), want a non-empty span", lo, hi, ok)
	}
	if _, _, ok := g.LoopSpan(g.Entry); ok {
		t.Error("LoopSpan(entry) reported a span for a non-loop block")
	}
}

// TestForwardDataflow exercises the solver directly with a toy "lock held"
// fact over a branchy function: one arm releases, the other leaks.
func TestForwardDataflow(t *testing.T) {
	g, _ := buildCFG(t, `func f(b bool) {
	lock()
	if b {
		unlock()
		return
	}
}`)
	const held = 0
	transfer := func(n ast.Node, s analysis.Facts) analysis.Facts {
		call, ok := n.(*ast.ExprStmt)
		if !ok {
			return s
		}
		if c, ok := call.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "lock":
					return s.With(held)
				case "unlock":
					return s.Without(held)
				}
			}
		}
		return s
	}
	r := analysis.Forward(g, 0, transfer)
	if !r.MayExit(held) {
		t.Error("MayExit(held) = false, want true (the fall-through path leaks)")
	}
	if r.MustExit(held) {
		t.Error("MustExit(held) = true, want false (the if arm releases)")
	}
	states := r.ExitStates()
	if len(states) != 2 {
		t.Errorf("got %d exit states, want 2 (released and leaked): %v", len(states), states)
	}
}
