package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak enforces that goroutines spawned in loops are stoppable.
// Contract (DESIGN.md §13): a `go` statement that executes once per loop
// iteration — a connection accept loop, a per-chunk worker spawn — multiplies
// without bound unless each goroutine is tied to a shutdown signal. The rule
// requires the spawned call to reference at least one of:
//
//   - a context.Context (parameter, free variable, or argument),
//   - a sync.WaitGroup (so somebody is accounting for it),
//   - a channel visible from outside the goroutine (a quit/work channel).
//
// "In a loop" is CFG cycle membership, not syntax: a spawn inside a loop
// written with goto or labeled continue is flagged too, which no AST-nesting
// walk could see. Channels and WaitGroups created *inside* the spawned
// closure do not count — a private channel cannot be signalled from outside.
// Deliberately detached daemons carry a //lint:allow goroutineleak waiver.
func GoroutineLeak() *Rule {
	return &Rule{
		Name: "goroutineleak",
		Doc:  "a goroutine spawned in a loop must be tied to a context.Context, sync.WaitGroup, or externally visible channel",
		Run: func(p *Pass) {
			eachFuncBody(p, func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
				g := p.CFG(fn)
				if g == nil {
					return
				}
				for _, b := range g.Blocks {
					if !g.InLoop(b) {
						continue
					}
					for _, n := range b.Nodes {
						gs, ok := n.(*ast.GoStmt)
						if !ok {
							continue
						}
						if !goStmtTied(p, gs) {
							p.Reportf(gs.Pos(), "goroutine spawned in a loop with no visible stop signal: tie it to a context.Context, a sync.WaitGroup, or a quit channel")
						}
					}
				}
			})
		},
	}
}

// goStmtTied reports whether the spawned call references a lifetime signal:
// a context, WaitGroup or channel in the call arguments, or — for a closure —
// a free variable (or field chain rooted at one) of those types.
func goStmtTied(p *Pass, gs *ast.GoStmt) bool {
	// Arguments are evaluated in the spawning goroutine and handed in: any
	// context/WaitGroup/channel among them ties the goroutine.
	for _, arg := range gs.Call.Args {
		tied := false
		ast.Inspect(arg, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok && isLifetimeType(typeOf(p, e)) {
				tied = true
				return false
			}
			return true
		})
		if tied {
			return true
		}
	}
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		// go s.run() — a method value may watch internal state the analysis
		// cannot see; require the tie to be visible at the spawn site via
		// the receiver chain's type instead (e.g. go s.workers.drain() ties
		// nothing, but go (<-next).run() ties through the channel).
		tied := false
		ast.Inspect(gs.Call.Fun, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok && isLifetimeType(typeOf(p, e)) {
				tied = true
				return false
			}
			return true
		})
		return tied
	}
	// Closure: look for free variables of lifetime types, including selector
	// chains (s.quit) whose root is free.
	lo, hi := lit.Pos(), lit.End()
	tied := false
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		e, ok := m.(ast.Expr)
		if !ok || !isLifetimeType(typeOf(p, e)) {
			return true
		}
		root := rootIdent(e)
		if root != nil && declaredOutside(p, root, lo, hi) {
			tied = true
			return false
		}
		return true
	})
	return tied
}

func typeOf(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isLifetimeType reports whether t is a goroutine-lifetime signal: a
// context.Context, a sync.WaitGroup, or any channel type.
func isLifetimeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if namedFrom(t, "context", "Context") || namedFrom(t, "sync", "WaitGroup") {
		return true
	}
	_, isChan := deref(t).Underlying().(*types.Chan)
	return isChan
}
