package analysis_test

import (
	"path/filepath"
	"testing"

	"caliqec/internal/analysis"
)

// schedulerRules are the rules the batch scheduler is most exposed to: it
// spawns per-spec span-waiter goroutines (obsspan), threads one context
// through every worker (ctxfirst), and derives all chunk seeds from spec
// generators rather than ambient randomness (nakedrand).
func schedulerRules() []*analysis.Rule {
	return []*analysis.Rule{analysis.ObsSpan(), analysis.CtxFirst(), analysis.NakedRand()}
}

// TestBatchSchedulerCodeClean lints the real engine and simulator packages —
// the code EvaluateBatch lives in — and requires zero diagnostics from the
// scheduler-critical rules. This is a regression guard: a refactor that,
// say, stores per-spec spans in a slice and ends them after the pool drains
// (instead of one waiter goroutine per spec) trips obsspan here before it
// trips the repo-wide caliqec-lint run.
func TestBatchSchedulerCodeClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./internal/mc", "./internal/sim")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	targetDirs := map[string]bool{}
	for _, p := range pkgs {
		if p.Target {
			targetDirs[p.Dir] = true
		}
	}
	if len(targetDirs) != 2 {
		t.Fatalf("expected 2 target packages, got %d", len(targetDirs))
	}
	for _, d := range analysis.Run(pkgs, schedulerRules()) {
		if targetDirs[filepath.Dir(d.Pos.Filename)] {
			t.Errorf("%s: %s: %s", d.Pos, d.Rule, d.Message)
		}
	}
}

// batch-scheduler fixture: the distilled shape of EvaluateBatch — a parent
// span over the batch, one waiter goroutine per spec ending its own span,
// context first everywhere, seeds passed in rather than drawn ambiently.
const schedulerCleanFixture = `package mc

import (
	"context"
	"sync"

	"fixture/obs"
)

type state struct {
	mu   sync.Mutex
	next int
	done chan struct{}
}

func runBatch(ctx context.Context, seeds []uint64, states []*state) error {
	ctx, sp := obs.StartSpan(ctx, "mc.evaluate_batch")
	defer sp.End()
	sp.SetAttr("specs", len(states))
	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *state) {
			defer wg.Done()
			_, child := obs.StartSpan(ctx, "mc.evaluate")
			defer child.End()
			<-st.done
		}(st)
	}
	for _, st := range states {
		st.mu.Lock()
		st.next = int(seeds[0] % 2)
		close(st.done)
		st.mu.Unlock()
	}
	wg.Wait()
	return ctx.Err()
}
`

// The same shape with the three classic mistakes wired in: the batch span is
// never ended, the context rides in the last parameter slot, and chunk seeds
// come from the global math/rand stream.
const schedulerDirtyFixture = `package mc

import (
	"context"
	"math/rand"

	"fixture/obs"
)

func runBatch(states []int, ctx context.Context) int {
	_, sp := obs.StartSpan(ctx, "mc.evaluate_batch")
	sp.SetAttr("specs", len(states))
	return rand.Int()
}
`

// TestBatchSchedulerFixture pins what the rules catch on scheduler-shaped
// code: the faithful miniature passes all three rules, and the mutated
// variant fires each of them exactly once.
func TestBatchSchedulerFixture(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		diags := lint(t, map[string]string{
			"obs/obs.go": obsFixture,
			"mc/mc.go":   schedulerCleanFixture,
		}, schedulerRules()...)
		wantCounts(t, diags, nil)
	})
	t.Run("dirty", func(t *testing.T) {
		diags := lint(t, map[string]string{
			"obs/obs.go": obsFixture,
			"mc/mc.go":   schedulerDirtyFixture,
		}, schedulerRules()...)
		wantCounts(t, diags, map[string]int{"obsspan": 1, "ctxfirst": 1, "nakedrand": 1})
	})
}
