package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// ObsSpan enforces the span-lifecycle contract of the observability layer:
// every span returned by obs.StartSpan must be ended on every path through
// the enclosing function — either a `defer span.End()` (possibly inside a
// deferred closure) or an explicit `span.End()` reaching each exit. A span
// that is never ended never records its trace event, so the leak is silent:
// the trace just misses the operation. Discarding the span with `_` is also
// a diagnostic. Spans that intentionally outlive the function (ownership
// handed to a caller, as in deform.BeginSession) carry a
// //lint:allow obsspan waiver on the StartSpan line.
//
// Since PR 7 the check runs on the function's control-flow graph: the
// StartSpan assignment sets a per-site "pending" fact, End clears it, and a
// pending fact in any dataflow state reaching the function exit is a
// diagnostic. That makes the rule exact where the old linear walk was
// conservative — an End in every arm of a select now satisfies the
// contract, and an early return smuggled out of a nested branch no longer
// escapes it. Diagnostics anchor at the StartSpan call so one waiver covers
// every path violation of that span.
func ObsSpan() *Rule {
	return &Rule{
		Name: "obsspan",
		Doc:  "every obs.StartSpan span must be ended on all paths (defer span.End() or End before each return)",
		Run: func(p *Pass) {
			eachFuncBody(p, func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
				checkObsSpans(p, fn)
			})
		},
	}
}

type spanSite struct {
	assign *ast.AssignStmt
	call   *ast.CallExpr
	id     *ast.Ident
	obj    types.Object
	fact   int
}

func checkObsSpans(p *Pass, fn ast.Node) {
	g := p.CFG(fn)
	if g == nil {
		return
	}
	var sites []*spanSite
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			call, id := startSpanAssign(p, as)
			if call == nil {
				continue
			}
			if id == nil || id.Name == "_" {
				p.Reportf(call.Pos(), "obs.StartSpan span discarded with _: the span is never ended and its trace event is lost")
				continue
			}
			if obj := spanObject(p, id); obj != nil {
				sites = append(sites, &spanSite{assign: as, call: call, id: id, obj: obj, fact: len(sites)})
			}
		}
	}
	if len(sites) == 0 || len(sites) > 64 {
		return
	}

	transfer := func(n ast.Node, s Facts) Facts {
		for _, site := range sites {
			if n == site.assign {
				s = s.With(site.fact)
			}
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			for _, site := range sites {
				if deferEndsSpan(p, d.Call, site.obj) {
					s = s.Without(site.fact)
				}
			}
			return s
		}
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, site := range sites {
				if endsSpan(p, call, site.obj) {
					s = s.Without(site.fact)
				}
			}
			return true
		})
		return s
	}

	r := Forward(g, 0, transfer)
	for _, site := range sites {
		if r.MayExit(site.fact) {
			p.Reportf(site.call.Pos(),
				"span %s from obs.StartSpan is not ended on every path: defer %s.End() or call End before each return (waive intentional hand-off with //lint:allow obsspan)",
				site.id.Name, site.id.Name)
		}
	}
}

// startSpanAssign matches `a, b := obs.StartSpan(...)` (or `=`) and returns
// the call plus the identifier receiving the span (the second LHS), nil for
// non-identifier LHS.
func startSpanAssign(p *Pass, as *ast.AssignStmt) (*ast.CallExpr, *ast.Ident) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return nil, nil
	}
	if path.Base(pkgRef(p, sel.X)) != "obs" {
		return nil, nil
	}
	id, _ := as.Lhs[1].(*ast.Ident)
	return call, id
}

// spanObject resolves the identifier to its object, whether the assignment
// defined it (:=) or reused an existing variable (=).
func spanObject(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// endsSpan reports whether call is span.End() on the tracked span object.
func endsSpan(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return p.Pkg.Info.Uses[id] == obj
}

// deferEndsSpan reports whether the deferred call ends the span — directly
// (defer sp.End()) or anywhere inside a deferred closure, whose body runs at
// function exit on this goroutine (panic unwinding included).
func deferEndsSpan(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	if endsSpan(p, call, obj) {
		return true
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok && endsSpan(p, inner, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}
