package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// ObsSpan enforces the span-lifecycle contract of the observability layer:
// every span returned by obs.StartSpan must be ended on every path through
// the enclosing function — either a `defer span.End()` (possibly inside a
// deferred closure) or an explicit `span.End()` before each return and
// before falling off the end. A span that is never ended never records its
// trace event, so the leak is silent: the trace just misses the operation.
// Discarding the span with `_` is also a diagnostic. Spans that
// intentionally outlive the function (ownership handed to a caller, as in
// deform.BeginSession) carry a //lint:allow obsspan waiver on the
// StartSpan line.
//
// The check is a linear walk with branch-sensitive merging, not full
// control-flow analysis: an End inside only one arm of an if does not count
// as ending on the fall-through path, and Ends inside loops, switches or
// nested function literals are treated conservatively (they may execute
// zero times). Diagnostics anchor at the StartSpan call so one waiver
// covers every path violation of that span.
func ObsSpan() *Rule {
	return &Rule{
		Name: "obsspan",
		Doc:  "every obs.StartSpan span must be ended on all paths (defer span.End() or End before each return)",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						checkSpansIn(p, body)
					}
					return true
				})
			}
		},
	}
}

// checkSpansIn finds StartSpan assignments directly inside fn's body
// (including nested blocks, but not nested function literals — those are
// their own scopes, visited separately) and verifies each span's lifecycle.
func checkSpansIn(p *Pass, body *ast.BlockStmt) {
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for i, st := range stmts {
			as, ok := st.(*ast.AssignStmt)
			if ok {
				if call, spanID := startSpanAssign(p, as); call != nil {
					if spanID == nil || spanID.Name == "_" {
						p.Reportf(call.Pos(), "obs.StartSpan span discarded with _: the span is never ended and its trace event is lost")
					} else if obj := spanObject(p, spanID); obj != nil {
						c := &spanCheck{p: p, obj: obj}
						st, term := c.analyze(stmts[i+1:], pathState{})
						if c.violated || (!term && !st.safe()) {
							p.Reportf(call.Pos(), "span %s from obs.StartSpan is not ended on every path: defer %s.End() or call End before each return (waive intentional hand-off with //lint:allow obsspan)", spanID.Name, spanID.Name)
						}
					}
				}
			}
			// Recurse into nested statement lists so StartSpan calls inside
			// ifs/loops are found with their own enclosing list.
			switch s := st.(type) {
			case *ast.BlockStmt:
				walk(s.List)
			case *ast.IfStmt:
				walk(s.Body.List)
				if e, ok := s.Else.(*ast.BlockStmt); ok {
					walk(e.List)
				} else if e, ok := s.Else.(*ast.IfStmt); ok {
					walk([]ast.Stmt{e})
				}
			case *ast.ForStmt:
				walk(s.Body.List)
			case *ast.RangeStmt:
				walk(s.Body.List)
			case *ast.SwitchStmt:
				for _, cc := range s.Body.List {
					walk(cc.(*ast.CaseClause).Body)
				}
			case *ast.TypeSwitchStmt:
				for _, cc := range s.Body.List {
					walk(cc.(*ast.CaseClause).Body)
				}
			case *ast.SelectStmt:
				for _, cc := range s.Body.List {
					walk(cc.(*ast.CommClause).Body)
				}
			case *ast.LabeledStmt:
				walk([]ast.Stmt{s.Stmt})
			}
		}
	}
	walk(body.List)
}

// startSpanAssign matches `a, b := obs.StartSpan(...)` (or `=`) and returns
// the call plus the identifier receiving the span (the second LHS), nil for
// non-identifier LHS.
func startSpanAssign(p *Pass, as *ast.AssignStmt) (*ast.CallExpr, *ast.Ident) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return nil, nil
	}
	if path.Base(pkgRef(p, sel.X)) != "obs" {
		return nil, nil
	}
	id, _ := as.Lhs[1].(*ast.Ident)
	return call, id
}

// spanObject resolves the identifier to its object, whether the assignment
// defined it (:=) or reused an existing variable (=).
func spanObject(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// pathState tracks one execution path's span status.
type pathState struct {
	ended    bool // span.End() has run on this path
	deferred bool // defer span.End() is registered on this path
}

func (s pathState) safe() bool { return s.ended || s.deferred }

// merge combines the fall-through states of two branches: the span is only
// safe after the join if it was safe down both arms.
func (s pathState) merge(o pathState) pathState {
	return pathState{ended: s.ended && o.ended, deferred: s.deferred && o.deferred}
}

type spanCheck struct {
	p        *Pass
	obj      types.Object
	violated bool
}

// analyze walks stmts linearly, tracking whether the span is ended or
// covered by a defer. It returns the fall-through state and whether every
// path through stmts terminates (returns) before falling through. A return
// reached while the span is neither ended nor deferred is a violation.
func (c *spanCheck) analyze(stmts []ast.Stmt, st pathState) (pathState, bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if c.callEndsSpan(s.Call) || c.deferredClosureEndsSpan(s.Call) {
				st.deferred = true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && c.callEndsSpan(call) {
				st.ended = true
			}
		case *ast.ReturnStmt:
			if !st.safe() {
				c.violated = true
			}
			return st, true
		case *ast.BranchStmt:
			// break/continue/goto leave the list; conservatively treat an
			// unsafe span as a violation only at returns, so just stop.
			return st, false
		case *ast.BlockStmt:
			var term bool
			st, term = c.analyze(s.List, st)
			if term {
				return st, true
			}
		case *ast.IfStmt:
			thenSt, thenTerm := c.analyze(s.Body.List, st)
			elseSt, elseTerm := st, false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt, elseTerm = c.analyze(e.List, st)
			case *ast.IfStmt:
				elseSt, elseTerm = c.analyze([]ast.Stmt{e}, st)
			}
			switch {
			case thenTerm && elseTerm:
				return st, true
			case thenTerm:
				st = elseSt
			case elseTerm:
				st = thenSt
			default:
				st = thenSt.merge(elseSt)
			}
		case *ast.ForStmt:
			// The body may run zero times: check its paths but do not let a
			// loop-body End mark the fall-through path as ended.
			c.analyze(s.Body.List, st)
		case *ast.RangeStmt:
			c.analyze(s.Body.List, st)
		case *ast.SwitchStmt:
			c.analyzeCases(s.Body.List, st)
		case *ast.TypeSwitchStmt:
			c.analyzeCases(s.Body.List, st)
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				c.analyze(cc.(*ast.CommClause).Body, st)
			}
		case *ast.LabeledStmt:
			var term bool
			st, term = c.analyze([]ast.Stmt{s.Stmt}, st)
			if term {
				return st, true
			}
		}
	}
	return st, false
}

// analyzeCases checks each case body independently; without a default arm
// no case is guaranteed to run, so fall-through state is left unchanged
// (conservative: an End inside a case never satisfies the contract alone).
func (c *spanCheck) analyzeCases(clauses []ast.Stmt, st pathState) {
	for _, cc := range clauses {
		c.analyze(cc.(*ast.CaseClause).Body, st)
	}
}

// callEndsSpan reports whether call is span.End() on the tracked span.
func (c *spanCheck) callEndsSpan(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return c.p.Pkg.Info.Uses[id] == c.obj
}

// deferredClosureEndsSpan reports whether call is an immediately-deferred
// function literal whose body (at any depth) calls span.End().
func (c *spanCheck) deferredClosureEndsSpan(call *ast.CallExpr) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok && c.callEndsSpan(inner) {
			found = true
			return false
		}
		return true
	})
	return found
}
