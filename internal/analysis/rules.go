package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// AllRules returns the project rule set in reporting order. Each rule
// enforces one contract from DESIGN.md's "Enforced invariants" section
// (§8) or the flow-sensitive concurrency discipline (§13).
func AllRules() []*Rule {
	return []*Rule{
		NakedRand(),
		TimeNow(),
		FloatEq(),
		CtxFirst(),
		PanicPolicy(),
		BareLoop(),
		ObsSpan(),
		ChanClose(),
		LockBalance(),
		CtxCancel(),
		GoroutineLeak(),
		WgDiscipline(),
		DeferLoop(),
	}
}

// NakedRand forbids math/rand (and math/rand/v2) outside internal/rng.
// Contract: all randomness flows through the repo's seeded xoshiro256**
// generator, whose sequence is specified in-tree; math/rand's streams are
// not stable across Go releases, so one naked call breaks bit-for-bit
// reproducibility of every seeded result.
func NakedRand() *Rule {
	return &Rule{
		Name: "nakedrand",
		Doc:  "math/rand is banned outside internal/rng; use caliqec/internal/rng for reproducible randomness",
		Run: func(p *Pass) {
			if strings.HasSuffix(p.Pkg.Path, "internal/rng") {
				return
			}
			for _, f := range p.Pkg.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						p.Reportf(imp.Pos(), "import of %s outside internal/rng: its sequences are not stable across Go releases; use caliqec/internal/rng", path)
					}
				}
			}
		},
	}
}

// TimeNow forbids reading the wall clock (time.Now / time.Since /
// time.Until) in library packages. Contract: simulated time is explicit
// (hours parameters, injected clocks), so results never depend on when a
// run happens. Main packages may time their own wall-clock output; named
// timing files can be passed to the constructor, and one-off waivers use
// //lint:allow timenow.
func TimeNow(allowFiles ...string) *Rule {
	allowed := map[string]bool{}
	for _, f := range allowFiles {
		allowed[f] = true
	}
	return &Rule{
		Name: "timenow",
		Doc:  "no wall-clock reads (time.Now/Since/Until) outside main packages and allowed timing files",
		Run: func(p *Pass) {
			if p.Pkg.Name == "main" {
				return
			}
			for _, f := range p.Pkg.Files {
				if allowed[filepath.Base(fileOf(p, f))] {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					s, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch s.Sel.Name {
					case "Now", "Since", "Until":
						if pkgRef(p, s.X) == "time" {
							p.Reportf(s.Pos(), "wall-clock read time.%s in a library package: inject a clock or take simulated time as a parameter", s.Sel.Name)
						}
					}
					return true
				})
			}
		},
	}
}

// FloatEq forbids == and != between floating-point operands. Contract:
// LER/probability arithmetic compares with tolerances; exact float
// equality silently diverges across compilers, FMA contraction, and
// refactors. Exact sentinel checks (zero-value means "unset") must carry a
// //lint:allow floateq waiver documenting the sentinel.
func FloatEq() *Rule {
	isFloat := func(t types.Type) bool {
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	return &Rule{
		Name: "floateq",
		Doc:  "no ==/!= between float operands; compare with a tolerance",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					tx := p.Pkg.Info.Types[be.X].Type
					ty := p.Pkg.Info.Types[be.Y].Type
					if isFloat(tx) || isFloat(ty) {
						p.Reportf(be.OpPos, "float %s comparison: use a tolerance (math.Abs(a-b) <= eps) or document the exact sentinel with //lint:allow floateq", be.Op)
					}
					return true
				})
			}
		},
	}
}

// CtxFirst enforces Go's context conventions, which the mc engine's
// cancellation contract depends on: a context.Context parameter comes
// first, and contexts are never stored in struct fields (a stored context
// outlives the call that created it and silently detaches cancellation).
func CtxFirst() *Rule {
	return &Rule{
		Name: "ctxfirst",
		Doc:  "context.Context must be the first parameter and must not be stored in structs",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncType:
						if has, first := funcTakesContext(p, n); has && !first {
							p.Reportf(n.Pos(), "context.Context must be the first parameter")
						}
					case *ast.StructType:
						if n.Fields == nil {
							return true
						}
						for _, fld := range n.Fields.List {
							if isContextType(p, fld.Type) {
								p.Reportf(fld.Pos(), "context.Context stored in a struct: pass it per call so cancellation stays attached to the caller")
							}
						}
					}
					return true
				})
			}
		},
	}
}

// PanicPolicy forbids panic in library packages. Contract: simulation and
// scheduling errors must surface as errors the runtime can react to
// (defer, re-plan), not crash a long sweep. The one sanctioned exception
// is internal/circuit's builder, documented as panic-on-misuse for
// code-generation bugs; container-style index panics elsewhere carry
// //lint:allow panicpolicy waivers mirroring built-in slice semantics.
func PanicPolicy() *Rule {
	allowedFile := map[string]bool{"builder.go": true}
	return &Rule{
		Name: "panicpolicy",
		Doc:  "no panic in library packages (internal/circuit's builder is the documented panic-on-misuse exception)",
		Run: func(p *Pass) {
			if p.Pkg.Name == "main" {
				return
			}
			isCircuit := strings.HasSuffix(p.Pkg.Path, "internal/circuit")
			for _, f := range p.Pkg.Files {
				if isCircuit && allowedFile[filepath.Base(fileOf(p, f))] {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok || id.Name != "panic" {
						return true
					}
					if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
						return true // shadowed: not the builtin
					}
					p.Reportf(call.Pos(), "panic in a library package: return an error (or document misuse semantics with //lint:allow panicpolicy)")
					return true
				})
			}
		},
	}
}

// BareLoop forbids exported API from launching goroutines when no
// context.Context is in scope. Contract: every long-running path is
// cancellable; a goroutine started from an exported function that takes no
// context has no way to stop when the caller goes away.
func BareLoop() *Rule {
	return &Rule{
		Name: "bareloop",
		Doc:  "exported functions that launch goroutines must take a context.Context",
		Run: func(p *Pass) {
			if p.Pkg.Name == "main" {
				return
			}
			for _, f := range p.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || !exportedAPI(fd) {
						continue
					}
					if has, _ := funcTakesContext(p, fd.Type); has {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						if g, ok := n.(*ast.GoStmt); ok {
							p.Reportf(g.Pos(), "exported %s launches a goroutine without a context.Context parameter: callers cannot cancel it", fd.Name.Name)
						}
						return true
					})
				}
			}
		},
	}
}

// exportedAPI reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func exportedAPI(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
