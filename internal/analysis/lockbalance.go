package analysis

import (
	"go/ast"
)

// LockBalance enforces that every sync.Mutex/RWMutex acquisition is released
// on every path out of the enclosing function. Contract (DESIGN.md §13): a
// lock held across an early return wedges the next caller forever — in the
// stream server that is a whole connection pool — and the failure only
// reproduces under the interleaving that takes the early path.
//
// The check runs on the function's CFG: each mu.Lock()/mu.RLock() call site
// sets a per-site "held" fact; mu.Unlock()/mu.RUnlock() clears the sites of
// that receiver; `defer mu.Unlock()` (directly or inside a deferred closure)
// sets a sticky "covered" fact, which also protects panic paths — deferred
// calls run while panicking, and explicit unlocks after a panic statement do
// not. A site whose fact can reach the function exit unreleased and
// uncovered is a diagnostic, anchored at the Lock call.
//
// TryLock/TryRLock are ignored: their acquisition is conditional on a value
// the analysis does not track. Receivers are keyed by expression spelling
// (mu, s.mu), so distinct instances through the same expression are one
// lock, which is the granularity the discipline cares about. Intentional
// cross-function handoffs (a locked struct returned to the caller) carry a
// //lint:allow lockbalance waiver.
func LockBalance() *Rule {
	return &Rule{
		Name: "lockbalance",
		Doc:  "every sync.Mutex/RWMutex Lock must reach Unlock or defer Unlock on all paths out of the function (panics included)",
		Run: func(p *Pass) {
			eachFuncBody(p, func(fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
				checkLockBalance(p, fn)
			})
		},
	}
}

// unlockFor pairs each acquisition method with its release.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

type lockSite struct {
	call   *ast.CallExpr
	key    string // receiver spelling, e.g. "s.mu"
	method string // Lock or RLock
	fact   int    // held-fact index
}

func checkLockBalance(p *Pass, fn ast.Node) {
	g := p.CFG(fn)
	if g == nil {
		return
	}

	// Collect acquisition sites and assign facts: one "held" fact per site,
	// one "covered" fact per (receiver, release-method) pair.
	var sites []lockSite
	coverFact := map[string]int{} // key + "\x00" + unlock method -> fact
	nextFact := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, key, tn, method, ok := syncOp(p, call); ok && tn != "WaitGroup" {
					if release, acquires := unlockFor[method]; acquires {
						sites = append(sites, lockSite{call: call, key: key, method: method, fact: nextFact})
						nextFact++
						ck := key + "\x00" + release
						if _, have := coverFact[ck]; !have {
							coverFact[ck] = -1 // assigned below, after all sites
						}
					}
				}
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}
	for ck := range coverFact {
		coverFact[ck] = nextFact
		nextFact++
	}
	if nextFact > 64 {
		return // beyond the fact budget; a function this size has other problems
	}

	transfer := func(n ast.Node, s Facts) Facts {
		if d, ok := n.(*ast.DeferStmt); ok {
			// A registered defer covers every later exit, normal or panic.
			for ck, f := range coverFact {
				key, release := splitCoverKey(ck)
				if deferReleases(p, d.Call, key, release) {
					s = s.With(f)
				}
			}
			return s
		}
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, key, tn, method, ok := syncOp(p, call)
			if !ok || tn == "WaitGroup" {
				return true
			}
			if _, acquires := unlockFor[method]; acquires {
				for _, site := range sites {
					if site.call == call {
						s = s.With(site.fact)
					}
				}
			} else if method == "Unlock" || method == "RUnlock" {
				for _, site := range sites {
					if site.key == key && unlockFor[site.method] == method {
						s = s.Without(site.fact)
					}
				}
			}
			return true
		})
		return s
	}

	r := Forward(g, 0, transfer)
	for _, site := range sites {
		release := unlockFor[site.method]
		cf := coverFact[site.key+"\x00"+release]
		for _, s := range r.ExitStates() {
			if s.Has(site.fact) && !s.Has(cf) {
				p.Reportf(site.call.Pos(),
					"%s.%s() is not released on every path out of the function: defer %s.%s() (which also covers panics) or release before each return",
					site.key, site.method, site.key, release)
				break
			}
		}
	}
}

func splitCoverKey(ck string) (key, release string) {
	for i := 0; i < len(ck); i++ {
		if ck[i] == 0 {
			return ck[:i], ck[i+1:]
		}
	}
	return ck, ""
}

// deferReleases reports whether the deferred call releases key's lock with
// the given method — either directly (defer mu.Unlock()) or anywhere inside
// a deferred closure (defer func() { ...; mu.Unlock() }()). Inside the
// closure the walk is deep: the closure body runs at function exit on this
// goroutine, so its releases count.
func deferReleases(p *Pass, call *ast.CallExpr, key, release string) bool {
	if _, k, _, m, ok := syncOp(p, call); ok && k == key && m == release {
		return true
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if _, k, _, m, ok := syncOp(p, inner); ok && k == key && m == release {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
