package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds gave same first output")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children correlate")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		got := float64(c) / n
		if math.Abs(got-1.0/7) > 0.01 {
			t.Errorf("Intn(7)=%d frequency %.4f, want ~0.143", v, got)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Errorf("normal mean %.4f", m)
	}
	if s := Std(xs); math.Abs(s-1) > 0.02 {
		t.Errorf("normal std %.4f", s)
	}
}

func TestLogNormalFromMean(t *testing.T) {
	r := New(9)
	xs := make([]float64, 80000)
	for i := range xs {
		xs[i] = r.LogNormalFromMean(14.08, 0.55)
	}
	m := Mean(xs)
	if math.Abs(m-14.08) > 0.25 {
		t.Errorf("log-normal mean %.3f, want 14.08", m)
	}
	for _, x := range xs {
		if x <= 0 {
			t.Fatal("log-normal produced non-positive value")
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(13)
	// Exact path (small n) and approximate path (large n·p).
	for _, c := range []struct {
		n int
		p float64
	}{{40, 0.3}, {5000, 0.2}} {
		sum := 0.0
		const trials = 3000
		for i := 0; i < trials; i++ {
			sum += float64(r.Binomial(c.n, c.p))
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("Binomial(%d,%.2f) mean %.2f, want %.2f", c.n, c.p, mean, want)
		}
	}
	if New(1).Binomial(10, 0) != 0 || New(1).Binomial(10, 1) != 10 {
		t.Error("degenerate binomial wrong")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Error("mean")
	}
	if math.Abs(Std(xs)-math.Sqrt(2.5)) > 1e-12 {
		t.Error("std")
	}
	if Percentile(xs, 50) != 3 {
		t.Error("median")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extremes")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	s, b := LinearFit(x, y)
	if math.Abs(s-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("fit %.3f, %.3f", s, b)
	}
}

func TestExpDecayFit(t *testing.T) {
	// y = 0.5 · 0.99^x
	var x, y []float64
	for _, m := range []float64{1, 10, 50, 100, 200} {
		x = append(x, m)
		y = append(y, 0.5*math.Pow(0.99, m))
	}
	a, r := ExpDecayFit(x, y)
	if math.Abs(a-0.5) > 1e-6 || math.Abs(r-0.99) > 1e-9 {
		t.Errorf("ExpDecayFit = %.6f, %.6f", a, r)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 1000)
	if lo >= 0.05 || hi <= 0.05 {
		t.Errorf("[%.4f, %.4f] should bracket 0.05", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi <= 0 {
		t.Errorf("zero-failure interval [%.4f, %.4f]", lo, hi)
	}
}

func TestNormInv(t *testing.T) {
	// Round-trip against the CDF at several quantiles.
	for _, p := range []float64{1e-9, 0.001, 0.025, 0.5, 0.84, 0.999, 1 - 1e-9} {
		x := NormInv(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-10*math.Max(1, 1/p) && math.Abs(back-p) > 1e-12 {
			t.Errorf("NormInv(%.3g) = %.6f, CDF back = %.6g", p, x, back)
		}
	}
	if math.Abs(NormInv(0.5)) > 1e-12 {
		t.Error("median not 0")
	}
	if math.Abs(NormInv(0.975)-1.959964) > 1e-4 {
		t.Errorf("z(0.975) = %.5f", NormInv(0.975))
	}
}

func TestMinOfLogNormals(t *testing.T) {
	r := New(17)
	// The min of n samples must be stochastically far below the median.
	const n = 2000
	var mins []float64
	for i := 0; i < 300; i++ {
		mins = append(mins, r.MinOfLogNormals(n, 2.5, 0.55))
	}
	med := math.Exp(2.5)
	if Mean(mins) > med/3 {
		t.Errorf("min of %d log-normals averages %.3f, should be far below the median %.3f", n, Mean(mins), med)
	}
	// Compare against brute force.
	brute := math.Inf(1)
	for i := 0; i < n; i++ {
		if v := r.LogNormal(2.5, 0.55); v < brute {
			brute = v
		}
	}
	if Mean(mins) > brute*10 || Mean(mins) < brute/10 {
		t.Errorf("order-statistic min %.3f vs brute-force min %.3f differ wildly", Mean(mins), brute)
	}
}

func TestBernoulliMaskEdges(t *testing.T) {
	r := New(1)
	if r.Bernoulli(0) || !r.Bernoulli(1) {
		t.Error("Bernoulli edge cases")
	}
}
