package rng

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator) of xs.
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Percentile returns the q-th percentile (0..100) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 100 {
		return cp[len(cp)-1]
	}
	pos := q / 100 * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics if the lengths differ; it returns (0, mean(y)) for fewer than
// two points or degenerate x.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic("rng: LinearFit length mismatch") //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0, Mean(y)
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 { //lint:allow floateq guards exactly-degenerate regression input (all x equal); any nonzero den is usable
		return 0, Mean(y)
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return
}

// ExpDecayFit fits y ≈ A·r^x (0 < r) by least squares in log space and
// returns (A, r). Non-positive y values are skipped; if fewer than two
// usable points remain it returns (mean(y), 1).
//
// Randomized-benchmarking analysis (internal/charac) uses this to recover
// the depolarizing parameter from sequence-fidelity decay curves.
func ExpDecayFit(x, y []float64) (amplitude, rate float64) {
	var fx, fy []float64
	for i := range x {
		if y[i] > 0 {
			fx = append(fx, x[i])
			fy = append(fy, math.Log(y[i]))
		}
	}
	if len(fx) < 2 {
		return Mean(y), 1
	}
	slope, intercept := LinearFit(fx, fy)
	return math.Exp(intercept), math.Exp(slope)
}

// WilsonInterval returns the Wilson score interval for a binomial proportion
// with k successes out of n trials at ~95% confidence (z = 1.96). The
// experiments report it alongside Monte-Carlo logical error rates.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	den := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / den
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return
}
