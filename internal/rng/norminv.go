package rng

import "math"

// NormInv returns the inverse standard normal CDF Φ⁻¹(p) using the
// Acklam rational approximation (relative error < 1.15e-9), refined by one
// Halley step. It panics for p outside (0, 1).
func NormInv(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("rng: NormInv domain is (0,1)") //lint:allow panicpolicy domain misuse is a programming error, following math package conventions
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogNormInv returns the inverse CDF of a log-normal with parameters mu,
// sigma.
func LogNormInv(p, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*NormInv(p))
}

// MinOfLogNormals draws the minimum of n i.i.d. log-normal(mu, sigma)
// variates in O(1) using the order-statistic transform: the CDF position of
// the minimum is 1-(1-U)^(1/n).
func (r *RNG) MinOfLogNormals(n int, mu, sigma float64) float64 {
	if n <= 0 {
		panic("rng: MinOfLogNormals needs n ≥ 1") //lint:allow panicpolicy domain misuse is a programming error, following math package conventions
	}
	u := r.Float64()
	q := 1 - math.Pow(1-u, 1/float64(n))
	if q <= 0 {
		q = 1e-300
	}
	if q >= 1 {
		q = 1 - 1e-16
	}
	return LogNormInv(q, mu, sigma)
}
