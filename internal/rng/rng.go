// Package rng provides a deterministic, splittable pseudo-random number
// generator plus the small set of distributions the CaliQEC experiments
// need (uniform, normal, log-normal) and a few statistics helpers.
//
// Every experiment in this repository takes an explicit seed and threads it
// through an *rng.RNG so that results are bit-for-bit reproducible across
// runs and across machines. We deliberately do not use math/rand's global
// state: its sequence is not guaranteed to be stable across Go releases,
// whereas this implementation (xoshiro256** seeded via splitmix64) is fully
// specified here.
package rng

import "math"

// RNG is a xoshiro256** pseudo-random generator. The zero value is not
// valid; construct with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed state and returns the next output. It is used
// both for seeding xoshiro256** (as recommended by its authors) and for
// deriving independent child generators in Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro256** requires a nonzero state; splitmix64 of any seed gives
	// that with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator. The parent advances, so
// successive Split calls yield distinct children. Splitting lets concurrent
// experiment arms consume randomness without coordinating on a shared stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n") //lint:allow panicpolicy domain misuse is a programming error, following math package conventions
	}
	// Lemire's multiply-shift rejection method for unbiased bounded output.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a variate whose natural logarithm is normal with the
// given mu and sigma (i.e. the standard log-normal parameterization).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LogNormalFromMean returns a log-normal variate parameterized by the
// desired *distribution mean* and sigma (shape). The paper characterizes
// drift constants as "log-normal with a mean of 14.08 hours" (Fig. 9);
// this helper converts that mean into the underlying mu.
func (r *RNG) LogNormalFromMean(mean, sigma float64) float64 {
	mu := math.Log(mean) - sigma*sigma/2
	return r.LogNormal(mu, sigma)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Binomial returns the number of successes in n Bernoulli(p) trials.
// For large n·p it uses a normal approximation with continuity correction,
// keeping large-shot Monte-Carlo summaries cheap; exact sampling is used
// whenever n ≤ 64 or n·p ≤ 16 where the approximation would be poor.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	np := float64(n) * p
	if n <= 64 || np <= 16 || float64(n)*(1-p) <= 16 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				k++
			}
		}
		return k
	}
	sd := math.Sqrt(np * (1 - p))
	k := int(math.Round(np + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
