package pauli

import (
	"testing"
	"testing/quick"
)

func TestSingleQubitTable(t *testing.T) {
	// Multiplication table (phaseless).
	cases := []struct{ a, b, want Pauli }{
		{I, I, I}, {I, X, X}, {X, X, I}, {X, Z, Y}, {Z, X, Y},
		{Y, Y, I}, {X, Y, Z}, {Y, Z, X}, {Z, Z, I}, {Z, Y, X},
	}
	for _, c := range cases {
		if got := c.a.Mul(c.b); got != c.want {
			t.Errorf("%v*%v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSingleQubitCommutation(t *testing.T) {
	all := []Pauli{I, X, Y, Z}
	for _, a := range all {
		for _, b := range all {
			want := a == I || b == I || a == b
			if got := a.Commutes(b); got != want {
				t.Errorf("%v,%v commute=%v want %v", a, b, got, want)
			}
		}
	}
}

func TestParsePauli(t *testing.T) {
	for _, c := range []struct {
		in   byte
		want Pauli
	}{{'I', I}, {'x', X}, {'Y', Y}, {'z', Z}} {
		got, err := ParsePauli(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePauli(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePauli('Q'); err == nil {
		t.Error("ParsePauli('Q') should fail")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	s, err := Parse("X0 Z3 Y17")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "X0 Z3 Y17" {
		t.Errorf("round trip gave %q", s.String())
	}
	if s.Weight() != 3 {
		t.Errorf("weight %d, want 3", s.Weight())
	}
	// Duplicate qubits multiply: X0 X0 = I.
	s2, err := Parse("X0 X0")
	if err != nil {
		t.Fatal(err)
	}
	if !s2.IsIdentity() {
		t.Errorf("X0·X0 = %v, want I", s2)
	}
	// X0 Z0 = Y0.
	s3, _ := Parse("X0 Z0")
	if s3.At(0) != Y {
		t.Errorf("X0·Z0 = %v, want Y0", s3)
	}
}

// randString builds a pseudo-random Pauli string from a seed.
func randString(seed int64, n int) *String {
	s := NewString()
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		q := int(x % 23)
		p := Pauli(x >> 32 & 3)
		s.MulAt(q, p)
	}
	return s
}

// Property: commutation is symmetric.
func TestCommutesSymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		s1, s2 := randString(a, 8), randString(b, 8)
		return s1.Commutes(s2) == s2.Commutes(s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the symplectic form is bilinear — commutation phase of a
// product: comm(ab, c) = comm(a,c) XOR comm(b,c).
func TestCommutesBilinear(t *testing.T) {
	f := func(a, b, c int64) bool {
		sa, sb, sc := randString(a, 6), randString(b, 6), randString(c, 6)
		prod := sa.Clone().Mul(sb)
		anti := func(x, y *String) bool { return !x.Commutes(y) }
		return anti(prod, sc) == (anti(sa, sc) != anti(sb, sc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: multiplication is an involution on the phaseless group: s·s = I.
func TestSelfInverse(t *testing.T) {
	f := func(a int64) bool {
		s := randString(a, 10)
		return s.Clone().Mul(s).IsIdentity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every string commutes with itself and with the identity.
func TestCommutesSelfAndIdentity(t *testing.T) {
	f := func(a int64) bool {
		s := randString(a, 10)
		return s.Commutes(s) && s.Commutes(NewString())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSupportCancels(t *testing.T) {
	s := FromSupport(X, 1, 2, 1) // qubit 1 twice → cancels
	if s.At(1) != I || s.At(2) != X {
		t.Errorf("FromSupport dedupe wrong: %v", s)
	}
}

func TestIsCSS(t *testing.T) {
	sx, _ := Parse("X1 X5")
	if px, _ := sx.IsCSS(); !px {
		t.Error("X1X5 should be pure X")
	}
	sy, _ := Parse("X1 Z5")
	if px, pz := sy.IsCSS(); px || pz {
		t.Error("X1Z5 is neither pure X nor pure Z")
	}
}

func TestEqualClone(t *testing.T) {
	s := randString(42, 12)
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c.MulAt(0, X)
	if s.Equal(c) && s.At(0) == c.At(0) {
		t.Error("clone aliases original")
	}
}
