// Package pauli implements single-qubit Pauli operators and sparse n-qubit
// Pauli strings, with the commutation and multiplication rules the surface
// code machinery relies on.
//
// Phases are deliberately dropped: for CSS-code error correction only the
// X/Z support of operators matters (syndromes are parities, logical failure
// is membership in a coset), so every operator here lives in the quotient
// Pauli group P_n / {±1, ±i}.
package pauli

import (
	"fmt"
	"sort"
	"strings"
)

// Pauli is a single-qubit Pauli operator without phase.
type Pauli uint8

// The four single-qubit Paulis. The encoding is two bits (x, z): I=00,
// X=10, Z=01, Y=11, so multiplication is XOR of the bit pairs.
const (
	I Pauli = 0b00
	X Pauli = 0b10
	Z Pauli = 0b01
	Y Pauli = 0b11
)

// HasX reports whether the operator has an X component (X or Y).
func (p Pauli) HasX() bool { return p&X != 0 }

// HasZ reports whether the operator has a Z component (Z or Y).
func (p Pauli) HasZ() bool { return p&Z != 0 }

// Mul returns the phaseless product p·q.
func (p Pauli) Mul(q Pauli) Pauli { return p ^ q }

// Commutes reports whether p and q commute as single-qubit operators.
func (p Pauli) Commutes(q Pauli) bool {
	// Two Paulis anticommute iff both are non-identity and differ.
	ax, az := p.HasX(), p.HasZ()
	bx, bz := q.HasX(), q.HasZ()
	// Symplectic product: ax·bz + az·bx (mod 2).
	s := 0
	if ax && bz {
		s ^= 1
	}
	if az && bx {
		s ^= 1
	}
	return s == 0
}

// String returns "I", "X", "Y" or "Z".
func (p Pauli) String() string {
	switch p {
	case I:
		return "I"
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return fmt.Sprintf("Pauli(%d)", uint8(p))
}

// ParsePauli converts a byte ('I', 'X', 'Y', 'Z', case-insensitive).
func ParsePauli(b byte) (Pauli, error) {
	switch b {
	case 'I', 'i':
		return I, nil
	case 'X', 'x':
		return X, nil
	case 'Y', 'y':
		return Y, nil
	case 'Z', 'z':
		return Z, nil
	}
	return I, fmt.Errorf("pauli: invalid Pauli letter %q", b)
}

// String is a sparse n-qubit Pauli string: a map from qubit index to its
// non-identity single-qubit Pauli. The zero value is the identity.
type String struct {
	ops map[int]Pauli
}

// NewString returns the identity Pauli string.
func NewString() *String { return &String{ops: map[int]Pauli{}} }

// FromSupport builds a uniform string (e.g. all-X) over the given qubits.
// Duplicate qubits multiply together (so a repeated qubit cancels to I).
func FromSupport(p Pauli, qubits ...int) *String {
	s := NewString()
	for _, q := range qubits {
		s.MulAt(q, p)
	}
	return s
}

// Parse builds a string from the textual form "X0 Z3 Y17" (whitespace
// separated letter+index tokens).
func Parse(text string) (*String, error) {
	s := NewString()
	for _, tok := range strings.Fields(text) {
		if len(tok) < 2 {
			return nil, fmt.Errorf("pauli: bad token %q", tok)
		}
		p, err := ParsePauli(tok[0])
		if err != nil {
			return nil, err
		}
		var q int
		if _, err := fmt.Sscanf(tok[1:], "%d", &q); err != nil {
			return nil, fmt.Errorf("pauli: bad qubit index in %q", tok)
		}
		s.MulAt(q, p)
	}
	return s, nil
}

// At returns the single-qubit Pauli acting on qubit q.
func (s *String) At(q int) Pauli {
	if s.ops == nil {
		return I
	}
	return s.ops[q]
}

// MulAt multiplies p into the operator on qubit q (in place).
func (s *String) MulAt(q int, p Pauli) {
	if s.ops == nil {
		s.ops = map[int]Pauli{}
	}
	r := s.ops[q].Mul(p)
	if r == I {
		delete(s.ops, q)
	} else {
		s.ops[q] = r
	}
}

// Mul multiplies o into s (in place) and returns s.
func (s *String) Mul(o *String) *String {
	for q, p := range o.ops {
		s.MulAt(q, p)
	}
	return s
}

// Commutes reports whether the two strings commute, via the symplectic
// parity of overlapping anticommuting sites.
func (s *String) Commutes(o *String) bool {
	anti := 0
	for q, p := range s.ops {
		if op, ok := o.ops[q]; ok && !p.Commutes(op) {
			anti ^= 1
		}
	}
	return anti == 0
}

// Weight returns the number of qubits acted on non-trivially.
func (s *String) Weight() int { return len(s.ops) }

// IsIdentity reports whether the string is the identity operator.
func (s *String) IsIdentity() bool { return len(s.ops) == 0 }

// Support returns the sorted list of qubits acted on non-trivially.
func (s *String) Support() []int {
	out := make([]int, 0, len(s.ops))
	for q := range s.ops {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// IsCSS reports whether the string is purely X-type or purely Z-type, and
// which. The surface code machinery only manipulates CSS operators.
func (s *String) IsCSS() (pureX, pureZ bool) {
	pureX, pureZ = true, true
	for _, p := range s.ops {
		if p != X {
			pureX = false
		}
		if p != Z {
			pureZ = false
		}
	}
	if len(s.ops) == 0 {
		return true, true
	}
	return
}

// Clone returns a deep copy.
func (s *String) Clone() *String {
	c := NewString()
	for q, p := range s.ops {
		c.ops[q] = p
	}
	return c
}

// Equal reports operator equality (same support, same letters).
func (s *String) Equal(o *String) bool {
	if len(s.ops) != len(o.ops) {
		return false
	}
	for q, p := range s.ops {
		if o.ops[q] != p {
			return false
		}
	}
	return true
}

// String renders the operator as "X0 Z3 Y17" with qubits in increasing
// order, or "I" for the identity.
func (s *String) String() string {
	if s.IsIdentity() {
		return "I"
	}
	qs := s.Support()
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = fmt.Sprintf("%s%d", s.ops[q], q)
	}
	return strings.Join(parts, " ")
}
