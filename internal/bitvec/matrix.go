package bitvec

import "fmt"

// Matrix is a dense GF(2) matrix stored row-major, one Vec per row.
type Matrix struct {
	rows, cols int
	data       []*Vec
}

// NewMatrix returns an all-zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	m := &Matrix{rows: rows, cols: cols, data: make([]*Vec, rows)}
	for i := range m.data {
		m.data[i] = NewVec(cols)
	}
	return m
}

// FromRows builds a matrix from existing row vectors (not copied). All rows
// must share the same length; an empty input yields a 0×0 matrix.
func FromRows(rows []*Vec) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := rows[0].Len()
	for _, r := range rows {
		if r.Len() != c {
			panic("bitvec: FromRows ragged input") //lint:allow panicpolicy ragged input is API misuse, mirrors slice panic semantics
		}
	}
	return &Matrix{rows: len(rows), cols: c, data: rows}
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i (aliased, not copied).
func (m *Matrix) Row(i int) *Vec { return m.data[i] }

// Get reports entry (i, j).
func (m *Matrix) Get(i, j int) bool { return m.data[i].Get(j) }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, b bool) { m.data[i].Set(j, b) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]*Vec, m.rows)}
	for i, r := range m.data {
		c.data[i] = r.Clone()
	}
	return c
}

// Rank returns the GF(2) rank, computed on a copy via Gaussian elimination.
func (m *Matrix) Rank() int {
	c := m.Clone()
	_, rank := c.rowReduce()
	return rank
}

// rowReduce performs in-place Gauss–Jordan elimination and returns the pivot
// column of each pivot row plus the rank. After the call the first rank rows
// are in reduced row-echelon form.
func (m *Matrix) rowReduce() (pivots []int, rank int) {
	r := 0
	for c := 0; c < m.cols && r < m.rows; c++ {
		// Find a pivot at or below row r.
		p := -1
		for i := r; i < m.rows; i++ {
			if m.data[i].Get(c) {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.data[r], m.data[p] = m.data[p], m.data[r]
		for i := 0; i < m.rows; i++ {
			if i != r && m.data[i].Get(c) {
				m.data[i].Xor(m.data[r])
			}
		}
		pivots = append(pivots, c)
		r++
	}
	return pivots, r
}

// InRowSpace reports whether v lies in the row space of m (i.e. is a GF(2)
// linear combination of the rows). The stabilizer code machinery uses this
// to check that a candidate logical operator is or is not a stabilizer.
func (m *Matrix) InRowSpace(v *Vec) bool {
	if v.Len() != m.cols {
		panic("bitvec: InRowSpace length mismatch") //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	c := m.Clone()
	pivots, rank := c.rowReduce()
	res := v.Clone()
	for i := 0; i < rank; i++ {
		if res.Get(pivots[i]) {
			res.Xor(c.data[i])
		}
	}
	return res.IsZero()
}

// Solve finds any x with m·x = b (column-vector convention), returning
// (x, true) on success or (nil, false) if the system is inconsistent.
func (m *Matrix) Solve(b *Vec) (*Vec, bool) {
	if b.Len() != m.rows {
		panic(fmt.Sprintf("bitvec: Solve rhs length %d != rows %d", b.Len(), m.rows)) //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	// Build augmented matrix [m | b] and eliminate.
	aug := NewMatrix(m.rows, m.cols+1)
	for i := 0; i < m.rows; i++ {
		row := aug.data[i]
		for _, j := range m.data[i].Ones() {
			row.Set(j, true)
		}
		row.Set(m.cols, b.Get(i))
	}
	pivots, rank := aug.rowReduce()
	x := NewVec(m.cols)
	for i := 0; i < rank; i++ {
		if pivots[i] == m.cols {
			return nil, false // pivot in the augmented column: inconsistent
		}
		x.Set(pivots[i], aug.data[i].Get(m.cols))
	}
	return x, true
}

// NullspaceBasis returns a basis of {x : m·x = 0} as row vectors.
func (m *Matrix) NullspaceBasis() []*Vec {
	c := m.Clone()
	pivots, rank := c.rowReduce()
	isPivot := make([]bool, m.cols)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis []*Vec
	for free := 0; free < m.cols; free++ {
		if isPivot[free] {
			continue
		}
		v := NewVec(m.cols)
		v.Set(free, true)
		for i := 0; i < rank; i++ {
			if c.data[i].Get(free) {
				v.Set(pivots[i], true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// MulVec returns m·x over GF(2) (length = rows).
func (m *Matrix) MulVec(x *Vec) *Vec {
	if x.Len() != m.cols {
		panic("bitvec: MulVec length mismatch") //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	out := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		out.Set(i, m.data[i].Dot(x))
	}
	return out
}
