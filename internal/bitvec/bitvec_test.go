package bitvec

import (
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 || !v.IsZero() {
		t.Fatal("fresh vec not empty")
	}
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	if v.PopCount() != 3 {
		t.Errorf("popcount %d, want 3", v.PopCount())
	}
	ones := v.Ones()
	if len(ones) != 3 || ones[0] != 0 || ones[1] != 64 || ones[2] != 129 {
		t.Errorf("Ones = %v", ones)
	}
	v.Flip(64)
	if v.Get(64) {
		t.Error("flip failed")
	}
	v.Clear()
	if !v.IsZero() {
		t.Error("clear failed")
	}
}

func TestVecPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewVec(10).Get(10)
}

func randVec(seed int64, n int) *Vec {
	v := NewVec(n)
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if x&1 == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// Property: Dot(a,b) = parity(popcount(a AND b)).
func TestDotMatchesAndParity(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := randVec(a, 97), randVec(b, 97)
		and := va.Clone()
		and.And(vb)
		return va.Dot(vb) == (and.PopCount()%2 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Xor is an involution.
func TestXorInvolution(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := randVec(a, 70), randVec(b, 70)
		orig := va.Clone()
		va.Xor(vb)
		va.Xor(vb)
		return va.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixRank(t *testing.T) {
	// Identity has full rank.
	m := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		m.Set(i, i, true)
	}
	if m.Rank() != 5 {
		t.Errorf("identity rank %d", m.Rank())
	}
	// Duplicate row reduces rank.
	m2 := NewMatrix(3, 4)
	for j := 0; j < 4; j++ {
		m2.Set(0, j, j%2 == 0)
		m2.Set(1, j, j%2 == 0)
		m2.Set(2, j, true)
	}
	if m2.Rank() != 2 {
		t.Errorf("rank %d, want 2", m2.Rank())
	}
}

func TestInRowSpace(t *testing.T) {
	m := NewMatrix(2, 4)
	m.Set(0, 0, true)
	m.Set(0, 1, true) // 1100
	m.Set(1, 2, true)
	m.Set(1, 3, true) // 0011
	sum := NewVec(4)  // 1111 = row0 ^ row1
	for j := 0; j < 4; j++ {
		sum.Set(j, true)
	}
	if !m.InRowSpace(sum) {
		t.Error("1111 should be in row space")
	}
	one := NewVec(4)
	one.Set(0, true)
	if m.InRowSpace(one) {
		t.Error("1000 should not be in row space")
	}
}

// Property: Solve returns x with m·x = b whenever it claims success, and a
// constructed consistent system always succeeds.
func TestSolveConsistency(t *testing.T) {
	f := func(seed int64) bool {
		const rows, cols = 9, 14
		m := NewMatrix(rows, cols)
		x := uint64(seed)*2862933555777941757 + 3037000493
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				m.Set(i, j, x&3 == 0)
			}
		}
		// Build b = m·x0 for a random x0: must be solvable.
		x0 := randVec(seed^0x5555, cols)
		b := m.MulVec(x0)
		sol, ok := m.Solve(b)
		if !ok {
			return false
		}
		return m.MulVec(sol).Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every nullspace basis vector is annihilated by the matrix, and
// rank + nullity = cols.
func TestNullspace(t *testing.T) {
	f := func(seed int64) bool {
		const rows, cols = 7, 11
		m := NewMatrix(rows, cols)
		x := uint64(seed) ^ 0x9e3779b97f4a7c15
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				m.Set(i, j, x&1 == 1)
			}
		}
		basis := m.NullspaceBasis()
		for _, v := range basis {
			if !m.MulVec(v).IsZero() {
				return false
			}
		}
		return m.Rank()+len(basis) == cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveInconsistent(t *testing.T) {
	// 0-matrix with nonzero rhs is inconsistent.
	m := NewMatrix(2, 3)
	b := NewVec(2)
	b.Set(0, true)
	if _, ok := m.Solve(b); ok {
		t.Error("zero system with nonzero rhs should be unsolvable")
	}
}
