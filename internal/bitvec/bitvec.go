// Package bitvec implements dense bit vectors and bit matrices over GF(2).
//
// Two consumers drive the design:
//
//   - internal/sim packs 64 Monte-Carlo shots into each machine word, so the
//     Pauli-frame simulator advances 64 shots per logical operation; and
//   - internal/code uses F2 linear algebra (rank, nullspace, solving) to
//     verify stabilizer-group invariants and compute code distances after
//     deformation.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a bit vector of fixed length N stored 64 bits per word.
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns an all-zero vector of length n.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("bitvec: negative length") //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	return &Vec{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (v *Vec) Len() int { return v.n }

// Get reports bit i.
func (v *Vec) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Set assigns bit i.
func (v *Vec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip toggles bit i.
func (v *Vec) Flip(i int) {
	v.check(i)
	v.words[i>>6] ^= 1 << (uint(i) & 63)
}

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n)) //lint:allow panicpolicy index misuse mirrors built-in slice panic semantics
	}
}

// Xor sets v ^= o. Lengths must match.
func (v *Vec) Xor(o *Vec) {
	if v.n != o.n {
		panic("bitvec: Xor length mismatch") //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
}

// And sets v &= o. Lengths must match.
func (v *Vec) And(o *Vec) {
	if v.n != o.n {
		panic("bitvec: And length mismatch") //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// PopCount returns the number of set bits.
func (v *Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Dot returns the GF(2) inner product <v, o> (parity of the AND).
func (v *Vec) Dot(o *Vec) bool {
	if v.n != o.n {
		panic("bitvec: Dot length mismatch") //lint:allow panicpolicy length misuse mirrors built-in slice panic semantics
	}
	var acc uint64
	for i := range v.words {
		acc ^= v.words[i] & o.words[i]
	}
	return bits.OnesCount64(acc)&1 == 1
}

// IsZero reports whether every bit is clear.
func (v *Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (v *Vec) Clone() *Vec {
	c := NewVec(v.n)
	copy(c.words, v.words)
	return c
}

// Clear zeroes every bit.
func (v *Vec) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Equal reports element-wise equality.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Ones returns the indices of set bits in increasing order.
func (v *Vec) Ones() []int {
	var out []int
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the vector as e.g. "0110…" (LSB first).
func (v *Vec) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
