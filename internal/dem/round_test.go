package dem

import (
	"caliqec/internal/code"
	"caliqec/internal/lattice"
	"testing"
)

func TestModelCarriesRounds(t *testing.T) {
	patch := code.NewPatch(lattice.NewSquare(3))
	circ, err := patch.MemoryCircuit(code.MemoryOptions{
		Rounds: 4, Basis: lattice.BasisZ, Noise: code.UniformNoise(1e-3),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromCircuit(circ)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRounds != circ.NumRounds || m.NumRounds == 0 {
		t.Fatalf("model NumRounds=%d, circuit NumRounds=%d", m.NumRounds, circ.NumRounds)
	}
	if len(m.DetectorRounds) != m.NumDetectors {
		t.Fatalf("%d detector rounds for %d detectors", len(m.DetectorRounds), m.NumDetectors)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every round in [1, NumRounds) should own at least one detector; the
	// memory circuit emits its first detectors after the first Tick.
	seen := make(map[int]int)
	for _, r := range m.DetectorRounds {
		seen[r]++
	}
	for r := 1; r < m.NumRounds; r++ {
		if seen[r] == 0 {
			t.Errorf("round %d owns no detectors", r)
		}
	}
}

func TestModelValidateRejectsBadRounds(t *testing.T) {
	m := &Model{NumDetectors: 2, NumRounds: 2, DetectorRounds: []int{1, 0}}
	if err := m.Validate(); err == nil {
		t.Error("want error for decreasing rounds")
	}
	m = &Model{NumDetectors: 2, NumRounds: 1, DetectorRounds: []int{0, 1}}
	if err := m.Validate(); err == nil {
		t.Error("want error for round out of range")
	}
	m = &Model{NumDetectors: 2, NumRounds: 2, DetectorRounds: []int{0}}
	if err := m.Validate(); err == nil {
		t.Error("want error for length mismatch")
	}
	m = &Model{NumDetectors: 2} // roundless: fine
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}
