// Package dem extracts a detector error model (DEM) from a noisy stabilizer
// circuit: the list of independent elementary error mechanisms, each with
// its probability, the set of detectors it flips, and the logical
// observables it flips.
//
// The extraction exploits the linearity of Pauli-frame propagation: every
// noise channel decomposes into elementary Pauli errors at a circuit
// location, and each such error deterministically flips a fixed set of
// measurement record bits, hence a fixed set of detectors. Mechanisms whose
// symptom involves more than two detectors (e.g. a Y error straddling both
// stabilizer types) are decomposed into their X and Z parts — which, for the
// CSS circuits generated in this repository, are always graph-like (≤ 2
// detectors). This reproduces the Stim circuit→DEM→matching-graph pipeline
// the paper's evaluation uses.
package dem

import (
	"caliqec/internal/circuit"
	"fmt"
	"sort"
	"strings"
)

// Mechanism is one independent elementary error: with probability P it
// flips every detector in Detectors and the observables in ObsMask.
type Mechanism struct {
	Detectors []int  // sorted detector indices, length 0..2 after decomposition
	ObsMask   uint64 // bit i set = flips observable i
	P         float64
}

// Model is the full detector error model of a circuit.
type Model struct {
	NumDetectors int
	NumObs       int
	Mechanisms   []Mechanism
	// NumRounds and DetectorRounds carry the source circuit's round
	// structure through extraction: DetectorRounds[d] is the QEC round in
	// which detector d fires. Both are zero/nil when the circuit predates
	// round tracking; the decoder then falls back to whole-shot decoding.
	NumRounds      int
	DetectorRounds []int
	// DetectorQubits maps each detector to the physical qubit whose
	// measurement closed it (circuit.DetectorQubits), -1 when unknown; nil
	// when the source circuit was not available. Drift observability uses
	// it, via the decoding graph, to name the hardware qubit behind an
	// anomalous detector.
	DetectorQubits []int
}

// Validate checks the model's round map when present: length matching
// NumDetectors, rounds within [0, NumRounds), and monotone non-decreasing
// in detector order (the contract the windowed decoder's round splitter
// relies on).
func (m *Model) Validate() error {
	if m.DetectorQubits != nil && len(m.DetectorQubits) != m.NumDetectors {
		return fmt.Errorf("dem: %d detector qubits for %d detectors", len(m.DetectorQubits), m.NumDetectors)
	}
	if m.NumRounds == 0 && m.DetectorRounds == nil {
		return nil
	}
	if m.NumRounds <= 0 {
		return fmt.Errorf("dem: DetectorRounds set but NumRounds=%d", m.NumRounds)
	}
	if len(m.DetectorRounds) != m.NumDetectors {
		return fmt.Errorf("dem: %d detector rounds for %d detectors", len(m.DetectorRounds), m.NumDetectors)
	}
	prev := 0
	for d, r := range m.DetectorRounds {
		if r < 0 || r >= m.NumRounds {
			return fmt.Errorf("dem: detector %d round %d out of range [0,%d)", d, r, m.NumRounds)
		}
		if r < prev {
			return fmt.Errorf("dem: detector %d round %d after round %d (rounds must be non-decreasing)", d, r, prev)
		}
		prev = r
	}
	return nil
}

// String renders the model, one mechanism per line, for debugging.
func (m *Model) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DEM: %d detectors, %d observables, %d mechanisms\n",
		m.NumDetectors, m.NumObs, len(m.Mechanisms))
	for _, mech := range m.Mechanisms {
		fmt.Fprintf(&sb, "  p=%.6g D%v obs=%b\n", mech.P, mech.Detectors, mech.ObsMask)
	}
	return sb.String()
}

// pauliBits is a sparse frame: qubit -> (x,z) bits packed as 2 bits.
type pauliBits map[int]uint8

const (
	bitX uint8 = 2
	bitZ uint8 = 1
)

// FromCircuit extracts the DEM of c. It returns an error if any mechanism
// remains non-graph-like (more than two detectors) after X/Z decomposition,
// which indicates the circuit is outside the CSS family this package
// supports.
func FromCircuit(c *circuit.Circuit) (*Model, error) {
	ex := newExtractor(c)
	return ex.run()
}

type extractor struct {
	c *circuit.Circuit
	// measToDet[r] lists detectors containing measurement record bit r.
	measToDet [][]int
	// measToObs[r] is the observable mask of record bit r.
	measToObs []uint64
	// measBefore[i] is the number of measurement record bits produced by
	// instructions strictly before instruction i.
	measBefore []int
	// merged accumulates mechanisms keyed by canonical symptom.
	merged map[string]*Mechanism
	order  []string // insertion order for deterministic output
}

func newExtractor(c *circuit.Circuit) *extractor {
	ex := &extractor{
		c:         c,
		measToDet: make([][]int, c.NumMeas),
		measToObs: make([]uint64, c.NumMeas),
		merged:    map[string]*Mechanism{},
	}
	ex.measBefore = make([]int, len(c.Instructions)+1)
	for i, in := range c.Instructions {
		ex.measBefore[i+1] = ex.measBefore[i]
		switch in.Op {
		case circuit.OpM, circuit.OpMX:
			ex.measBefore[i+1] += len(in.Targets)
		case circuit.OpDetector:
			for _, r := range in.Recs {
				ex.measToDet[r] = append(ex.measToDet[r], in.Index)
			}
		case circuit.OpObservable:
			for _, r := range in.Recs {
				ex.measToObs[r] ^= 1 << uint(in.Index)
			}
		}
	}
	return ex
}

func (ex *extractor) run() (*Model, error) {
	for idx, in := range ex.c.Instructions {
		switch in.Op {
		case circuit.OpXError:
			for _, q := range in.Targets {
				if err := ex.addPauli(idx, pauliBits{q: bitX}, in.Arg); err != nil {
					return nil, err
				}
			}
		case circuit.OpZError:
			for _, q := range in.Targets {
				if err := ex.addPauli(idx, pauliBits{q: bitZ}, in.Arg); err != nil {
					return nil, err
				}
			}
		case circuit.OpYError:
			for _, q := range in.Targets {
				if err := ex.addPauli(idx, pauliBits{q: bitX | bitZ}, in.Arg); err != nil {
					return nil, err
				}
			}
		case circuit.OpDepolarize1:
			for _, q := range in.Targets {
				p := in.Arg / 3
				for _, pb := range []uint8{bitX, bitX | bitZ, bitZ} {
					if err := ex.addPauli(idx, pauliBits{q: pb}, p); err != nil {
						return nil, err
					}
				}
			}
		case circuit.OpDepolarize2:
			for i := 0; i < len(in.Targets); i += 2 {
				a, b := in.Targets[i], in.Targets[i+1]
				p := in.Arg / 15
				for k := 1; k < 16; k++ {
					pa, pb := uint8(k&3), uint8(k>>2)
					f := pauliBits{}
					if pa != 0 {
						f[a] = pa
					}
					if pb != 0 {
						f[b] = pb
					}
					if err := ex.addPauli(idx, f, p); err != nil {
						return nil, err
					}
				}
			}
		case circuit.OpReset:
			if in.Arg > 0 {
				for _, q := range in.Targets {
					if err := ex.addPauli(idx, pauliBits{q: bitX}, in.Arg); err != nil {
						return nil, err
					}
				}
			}
		case circuit.OpResetX:
			if in.Arg > 0 {
				for _, q := range in.Targets {
					if err := ex.addPauli(idx, pauliBits{q: bitZ}, in.Arg); err != nil {
						return nil, err
					}
				}
			}
		case circuit.OpM, circuit.OpMX:
			if in.Arg > 0 {
				rec := ex.measIndexAt(idx)
				for j := range in.Targets {
					if err := ex.addMeasFlip(rec+j, in.Arg); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	m := &Model{
		NumDetectors:   ex.c.NumDetectors,
		NumObs:         ex.c.NumObs,
		NumRounds:      ex.c.NumRounds,
		DetectorRounds: ex.c.DetectorRounds(),
		DetectorQubits: ex.c.DetectorQubits(),
	}
	for _, k := range ex.order {
		mech := ex.merged[k]
		if mech.P > 0 {
			m.Mechanisms = append(m.Mechanisms, *mech)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// measIndexAt returns the measurement record index of the first target of
// the instruction at position idx (i.e. records produced before it).
func (ex *extractor) measIndexAt(idx int) int { return ex.measBefore[idx] }

// addPauli propagates the elementary Pauli error f occurring immediately
// after instruction idx, and records the resulting mechanism (decomposing
// into X and Z parts when the full symptom is non-graph-like).
func (ex *extractor) addPauli(idx int, f pauliBits, p float64) error {
	if p <= 0 {
		return nil
	}
	dets, obs := ex.propagate(idx, f)
	if len(dets) <= 2 {
		ex.merge(dets, obs, p)
		return nil
	}
	// Decompose into X and Z components; frame propagation is linear so the
	// two partial symptoms XOR to the full one.
	xPart, zPart := pauliBits{}, pauliBits{}
	for q, pb := range f {
		if pb&bitX != 0 {
			xPart[q] = bitX
		}
		if pb&bitZ != 0 {
			zPart[q] = bitZ
		}
	}
	for _, part := range []pauliBits{xPart, zPart} {
		if len(part) == 0 {
			continue
		}
		d, o := ex.propagate(idx, part)
		if len(d) > 2 {
			// Final fallback: per-qubit elementary split.
			if len(part) > 1 {
				ok := true
				for q, pb := range part {
					dd, oo := ex.propagate(idx, pauliBits{q: pb})
					if len(dd) > 2 {
						ok = false
						break
					}
					ex.merge(dd, oo, p)
				}
				if ok {
					continue
				}
			}
			return fmt.Errorf("dem: non-graph-like mechanism at instruction %d (%d detectors)", idx, len(d))
		}
		ex.merge(d, o, p)
	}
	return nil
}

// addMeasFlip records the mechanism of a classical readout flip of record r.
func (ex *extractor) addMeasFlip(r int, p float64) error {
	dets := append([]int(nil), ex.measToDet[r]...)
	sort.Ints(dets)
	dets = dedupXor(dets)
	if len(dets) > 2 {
		return fmt.Errorf("dem: measurement record %d appears in %d detectors", r, len(dets))
	}
	ex.merge(dets, ex.measToObs[r], p)
	return nil
}

// propagate walks the circuit from instruction idx+1 with initial frame f
// and returns the flipped detectors (sorted, XOR-reduced) and observables.
func (ex *extractor) propagate(idx int, f pauliBits) ([]int, uint64) {
	frame := pauliBits{}
	for q, pb := range f {
		frame[q] = pb
	}
	var flippedRecs []int
	meas := ex.measIndexAt(idx)
	// Account for measurements inside instruction idx itself: an error
	// "after" a measurement instruction cannot affect its own outcomes.
	if in := ex.c.Instructions[idx]; in.Op == circuit.OpM || in.Op == circuit.OpMX {
		meas += len(in.Targets)
	}
	for i := idx + 1; i < len(ex.c.Instructions); i++ {
		in := ex.c.Instructions[i]
		switch in.Op {
		case circuit.OpH:
			for _, q := range in.Targets {
				if pb, ok := frame[q]; ok {
					frame[q] = (pb&bitX)>>1 | (pb&bitZ)<<1
				}
			}
		case circuit.OpS:
			for _, q := range in.Targets {
				if pb, ok := frame[q]; ok && pb&bitX != 0 {
					frame[q] = pb ^ bitZ
					if frame[q] == 0 {
						delete(frame, q)
					}
				}
			}
		case circuit.OpCX:
			for j := 0; j < len(in.Targets); j += 2 {
				c, t := in.Targets[j], in.Targets[j+1]
				if frame[c]&bitX != 0 {
					toggle(frame, t, bitX)
				}
				if frame[t]&bitZ != 0 {
					toggle(frame, c, bitZ)
				}
			}
		case circuit.OpCZ:
			for j := 0; j < len(in.Targets); j += 2 {
				a, b := in.Targets[j], in.Targets[j+1]
				if frame[a]&bitX != 0 {
					toggle(frame, b, bitZ)
				}
				if frame[b]&bitX != 0 {
					toggle(frame, a, bitZ)
				}
			}
		case circuit.OpSwap:
			for j := 0; j < len(in.Targets); j += 2 {
				a, b := in.Targets[j], in.Targets[j+1]
				fa, fb := frame[a], frame[b]
				setOrDelete(frame, a, fb)
				setOrDelete(frame, b, fa)
			}
		case circuit.OpReset, circuit.OpResetX:
			for _, q := range in.Targets {
				delete(frame, q)
			}
		case circuit.OpM:
			for _, q := range in.Targets {
				if frame[q]&bitX != 0 {
					flippedRecs = append(flippedRecs, meas)
				}
				// Z component is destroyed by the collapse.
				if pb, ok := frame[q]; ok {
					setOrDelete(frame, q, pb&bitX)
				}
				meas++
			}
		case circuit.OpMX:
			for _, q := range in.Targets {
				if frame[q]&bitZ != 0 {
					flippedRecs = append(flippedRecs, meas)
				}
				if pb, ok := frame[q]; ok {
					setOrDelete(frame, q, pb&bitZ)
				}
				meas++
			}
		}
		if len(frame) == 0 {
			// The frame has been absorbed; no further records can flip.
			break
		}
	}
	var dets []int
	var obs uint64
	for _, r := range flippedRecs {
		dets = append(dets, ex.measToDet[r]...)
		obs ^= ex.measToObs[r]
	}
	sort.Ints(dets)
	return dedupXor(dets), obs
}

func toggle(frame pauliBits, q int, bit uint8) {
	pb := frame[q] ^ bit
	setOrDelete(frame, q, pb)
}

func setOrDelete(frame pauliBits, q int, pb uint8) {
	if pb == 0 {
		delete(frame, q)
	} else {
		frame[q] = pb
	}
}

// dedupXor removes pairs of equal values from a sorted slice (XOR
// semantics: a detector flipped twice is not flipped).
func dedupXor(sorted []int) []int {
	out := sorted[:0]
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, sorted[i])
		}
		i = j
	}
	if len(out) == 0 {
		return nil
	}
	return append([]int(nil), out...)
}

// merge folds a mechanism into the accumulator, combining probabilities of
// identical symptoms as independent sources: p ← p₁(1−p₂) + p₂(1−p₁).
func (ex *extractor) merge(dets []int, obs uint64, p float64) {
	if len(dets) == 0 && obs == 0 {
		return // invisible error: no detectors, no logical effect
	}
	key := fmt.Sprint(dets, obs)
	if m, ok := ex.merged[key]; ok {
		m.P = m.P*(1-p) + p*(1-m.P)
		return
	}
	ex.merged[key] = &Mechanism{Detectors: append([]int(nil), dets...), ObsMask: obs, P: p}
	ex.order = append(ex.order, key)
}
